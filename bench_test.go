// bench_test.go hosts one testing.B benchmark per paper figure (the
// benchmark body runs the figure's full experiment and prints its data
// series) plus public-API micro benchmarks. Run them all with:
//
//	go test -bench=. -benchmem
//
// Figures run at bench.ScaleSmall; with -short they shrink further so CI
// stays fast. Use cmd/bolt-bench for medium/large scale runs.
package bolt_test

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/bench"
)

func figureScale(b *testing.B) bench.Scale {
	if testing.Short() {
		s := bench.ScaleSmall
		s.LoadOps = 6000
		s.RunOps = 2000
		s.ValueSize = 256
		s.TimeScale = -1 // accounting only, no sleeps
		return s
	}
	// Default bench scale: a trimmed ScaleSmall so the full `go test
	// -bench=.` suite stays in the tens of minutes. Use cmd/bolt-bench
	// with -scale small|medium|large for the figure-quality series
	// recorded in EXPERIMENTS.md.
	s := bench.ScaleSmall
	s.Name = "bench"
	s.LoadOps = 16000
	s.RunOps = 5000
	return s
}

func benchmarkFigure(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	scale := figureScale(b)
	for i := 0; i < b.N; i++ {
		fmt.Fprintf(os.Stdout, "\n--- %s (%s, scale=%s) ---\n", e.ID, e.Title, scale.Name)
		if err := e.Run(bench.Params{Scale: scale, Out: os.Stdout}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SSTableSizeSweep regenerates Figure 4: fsync count and
// insertion tail latency versus SSTable size in stock LevelDB.
func BenchmarkFig4SSTableSizeSweep(b *testing.B) { benchmarkFigure(b, "fig4") }

// BenchmarkFig6TableCacheEviction regenerates Figure 6: point-query
// latency with 2 MB vs 64 MB SSTables under a fixed TableCache budget.
func BenchmarkFig6TableCacheEviction(b *testing.B) { benchmarkFigure(b, "fig6") }

// BenchmarkFig11GroupCompactionSize regenerates Figure 11: fsync count
// versus BoLT group compaction size.
func BenchmarkFig11GroupCompactionSize(b *testing.B) { benchmarkFigure(b, "fig11") }

// BenchmarkFig12LevelDBAblation regenerates Figure 12(a): +LS/+GC/+STL/+FC
// over the LevelDB base.
func BenchmarkFig12LevelDBAblation(b *testing.B) { benchmarkFigure(b, "fig12a") }

// BenchmarkFig12HyperAblation regenerates Figure 12(b): the ablation over
// the HyperLevelDB base.
func BenchmarkFig12HyperAblation(b *testing.B) { benchmarkFigure(b, "fig12b") }

// BenchmarkFig13YCSBThroughput regenerates Figure 13: all seven stores
// across the YCSB suite, zipfian and uniform.
func BenchmarkFig13YCSBThroughput(b *testing.B) { benchmarkFigure(b, "fig13") }

// BenchmarkFig14TailLatency regenerates Figure 14: insertion (Load A) and
// read (workload C) tail latencies per store.
func BenchmarkFig14TailLatency(b *testing.B) { benchmarkFigure(b, "fig14") }

// BenchmarkFig15BoltVsRocks regenerates Figure 15: BoLT vs RocksDB on a
// memory-constrained database, including the 100-byte record-format
// crossover.
func BenchmarkFig15BoltVsRocks(b *testing.B) { benchmarkFigure(b, "fig15") }

// BenchmarkFig16TailLatencyCDF regenerates Figure 16: per-workload latency
// percentiles, BoLT vs RocksDB.
func BenchmarkFig16TailLatencyCDF(b *testing.B) { benchmarkFigure(b, "fig16") }

// --- Public-API micro benchmarks ---

func benchDB(b *testing.B, p bolt.Profile) *bolt.DB {
	b.Helper()
	db, err := bolt.OpenMem(&bolt.Options{
		Profile:       p,
		MemTableBytes: 4 << 20,
		SSTableBytes:  256 << 10,
		L1MaxBytes:    1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkPut measures the in-memory write path (WAL append + concurrent
// skiplist insert) per profile.
func BenchmarkPut(b *testing.B) {
	for _, p := range []bolt.Profile{bolt.ProfileLevelDB, bolt.ProfileBoLT, bolt.ProfileHyperLevelDB} {
		b.Run(p.String(), func(b *testing.B) {
			db := benchDB(b, p)
			value := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("user%016d", i))
				if err := db.Put(key, value); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGet measures point reads over a multi-level tree.
func BenchmarkGet(b *testing.B) {
	for _, p := range []bolt.Profile{bolt.ProfileLevelDB, bolt.ProfileBoLT, bolt.ProfilePebblesDB} {
		b.Run(p.String(), func(b *testing.B) {
			db := benchDB(b, p)
			value := make([]byte, 256)
			const n = 20000
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("user%016d", i)), value)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("user%016d", i%n))
				if _, err := db.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTableDB loads n keys and compacts them all into tables, so every
// Get in the timed loop takes the table read path (index seek, block
// cache, block seek) regardless of b.N. The returned keys are
// preformatted: the timed loops measure the engine, not fmt.Sprintf.
func benchTableDB(b *testing.B, shards, n int) (*bolt.DB, [][]byte) {
	b.Helper()
	db, err := bolt.OpenMem(&bolt.Options{
		Profile:       bolt.ProfileBoLT,
		MemTableBytes: 4 << 20,
		SSTableBytes:  256 << 10,
		L1MaxBytes:    1 << 20,
		CacheShards:   shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	value := make([]byte, 256)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
		if err := db.Put(keys[i], value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		b.Fatal(err)
	}
	return db, keys
}

// BenchmarkGetTable measures point reads against a fully table-resident
// working set — the deterministic read path the CI alloc guard tracks.
func BenchmarkGetTable(b *testing.B) {
	db, keys := benchTableDB(b, 0, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetTableVLog is BenchmarkGetTable with key-value separation
// enabled and every value below the threshold: the sub-threshold read
// path must be byte-for-byte the unseparated one (same allocs/op the CI
// guard tracks), since small values never touch the value log.
func BenchmarkGetTableVLog(b *testing.B) {
	db, err := bolt.OpenMem(&bolt.Options{
		Profile:        bolt.ProfileBoLT,
		MemTableBytes:  4 << 20,
		SSTableBytes:   256 << 10,
		L1MaxBytes:     1 << 20,
		ValueThreshold: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	value := make([]byte, 256)
	const n = 20000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%016d", i))
		if err := db.Put(keys[i], value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetParallel measures concurrent cache-resident point reads with
// the caches pinned to one shard versus auto-sized sharding. Run with
// -cpu 8 to see the contention difference; at -cpu 1 the two configurations
// should be equivalent.
func BenchmarkGetParallel(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=auto", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db, keys := benchTableDB(b, tc.shards, 20000)
			var nextWorker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker strides the key space from its own phase, so
				// the union is uniform and no index state is shared.
				i := int(nextWorker.Add(1)) * 7919
				for pb.Next() {
					i += 9973
					if _, err := db.Get(keys[i%len(keys)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkScan measures 50-entry range scans.
func BenchmarkScan(b *testing.B) {
	db := benchDB(b, bolt.ProfileBoLT)
	value := make([]byte, 256)
	const n = 20000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("user%016d", i)), value)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.NewIterator(nil)
		start := []byte(fmt.Sprintf("user%016d", (i*997)%n))
		cnt := 0
		for ok := it.SeekGE(start); ok && cnt < 50; ok = it.Next() {
			cnt++
		}
		it.Close()
	}
}

// BenchmarkBatchCommit measures group-commit throughput with 100-op
// batches.
func BenchmarkBatchCommit(b *testing.B) {
	db := benchDB(b, bolt.ProfileHyperBoLT)
	value := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := bolt.NewBatch()
		for j := 0; j < 100; j++ {
			batch.Put([]byte(fmt.Sprintf("user%012d-%02d", i, j)), value)
		}
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}
