// Package bolt is a from-scratch Go implementation of BoLT — the
// Barrier-optimized LSM-Tree of Kim, Park, Lee and Nam (ACM/IFIP
// MIDDLEWARE 2020) — together with every baseline key-value store the
// paper evaluates against: LevelDB, HyperLevelDB, RocksDB, and PebblesDB,
// all expressed as profiles of one engine.
//
// BoLT attacks the fsync()/fdatasync() barrier overhead of LSM-tree
// compaction with four elements, each implemented here and individually
// toggleable:
//
//   - compaction files: one physical file (and one barrier) per compaction
//   - logical SSTables: fine-grained tables addressed by (file, offset)
//   - group compaction: many victims per compaction, fewer barriers
//   - settled compaction: zero-overlap victims promoted by a MANIFEST-only
//     edit, with dead logical SSTables reclaimed by hole punching
//
// Quickstart:
//
//	db, err := bolt.Open("/tmp/mydb", &bolt.Options{Profile: bolt.ProfileBoLT})
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//
// The package also exposes an in-memory backend (OpenMem) and a simulated
// SSD backend (OpenSim) whose timing model — barrier latency, queue drain,
// sequential bandwidth — drives the paper's benchmark reproductions.
package bolt

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/metrics"
	"github.com/bolt-lsm/bolt/internal/simdisk"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("bolt: not found")

// ErrReadOnlyMode is matched by errors.Is against write errors once the
// engine has degraded to read-only after an unrecoverable background
// failure. Reads keep serving the last committed state; the returned error
// also wraps the background failure that caused the degradation.
var ErrReadOnlyMode = core.ErrReadOnlyMode

// Profile selects which of the paper's systems the engine behaves as.
type Profile int

// The engine profiles of the paper's evaluation (Section 4).
const (
	// ProfileLevelDB mimics stock LevelDB v1.20: 2 MB SSTables (one file
	// and one fsync each), L0SlowDown=8 / L0Stop=12 governors, seek
	// compaction, serialized writers.
	ProfileLevelDB Profile = iota + 1
	// ProfileLevelDB64MB is LevelDB with 64 MB SSTables (LVL64MB).
	ProfileLevelDB64MB
	// ProfileHyperLevelDB mimics HyperLevelDB: larger SSTables, governors
	// removed, concurrent writer inserts.
	ProfileHyperLevelDB
	// ProfileRocksDB mimics RocksDB v6.7.3 defaults: 64 MB SSTables,
	// compact record format, governors 20/36, 256 MB L1, a dedicated
	// flush thread.
	ProfileRocksDB
	// ProfilePebblesDB mimics PebblesDB: HyperLevelDB base plus
	// fragmented (guarded, overlapping) levels that avoid next-level
	// rewrites.
	ProfilePebblesDB
	// ProfileBoLT is BoLT implemented over the LevelDB base: compaction
	// files, 1 MB logical SSTables, 64 MB group compaction, settled
	// compaction, and the file-descriptor cache.
	ProfileBoLT
	// ProfileHyperBoLT is BoLT implemented over the HyperLevelDB base.
	ProfileHyperBoLT
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileLevelDB:
		return "LevelDB"
	case ProfileLevelDB64MB:
		return "LevelDB-64MB"
	case ProfileHyperLevelDB:
		return "HyperLevelDB"
	case ProfileRocksDB:
		return "RocksDB"
	case ProfilePebblesDB:
		return "PebblesDB"
	case ProfileBoLT:
		return "BoLT"
	case ProfileHyperBoLT:
		return "HyperBoLT"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// levelDBFamilyEntryPadding models the on-disk record-format efficiency
// gap the paper measures (223 B vs 141 B per 100-byte record): LevelDB and
// its derivatives pay it, RocksDB's format does not. See DESIGN.md.
const levelDBFamilyEntryPadding = 88

// rocksDBEntryPadding calibrates RocksDB's small residual overhead.
const rocksDBEntryPadding = 6

// Options configures Open. The zero value selects ProfileLevelDB with the
// profile's defaults; any non-zero field overrides the profile.
type Options struct {
	// Profile selects the engine behaviour (default ProfileLevelDB).
	Profile Profile

	// MemTableBytes overrides the write buffer size (the paper uses 64 MB
	// for all stores).
	MemTableBytes int64
	// SSTableBytes overrides the physical SSTable size.
	SSTableBytes int64
	// LogicalSSTableBytes overrides the BoLT logical SSTable size.
	LogicalSSTableBytes int64
	// GroupCompactionBytes overrides the BoLT group compaction budget.
	GroupCompactionBytes int64
	// L1MaxBytes overrides the level-1 size limit.
	L1MaxBytes int64
	// TableCacheEntries overrides the TableCache capacity (in tables, like
	// LevelDB's max_open_files).
	TableCacheEntries int
	// BlockCacheBytes overrides the BlockCache capacity.
	BlockCacheBytes int64
	// CacheShards sets the shard count for the block/table/fd caches.
	// Zero (the default) auto-sizes to the next power of two >=
	// GOMAXPROCS, capped at 64; 1 selects the single-lock layout; other
	// values round up to a power of two.
	CacheShards int
	// L0SlowdownTrigger / L0StopTrigger override the write governors;
	// negative disables them explicitly.
	L0SlowdownTrigger int
	L0StopTrigger     int
	// BloomBitsPerKey overrides the filter density (default 10).
	BloomBitsPerKey int
	// BlockSize overrides the data block size (default 4 KiB). The bench
	// harness scales it with the other size constants so the
	// index-to-block ratio (the TableCache miss penalty driver) matches
	// the paper.
	BlockSize int

	// SyncWrites syncs the WAL on every commit (durable acknowledgements).
	SyncWrites bool

	// ValueThreshold enables WAL-time key-value separation: values of at
	// least this many bytes are appended to a value log during commit and
	// the tree stores a small pointer, so flushes and compactions never
	// rewrite the bytes. Zero (the default) disables separation; values
	// below the threshold are always stored inline.
	ValueThreshold int
	// VLogSegmentBytes sets the value-log segment rotation size
	// (default 16 MB).
	VLogSegmentBytes int64
	// VLogGCGarbageRatio sets the garbage fraction of a sealed segment's
	// uncollected span at which background value GC collects it
	// (default 0.5; must be <= 1).
	VLogGCGarbageRatio float64
	// VLogGCChunkBytes bounds how much of a segment one value-GC pass
	// scans (default 4 MB).
	VLogGCChunkBytes int64

	// ScrubInterval enables the background integrity scrubber: every
	// interval, one pass verifies every live table's block checksums
	// (bypassing the block cache, so at-rest bit rot is caught even for
	// cached data) and quarantines corrupt tables for salvage. Zero
	// disables the scrubber; DB.Scrub runs a pass on demand either way.
	ScrubInterval time.Duration
	// ScrubBytesPerSec throttles scrub read bandwidth (default 32 MB/s;
	// negative disables throttling).
	ScrubBytesPerSec int64

	// MaxBackgroundCompactions bounds the background compaction worker
	// pool: up to this many compactions with disjoint inputs and
	// non-overlapping output ranges run concurrently (L0->L1 stays
	// exclusive). Zero selects the default min(4, NumCPU); negative
	// selects 1, the serialized single-worker behaviour.
	MaxBackgroundCompactions int

	// Ablation switches (Figure 12): starting from a BoLT profile, disable
	// individual elements. DisableGroupCompaction yields +LS,
	// DisableSettled yields +GC, DisableFDCache yields +STL.
	DisableGroupCompaction bool
	DisableSettled         bool
	DisableFDCache         bool
	// EnableSettled / EnableFDCache turn the corresponding BoLT elements
	// on over a non-BoLT profile (used with LogicalSSTableBytes to graft
	// BoLT onto, e.g., the RocksDB profile — the paper's future work).
	EnableSettled bool
	EnableFDCache bool

	// VerifyInvariants enables internal layout checks after every flush
	// and compaction (for tests).
	VerifyInvariants bool

	// EventLogSize sets how many recent engine events DB.Events retains
	// (default 512).
	EventLogSize int
	// EventListener, when non-nil, receives every engine event (flushes,
	// compactions, stalls, WAL rotations, hole punches, background-error
	// handling) synchronously as it is emitted. The callback runs with no
	// engine lock held and may call back into the DB, but it runs on the
	// emitting goroutine, so a slow listener slows background work.
	EventListener func(Event)
}

// coreConfig expands the profile plus overrides into the engine config.
func (o *Options) coreConfig() core.Config {
	p := o.Profile
	if p == 0 {
		p = ProfileLevelDB
	}
	var c core.Config
	switch p {
	case ProfileLevelDB:
		c = core.Config{
			MemTableBytes:     4 << 20,
			MaxSSTableBytes:   2 << 20,
			L0SlowdownTrigger: 8,
			L0StopTrigger:     12,
			SeekCompaction:    true,
			EntryPadding:      levelDBFamilyEntryPadding,
		}
	case ProfileLevelDB64MB:
		c = core.Config{
			MemTableBytes:     4 << 20,
			MaxSSTableBytes:   64 << 20,
			L0SlowdownTrigger: 8,
			L0StopTrigger:     12,
			SeekCompaction:    true,
			EntryPadding:      levelDBFamilyEntryPadding,
		}
	case ProfileHyperLevelDB:
		c = core.Config{
			MemTableBytes:     4 << 20,
			MaxSSTableBytes:   32 << 20,
			L0SlowdownTrigger: 0,
			L0StopTrigger:     0,
			ConcurrentWriters: true,
			SeekCompaction:    false,
			EntryPadding:      levelDBFamilyEntryPadding,
		}
	case ProfileRocksDB:
		c = core.Config{
			MemTableBytes:       4 << 20,
			MaxSSTableBytes:     64 << 20,
			L0SlowdownTrigger:   20,
			L0StopTrigger:       36,
			L1MaxBytes:          256 << 20,
			SeparateFlushThread: true,
			SeekCompaction:      false,
			EntryPadding:        rocksDBEntryPadding,
		}
	case ProfilePebblesDB:
		c = core.Config{
			MemTableBytes:     4 << 20,
			MaxSSTableBytes:   64 << 20,
			L0SlowdownTrigger: 0,
			L0StopTrigger:     0,
			ConcurrentWriters: true,
			Fragmented:        true,
			SeekCompaction:    false,
			EntryPadding:      levelDBFamilyEntryPadding,
		}
	case ProfileBoLT:
		c = core.Config{
			MemTableBytes:        4 << 20,
			MaxSSTableBytes:      2 << 20,
			LogicalSSTableBytes:  1 << 20,
			GroupCompactionBytes: 64 << 20,
			SettledCompaction:    true,
			FDCache:              true,
			L0SlowdownTrigger:    8,
			L0StopTrigger:        12,
			SeekCompaction:       true,
			EntryPadding:         levelDBFamilyEntryPadding,
		}
	case ProfileHyperBoLT:
		c = core.Config{
			MemTableBytes:        4 << 20,
			MaxSSTableBytes:      32 << 20,
			LogicalSSTableBytes:  1 << 20,
			GroupCompactionBytes: 64 << 20,
			SettledCompaction:    true,
			FDCache:              true,
			L0SlowdownTrigger:    0,
			L0StopTrigger:        0,
			ConcurrentWriters:    true,
			SeekCompaction:       false,
			EntryPadding:         levelDBFamilyEntryPadding,
		}
	}

	if o.MemTableBytes > 0 {
		c.MemTableBytes = o.MemTableBytes
	}
	if o.SSTableBytes > 0 {
		c.MaxSSTableBytes = o.SSTableBytes
	}
	if o.LogicalSSTableBytes > 0 {
		c.LogicalSSTableBytes = o.LogicalSSTableBytes
	}
	if o.GroupCompactionBytes > 0 {
		c.GroupCompactionBytes = o.GroupCompactionBytes
	}
	if o.L1MaxBytes > 0 {
		c.L1MaxBytes = o.L1MaxBytes
	}
	if o.TableCacheEntries > 0 {
		c.TableCacheEntries = o.TableCacheEntries
	}
	if o.BlockCacheBytes > 0 {
		c.BlockCacheBytes = o.BlockCacheBytes
	}
	// Passed through even when negative: core clamps invalid values and
	// emits a config-clamp warning event naming the knob.
	if o.CacheShards != 0 {
		c.CacheShards = o.CacheShards
	}
	if o.L0SlowdownTrigger != 0 {
		c.L0SlowdownTrigger = max(o.L0SlowdownTrigger, 0)
	}
	if o.L0StopTrigger != 0 {
		c.L0StopTrigger = max(o.L0StopTrigger, 0)
	}
	if o.BloomBitsPerKey != 0 {
		c.BloomBitsPerKey = o.BloomBitsPerKey
	}
	if o.BlockSize > 0 {
		c.BlockSize = o.BlockSize
	}
	c.SyncWAL = o.SyncWrites
	if o.ValueThreshold > 0 {
		c.ValueThreshold = o.ValueThreshold
	}
	if o.VLogSegmentBytes > 0 {
		c.VLogSegmentBytes = o.VLogSegmentBytes
	}
	if o.VLogGCGarbageRatio > 0 {
		c.VLogGCGarbageRatio = o.VLogGCGarbageRatio
	}
	if o.VLogGCChunkBytes > 0 {
		c.VLogGCChunkBytes = o.VLogGCChunkBytes
	}
	c.ScrubInterval = o.ScrubInterval
	c.ScrubBytesPerSec = o.ScrubBytesPerSec
	c.MaxBackgroundCompactions = o.MaxBackgroundCompactions
	c.VerifyInvariants = o.VerifyInvariants
	c.EventLogSize = o.EventLogSize
	if o.EventListener != nil {
		c.EventListener = events.Listener(o.EventListener)
	}
	if o.EnableSettled {
		c.SettledCompaction = true
	}
	if o.EnableFDCache {
		c.FDCache = true
	}
	if o.DisableGroupCompaction {
		c.GroupCompactionBytes = 0
	}
	if o.DisableSettled {
		c.SettledCompaction = false
	}
	if o.DisableFDCache {
		c.FDCache = false
	}
	return c
}

// SimDisk parameterizes the simulated SSD used by OpenSim; zero fields take
// defaults approximating the paper's SATA SSD (Samsung 860 EVO class).
type SimDisk struct {
	// WriteBandwidth in bytes/second (default 500 MB/s).
	WriteBandwidth float64
	// ReadBandwidth in bytes/second (default 550 MB/s).
	ReadBandwidth float64
	// ReadLatency per read op (default 80 ”s).
	ReadLatency time.Duration
	// BarrierLatency per fsync barrier (default 3 ms).
	BarrierLatency time.Duration
	// MetadataOpLatency per create/open/unlink/punch (default 30 ”s).
	MetadataOpLatency time.Duration
	// QueueDepth bounds concurrent reads (default 32).
	QueueDepth int
	// TimeScale scales all simulated sleeps; 0 means 1.0 (real time),
	// negative disables sleeping entirely (pure accounting).
	TimeScale float64
}

func (d SimDisk) profile() simdisk.Profile {
	p := simdisk.DefaultProfile()
	if d.WriteBandwidth > 0 {
		p.WriteBandwidth = d.WriteBandwidth
	}
	if d.ReadBandwidth > 0 {
		p.ReadBandwidth = d.ReadBandwidth
	}
	if d.ReadLatency > 0 {
		p.ReadLatency = d.ReadLatency
	}
	if d.BarrierLatency > 0 {
		p.BarrierLatency = d.BarrierLatency
	}
	if d.MetadataOpLatency > 0 {
		p.MetadataOpLatency = d.MetadataOpLatency
	}
	if d.QueueDepth > 0 {
		p.QueueDepth = d.QueueDepth
	}
	switch {
	case d.TimeScale < 0:
		p.TimeScale = 0
	case d.TimeScale > 0:
		p.TimeScale = d.TimeScale
	}
	return p
}

// DB is an open database.
//
//boltvet:mustclose
type DB struct {
	inner  *core.DB
	device *simdisk.Device // nil unless OpenSim
}

// Open opens (creating if necessary) a database in directory path on the
// real filesystem.
func Open(path string, o *Options) (*DB, error) {
	fs, err := vfs.NewOS(path)
	if err != nil {
		return nil, err
	}
	return openOn(fs, o, nil)
}

// OpenMem opens a fresh in-memory database (no durability; tests/demos).
func OpenMem(o *Options) (*DB, error) {
	return openOn(vfs.NewMem(), o, nil)
}

// OpenSim opens an in-memory database whose I/O is charged to a simulated
// SSD — the substrate for the paper's benchmark reproduction.
func OpenSim(o *Options, d SimDisk) (*DB, error) {
	device := simdisk.NewDevice(d.profile())
	return openOn(vfs.NewSim(device), o, device)
}

func openOn(fs vfs.FS, o *Options, device *simdisk.Device) (*DB, error) {
	if o == nil {
		o = &Options{}
	}
	inner, err := core.Open(fs, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, device: device}, nil
}

// Close releases the database.
func (db *DB) Close() error { return db.inner.Close() }

// Put inserts or overwrites key.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Delete removes key.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// Get returns the value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	v, err := db.inner.Get(key, nil)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// Batch is a set of writes applied atomically by Apply.
type Batch struct {
	b *batch.Batch
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{b: batch.New()} }

// Put records an insertion.
func (b *Batch) Put(key, value []byte) { b.b.Put(key, value) }

// Delete records a deletion.
func (b *Batch) Delete(key []byte) { b.b.Delete(key) }

// Len returns the number of operations.
func (b *Batch) Len() int { return b.b.Count() }

// Apply writes the batch atomically.
func (db *DB) Apply(b *Batch) error { return db.inner.Write(b.b) }

// Snapshot pins a consistent read view.
//
//boltvet:mustclose
type Snapshot struct {
	s *core.Snapshot
}

// GetSnapshot pins the current state; callers must Release it.
func (db *DB) GetSnapshot() *Snapshot { return &Snapshot{s: db.inner.NewSnapshot()} }

// Release unpins the snapshot.
func (s *Snapshot) Release() { s.s.Release() }

// GetAt reads key at the snapshot.
func (db *DB) GetAt(key []byte, snap *Snapshot) ([]byte, error) {
	v, err := db.inner.Get(key, snap.s)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// Iterator walks user keys in ascending order.
//
//boltvet:mustclose
type Iterator struct {
	it *core.DBIter
}

// NewIterator returns an iterator over the latest state (snap may be nil).
func (db *DB) NewIterator(snap *Snapshot) *Iterator {
	var cs *core.Snapshot
	if snap != nil {
		cs = snap.s
	}
	return &Iterator{it: db.inner.NewIter(cs)}
}

// First positions at the first key.
func (it *Iterator) First() bool { return it.it.First() }

// SeekGE positions at the first key >= key.
func (it *Iterator) SeekGE(key []byte) bool { return it.it.SeekGE(key) }

// Next advances.
func (it *Iterator) Next() bool { return it.it.Next() }

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// Key returns the current key (valid until the next move).
func (it *Iterator) Key() []byte { return it.it.Key() }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.it.Value() }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.it.Err() }

// Close releases the iterator.
func (it *Iterator) Close() error { return it.it.Close() }

// Stats is a combined snapshot of engine and I/O counters — everything the
// paper's figures are built from.
type Stats struct {
	// Fsyncs is the number of fsync/fdatasync barriers issued (Figures 4a
	// and 11).
	Fsyncs int64
	// BytesWritten / BytesRead are file-level totals (Figure 12's side
	// graph).
	BytesWritten int64
	BytesRead    int64
	// HolePunches counts barrier-free logical-SSTable reclamations.
	HolePunches int64

	// Writes / Gets count committed operations and lookups; BytesIn is
	// the accepted user payload volume (write amplification =
	// BytesWritten / BytesIn).
	Writes  int64
	Gets    int64
	BytesIn int64
	// StallSlowdown / StallStops / StallTime describe write-governor
	// activity.
	StallSlowdown int64
	StallStops    int64
	StallTime     time.Duration

	// Compactions / MemtableFlushes / SettledPromotions / SeekCompactions
	// describe background activity.
	Compactions       int64
	MemtableFlushes   int64
	SettledPromotions int64
	SeekCompactions   int64
	// CompactionBytesIn/Out measure compaction traffic (write
	// amplification = (BytesWritten)/(user bytes)).
	CompactionBytesIn  int64
	CompactionBytesOut int64

	// TablesChecked / BloomSkips describe read-path table consultation.
	TablesChecked int64
	BloomSkips    int64

	// VLogAppends / VLogAppendedBytes count records separated into the
	// value log at commit time; VLogDerefs counts reads that followed a
	// pointer back into it. VLogGCPasses and VLogReclaimedBytes describe
	// value-GC progress (bytes the GC watermark reclaimed, whether hole-
	// punched or unlinked with a fully collected segment).
	VLogAppends        int64
	VLogAppendedBytes  int64
	VLogDerefs         int64
	VLogGCPasses       int64
	VLogReclaimedBytes int64

	// TableCacheHits/Misses and MetaBytesRead quantify the metadata-
	// caching overhead of Section 2.6 (a TableCache miss reads the whole
	// filter+index region, proportional to SSTable size).
	TableCacheHits   int64
	TableCacheMisses int64
	MetaBytesRead    int64
	BlockCacheHits   int64
	BlockCacheMisses int64

	// BlockCacheUsedBytes is the block cache's resident charge;
	// CacheShards is the resolved per-cache shard count (see
	// Options.CacheShards).
	BlockCacheUsedBytes int64
	CacheShards         int
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	ios := db.inner.IO().Snapshot()
	m := db.inner.Metrics().Snapshot()
	cs := db.inner.CacheStats()
	return Stats{
		TableCacheHits:      cs.TableHits,
		TableCacheMisses:    cs.TableMisses,
		MetaBytesRead:       cs.MetaBytesRead,
		BlockCacheHits:      cs.BlockHits,
		BlockCacheMisses:    cs.BlockMisses,
		BlockCacheUsedBytes: cs.BlockUsedBytes,
		CacheShards:         cs.BlockShards,
		Fsyncs:              ios.Fsyncs,
		BytesWritten:        ios.BytesWritten,
		BytesRead:           ios.BytesRead,
		HolePunches:         ios.HolePunches,
		Writes:              m.Writes,
		Gets:                m.Gets,
		BytesIn:             m.BytesIn,
		StallSlowdown:       m.StallSlowdown,
		StallStops:          m.StallStops,
		StallTime:           m.StallTime,
		Compactions:         m.Compactions,
		MemtableFlushes:     m.MemtableFlushes,
		SettledPromotions:   m.SettledPromotions,
		SeekCompactions:     m.SeekCompactions,
		CompactionBytesIn:   m.CompactionBytesIn,
		CompactionBytesOut:  m.CompactionBytesOut,
		TablesChecked:       m.TablesChecked,
		BloomSkips:          m.BloomSkips,
		VLogAppends:         m.VLogAppends,
		VLogAppendedBytes:   m.VLogAppendedBytes,
		VLogDerefs:          m.VLogDerefs,
		VLogGCPasses:        m.VLogGCPasses,
		VLogReclaimedBytes:  m.VLogReclaimedBytes,
	}
}

// SimStats reports the simulated device counters; ok is false when the DB
// was not opened with OpenSim.
type SimStats struct {
	Barriers     int64
	BytesFlushed int64
	BytesRead    int64
	Reads        int64
	BarrierStall time.Duration
	ReadStall    time.Duration
}

// SimStats returns simulated-device counters for OpenSim databases.
func (db *DB) SimStats() (SimStats, bool) {
	if db.device == nil {
		return SimStats{}, false
	}
	s := db.device.Stats()
	return SimStats{
		Barriers:     s.Barriers,
		BytesFlushed: s.BytesFlushed,
		BytesRead:    s.BytesRead,
		Reads:        s.Reads,
		BarrierStall: s.BarrierStall,
		ReadStall:    s.ReadStall,
	}, true
}

// WaitIdle blocks until background flushes and compactions drain, and
// surfaces any background failure pending at that point: a fatal engine
// error, or the read-only degradation (matched by ErrReadOnlyMode).
func (db *DB) WaitIdle() error { return db.inner.WaitIdle() }

// ErrCorrupt is the table-corruption sentinel: every corruption finding —
// a checksum mismatch surfacing from a read, a RangeCorruptError for a
// quarantined span — matches errors.Is(err, ErrCorrupt).
var ErrCorrupt = sstable.ErrCorrupt

// RangeCorruptError is returned by reads whose key falls inside the span
// of a quarantined (corrupt) table: the error names the unavailable
// user-key range while keys outside it — and all writes — keep working.
// The range recovers once the salvage compaction rewrites the table's
// readable blocks. Match with errors.As.
type RangeCorruptError = core.RangeCorruptError

// Scrub runs one synchronous integrity pass over all live tables,
// verifying every block checksum and quarantining corrupt tables for
// salvage. The background scrubber (Options.ScrubInterval) runs the same
// pass periodically.
func (db *DB) Scrub() error { return db.inner.Scrub() }

// CompactRange synchronously flushes the memtable and compacts every table
// overlapping the user-key range [start, limit] (nil = unbounded) down the
// tree. CompactRange(nil, nil) settles the whole database.
func (db *DB) CompactRange(start, limit []byte) error {
	return db.inner.CompactRange(start, limit)
}

// CompactValueLog synchronously garbage-collects the value log until no
// sealed segment has uncollected garbage, rewriting live records and
// reclaiming dead ranges. A no-op unless Options.ValueThreshold enabled
// key-value separation.
func (db *DB) CompactValueLog() error { return db.inner.CompactValueLog() }

// RepairReport summarizes a Repair run.
type RepairReport struct {
	TablesRecovered int
	TablesLost      int
	FilesScanned    int
	Entries         int
	VLogSegments    int
}

// Repair rebuilds the MANIFEST of the database at path from its table
// files (for use when CURRENT or the MANIFEST is lost or corrupt; Open
// refuses such directories and points here). See cmd/bolt-repair.
func Repair(path string) (RepairReport, error) {
	fs, err := vfs.NewOS(path)
	if err != nil {
		return RepairReport{}, err
	}
	r, err := core.Repair(fs, core.Config{})
	if err != nil {
		return RepairReport{}, err
	}
	return RepairReport{
		TablesRecovered: r.TablesRecovered,
		TablesLost:      r.TablesLost,
		FilesScanned:    r.FilesScanned,
		Entries:         r.Entries,
		VLogSegments:    r.VLogSegments,
	}, nil
}

// Event is one entry of the engine's structured event trace: a flush,
// compaction, stall, WAL rotation, hole punch, or background-error
// transition, with its volumes, barrier count, and duration. Its String
// method renders a one-line human-readable form.
type Event = events.Event

// EventType labels an Event's kind; the Event* constants enumerate it.
type EventType = events.Type

// Event types, for filtering traces and listener callbacks.
const (
	EventFlushStart        = events.TypeFlushStart
	EventFlushEnd          = events.TypeFlushEnd
	EventCompactionStart   = events.TypeCompactionStart
	EventCompactionEnd     = events.TypeCompactionEnd
	EventSettledPromotion  = events.TypeSettledPromotion
	EventHolePunch         = events.TypeHolePunch
	EventHolePunchFallback = events.TypeHolePunchFallback
	EventStallBegin        = events.TypeStallBegin
	EventStallEnd          = events.TypeStallEnd
	EventWALRotation       = events.TypeWALRotation
	EventBgRetry           = events.TypeBgRetry
	EventBgDegraded        = events.TypeBgDegraded
	EventScrubStart        = events.TypeScrubStart
	EventScrubEnd          = events.TypeScrubEnd
	EventScrubFinding      = events.TypeScrubFinding
	EventQuarantine        = events.TypeQuarantine
	EventQuarantineClear   = events.TypeQuarantineClear
	EventConfigClamp       = events.TypeConfigClamp
	EventVLogRotation      = events.TypeVLogRotation
	EventVLogGC            = events.TypeVLogGC
)

// Events returns the retained event trace, oldest first. The ring holds
// the most recent Options.EventLogSize events; install an EventListener to
// observe every event without loss.
func (db *DB) Events() []Event { return db.inner.Events() }

// LevelStats describes one level of the live tree: layout (files, tables,
// bytes, dead bytes, read amplification) plus cumulative per-level
// compaction counters.
type LevelStats = metrics.LevelStats

// LevelStats reports the live shape of the tree, one entry per level.
func (db *DB) LevelStats() []LevelStats { return db.inner.LevelStats() }

// WriteMetrics renders the full metric surface — engine counters, latency
// summaries, per-level stats, cache and I/O counters — in the Prometheus
// text exposition format. Mount it on an HTTP handler to scrape the
// engine (see examples/kvserver).
func (db *DB) WriteMetrics(w io.Writer) error { return db.inner.WriteMetrics(w) }

// NumLevelFiles returns per-level table counts (diagnostics).
func (db *DB) NumLevelFiles() []int {
	files := db.inner.NumLevelFiles()
	return files[:]
}

// DebugLayout renders the current table layout (diagnostics).
func (db *DB) DebugLayout() string { return db.inner.DebugVersion() }
