package bolt

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
)

func allProfiles() []Profile {
	return []Profile{
		ProfileLevelDB, ProfileLevelDB64MB, ProfileHyperLevelDB,
		ProfileRocksDB, ProfilePebblesDB, ProfileBoLT, ProfileHyperBoLT,
	}
}

// smallOpts shrinks a profile to unit-test scale while keeping its
// behavioural switches.
func smallOpts(p Profile) *Options {
	return &Options{
		Profile:              p,
		MemTableBytes:        32 << 10,
		SSTableBytes:         8 << 10,
		LogicalSSTableBytes:  4 << 10, // ignored by non-BoLT profiles
		GroupCompactionBytes: 16 << 10,
		L1MaxBytes:           64 << 10,
		VerifyInvariants:     true,
	}
}

func TestPublicAPIRoundTripAllProfiles(t *testing.T) {
	for _, p := range allProfiles() {
		t.Run(p.String(), func(t *testing.T) {
			o := smallOpts(p)
			if p != ProfileBoLT && p != ProfileHyperBoLT {
				o.LogicalSSTableBytes = 0
			}
			db, err := OpenMem(o)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("user%08d", i))
				if err := db.Put(key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2000; i += 13 {
				key := []byte(fmt.Sprintf("user%08d", i))
				v, err := db.Get(key)
				if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
					t.Fatalf("Get(%s) = %q, %v", key, v, err)
				}
			}
			if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: %v", err)
			}
			s := db.Stats()
			if s.Writes != 2000 || s.Fsyncs == 0 {
				t.Fatalf("stats: %+v", s)
			}
		})
	}
}

func TestPublicBatchAndIterator(t *testing.T) {
	db, err := OpenMem(smallOpts(ProfileBoLT))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Put([]byte("c"), []byte("3"))
	b.Delete([]byte("b"))
	if b.Len() != 4 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	it := db.NewIterator(nil)
	defer it.Close()
	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]string{"a=1", "c=3"})
	if fmt.Sprint(got) != want {
		t.Fatalf("scan = %v", got)
	}
	if !it.SeekGE([]byte("b")) || string(it.Key()) != "c" {
		t.Fatalf("SeekGE(b) -> %q", it.Key())
	}
}

func TestPublicSnapshots(t *testing.T) {
	db, err := OpenMem(smallOpts(ProfileLevelDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	snap := db.GetSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))
	if v, err := db.GetAt([]byte("k"), snap); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	if v, _ := db.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("latest = %q", v)
	}
}

func TestOpenOnDiskPersists(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts(ProfileBoLT))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, smallOpts(ProfileBoLT))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i += 37 {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("reopened Get: %v", err)
		}
	}
}

func TestOpenSimChargesDevice(t *testing.T) {
	db, err := OpenSim(smallOpts(ProfileLevelDB), SimDisk{TimeScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("user%08d", i)), make([]byte, 100))
	}
	sim, ok := db.SimStats()
	if !ok {
		t.Fatal("SimStats unavailable on OpenSim DB")
	}
	if sim.Barriers == 0 || sim.BytesFlushed == 0 {
		t.Fatalf("device never charged: %+v", sim)
	}
	if sim.Barriers != db.Stats().Fsyncs {
		t.Fatalf("device barriers %d != engine fsyncs %d", sim.Barriers, db.Stats().Fsyncs)
	}
	// Non-sim DBs report no sim stats.
	mem, _ := OpenMem(smallOpts(ProfileLevelDB))
	defer mem.Close()
	if _, ok := mem.SimStats(); ok {
		t.Fatal("mem DB reported sim stats")
	}
}

func TestAblationOptionsMapToConfig(t *testing.T) {
	o := &Options{Profile: ProfileBoLT}
	c := o.coreConfig()
	if c.GroupCompactionBytes == 0 || !c.SettledCompaction || !c.FDCache || c.LogicalSSTableBytes == 0 {
		t.Fatalf("BoLT profile incomplete: %+v", c)
	}
	o = &Options{Profile: ProfileBoLT, DisableGroupCompaction: true, DisableSettled: true, DisableFDCache: true}
	c = o.coreConfig()
	if c.GroupCompactionBytes != 0 || c.SettledCompaction || c.FDCache {
		t.Fatalf("ablation switches ignored: %+v", c)
	}
	if c.LogicalSSTableBytes == 0 {
		t.Fatal("+LS must retain logical SSTables")
	}
}

func TestProfileDefaults(t *testing.T) {
	cases := []struct {
		p          Profile
		sstable    int64
		governed   bool
		fragmented bool
	}{
		{ProfileLevelDB, 2 << 20, true, false},
		{ProfileLevelDB64MB, 64 << 20, true, false},
		{ProfileHyperLevelDB, 32 << 20, false, false},
		{ProfileRocksDB, 64 << 20, true, false},
		{ProfilePebblesDB, 64 << 20, false, true},
		{ProfileBoLT, 2 << 20, true, false},
		{ProfileHyperBoLT, 32 << 20, false, false},
	}
	for _, tc := range cases {
		c := (&Options{Profile: tc.p}).coreConfig()
		if c.MaxSSTableBytes != tc.sstable {
			t.Errorf("%v: sstable %d want %d", tc.p, c.MaxSSTableBytes, tc.sstable)
		}
		if (c.L0StopTrigger > 0) != tc.governed {
			t.Errorf("%v: governor mismatch", tc.p)
		}
		if c.Fragmented != tc.fragmented {
			t.Errorf("%v: fragmented mismatch", tc.p)
		}
	}
	// Profile names.
	for _, p := range allProfiles() {
		if p.String() == "" {
			t.Errorf("profile %d has no name", p)
		}
	}
}

func TestPublicCompactRangeAndRepair(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts(ProfileBoLT))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v"))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if db.NumLevelFiles()[0] != 0 {
		t.Fatalf("L0 not settled: %v", db.NumLevelFiles())
	}
	db.WaitIdle()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the metadata, verify Open refuses, then repair.
	if err := os.Remove(dir + "/CURRENT"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, smallOpts(ProfileBoLT)); err == nil {
		t.Fatal("Open accepted a database without CURRENT")
	}
	report, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.TablesRecovered == 0 {
		t.Fatalf("repair salvaged nothing: %+v", report)
	}
	db2, err := Open(dir, smallOpts(ProfileBoLT))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 1500; i += 97 {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatalf("k%06d lost after repair: %v", i, err)
		}
	}
}

func TestPublicScrubAndIntegrityMetrics(t *testing.T) {
	o := smallOpts(ProfileBoLT)
	o.ScrubBytesPerSec = -1 // unthrottled: this is a smoke pass, not a pacing test
	db, err := OpenMem(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Scrub(); err != nil {
		t.Fatal(err)
	}
	var m strings.Builder
	if err := db.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bolt_scrub_passes_total 1",
		"bolt_scrub_corruptions_total 0",
		"bolt_quarantined_tables 0",
	} {
		if !strings.Contains(m.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, m.String())
		}
	}
	if !strings.Contains(m.String(), "bolt_scrub_bytes_read_total") {
		t.Fatal("scrub byte counter not exported")
	}
	// The scrub/quarantine event types render with names, not numbers.
	for _, ev := range []EventType{EventScrubStart, EventScrubEnd, EventScrubFinding, EventQuarantine, EventQuarantineClear} {
		if s := ev.String(); strings.HasPrefix(s, "event(") {
			t.Fatalf("event type %d has no name", ev)
		}
	}
	// The typed range error matches the public corruption sentinel.
	if !errors.Is(&RangeCorruptError{}, ErrCorrupt) {
		t.Fatal("RangeCorruptError does not match ErrCorrupt")
	}
}
