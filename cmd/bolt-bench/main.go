// Command bolt-bench regenerates the paper's figures on the simulated-SSD
// substrate. Each experiment prints the data series of one figure.
//
// Usage:
//
//	bolt-bench -list
//	bolt-bench -experiment fig11 [-scale small|medium|large]
//	bolt-bench -experiment all -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bolt-lsm/bolt/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bolt-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "figure id (fig4, fig6, fig11, fig12a, fig12b, fig13, fig14, fig15, fig16) or 'all'")
		scaleName  = flag.String("scale", "medium", "experiment scale: small | medium | large")
		list       = flag.Bool("list", false, "list experiments and exit")
		statsEvery = flag.Duration("stats-every", 0, "print an engine stats line to stderr at this interval while a database is open (0 disables)")
	)
	flag.Parse()
	bench.StatsEvery = *statsEvery

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	params := bench.Params{Scale: scale, Out: os.Stdout}

	var todo []bench.Experiment
	if *experiment == "all" {
		todo = bench.Experiments()
	} else {
		e, ok := bench.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
		}
		todo = []bench.Experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(params); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("=== %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
