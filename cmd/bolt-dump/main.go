// Command bolt-dump inspects a database directory: the MANIFEST's version
// state (levels, logical SSTables and their physical locations), per-level
// statistics, and — with -verify — a full checksum walk of every live
// table.
//
// Usage:
//
//	bolt-dump -db /tmp/mydb
//	bolt-dump -db /tmp/mydb -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bolt-dump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir    = flag.String("db", "", "database directory (required)")
		verify = flag.Bool("verify", false, "read every live table and verify block checksums")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-db is required")
	}
	fs, err := vfs.NewOS(*dir)
	if err != nil {
		return err
	}
	vs, err := manifest.Load(fs)
	if err != nil {
		return fmt.Errorf("load manifest: %w", err)
	}
	defer vs.Close()

	v := vs.Current()
	fmt.Printf("database %s\n", *dir)
	fmt.Printf("  last sequence: %d\n", vs.LastSeq())
	fmt.Printf("  wal number:    %d\n", vs.LogNum())
	fmt.Printf("  tables:        %d (%s)\n", v.NumFiles(), fmtBytes(v.TotalBytes()))

	physTables := map[uint64]int{}
	for level := 0; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		fmt.Printf("\nlevel %d: %d tables, %s\n", level, len(files), fmtBytes(v.LevelBytes(level)))
		for _, f := range files {
			physTables[f.PhysNum]++
			fmt.Printf("  table %6d  phys %6d @%-10d %10s  [%q .. %q]\n",
				f.Num, f.PhysNum, f.Offset, fmtBytes(f.Size),
				f.Smallest.UserKey(), f.Largest.UserKey())
		}
	}

	// Physical file summary: how many logical SSTables share each file.
	var physNums []uint64
	for num := range physTables {
		physNums = append(physNums, num)
	}
	sort.Slice(physNums, func(i, j int) bool { return physNums[i] < physNums[j] })
	fmt.Printf("\nphysical files: %d\n", len(physNums))
	shared := 0
	for _, num := range physNums {
		if physTables[num] > 1 {
			shared++
		}
	}
	fmt.Printf("  holding multiple logical SSTables (compaction files): %d\n", shared)

	if !*verify {
		return nil
	}
	fmt.Printf("\nverifying tables...\n")
	bad := 0
	for level := 0; level < manifest.NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if err := verifyTable(fs, f); err != nil {
				bad++
				fmt.Printf("  table %d: %v\n", f.Num, err)
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d corrupt tables", bad)
	}
	fmt.Printf("all %d tables verified clean\n", v.NumFiles())
	return nil
}

func verifyTable(fs vfs.FS, meta *manifest.FileMeta) error {
	f, err := fs.Open(manifest.TableFileName(meta.PhysNum))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := sstable.OpenReader(f, meta.Num, meta.Offset, meta.Size, nil)
	if err != nil {
		return err
	}
	it := r.NewIter(sstable.IterOpts{Readahead: 512 << 10})
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if n != r.NumEntries() {
		return fmt.Errorf("entry count %d != footer %d", n, r.NumEntries())
	}
	return nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
