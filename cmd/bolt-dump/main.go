// Command bolt-dump inspects a database directory: the MANIFEST's version
// state (levels, logical SSTables and their physical locations, value-log
// segments with live/garbage byte accounting), per-level statistics, and —
// with -verify — a full checksum walk of every live table and every
// value-log record above each segment's reclamation watermark. With
// -events it additionally opens the engine (replaying the WAL,
// exactly like a normal open) and prints the event trace and live
// per-level statistics the engine reports.
//
// Usage:
//
//	bolt-dump -db /tmp/mydb
//	bolt-dump -db /tmp/mydb -verify
//	bolt-dump -db /tmp/mydb -events
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/vlog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bolt-dump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir    = flag.String("db", "", "database directory (required)")
		verify = flag.Bool("verify", false, "read every live table and verify block checksums")
		events = flag.Bool("events", false, "open the engine (replays the WAL) and print its event trace and live level stats")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-db is required")
	}
	fs, err := vfs.NewOS(*dir)
	if err != nil {
		return err
	}
	vs, err := manifest.Load(fs)
	if err != nil {
		return fmt.Errorf("load manifest: %w", err)
	}
	defer vs.Close()

	v := vs.Current()
	fmt.Printf("database %s\n", *dir)
	fmt.Printf("  last sequence: %d\n", vs.LastSeq())
	fmt.Printf("  wal number:    %d\n", vs.LogNum())
	fmt.Printf("  tables:        %d (%s)\n", v.NumFiles(), fmtBytes(v.TotalBytes()))

	physTables := map[uint64]int{}
	for level := 0; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		fmt.Printf("\nlevel %d: %d tables, %s\n", level, len(files), fmtBytes(v.LevelBytes(level)))
		for _, f := range files {
			physTables[f.PhysNum]++
			fmt.Printf("  table %6d  phys %6d @%-10d %10s  [%q .. %q]\n",
				f.Num, f.PhysNum, f.Offset, fmtBytes(f.Size),
				f.Smallest.UserKey(), f.Largest.UserKey())
		}
	}

	// Physical file summary: how many logical SSTables share each file.
	var physNums []uint64
	for num := range physTables {
		physNums = append(physNums, num)
	}
	sort.Slice(physNums, func(i, j int) bool { return physNums[i] < physNums[j] })
	fmt.Printf("\nphysical files: %d\n", len(physNums))
	shared := 0
	for _, num := range physNums {
		if physTables[num] > 1 {
			shared++
		}
	}
	fmt.Printf("  holding multiple logical SSTables (compaction files): %d\n", shared)

	// Value-log segments: the manifest records each segment's durable size,
	// reclamation watermark, and compaction-accounted garbage; live bytes
	// are the derived GC-victim metric.
	if segs := v.VLogSegments(); len(segs) > 0 {
		fmt.Printf("\nvalue log: %d segments\n", len(segs))
		for _, s := range segs {
			fmt.Printf("  vlog %6d  %10s  live %10s  garbage %10s  gc@%d\n",
				s.Num, fmtBytes(s.Size), fmtBytes(s.LiveBytes()),
				fmtBytes(s.Garbage), s.GCOffset)
		}
	}

	// Per-level summary from the manifest alone (no engine open needed).
	fmt.Printf("\nper-level stats:\n")
	fmt.Printf("  %-6s %8s %8s %12s %8s\n", "level", "tables", "files", "bytes", "readamp")
	for level := 0; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		phys := map[uint64]struct{}{}
		for _, f := range files {
			phys[f.PhysNum] = struct{}{}
		}
		readAmp := 1
		if level == 0 {
			readAmp = len(files)
		}
		fmt.Printf("  L%-5d %8d %8d %12s %8d\n",
			level, len(files), len(phys), fmtBytes(v.LevelBytes(level)), readAmp)
	}

	if *verify {
		fmt.Printf("\nverifying tables...\n")
		bad := 0
		for level := 0; level < manifest.NumLevels; level++ {
			for _, f := range v.Levels[level] {
				status := "ok"
				if v.IsQuarantined(f.Num) {
					status = "ok (quarantined in manifest)"
				}
				if err := verifyTable(fs, f); err != nil {
					bad++
					status = err.Error()
				}
				fmt.Printf("  L%d table %6d  phys %6d @%-10d %10s  %s\n",
					level, f.Num, f.PhysNum, f.Offset, fmtBytes(f.Size), status)
			}
		}
		segs := v.VLogSegments()
		if len(segs) > 0 {
			fmt.Printf("\nverifying value-log segments...\n")
		}
		for _, s := range segs {
			status := "ok"
			recs, err := verifyVLogSegment(fs, s)
			if err != nil {
				bad++
				status = err.Error()
			}
			fmt.Printf("  vlog %6d  %10s  gc@%-10d %6d records  %s\n",
				s.Num, fmtBytes(s.Size), s.GCOffset, recs, status)
		}
		if bad > 0 {
			return fmt.Errorf("%d corrupt files", bad)
		}
		fmt.Printf("all %d tables and %d value-log segments verified clean\n",
			v.NumFiles(), len(segs))
	}

	if *events {
		if err := vs.Close(); err != nil { // release the manifest so the engine can open it
			return err
		}
		if err := dumpEngineState(fs); err != nil {
			return err
		}
	}
	return nil
}

// dumpEngineState opens the engine on the directory — running the normal
// recovery path, which replays the WAL — and prints the event trace that
// open produced plus the live per-level statistics the engine computes.
func dumpEngineState(fs vfs.FS) (err error) {
	db, err := core.Open(fs, core.Config{})
	if err != nil {
		return fmt.Errorf("open engine: %w", err)
	}
	// Close syncs the WAL tail; its error is the dump's error when nothing
	// else failed first.
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	fmt.Printf("\nengine event trace:\n")
	evs := db.Events()
	if len(evs) == 0 {
		fmt.Printf("  (none: open scheduled no background work)\n")
	}
	for _, e := range evs {
		fmt.Printf("  %s  %s\n", e.Time.Format("15:04:05.000"), e.String())
	}

	fmt.Printf("\nlive level stats:\n")
	fmt.Printf("  %-6s %8s %8s %12s %12s %8s %8s %8s\n",
		"level", "tables", "files", "bytes", "dead", "cmp-in", "cmp-out", "readamp")
	for _, ls := range db.LevelStats() {
		if ls.Tables == 0 && ls.CompactionsIn == 0 {
			continue
		}
		fmt.Printf("  L%-5d %8d %8d %12s %12s %8d %8d %8d\n",
			ls.Level, ls.Tables, ls.Files, fmtBytes(ls.Bytes), fmtBytes(ls.DeadBytes),
			ls.CompactionsIn, ls.CompactionsOut, ls.ReadAmp)
	}
	return nil
}

// verifyTable runs the engine's full offline scrub of one table: every
// block checksum (bloom and index included), restart structure, key
// ordering, and the footer entry count.
func verifyTable(fs vfs.FS, meta *manifest.FileMeta) error {
	f, err := fs.Open(manifest.TableFileName(meta.PhysNum))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := sstable.OpenReader(f, meta.Num, meta.PhysNum, meta.Offset, meta.Size, nil)
	if err != nil {
		return err
	}
	return r.VerifyTable()
}

// verifyVLogSegment walks one value-log segment's records above the
// reclamation watermark, checking every header and payload CRC. Payloads
// below the watermark are expected to be punched and are not read; above
// it, a failed payload CRC is rot and a header that stops the walk short
// of the manifest-recorded size is a torn or truncated segment.
func verifyVLogSegment(fs vfs.FS, s manifest.VLogSegment) (records int, err error) {
	f, err := fs.Open(manifest.VLogFileName(s.Num))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	rotted := 0
	valid, err := vlog.Walk(f, s.GCOffset, size, func(rec vlog.WalkRecord) error {
		records++
		if !rec.PayloadOK {
			rotted++
		}
		return nil
	})
	if err != nil {
		return records, err
	}
	if rotted > 0 {
		return records, fmt.Errorf("%d records above the GC watermark failed their payload checksum", rotted)
	}
	if valid < s.Size {
		return records, fmt.Errorf("valid records end at %d, manifest records %d durable bytes", valid, s.Size)
	}
	return records, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
