// Command bolt-repair rebuilds a database's MANIFEST from its table files
// when CURRENT or the MANIFEST has been lost or corrupted. Salvaged tables
// are placed in level 0 (point reads resolve versions by sequence number)
// and normal compaction re-sorts the tree on the next open.
//
// Usage:
//
//	bolt-repair -db /tmp/mydb
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bolt-repair:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("db", "", "database directory (required)")
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-db is required")
	}
	fs, err := vfs.NewOS(*dir)
	if err != nil {
		return err
	}
	report, err := core.Repair(fs, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("repaired %s\n", *dir)
	fmt.Printf("  files scanned:    %d\n", report.FilesScanned)
	fmt.Printf("  tables recovered: %d (%d entries, max seq %d)\n",
		report.TablesRecovered, report.Entries, report.MaxSeq)
	fmt.Printf("  tables lost:      %d\n", report.TablesLost)
	if report.TablesLost > 0 {
		fmt.Println("  note: lost regions were corrupt or unreachable behind punched holes")
	}
	return nil
}
