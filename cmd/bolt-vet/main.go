// Command bolt-vet runs the BoLT-specific static-analysis suite
// (internal/boltvet) over the module:
//
//	syncerr      — discarded durability-barrier errors (Sync, SyncDir,
//	               Close, LogAndApply, CommitPrepared)
//	barrierorder — MANIFEST commits not preceded by a data-file sync
//	lockcheck    — mutex-guarded field access vs the *Locked convention
//
// Usage:
//
//	go run ./cmd/bolt-vet ./...
//	go run ./cmd/bolt-vet -tests=false ./internal/core
//	go run ./cmd/bolt-vet internal/boltvet/testdata/src/syncerr   # vet fixtures on purpose
//
// Run it from the module root: package loading resolves module-internal
// imports relative to the working directory. Exit status: 0 clean, 1
// findings, 2 load failure. Suppress individual findings with
// `//boltvet:ignore <analyzer> -- reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/bolt-lsm/bolt/internal/boltvet"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze *_test.go files")
	tags := flag.String("tags", "", "comma-separated extra build tags (e.g. boltinvariants)")
	typeErrs := flag.Bool("typeerrors", false, "print type-checking errors (analysis is best-effort under them)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range boltvet.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := boltvet.LoadConfig{Tests: *tests}
	if *tags != "" {
		cfg.BuildTags = strings.Split(*tags, ",")
	}
	pkgs, err := boltvet.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bolt-vet:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "bolt-vet: no packages matched", strings.Join(patterns, " "))
		os.Exit(2)
	}
	if *typeErrs {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "bolt-vet: typecheck %s: %v\n", p.ImportPath, te)
			}
		}
	}

	findings := boltvet.RunAll(pkgs, boltvet.All())
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bolt-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
