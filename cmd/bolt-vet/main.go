// Command bolt-vet runs the BoLT-specific static-analysis suite
// (internal/boltvet) over the module:
//
//	syncerr      — discarded durability-barrier errors (Sync, SyncDir,
//	               Close, LogAndApply, CommitPrepared)
//	barrierorder — MANIFEST commits not preceded by a data-file sync
//	lockcheck    — mutex-guarded field access vs the *Locked convention
//	lockorder    — double mutex acquisition through any call chain, and
//	               cycles in the lock-acquisition-order graph
//	errflow      — barrier-born errors that die in a helper or wrap chain
//	atomicfield  — plain access to (or copies of) sync/atomic fields
//	guardedby    — //boltvet:guardedby field annotations checked against
//	               the lock-set analysis at every access site
//	mustclose    — //boltvet:mustclose values tracked from creation to a
//	               Close, an ownership transfer, or a leak finding
//	golifetime   — every `go` statement tied to a declared lifecycle
//	               (//boltvet:goroutine <tracker>) or an inferred WaitGroup
//	               join; tracker clears and awaits proved through the call
//	               graph
//	condcheck    — sync.Cond protocol: Wait in a rechecking loop with the
//	               bound mutex held (and no second lock), Signal/Broadcast
//	               after every waited-predicate mutation
//	summary      — boltvet:ignore / ignore-begin hygiene (reasons, known
//	               analyzer names, balanced pairs)
//
// Usage:
//
//	go run ./cmd/bolt-vet ./...
//	go run ./cmd/bolt-vet -tests=false ./internal/core
//	go run ./cmd/bolt-vet -json ./... | jq .analyzer
//	go run ./cmd/bolt-vet -timing ./...          # per-analyzer wall time
//	go run ./cmd/bolt-vet -list -timing ./...    # listing with measured times
//	go run ./cmd/bolt-vet internal/boltvet/testdata/src/syncerr   # vet fixtures on purpose
//
// Run it from the module root: package loading resolves module-internal
// imports relative to the working directory. Exit status: 0 clean, 1
// findings, 2 load failure. Suppress individual findings with
// `//boltvet:ignore <analyzer> -- reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/bolt-lsm/bolt/internal/boltvet"
)

// jsonFinding is the -json wire format: one object per line.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	tests := flag.Bool("tests", true, "also analyze *_test.go files")
	tags := flag.String("tags", "", "comma-separated extra build tags (e.g. boltinvariants)")
	typeErrs := flag.Bool("typeerrors", false, "print type-checking errors (analysis is best-effort under them)")
	list := flag.Bool("list", false, "list analyzers and exit (with -timing, run the suite and include wall times)")
	timing := flag.Bool("timing", false, "print a per-analyzer wall-time table after the findings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Parse()

	if *list && !*timing {
		for _, a := range boltvet.All() {
			scope := "intraprocedural"
			if a.RunProgram != nil {
				scope = "interprocedural"
			}
			fmt.Printf("%-14s %-16s %s\n", a.Name, scope, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := boltvet.LoadConfig{Tests: *tests}
	if *tags != "" {
		cfg.BuildTags = strings.Split(*tags, ",")
	}
	pkgs, err := boltvet.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bolt-vet:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "bolt-vet: no packages matched", strings.Join(patterns, " "))
		os.Exit(2)
	}
	if *typeErrs {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "bolt-vet: typecheck %s: %v\n", p.ImportPath, te)
			}
		}
	}

	findings, timings := boltvet.RunAllTimed(pkgs, boltvet.All())

	if *list {
		// -list -timing: the analyzer listing, with measured wall time per
		// analyzer (the "(program)" row is the shared call-graph + summary
		// build the interprocedural analyzers amortize).
		wall := make(map[string]string, len(timings))
		for _, t := range timings {
			wall[t.Name] = t.Duration.Round(10 * time.Microsecond).String()
		}
		for _, a := range boltvet.All() {
			scope := "intraprocedural"
			if a.RunProgram != nil {
				scope = "interprocedural"
			}
			fmt.Printf("%-14s %-16s %10s  %s\n", a.Name, scope, wall[a.Name], a.Doc)
		}
		if w, ok := wall["(program)"]; ok {
			fmt.Printf("%-14s %-16s %10s  %s\n", "(program)", "shared",
				w, "call graph and function summaries shared by the interprocedural analyzers")
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		switch {
		case *jsonOut:
			if err := enc.Encode(jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "bolt-vet:", err)
				os.Exit(2)
			}
		case *github:
			// https://docs.github.com/actions/reference/workflow-commands:
			// property values use URL-style escapes for , : % and newlines.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=bolt-vet %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, escapeAnnotation(f.Message))
		default:
			fmt.Println(f.String())
		}
	}
	if *timing {
		printTimings(os.Stdout, timings)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bolt-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// printTimings writes the per-analyzer wall-time table -timing asks for.
func printTimings(w io.Writer, timings []boltvet.AnalyzerTiming) {
	fmt.Fprintf(w, "%-14s %10s %9s\n", "analyzer", "wall", "findings")
	var total time.Duration
	for _, t := range timings {
		total += t.Duration
		fmt.Fprintf(w, "%-14s %10s %9d\n", t.Name, t.Duration.Round(10*time.Microsecond), t.Findings)
	}
	fmt.Fprintf(w, "%-14s %10s\n", "total", total.Round(10*time.Microsecond))
}

// escapeAnnotation escapes a message for a GitHub workflow-command value.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
