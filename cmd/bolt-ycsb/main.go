// Command bolt-ycsb drives YCSB workloads against any engine profile, on a
// real directory, in memory, or on the simulated SSD.
//
// Examples:
//
//	bolt-ycsb -db /tmp/db -profile bolt -workload LA -ops 100000
//	bolt-ycsb -storage sim -profile leveldb -workload LA -ops 50000 -then A,B,C
//	bolt-ycsb -storage sim -profile pebblesdb -workload LA -dist uniform
//	bolt-ycsb -db /tmp/db -preset large-value -workload LA -then A
//	bolt-ycsb -db /tmp/db -value-size 4096 -value-size-dist zipf -value-threshold 1024
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

// startStatsLoop prints one engine stats line every interval until the
// returned stop function runs; stop waits for the loop to exit so it is
// safe to call immediately before closing the database.
func startStatsLoop(db *bolt.DB, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		var last bolt.Stats
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := db.Stats()
				l0 := 0
				if ls := db.LevelStats(); len(ls) > 0 {
					l0 = ls[0].Tables
				}
				fmt.Printf("stats: writes=%d gets=%d fsyncs=%d(+%d) flushes=%d compactions=%d stall=%v l0=%d\n",
					s.Writes, s.Gets, s.Fsyncs, s.Fsyncs-last.Fsyncs,
					s.MemtableFlushes, s.Compactions,
					s.StallTime.Round(time.Millisecond), l0)
				last = s
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bolt-ycsb:", err)
		os.Exit(1)
	}
}

// watchInterrupt installs a SIGINT handler for graceful shutdown: the
// returned channel closes on the first interrupt so workloads can stop at
// an operation boundary and the deferred db.Close still flushes and syncs.
// After that the handler uninstalls itself, so a second interrupt kills the
// process the default way. The returned stop function uninstalls the
// handler and joins the watcher goroutine; run defers it so the watcher
// never outlives the database it guards. (It is a top-level function
// because run's -sync flag variable shadows the sync package.)
func watchInterrupt() (interrupted <-chan struct{}, stop func()) {
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt)
	exit := make(chan struct{})
	ch := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-sigC:
			fmt.Fprintln(os.Stderr, "bolt-ycsb: interrupt: finishing in-flight operations, then closing")
			signal.Stop(sigC)
			close(ch)
		case <-exit:
		}
	}()
	return ch, func() {
		signal.Stop(sigC)
		close(exit)
		wg.Wait()
	}
}

func parseProfile(name string) (bolt.Profile, error) {
	switch strings.ToLower(name) {
	case "leveldb":
		return bolt.ProfileLevelDB, nil
	case "leveldb64", "lvl64":
		return bolt.ProfileLevelDB64MB, nil
	case "hyperleveldb", "hyper":
		return bolt.ProfileHyperLevelDB, nil
	case "rocksdb", "rocks":
		return bolt.ProfileRocksDB, nil
	case "pebblesdb", "pebbles":
		return bolt.ProfilePebblesDB, nil
	case "bolt":
		return bolt.ProfileBoLT, nil
	case "hyperbolt", "hbolt":
		return bolt.ProfileHyperBoLT, nil
	default:
		return 0, fmt.Errorf("unknown profile %q", name)
	}
}

func parseWorkload(name string) (ycsb.Workload, error) {
	switch strings.ToUpper(name) {
	case "LA":
		return ycsb.LoadA, nil
	case "LE":
		return ycsb.LoadE, nil
	case "A":
		return ycsb.WorkloadA, nil
	case "B":
		return ycsb.WorkloadB, nil
	case "C":
		return ycsb.WorkloadC, nil
	case "D":
		return ycsb.WorkloadD, nil
	case "E":
		return ycsb.WorkloadE, nil
	case "F":
		return ycsb.WorkloadF, nil
	default:
		return 0, fmt.Errorf("unknown workload %q", name)
	}
}

// kv adapts bolt.DB to ycsb.KV.
type kv struct{ db *bolt.DB }

func (a kv) Put(key, value []byte) error { return a.db.Put(key, value) }

func (a kv) Get(key []byte) (bool, error) {
	_, err := a.db.Get(key)
	if errors.Is(err, bolt.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

func (a kv) Scan(start []byte, maxLen int) (int, error) {
	it := a.db.NewIterator(nil)
	defer it.Close()
	n := 0
	for ok := it.SeekGE(start); ok && n < maxLen; ok = it.Next() {
		n++
	}
	return n, it.Err()
}

func run() (err error) {
	var (
		dir        = flag.String("db", "", "database directory (required for -storage disk)")
		storage    = flag.String("storage", "disk", "disk | mem | sim")
		profile    = flag.String("profile", "bolt", "leveldb | leveldb64 | hyper | rocks | pebbles | bolt | hyperbolt")
		workload   = flag.String("workload", "LA", "first workload: LA, LE, A..F")
		then       = flag.String("then", "", "comma-separated workloads to run after the first (e.g. A,B,C)")
		ops        = flag.Int64("ops", 100_000, "operations for the first workload")
		runOps     = flag.Int64("run-ops", 0, "operations for subsequent workloads (default ops/5)")
		records    = flag.Int64("records", 0, "pre-existing record count (for non-load first workloads)")
		valueSize  = flag.Int("value-size", 1024, "value payload bytes (exact for fixed, maximum for uniform/zipf)")
		valueDist  = flag.String("value-size-dist", "fixed", "per-write value length distribution: fixed | uniform | zipf")
		valueThr   = flag.Int("value-threshold", 0, "separate values of at least this many bytes into the value log (0 disables)")
		preset     = flag.String("preset", "", "flag preset: large-value (4 KiB values, separation at 1 KiB) — explicit flags win")
		threads    = flag.Int("threads", 4, "client threads")
		dist       = flag.String("dist", "zipfian", "zipfian | uniform | latest")
		seed       = flag.Int64("seed", 1, "workload seed")
		sync       = flag.Bool("sync", false, "sync WAL on every commit")
		statsEvery = flag.Duration("stats-every", 0, "print an engine stats line at this interval during the run (0 disables)")
	)
	flag.Parse()

	if *preset != "" {
		// A preset fills in defaults; flags the user set explicitly keep
		// their values.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		switch *preset {
		case "large-value":
			if !explicit["value-size"] {
				*valueSize = 4096
			}
			if !explicit["value-threshold"] {
				*valueThr = 1024
			}
		default:
			return fmt.Errorf("unknown preset %q", *preset)
		}
	}

	prof, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	first, err := parseWorkload(*workload)
	if err != nil {
		return err
	}
	var distribution ycsb.Distribution
	switch strings.ToLower(*dist) {
	case "zipfian":
		distribution = ycsb.Zipfian
	case "uniform":
		distribution = ycsb.Uniform
	case "latest":
		distribution = ycsb.Latest
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	var sizeDist ycsb.ValueSizeDist
	switch strings.ToLower(*valueDist) {
	case "fixed":
		sizeDist = ycsb.FixedSize
	case "uniform":
		sizeDist = ycsb.UniformSize
	case "zipf", "zipfian":
		sizeDist = ycsb.ZipfSize
	default:
		return fmt.Errorf("unknown value size distribution %q", *valueDist)
	}
	if *runOps <= 0 {
		*runOps = *ops / 5
		if *runOps == 0 {
			*runOps = *ops
		}
	}

	opts := &bolt.Options{Profile: prof, SyncWrites: *sync, ValueThreshold: *valueThr}
	var db *bolt.DB
	switch *storage {
	case "disk":
		if *dir == "" {
			return errors.New("-db is required with -storage disk")
		}
		db, err = bolt.Open(*dir, opts)
	case "mem":
		db, err = bolt.OpenMem(opts)
	case "sim":
		db, err = bolt.OpenSim(opts, bolt.SimDisk{})
	default:
		return fmt.Errorf("unknown storage %q", *storage)
	}
	if err != nil {
		return err
	}
	// Close flushes and syncs the WAL tail; its error is the run's error
	// when nothing else failed first.
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if *statsEvery > 0 {
		defer startStatsLoop(db, *statsEvery)()
	}
	interrupted, stopWatch := watchInterrupt()
	defer stopWatch()

	workloads := []ycsb.Workload{first}
	if *then != "" {
		for _, name := range strings.Split(*then, ",") {
			w, err := parseWorkload(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			workloads = append(workloads, w)
		}
	}

	recordCount := *records
	for i, w := range workloads {
		n := *ops
		if i > 0 {
			n = *runOps
		}
		res, err := ycsb.Run(kv{db}, ycsb.RunConfig{
			Workload:      w,
			Distribution:  distribution,
			RecordCount:   recordCount,
			Ops:           n,
			Threads:       *threads,
			ValueSize:     *valueSize,
			ValueSizeDist: sizeDist,
			Seed:          *seed + int64(i),
			Interrupt:     interrupted,
		})
		if err != nil {
			return err
		}
		recordCount += res.InsertedRecords
		fmt.Printf("%-3s %8d ops in %8v  %10.0f ops/s  read[%s]  write[%s]\n",
			w, res.Ops, res.Duration.Round(time.Millisecond), res.Throughput,
			res.Read, res.Write)
		if res.Interrupted {
			fmt.Println("bolt-ycsb: run interrupted; skipping remaining workloads")
			break
		}
	}

	s := db.Stats()
	fmt.Printf("\nstats: fsyncs=%d written=%d read=%d compactions=%d cmp-out=%d flushes=%d settled=%d stalls=%v holes=%d\n",
		s.Fsyncs, s.BytesWritten, s.BytesRead, s.Compactions, s.CompactionBytesOut,
		s.MemtableFlushes, s.SettledPromotions, s.StallTime.Round(time.Millisecond),
		s.HolePunches)
	if s.VLogAppends > 0 {
		fmt.Printf("vlog: appends=%d appended=%d derefs=%d gc-passes=%d reclaimed=%d\n",
			s.VLogAppends, s.VLogAppendedBytes, s.VLogDerefs,
			s.VLogGCPasses, s.VLogReclaimedBytes)
	}
	if sim, ok := db.SimStats(); ok {
		fmt.Printf("device: barriers=%d flushed=%d read=%d barrier-stall=%v read-stall=%v\n",
			sim.Barriers, sim.BytesFlushed, sim.BytesRead,
			sim.BarrierStall.Round(time.Millisecond), sim.ReadStall.Round(time.Millisecond))
	}
	return nil
}
