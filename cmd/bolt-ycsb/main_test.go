package main

import (
	"testing"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

func TestParseProfile(t *testing.T) {
	cases := map[string]bolt.Profile{
		"leveldb":   bolt.ProfileLevelDB,
		"LEVELDB64": bolt.ProfileLevelDB64MB,
		"lvl64":     bolt.ProfileLevelDB64MB,
		"hyper":     bolt.ProfileHyperLevelDB,
		"rocks":     bolt.ProfileRocksDB,
		"pebbles":   bolt.ProfilePebblesDB,
		"bolt":      bolt.ProfileBoLT,
		"hbolt":     bolt.ProfileHyperBoLT,
	}
	for in, want := range cases {
		got, err := parseProfile(in)
		if err != nil || got != want {
			t.Errorf("parseProfile(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseProfile("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestParseWorkload(t *testing.T) {
	cases := map[string]ycsb.Workload{
		"LA": ycsb.LoadA, "le": ycsb.LoadE,
		"a": ycsb.WorkloadA, "B": ycsb.WorkloadB, "c": ycsb.WorkloadC,
		"D": ycsb.WorkloadD, "e": ycsb.WorkloadE, "F": ycsb.WorkloadF,
	}
	for in, want := range cases {
		got, err := parseWorkload(in)
		if err != nil || got != want {
			t.Errorf("parseWorkload(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseWorkload("Z"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestKVAdapter(t *testing.T) {
	db, err := bolt.OpenMem(&bolt.Options{Profile: bolt.ProfileBoLT})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a := kv{db}
	if err := a.Put([]byte("k1"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if found, err := a.Get([]byte("k1")); err != nil || !found {
		t.Fatalf("Get = %v, %v", found, err)
	}
	if found, err := a.Get([]byte("absent")); err != nil || found {
		t.Fatalf("absent Get = %v, %v", found, err)
	}
	a.Put([]byte("k2"), []byte("v"))
	a.Put([]byte("k3"), []byte("v"))
	if n, err := a.Scan([]byte("k1"), 2); err != nil || n != 2 {
		t.Fatalf("Scan = %d, %v", n, err)
	}
}
