package bolt_test

import (
	"fmt"
	"log"

	"github.com/bolt-lsm/bolt"
)

// Example shows the basic write/read/scan cycle against an in-memory BoLT
// store.
func Example() {
	db, err := bolt.OpenMem(&bolt.Options{Profile: bolt.ProfileBoLT})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("a"), []byte("1"))
	db.Delete([]byte("b"))

	it := db.NewIterator(nil)
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("%s=%s\n", it.Key(), it.Value())
	}
	// Output:
	// a=1
}

// ExampleDB_Apply demonstrates atomic batches.
func ExampleDB_Apply() {
	db, _ := bolt.OpenMem(nil)
	defer db.Close()

	b := bolt.NewBatch()
	b.Put([]byte("x"), []byte("10"))
	b.Put([]byte("y"), []byte("20"))
	b.Delete([]byte("x"))
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}
	_, errX := db.Get([]byte("x"))
	y, _ := db.Get([]byte("y"))
	fmt.Println(errX == bolt.ErrNotFound, string(y))
	// Output: true 20
}

// ExampleDB_GetSnapshot demonstrates snapshot isolation.
func ExampleDB_GetSnapshot() {
	db, _ := bolt.OpenMem(nil)
	defer db.Close()

	db.Put([]byte("k"), []byte("before"))
	snap := db.GetSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("after"))

	old, _ := db.GetAt([]byte("k"), snap)
	cur, _ := db.Get([]byte("k"))
	fmt.Println(string(old), string(cur))
	// Output: before after
}

// ExampleOpenSim shows the simulated-SSD backend used by the paper's
// benchmark reproduction: the device counts fsync barriers.
func ExampleOpenSim() {
	db, _ := bolt.OpenSim(&bolt.Options{
		Profile:       bolt.ProfileBoLT,
		MemTableBytes: 32 << 10,
	}, bolt.SimDisk{TimeScale: -1}) // accounting only, no sleeps
	defer db.Close()

	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("user%06d", i)), make([]byte, 100))
	}
	db.WaitIdle()
	sim, _ := db.SimStats()
	fmt.Println(sim.Barriers == db.Stats().Fsyncs, sim.Barriers > 0)
	// Output: true true
}
