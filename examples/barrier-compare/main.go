// barrier-compare reproduces the paper's headline claim interactively: the
// same write-heavy workload runs against stock LevelDB and against BoLT on
// an identical simulated SSD, and the program reports the fsync barrier
// counts, write throughput, bytes written, and stall time side by side.
//
//	go run ./examples/barrier-compare [-ops 50000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/bolt-lsm/bolt"
)

func main() {
	ops := flag.Int("ops", 50_000, "number of 512-byte inserts")
	flag.Parse()

	type row struct {
		name       string
		throughput float64
		stats      bolt.Stats
		barrier    time.Duration
	}
	var rows []row

	for _, cfg := range []struct {
		name string
		opts *bolt.Options
	}{
		{"LevelDB", scaled(bolt.ProfileLevelDB)},
		{"BoLT", scaled(bolt.ProfileBoLT)},
	} {
		// A scaled-down simulated SATA SSD: barrier latency shrunk with
		// the store size constants so ratios match a real device.
		db, err := bolt.OpenSim(cfg.opts, bolt.SimDisk{BarrierLatency: 200 * time.Microsecond})
		if err != nil {
			log.Fatal(err)
		}
		value := make([]byte, 512)
		start := time.Now()
		for i := 0; i < *ops; i++ {
			key := fmt.Sprintf("user%016d", i*2654435761%(*ops))
			if err := db.Put([]byte(key), value); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		sim, _ := db.SimStats()
		rows = append(rows, row{
			name:       cfg.name,
			throughput: float64(*ops) / elapsed.Seconds(),
			stats:      db.Stats(),
			barrier:    sim.BarrierStall,
		})
		if err := db.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%d random inserts of 512 B on the same simulated SSD\n\n", *ops)
	fmt.Printf("%-10s %10s %12s %12s %14s %12s %10s\n",
		"store", "fsyncs", "ops/s", "written", "barrier-stall", "settled", "holes")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %12.0f %12s %14v %12d %10d\n",
			r.name, r.stats.Fsyncs, r.throughput, mib(r.stats.BytesWritten),
			r.barrier.Round(time.Millisecond), r.stats.SettledPromotions, r.stats.HolePunches)
	}
	lvl, blt := rows[0], rows[1]
	fmt.Printf("\nBoLT issued %.1fx fewer barriers and wrote %.2fx at %.2fx the throughput.\n",
		float64(lvl.stats.Fsyncs)/float64(blt.stats.Fsyncs),
		float64(blt.stats.BytesWritten)/float64(lvl.stats.BytesWritten),
		blt.throughput/lvl.throughput)
}

// scaled shrinks a profile's size constants so the demo finishes quickly
// while keeping every ratio (memtable : sstable : logical sstable : group)
// faithful to the paper.
func scaled(p bolt.Profile) *bolt.Options {
	const div = 16
	o := &bolt.Options{
		Profile:       p,
		MemTableBytes: 64 << 20 / div,
		SSTableBytes:  2 << 20 / div,
		L1MaxBytes:    10 << 20 / div,
	}
	if p == bolt.ProfileBoLT {
		o.LogicalSSTableBytes = 1 << 20 / div
		o.GroupCompactionBytes = 64 << 20 / div
	}
	return o
}

func mib(n int64) string { return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20)) }
