// compaction-lab visualizes what BoLT's compaction machinery does: it
// writes a random workload in rounds and, after each round, prints the
// level layout (logical SSTables and the compaction files they live in)
// plus the settled-promotion and hole-punch counters — the two mechanisms
// that distinguish BoLT from a classic LSM-tree.
//
//	go run ./examples/compaction-lab
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/bolt-lsm/bolt"
)

func main() {
	// Tiny size constants so the whole tree is visible.
	db, err := bolt.OpenMem(&bolt.Options{
		Profile:              bolt.ProfileBoLT,
		MemTableBytes:        64 << 10,
		SSTableBytes:         16 << 10,
		LogicalSSTableBytes:  8 << 10,
		GroupCompactionBytes: 32 << 10,
		L1MaxBytes:           64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	value := make([]byte, 128)
	for round := 1; round <= 5; round++ {
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("key%06d", rng.Intn(4000))
			if err := db.Put([]byte(key), value); err != nil {
				log.Fatal(err)
			}
		}
		// Give background compactions a moment to settle.
		time.Sleep(50 * time.Millisecond)

		s := db.Stats()
		fmt.Printf("=== round %d: %d writes total\n", round, s.Writes)
		fmt.Printf("levels (tables per level): %v\n", db.NumLevelFiles())
		fmt.Printf("flushes=%d compactions=%d settled-promotions=%d hole-punches=%d fsyncs=%d\n",
			s.MemtableFlushes, s.Compactions, s.SettledPromotions, s.HolePunches, s.Fsyncs)
		fmt.Printf("written=%.1f MiB for %.1f MiB of user data (write amplification %.1fx)\n\n",
			float64(s.BytesWritten)/(1<<20), float64(s.BytesIn)/(1<<20),
			float64(s.BytesWritten)/float64(s.BytesIn))
	}

	fmt.Println("final layout (table num, physical file @offset, key range):")
	fmt.Println(db.DebugLayout())

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
}
