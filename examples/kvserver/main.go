// kvserver exposes a BoLT database over TCP with a tiny line protocol —
// the "key-value store behind a NoSQL service" deployment the paper's
// introduction motivates.
//
// Protocol (one request per line, responses are single lines):
//
//	SET <key> <value>   -> OK
//	GET <key>           -> VALUE <value> | NOTFOUND
//	DEL <key>           -> OK
//	SCAN <prefix> <n>   -> SCAN <k>... END
//	STATS               -> STATS fsyncs=... compactions=...
//
// Run a server, then exercise it with the built-in demo client:
//
//	go run ./examples/kvserver -addr :7700 &
//	go run ./examples/kvserver -demo -addr :7700
//
// With -http the server also exposes an observability endpoint:
//
//	GET /metrics       engine metrics in Prometheus text format
//	GET /events        recent engine events, one per line
//	GET /debug/pprof/  standard Go profiling handlers
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/bolt-lsm/bolt"
)

func main() {
	var (
		addr     = flag.String("addr", ":7700", "listen / connect address")
		dir      = flag.String("db", filepath.Join(os.TempDir(), "bolt-kvserver"), "database directory")
		demo     = flag.Bool("demo", false, "run the demo client instead of a server")
		httpAddr = flag.String("http", "", "serve /metrics, /events and /debug/pprof on this address (e.g. :7780)")
		shards   = flag.Int("cache-shards", 0, "block/table/fd cache shard count (0 = auto-size to GOMAXPROCS, 1 = single lock)")
	)
	flag.Parse()
	if *demo {
		if err := runDemo(*addr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *dir, *httpAddr, *shards); err != nil {
		log.Fatal(err)
	}
}

// observabilityMux mounts the engine's observability surface: Prometheus
// metrics, the event trace, and the standard pprof handlers.
func observabilityMux(db *bolt.DB) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := db.WriteMetrics(w); err != nil {
			log.Printf("kvserver: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range db.Events() {
			fmt.Fprintln(w, e.String())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func runServer(addr, dir, httpAddr string, cacheShards int) (err error) {
	db, err := bolt.Open(dir, &bolt.Options{Profile: bolt.ProfileBoLT, CacheShards: cacheShards})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("kvserver: serving %s on %s", dir, addr)

	// helpers tracks the auxiliary goroutines — the observability HTTP
	// server and the signal waiter — so neither outlives the database it
	// reads: both are woken and joined before the deferred db.Close runs.
	var helpers sync.WaitGroup
	shutdown := make(chan struct{})

	var hln net.Listener
	if httpAddr != "" {
		hln, err = net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		log.Printf("kvserver: observability on http://%s/{metrics,events,debug/pprof}", hln.Addr())
		helpers.Add(1)
		go func() {
			defer helpers.Done()
			if serr := http.Serve(hln, observabilityMux(db)); serr != nil {
				log.Printf("kvserver: http server stopped: %v", serr)
			}
		}()
	}

	// Graceful shutdown on interrupt: stop accepting, wait for handlers.
	// The shutdown channel wakes the waiter when the server exits without
	// a signal (listener error), so it never blocks on <-stop forever.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	helpers.Add(1)
	go func() {
		defer helpers.Done()
		select {
		case <-stop:
			log.Print("kvserver: shutting down")
			_ = ln.Close() // unblocks Accept; its error is the shutdown signal
		case <-shutdown:
		}
	}()
	defer func() {
		// Drain the helpers before the database closes: stop signal
		// delivery, wake the signal waiter, unblock http.Serve by closing
		// its listener, then join both.
		signal.Stop(stop)
		close(shutdown)
		if hln != nil {
			_ = hln.Close()
		}
		helpers.Wait()
	}()

	var conns sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			conns.Wait()
			return nil // listener closed
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			serveConn(db, conn)
		}()
	}
}

func serveConn(db *bolt.DB, conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		fields := strings.SplitN(sc.Text(), " ", 3)
		reply := handle(db, fields)
		fmt.Fprintln(w, reply)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func handle(db *bolt.DB, fields []string) string {
	if len(fields) == 0 {
		return "ERR empty"
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>"
		}
		if err := db.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) < 2 {
			return "ERR usage: GET <key>"
		}
		v, err := db.Get([]byte(fields[1]))
		if err == bolt.ErrNotFound {
			return "NOTFOUND"
		}
		if err != nil {
			return "ERR " + err.Error()
		}
		return "VALUE " + string(v)
	case "DEL":
		if len(fields) < 2 {
			return "ERR usage: DEL <key>"
		}
		if err := db.Delete([]byte(fields[1])); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "SCAN":
		if len(fields) != 3 {
			return "ERR usage: SCAN <prefix> <n>"
		}
		var n int
		fmt.Sscanf(fields[2], "%d", &n)
		if n <= 0 || n > 1000 {
			n = 10
		}
		it := db.NewIterator(nil)
		defer it.Close()
		var keys []string
		for ok := it.SeekGE([]byte(fields[1])); ok && len(keys) < n; ok = it.Next() {
			if !strings.HasPrefix(string(it.Key()), fields[1]) {
				break
			}
			keys = append(keys, string(it.Key()))
		}
		return "SCAN " + strings.Join(keys, " ") + " END"
	case "STATS":
		s := db.Stats()
		return fmt.Sprintf("STATS writes=%d fsyncs=%d flushes=%d compactions=%d settled=%d",
			s.Writes, s.Fsyncs, s.MemtableFlushes, s.Compactions, s.SettledPromotions)
	default:
		return "ERR unknown command"
	}
}

func runDemo(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return fmt.Errorf("connect (is the server running?): %w", err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)

	send := func(line string) string {
		fmt.Fprintln(conn, line)
		if !r.Scan() {
			return "ERR connection closed"
		}
		return r.Text()
	}
	fmt.Println("> SET session:1 alice     ", send("SET session:1 alice"))
	fmt.Println("> SET session:2 bob       ", send("SET session:2 bob"))
	fmt.Println("> GET session:1           ", send("GET session:1"))
	fmt.Println("> SCAN session: 10        ", send("SCAN session: 10"))
	fmt.Println("> DEL session:1           ", send("DEL session:1"))
	fmt.Println("> GET session:1           ", send("GET session:1"))
	for i := 0; i < 1000; i++ {
		send(fmt.Sprintf("SET bulk:%04d value-%d", i, i))
	}
	fmt.Println("> (1000 bulk SETs)")
	fmt.Println("> STATS                   ", send("STATS"))
	return nil
}
