// Quickstart: open a BoLT database on disk, write, read, batch, scan, and
// inspect the engine counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/bolt-lsm/bolt"
)

func main() {
	dir := filepath.Join(os.TempDir(), "bolt-quickstart")
	_ = os.RemoveAll(dir)

	db, err := bolt.Open(dir, &bolt.Options{Profile: bolt.ProfileBoLT})
	if err != nil {
		log.Fatal(err)
	}

	// Single writes.
	if err := db.Put([]byte("greeting"), []byte("hello, LSM")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %s\n", v)

	// Atomic batches.
	b := bolt.NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("user:%03d", i)), []byte(fmt.Sprintf("payload-%d", i)))
	}
	b.Delete([]byte("greeting"))
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Get([]byte("greeting")); err != bolt.ErrNotFound {
		log.Fatalf("expected ErrNotFound, got %v", err)
	}

	// Snapshot isolation.
	snap := db.GetSnapshot()
	if err := db.Put([]byte("user:003"), []byte("mutated-later")); err != nil {
		log.Fatal(err)
	}
	old, err := db.GetAt([]byte("user:003"), snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:003 at snapshot = %s\n", old)
	snap.Release()

	// Range scans.
	it := db.NewIterator(nil)
	defer it.Close()
	fmt.Println("scan user:000 .. user:005:")
	for ok := it.SeekGE([]byte("user:000")); ok; ok = it.Next() {
		if string(it.Key()) > "user:005" {
			break
		}
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("\nengine: %d writes, %d fsyncs, %d flushes, %d compactions\n",
		s.Writes, s.Fsyncs, s.MemtableFlushes, s.Compactions)
	fmt.Printf("database directory: %s\n", dir)

	// Close is a durability barrier too: it flushes and syncs the WAL tail.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
}
