module github.com/bolt-lsm/bolt

go 1.22
