// Package batch implements the write batch: the unit of atomic application
// and of WAL logging. The wire format matches LevelDB's: an 8-byte starting
// sequence number, a 4-byte record count, then records of the form
// kind(1) | varint keylen | key | [varint valuelen | value].
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bolt-lsm/bolt/internal/keys"
)

const headerSize = 12

// ErrCorrupt reports a malformed batch representation.
var ErrCorrupt = errors.New("batch: corrupt")

// Batch accumulates Put and Delete operations.
type Batch struct {
	data []byte
}

// New returns an empty batch.
func New() *Batch {
	return &Batch{data: make([]byte, headerSize)}
}

// FromRepr wraps a wire representation (e.g. one WAL record) as a batch.
func FromRepr(data []byte) (*Batch, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	return &Batch{data: data}, nil
}

// Repr returns the wire representation. The slice aliases the batch.
func (b *Batch) Repr() []byte { return b.data }

// Put records a key/value insertion.
func (b *Batch) Put(key, value []byte) {
	b.setCount(b.Count() + 1)
	b.data = append(b.data, byte(keys.KindSet))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.data = binary.AppendUvarint(b.data, uint64(len(value)))
	b.data = append(b.data, value...)
}

// PutPtr records an insertion whose value is a value-log pointer (the
// encoded vlog.Pointer bytes). The group-commit leader rewrites large
// KindSet records into these before the WAL append, so replay reproduces
// the pointer entries without re-extracting values.
func (b *Batch) PutPtr(key, ptr []byte) {
	b.setCount(b.Count() + 1)
	b.data = append(b.data, byte(keys.KindSetPtr))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.data = binary.AppendUvarint(b.data, uint64(len(ptr)))
	b.data = append(b.data, ptr...)
}

// Delete records a key deletion.
func (b *Batch) Delete(key []byte) {
	b.setCount(b.Count() + 1)
	b.data = append(b.data, byte(keys.KindDelete))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
}

// Count returns the number of operations in the batch.
func (b *Batch) Count() int {
	return int(binary.LittleEndian.Uint32(b.data[8:12]))
}

func (b *Batch) setCount(n int) {
	binary.LittleEndian.PutUint32(b.data[8:12], uint32(n))
}

// Seq returns the batch's starting sequence number.
func (b *Batch) Seq() keys.Seq {
	return keys.Seq(binary.LittleEndian.Uint64(b.data[0:8]))
}

// SetSeq stamps the batch's starting sequence number.
func (b *Batch) SetSeq(seq keys.Seq) {
	binary.LittleEndian.PutUint64(b.data[0:8], uint64(seq))
}

// Size returns the wire size in bytes.
func (b *Batch) Size() int { return len(b.data) }

// Empty reports whether the batch holds no operations.
func (b *Batch) Empty() bool { return b.Count() == 0 }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.data = b.data[:headerSize]
	for i := range b.data {
		b.data[i] = 0
	}
}

// Append concatenates other's operations onto b (used by group commit).
// Sequence numbers are assigned later via SetSeq; other is unchanged.
func (b *Batch) Append(other *Batch) {
	b.setCount(b.Count() + other.Count())
	b.data = append(b.data, other.data[headerSize:]...)
}

// Iterate calls fn for every operation with its assigned sequence number,
// in batch order. The key and value slices alias the batch.
func (b *Batch) Iterate(fn func(seq keys.Seq, kind keys.Kind, key, value []byte) error) error {
	return b.IterateWithSeq(b.Seq(), fn)
}

// IterateWithSeq is Iterate with an explicit starting sequence number,
// used when a batch participates in a group commit without having its own
// header stamped.
func (b *Batch) IterateWithSeq(seq keys.Seq, fn func(seq keys.Seq, kind keys.Kind, key, value []byte) error) error {
	p := headerSize
	n := b.Count()
	for i := 0; i < n; i++ {
		if p >= len(b.data) {
			return fmt.Errorf("%w: truncated at op %d", ErrCorrupt, i)
		}
		kind := keys.Kind(b.data[p])
		p++
		key, np, err := readLenPrefixed(b.data, p)
		if err != nil {
			return fmt.Errorf("%w: op %d key: %v", ErrCorrupt, i, err)
		}
		p = np
		var value []byte
		if kind == keys.KindSet || kind == keys.KindSetPtr {
			value, np, err = readLenPrefixed(b.data, p)
			if err != nil {
				return fmt.Errorf("%w: op %d value: %v", ErrCorrupt, i, err)
			}
			p = np
		} else if kind != keys.KindDelete {
			return fmt.Errorf("%w: op %d bad kind %d", ErrCorrupt, i, kind)
		}
		if err := fn(seq, kind, key, value); err != nil {
			return err
		}
		seq++
	}
	if p != len(b.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b.data)-p)
	}
	return nil
}

func readLenPrefixed(data []byte, p int) ([]byte, int, error) {
	l, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return nil, 0, errors.New("bad varint")
	}
	p += n
	// Compare in uint64 space so a huge declared length cannot wrap
	// negative when converted to int.
	if l > uint64(len(data)-p) {
		return nil, 0, errors.New("overrun")
	}
	return data[p : p+int(l)], p + int(l), nil
}
