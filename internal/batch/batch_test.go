package batch

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
)

type op struct {
	kind keys.Kind
	seq  keys.Seq
	k, v string
}

func collect(t *testing.T, b *Batch) []op {
	t.Helper()
	var ops []op
	err := b.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
		ops = append(ops, op{kind, seq, string(key), string(value)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestPutDeleteIterate(t *testing.T) {
	b := New()
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("b"))
	b.Put([]byte("c"), []byte("3"))
	b.SetSeq(100)

	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	ops := collect(t, b)
	want := []op{
		{keys.KindSet, 100, "a", "1"},
		{keys.KindDelete, 101, "b", ""},
		{keys.KindSet, 102, "c", "3"},
	}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("ops = %v", ops)
	}
}

func TestReprRoundTrip(t *testing.T) {
	b := New()
	b.Put([]byte("key"), bytes.Repeat([]byte("v"), 300))
	b.SetSeq(42)
	b2, err := FromRepr(append([]byte(nil), b.Repr()...))
	if err != nil {
		t.Fatal(err)
	}
	if b2.Seq() != 42 || b2.Count() != 1 {
		t.Fatalf("seq=%d count=%d", b2.Seq(), b2.Count())
	}
	ops := collect(t, b2)
	if len(ops) != 1 || ops[0].k != "key" || len(ops[0].v) != 300 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestAppend(t *testing.T) {
	a := New()
	a.Put([]byte("x"), []byte("1"))
	b := New()
	b.Delete([]byte("y"))
	b.Put([]byte("z"), []byte("2"))
	a.Append(b)
	a.SetSeq(10)
	ops := collect(t, a)
	if len(ops) != 3 {
		t.Fatalf("count = %d", len(ops))
	}
	if ops[1].kind != keys.KindDelete || ops[1].seq != 11 || ops[2].seq != 12 {
		t.Fatalf("ops = %v", ops)
	}
	// b unchanged.
	if b.Count() != 2 {
		t.Fatalf("appended-from batch mutated: %d", b.Count())
	}
}

func TestReset(t *testing.T) {
	b := New()
	b.Put([]byte("a"), []byte("1"))
	b.SetSeq(5)
	b.Reset()
	if !b.Empty() || b.Seq() != 0 || b.Size() != 12 {
		t.Fatalf("after reset: count=%d seq=%d size=%d", b.Count(), b.Seq(), b.Size())
	}
}

func TestCorruptRepr(t *testing.T) {
	if _, err := FromRepr([]byte("short")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short repr: %v", err)
	}
	// Count says 1 but no payload.
	raw := make([]byte, 12)
	raw[8] = 1
	b, err := FromRepr(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Iterate(func(keys.Seq, keys.Kind, []byte, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated batch iterate: %v", err)
	}
	// Bad kind byte.
	bad := New()
	bad.Put([]byte("k"), []byte("v"))
	bad.Repr()[12] = 99
	if err := bad.Iterate(func(keys.Seq, keys.Kind, []byte, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad kind iterate: %v", err)
	}
}

func TestIterateCallbackError(t *testing.T) {
	b := New()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	sentinel := errors.New("stop")
	calls := 0
	err := b.Iterate(func(keys.Seq, keys.Kind, []byte, []byte) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ops [][2][]byte, seq uint32, deletes []bool) bool {
		b := New()
		var want []op
		s := keys.Seq(seq)
		for i, kv := range ops {
			del := i < len(deletes) && deletes[i]
			if del {
				b.Delete(kv[0])
				want = append(want, op{keys.KindDelete, s + keys.Seq(i), string(kv[0]), ""})
			} else {
				b.Put(kv[0], kv[1])
				want = append(want, op{keys.KindSet, s + keys.Seq(i), string(kv[0]), string(kv[1])})
			}
		}
		b.SetSeq(s)
		b2, err := FromRepr(b.Repr())
		if err != nil {
			return false
		}
		var got []op
		err = b2.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
			got = append(got, op{kind, seq, string(key), string(value)})
			return nil
		})
		return err == nil && fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
