package batch

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// FuzzIterate feeds arbitrary bytes as a batch representation: decoding
// must never panic; it either iterates cleanly or reports ErrCorrupt.
func FuzzIterate(f *testing.F) {
	good := New()
	good.Put([]byte("key"), []byte("value"))
	good.Delete([]byte("other"))
	good.SetSeq(42)
	f.Add(good.Repr())
	f.Add(make([]byte, 12))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := FromRepr(data)
		if err != nil {
			return
		}
		n := 0
		_ = b.Iterate(func(_ keys.Seq, _ keys.Kind, key, value []byte) error {
			_ = key
			_ = value
			n++
			if n > 1<<20 {
				t.Fatal("runaway iteration")
			}
			return nil
		})
	})
}
