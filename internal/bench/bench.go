// Package bench implements the paper's evaluation harness: one experiment
// per figure (4, 6, 11, 12a, 12b, 13, 14, 15, 16), each regenerating the
// figure's data series on the simulated-SSD substrate. Absolute numbers
// differ from the authors' testbed; the shapes — who wins, by what factor,
// where the crossovers are — are the reproduction target (EXPERIMENTS.md
// records paper-vs-measured for each).
package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

// Scale shrinks the paper's experiment sizes so runs finish on a laptop.
// Every byte-size constant of the stores (MemTable, SSTable, logical
// SSTable, group budget, level-1 limit, block size) is divided by SizeDiv,
// and the simulated device's *bandwidths* are divided by the same factor
// (fixed latencies keep hardware magnitudes), so the barrier-cost-to-
// transfer-time ratio — the quantity the whole paper is about — matches
// the paper's testbed. See Scale.SimDisk.
type Scale struct {
	Name string
	// LoadOps is the Load A / Load E insert count (paper: 50 M).
	LoadOps int64
	// RunOps is the per-workload operation count (paper: 10 M).
	RunOps int64
	// BigLoadFactor multiplies LoadOps for the memory-constrained Figure
	// 15/16 experiments (paper doubles the database).
	BigLoadFactor int64
	// ValueSize is the record payload (paper: 1 KB; Figure 15c: 100 B).
	ValueSize int
	// SizeDiv divides all store size constants and the barrier latency.
	SizeDiv int64
	// Threads is the client thread count (paper: 4).
	Threads int
	// TimeScale scales simulated-device sleeps (1.0 = real time).
	TimeScale float64
}

// Predefined scales.
var (
	// ScaleSmall finishes every experiment in tens of seconds; used by `go
	// test -short` and CI. Deep levels still form (≈15 MB of data against
	// a 160 KiB level-1 limit), so compaction shapes remain meaningful.
	ScaleSmall = Scale{
		Name: "small", LoadOps: 30_000, RunOps: 8_000, BigLoadFactor: 2,
		ValueSize: 512, SizeDiv: 64, Threads: 4, TimeScale: 1.0,
	}
	// ScaleMedium is the default for `bolt-bench`; one figure takes a few
	// minutes.
	ScaleMedium = Scale{
		Name: "medium", LoadOps: 60_000, RunOps: 16_000, BigLoadFactor: 2,
		ValueSize: 1024, SizeDiv: 16, Threads: 4, TimeScale: 1.0,
	}
	// ScaleLarge approaches 1/64 of the paper's data volume; budget an
	// hour for the full suite.
	ScaleLarge = Scale{
		Name: "large", LoadOps: 400_000, RunOps: 80_000, BigLoadFactor: 2,
		ValueSize: 1024, SizeDiv: 8, Threads: 4, TimeScale: 1.0,
	}
)

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium", "":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	default:
		return Scale{}, fmt.Errorf("bench: unknown scale %q (small|medium|large)", name)
	}
}

// div scales a paper-sized byte constant.
func (s Scale) div(bytes int64) int64 {
	v := bytes / s.SizeDiv
	if v < 4096 {
		v = 4096
	}
	return v
}

// SimDisk returns the scaled device model: fixed latencies (barrier,
// per-read, metadata op) keep their real-hardware values while bandwidths
// are divided by SizeDiv. Since every byte-size constant of the stores is
// divided by the same factor, every "transfer time vs fixed cost" ratio —
// the barrier amortization the paper studies, and the metadata-read miss
// penalty of Section 2.6 — matches the unscaled SATA testbed. Keeping the
// latencies at real (millisecond-ish) magnitudes also keeps slept
// durations above the host's sleep quantum (see simdisk.minSleep).
func (s Scale) SimDisk() bolt.SimDisk {
	return bolt.SimDisk{
		WriteBandwidth: 500 * (1 << 20) / float64(s.SizeDiv),
		ReadBandwidth:  550 * (1 << 20) / float64(s.SizeDiv),
		TimeScale:      s.TimeScale,
	}
}

// profileSSTableBytes mirrors each profile's paper-scale SSTable size.
func profileSSTableBytes(p bolt.Profile) int64 {
	switch p {
	case bolt.ProfileLevelDB, bolt.ProfileBoLT:
		return 2 << 20
	case bolt.ProfileHyperLevelDB, bolt.ProfileHyperBoLT:
		return 32 << 20
	default: // LVL64MB, RocksDB, PebblesDB
		return 64 << 20
	}
}

// Options builds scaled store options for a profile. The paper's shared
// settings: 64 MB MemTable, 10 bloom bits, compression off (we have none),
// per-store SSTable sizes, 1 MB logical SSTables, 64 MB group compaction.
func (s Scale) Options(p bolt.Profile) *bolt.Options {
	o := &bolt.Options{
		Profile:       p,
		MemTableBytes: s.div(64 << 20),
		SSTableBytes:  s.div(profileSSTableBytes(p)),
	}
	if p == bolt.ProfileBoLT || p == bolt.ProfileHyperBoLT {
		o.LogicalSSTableBytes = s.div(1 << 20)
		o.GroupCompactionBytes = s.div(64 << 20)
	}
	if p == bolt.ProfileRocksDB {
		o.L1MaxBytes = s.div(256 << 20)
	} else {
		o.L1MaxBytes = s.div(10 << 20)
	}
	o.BlockCacheBytes = s.div(8 << 20)
	// Block size scales with a 256-byte floor so blocks-per-table — and
	// with it the index-size-to-block-size ratio that drives the
	// TableCache miss penalty — stays faithful.
	o.BlockSize = int(4096 / s.SizeDiv)
	if o.BlockSize < 256 {
		o.BlockSize = 256
	}
	return o
}

// kvAdapter adapts bolt.DB to ycsb.KV.
type kvAdapter struct {
	db *bolt.DB
}

var _ ycsb.KV = (*kvAdapter)(nil)

func (a *kvAdapter) Put(key, value []byte) error { return a.db.Put(key, value) }

func (a *kvAdapter) Get(key []byte) (bool, error) {
	_, err := a.db.Get(key)
	if errors.Is(err, bolt.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

func (a *kvAdapter) Scan(start []byte, maxLen int) (int, error) {
	it := a.db.NewIterator(nil)
	defer it.Close()
	n := 0
	for ok := it.SeekGE(start); ok && n < maxLen; ok = it.Next() {
		_ = it.Value()
		n++
	}
	return n, it.Err()
}

// PhaseResult couples one workload's YCSB result with the store/device
// counter deltas it caused.
type PhaseResult struct {
	Workload ycsb.Workload
	Result   *ycsb.Result
	// Fsyncs and BytesWritten are deltas over this phase.
	Fsyncs       int64
	BytesWritten int64
	BytesRead    int64
	StallTime    time.Duration
}

// SequenceResult is one store's full YCSB sequence (LA, A, B, C, F, D,
// fresh DB, LE, E).
type SequenceResult struct {
	Profile bolt.Profile
	Label   string
	Phases  map[ycsb.Workload]*PhaseResult
	// FinalStats is the first database's final counter snapshot (after D).
	FinalStats bolt.Stats
}

// Throughput returns a phase's throughput in ops/s (0 if absent).
func (r *SequenceResult) Throughput(w ycsb.Workload) float64 {
	if p, ok := r.Phases[w]; ok {
		return p.Result.Throughput
	}
	return 0
}

// RunSequence executes the paper's YCSB order against a fresh simulated
// store. Workloads may be restricted via only (nil = all): a group is run
// up to its last wanted workload (preceding workloads still execute so the
// store state matches the paper's submission order) and skipped entirely
// when it contains none.
func RunSequence(o *bolt.Options, s Scale, dist ycsb.Distribution, only map[ycsb.Workload]bool) (*SequenceResult, error) {
	out := &SequenceResult{Profile: o.Profile, Phases: map[ycsb.Workload]*PhaseResult{}}
	want := func(w ycsb.Workload) bool { return only == nil || only[w] }

	for groupIdx, fullGroup := range ycsb.Sequence() {
		lastWanted := -1
		for i, w := range fullGroup {
			if want(w) {
				lastWanted = i
			}
		}
		if lastWanted < 0 {
			continue
		}
		group := fullGroup[:lastWanted+1]
		db, err := bolt.OpenSim(o, s.SimDisk())
		if err != nil {
			return nil, err
		}
		stopStats := watchStats(db, o.Profile.String())
		kv := &kvAdapter{db: db}
		records := int64(0)
		prev := db.Stats()
		for _, w := range group {
			cfg := ycsb.RunConfig{
				Workload:     w,
				Distribution: dist,
				RecordCount:  records,
				Threads:      s.Threads,
				ValueSize:    s.ValueSize,
				Seed:         int64(1000*groupIdx) + int64(w),
			}
			if w.IsLoad() {
				cfg.Ops = s.LoadOps
			} else {
				cfg.Ops = s.RunOps
			}
			res, err := ycsb.Run(kv, cfg)
			if err != nil {
				stopStats()
				_ = db.Close() //boltvet:ignore errflow -- best-effort close on the error path; the run error is returned
				return nil, fmt.Errorf("bench: %s on %s: %w", w, o.Profile, err)
			}
			records += res.InsertedRecords
			cur := db.Stats()
			if want(w) {
				out.Phases[w] = &PhaseResult{
					Workload:     w,
					Result:       res,
					Fsyncs:       cur.Fsyncs - prev.Fsyncs,
					BytesWritten: cur.BytesWritten - prev.BytesWritten,
					BytesRead:    cur.BytesRead - prev.BytesRead,
					StallTime:    cur.StallTime - prev.StallTime,
				}
			}
			prev = cur
		}
		if groupIdx == 0 {
			out.FinalStats = db.Stats()
		}
		stopStats()
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Params is the shared experiment input.
type Params struct {
	Scale Scale
	Out   io.Writer
}

func (p Params) printf(format string, args ...any) {
	fmt.Fprintf(p.Out, format, args...)
}

// Experiment is one figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) error
}

// Experiments lists every figure reproduction in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig4", "Fig 4: #fsync and insertion tail latency vs SSTable size (stock LevelDB, Load A)", Fig4},
		{"fig6", "Fig 6: TableCache eviction overhead (point-query latency, 2 MB vs 64 MB SSTables)", Fig6},
		{"fig11", "Fig 11: #fsync vs group compaction size (BoLT, Load A)", Fig11},
		{"fig12a", "Fig 12a: BoLT ablation in LevelDB (+LS/+GC/+STL/+FC)", Fig12a},
		{"fig12b", "Fig 12b: BoLT ablation in HyperLevelDB", Fig12b},
		{"fig13", "Fig 13: YCSB throughput, all stores, zipfian & uniform", Fig13},
		{"fig14", "Fig 14: tail latency of writes (Load A) and reads (C)", Fig14},
		{"fig15", "Fig 15: BoLT vs RocksDB, memory-constrained large DB", Fig15},
		{"fig16", "Fig 16: tail latency CDFs per workload, BoLT vs RocksDB", Fig16},
		{"ext-rocksbolt", "EXTENSION: BoLT elements inside the RocksDB profile (paper future work)", ExtRocksBoLT},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
