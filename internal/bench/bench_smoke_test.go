package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

// tinyScale makes smoke tests fast: sleeping disabled, tiny ops.
var tinyScale = Scale{
	Name: "tiny", LoadOps: 3000, RunOps: 1200, BigLoadFactor: 2,
	ValueSize: 128, SizeDiv: 256, Threads: 4, TimeScale: -1,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestOptionsScaling(t *testing.T) {
	s := ScaleMedium
	o := s.Options(bolt.ProfileBoLT)
	if o.MemTableBytes != (64<<20)/s.SizeDiv {
		t.Errorf("memtable = %d", o.MemTableBytes)
	}
	if o.SSTableBytes != (2<<20)/s.SizeDiv {
		t.Errorf("sstable = %d", o.SSTableBytes)
	}
	if o.LogicalSSTableBytes != (1<<20)/s.SizeDiv {
		t.Errorf("lsst = %d", o.LogicalSSTableBytes)
	}
	if o.GroupCompactionBytes != (64<<20)/s.SizeDiv {
		t.Errorf("group = %d", o.GroupCompactionBytes)
	}
	// Non-BoLT profiles get no logical SSTables.
	if s.Options(bolt.ProfileRocksDB).LogicalSSTableBytes != 0 {
		t.Error("rocks profile got logical sstables")
	}
	// div floors at 4 KiB.
	tiny := Scale{SizeDiv: 1 << 30}
	if tiny.div(1<<20) != 4096 {
		t.Errorf("div floor = %d", tiny.div(1<<20))
	}
}

func TestRunSequenceLoadOnly(t *testing.T) {
	res, err := RunSequence(tinyScale.Options(bolt.ProfileLevelDB), tinyScale, ycsb.Zipfian, loadAOnly)
	if err != nil {
		t.Fatal(err)
	}
	la, ok := res.Phases[ycsb.LoadA]
	if !ok {
		t.Fatal("no LoadA phase")
	}
	if la.Result.Ops != tinyScale.LoadOps {
		t.Fatalf("ops = %d", la.Result.Ops)
	}
	if la.Fsyncs == 0 || la.BytesWritten == 0 {
		t.Fatalf("phase deltas empty: %+v", la)
	}
	if res.Throughput(ycsb.WorkloadA) != 0 {
		t.Fatal("unwanted phase recorded")
	}
}

func TestRunSequenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full sequence")
	}
	res, err := RunSequence(tinyScale.Options(bolt.ProfileBoLT), tinyScale, ycsb.Zipfian, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range figWorkloads {
		ph, ok := res.Phases[w]
		if !ok {
			t.Fatalf("missing phase %s", w)
		}
		if ph.Result.Throughput <= 0 {
			t.Fatalf("phase %s throughput %f", w, ph.Result.Throughput)
		}
	}
	if res.FinalStats.Writes == 0 {
		t.Fatal("final stats empty")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 10 {
		t.Fatalf("%d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

// TestEveryExperimentRunsAtTinyScale smoke-runs all nine figures.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even tiny")
	}
	for _, e := range Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Params{Scale: tinyScale, Out: &buf}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "#") || len(out) < 100 {
				t.Fatalf("%s produced no report:\n%s", e.ID, out)
			}
		})
	}
}
