package bench

import (
	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

// ExtRocksBoLT is an EXTENSION beyond the paper: Section 4.1 leaves "the
// application of BoLT in RocksDB as our future work" and Section 6 argues
// the designs are complementary. Because this reproduction expresses every
// store as one engine's configuration, the combination is directly
// runnable: the RocksDB profile (64 MB tables, compact format, 20/36
// governors, 256 MB L1, dedicated flush thread) plus BoLT's four elements.
// Expected shape (the paper's conjecture): the combination beats stock
// RocksDB on write throughput and fsync count while keeping its read
// behaviour.
func ExtRocksBoLT(p Params) error {
	s := p.Scale
	variants := []struct {
		label string
		opts  func() *bolt.Options
	}{
		{"RocksDB", func() *bolt.Options { return s.Options(bolt.ProfileRocksDB) }},
		{"RocksDB+BoLT", func() *bolt.Options {
			o := s.Options(bolt.ProfileRocksDB)
			o.LogicalSSTableBytes = s.div(1 << 20)
			o.GroupCompactionBytes = s.div(64 << 20)
			o.EnableSettled = true
			o.EnableFDCache = true
			return o
		}},
	}
	p.printf("# EXTENSION — BoLT elements applied to the RocksDB profile (paper future work)\n")
	p.printf("# YCSB zipfian, LA/LE=%d ops, runs=%d ops [scale=%s]\n", s.LoadOps, s.RunOps, s.Name)
	p.printf("%-14s %10s", "config", "fsyncs(LA)")
	for _, w := range figWorkloads {
		p.printf(" %9s", w)
	}
	p.printf(" %12s\n", "written(LA)")
	for _, v := range variants {
		o := v.opts()
		res, err := RunSequence(o, s, ycsb.Zipfian, nil)
		if err != nil {
			return err
		}
		la := res.Phases[ycsb.LoadA]
		p.printf("%-14s %10d", v.label, la.Fsyncs)
		for _, w := range figWorkloads {
			p.printf(" %9.0f", res.Throughput(w))
		}
		p.printf(" %12s\n", fmtBytes(la.BytesWritten))
	}
	return nil
}
