package bench

import (
	"fmt"
	"time"

	"github.com/bolt-lsm/bolt"
	"github.com/bolt-lsm/bolt/internal/histogram"
	"github.com/bolt-lsm/bolt/internal/ycsb"
)

// tailPercentiles are the percentiles printed for tail-latency figures.
var tailPercentiles = []float64{50, 90, 95, 97, 98, 99, 99.5, 99.85, 99.9, 99.99}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fmtLatencyRow(h *histogram.Histogram) string {
	row := ""
	for _, p := range tailPercentiles {
		row += fmt.Sprintf(" %10v", h.Quantile(p/100).Round(time.Microsecond))
	}
	return row
}

func latencyHeader() string {
	row := ""
	for _, p := range tailPercentiles {
		row += fmt.Sprintf(" %9.2f%%", p)
	}
	return row
}

// loadAOnly restricts a sequence to the Load A phase.
var loadAOnly = map[ycsb.Workload]bool{ycsb.LoadA: true}

// Fig4 sweeps the SSTable size of stock LevelDB under YCSB Load A and
// reports the fsync count (4a) and insertion tail latency (4b). Expected
// shape: fsyncs halve per size doubling; tails improve with size.
func Fig4(p Params) error {
	p.printf("# Fig 4 — stock LevelDB, Load A (%d ops x %d B), SSTable size sweep [scale=%s]\n",
		p.Scale.LoadOps, p.Scale.ValueSize, p.Scale.Name)
	p.printf("%-12s %10s %12s %12s%s\n", "sstable", "fsyncs", "ops/s", "stall", latencyHeader())
	for _, mb := range []int64{1, 2, 4, 8, 16, 32, 64} {
		o := p.Scale.Options(bolt.ProfileLevelDB)
		o.SSTableBytes = p.Scale.div(mb << 20)
		res, err := RunSequence(o, p.Scale, ycsb.Zipfian, loadAOnly)
		if err != nil {
			return err
		}
		la := res.Phases[ycsb.LoadA]
		p.printf("%-12s %10d %12.0f %12v%s\n",
			fmt.Sprintf("%dMB/%d", mb, p.Scale.SizeDiv), la.Fsyncs,
			la.Result.Throughput, la.StallTime.Round(time.Millisecond),
			fmtLatencyRow(la.Result.Write))
	}
	return nil
}

// Fig6 measures the TableCache eviction overhead: point-query latency with
// 2 MB vs 64 MB SSTables at an identical TableCache entry budget (RocksDB
// profile). Expected shape: the 64 MB configuration has far higher tail
// latency because each TableCache miss reads a ~32x larger index block.
func Fig6(p Params) error {
	loadOps := p.Scale.LoadOps * p.Scale.BigLoadFactor
	p.printf("# Fig 6 — RocksDB profile, %d-record DB, %d point queries, fixed TableCache entries [scale=%s]\n",
		loadOps, p.Scale.RunOps, p.Scale.Name)

	// Size the TableCache so the 64 MB configuration cannot hold its
	// (fewer, larger) tables either: both configurations miss, and the
	// miss penalty difference is what the figure shows.
	dbBytes := loadOps * int64(p.Scale.ValueSize+120)
	bigTables := dbBytes / p.Scale.div(64<<20)
	cacheEntries := int(bigTables/2) + 2

	p.printf("%-12s %10s %10s %12s %14s%s\n",
		"sstable", "tc-hits", "tc-miss", "meta-read", "reads/s", latencyHeader())
	for _, mb := range []int64{2, 64} {
		o := p.Scale.Options(bolt.ProfileRocksDB)
		o.SSTableBytes = p.Scale.div(mb << 20)
		o.TableCacheEntries = cacheEntries
		db, err := bolt.OpenSim(o, p.Scale.SimDisk())
		if err != nil {
			return err
		}
		stopStats := watchStats(db, fmt.Sprintf("fig6-%dMB", mb))
		kv := &kvAdapter{db: db}
		if _, err := ycsb.Run(kv, ycsb.RunConfig{
			Workload: ycsb.LoadA, Ops: loadOps,
			Threads: p.Scale.Threads, ValueSize: p.Scale.ValueSize, Seed: 1,
		}); err != nil {
			stopStats()
			_ = db.Close() //boltvet:ignore errflow -- best-effort close on the error path; the run error is returned
			return err
		}
		// Separate the population's compaction debt from the read
		// measurement (the paper submits its 1M point queries against a
		// settled database).
		if err := db.WaitIdle(); err != nil {
			stopStats()
			_ = db.Close() //boltvet:ignore errflow -- best-effort close on the error path; the run error is returned
			return err
		}
		before := db.Stats()
		res, err := ycsb.Run(kv, ycsb.RunConfig{
			Workload: ycsb.WorkloadC, Distribution: ycsb.Uniform,
			RecordCount: loadOps, Ops: p.Scale.RunOps,
			Threads: p.Scale.Threads, ValueSize: p.Scale.ValueSize, Seed: 2,
		})
		if err != nil {
			stopStats()
			_ = db.Close() //boltvet:ignore errflow -- best-effort close on the error path; the run error is returned
			return err
		}
		after := db.Stats()
		p.printf("%-12s %10d %10d %12s %14.0f%s\n",
			fmt.Sprintf("%dMB/%d", mb, p.Scale.SizeDiv),
			after.TableCacheHits-before.TableCacheHits,
			after.TableCacheMisses-before.TableCacheMisses,
			fmtBytes(after.MetaBytesRead-before.MetaBytesRead),
			res.Throughput, fmtLatencyRow(res.Read))
		stopStats()
		if err := db.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Fig11 sweeps BoLT's group compaction size under Load A and reports the
// fsync count against the stock LevelDB baseline. Expected shape: BoLT at
// 2 MB groups already roughly halves LevelDB's fsyncs; the count then
// decreases with group size.
func Fig11(p Params) error {
	p.printf("# Fig 11 — #fsync vs group compaction size, Load A (%d ops) [scale=%s]\n",
		p.Scale.LoadOps, p.Scale.Name)
	p.printf("%-16s %10s %12s %14s\n", "config", "fsyncs", "ops/s", "written")

	lvl, err := RunSequence(p.Scale.Options(bolt.ProfileLevelDB), p.Scale, ycsb.Zipfian, loadAOnly)
	if err != nil {
		return err
	}
	la := lvl.Phases[ycsb.LoadA]
	p.printf("%-16s %10d %12.0f %14s\n", "LevelDB", la.Fsyncs, la.Result.Throughput, fmtBytes(la.BytesWritten))

	for _, mb := range []int64{2, 4, 8, 16, 32, 64} {
		o := p.Scale.Options(bolt.ProfileBoLT)
		o.GroupCompactionBytes = p.Scale.div(mb << 20)
		res, err := RunSequence(o, p.Scale, ycsb.Zipfian, loadAOnly)
		if err != nil {
			return err
		}
		la := res.Phases[ycsb.LoadA]
		p.printf("%-16s %10d %12.0f %14s\n",
			fmt.Sprintf("BoLT GC%dMB/%d", mb, p.Scale.SizeDiv),
			la.Fsyncs, la.Result.Throughput, fmtBytes(la.BytesWritten))
	}
	return nil
}

// ablationVariant names one Figure 12 configuration.
type ablationVariant struct {
	label string
	opts  func(Scale) *bolt.Options
}

func ablations(base, full bolt.Profile) []ablationVariant {
	return []ablationVariant{
		{"stock", func(s Scale) *bolt.Options { return s.Options(base) }},
		{"+LS", func(s Scale) *bolt.Options {
			o := s.Options(full)
			o.DisableGroupCompaction = true
			o.DisableSettled = true
			o.DisableFDCache = true
			return o
		}},
		{"+GC", func(s Scale) *bolt.Options {
			o := s.Options(full)
			o.DisableSettled = true
			o.DisableFDCache = true
			return o
		}},
		{"+STL", func(s Scale) *bolt.Options {
			o := s.Options(full)
			o.DisableFDCache = true
			return o
		}},
		{"+FC", func(s Scale) *bolt.Options { return s.Options(full) }},
	}
}

// figWorkloads is the paper's reporting order.
var figWorkloads = []ycsb.Workload{
	ycsb.LoadA, ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
	ycsb.WorkloadF, ycsb.WorkloadD, ycsb.LoadE, ycsb.WorkloadE,
}

func printThroughputHeader(p Params) {
	p.printf("%-14s", "config")
	for _, w := range figWorkloads {
		p.printf(" %9s", w)
	}
	p.printf(" %12s\n", "written(LA)")
}

func printThroughputRow(p Params, label string, res *SequenceResult) {
	p.printf("%-14s", label)
	for _, w := range figWorkloads {
		p.printf(" %9.0f", res.Throughput(w))
	}
	written := int64(0)
	if la, ok := res.Phases[ycsb.LoadA]; ok {
		written = la.BytesWritten
	}
	p.printf(" %12s\n", fmtBytes(written))
}

func runAblation(p Params, title string, base, full bolt.Profile) error {
	p.printf("# %s — YCSB zipfian throughput (ops/s), LA/LE=%d ops, runs=%d ops [scale=%s]\n",
		title, p.Scale.LoadOps, p.Scale.RunOps, p.Scale.Name)
	printThroughputHeader(p)
	for _, v := range ablations(base, full) {
		res, err := RunSequence(v.opts(p.Scale), p.Scale, ycsb.Zipfian, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", v.label, err)
		}
		printThroughputRow(p, v.label, res)
	}
	return nil
}

// Fig12a quantifies each BoLT element over the LevelDB base. Expected
// shape: +LS ≈ stock, +GC a large write-throughput jump, +STL reduces the
// bytes written, +FC adds further gains; reads improve throughout.
func Fig12a(p Params) error {
	return runAblation(p, "Fig 12a — BoLT designs in LevelDB", bolt.ProfileLevelDB, bolt.ProfileBoLT)
}

// Fig12b quantifies each BoLT element over the HyperLevelDB base. Expected
// shape: +LS below stock (fsync-heavy without grouping), +GC and beyond
// above stock.
func Fig12b(p Params) error {
	return runAblation(p, "Fig 12b — BoLT designs in HyperLevelDB", bolt.ProfileHyperLevelDB, bolt.ProfileHyperBoLT)
}

// fig13Profiles is the paper's store lineup.
var fig13Profiles = []bolt.Profile{
	bolt.ProfileLevelDB, bolt.ProfileLevelDB64MB, bolt.ProfileHyperLevelDB,
	bolt.ProfilePebblesDB, bolt.ProfileRocksDB, bolt.ProfileBoLT, bolt.ProfileHyperBoLT,
}

// Fig13 compares all seven stores across the YCSB suite under zipfian and
// uniform distributions. Expected shape: write-only (LA/LE) ranking
// Pebbles > HyperBoLT > Hyper > BoLT > LVL64 > LevelDB; BoLT/HyperBoLT win
// most mixed and read workloads.
func Fig13(p Params) error {
	for _, dist := range []ycsb.Distribution{ycsb.Zipfian, ycsb.Uniform} {
		p.printf("# Fig 13 (%s) — YCSB throughput (ops/s), LA/LE=%d ops, runs=%d ops [scale=%s]\n",
			dist, p.Scale.LoadOps, p.Scale.RunOps, p.Scale.Name)
		printThroughputHeader(p)
		for _, prof := range fig13Profiles {
			res, err := RunSequence(p.Scale.Options(prof), p.Scale, dist, nil)
			if err != nil {
				return fmt.Errorf("%v/%v: %w", prof, dist, err)
			}
			printThroughputRow(p, prof.String(), res)
		}
		p.printf("\n")
	}
	return nil
}

// Fig14 reports insertion (Load A) and read (workload C) tail latencies
// per store. Expected shape: Hyper-family lowest insertion tails;
// RocksDB's read tail spikes around p98 from TableCache miss penalties.
func Fig14(p Params) error {
	only := map[ycsb.Workload]bool{ycsb.LoadA: true, ycsb.WorkloadC: true}
	type row struct {
		label   string
		la, c   *histogram.Histogram
		laCount int64
	}
	var rows []row
	for _, prof := range fig13Profiles {
		res, err := RunSequence(p.Scale.Options(prof), p.Scale, ycsb.Zipfian, only)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			label: prof.String(),
			la:    res.Phases[ycsb.LoadA].Result.Write,
			c:     res.Phases[ycsb.WorkloadC].Result.Read,
		})
	}
	p.printf("# Fig 14a — insertion latency percentiles, Load A [scale=%s]\n%-14s%s\n",
		p.Scale.Name, "store", latencyHeader())
	for _, r := range rows {
		p.printf("%-14s%s\n", r.label, fmtLatencyRow(r.la))
	}
	p.printf("\n# Fig 14b — read latency percentiles, workload C\n%-14s%s\n", "store", latencyHeader())
	for _, r := range rows {
		p.printf("%-14s%s\n", r.label, fmtLatencyRow(r.c))
	}
	return nil
}

// fig15Options returns the memory-constrained, parameter-matched store
// options of Figures 15/16: BoLT adopts RocksDB's TableCache budget,
// governors (20/36), and level-1 limit, per the paper's fairness setup.
func fig15Options(s Scale, prof bolt.Profile, valueSize int, records int64) *bolt.Options {
	o := s.Options(prof)
	o.L1MaxBytes = s.div(256 << 20)
	o.L0SlowdownTrigger = 20
	o.L0StopTrigger = 36
	// A TableCache too small for the database models the paper's
	// memory-constrained host.
	dbBytes := records * int64(valueSize+120)
	o.TableCacheEntries = int(dbBytes/s.div(64<<20))/2 + 2
	return o
}

type fig15Config struct {
	label     string
	dist      ycsb.Distribution
	valueSize int
	loadMul   int64
}

func fig15Configs(s Scale) []fig15Config {
	return []fig15Config{
		{"1KB-zipfian", ycsb.Zipfian, s.ValueSize, s.BigLoadFactor},
		{"1KB-uniform", ycsb.Uniform, s.ValueSize, s.BigLoadFactor},
		{"100B-zipfian", ycsb.Zipfian, 100, s.BigLoadFactor * 2},
	}
}

// Fig15 compares BoLT against RocksDB on a database too large for the
// caches. Expected shape: BoLT wins clearly at 1 KB records; RocksDB wins
// the write-only loads at 100-byte records (record-format efficiency) and
// scans (E), while BoLT holds reads.
func Fig15(p Params) error {
	scale := p.Scale
	for _, cfg := range fig15Configs(scale) {
		s := scale
		s.ValueSize = cfg.valueSize
		s.LoadOps = scale.LoadOps * cfg.loadMul
		records := s.LoadOps
		p.printf("# Fig 15 (%s) — BoLT vs RocksDB, load=%d x %d B [scale=%s]\n",
			cfg.label, s.LoadOps, s.ValueSize, s.Name)
		printThroughputHeader(p)
		for _, prof := range []bolt.Profile{bolt.ProfileBoLT, bolt.ProfileRocksDB} {
			res, err := RunSequence(fig15Options(s, prof, cfg.valueSize, records), s, cfg.dist, nil)
			if err != nil {
				return fmt.Errorf("fig15 %s %v: %w", cfg.label, prof, err)
			}
			printThroughputRow(p, prof.String(), res)
		}
		p.printf("\n")
	}
	return nil
}

// Fig16 prints per-workload latency percentiles for BoLT and RocksDB at
// the Figure 15 (1 KB zipfian) configuration. Expected shape: RocksDB
// shows the higher tails on every workload except E (scans).
func Fig16(p Params) error {
	s := p.Scale
	s.LoadOps = s.LoadOps * s.BigLoadFactor
	runs := []ycsb.Workload{
		ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
		ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF,
	}
	results := map[bolt.Profile]*SequenceResult{}
	for _, prof := range []bolt.Profile{bolt.ProfileBoLT, bolt.ProfileRocksDB} {
		res, err := RunSequence(fig15Options(s, prof, s.ValueSize, s.LoadOps), s, ycsb.Zipfian, nil)
		if err != nil {
			return err
		}
		results[prof] = res
	}
	p.printf("# Fig 16 — per-workload latency percentiles, BoLT vs RocksDB (1KB zipfian, big DB) [scale=%s]\n", s.Name)
	for _, w := range runs {
		p.printf("workload %s\n%-14s%s\n", w, "store", latencyHeader())
		for _, prof := range []bolt.Profile{bolt.ProfileBoLT, bolt.ProfileRocksDB} {
			ph, ok := results[prof].Phases[w]
			if !ok {
				continue
			}
			p.printf("%-14s%s\n", prof.String(), fmtLatencyRow(ph.Result.Overall))
		}
		p.printf("\n")
	}
	return nil
}
