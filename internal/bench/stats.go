package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/bolt-lsm/bolt"
)

// StatsEvery, when positive, makes every benchmark database print one
// engine stats line to StatsOut at that interval while it is open — the
// library-side hook behind bolt-bench's -stats-every flag. StatsOut
// defaults to stderr so the periodic lines interleave with, but do not
// corrupt, the figure data written to stdout.
var (
	StatsEvery time.Duration
	StatsOut   io.Writer = os.Stderr
)

// watchStats starts the periodic stats reporter for db when StatsEvery is
// set. The returned stop function is idempotent and waits for the reporter
// to exit, so it is safe to call immediately before db.Close.
func watchStats(db *bolt.DB, label string) (stop func()) {
	if StatsEvery <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(StatsEvery)
		defer tick.Stop()
		var last bolt.Stats
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := db.Stats()
				l0 := 0
				if ls := db.LevelStats(); len(ls) > 0 {
					l0 = ls[0].Tables
				}
				fmt.Fprintf(StatsOut,
					"stats[%s]: writes=%d gets=%d fsyncs=%d(+%d) flushes=%d compactions=%d stall=%v l0=%d\n",
					label, s.Writes, s.Gets, s.Fsyncs, s.Fsyncs-last.Fsyncs,
					s.MemtableFlushes, s.Compactions,
					s.StallTime.Round(time.Millisecond), l0)
				last = s
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
