// Package block implements the SSTable block format: prefix-compressed
// key/value entries with restart points for binary search, as in LevelDB.
//
// Entry encoding (all varints):
//
//	shared | unshared | valueLen | padLen | key[shared:] | value | pad
//
// The padLen field is this implementation's one extension: profiles that
// model a less space-efficient on-disk format (the paper measures LevelDB
// at 223 bytes vs RocksDB at 141 bytes per 100-byte record) pad each entry
// by a fixed amount. Readers skip the pad; values are never altered.
//
// The block ends with a restart array: one uint32 offset per restart point
// followed by the restart count.
package block

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// DefaultRestartInterval is the number of entries between restart points.
const DefaultRestartInterval = 16

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("block: corrupt")

// Builder assembles a block. The zero value is not usable; use NewBuilder.
type Builder struct {
	restartInterval int
	padding         int

	buf        []byte
	restarts   []uint32
	numEntries int
	counter    int // entries since the last restart
	lastKey    []byte
}

// NewBuilder returns a block builder. restartInterval <= 0 selects the
// default; padding is the per-entry dead-byte count (format-efficiency
// model, normally 0).
func NewBuilder(restartInterval, padding int) *Builder {
	if restartInterval <= 0 {
		restartInterval = DefaultRestartInterval
	}
	return &Builder{
		restartInterval: restartInterval,
		padding:         padding,
		restarts:        []uint32{0},
	}
}

// Add appends an entry. Keys must be added in strictly increasing internal
// key order; this is the caller's responsibility.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = binary.AppendUvarint(b.buf, uint64(b.padding))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	for i := 0; i < b.padding; i++ {
		b.buf = append(b.buf, 0)
	}
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.numEntries++
}

// EstimatedSize returns the current encoded size if Finish were called now.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Empty reports whether no entries have been added.
func (b *Builder) Empty() bool { return b.numEntries == 0 }

// NumEntries returns the number of entries added.
func (b *Builder) NumEntries() int { return b.numEntries }

// Finish appends the restart array and returns the complete block. The
// builder must be Reset before reuse.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Reset prepares the builder for a new block.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.numEntries = 0
	b.counter = 0
	b.lastKey = b.lastKey[:0]
}

// Reader provides access to a finished block. The restart array is kept
// in its encoded form and decoded on demand: materializing it as []uint32
// would cost one allocation per block read — on the Get hot path, per
// lookup — for data the binary search touches only O(log n) entries of.
type Reader struct {
	data        []byte // entry region only
	restartData []byte // encoded restart array, 4 bytes per restart
	numRestarts int
}

// NewReader parses the framing of a finished block.
func NewReader(data []byte) (*Reader, error) {
	r := new(Reader)
	if err := r.Init(data); err != nil {
		return nil, err
	}
	return r, nil
}

// Init parses the framing of a finished block in place, so callers on hot
// paths can keep the Reader on the stack instead of heap-allocating one
// per block read.
func (r *Reader) Init(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: too short (%d bytes)", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	restartsOff := len(data) - 4 - 4*n
	if n <= 0 || restartsOff < 0 {
		return fmt.Errorf("%w: bad restart count %d", ErrCorrupt, n)
	}
	for i := 0; i < n; i++ {
		if int(binary.LittleEndian.Uint32(data[restartsOff+4*i:])) > restartsOff {
			return fmt.Errorf("%w: restart %d out of range", ErrCorrupt, i)
		}
	}
	r.data = data[:restartsOff]
	r.restartData = data[restartsOff : len(data)-4]
	r.numRestarts = n
	return nil
}

// restart returns the i'th restart offset (validated by Init).
func (r *Reader) restart(i int) int {
	return int(binary.LittleEndian.Uint32(r.restartData[4*i:]))
}

// parseHeader decodes the varint header of the entry at off, returning
// the shared/unshared key lengths, the offset of the key suffix (the
// value follows it), the value length, and the offset of the next entry.
func (r *Reader) parseHeader(off int) (shared, unshared, kstart, valueLen, next int, err error) {
	data := r.data
	if off >= len(data) {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: entry offset %d out of range", ErrCorrupt, off)
	}
	p := off
	sharedU, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: bad shared varint at %d", ErrCorrupt, p)
	}
	p += n
	unsharedU, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: bad unshared varint at %d", ErrCorrupt, p)
	}
	p += n
	valueLenU, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: bad value len at %d", ErrCorrupt, p)
	}
	p += n
	padLenU, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: bad pad len at %d", ErrCorrupt, p)
	}
	p += n
	end := p + int(unsharedU) + int(valueLenU) + int(padLenU)
	if end > len(data) {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: entry at %d overruns block", ErrCorrupt, off)
	}
	return int(sharedU), int(unsharedU), p, int(valueLenU), end, nil
}

// restartKey returns the full key of the i'th restart entry. Restart
// entries are written with shared == 0 by construction, so the key
// aliases the block data directly — Seek's binary search probes allocate
// nothing.
func (r *Reader) restartKey(i int) (keys.InternalKey, error) {
	off := r.restart(i)
	shared, unshared, kstart, _, _, err := r.parseHeader(off)
	if err != nil {
		return nil, err
	}
	if shared != 0 {
		return nil, fmt.Errorf("%w: restart entry at %d has shared prefix", ErrCorrupt, off)
	}
	if unshared < keys.TrailerLen {
		return nil, fmt.Errorf("%w: entry key at %d shorter than trailer", ErrCorrupt, off)
	}
	return keys.InternalKey(r.data[kstart : kstart+unshared]), nil
}

// Iter returns an iterator positioned before the first entry.
func (r *Reader) Iter() *Iter {
	it := new(Iter)
	it.Init(r)
	return it
}

// Iter iterates a block's entries in key order. Typical use:
//
//	for it.First(); it.Valid(); it.Next() { ... }
//	if err := it.Err(); err != nil { ... }
//
// Keys are reconstructed into a buffer that is reused across positioning
// calls — Key and Value are valid only until the next move, per the
// engine-wide iterator contract.
type Iter struct {
	r      *Reader
	offset int // -1 before first / after exhaustion
	next   int
	buf    []byte // reused backing for reconstructed keys
	key    keys.InternalKey
	value  []byte
	err    error
}

// Init points the iterator at r, positioned before the first entry. The
// key buffer is retained across Init calls so one stack Iter can walk
// many blocks without reallocating.
func (it *Iter) Init(r *Reader) {
	it.r = r
	it.offset = -1
	it.next = 0
	it.key = nil
	it.value = nil
	it.err = nil
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.offset >= 0 && it.err == nil }

// Err returns the first corruption error encountered, if any.
func (it *Iter) Err() error { return it.err }

// Key returns the current internal key. Valid until the next move.
func (it *Iter) Key() keys.InternalKey { return it.key }

// Value returns the current value. Valid until the next move.
func (it *Iter) Value() []byte { return it.value }

func (it *Iter) setInvalid() {
	it.offset = -1
	it.key = nil
	it.value = nil
}

// decodeAt decodes the entry at off into the reused key buffer. prevLen
// is the number of leading bytes of it.buf that hold the previous entry's
// key (0 when off is a restart point, where shared must be 0).
func (it *Iter) decodeAt(off, prevLen int) bool {
	shared, unshared, kstart, valueLen, next, err := it.r.parseHeader(off)
	if err != nil {
		it.err = err
		it.setInvalid()
		return false
	}
	if shared > prevLen {
		it.err = fmt.Errorf("%w: shared %d exceeds previous key %d", ErrCorrupt, shared, prevLen)
		it.setInvalid()
		return false
	}
	if shared+unshared < keys.TrailerLen {
		// An internal key must carry its 8-byte trailer; anything shorter
		// is corruption and would crash the comparator.
		it.err = fmt.Errorf("%w: entry key at %d shorter than trailer", ErrCorrupt, off)
		it.setInvalid()
		return false
	}
	it.buf = append(it.buf[:shared], it.r.data[kstart:kstart+unshared]...)
	it.key = it.buf
	it.value = it.r.data[kstart+unshared : kstart+unshared+valueLen]
	it.offset = off
	it.next = next
	return true
}

// First positions the iterator at the first entry.
func (it *Iter) First() bool {
	it.err = nil
	if len(it.r.data) == 0 {
		it.setInvalid()
		return false
	}
	return it.decodeAt(0, 0)
}

// Next advances to the next entry.
func (it *Iter) Next() bool {
	if !it.Valid() {
		return false
	}
	if it.next >= len(it.r.data) {
		it.setInvalid()
		return false
	}
	return it.decodeAt(it.next, len(it.key))
}

// Seek positions the iterator at the first entry with internal key >= target.
func (it *Iter) Seek(target keys.InternalKey) bool {
	it.err = nil
	r := it.r
	// Binary search restarts for the last restart whose key < target.
	// Probe keys alias the block data (restart entries have no shared
	// prefix), so the search allocates nothing.
	lo, hi := 0, r.numRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		key, err := r.restartKey(mid)
		if err != nil {
			it.err = err
			it.setInvalid()
			return false
		}
		if keys.Compare(key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Linear scan forward from the chosen restart.
	if !it.decodeAt(r.restart(lo), 0) {
		return false
	}
	for keys.Compare(it.key, target) < 0 {
		if !it.Next() {
			return false
		}
	}
	return true
}
