// Package block implements the SSTable block format: prefix-compressed
// key/value entries with restart points for binary search, as in LevelDB.
//
// Entry encoding (all varints):
//
//	shared | unshared | valueLen | padLen | key[shared:] | value | pad
//
// The padLen field is this implementation's one extension: profiles that
// model a less space-efficient on-disk format (the paper measures LevelDB
// at 223 bytes vs RocksDB at 141 bytes per 100-byte record) pad each entry
// by a fixed amount. Readers skip the pad; values are never altered.
//
// The block ends with a restart array: one uint32 offset per restart point
// followed by the restart count.
package block

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// DefaultRestartInterval is the number of entries between restart points.
const DefaultRestartInterval = 16

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("block: corrupt")

// Builder assembles a block. The zero value is not usable; use NewBuilder.
type Builder struct {
	restartInterval int
	padding         int

	buf        []byte
	restarts   []uint32
	numEntries int
	counter    int // entries since the last restart
	lastKey    []byte
}

// NewBuilder returns a block builder. restartInterval <= 0 selects the
// default; padding is the per-entry dead-byte count (format-efficiency
// model, normally 0).
func NewBuilder(restartInterval, padding int) *Builder {
	if restartInterval <= 0 {
		restartInterval = DefaultRestartInterval
	}
	return &Builder{
		restartInterval: restartInterval,
		padding:         padding,
		restarts:        []uint32{0},
	}
}

// Add appends an entry. Keys must be added in strictly increasing internal
// key order; this is the caller's responsibility.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = binary.AppendUvarint(b.buf, uint64(b.padding))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	for i := 0; i < b.padding; i++ {
		b.buf = append(b.buf, 0)
	}
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.numEntries++
}

// EstimatedSize returns the current encoded size if Finish were called now.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Empty reports whether no entries have been added.
func (b *Builder) Empty() bool { return b.numEntries == 0 }

// NumEntries returns the number of entries added.
func (b *Builder) NumEntries() int { return b.numEntries }

// Finish appends the restart array and returns the complete block. The
// builder must be Reset before reuse.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Reset prepares the builder for a new block.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.numEntries = 0
	b.counter = 0
	b.lastKey = b.lastKey[:0]
}

// Reader provides access to a finished block.
type Reader struct {
	data        []byte // entry region only
	restarts    []uint32
	numRestarts int
}

// NewReader parses the framing of a finished block.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	restartsOff := len(data) - 4 - 4*n
	if n <= 0 || restartsOff < 0 {
		return nil, fmt.Errorf("%w: bad restart count %d", ErrCorrupt, n)
	}
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = binary.LittleEndian.Uint32(data[restartsOff+4*i:])
		if int(restarts[i]) > restartsOff {
			return nil, fmt.Errorf("%w: restart %d out of range", ErrCorrupt, i)
		}
	}
	return &Reader{data: data[:restartsOff], restarts: restarts, numRestarts: n}, nil
}

// decodeEntry parses the entry at off. prevKey is the fully reconstructed
// key of the previous entry (used for the shared prefix); the returned key
// may alias prevKey's backing array.
func (r *Reader) decodeEntry(off int, prevKey []byte) (key, value []byte, next int, err error) {
	data := r.data
	if off >= len(data) {
		return nil, nil, 0, fmt.Errorf("%w: entry offset %d out of range", ErrCorrupt, off)
	}
	p := off
	shared, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad shared varint at %d", ErrCorrupt, p)
	}
	p += n
	unshared, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad unshared varint at %d", ErrCorrupt, p)
	}
	p += n
	valueLen, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad value len at %d", ErrCorrupt, p)
	}
	p += n
	padLen, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad pad len at %d", ErrCorrupt, p)
	}
	p += n
	if int(shared) > len(prevKey) {
		return nil, nil, 0, fmt.Errorf("%w: shared %d exceeds previous key %d", ErrCorrupt, shared, len(prevKey))
	}
	end := p + int(unshared) + int(valueLen) + int(padLen)
	if end > len(data) {
		return nil, nil, 0, fmt.Errorf("%w: entry at %d overruns block", ErrCorrupt, off)
	}
	key = append(prevKey[:shared:shared], data[p:p+int(unshared)]...)
	if len(key) < keys.TrailerLen {
		// An internal key must carry its 8-byte trailer; anything shorter
		// is corruption and would crash the comparator.
		return nil, nil, 0, fmt.Errorf("%w: entry key at %d shorter than trailer", ErrCorrupt, off)
	}
	value = data[p+int(unshared) : p+int(unshared)+int(valueLen)]
	return key, value, end, nil
}

// Iter returns an iterator positioned before the first entry.
func (r *Reader) Iter() *Iter {
	return &Iter{r: r, offset: -1}
}

// Iter iterates a block's entries in key order. Typical use:
//
//	for it.First(); it.Valid(); it.Next() { ... }
//	if err := it.Err(); err != nil { ... }
type Iter struct {
	r      *Reader
	offset int // -1 before first / after exhaustion
	next   int
	key    []byte
	value  []byte
	err    error
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.offset >= 0 && it.err == nil }

// Err returns the first corruption error encountered, if any.
func (it *Iter) Err() error { return it.err }

// Key returns the current internal key. Valid until the next move.
func (it *Iter) Key() keys.InternalKey { return it.key }

// Value returns the current value. Valid until the next move.
func (it *Iter) Value() []byte { return it.value }

func (it *Iter) setInvalid() {
	it.offset = -1
	it.key = nil
	it.value = nil
}

func (it *Iter) decodeAt(off int, prevKey []byte) bool {
	key, value, next, err := it.r.decodeEntry(off, prevKey)
	if err != nil {
		it.err = err
		it.setInvalid()
		return false
	}
	it.offset = off
	it.next = next
	it.key = key
	it.value = value
	return true
}

// First positions the iterator at the first entry.
func (it *Iter) First() bool {
	it.err = nil
	if len(it.r.data) == 0 {
		it.setInvalid()
		return false
	}
	return it.decodeAt(0, nil)
}

// Next advances to the next entry.
func (it *Iter) Next() bool {
	if !it.Valid() {
		return false
	}
	if it.next >= len(it.r.data) {
		it.setInvalid()
		return false
	}
	return it.decodeAt(it.next, it.key)
}

// Seek positions the iterator at the first entry with internal key >= target.
func (it *Iter) Seek(target keys.InternalKey) bool {
	it.err = nil
	r := it.r
	// Binary search restarts for the last restart whose key < target.
	lo, hi := 0, r.numRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		key, _, _, err := r.decodeEntry(int(r.restarts[mid]), nil)
		if err != nil {
			it.err = err
			it.setInvalid()
			return false
		}
		if keys.Compare(key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Linear scan forward from the chosen restart.
	if !it.decodeAt(int(r.restarts[lo]), nil) {
		return false
	}
	for keys.Compare(it.key, target) < 0 {
		if !it.Next() {
			return false
		}
	}
	return true
}
