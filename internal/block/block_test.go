package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
)

func ik(u string, seq uint64) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), keys.Seq(seq), keys.KindSet)
}

func buildBlock(t testing.TB, pairs [][2]string, restartInterval, padding int) *Reader {
	t.Helper()
	b := NewBuilder(restartInterval, padding)
	for _, p := range pairs {
		b.Add(ik(p[0], 1), []byte(p[1]))
	}
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sortedPairs(n int) [][2]string {
	pairs := make([][2]string, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]string{fmt.Sprintf("key%06d", i), fmt.Sprintf("value-%d", i)}
	}
	return pairs
}

func TestRoundTrip(t *testing.T) {
	for _, pad := range []int{0, 7} {
		for _, ri := range []int{1, 2, 16} {
			t.Run(fmt.Sprintf("ri=%d/pad=%d", ri, pad), func(t *testing.T) {
				pairs := sortedPairs(100)
				r := buildBlock(t, pairs, ri, pad)
				it := r.Iter()
				i := 0
				for ok := it.First(); ok; ok = it.Next() {
					if string(it.Key().UserKey()) != pairs[i][0] {
						t.Fatalf("entry %d key = %q, want %q", i, it.Key().UserKey(), pairs[i][0])
					}
					if string(it.Value()) != pairs[i][1] {
						t.Fatalf("entry %d value = %q, want %q", i, it.Value(), pairs[i][1])
					}
					i++
				}
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				if i != len(pairs) {
					t.Fatalf("iterated %d entries, want %d", i, len(pairs))
				}
			})
		}
	}
}

func TestSeek(t *testing.T) {
	pairs := sortedPairs(200)
	r := buildBlock(t, pairs, 8, 0)
	it := r.Iter()

	// Exact seek to every key.
	for i, p := range pairs {
		if !it.Seek(ik(p[0], 1)) {
			t.Fatalf("Seek(%q) failed", p[0])
		}
		if string(it.Key().UserKey()) != p[0] {
			t.Fatalf("Seek(%q) landed on %q (i=%d)", p[0], it.Key().UserKey(), i)
		}
	}
	// Seek between keys lands on the next one.
	if !it.Seek(ik("key000010x", 1)) || string(it.Key().UserKey()) != "key000011" {
		t.Fatalf("between-seek landed on %q", it.Key().UserKey())
	}
	// Seek before the first key lands on the first.
	if !it.Seek(ik("a", 1)) || string(it.Key().UserKey()) != "key000000" {
		t.Fatalf("before-seek landed on %q", it.Key().UserKey())
	}
	// Seek past the end invalidates.
	if it.Seek(ik("z", 1)) {
		t.Fatalf("past-end seek should invalidate, got %q", it.Key().UserKey())
	}
}

func TestSeekHonorsSequenceOrdering(t *testing.T) {
	// Two versions of the same user key: newer (higher seq) sorts first.
	b := NewBuilder(16, 0)
	b.Add(ik("k", 9), []byte("new"))
	b.Add(ik("k", 3), []byte("old"))
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	// Seeking at seq 100 (greater than both) must land on the newest entry.
	if !it.Seek(keys.MakeInternalKey(nil, []byte("k"), 100, keys.KindSeekMax)) {
		t.Fatal("seek failed")
	}
	if string(it.Value()) != "new" {
		t.Fatalf("seek landed on %q", it.Value())
	}
	// Seeking at seq 5 must skip the seq-9 entry.
	if !it.Seek(keys.MakeInternalKey(nil, []byte("k"), 5, keys.KindSeekMax)) {
		t.Fatal("seek failed")
	}
	if string(it.Value()) != "old" {
		t.Fatalf("snapshot seek landed on %q", it.Value())
	}
}

func TestEmptyBlock(t *testing.T) {
	b := NewBuilder(16, 0)
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	if it.First() {
		t.Error("empty block First should be invalid")
	}
	if it.Seek(ik("x", 1)) {
		t.Error("empty block Seek should be invalid")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(4, 0)
	b.Add(ik("a", 1), []byte("1"))
	b.Finish()
	b.Reset()
	if !b.Empty() {
		t.Fatal("builder not empty after Reset")
	}
	b.Add(ik("b", 1), []byte("2"))
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	if !it.First() || string(it.Key().UserKey()) != "b" {
		t.Fatal("reused builder produced wrong block")
	}
	if it.Next() {
		t.Fatal("reused builder leaked old entries")
	}
}

func TestCorruptBlockRejected(t *testing.T) {
	if _, err := NewReader(nil); err == nil {
		t.Error("nil block accepted")
	}
	if _, err := NewReader([]byte{1, 2, 3}); err == nil {
		t.Error("short block accepted")
	}
	// A block whose restart count points outside the data.
	bad := []byte{0, 0, 0, 0, 0xff, 0xff, 0, 0}
	if _, err := NewReader(bad); err == nil {
		t.Error("bad restart count accepted")
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	b := NewBuilder(16, 0)
	prev := b.EstimatedSize()
	for i := 0; i < 50; i++ {
		b.Add(ik(fmt.Sprintf("key%04d", i), 1), bytes.Repeat([]byte("v"), 20))
		if sz := b.EstimatedSize(); sz <= prev {
			t.Fatalf("estimated size did not grow at entry %d", i)
		} else {
			prev = sz
		}
	}
	if got := len(b.Finish()); got != prev {
		t.Fatalf("Finish len %d != final estimate %d", got, prev)
	}
}

func TestPaddingIncreasesSizeOnly(t *testing.T) {
	pairs := sortedPairs(64)
	plain := NewBuilder(16, 0)
	padded := NewBuilder(16, 50)
	for _, p := range pairs {
		plain.Add(ik(p[0], 1), []byte(p[1]))
		padded.Add(ik(p[0], 1), []byte(p[1]))
	}
	pb, qb := plain.Finish(), padded.Finish()
	if len(qb) < len(pb)+64*50 {
		t.Fatalf("padding not applied: %d vs %d", len(qb), len(pb))
	}
	r, err := NewReader(qb)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Value()) != pairs[n][1] {
			t.Fatalf("padded value %d = %q", n, it.Value())
		}
		n++
	}
	if n != len(pairs) || it.Err() != nil {
		t.Fatalf("padded block iteration: n=%d err=%v", n, it.Err())
	}
}

// Property: building a block from any sorted unique key set and reading it
// back yields the same pairs, for random restart intervals.
func TestRoundTripProperty(t *testing.T) {
	f := func(rawKeys [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		uniq := map[string][]byte{}
		for _, k := range rawKeys {
			v := make([]byte, rng.Intn(64))
			rng.Read(v)
			uniq[string(k)] = v
		}
		var sorted []string
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)

		b := NewBuilder(1+rng.Intn(20), rng.Intn(4))
		for _, k := range sorted {
			b.Add(ik(k, 7), uniq[k])
		}
		r, err := NewReader(b.Finish())
		if err != nil {
			return false
		}
		it := r.Iter()
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key().UserKey()) != sorted[i] || !bytes.Equal(it.Value(), uniq[sorted[i]]) {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlockSeek(b *testing.B) {
	pairs := sortedPairs(256)
	r := buildBlock(b, pairs, 16, 0)
	it := r.Iter()
	targets := make([]keys.InternalKey, len(pairs))
	for i, p := range pairs {
		targets[i] = ik(p[0], 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Seek(targets[i%len(targets)])
	}
}
