package block

import "testing"

// FuzzReaderIter feeds arbitrary bytes as a block image: parsing and
// iteration must never panic and always terminate.
func FuzzReaderIter(f *testing.F) {
	b := NewBuilder(4, 0)
	b.Add(ik("alpha", 1), []byte("1"))
	b.Add(ik("beta", 2), []byte("2"))
	f.Add(b.Finish())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		it := r.Iter()
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			if n++; n > 1<<20 {
				t.Fatal("runaway iteration")
			}
		}
		it.Seek(ik("probe", 7))
	})
}
