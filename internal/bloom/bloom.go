// Package bloom implements the Bloom filter used in SSTable filter blocks.
// The construction matches LevelDB's: k probes derived from a single 32-bit
// hash by double hashing with its 17-bit rotation (Kirsch–Mitzenmacher).
// The paper's setup uses 10 bits per key (~1% false-positive rate).
package bloom

import "encoding/binary"

// Filter is an encoded Bloom filter: the bit array followed by one byte
// holding the probe count.
type Filter []byte

// DefaultBitsPerKey is the paper's configuration (10 bits, ~1% FP).
const DefaultBitsPerKey = 10

// hash is LevelDB's bloom hash (a Murmur-flavoured hash with seed 0xbc9f1d34).
func hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for len(data) >= 4 {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// Build creates a filter over keys with the given bits per key.
func Build(userKeys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln(2), clamped as in LevelDB.
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(userKeys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	filter := make(Filter, nBytes+1)
	filter[nBytes] = byte(k)
	for _, key := range userKeys {
		h := hash(key)
		delta := h>>17 | h<<15
		for j := uint32(0); j < k; j++ {
			pos := h % uint32(bits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// MayContain reports whether key may be in the set the filter was built
// over. False negatives are impossible; false positives occur at roughly
// the configured rate.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	bits := uint32(len(f)-1) * 8
	k := uint32(f[len(f)-1])
	if k > 30 {
		// Reserved for future encodings; err on the side of a match.
		return true
	}
	h := hash(key)
	delta := h>>17 | h<<15
	for j := uint32(0); j < k; j++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
