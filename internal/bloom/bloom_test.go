package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		var keys [][]byte
		for i := 0; i < n; i++ {
			keys = append(keys, key(i))
		}
		f := Build(keys, DefaultBitsPerKey)
		for i := 0; i < n; i++ {
			if !f.MayContain(key(i)) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	var keys [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, key(i))
	}
	f := Build(keys, DefaultBitsPerKey)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(key(n + 1000000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key targets ~1%; allow generous slack.
	if rate > 0.025 {
		t.Errorf("false positive rate %.4f too high", rate)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := Build(nil, DefaultBitsPerKey)
	if f.MayContain([]byte("anything")) {
		t.Error("empty filter should reject (probabilistically certain with 64 zero bits)")
	}
	var nilFilter Filter
	if nilFilter.MayContain([]byte("x")) {
		t.Error("nil filter must reject")
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys [][]byte, probe []byte) bool {
		filter := Build(keys, DefaultBitsPerKey)
		for _, k := range keys {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVaryingBitsPerKey(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		keys = append(keys, key(i))
	}
	prev := 1.1
	for _, bpk := range []int{2, 5, 10, 15} {
		f := Build(keys, bpk)
		fp := 0
		for i := 0; i < 5000; i++ {
			if f.MayContain(key(1_000_000 + i)) {
				fp++
			}
		}
		rate := float64(fp) / 5000
		if rate > prev+0.01 {
			t.Errorf("FP rate should not grow with more bits: bpk=%d rate=%.4f prev=%.4f", bpk, rate, prev)
		}
		prev = rate
	}
}

func TestFilterSizeScalesWithKeys(t *testing.T) {
	small := Build([][]byte{key(1)}, 10)
	var keys [][]byte
	for i := 0; i < 1000; i++ {
		keys = append(keys, key(i))
	}
	large := Build(keys, 10)
	if len(large) <= len(small) {
		t.Errorf("1000-key filter (%d B) not larger than 1-key filter (%d B)", len(large), len(small))
	}
	// ~10 bits per key -> ~1250 bytes for 1000 keys.
	if len(large) < 1000 || len(large) > 2000 {
		t.Errorf("unexpected filter size %d for 1000 keys at 10 bpk", len(large))
	}
}

func BenchmarkBuild10k(b *testing.B) {
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("user%016d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(keys, DefaultBitsPerKey)
	}
}

func BenchmarkMayContain(b *testing.B) {
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, key(i))
	}
	f := Build(keys, DefaultBitsPerKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key(i % 20000))
	}
}
