package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// AtomicField extends vet's copylocks to BoLT's metrics and state structs.
// Fields whose type comes from sync/atomic (atomic.Int64, atomic.Uint64,
// atomic.Value, ...) and plain fields annotated `// guarded-by: atomic`
// must never be:
//
//   - read or written plainly (atomic fields expose only their
//     Load/Store/Add/... methods; annotated fields may only be used as
//     &x.f operands for the sync/atomic functions),
//   - passed or assigned by value, or
//   - copied via their enclosing struct (assignment, value parameter,
//     value receiver, value return type, range value, composite-literal
//     element).
//
// Composite literals themselves are exempt: constructing a fresh value
// (`m := Metrics{}`) is initialization, not a copy of live state. vet's
// copylocks does not catch any of this because sync/atomic types have no
// Lock method.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "forbids plain access to sync/atomic (or guarded-by: atomic) fields and copies of structs containing them",
	Run:  runAtomicField,
}

// guardedByAtomicRe marks a plain-typed field that must only be accessed
// through the sync/atomic functions.
var guardedByAtomicRe = regexp.MustCompile(`(?i)\bguarded-by:\s*atomic\b`)

func runAtomicField(p *Package) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "atomicfield",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	annotated := collectGuardedByAtomic(p)

	for _, file := range p.Files {
		parents := buildParentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				checkFieldAccess(p, v, parents, annotated, report)
			case *ast.AssignStmt:
				for _, r := range v.Rhs {
					checkValueCopy(p, r, annotated, report, "assigned")
				}
			case *ast.ValueSpec:
				for _, val := range v.Values {
					checkValueCopy(p, val, annotated, report, "assigned")
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[v.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				if isLenCap(p, v) {
					return true
				}
				for _, arg := range v.Args {
					checkValueCopy(p, arg, annotated, report, "passed")
				}
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					checkValueCopy(p, elt, annotated, report, "copied into a composite literal:")
				}
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					checkValueCopy(p, r, annotated, report, "returned")
				}
			case *ast.RangeStmt:
				if v.Value != nil {
					// With :=, the value ident is a definition, not a use;
					// its type lives in Defs rather than Types.
					t := typeOf(p, v.Value)
					if t == nil {
						if id, ok := v.Value.(*ast.Ident); ok {
							if obj := p.Info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
					}
					if t != nil && atomicBearing(t, annotated) {
						report(v.Value.Pos(), "range copies values of %s, which contains sync/atomic fields; range over indices or pointers", typeLabel(t))
					}
				}
			case *ast.FuncDecl:
				checkSignature(p, v, annotated, report)
			}
			return true
		})
	}
	return out
}

// checkFieldAccess enforces the plain-access rule on one selector.
func checkFieldAccess(p *Package, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node, annotated map[string]map[string]bool, report func(token.Pos, string, ...any)) {
	fieldVar := selectedField(p, sel)
	if fieldVar == nil {
		return
	}
	parent := parents[sel]
	if pp, ok := parent.(*ast.ParenExpr); ok {
		parent = parents[pp]
	}
	if isAtomicNamed(fieldVar.Type()) {
		switch ctx := parent.(type) {
		case *ast.SelectorExpr:
			if ctx.X == sel {
				return // x.f.Load() — method access is the atomic API
			}
		case *ast.UnaryExpr:
			if ctx.Op == token.AND {
				return // &x.f — pointer passing, no copy
			}
		}
		report(sel.Sel.Pos(), "plain access to atomic field %s.%s (type %s); use its Load/Store/Add methods",
			ownerName(fieldVar), fieldVar.Name(), typeLabel(fieldVar.Type()))
		return
	}
	if isAnnotatedField(p, sel, fieldVar, annotated) {
		if ctx, ok := parent.(*ast.UnaryExpr); ok && ctx.Op == token.AND {
			return // &x.f for atomic.LoadInt64/AddInt64/...
		}
		report(sel.Sel.Pos(), "field %s.%s is declared guarded-by: atomic; access it only through sync/atomic functions on &%s",
			ownerName(fieldVar), fieldVar.Name(), fieldVar.Name())
	}
}

// checkValueCopy flags e when its value is an atomic-bearing struct/array
// being copied (anything but constructing a fresh composite literal).
func checkValueCopy(p *Package, e ast.Expr, annotated map[string]map[string]bool, report func(token.Pos, string, ...any), verb string) {
	e = ast.Unparen(e)
	if _, isLit := e.(*ast.CompositeLit); isLit {
		return
	}
	t := typeOf(p, e)
	if t == nil || !atomicBearing(t, annotated) {
		return
	}
	report(e.Pos(), "value of %s is %s by value, copying its sync/atomic fields; use a pointer", typeLabel(t), verb)
}

// checkSignature flags value receivers, parameters, and results of
// atomic-bearing type on a function declaration.
func checkSignature(p *Package, fd *ast.FuncDecl, annotated map[string]map[string]bool, report func(token.Pos, string, ...any)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := p.Info.Types[f.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if atomicBearing(tv.Type, annotated) {
				report(f.Type.Pos(), "%s %s of %s takes %s by value, copying its sync/atomic fields; use a pointer",
					what, typeLabel(tv.Type), fd.Name.Name, typeLabel(tv.Type))
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type.Params != nil {
		check(fd.Type.Params, "parameter")
	}
	if fd.Type.Results != nil {
		check(fd.Type.Results, "result")
	}
}

// collectGuardedByAtomic gathers `// guarded-by: atomic` annotated fields:
// "pkgpath.StructName" -> field name set.
func collectGuardedByAtomic(p *Package) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	path := ""
	if p.Types != nil {
		path = p.Types.Path()
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !guardedByAtomicRe.MatchString(fieldCommentText(field)) {
					continue
				}
				key := path + "." + ts.Name.Name
				if out[key] == nil {
					out[key] = make(map[string]bool)
				}
				for _, name := range field.Names {
					out[key][name.Name] = true
				}
			}
			return true
		})
	}
	return out
}

// isAnnotatedField reports whether sel resolves to a guarded-by: atomic
// field of a struct declared in this package.
func isAnnotatedField(p *Package, sel *ast.SelectorExpr, fieldVar *types.Var, annotated map[string]map[string]bool) bool {
	named := namedOf(typeOf(p, sel.X))
	if named == nil {
		return false
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	fields := annotated[pkg+"."+named.Obj().Name()]
	return fields != nil && fields[fieldVar.Name()]
}

// selectedField resolves sel to the struct field it selects, or nil when
// it is not a field selection.
func selectedField(p *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified references (pkg.Var) land in Uses, not Selections; those
	// are package variables, not fields.
	return nil
}

// ownerName renders the declaring struct of a field for diagnostics.
func ownerName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name()
	}
	return "?"
}

// typeOf returns the checked type of e, or nil.
func typeOf(p *Package, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// typeLabel renders t compactly for diagnostics (package-name qualified).
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(pkg *types.Package) string { return pkg.Name() })
}

// isAtomicNamed reports whether t is a named type from sync/atomic
// (without unwrapping pointers: *atomic.Int64 is a pointer, which is fine
// to hold and pass).
func isAtomicNamed(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicBearing reports whether t is a non-pointer struct/array that
// (recursively) contains a sync/atomic field or a guarded-by: atomic
// annotated field of this package.
func atomicBearing(t types.Type, annotated map[string]map[string]bool) bool {
	return bearingRec(t, annotated, make(map[types.Type]bool))
}

func bearingRec(t types.Type, annotated map[string]map[string]bool, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Named:
		if isAtomicNamed(v) {
			return true
		}
		if len(annotated) > 0 {
			pkg := ""
			if v.Obj().Pkg() != nil {
				pkg = v.Obj().Pkg().Path()
			}
			if annotated[pkg+"."+v.Obj().Name()] != nil {
				return true
			}
		}
		return bearingRec(v.Underlying(), annotated, seen)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if bearingRec(v.Field(i).Type(), annotated, seen) {
				return true
			}
		}
	case *types.Array:
		return bearingRec(v.Elem(), annotated, seen)
	}
	return false
}

// isLenCap reports whether call is the len or cap builtin (no copy).
func isLenCap(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "len" || id.Name == "cap"
}
