package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
)

// applyMethods commit a MANIFEST edit — the second barrier of the
// two-barrier protocol. Once one of these succeeds, every file the edit
// adds is validated and must already be durable.
var applyMethods = map[string]bool{
	"LogAndApply":       true,
	"logAndApplyLocked": true,
	"CommitPrepared":    true,
}

// syncProviders are calls that pay (or transitively pay) the first
// barrier: a data-file fsync covering the tables an edit is about to
// validate.
var syncProviders = map[string]bool{
	"Sync":                  true, // direct file barrier
	"writeTables":           true, // flush path: syncs each output in finish
	"writeCompactionTables": true, // compaction path: same, via tableOutput
	"finish":                true, // tableOutput.finish: the BoLT single barrier
	"cutTable":              true, // legacy per-table barrier
}

// editAddMethods record a file into a version edit.
var editAddMethods = map[string]bool{
	"AddFile": true,
}

// BarrierOrder enforces the paper's two-barrier contract lexically: any
// function that both builds a version edit with AddFile and commits it
// via LogAndApply/logAndApplyLocked/CommitPrepared must have a
// sync-providing call (Sync, writeTables, writeCompactionTables, finish)
// before the commit. Methods on VersionSet itself are exempt — they are
// the barrier implementation, not its users — as are test files, which
// fabricate edits for metas that have no backing data. The check is
// lexical, not path-sensitive: a sync in an untaken branch satisfies it,
// so it is a reviewer aid plus a tripwire, with the runtime
// boltinvariants build tag as the sound twin.
var BarrierOrder = &Analyzer{
	Name: "barrierorder",
	Doc:  "flags MANIFEST commits reachable without a preceding data-file sync",
	Run:  runBarrierOrder,
}

func runBarrierOrder(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if receiverTypeName(fd) == "VersionSet" {
				continue
			}
			var addsFile bool
			var applies []*ast.CallExpr
			var syncEnds []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				switch {
				case editAddMethods[name]:
					addsFile = true
				case applyMethods[name]:
					applies = append(applies, call)
				case syncProviders[name]:
					syncEnds = append(syncEnds, call.End())
				}
				return true
			})
			if !addsFile {
				continue
			}
			for _, apply := range applies {
				covered := false
				for _, end := range syncEnds {
					if end < apply.Pos() {
						covered = true
						break
					}
				}
				if !covered {
					out = append(out, Finding{
						Pos:      p.Fset.Position(apply.Pos()),
						Analyzer: "barrierorder",
						Message: fmt.Sprintf("%s commits a version edit that adds files, but no data-file sync (Sync/writeTables/writeCompactionTables/finish) precedes it in %s; the MANIFEST barrier must follow the data barrier",
							exprString(apply.Fun), fd.Name.Name),
					})
				}
			}
		}
	}
	return out
}
