// Package boltvet implements BoLT-specific static analysis. The engine's
// crash consistency rests on invariants that ordinary Go tooling cannot
// see: durability-barrier errors must never be dropped (syncerr), the
// MANIFEST commit record must not validate data that has not been synced
// (barrierorder), and mutex-guarded state must only be touched under its
// mutex or from methods following the *Locked naming convention
// (lockcheck). cmd/bolt-vet runs every analyzer over the module; the
// analyzers themselves are tested against testdata fixtures with
// `// want "regexp"` expectations.
//
// Findings can be suppressed with a comment on the same line or the line
// above:
//
//	//boltvet:ignore syncerr -- reason
//	//boltvet:ignore all -- reason
//
// or for a whole function by placing the comment in the function's doc
// comment, or for a region (generated or test-harness code) by bracketing
// it:
//
//	//boltvet:ignore-begin syncerr -- reason
//	...
//	//boltvet:ignore-end
//
// The reason is mandatory: a suppression without ` -- <why>` suppresses
// nothing and is itself reported by the summary analyzer — the
// suppression is greppable review surface and must say what was reviewed.
// Unbalanced begin/end pairs likewise suppress nothing and are reported.
package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds soft type-checking errors; analysis proceeds with
	// partial type information.
	TypeErrors []error
}

// Analyzer is one named check. Run sees one package at a time; RunProgram
// sees the whole-program call graph with computed summaries. An analyzer
// sets either or both (lockcheck pairs a lexical Run with an
// interprocedural RunProgram).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Finding
	RunProgram func(prog *Program) []Finding
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{SyncErr, BarrierOrder, LockCheck, LockOrder, ErrFlow, AtomicField, GuardedBy, MustClose, GoLifetime, CondCheck, SummaryCheck}
}

// AnalyzerTiming is one row of the -timing report: how long an analyzer
// took and how many findings survived suppression and deduplication. The
// synthetic "(program)" row accounts for the shared call-graph build and
// summary fixed point that every interprocedural analyzer amortizes.
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
	Findings int
}

// RunAll applies every analyzer to every package, dropping suppressed
// findings and sorting the rest by position. When any enabled analyzer is
// interprocedural, the call graph and function summaries are built once
// over all packages.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunAllTimed(pkgs, analyzers)
	return findings
}

// RunAllTimed is RunAll plus per-analyzer wall time, in run order.
func RunAllTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming) {
	sup := newSuppressions(pkgs)
	var out []Finding
	keep := func(f Finding) {
		if !sup.suppressed(f) {
			out = append(out, f)
		}
	}
	var timings []AnalyzerTiming
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil || prog != nil {
			continue
		}
		start := time.Now()
		prog = BuildProgram(pkgs)
		ComputeSummaries(prog)
		timings = append(timings, AnalyzerTiming{Name: "(program)", Duration: time.Since(start)})
	}
	for _, a := range analyzers {
		start := time.Now()
		if a.Run != nil {
			for _, p := range pkgs {
				for _, f := range a.Run(p) {
					keep(f)
				}
			}
		}
		if a.RunProgram != nil {
			for _, f := range a.RunProgram(prog) {
				keep(f)
			}
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name, Duration: time.Since(start)})
	}
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, f := range out {
		if s := f.String(); !seen[s] {
			seen[s] = true
			dedup = append(dedup, f)
		}
	}
	out = dedup
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	counts := make(map[string]int, len(timings))
	for _, f := range out {
		counts[f.Analyzer]++
	}
	for i := range timings {
		timings[i].Findings = counts[timings[i].Name]
	}
	return out, timings
}

// ignoreRe matches a boltvet:ignore directive, capturing the analyzer name
// list and the (mandatory for suppression) ` -- reason` tail. Anchored at
// the start of the comment so prose that merely mentions the directive
// syntax does not parse as one.
var ignoreRe = regexp.MustCompile(`^//\s*boltvet:ignore\s+([A-Za-z][A-Za-z, ]*?)\s*(?:--\s*(\S.*))?$`)

// ignoreBeginRe and ignoreEndRe bracket a block suppression. The begin
// carries the analyzer list and mandatory reason; the end is bare.
var (
	ignoreBeginRe = regexp.MustCompile(`^//\s*boltvet:ignore-begin\s+([A-Za-z][A-Za-z, ]*?)\s*(?:--\s*(\S.*))?$`)
	ignoreEndRe   = regexp.MustCompile(`^//\s*boltvet:ignore-end\s*$`)
)

// parseIgnoreBlockDirective decodes a begin/end marker: kind is "begin",
// "end", or "" for non-markers. A reasonless begin parses (so hygiene can
// report it) but suppresses nothing.
func parseIgnoreBlockDirective(text string) (kind string, names []string, reason string) {
	if ignoreEndRe.MatchString(text) {
		return "end", nil, ""
	}
	m := ignoreBeginRe.FindStringSubmatch(text)
	if m == nil {
		return "", nil, ""
	}
	for _, n := range strings.Split(m[1], ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			names = append(names, n)
		}
	}
	return "begin", names, strings.TrimSpace(m[2])
}

// ignoreBlockProblem is one hygiene defect in a file's begin/end pairs,
// reported by the summary analyzer.
type ignoreBlockProblem struct {
	pos  token.Pos
	kind string // "reasonless", "unterminated", "orphan-end"
}

// collectIgnoreBlocks pairs a file's begin/end markers into suppression
// spans (well-formed, reasoned pairs only) and reports the rest.
func collectIgnoreBlocks(p *Package, f *ast.File) (spans []supSpan, problems []ignoreBlockProblem) {
	type open struct {
		line     int
		names    map[string]bool // nil when reasonless
		pos      token.Pos
		file     string
		reasoned bool
	}
	var stack []open
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			kind, list, reason := parseIgnoreBlockDirective(c.Text)
			switch kind {
			case "begin":
				pos := p.Fset.Position(c.Pos())
				o := open{line: pos.Line, pos: c.Pos(), file: pos.Filename, reasoned: reason != ""}
				if !o.reasoned {
					problems = append(problems, ignoreBlockProblem{pos: c.Pos(), kind: "reasonless"})
				} else if len(list) > 0 {
					o.names = make(map[string]bool, len(list))
					for _, n := range list {
						o.names[n] = true
					}
				}
				stack = append(stack, o)
			case "end":
				if len(stack) == 0 {
					problems = append(problems, ignoreBlockProblem{pos: c.Pos(), kind: "orphan-end"})
					continue
				}
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if o.names != nil {
					spans = append(spans, supSpan{file: o.file, start: o.line, end: p.Fset.Position(c.Pos()).Line, names: o.names})
				}
			}
		}
	}
	for _, o := range stack {
		problems = append(problems, ignoreBlockProblem{pos: o.pos, kind: "unterminated"})
	}
	return spans, problems
}

// suppressions indexes //boltvet:ignore comments by file line and by
// function extent.
type suppressions struct {
	fset *token.FileSet
	// lines maps filename -> line -> set of suppressed analyzer names
	// ("all" suppresses everything).
	lines map[string]map[int]map[string]bool
	// spans suppress an analyzer over a position range (function bodies
	// whose doc comment carries the ignore).
	spans []supSpan
}

type supSpan struct {
	file       string
	start, end int // lines, inclusive
	names      map[string]bool
}

// parseIgnoreDirective decodes a boltvet:ignore comment. ok is false when
// the comment is not a directive at all; a directive without a reason
// returns ok with an empty reason (reported by the summary analyzer, and
// suppressing nothing).
func parseIgnoreDirective(text string) (names []string, reason string, ok bool) {
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	for _, n := range strings.Split(m[1], ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(m[2]), true
}

// parseIgnoreNames returns the analyzer set a comment suppresses: only
// reasoned directives suppress.
func parseIgnoreNames(text string) map[string]bool {
	list, reason, ok := parseIgnoreDirective(text)
	if !ok || reason == "" || len(list) == 0 {
		return nil
	}
	names := make(map[string]bool, len(list))
	for _, n := range list {
		names[n] = true
	}
	return names
}

func newSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{lines: make(map[string]map[int]map[string]bool)}
	for _, p := range pkgs {
		s.fset = p.Fset
		for _, f := range p.Files {
			blockSpans, _ := collectIgnoreBlocks(p, f)
			s.spans = append(s.spans, blockSpans...)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names := parseIgnoreNames(c.Text)
					if names == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := s.lines[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						s.lines[pos.Filename] = byLine
					}
					if byLine[pos.Line] == nil {
						byLine[pos.Line] = make(map[string]bool)
					}
					for n := range names {
						byLine[pos.Line][n] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				var names map[string]bool
				for _, c := range fd.Doc.List {
					if n := parseIgnoreNames(c.Text); n != nil {
						if names == nil {
							names = make(map[string]bool)
						}
						for k := range n {
							names[k] = true
						}
					}
				}
				if names != nil {
					start := p.Fset.Position(fd.Pos())
					end := p.Fset.Position(fd.End())
					s.spans = append(s.spans, supSpan{file: start.Filename, start: start.Line, end: end.Line, names: names})
				}
			}
		}
	}
	return s
}

func matchNames(names map[string]bool, analyzer string) bool {
	return names != nil && (names["all"] || names[analyzer])
}

func (s *suppressions) suppressed(f Finding) bool {
	if byLine := s.lines[f.Pos.Filename]; byLine != nil {
		if matchNames(byLine[f.Pos.Line], f.Analyzer) || matchNames(byLine[f.Pos.Line-1], f.Analyzer) {
			return true
		}
	}
	for _, sp := range s.spans {
		if sp.file == f.Pos.Filename && f.Pos.Line >= sp.start && f.Pos.Line <= sp.end && matchNames(sp.names, f.Analyzer) {
			return true
		}
	}
	return false
}

// --- shared type helpers ---

var errorType = types.Universe.Lookup("error").Type()

// callResultHasError reports whether the call expression's result includes
// an error value, using type information when available. Without type info
// it conservatively returns false (no finding rather than a false one).
func callResultHasError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return tv.Type != nil && types.Identical(tv.Type, errorType)
	}
}

// errorResultIndices returns the result positions of call holding an error.
func errorResultIndices(p *Package, call *ast.CallExpr) []int {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				out = append(out, i)
			}
		}
		return out
	}
	if types.Identical(tv.Type, errorType) {
		return []int{0}
	}
	return nil
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// exprString renders a call target for diagnostics (e.g. "f.Sync").
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "expr"
}

// isTestFile reports whether the file is a *_test.go file.
func isTestFile(p *Package, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// receiverTypeName returns the receiver's named type for a method decl
// ("" for plain functions), stripping any pointer.
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver lru[K, V]
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
