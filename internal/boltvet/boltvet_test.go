package boltvet

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixtures under testdata/src declare expected findings with trailing
// comments of the form:
//
//	// want `regexp`
//
// Every finding must match exactly one want on its line, and every want
// must be matched by a finding — the same convention (minus the
// go/analysis dependency) as analysistest.

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantSegRe = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			segs := wantSegRe.FindAllStringSubmatch(after, -1)
			if len(segs) == 0 {
				t.Fatalf("%s:%d: malformed want comment (need backquoted regexp)", e.Name(), i+1)
			}
			for _, seg := range segs {
				re, err := regexp.Compile(seg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, seg[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", dir)
	}
	return wants
}

func runFixture(t *testing.T, fixture string, analyzer *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", dir)
	}
	findings := RunAll(pkgs, []*Analyzer{analyzer})
	wants := collectWants(t, dir)

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched `%s`", w.file, w.line, w.re)
		}
	}
}

func TestSyncErrFixture(t *testing.T)      { runFixture(t, "syncerr", SyncErr) }
func TestBarrierOrderFixture(t *testing.T) { runFixture(t, "barrierorder", BarrierOrder) }
func TestLockCheckFixture(t *testing.T)    { runFixture(t, "lockcheck", LockCheck) }
func TestLockOrderFixture(t *testing.T)    { runFixture(t, "lockorder", LockOrder) }
func TestErrFlowFixture(t *testing.T)      { runFixture(t, "errflow", ErrFlow) }
func TestAtomicFieldFixture(t *testing.T)  { runFixture(t, "atomicfield", AtomicField) }
func TestGuardedByFixture(t *testing.T)    { runFixture(t, "guardedby", GuardedBy) }
func TestMustCloseFixture(t *testing.T)    { runFixture(t, "mustclose", MustClose) }
func TestGoLifetimeFixture(t *testing.T)   { runFixture(t, "golifetime", GoLifetime) }
func TestCondCheckFixture(t *testing.T)    { runFixture(t, "condcheck", CondCheck) }

// TestSummaryCheckFixture asserts directly instead of via // want comments:
// a directive is the entire line comment (the regexp is $-anchored so prose
// cannot parse as one), which leaves no room for a trailing want on the
// same line.
func TestSummaryCheckFixture(t *testing.T) {
	dir := filepath.Join("testdata", "src", "summarycheck")
	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	findings := RunAll(pkgs, []*Analyzer{SummaryCheck})
	wantParts := []string{
		"boltvet:ignore without a reason",
		`unknown analyzer "snycerr"`,
		"boltvet:ignore-begin without a reason",
		`ignore-begin names unknown analyzer "snycerr"`,
		"boltvet:ignore-end has no matching boltvet:ignore-begin",
		"boltvet:ignore-begin has no matching boltvet:ignore-end",
	}
	if len(findings) != len(wantParts) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(wantParts), findings)
	}
	for i, part := range wantParts {
		if !strings.Contains(findings[i].Message, part) {
			t.Errorf("finding %d = %s, want it to contain %q", i, findings[i], part)
		}
	}
	for _, f := range findings {
		if filepath.Base(f.Pos.Filename) != "fixture.go" {
			t.Errorf("finding at %s, want it in fixture.go", f.Pos)
		}
	}
}

// TestIgnoreBlockSuppresses pins the span mechanics end-to-end: the
// mustclose fixture's blockSuppressed region leaks twice inside a
// reasoned begin/end pair and must produce no findings there.
func TestIgnoreBlockSuppresses(t *testing.T) {
	pkgs, err := Load(LoadConfig{}, filepath.Join("testdata", "src", "mustclose"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, f := range RunAll(pkgs, []*Analyzer{MustClose}) {
		if f.Pos.Line >= 107 && f.Pos.Line <= 118 {
			t.Errorf("finding inside the ignore-begin/end block: %s", f)
		}
	}
}

// TestFixturesTripTheDriver pins the CI contract: pointing bolt-vet at any
// fixture package must produce findings (the driver exits 1 when findings
// are non-empty), so a regression that silences an analyzer outright fails
// here rather than silently vetting nothing.
func TestFixturesTripTheDriver(t *testing.T) {
	for _, fixture := range []string{
		"syncerr", "barrierorder", "lockcheck", "lockorder",
		"errflow", "atomicfield", "guardedby", "mustclose",
		"golifetime", "condcheck", "summarycheck",
	} {
		pkgs, err := Load(LoadConfig{}, filepath.Join("testdata", "src", fixture))
		if err != nil {
			t.Fatalf("load %s: %v", fixture, err)
		}
		if findings := RunAll(pkgs, All()); len(findings) == 0 {
			t.Errorf("fixture %s produced no findings; bolt-vet would exit 0 on it", fixture)
		}
	}
}

// TestSuiteSelfClean dogfoods the analyzers on this package itself.
func TestSuiteSelfClean(t *testing.T) {
	pkgs, err := Load(LoadConfig{Tests: true}, ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("typecheck %s: %v", p.ImportPath, te)
		}
	}
	for _, f := range RunAll(pkgs, All()) {
		t.Errorf("finding in boltvet itself: %s", f)
	}
}
