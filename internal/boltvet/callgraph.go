package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program layer the interprocedural analyzers
// (lockorder, errflow, the lockcheck upgrade) run on: a type-aware static
// call graph over every loaded package, with bounded resolution of
// interface calls and method values.
//
// Function identity is a string key ("pkgpath.(Type).Name"), not a
// *types.Func: each directly loaded package is type-checked in its own
// universe while its imports come from the shared source importer, so the
// same function can be represented by distinct objects. Keys unify them.
//
// Resolution is deliberately bounded and unsound in the ways any static
// call graph for Go is: calls through function-typed fields, reflection,
// and interface calls with more than maxInterfaceTargets candidate
// implementations resolve to nothing (the callee is treated as opaque —
// empty summary, no findings missed inside it but none found either).
// DESIGN.md §6a records these limits; the runtime twins (-race tier,
// boltinvariants builds) stay the sound backstop.

// maxInterfaceTargets bounds how many concrete methods one interface call
// may fan out to. Calls past the bound (Close, Next, ... with dozens of
// implementations) are treated as opaque and counted in Stats.
const maxInterfaceTargets = 8

// FuncInfo is one function or method known to the program: its declaration
// (nil for functions only seen through imports) and resolved call sites.
type FuncInfo struct {
	Key  string
	Name string // bare name for witnesses ("flushLocked")
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls are the resolved static call sites in body order.
	Calls []*CallSite

	locks *lockSummary
	errs  *errSummary
}

// CallSite is one call expression with its resolved callee keys (several
// for interface calls).
type CallSite struct {
	Call    *ast.CallExpr
	Targets []string
}

// GraphStats counts what the resolver could and could not see.
type GraphStats struct {
	Funcs             int
	Edges             int
	InterfaceFanouts  int // interface calls resolved within the bound
	InterfaceOverflow int // interface calls past maxInterfaceTargets (opaque)
	MethodValueBinds  int // v := x.Method bindings resolved to calls
	OpaqueCalls       int // calls with no resolvable static callee
}

// Program is the whole-program view handed to Analyzer.RunProgram.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncInfo
	Stats GraphStats

	// methodsByName indexes concrete methods for interface resolution.
	methodsByName map[string][]*FuncInfo
}

// Func returns the FuncInfo for key, or nil.
func (prog *Program) Func(key string) *FuncInfo { return prog.Funcs[key] }

// funcKey builds the canonical key of a *types.Func. Receiver pointers are
// stripped so (*DB).Get and DB.Get unify.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return pkg + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		// Interface receiver or unnamed: key by name only under the
		// interface's package so calls at least unify textually.
		return pkg + ".(iface)." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// declKey builds the key for a function declaration in package p.
func declKey(p *Package, fd *ast.FuncDecl) string {
	path := ""
	if p.Types != nil {
		path = p.Types.Path()
	}
	if recv := receiverTypeName(fd); recv != "" {
		return path + ".(" + recv + ")." + fd.Name.Name
	}
	return path + "." + fd.Name.Name
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v
		case *types.Alias:
			t = types.Unalias(v)
		default:
			return nil
		}
	}
}

// BuildProgram constructs the call graph over pkgs.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:          pkgs,
		Funcs:         make(map[string]*FuncInfo),
		methodsByName: make(map[string][]*FuncInfo),
	}
	// Pass 1: register every declared function.
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(p, fd)
				fi := &FuncInfo{Key: key, Name: fd.Name.Name, Pkg: p, Decl: fd}
				// Test packages shadow: first registration wins so the
				// non-test declaration keeps its body.
				if prog.Funcs[key] == nil {
					prog.Funcs[key] = fi
					prog.Stats.Funcs++
					if fd.Recv != nil {
						prog.methodsByName[fd.Name.Name] = append(prog.methodsByName[fd.Name.Name], fi)
					}
				}
			}
		}
	}
	// Deterministic interface fan-out order.
	for _, fis := range prog.methodsByName {
		sort.Slice(fis, func(i, j int) bool { return fis[i].Key < fis[j].Key })
	}
	// Pass 2: resolve call sites.
	for _, fi := range prog.sortedFuncs() {
		prog.resolveCalls(fi)
	}
	return prog
}

// sortedFuncs returns the functions in deterministic key order.
func (prog *Program) sortedFuncs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(prog.Funcs))
	for _, fi := range prog.Funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// resolveCalls fills fi.Calls with the statically resolvable callees of
// every call expression in fi's body, in source order. Method values bound
// to local variables (v := x.Method; v()) resolve through a per-function
// binding map; FuncLit bodies are skipped (their calls belong to no
// summary — a documented soundness limit).
func (prog *Program) resolveCalls(fi *FuncInfo) {
	p := fi.Pkg
	// bindings: local variable object -> bound function key.
	bindings := make(map[types.Object]string)
	// First sweep: collect v := x.Method / v := fn bindings.
	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if fn := funcObjOf(p, as.Rhs[i]); fn != nil {
				bindings[obj] = funcKey(fn)
				prog.Stats.MethodValueBinds++
			}
		}
	})

	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		targets := prog.resolveCallee(p, call, bindings)
		if len(targets) == 0 {
			prog.Stats.OpaqueCalls++
			return
		}
		prog.Stats.Edges += len(targets)
		fi.Calls = append(fi.Calls, &CallSite{Call: call, Targets: targets})
	})
}

// funcObjOf returns the *types.Func an expression evaluates to when it is
// a direct function or method value reference, else nil.
func funcObjOf(p *Package, e ast.Expr) *types.Func {
	switch v := e.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[v].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[v]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := p.Info.Uses[v.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return funcObjOf(p, v.X)
	}
	return nil
}

// resolveCallee returns the candidate callee keys of call.
func (prog *Program) resolveCallee(p *Package, call *ast.CallExpr, bindings map[types.Object]string) []string {
	fun := ast.Unparen(call.Fun)
	// Calls through a bound method value: v().
	if id, ok := fun.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			if key, ok := bindings[obj]; ok {
				return []string{key}
			}
		}
	}
	fn := funcObjOf(p, fun)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return prog.resolveInterfaceCall(fn, sig)
		}
	}
	return []string{funcKey(fn)}
}

// resolveInterfaceCall fans an interface method call out to the concrete
// methods of the program whose name and non-receiver signature match —
// the "receiver type set" resolution, bounded by maxInterfaceTargets.
// Signatures are compared as package-qualified strings because the
// candidates may live in different type-check universes.
func (prog *Program) resolveInterfaceCall(fn *types.Func, sig *types.Signature) []string {
	want := signatureShape(sig)
	var out []string
	for _, cand := range prog.methodsByName[fn.Name()] {
		csig := declSignature(cand)
		if csig == nil {
			continue
		}
		if signatureShape(csig) != want {
			continue
		}
		out = append(out, cand.Key)
		if len(out) > maxInterfaceTargets {
			prog.Stats.InterfaceOverflow++
			return nil
		}
	}
	if len(out) > 0 {
		prog.Stats.InterfaceFanouts++
	}
	return out
}

// declSignature returns the checked signature of a declared function.
func declSignature(fi *FuncInfo) *types.Signature {
	obj := fi.Pkg.Info.Defs[fi.Decl.Name]
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// signatureShape renders a signature without its receiver for structural
// matching across universes.
func signatureShape(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		b.WriteByte(',')
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	return b.String()
}

// inspectSkipFuncLit walks n in source order, visiting every node except
// the bodies of function literals.
func inspectSkipFuncLit(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockKeyOf identifies the mutex behind expr (the x.mu of x.mu.Lock()):
// "pkgpath.Type.field" for struct fields, "pkgpath.var" for package-level
// mutexes. Identity is type-based, not instance-based: two instances of
// the same struct share a key (documented soundness limit — RacerD's
// ownership abstraction makes the same trade).
func lockKeyOf(p *Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch v := expr.(type) {
	case *ast.SelectorExpr:
		base := ast.Unparen(v.X)
		tv, ok := p.Info.Types[base]
		if !ok {
			return ""
		}
		if named := namedOf(tv.Type); named != nil {
			pkg := ""
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Path()
			}
			return pkg + "." + named.Obj().Name() + "." + v.Sel.Name
		}
	case *ast.Ident:
		obj := p.Info.Uses[v]
		if obj == nil {
			return ""
		}
		if _, isVar := obj.(*types.Var); isVar && obj.Parent() != nil && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// shortLockKey trims the module path prefix for diagnostics.
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// mutexOpOf decodes call as a mutex operation (x.mu.Lock() etc.),
// returning the lock key, whether it acquires, and whether it is a
// read-side op. ok is false for anything else, including calls whose
// receiver is not a sync.Mutex/sync.RWMutex.
func mutexOpOf(p *Package, call *ast.CallExpr) (key string, acquire, read, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		acquire, read = true, false
	case "RLock":
		acquire, read = true, true
	case "Unlock":
		acquire, read = false, false
	case "RUnlock":
		acquire, read = false, true
	default:
		return "", false, false, false
	}
	tv, hasType := p.Info.Types[sel.X]
	if !hasType || !isMutexType(tv.Type) {
		return "", false, false, false
	}
	key = lockKeyOf(p, sel.X)
	if key == "" {
		return "", false, false, false
	}
	return key, acquire, read, true
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// posOf renders a token position for witnesses.
func posOf(p *Package, pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", position.Filename, position.Line)
}
