package boltvet

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadProgram(t *testing.T, fixture string) (*Program, string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	prog := BuildProgram(pkgs)
	ComputeSummaries(prog)
	return prog, pkgs[0].ImportPath
}

// TestLockSummariesTwoHop pins the compositional half of the engine: a
// function that only *calls* something that locks must still summarize the
// acquire, with the witness chain, and the unlock-then-relock callee must
// publish the release so holding callers are not flagged.
func TestLockSummariesTwoHop(t *testing.T) {
	prog, path := loadProgram(t, "lockorder")
	mu := path + ".S.mu"

	middle := prog.Func(path + ".(S).middle")
	if middle == nil {
		t.Fatalf("middle not in program; keys: %v", len(prog.Funcs))
	}
	acq := middle.locks.acquires[mu]
	if acq == nil {
		t.Fatalf("middle's summary does not acquire %s: %+v", mu, middle.locks.acquires)
	}
	if got := strings.Join(acq.chain, " -> "); got != "inner" {
		t.Errorf("middle's chain = %q, want %q", got, "inner")
	}
	if acq.releasedBefore[mu] {
		t.Errorf("middle releasedBefore contains %s; it never unlocks", mu)
	}

	relocks := prog.Func(path + ".(S).relocks")
	if relocks == nil {
		t.Fatal("relocks not in program")
	}
	racq := relocks.locks.acquires[mu]
	if racq == nil {
		t.Fatalf("relocks' summary does not acquire %s", mu)
	}
	if !racq.releasedBefore[mu] {
		t.Errorf("relocks must publish that it releases %s before re-acquiring; callers holding it are safe", mu)
	}

	readInner := prog.Func(path + ".(S).readInner")
	if readInner == nil {
		t.Fatal("readInner not in program")
	}
	rw := path + ".S.rw"
	if a := readInner.locks.acquires[rw]; a == nil || !a.read {
		t.Errorf("readInner must summarize a read acquire of %s, got %+v", rw, a)
	}
}

// TestErrSummariesTwoHop pins the errflow half: returnsBarrier propagates
// through two hops of helpers and carries the witness chain down to the
// barrier method.
func TestErrSummariesTwoHop(t *testing.T) {
	prog, path := loadProgram(t, "errflow")

	layer2 := prog.Func(path + ".layer2")
	if layer2 == nil {
		t.Fatal("layer2 not in program")
	}
	if !layer2.errs.returnsBarrier {
		t.Fatal("layer2 must summarize as returning a barrier-born error")
	}
	if got := strings.Join(layer2.errs.chain, " -> "); got != "barrier -> Sync" {
		t.Errorf("layer2's chain = %q, want %q", got, "barrier -> Sync")
	}

	drop := prog.Func(path + ".dropStmt")
	if drop == nil {
		t.Fatal("dropStmt not in program")
	}
	if drop.errs.returnsBarrier {
		t.Error("dropStmt returns nothing; it must not summarize as returning a barrier error")
	}
}

// TestCallGraphResolution sanity-checks the resolver over a fixture: every
// fixture method is registered, calls resolve to in-program targets, and
// the stats see the edges.
func TestCallGraphResolution(t *testing.T) {
	prog, path := loadProgram(t, "lockorder")

	outer := prog.Func(path + ".(S).outer")
	if outer == nil {
		t.Fatal("outer not in program")
	}
	// Targets may name out-of-program functions (sync.(Mutex).Lock); the
	// resolver keys them anyway so summaries stay name-stable. The call to
	// middle must resolve to the in-program declaration.
	var sawMiddle bool
	for _, cs := range outer.Calls {
		for _, target := range cs.Targets {
			if target == path+".(S).middle" {
				sawMiddle = true
			}
		}
	}
	if !sawMiddle {
		t.Error("outer's call to middle did not resolve")
	}
	if prog.Stats.Funcs == 0 || prog.Stats.Edges == 0 {
		t.Errorf("degenerate graph stats: %+v", prog.Stats)
	}
}
