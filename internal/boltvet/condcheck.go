package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CondCheck verifies the engine's sync.Cond protocol, the mechanism
// behind every drain loop and the group-commit write queue — and behind
// the PR 4 stall deadlock, where a state change without a matching
// Broadcast left waiters asleep forever. Three rules:
//
//   - Wait only inside a loop. A condition variable wakeup is a hint,
//     not a message: the predicate must be rechecked, so a Wait whose
//     nearest enclosing statement chain has no for loop is reported.
//     One level of indirection is allowed — a helper whose body is just
//     the Wait (the engine's stallOnCondLocked) passes when every one
//     of its call sites is itself inside a loop; a non-looping call
//     site is reported with the helper chain as the witness.
//
//   - Wait with the cond's mutex held, and no other tracked mutex. The
//     cond-to-mutex binding is learned from sync.NewCond(&mu) calls and
//     cond.L = &mu assignments; at each Wait the summary-backed lock
//     walker must show the bound mutex held. Holding a second acquired
//     mutex across Wait is reported: Wait releases only its own mutex,
//     so the second is held across the sleep — the lockorder hazard in
//     temporal form. Mutexes held only by a *Locked declaration (entry
//     mode) are the caller's business and not flagged.
//
//   - Signal/Broadcast after every predicate mutation. Every field some
//     Wait loop's condition mentions is a waited-on predicate; a
//     function that mutates one must have a Signal/Broadcast of the
//     associated cond (direct, or through a callee per the transitive
//     signal summaries) positioned after the mutation. A function with
//     no signal of its own is discharged when every call site is
//     followed by one in its caller. Anything else is a missed-wakeup
//     report at the mutation.
//
// Soundness limits (DESIGN.md §6a): the after-mutation check is
// positional within a function, not path-sensitive; Waits inside
// function literals get the loop check but not the lock-state check;
// cond and predicate identity is type-based. The -race tier and the
// boltinvariants drain registry are the runtime backstops.
var CondCheck = &Analyzer{
	Name:       "condcheck",
	Doc:        "verifies sync.Cond protocol: Wait in a rechecking loop with the bound mutex held, Signal/Broadcast after predicate mutations",
	RunProgram: runCondCheck,
}

// condOpOf decodes call as a sync.Cond operation, returning the cond's
// lock key and the method name (Wait, Signal, Broadcast).
func condOpOf(p *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Wait", "Signal", "Broadcast":
	default:
		return "", "", false
	}
	if !isCondType(typeOf(p, sel.X)) {
		return "", "", false
	}
	key = lockKeyOf(p, sel.X)
	if key == "" {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// sigPos is one direct Signal/Broadcast site.
type sigPos struct {
	pos token.Pos
	key string // cond key
}

// bareWait is a Wait with no enclosing loop in its own function,
// deferred to the call-site check.
type bareWait struct {
	fi   *FuncInfo
	call *ast.CallExpr
	key  string // cond key
}

type condState struct {
	prog *Program
	// binds maps cond key -> mutex key ("" when ambiguous).
	binds map[string]string
	// waitedPreds maps predicate field key -> cond keys whose Wait loops
	// recheck it.
	waitedPreds map[string]map[string]bool
	// waitLoopAt maps predicate field key -> a witness wait-loop position.
	waitLoopAt map[string]string
	// directSigs maps function key -> its direct signal sites (function
	// literals included: a deferred closure's Broadcast still runs).
	directSigs map[string][]sigPos
	// transSigs maps function key -> cond keys it may signal through any
	// call chain.
	transSigs map[string]map[string]bool
	// parents caches per-function parent maps.
	parents map[string]map[ast.Node]ast.Node
}

func runCondCheck(prog *Program) []Finding {
	cc := &condState{
		prog:        prog,
		binds:       make(map[string]string),
		waitedPreds: make(map[string]map[string]bool),
		waitLoopAt:  make(map[string]string),
		directSigs:  make(map[string][]sigPos),
		transSigs:   make(map[string]map[string]bool),
		parents:     make(map[string]map[ast.Node]ast.Node),
	}
	var out []Finding
	cc.collectBindings()
	bares := cc.collectWaits(&out)
	cc.checkBareWaits(bares, &out)
	cc.checkWaitLockState(&out)
	cc.computeSignalSummaries()
	cc.checkMissedWakeups(&out)
	return out
}

func (cc *condState) funcs() []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range cc.prog.sortedFuncs() {
		if fi.Decl != nil && !funcInTestFile(fi) {
			out = append(out, fi)
		}
	}
	return out
}

func (cc *condState) parentMap(fi *FuncInfo) map[ast.Node]ast.Node {
	if m, ok := cc.parents[fi.Key]; ok {
		return m
	}
	m := buildParentMap(fi.Decl.Body)
	cc.parents[fi.Key] = m
	return m
}

// collectBindings learns the cond -> mutex association from
// sync.NewCond(&mu) and cond.L = &mu. Conflicting rebinds make the cond
// ambiguous and drop it from the lock-state checks.
func (cc *condState) collectBindings() {
	bind := func(condKey, mutexKey string) {
		if condKey == "" || mutexKey == "" {
			return
		}
		if prev, ok := cc.binds[condKey]; ok && prev != mutexKey {
			cc.binds[condKey] = ""
			return
		}
		cc.binds[condKey] = mutexKey
	}
	for _, fi := range cc.funcs() {
		p := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				lhs, rhs := ast.Unparen(as.Lhs[i]), ast.Unparen(as.Rhs[i])
				if call, ok := rhs.(*ast.CallExpr); ok && isNewCondCall(p, call) && len(call.Args) == 1 {
					bind(lockKeyOf(p, lhs), mutexOperandKey(p, call.Args[0]))
					continue
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "L" && isCondType(typeOf(p, sel.X)) {
					bind(lockKeyOf(p, sel.X), mutexOperandKey(p, rhs))
				}
			}
			return true
		})
	}
}

func isNewCondCall(p *Package, call *ast.CallExpr) bool {
	fn := funcObjOf(p, ast.Unparen(call.Fun))
	return fn != nil && fn.Name() == "NewCond" && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// mutexOperandKey resolves &mu (or a plain mutex-typed expression) to
// its lock key.
func mutexOperandKey(p *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if !isMutexType(typeOf(p, e)) {
		return ""
	}
	return lockKeyOf(p, e)
}

// collectWaits enumerates every Wait site: loop-enclosed waits
// contribute their loop condition's fields to the waited-predicate set;
// waits with no loop inside a function literal are reported here; bare
// waits at function top level are returned for the call-site check.
func (cc *condState) collectWaits(out *[]Finding) []bareWait {
	var bares []bareWait
	for _, fi := range cc.funcs() {
		p := fi.Pkg
		parents := cc.parentMap(fi)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, op, ok := condOpOf(p, call)
			if !ok || op != "Wait" {
				return true
			}
			loop, inLit := enclosingLoop(parents, call)
			switch {
			case loop != nil:
				if forStmt, ok := loop.(*ast.ForStmt); ok && forStmt.Cond != nil {
					cc.recordPredicates(p, forStmt, key)
				}
			case inLit:
				*out = append(*out, Finding{
					Pos:      p.Fset.Position(call.Pos()),
					Analyzer: "condcheck",
					Message:  fmt.Sprintf("Wait on %s outside a for loop; a wakeup is a hint, recheck the predicate in a loop", shortLockKey(key)),
				})
			default:
				bares = append(bares, bareWait{fi: fi, call: call, key: key})
			}
			return true
		})
	}
	return bares
}

// enclosingLoop walks up the parent chain from n to the nearest for or
// range statement, stopping at function-literal boundaries. inLit
// reports that a literal boundary was hit before any loop.
func enclosingLoop(parents map[ast.Node]ast.Node, n ast.Node) (loop ast.Stmt, inLit bool) {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch v := cur.(type) {
		case *ast.ForStmt:
			return v, false
		case *ast.RangeStmt:
			return v, false
		case *ast.FuncLit:
			return nil, true
		}
	}
	return nil, false
}

// recordPredicates adds every struct-field selector in the loop
// condition to the waited-predicate set for condKey.
func (cc *condState) recordPredicates(p *Package, loop *ast.ForStmt, condKey string) {
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fk := fieldKeyOf(p, sel)
		if fk == "" {
			return true
		}
		if cc.waitedPreds[fk] == nil {
			cc.waitedPreds[fk] = make(map[string]bool)
		}
		cc.waitedPreds[fk][condKey] = true
		if _, ok := cc.waitLoopAt[fk]; !ok {
			cc.waitLoopAt[fk] = posOf(p, loop.Pos())
		}
		return true
	})
}

// checkBareWaits applies the one-level relaxation: a function whose
// Wait has no local loop passes only when every one of its call sites
// is inside a loop.
func (cc *condState) checkBareWaits(bares []bareWait, out *[]Finding) {
	for _, bw := range bares {
		sites := 0
		for _, caller := range cc.funcs() {
			parents := cc.parentMap(caller)
			for _, cs := range caller.Calls {
				if !hasTarget(cs, bw.fi.Key) {
					continue
				}
				sites++
				if loop, _ := enclosingLoop(parents, cs.Call); loop == nil {
					*out = append(*out, Finding{
						Pos:      caller.Pkg.Fset.Position(cs.Call.Pos()),
						Analyzer: "condcheck",
						Message: fmt.Sprintf("%s calls %s, which Waits on %s, from outside a loop; the predicate is rechecked only when the call site loops",
							caller.Name, bw.fi.Name, shortLockKey(bw.key)),
					})
				}
			}
		}
		if sites == 0 {
			*out = append(*out, Finding{
				Pos:      bw.fi.Pkg.Fset.Position(bw.call.Pos()),
				Analyzer: "condcheck",
				Message:  fmt.Sprintf("Wait on %s outside a for loop; a wakeup is a hint, recheck the predicate in a loop", shortLockKey(bw.key)),
			})
		}
	}
}

func hasTarget(cs *CallSite, key string) bool {
	for _, t := range cs.Targets {
		if t == key {
			return true
		}
	}
	return false
}

// checkWaitLockState replays each function through the lock walker and
// checks every Wait's mutex discipline: the bound mutex held, no other
// acquired mutex held across the sleep.
func (cc *condState) checkWaitLockState(out *[]Finding) {
	for _, fi := range cc.funcs() {
		p := fi.Pkg
		w := newLockWalker(cc.prog, fi, nil)
		w.onCall = func(cs *CallSite, st *lockState, deferred bool) {
			if deferred {
				return
			}
			key, op, ok := condOpOf(p, cs.Call)
			if !ok || op != "Wait" {
				return
			}
			mk := cc.binds[key]
			if mk != "" {
				if _, held := st.held[mk]; !held {
					*out = append(*out, Finding{
						Pos:      p.Fset.Position(cs.Call.Pos()),
						Analyzer: "condcheck",
						Message: fmt.Sprintf("%s Waits on %s without holding %s, the cond's mutex; Wait's internal unlock panics or races",
							fi.Name, shortLockKey(key), shortLockKey(mk)),
					})
				}
			}
			for _, hk := range sortedKeys(st.held) {
				if hk == mk || st.held[hk] == lockEntry {
					continue
				}
				*out = append(*out, Finding{
					Pos:      p.Fset.Position(cs.Call.Pos()),
					Analyzer: "condcheck",
					Message: fmt.Sprintf("%s Waits on %s while holding %s; Wait releases only the cond's mutex, so %s stays held across the sleep (deadlock hazard)",
						fi.Name, shortLockKey(key), shortLockKey(hk), shortLockKey(hk)),
				})
			}
		}
		w.walkFrom(condEntryState(fi))
	}
}

// condEntryState seeds a *Locked function's receiver mutexes held at
// entry mode, mirroring guardedby: the caller's declared hold must not
// read as "Wait without the mutex" or as a spurious second lock.
func condEntryState(fi *FuncInfo) *lockState {
	st := newLockState()
	if !strings.HasSuffix(fi.Name, "Locked") || fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
		return st
	}
	tv, ok := fi.Pkg.Info.Types[fi.Decl.Recv.List[0].Type]
	if !ok {
		return st
	}
	named := namedOf(tv.Type)
	if named == nil {
		return st
	}
	structType, ok := named.Underlying().(*types.Struct)
	if !ok {
		return st
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	for i := 0; i < structType.NumFields(); i++ {
		f := structType.Field(i)
		if isMutexType(f.Type()) {
			st.held[pkg+"."+named.Obj().Name()+"."+f.Name()] = lockEntry
		}
	}
	return st
}

// computeSignalSummaries gathers direct Signal/Broadcast sites and
// iterates the may-signal sets to a fixed point over the call graph.
// Go-spawned calls count: waking a waiter from a goroutine the mutation
// just scheduled is the engine's normal shape.
func (cc *condState) computeSignalSummaries() {
	funcs := cc.funcs()
	for _, fi := range funcs {
		p := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := condOpOf(p, call); ok && op != "Wait" {
				cc.directSigs[fi.Key] = append(cc.directSigs[fi.Key], sigPos{pos: call.Pos(), key: key})
			}
			return true
		})
	}
	for pass := 0; pass < maxSummaryPasses; pass++ {
		changed := false
		for _, fi := range funcs {
			set := cc.transSigs[fi.Key]
			if set == nil {
				set = make(map[string]bool)
				cc.transSigs[fi.Key] = set
			}
			before := len(set)
			for _, s := range cc.directSigs[fi.Key] {
				set[s.key] = true
			}
			for _, cs := range fi.Calls {
				for _, t := range cs.Targets {
					for k := range cc.transSigs[t] {
						set[k] = true
					}
				}
			}
			if len(set) != before {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// checkMissedWakeups reports predicate mutations with no reachable
// signal positioned after them.
func (cc *condState) checkMissedWakeups(out *[]Finding) {
	if len(cc.waitedPreds) == 0 {
		return
	}
	for _, fi := range cc.funcs() {
		p := fi.Pkg
		fresh := freshLocals(p, fi.Decl)
		check := func(sel *ast.SelectorExpr, pos token.Pos) {
			fk := fieldKeyOf(p, sel)
			cks := cc.waitedPreds[fk]
			if len(cks) == 0 {
				return
			}
			if root := rootIdent(sel.X); root != nil && fresh[p.Info.Uses[root]] {
				return // freshly constructed, unshared: nobody waits yet
			}
			if cc.signalAfter(fi, pos, cks) || cc.callersDischarge(fi, cks) {
				return
			}
			*out = append(*out, Finding{
				Pos:      p.Fset.Position(pos),
				Analyzer: "condcheck",
				Message: fmt.Sprintf("%s mutates %s, rechecked by the Wait loop at %s, with no Signal/Broadcast after it (here or in every caller); waiters can miss the change and stall",
					fi.Name, shortLockKey(fk), cc.waitLoopAt[fk]),
			})
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						check(sel, lhs.Pos())
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
					check(sel, v.Pos())
				}
			}
			return true
		})
	}
}

// signalAfter reports whether fi has a signal of any cond in cks
// positioned after pos: a direct Signal/Broadcast, or a call to a
// function whose may-signal set intersects cks.
func (cc *condState) signalAfter(fi *FuncInfo, pos token.Pos, cks map[string]bool) bool {
	for _, s := range cc.directSigs[fi.Key] {
		if s.pos > pos && cks[s.key] {
			return true
		}
	}
	for _, cs := range fi.Calls {
		if cs.Call.Pos() <= pos {
			continue
		}
		for _, t := range cs.Targets {
			for k := range cc.transSigs[t] {
				if cks[k] {
					return true
				}
			}
		}
	}
	return false
}

// callersDischarge applies the one-level relaxation for helpers that
// mutate and return (forceMemtableSwitchLocked's callers broadcast):
// every call site of fi must be followed by a signal in its caller.
func (cc *condState) callersDischarge(fi *FuncInfo, cks map[string]bool) bool {
	sites := 0
	for _, caller := range cc.funcs() {
		for _, cs := range caller.Calls {
			if !hasTarget(cs, fi.Key) {
				continue
			}
			sites++
			if !cc.signalAfter(caller, cs.Call.Pos(), cks) {
				return false
			}
		}
	}
	return sites > 0
}
