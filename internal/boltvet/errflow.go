package boltvet

import (
	"fmt"
	"go/token"
	"strings"
)

// ErrFlow taint-tracks error values born at durability barriers
// (Sync/SyncDir/LogAndApply/CommitPrepared/WriteFile) through assignments,
// fmt.Errorf wraps, and helper returns, and reports every path where the
// taint dies before reaching a sink. Sinks are: a return statement (or a
// named error result), a store into a field/map/element (e.g. the bgErr
// record), a call argument (panic, logging, append, ...), a comparison or
// other use in an expression, and a channel send.
//
// The split with syncerr: syncerr polices the call site of a *direct*
// barrier call (bare statement, `_ =`, defer/go, never-mentioned err).
// errflow adds the interprocedural half — a call to any helper whose
// summary says it returns a barrier-born error is itself a barrier site,
// and discarding its error is reported with the witness chain down to the
// barrier — plus wrap-chain deaths, where a direct barrier error is copied
// or wrapped and the wrapped value then dies.
//
// `_ =` at the original barrier site is syncerr's (reported there); at a
// helper call site it is a finding here: the helper's name does not say
// "barrier", so the discard is not reviewable without the chain.
//
// Test files are exempt, matching syncerr: they run on the in-memory
// filesystem and discard errors on purpose; the bgerror recovery tests are
// the runtime twin of this analyzer.
var ErrFlow = &Analyzer{
	Name:       "errflow",
	Doc:        "taint-tracks barrier-born errors; reports paths where the error dies unhandled",
	RunProgram: runErrFlow,
}

func runErrFlow(prog *Program) []Finding {
	var out []Finding
	report := func(fi *FuncInfo, pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      fi.Pkg.Fset.Position(pos),
			Analyzer: "errflow",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, fi := range prog.sortedFuncs() {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		t := analyzeErrFlow(prog, fi)
		for _, src := range t.sources {
			chain := strings.Join(src.chain, " -> ")
			if src.direct {
				// Call-site discards of a direct barrier call are syncerr's
				// territory; errflow adds only the wrap/copy death.
				if src.discarded != "" || src.consumed {
					continue
				}
				if src.mentioned {
					report(fi, src.call.Pos(),
						"error from %s is copied or wrapped but never handled; the barrier error dies in %s",
						src.name, fi.Name)
				}
				continue
			}
			switch src.discarded {
			case "stmt":
				report(fi, src.call.Pos(),
					"result of %s is discarded, but it carries a durability-barrier error (%s)",
					src.name, chain)
			case "underscore":
				report(fi, src.call.Pos(),
					"error from %s is discarded via _, but it carries a durability-barrier error (%s); handle it or suppress with a reason at this site",
					src.name, chain)
			case "defer":
				report(fi, src.call.Pos(),
					"error from deferred %s is discarded; it carries a durability-barrier error (%s)",
					src.name, chain)
			case "go":
				report(fi, src.call.Pos(),
					"error from %s spawned in a goroutine is discarded; it carries a durability-barrier error (%s)",
					src.name, chain)
			default:
				if !src.consumed {
					report(fi, src.call.Pos(),
						"error from %s is captured but never handled; the barrier error (%s) dies in %s",
						src.name, chain, fi.Name)
				}
			}
		}
	}
	return out
}
