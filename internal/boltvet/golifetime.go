package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GoLifetime ties every `go` statement to a declared or inferred
// lifecycle and proves the spawned goroutine is joined. The engine's
// shutdown correctness rests on Close draining every background
// goroutine (flush, compaction workers, scrubber, the write-queue
// leader) before tearing shared state down; the last three shutdown
// races all came from a goroutine outliving the state it touched.
//
// A spawn site declares its lifecycle with an annotation on the spawn
// line or the line above:
//
//	//boltvet:goroutine <tracker> -- <why>
//	go db.scrubLoop()
//
// where <tracker> names the field (of the spawned method's receiver, or
// the spawning function's receiver) that tracks the goroutine's
// liveness: a bool flag, an integer worker counter, or a
// sync.WaitGroup. The analyzer then proves two things through the call
// graph:
//
//   - clear: some path from the spawned function clears the tracker
//     (sets the bool false, decrements the counter, calls Done on the
//     WaitGroup). A goroutine that never clears its tracker deadlocks
//     the drain; the finding carries the checked call chain as the
//     witness.
//   - join: somewhere in the program the tracker is awaited — a loop
//     whose condition mentions the field and whose body Waits on a
//     sync.Cond (the engine's drain idiom), or a Wait() on the
//     WaitGroup. A tracker nobody awaits is a leak dressed as
//     bookkeeping.
//
// Unannotated spawns are accepted only when the lifecycle is inferable
// from WaitGroup discipline: the spawned function literal calls Done on
// a WaitGroup (field or local) that is provably Waited on — a local
// WaitGroup must be Waited within the spawning function (closures
// count), a field WaitGroup anywhere in the program. Everything else is
// reported: every goroutine must have a declared owner.
//
// Soundness limits (DESIGN.md §6a): clears are matched lexically (a
// clear on any instance of the struct type counts, RacerD's ownership
// trade); the clear path is existential, not universal — a panic
// between spawn and clear escapes the analysis; calls the graph cannot
// resolve end the search. The boltinvariants goroutine registry is the
// runtime twin that closes the gap.
var GoLifetime = &Analyzer{
	Name:       "golifetime",
	Doc:        "ties every go statement to a declared/inferred lifecycle and proves the goroutine is joined",
	RunProgram: runGoLifetime,
}

// goroutineRe matches the spawn-site annotation.
var goroutineRe = regexp.MustCompile(`^//\s*boltvet:goroutine\s+(\w+)\s*(?:--\s*(\S.*))?$`)

// goroutineSpec is one parsed //boltvet:goroutine annotation.
type goroutineSpec struct {
	tracker string
	reason  string
	pos     token.Pos
}

// trackerKind classifies what a tracker name resolved to.
type trackerKind int

const (
	trackBool    trackerKind = iota + 1 // struct bool flag, cleared by `= false`
	trackInt                            // struct worker counter, cleared by -- or -=
	trackWG                             // struct sync.WaitGroup, cleared by Done
	trackLocalWG                        // local sync.WaitGroup, cleared by Done
)

// trackerRef is a resolved tracker: a field key for struct trackers or
// the variable object for local WaitGroups.
type trackerRef struct {
	kind       trackerKind
	key        string // "pkgpath.Struct.field" for field trackers
	obj        types.Object
	structName string
	fieldName  string
}

func (tr *trackerRef) label() string {
	if tr.kind == trackLocalWG {
		return tr.fieldName
	}
	return tr.structName + "." + tr.fieldName
}

// lifetimeState caches the per-function facts the spawn checks share.
type lifetimeState struct {
	prog *Program
	// annots maps filename -> line -> annotation.
	annots map[string]map[int]*goroutineSpec
	// clears maps function key -> tracker keys the body clears.
	clears map[string]map[string]bool
	// callees maps function key -> resolved callee keys, including calls
	// inside function literals (unlike FuncInfo.Calls, which skips them —
	// a spawned literal's body is exactly what we must see through).
	callees map[string][]string
	// waitedFields holds field keys some loop condition mentions while
	// its body Waits on a sync.Cond (the drain idiom).
	waitedFields map[string]bool
	// wgWaitFields holds field keys of WaitGroups with a program-wide
	// Wait call.
	wgWaitFields map[string]bool
}

// maxLifetimeDepth bounds the clear-path search through the call graph.
const maxLifetimeDepth = 8

func runGoLifetime(prog *Program) []Finding {
	ls := &lifetimeState{
		prog:         prog,
		annots:       make(map[string]map[int]*goroutineSpec),
		clears:       make(map[string]map[string]bool),
		callees:      make(map[string][]string),
		waitedFields: make(map[string]bool),
		wgWaitFields: make(map[string]bool),
	}
	ls.collectAnnotations()
	ls.collectAwaits()
	var out []Finding
	for _, fi := range prog.sortedFuncs() {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		ls.checkFunc(fi, &out)
	}
	return out
}

func (ls *lifetimeState) collectAnnotations() {
	for _, p := range ls.prog.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := goroutineRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := ls.annots[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]*goroutineSpec)
						ls.annots[pos.Filename] = byLine
					}
					byLine[pos.Line] = &goroutineSpec{
						tracker: m[1],
						reason:  strings.TrimSpace(m[2]),
						pos:     c.Pos(),
					}
				}
			}
		}
	}
}

// collectAwaits scans every non-test function once for the two join
// idioms: drain loops (condition mentions a field, body Waits on a
// sync.Cond) and WaitGroup field Waits.
func (ls *lifetimeState) collectAwaits() {
	for _, fi := range ls.prog.sortedFuncs() {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		p := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ForStmt:
				if v.Cond == nil || !bodyWaitsOnCond(p, v.Body) {
					return true
				}
				ast.Inspect(v.Cond, func(cn ast.Node) bool {
					if sel, ok := cn.(*ast.SelectorExpr); ok {
						if key := fieldKeyOf(p, sel); key != "" {
							ls.waitedFields[key] = true
						}
					}
					return true
				})
			case *ast.CallExpr:
				sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Wait" {
					return true
				}
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isWaitGroupType(typeOf(p, sel.X)) {
					if key := fieldKeyOf(p, inner); key != "" {
						ls.wgWaitFields[key] = true
					}
				}
			}
			return true
		})
	}
}

// bodyWaitsOnCond reports whether body contains a sync.Cond Wait call.
func bodyWaitsOnCond(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Wait" && isCondType(typeOf(p, sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

func (ls *lifetimeState) checkFunc(fi *FuncInfo, out *[]Finding) {
	p := fi.Pkg
	report := func(pos token.Pos, format string, args ...any) {
		*out = append(*out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "golifetime",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ls.checkSpawn(fi, g, report)
		return true
	})
}

// specAt returns the annotation on the spawn's line or the line above.
func (ls *lifetimeState) specAt(p *Package, pos token.Pos) *goroutineSpec {
	position := p.Fset.Position(pos)
	byLine := ls.annots[position.Filename]
	if byLine == nil {
		return nil
	}
	if s := byLine[position.Line]; s != nil {
		return s
	}
	return byLine[position.Line-1]
}

func (ls *lifetimeState) checkSpawn(fi *FuncInfo, g *ast.GoStmt, report func(token.Pos, string, ...any)) {
	p := fi.Pkg
	spec := ls.specAt(p, g.Pos())
	if spec == nil {
		ls.checkInferred(fi, g, report)
		return
	}
	if spec.reason == "" {
		report(g.Pos(), "//boltvet:goroutine %s requires a reason; write `//boltvet:goroutine %s -- <why>`",
			spec.tracker, spec.tracker)
		return
	}
	tr := resolveTracker(p, fi, g, spec.tracker)
	if tr == nil {
		report(g.Pos(), "//boltvet:goroutine names %q, which is not a bool, integer, or sync.WaitGroup tracker reachable from this spawn site",
			spec.tracker)
		return
	}
	// Clear: some path from the spawned function must clear the tracker.
	if chain, found := ls.findClear(p, g.Call, tr); !found {
		suffix := ""
		if len(chain) > 0 {
			suffix = " (checked " + strings.Join(chain, " -> ") + ")"
		}
		report(g.Pos(), "goroutine tracked by %s never clears it: no path from the spawned function %s%s; the drain loop waiting on it will hang",
			tr.label(), clearVerb(tr.kind), suffix)
	}
	// Join: the tracker must be awaited somewhere.
	if !ls.awaited(fi, tr) {
		report(g.Pos(), "goroutine tracker %s is never awaited: no loop condition waits on it and no Wait() joins it; the goroutine can outlive Close",
			tr.label())
	}
}

func clearVerb(k trackerKind) string {
	switch k {
	case trackBool:
		return "sets it false"
	case trackInt:
		return "decrements it"
	default:
		return "calls Done on it"
	}
}

// checkInferred handles unannotated spawns: only the WaitGroup idiom
// (spawned literal calls Done on a Waited WaitGroup) passes.
func (ls *lifetimeState) checkInferred(fi *FuncInfo, g *ast.GoStmt, report func(token.Pos, string, ...any)) {
	p := fi.Pkg
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		report(g.Pos(), "go statement has no declared lifecycle; annotate it with `//boltvet:goroutine <tracker> -- <why>` naming the bool/counter/WaitGroup that tracks it")
		return
	}
	// Find a wg.Done() in the spawned literal's body (defer counts).
	var doneKey string       // field WaitGroup
	var doneObj types.Object // local WaitGroup
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || doneKey != "" || doneObj != nil {
			return doneKey == "" && doneObj == nil
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isWaitGroupType(typeOf(p, sel.X)) {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			doneKey = fieldKeyOf(p, recv)
		case *ast.Ident:
			doneObj = p.Info.Uses[recv]
		}
		return true
	})
	switch {
	case doneKey != "":
		if !ls.wgWaitFields[doneKey] {
			report(g.Pos(), "goroutine calls Done on %s but nothing in the program Waits on it; the WaitGroup joins nobody",
				shortLockKey(doneKey))
		}
	case doneObj != nil:
		if !waitsOnObject(p, fi.Decl.Body, doneObj) {
			report(g.Pos(), "goroutine calls Done on WaitGroup %q but the spawning function never Waits on it; the goroutine can outlive its spawner",
				doneObj.Name())
		}
	default:
		report(g.Pos(), "go statement has no declared lifecycle; annotate it with `//boltvet:goroutine <tracker> -- <why>` or adopt the WaitGroup Done/Wait discipline")
	}
}

// waitsOnObject reports whether body (closures included — a stop
// function returned by the spawner is the common shape) calls Wait on
// the given WaitGroup variable.
func waitsOnObject(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// resolveTracker resolves an annotation's tracker name against, in
// order: the spawned method's receiver struct, the spawning function's
// receiver struct, and the spawning function's local WaitGroups.
func resolveTracker(p *Package, fi *FuncInfo, g *ast.GoStmt, name string) *trackerRef {
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if tr := fieldTracker(p, typeOf(p, sel.X), name); tr != nil {
			return tr
		}
	}
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
		if tv, ok := p.Info.Types[fi.Decl.Recv.List[0].Type]; ok {
			if tr := fieldTracker(p, tv.Type, name); tr != nil {
				return tr
			}
		}
	}
	var tr *trackerRef
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name || tr != nil {
			return tr == nil
		}
		if obj := p.Info.Defs[id]; obj != nil && isWaitGroupType(obj.Type()) {
			tr = &trackerRef{kind: trackLocalWG, obj: obj, fieldName: name}
		}
		return true
	})
	return tr
}

// fieldTracker resolves name as a trackable field of t's named struct.
func fieldTracker(p *Package, t types.Type, name string) *trackerRef {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		kind, ok := trackerKindOf(f.Type())
		if !ok {
			return nil
		}
		pkg := ""
		if named.Obj().Pkg() != nil {
			pkg = named.Obj().Pkg().Path()
		}
		return &trackerRef{
			kind:       kind,
			key:        pkg + "." + named.Obj().Name() + "." + name,
			structName: named.Obj().Name(),
			fieldName:  name,
		}
	}
	return nil
}

func trackerKindOf(t types.Type) (trackerKind, bool) {
	if isWaitGroupType(t) {
		return trackWG, true
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		if b.Info()&types.IsBoolean != 0 {
			return trackBool, true
		}
		if b.Info()&types.IsInteger != 0 {
			return trackInt, true
		}
	}
	return 0, false
}

// findClear searches for a tracker clear reachable from the spawned
// call: the spawned function literal's own body, or a bounded BFS
// through the call graph from the spawned function (calls inside
// literals included). The returned chain is the deepest path checked,
// for the not-found witness.
func (ls *lifetimeState) findClear(p *Package, call *ast.CallExpr, tr *trackerRef) (chain []string, found bool) {
	var frontier []string // function keys to search from
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if clearsInNode(p, fun.Body, tr) {
			return nil, true
		}
		frontier = calleeKeysIn(p, fun.Body)
	default:
		if fn := funcObjOf(p, fun); fn != nil {
			frontier = []string{funcKey(fn)}
		}
	}
	type item struct {
		key   string
		chain []string
	}
	visited := make(map[string]bool)
	queue := make([]item, 0, len(frontier))
	for _, k := range frontier {
		queue = append(queue, item{key: k})
	}
	var longest []string
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.key] || len(it.chain) >= maxLifetimeDepth {
			continue
		}
		visited[it.key] = true
		fi := ls.prog.Funcs[it.key]
		if fi == nil || fi.Decl == nil {
			continue
		}
		next := append(append([]string{}, it.chain...), fi.Name)
		if len(next) > len(longest) {
			longest = next
		}
		if ls.clearsOf(fi)[tr.trackerID()] {
			return next, true
		}
		for _, k := range ls.calleesOf(fi) {
			if !visited[k] {
				queue = append(queue, item{key: k, chain: next})
			}
		}
	}
	return longest, false
}

// trackerID is the cache key for clear sets: the field key for struct
// trackers, a pointer-unique string for locals.
func (tr *trackerRef) trackerID() string {
	if tr.kind == trackLocalWG {
		return fmt.Sprintf("local:%p", tr.obj)
	}
	return tr.key
}

// clearsOf returns (computing on first use) the tracker IDs fi's body
// clears: bool fields assigned false, integer fields decremented, and
// WaitGroup fields Done'd. Function literal bodies are included — a
// clear inside a deferred closure still runs.
func (ls *lifetimeState) clearsOf(fi *FuncInfo) map[string]bool {
	if c, ok := ls.clears[fi.Key]; ok {
		return c
	}
	c := make(map[string]bool)
	collectClears(fi.Pkg, fi.Decl.Body, c)
	ls.clears[fi.Key] = c
	return c
}

// clearsInNode reports whether the node clears tr directly.
func clearsInNode(p *Package, n ast.Node, tr *trackerRef) bool {
	c := make(map[string]bool)
	collectClears(p, n, c)
	if c[tr.trackerID()] {
		return true
	}
	// Local WaitGroup Done: collectClears records field keys only, so
	// check idents here.
	if tr.kind == trackLocalWG {
		found := false
		ast.Inspect(n, func(nn ast.Node) bool {
			call, ok := nn.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.Uses[id] == tr.obj {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// collectClears records every tracker clear in n into out, keyed by
// field key.
func collectClears(p *Package, n ast.Node, out map[string]bool) {
	ast.Inspect(n, func(nn ast.Node) bool {
		switch v := nn.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key := fieldKeyOf(p, sel)
				if key == "" {
					continue
				}
				switch v.Tok {
				case token.SUB_ASSIGN:
					out[key] = true
				case token.ASSIGN:
					if len(v.Lhs) == len(v.Rhs) {
						if id, ok := ast.Unparen(v.Rhs[i]).(*ast.Ident); ok && id.Name == "false" {
							out[key] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if v.Tok != token.DEC {
				return true
			}
			if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
				if key := fieldKeyOf(p, sel); key != "" {
					out[key] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" || !isWaitGroupType(typeOf(p, sel.X)) {
				return true
			}
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				if key := fieldKeyOf(p, inner); key != "" {
					out[key] = true
				}
			}
		}
		return true
	})
}

// calleesOf returns (computing on first use) every statically resolvable
// callee key in fi's body, including calls inside function literals.
func (ls *lifetimeState) calleesOf(fi *FuncInfo) []string {
	if c, ok := ls.callees[fi.Key]; ok {
		return c
	}
	keys := calleeKeysIn(fi.Pkg, fi.Decl.Body)
	ls.callees[fi.Key] = keys
	return keys
}

func calleeKeysIn(p *Package, n ast.Node) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(n, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcObjOf(p, ast.Unparen(call.Fun)); fn != nil {
			if key := funcKey(fn); !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		return true
	})
	return out
}

// awaited reports whether the tracker has a join point.
func (ls *lifetimeState) awaited(fi *FuncInfo, tr *trackerRef) bool {
	switch tr.kind {
	case trackWG:
		return ls.wgWaitFields[tr.key]
	case trackLocalWG:
		return waitsOnObject(fi.Pkg, fi.Decl.Body, tr.obj)
	default:
		return ls.waitedFields[tr.key]
	}
}

// fieldKeyOf identifies a struct-field selector as "pkgpath.Type.field",
// or "" for anything that is not a field access on a named struct.
func fieldKeyOf(p *Package, sel *ast.SelectorExpr) string {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(typeOf(p, sel.X))
	if named == nil {
		return ""
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	return pkg + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// isWaitGroupType reports whether t (possibly behind a pointer) is
// sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isCondType reports whether t (possibly behind a pointer) is sync.Cond.
func isCondType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}
