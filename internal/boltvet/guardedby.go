package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy verifies the machine-readable field-guard vocabulary. Where
// lockcheck reads prose ("mu guards ... below") and checks a naming
// convention, guardedby reads explicit per-field annotations and checks
// every access site against the summary-backed lock-set analysis:
//
//	//boltvet:guardedby mu            — accessed only with mu (a
//	                                    sync.Mutex/RWMutex field of the
//	                                    same struct) held
//	//boltvet:guardedby atomic        — accessed only through sync/atomic
//	                                    (field methods for atomic.* types,
//	                                    &x.f operands otherwise)
//	//boltvet:guardedby none -- <why> — deliberately outside the regime;
//	                                    the reason is mandatory
//
// The annotation goes in the field's doc or line comment. Once one field
// of a struct is annotated, every mutable field of that struct must be
// (guard fields themselves — mutexes, conds, waitgroups — and embedded
// fields are exempt): partial annotation is reported, so the vocabulary
// cannot silently rot as fields are added.
//
// Mutex-guarded accesses are checked with the same structured abstract
// interpreter that powers lockorder: an access is legal only when the
// named mutex is provably held on every path to it. Exceptions, in order:
//
//   - the selector's root is a local the function itself constructed
//     (composite literal or new) — a fresh object is unshared, which is
//     what makes constructors like Open analyzable without annotations;
//   - the enclosing function is named *Locked: the access becomes an
//     entry obligation, propagated interprocedurally — every call site of
//     the *Locked function must hold the mutex (or be *Locked itself and
//     pass the obligation up), which is what turns the naming convention
//     from advisory into verified;
//   - an access after the function has released the mutex and before it
//     provably re-acquires it is reported outright (the unlock-then-
//     relock window), even inside *Locked methods.
//
// Soundness limits (shared with the summary engine, DESIGN.md §6a): lock
// identity is type-based, not instance-based; function-literal bodies and
// test files are not walked; calls the graph cannot resolve are opaque;
// fields reached through embedding are not matched to their annotations.
// The -race tier stays the dynamic backstop.
var GuardedBy = &Analyzer{
	Name:       "guardedby",
	Doc:        "verifies //boltvet:guardedby field annotations against the summary-backed lock-set analysis",
	RunProgram: runGuardedBy,
}

// guardedbyRe matches one annotation line in a field comment.
var guardedbyRe = regexp.MustCompile(`^//\s*boltvet:guardedby\s+(\w+)\s*(?:--\s*(\S.*))?$`)

// guardSpec is one field's parsed annotation.
type guardSpec struct {
	guard  string // mutex field name, "atomic", or "none"
	reason string
	pos    token.Pos
	// For mutex guards, the resolved lock key ("pkgpath.Struct.mu") and
	// the diagnostic labels.
	key        string
	structName string
	fieldName  string
}

// guardTable indexes annotations by "pkgpath.Struct.field".
type guardTable map[string]*guardSpec

// guardedAccess is one entry obligation of a *Locked function: a guarded
// field it (or a *Locked callee, transitively) touches without acquiring
// the mutex itself.
type guardedAccess struct {
	key   string
	spec  *guardSpec
	chain []string // call chain witness, empty for a direct access
	pos   token.Pos
}

func runGuardedBy(prog *Program) []Finding {
	var out []Finding
	table := make(guardTable)
	for _, p := range prog.Pkgs {
		collectGuardedBy(p, table, &out)
	}
	if len(table) == 0 {
		return out
	}
	checkAtomicSpecs(prog, table, &out)

	// Entry obligations of *Locked functions, to a fixed point: a *Locked
	// function inherits the unsatisfied obligations of the *Locked
	// functions it calls, so obligations flow up arbitrary chains.
	needs := make(map[*FuncInfo]map[string]*guardedAccess)
	funcs := prog.sortedFuncs()
	for pass := 0; pass < maxSummaryPasses; pass++ {
		changed := false
		for _, fi := range funcs {
			if fi.Decl == nil || funcInTestFile(fi) {
				continue
			}
			n, _ := walkGuardedAccesses(prog, fi, table, needs)
			if !needKeysEqual(needs[fi], n) {
				needs[fi] = n
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass against the stable obligation sets.
	for _, fi := range funcs {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		_, findings := walkGuardedAccesses(prog, fi, table, needs)
		out = append(out, findings...)
	}
	return out
}

// walkGuardedAccesses replays fi's body through the lock walker and
// classifies every annotated-field access and every call to a function
// with entry obligations. It returns fi's own obligations (nil unless fi
// is *Locked) and the findings for accesses nothing can justify.
func walkGuardedAccesses(prog *Program, fi *FuncInfo, table guardTable, needs map[*FuncInfo]map[string]*guardedAccess) (map[string]*guardedAccess, []Finding) {
	p := fi.Pkg
	isLocked := strings.HasSuffix(fi.Name, "Locked")
	fresh := freshLocals(p, fi.Decl)
	var localNeeds map[string]*guardedAccess
	var out []Finding

	need := func(acc *guardedAccess) {
		if localNeeds == nil {
			localNeeds = make(map[string]*guardedAccess)
		}
		if _, ok := localNeeds[acc.key]; !ok {
			localNeeds[acc.key] = acc
		}
	}
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "guardedby",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	w := newLockWalker(prog, fi, nil)
	w.onSelector = func(sel *ast.SelectorExpr, st *lockState) {
		spec := lookupGuardedField(p, sel, table)
		if spec == nil {
			return
		}
		if mode, held := st.held[spec.key]; held {
			if mode != lockEntry {
				return
			}
			// Held only by the *Locked declaration: an entry obligation
			// every caller must satisfy.
			need(&guardedAccess{key: spec.key, spec: spec, pos: sel.Sel.Pos()})
			return
		}
		if root := rootIdent(sel.X); root != nil && fresh[p.Info.Uses[root]] {
			return // locally constructed, unshared object
		}
		if st.released[spec.key] {
			report(sel.Sel.Pos(), "%s accesses %s.%s (//boltvet:guardedby %s) after releasing %s (unlock-then-relock window); re-acquire it first",
				fi.Name, spec.structName, spec.fieldName, spec.guard, spec.guard)
			return
		}
		if isLocked {
			need(&guardedAccess{key: spec.key, spec: spec, pos: sel.Sel.Pos()})
			return
		}
		report(sel.Sel.Pos(), "%s accesses %s.%s (//boltvet:guardedby %s) without holding %s; acquire it or rename the path *Locked",
			fi.Name, spec.structName, spec.fieldName, spec.guard, spec.guard)
	}
	w.onCall = func(cs *CallSite, st *lockState, deferred bool) {
		if deferred {
			return // execution-time state unknowable; lockcheck's trade
		}
		for _, target := range cs.Targets {
			callee := prog.Funcs[target]
			if callee == nil || callee == fi {
				continue
			}
			cn := needs[callee]
			if len(cn) == 0 {
				continue
			}
			for _, key := range sortedKeys(cn) {
				acc := cn[key]
				mode, held := st.held[key]
				if held && mode != lockEntry {
					continue
				}
				chain := append([]string{callee.Name}, acc.chain...)
				if (held && mode == lockEntry) || (isLocked && !st.released[key]) {
					need(&guardedAccess{key: key, spec: acc.spec, chain: chain, pos: cs.Call.Pos()})
					continue
				}
				report(cs.Call.Pos(), "%s calls %s, which accesses %s.%s (//boltvet:guardedby %s), without holding %s",
					fi.Name, strings.Join(chain, " -> "), acc.spec.structName, acc.spec.fieldName, acc.spec.guard, acc.spec.guard)
			}
		}
	}
	w.walkFrom(entryState(fi, table, isLocked))
	return localNeeds, out
}

// entryState builds the initial lock state: a *Locked method starts with
// every annotation-referenced mutex of its receiver struct held at
// lockEntry — the caller's declared hold — so unlock-then-relock loops
// join back to "held" instead of decaying to spurious window reports.
func entryState(fi *FuncInfo, table guardTable, isLocked bool) *lockState {
	st := newLockState()
	if !isLocked || fi.Decl.Recv == nil {
		return st
	}
	recvType := receiverTypeName(fi.Decl)
	pkgPath := ""
	if fi.Pkg.Types != nil {
		pkgPath = fi.Pkg.Types.Path()
	}
	for _, spec := range table {
		if spec.key != "" && spec.structName == recvType &&
			strings.HasPrefix(spec.key, pkgPath+"."+recvType+".") {
			st.held[spec.key] = lockEntry
		}
	}
	return st
}

// needKeysEqual compares obligation sets by key (chains refine within a
// stable key set; the fixed point only needs the keys, which grow
// monotonically).
func needKeysEqual(a, b map[string]*guardedAccess) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// lookupGuardedField resolves sel to a mutex-annotated field's spec, or
// nil (unannotated, atomic, or none specs check elsewhere or not at all).
func lookupGuardedField(p *Package, sel *ast.SelectorExpr, table guardTable) *guardSpec {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	named := namedOf(typeOf(p, sel.X))
	if named == nil {
		return nil
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	spec := table[pkg+"."+named.Obj().Name()+"."+fieldVar.Name()]
	if spec == nil || spec.guard == "atomic" || spec.guard == "none" {
		return nil
	}
	return spec
}

// rootIdent unwraps a selector chain's base to its root identifier
// (d.vs.current -> d), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// freshLocals returns the objects of local variables bound (with :=) to a
// value the function constructs itself — a composite literal, its
// address, or new(T). Such an object is unshared until published, so
// constructors may initialize its guarded fields lock-free.
func freshLocals(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	inspectSkipFuncLit(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Rhs {
			if !isFreshExpr(p, as.Rhs[i]) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
	})
	return fresh
}

func isFreshExpr(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// collectGuardedBy parses the annotations of every struct in p into
// table, reporting vocabulary errors: unknown guard names, none without a
// reason, and (once a struct opts in) unannotated mutable fields.
func collectGuardedBy(p *Package, table guardTable, out *[]Finding) {
	path := ""
	if p.Types != nil {
		path = p.Types.Path()
	}
	report := func(pos token.Pos, format string, args ...any) {
		*out = append(*out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "guardedby",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			type fieldInfo struct {
				name    string
				pos     token.Pos
				typeStr string
				spec    *guardSpec
			}
			var fields []fieldInfo
			mutexFields := make(map[string]bool)
			annotated := 0
			for _, field := range st.Fields.List {
				typeStr := typeExprString(field.Type)
				if strings.HasSuffix(typeStr, "sync.Mutex") || strings.HasSuffix(typeStr, "sync.RWMutex") {
					for _, name := range field.Names {
						mutexFields[name.Name] = true
					}
				}
				spec := parseGuardedByComment(field)
				if spec != nil {
					annotated++
				}
				for _, name := range field.Names {
					fields = append(fields, fieldInfo{name: name.Name, pos: name.Pos(), typeStr: typeStr, spec: spec})
				}
				if spec != nil && len(field.Names) == 0 {
					report(field.Pos(), "//boltvet:guardedby on an embedded field of %s is not supported; name the field", ts.Name.Name)
				}
			}
			for _, f := range fields {
				if f.spec == nil {
					if annotated > 0 && !guardExemptType(f.typeStr) {
						report(f.pos, "struct %s has //boltvet:guardedby annotations but field %q has none; annotate it (mutex name, atomic, or none -- <why>)",
							ts.Name.Name, f.name)
					}
					continue
				}
				spec := *f.spec // fields sharing one decl get their own copy
				spec.structName = ts.Name.Name
				spec.fieldName = f.name
				switch spec.guard {
				case "none":
					if spec.reason == "" {
						report(f.pos, "//boltvet:guardedby none on %s.%s requires a reason; write `//boltvet:guardedby none -- <why>`",
							ts.Name.Name, f.name)
						continue
					}
				case "atomic":
				default:
					if !mutexFields[spec.guard] {
						report(f.pos, "//boltvet:guardedby on %s.%s names %q, which is not a sync.Mutex/RWMutex field of %s",
							ts.Name.Name, f.name, spec.guard, ts.Name.Name)
						continue
					}
					spec.key = path + "." + ts.Name.Name + "." + spec.guard
				}
				table[path+"."+ts.Name.Name+"."+f.name] = &spec
			}
			return true
		})
	}
}

// parseGuardedByComment extracts the (last) annotation line from a
// field's doc or trailing comment.
func parseGuardedByComment(f *ast.Field) *guardSpec {
	var spec *guardSpec
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			if m := guardedbyRe.FindStringSubmatch(c.Text); m != nil {
				spec = &guardSpec{guard: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
			}
		}
	}
	scan(f.Doc)
	scan(f.Comment)
	return spec
}

// guardExemptType reports types that are guards or synchronization
// primitives themselves and so need no annotation.
func guardExemptType(typeStr string) bool {
	for _, suffix := range []string{"sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Cond", "sync.Once"} {
		if strings.HasSuffix(typeStr, suffix) {
			return true
		}
	}
	return false
}

// checkAtomicSpecs enforces `//boltvet:guardedby atomic` on plain-typed
// fields: every access must be an &x.f operand for the sync/atomic
// functions. Fields of sync/atomic types are already fully policed by
// atomicfield and skipped here.
func checkAtomicSpecs(prog *Program, table guardTable, out *[]Finding) {
	hasAtomic := false
	for _, spec := range table {
		if spec.guard == "atomic" {
			hasAtomic = true
			break
		}
	}
	if !hasAtomic {
		return
	}
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			if isTestFile(p, file) {
				continue
			}
			parents := buildParentMap(file)
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				spec, fieldVar := lookupAtomicSpec(p, sel, table)
				if spec == nil || isAtomicNamed(fieldVar.Type()) {
					return true
				}
				parent := parents[sel]
				if pp, ok := parent.(*ast.ParenExpr); ok {
					parent = parents[pp]
				}
				if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
					return true
				}
				*out = append(*out, Finding{
					Pos:      p.Fset.Position(sel.Sel.Pos()),
					Analyzer: "guardedby",
					Message: fmt.Sprintf("field %s.%s is //boltvet:guardedby atomic; access it only as &%s through sync/atomic functions",
						spec.structName, spec.fieldName, spec.fieldName),
				})
				return true
			})
		}
	}
}

func lookupAtomicSpec(p *Package, sel *ast.SelectorExpr, table guardTable) (*guardSpec, *types.Var) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	named := namedOf(typeOf(p, sel.X))
	if named == nil {
		return nil, nil
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	spec := table[pkg+"."+named.Obj().Name()+"."+fieldVar.Name()]
	if spec == nil || spec.guard != "atomic" {
		return nil, nil
	}
	return spec, fieldVar
}
