package boltvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadConfig controls package discovery and parsing.
type LoadConfig struct {
	// Tests includes *_test.go files (both in-package and external test
	// packages).
	Tests bool
	// BuildTags are extra build constraints honoured during file
	// selection (e.g. "boltinvariants").
	BuildTags []string
}

// Load discovers, parses, and type-checks the packages named by patterns.
// A pattern is either a directory path or a path ending in "/..." which
// walks recursively. Directories named testdata, vendor, or starting with
// "." or "_" are skipped during walks but analyzed when named explicitly
// (so the fixture corpus can be vetted on purpose).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				addDir(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("boltvet: walk %s: %w", root, err)
			}
		} else {
			addDir(pat)
		}
	}
	sort.Strings(dirs)

	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags, cfg.BuildTags...)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		bp, err := ctx.ImportDir(dir, 0)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, fmt.Errorf("boltvet: %s: %w", dir, err)
		}
		importPath := resolveImportPath(dir, bp.ImportPath)
		names := append([]string(nil), bp.GoFiles...)
		if cfg.Tests {
			names = append(names, bp.TestGoFiles...)
		}
		if p, err := loadFiles(fset, imp, dir, importPath, names); err != nil {
			return nil, err
		} else if p != nil {
			pkgs = append(pkgs, p)
		}
		if cfg.Tests && len(bp.XTestGoFiles) > 0 {
			p, err := loadFiles(fset, imp, dir, importPath+"_test", bp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			if p != nil {
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}

// resolveImportPath returns the module-qualified import path of dir.
// Outside GOPATH, build.ImportDir reports "." — useless as a cross-package
// identity — so the path is derived from the nearest go.mod: module path
// plus the directory's position under the module root. The interprocedural
// analyzers rely on this: a function or mutex must get the same string key
// whether its package was loaded directly or reached through an import.
func resolveImportPath(dir, fallback string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return fallback
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if mod, ok := strings.CutPrefix(line, "module "); ok {
					mod = strings.TrimSpace(mod)
					rel, err := filepath.Rel(root, abs)
					if err != nil {
						return fallback
					}
					if rel == "." {
						return mod
					}
					return mod + "/" + filepath.ToSlash(rel)
				}
			}
			return fallback
		}
		parent := filepath.Dir(root)
		if parent == root {
			return fallback
		}
		root = parent
	}
}

func loadFiles(fset *token.FileSet, imp types.Importer, dir, importPath string, names []string) (*Package, error) {
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("boltvet: parse: %w", err)
		}
		files = append(files, f)
	}
	p := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tp, err := conf.Check(importPath, fset, files, p.Info)
	p.Types = tp
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	return p, nil
}
