package boltvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderBuildTags pins the build-tag contract: a file behind
// //go:build boltinvariants must be excluded by a plain Load and included —
// and analyzed, not merely parsed — when the tag is passed. The tagged
// fixture's only syncerr violation lives in the tagged file, so "silently
// skipped" and "clean" are distinguishable.
func TestLoaderBuildTags(t *testing.T) {
	dir := filepath.Join("testdata", "src", "tagged")

	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Fatalf("untagged load parsed %d files, want 1 (inv.go must be excluded)", n)
	}
	if findings := RunAll(pkgs, []*Analyzer{SyncErr}); len(findings) != 0 {
		t.Fatalf("untagged load produced findings: %v", findings)
	}

	pkgs, err = Load(LoadConfig{BuildTags: []string{"boltinvariants"}}, dir)
	if err != nil {
		t.Fatalf("tagged load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 2 {
		t.Fatalf("tagged load parsed %d files, want 2 (inv.go silently skipped)", n)
	}
	findings := RunAll(pkgs, []*Analyzer{SyncErr})
	if len(findings) != 1 {
		t.Fatalf("tagged load: got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if filepath.Base(f.Pos.Filename) != "inv.go" {
		t.Errorf("finding at %s, want it in inv.go", f.Pos)
	}
	if !strings.Contains(f.Message, "result of f.Sync is discarded") {
		t.Errorf("finding = %s, want the discarded-Sync report", f)
	}
}

// TestLoaderImportPaths pins resolveImportPath: outside GOPATH,
// build.ImportDir degenerates to ".", and the interprocedural analyzers
// need module-qualified paths so a mutex or function gets one key across
// type-check universes.
func TestLoaderImportPaths(t *testing.T) {
	dir := filepath.Join("testdata", "src", "tagged")
	pkgs, err := Load(LoadConfig{}, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	const want = "github.com/bolt-lsm/bolt/internal/boltvet/testdata/src/tagged"
	if got := pkgs[0].ImportPath; got != want {
		t.Errorf("ImportPath = %q, want %q", got, want)
	}
}
