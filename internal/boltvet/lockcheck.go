package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the repo's *Locked naming convention around
// mutex-guarded struct fields.
//
// Guarded fields are declared in the source, not in the analyzer:
//
//   - A sync.Mutex/sync.RWMutex field whose comment matches
//     "guards ... below" marks every subsequent field of the struct as
//     guarded by it, except fields of atomic/mutex/waitgroup types and
//     fields whose comment contains "not guarded".
//   - A field comment "guarded by <name>" attaches the field to that
//     mutex explicitly, wherever it is declared.
//
// Rules, per method of a struct with guarded fields:
//
//  1. A method that touches a guarded field must either acquire the
//     guarding mutex somewhere in its body or be named *Locked
//     (declaring that the caller holds it).
//
//  2. A *Locked method must not acquire a guarding mutex it is declared
//     to hold: a Lock/RLock on it with no lexically-preceding
//     Unlock/RUnlock is a self-deadlock. (Unlock-then-relock around I/O
//     is the established pattern and stays legal.)
//
//  3. (interprocedural, via the summary engine) A *Locked method must not
//     call — through any chain — a function that acquires a mutex the
//     method's name declares held, unless the path provably releases it
//     first. This is what catches a *Locked helper reaching a public API
//     that re-locks the engine mutex three calls deep.
//
// The lexical rules see direct receiver accesses (recv.field) only;
// aliased or chained access is out of scope and stays on the runtime race
// detector.
var LockCheck = &Analyzer{
	Name:       "lockcheck",
	Doc:        "enforces mutex acquisition or the *Locked suffix for guarded-field access",
	Run:        runLockCheck,
	RunProgram: runLockCheckProgram,
}

// runLockCheckProgram implements rule 3. For each *Locked method it seeds
// the abstract walker with the mutexes the name declares held (mutexes
// guarding fields the method touches, plus the struct's single guarding
// mutex when there is exactly one) and replays the body: any call whose
// summary acquires a held mutex without first releasing it is a
// self-deadlock the caller cannot see.
func runLockCheckProgram(prog *Program) []Finding {
	guardsByPkg := make(map[*Package]map[string]structGuards)
	var out []Finding
	seen := make(map[string]bool)

	for _, fi := range prog.sortedFuncs() {
		if fi.Decl == nil || funcInTestFile(fi) || !strings.HasSuffix(fi.Name, "Locked") {
			continue
		}
		guards, ok := guardsByPkg[fi.Pkg]
		if !ok {
			guards = collectGuards(fi.Pkg)
			guardsByPkg[fi.Pkg] = guards
		}
		recvType := receiverTypeName(fi.Decl)
		g := guards[recvType]
		if g == nil {
			continue
		}
		held := declaredHeldKeys(fi, recvType, g)
		if len(held) == 0 {
			continue
		}
		fi := fi
		st := newLockState()
		for key := range held {
			st.held[key] = lockWrite
		}
		w := newLockWalker(prog, fi, func(ev acqEvent) {
			if ev.deferred || len(ev.chain) == 0 {
				return // direct re-locks are rule 2's lexical report
			}
			if _, h := ev.held[ev.key]; !h || ev.calleeReleased[ev.key] {
				return
			}
			f := Finding{
				Pos:      fi.Pkg.Fset.Position(ev.pos),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf("*Locked method %s calls %s, which acquires %s its name declares already held (self-deadlock); release it first or restructure",
					fi.Name, strings.Join(ev.chain, " -> "), shortLockKey(ev.key)),
			}
			if !seen[f.String()] {
				seen[f.String()] = true
				out = append(out, f)
			}
		})
		w.walkFrom(st)
	}
	return out
}

// declaredHeldKeys maps a *Locked method to the lock keys its name
// declares held: the mutexes guarding fields it accesses, plus the
// struct's guarding mutex when the struct has exactly one.
func declaredHeldKeys(fi *FuncInfo, recvType string, g structGuards) map[string]bool {
	pkgPath := ""
	if fi.Pkg.Types != nil {
		pkgPath = fi.Pkg.Types.Path()
	}
	mutexes := make(map[string]bool)
	distinct := make(map[string]bool)
	for _, mu := range g {
		distinct[mu] = true
	}
	if len(distinct) == 1 {
		for mu := range distinct {
			mutexes[mu] = true
		}
	}
	if recvObj := receiverObject(fi.Pkg, fi.Decl); recvObj != nil {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && isReceiverIdent(fi.Pkg, sel.X, recvObj) {
				if mu, guarded := g[sel.Sel.Name]; guarded {
					mutexes[mu] = true
				}
			}
			return true
		})
	}
	keys := make(map[string]bool, len(mutexes))
	for mu := range mutexes {
		keys[pkgPath+"."+recvType+"."+mu] = true
	}
	return keys
}

var (
	guardsBelowRe = regexp.MustCompile(`(?i)\bguards\b.*\bbelow\b`)
	guardedByRe   = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)
	notGuardedRe  = regexp.MustCompile(`(?i)\bnot guarded\b`)
)

// structGuards maps guarded field name -> guarding mutex field name.
type structGuards map[string]string

func runLockCheck(p *Package) []Finding {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvType := receiverTypeName(fd)
			g := guards[recvType]
			if g == nil {
				continue
			}
			out = append(out, checkMethod(p, fd, g)...)
		}
	}
	return out
}

// collectGuards finds guarded-field declarations in the package's structs.
func collectGuards(p *Package) map[string]structGuards {
	all := make(map[string]structGuards)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			g := make(structGuards)
			guardAllMutex := "" // active "guards ... below" mutex, if any
			for _, field := range st.Fields.List {
				text := fieldCommentText(field)
				typeStr := typeExprString(field.Type)
				isMutex := strings.HasSuffix(typeStr, "sync.Mutex") || strings.HasSuffix(typeStr, "sync.RWMutex")
				if isMutex && len(field.Names) == 1 && guardsBelowRe.MatchString(text) {
					guardAllMutex = field.Names[0].Name
					continue
				}
				if m := guardedByRe.FindStringSubmatch(text); m != nil {
					for _, name := range field.Names {
						g[name.Name] = m[1]
					}
					continue
				}
				if guardAllMutex == "" || len(field.Names) == 0 {
					continue
				}
				if isMutex || notGuardedRe.MatchString(text) ||
					strings.Contains(typeStr, "atomic.") || strings.Contains(typeStr, "sync.WaitGroup") {
					continue
				}
				for _, name := range field.Names {
					g[name.Name] = guardAllMutex
				}
			}
			if len(g) > 0 {
				all[ts.Name.Name] = g
			}
			return true
		})
	}
	return all
}

func fieldCommentText(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// typeExprString renders a field type well enough to recognize mutexes
// and atomics ("sync.Mutex", "*sync.Cond", "atomic.Int64", ...).
func typeExprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return typeExprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + typeExprString(v.X)
	case *ast.ArrayType:
		return "[]" + typeExprString(v.Elt)
	case *ast.MapType:
		return "map[" + typeExprString(v.Key) + "]" + typeExprString(v.Value)
	case *ast.IndexExpr:
		return typeExprString(v.X)
	case *ast.IndexListExpr:
		return typeExprString(v.X)
	}
	return ""
}

type mutexOp struct {
	pos     token.Pos
	mutex   string
	acquire bool // Lock/RLock vs Unlock/RUnlock
}

func checkMethod(p *Package, fd *ast.FuncDecl, g structGuards) []Finding {
	recvObj := receiverObject(p, fd)
	if recvObj == nil {
		return nil
	}
	isLocked := strings.HasSuffix(fd.Name.Name, "Locked")

	type access struct {
		pos   token.Pos
		field string
		mutex string
	}
	var accesses []access
	var ops []mutexOp

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// recv.mu.Lock() / recv.mu.Unlock() etc.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && isReceiverIdent(p, inner.X, recvObj) {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						ops = append(ops, mutexOp{call.Pos(), inner.Sel.Name, true})
						return true
					case "Unlock", "RUnlock":
						ops = append(ops, mutexOp{call.Pos(), inner.Sel.Name, false})
						return true
					}
				}
			}
		}
		// recv.field access.
		if sel, ok := n.(*ast.SelectorExpr); ok && isReceiverIdent(p, sel.X, recvObj) {
			if mu, guarded := g[sel.Sel.Name]; guarded {
				accesses = append(accesses, access{sel.Pos(), sel.Sel.Name, mu})
			}
		}
		return true
	})

	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "lockcheck",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	if !isLocked {
		// Rule 1: must acquire each mutex whose fields it touches.
		reported := make(map[string]bool)
		for _, a := range accesses {
			if reported[a.mutex] {
				continue
			}
			acquired := false
			for _, op := range ops {
				if op.mutex == a.mutex && op.acquire {
					acquired = true
					break
				}
			}
			if !acquired {
				reported[a.mutex] = true
				report(a.pos, "%s accesses %s-guarded field %q without acquiring %s; lock it or rename the method %sLocked",
					fd.Name.Name, a.mutex, a.field, a.mutex, fd.Name.Name)
			}
		}
		return out
	}

	// Rule 2: *Locked methods hold their mutexes already; a Lock with no
	// preceding Unlock on the same mutex would self-deadlock.
	held := make(map[string]bool)
	for _, a := range accesses {
		held[a.mutex] = true
	}
	flagged := make(map[string]bool)
	for mu := range held {
		var first *mutexOp
		for i := range ops {
			if ops[i].mutex == mu {
				first = &ops[i]
				break
			}
		}
		if first != nil && first.acquire && !flagged[mu] {
			flagged[mu] = true
			report(first.pos, "*Locked method %s acquires %s, which its name declares already held (self-deadlock); drop the Lock or the suffix",
				fd.Name.Name, mu)
		}
	}
	return out
}

// receiverObject returns the types.Object of fd's receiver variable.
func receiverObject(p *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}

func isReceiverIdent(p *Package, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && p.Info.Uses[id] == recv
}
