package boltvet

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock analyzer. Using the summary
// engine it reports:
//
//  1. Double acquisition: a path that acquires a non-reentrant mutex it
//     already holds, through any call chain (sync.Mutex and sync.RWMutex
//     self-deadlock; only RLock-under-RLock is tolerated, though even that
//     can deadlock against a queued writer — the -race/stress tier owns
//     that case).
//  2. Lock-order cycles: the global acquired-while-holding graph (edge
//     A→B when some path acquires B while holding A) must stay acyclic;
//     a cycle is a potential cross-goroutine deadlock.
//
// A callee that releases a lock before re-acquiring it (the engine's
// logAndApplyLocked unlock-then-relock pattern) contributes neither a
// double-acquisition nor an order edge for that lock: the summary's
// releasedBefore set filters both.
//
// Functions declared in _test.go files are skipped: tests exercise locks
// under the runtime race tier, and fixture-style helpers would pollute the
// global order graph.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "reports double mutex acquisition through any call chain and cycles in the lock-acquisition-order graph",
	RunProgram: runLockOrder,
}

// orderEdge is one observed "acquired to while holding from" pair.
type orderEdge struct {
	from, to string
	fn       string // function where observed
	where    string // file:line witness
	chain    []string
}

func runLockOrder(prog *Program) []Finding {
	var out []Finding
	seen := make(map[string]bool) // dedup: loop bodies walk twice
	report := func(p *Package, pos token.Pos, format string, args ...any) {
		f := Finding{Pos: p.Fset.Position(pos), Analyzer: "lockorder", Message: fmt.Sprintf(format, args...)}
		if !seen[f.String()] {
			seen[f.String()] = true
			out = append(out, f)
		}
	}

	edges := make(map[string]map[string]orderEdge)
	addEdge := func(e orderEdge) {
		if edges[e.from] == nil {
			edges[e.from] = make(map[string]orderEdge)
		}
		if _, ok := edges[e.from][e.to]; !ok {
			edges[e.from][e.to] = e
		}
	}

	for _, fi := range prog.sortedFuncs() {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		fi := fi
		w := newLockWalker(prog, fi, func(ev acqEvent) {
			if ev.deferred {
				return // runs at return time; the held snapshot is wrong
			}
			if mode, held := ev.held[ev.key]; held && !ev.calleeReleased[ev.key] {
				if !(mode == lockRead && ev.read) {
					report(fi.Pkg, ev.pos, "%s acquires %s while already holding it%s (self-deadlock)",
						fi.Name, shortLockKey(ev.key), chainSuffix(ev.chain))
				}
			}
			for held := range ev.held {
				if held == ev.key || ev.calleeReleased[held] {
					continue
				}
				addEdge(orderEdge{
					from:  held,
					to:    ev.key,
					fn:    fi.Name,
					where: posOf(fi.Pkg, ev.pos),
					chain: ev.chain,
				})
			}
		})
		w.walk()
	}

	out = append(out, lockCycleFindings(prog, edges)...)
	return out
}

// lockCycleFindings finds strongly connected components of size >= 2 in
// the order graph and reports each once, with an edge witness per hop.
func lockCycleFindings(prog *Program, edges map[string]map[string]orderEdge) []Finding {
	// Tarjan's SCC over the (small) lock-key graph.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	nodes := sortedKeys(edges)
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(edges[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	var out []Finding
	for _, scc := range sccs {
		inSCC := make(map[string]bool, len(scc))
		for _, k := range scc {
			inSCC[k] = true
		}
		var hops []string
		var first *orderEdge
		for _, from := range scc {
			for _, to := range sortedKeys(edges[from]) {
				if !inSCC[to] {
					continue
				}
				e := edges[from][to]
				if first == nil {
					e := e
					first = &e
				}
				hops = append(hops, fmt.Sprintf("%s->%s in %s (%s)",
					shortLockKey(from), shortLockKey(to), e.fn, e.where))
			}
		}
		short := make([]string, len(scc))
		for i, k := range scc {
			short[i] = shortLockKey(k)
		}
		out = append(out, Finding{
			Pos:      findingPos(prog, first),
			Analyzer: "lockorder",
			Message: fmt.Sprintf("lock-order cycle among {%s}: %s (potential deadlock; pick one global order)",
				strings.Join(short, ", "), strings.Join(hops, "; ")),
		})
	}
	return out
}

// findingPos parses an edge witness back into a token.Position for the
// cycle report (witnesses are "file:line" strings).
func findingPos(prog *Program, e *orderEdge) token.Position {
	if e == nil {
		return token.Position{}
	}
	pos := token.Position{Filename: e.where}
	if i := strings.LastIndex(e.where, ":"); i >= 0 {
		pos.Filename = e.where[:i]
		fmt.Sscanf(e.where[i+1:], "%d", &pos.Line)
	}
	pos.Column = 1
	return pos
}

// chainSuffix renders a call-chain witness (" via a -> b") or "".
func chainSuffix(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return " via " + strings.Join(chain, " -> ")
}

// funcInTestFile reports whether fi's declaration lives in a _test.go file.
func funcInTestFile(fi *FuncInfo) bool {
	return strings.HasSuffix(fi.Pkg.Fset.Position(fi.Decl.Pos()).Filename, "_test.go")
}
