package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MustClose tracks resource obligations: values of a type annotated
//
//	//boltvet:mustclose
//
// (in the type declaration's doc comment) carry a Close/Release
// obligation from their creation to a discharge, and a creation no path
// discharges is a leak finding — the static twin of the runtime fd-leak
// tests. Iterators, table readers, WAL writers, and vfs files are the
// annotated population in this repo.
//
// A creation is any call whose result includes an obligated type, or a
// composite literal of one. The obligation is discharged when the value
// (or any local alias of it, tracked flow-insensitively):
//
//   - has a discharge method called on it (Close, Release, Unref, Abort,
//     Finish — deferred or not),
//   - is returned (ownership transfers to the caller),
//   - is stored into a field, map, slice element, composite literal, or
//     sent on a channel (an owner object takes over),
//   - escapes into a function literal or behind & (lifetime unknowable),
//   - or is passed to a call that discharges that parameter — computed
//     interprocedurally: each function gets a per-parameter discharge
//     summary, iterated with the call graph to a fixed point, so a value
//     handed down a helper chain that never closes it is reported at the
//     creation with the forwarding chain as witness.
//
// Calls the graph cannot resolve (stdlib, builtins, function values) are
// assumed to take ownership: false negatives are cheaper than false
// positives that train people to ignore the analyzer. Test files are
// skipped (the runtime leak tests own them); error-path leaks inside a
// function that closes on the happy path are invisible to the
// flow-insensitive discharge check (documented soundness limit).
var MustClose = &Analyzer{
	Name:       "mustclose",
	Doc:        "tracks Close/Release obligations on //boltvet:mustclose types from creation to discharge",
	RunProgram: runMustClose,
}

var mustcloseRe = regexp.MustCompile(`^//\s*boltvet:mustclose\s*(?:--\s*\S.*)?$`)

// dischargeMethodNames are the method names that settle an obligation
// when called on the value.
var dischargeMethodNames = map[string]bool{
	"close": true, "release": true, "unref": true, "abort": true, "finish": true,
}

func isDischargeMethod(name string) bool {
	return dischargeMethodNames[strings.ToLower(name)]
}

// paramFate is one function's discharge summary entry for one parameter.
type paramFate struct {
	discharges bool
	// forward names the known callees the parameter was handed to without
	// any of them discharging it (the witness chain for leak reports).
	forward []string
}

func runMustClose(prog *Program) []Finding {
	obligated := collectMustClose(prog)
	if len(obligated) == 0 {
		return nil
	}

	// Per-parameter discharge summaries, to a fixed point: a function
	// discharges a parameter if it closes/stores/returns it, or hands it
	// to a callee that does.
	fates := make(map[string]map[int]*paramFate)
	funcs := prog.sortedFuncs()
	for pass := 0; pass < maxSummaryPasses; pass++ {
		changed := false
		for _, fi := range funcs {
			if fi.Decl == nil || funcInTestFile(fi) {
				continue
			}
			nf := paramFates(prog, fi, obligated, fates)
			if !paramFatesEqual(fates[fi.Key], nf) {
				fates[fi.Key] = nf
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var out []Finding
	for _, fi := range funcs {
		if fi.Decl == nil || funcInTestFile(fi) {
			continue
		}
		out = append(out, checkCreations(prog, fi, obligated, fates)...)
	}
	return out
}

// collectMustClose gathers annotated type names ("pkgpath.Name") across
// the program.
func collectMustClose(prog *Program) map[string]bool {
	set := make(map[string]bool)
	for _, p := range prog.Pkgs {
		path := ""
		if p.Types != nil {
			path = p.Types.Path()
		}
		for _, file := range p.Files {
			if isTestFile(p, file) {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
					if len(gd.Specs) == 1 {
						groups = append(groups, gd.Doc)
					}
					for _, cg := range groups {
						if cg == nil {
							continue
						}
						for _, c := range cg.List {
							if mustcloseRe.MatchString(c.Text) {
								set[path+"."+ts.Name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return set
}

// obligatedNamed resolves t (through pointers and aliases) to an
// annotated named type, or nil.
func obligatedNamed(t types.Type, obligated map[string]bool) *types.Named {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Path()
	}
	if obligated[pkg+"."+named.Obj().Name()] {
		return named
	}
	return nil
}

// paramFates computes fi's discharge summary: for each parameter of
// obligated type, whether fi settles its obligation.
func paramFates(prog *Program, fi *FuncInfo, obligated map[string]bool, fates map[string]map[int]*paramFate) map[int]*paramFate {
	p := fi.Pkg
	if fi.Decl.Type.Params == nil {
		return nil
	}
	var out map[int]*paramFate
	idx := 0
	for _, field := range fi.Decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		for i := 0; i < n; i++ {
			pos := idx
			idx++
			if len(field.Names) == 0 {
				continue // unnamed: nothing to track, callers see no discharge
			}
			name := field.Names[i]
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if slice, ok := t.Underlying().(*types.Slice); ok {
				t = slice.Elem() // variadic or slice-of-obligated parameter
			}
			if obligatedNamed(t, obligated) == nil {
				continue
			}
			fate := valueFate(prog, fi, map[types.Object]bool{obj: true}, fates)
			if out == nil {
				out = make(map[int]*paramFate)
			}
			out[pos] = fate
		}
	}
	return out
}

func paramFatesEqual(a, b map[int]*paramFate) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.discharges != bv.discharges {
			return false
		}
	}
	return true
}

// valueFate decides how a set of aliased locals holding one obligated
// value is used in fi: discharged, or leaked with a forwarding witness.
func valueFate(prog *Program, fi *FuncInfo, objs map[types.Object]bool, fates map[string]map[int]*paramFate) *paramFate {
	p := fi.Pkg
	parents := buildParentMap(fi.Decl.Body)
	sites := make(map[*ast.CallExpr]*CallSite, len(fi.Calls))
	for _, cs := range fi.Calls {
		sites[cs.Call] = cs
	}

	// Alias propagation: a plain var-to-var copy carries the obligation.
	for {
		grew := false
		inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Rhs {
				rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				robj := p.Info.Uses[rid]
				if robj == nil || !objs[robj] {
					continue
				}
				if lid, ok := as.Lhs[i].(*ast.Ident); ok && lid.Name != "_" {
					lobj := p.Info.Defs[lid]
					if lobj == nil {
						lobj = p.Info.Uses[lid]
					}
					if lobj != nil && !objs[lobj] {
						objs[lobj] = true
						grew = true
					}
				}
			}
		})
		if !grew {
			break
		}
	}

	fate := &paramFate{}
	// Escape into a function literal: lifetime unknowable, assume settled.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
						fate.discharges = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	if fate.discharges {
		return fate
	}

	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		if fate.discharges {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || !objs[obj] {
			return
		}
		parent := parents[id]
		if pp, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[pp]
		}
		switch ctx := parent.(type) {
		case *ast.SelectorExpr:
			if ctx.X == id && isDischargeMethod(ctx.Sel.Name) {
				fate.discharges = true
			}
		case *ast.ReturnStmt:
			fate.discharges = true
		case *ast.AssignStmt:
			for _, l := range ctx.Lhs {
				if l == id {
					return // write target
				}
			}
			for i, r := range ctx.Rhs {
				if ast.Unparen(r) == id && i < len(ctx.Lhs) {
					if _, isIdent := ctx.Lhs[i].(*ast.Ident); !isIdent {
						fate.discharges = true // stored into a field/element
					}
					return // var-to-var copies handled by aliasing
				}
			}
		case *ast.CallExpr:
			if ctx.Fun == id {
				return // calling a function value, not passing the value
			}
			discharged, forward := callDischarges(prog, p, ctx, id, sites, fates)
			if discharged {
				fate.discharges = true
			} else if fate.forward == nil {
				fate.forward = forward
			}
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			fate.discharges = true
		case *ast.UnaryExpr:
			if ctx.Op == token.AND {
				fate.discharges = true
			}
		}
	})
	return fate
}

// callDischarges decides whether passing id as an argument of call
// settles the obligation: yes for opaque callees (assumed to take
// ownership) and for any resolved callee whose summary discharges that
// parameter; otherwise the known-callee chain is the leak witness.
func callDischarges(prog *Program, p *Package, call *ast.CallExpr, id *ast.Ident, sites map[*ast.CallExpr]*CallSite, fates map[string]map[int]*paramFate) (bool, []string) {
	argPos := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == id {
			argPos = i
			break
		}
	}
	if argPos < 0 {
		return true, nil // inside a nested expression: out of scope, assume settled
	}
	cs, ok := sites[call]
	if !ok {
		return true, nil // unresolved callee: assumed to take ownership
	}
	var forward []string
	for _, target := range cs.Targets {
		callee := prog.Funcs[target]
		if callee == nil || callee.Decl == nil {
			return true, nil // imported body unseen: assume ownership
		}
		pos := argPos
		if np := numParams(callee.Decl); np > 0 && pos >= np {
			pos = np - 1 // variadic tail
		}
		f := fates[callee.Key][pos]
		if f != nil && f.discharges {
			return true, nil
		}
		if forward == nil {
			forward = []string{callee.Name}
			if f != nil {
				forward = append(forward, f.forward...)
			}
		}
	}
	return false, forward
}

func numParams(fd *ast.FuncDecl) int {
	if fd.Type.Params == nil {
		return 0
	}
	n := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// checkCreations reports fi's creations of obligated values that no path
// discharges.
func checkCreations(prog *Program, fi *FuncInfo, obligated map[string]bool, fates map[string]map[int]*paramFate) []Finding {
	p := fi.Pkg
	parents := buildParentMap(fi.Decl.Body)
	sites := make(map[*ast.CallExpr]*CallSite, len(fi.Calls))
	for _, cs := range fi.Calls {
		sites[cs.Call] = cs
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "mustclose",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		var creation ast.Expr
		var label, typeName string
		var resultIdx []int // obligated positions in a call's result tuple
		switch v := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[v.Fun]; ok && tv.IsType() {
				return // conversion
			}
			idx, name := obligatedResults(p, v, obligated)
			if len(idx) == 0 {
				return
			}
			creation, label, typeName, resultIdx = v, exprString(v.Fun), name, idx
		case *ast.CompositeLit:
			named := obligatedNamed(typeOf(p, v), obligated)
			if named == nil {
				return
			}
			creation, label, typeName = v, typeLabel(typeOf(p, v)), named.Obj().Name()
			if u, ok := parents[v].(*ast.UnaryExpr); ok && u.Op == token.AND {
				creation = u // classify from the &T{...} expression
			}
		default:
			return
		}

		parent := parents[creation]
		if pp, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[pp]
		}
		switch ctx := parent.(type) {
		case *ast.ExprStmt:
			report(creation.Pos(), "result of %s is a %s (//boltvet:mustclose) but is discarded; close it or store it", label, typeName)
		case *ast.AssignStmt:
			lhs := obligatedLhs(ctx, creation, resultIdx)
			for _, l := range lhs {
				lid, ok := l.(*ast.Ident)
				if !ok {
					continue // stored into a field/element: transferred
				}
				if lid.Name == "_" {
					report(creation.Pos(), "result of %s is a %s (//boltvet:mustclose) but is discarded as _; close it or store it", label, typeName)
					continue
				}
				obj := p.Info.Defs[lid]
				if obj == nil {
					obj = p.Info.Uses[lid]
				}
				if obj == nil {
					continue
				}
				fate := valueFate(prog, fi, map[types.Object]bool{obj: true}, fates)
				if !fate.discharges {
					msg := fmt.Sprintf("%s returned by %s is never closed, released, stored, or returned by %s", lid.Name, label, fi.Name)
					if len(fate.forward) > 0 {
						msg += fmt.Sprintf(" (passed to %s, which never closes it)", strings.Join(fate.forward, " -> "))
					}
					report(creation.Pos(), "%s", msg)
				}
			}
		case *ast.CallExpr:
			if discharged, forward := creationArgDischarges(prog, ctx, creation, sites, fates); !discharged {
				report(creation.Pos(), "result of %s is a %s (//boltvet:mustclose) passed to %s, which never closes or stores it",
					label, typeName, strings.Join(forward, " -> "))
			}
		case *ast.ValueSpec:
			for i, val := range ctx.Values {
				if ast.Unparen(val) != creation && val != creation {
					continue
				}
				if i < len(ctx.Names) {
					obj := p.Info.Defs[ctx.Names[i]]
					if obj == nil {
						continue
					}
					fate := valueFate(prog, fi, map[types.Object]bool{obj: true}, fates)
					if !fate.discharges {
						msg := fmt.Sprintf("%s returned by %s is never closed, released, stored, or returned by %s", ctx.Names[i].Name, label, fi.Name)
						if len(fate.forward) > 0 {
							msg += fmt.Sprintf(" (passed to %s, which never closes it)", strings.Join(fate.forward, " -> "))
						}
						report(creation.Pos(), "%s", msg)
					}
				}
			}
		}
		// Return, composite literal, send, &: ownership transfers; other
		// contexts (comparisons, type asserts) are conservatively silent.
	})
	return out
}

// obligatedResults returns the positions of call's results whose type is
// obligated, plus a label for the (first) obligated type.
func obligatedResults(p *Package, call *ast.CallExpr, obligated map[string]bool) ([]int, string) {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil, ""
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		var idx []int
		name := ""
		for i := 0; i < t.Len(); i++ {
			if named := obligatedNamed(t.At(i).Type(), obligated); named != nil {
				idx = append(idx, i)
				if name == "" {
					name = named.Obj().Name()
				}
			}
		}
		return idx, name
	}
	if named := obligatedNamed(tv.Type, obligated); named != nil {
		return []int{0}, named.Obj().Name()
	}
	return nil, ""
}

// obligatedLhs maps a creation's obligated result positions to the
// assignment targets they bind to.
func obligatedLhs(as *ast.AssignStmt, creation ast.Expr, resultIdx []int) []ast.Expr {
	if len(as.Rhs) == 1 {
		var lhs []ast.Expr
		if len(resultIdx) == 0 {
			resultIdx = []int{0}
		}
		for _, i := range resultIdx {
			if i < len(as.Lhs) {
				lhs = append(lhs, as.Lhs[i])
			}
		}
		return lhs
	}
	for j, r := range as.Rhs {
		if ast.Unparen(r) == creation && j < len(as.Lhs) {
			return []ast.Expr{as.Lhs[j]}
		}
	}
	return nil
}

// creationArgDischarges handles a creation fed straight into another call
// (f(NewIter())): settled when the callee is opaque or its summary
// discharges the position.
func creationArgDischarges(prog *Program, call *ast.CallExpr, creation ast.Expr, sites map[*ast.CallExpr]*CallSite, fates map[string]map[int]*paramFate) (bool, []string) {
	argPos := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == creation {
			argPos = i
			break
		}
	}
	if argPos < 0 {
		return true, nil
	}
	cs, ok := sites[call]
	if !ok {
		return true, nil
	}
	var forward []string
	for _, target := range cs.Targets {
		callee := prog.Funcs[target]
		if callee == nil || callee.Decl == nil {
			return true, nil
		}
		pos := argPos
		if np := numParams(callee.Decl); np > 0 && pos >= np {
			pos = np - 1
		}
		f := fates[callee.Key][pos]
		if f != nil && f.discharges {
			return true, nil
		}
		if forward == nil {
			forward = []string{callee.Name}
			if f != nil {
				forward = append(forward, f.forward...)
			}
		}
	}
	return false, forward
}
