package boltvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Per-function summaries, RacerD-style: each function is analyzed once
// against the current summaries of its callees, and the whole program
// iterates to a fixed point. Two summaries exist per function:
//
//   - lockSummary: which mutexes the function may acquire (directly or
//     through any call chain), and for each, which locks it is guaranteed
//     to have released first. "Released first" is what makes the engine's
//     unlock-then-relock convention (logAndApplyLocked releases the engine
//     mutex before taking the manifest mutex) analyzable without flagging
//     every caller that holds the engine mutex.
//
//   - errSummary: whether the function may return an error born at a
//     durability barrier (Sync/SyncDir/LogAndApply/CommitPrepared/
//     WriteFile), and the call chain that carries it. errflow uses this to
//     flag callers that drop such a helper's error.
//
// maxSummaryPasses caps the fixed point; summaries stabilize in two or
// three passes on this codebase (call-chain depth, not size, drives it).
const maxSummaryPasses = 16

// --- lock summaries ---

type lockMode uint8

const (
	// lockEntry marks a mutex held by the caller's declaration (*Locked
	// entry seeding), not acquired in the body: the weakest mode, so joins
	// with self-acquired paths stay caller-held. Only guardedby seeds it.
	lockEntry lockMode = iota + 1
	lockRead
	lockWrite
)

// lockAcquire describes one mutex a function may acquire.
type lockAcquire struct {
	// read is true only if every acquiring site is a read lock.
	read bool
	// releasedBefore holds lock keys guaranteed (on every acquiring path)
	// to have been unlocked by this function or its callees before the
	// acquire happens.
	releasedBefore map[string]bool
	// chain is the witness call chain from this function to the Lock call
	// (empty when this function locks directly).
	chain []string
	pos   token.Pos
}

type lockSummary struct {
	acquires map[string]*lockAcquire
}

// lockState is the abstract state of the structured walker: which lock
// keys are currently held (and how), and which the function has released
// without holding (the *Locked unlock-then-relock pattern).
type lockState struct {
	held       map[string]lockMode
	released   map[string]bool
	terminated bool
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]lockMode), released: make(map[string]bool)}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.released {
		c.released[k] = true
	}
	c.terminated = st.terminated
	return c
}

// join merges branch states: held survives only if held on every live
// branch (weakest mode wins), released accumulates from every live branch.
func joinLockStates(states ...*lockState) *lockState {
	var live []*lockState
	for _, st := range states {
		if st != nil && !st.terminated {
			live = append(live, st)
		}
	}
	if len(live) == 0 {
		out := newLockState()
		out.terminated = true
		return out
	}
	out := newLockState()
	for k, mode := range live[0].held {
		onAll := true
		for _, st := range live[1:] {
			m, ok := st.held[k]
			if !ok {
				onAll = false
				break
			}
			if m < mode {
				mode = m
			}
		}
		if onAll {
			out.held[k] = mode
		}
	}
	for _, st := range live {
		for k := range st.released {
			out.released[k] = true
		}
	}
	return out
}

// acqEvent is one acquire the walker observed: a direct Lock/RLock, or a
// call whose callee summary exposes an acquire.
type acqEvent struct {
	key  string
	read bool
	pos  token.Pos
	// chain is empty for direct locks; for calls it is the callee chain
	// down to the Lock.
	chain []string
	// calleeReleased is the callee's releasedBefore for this key (nil for
	// direct locks): locks the callee unlocks before acquiring key.
	calleeReleased map[string]bool
	// state snapshots at the event.
	held     map[string]lockMode
	released map[string]bool
	// deferred marks events from DeferStmt calls: they run at return, so
	// the held snapshot is unreliable and local checks are skipped.
	deferred bool
}

// lockWalker drives the structured traversal of one function body.
type lockWalker struct {
	prog    *Program
	fi      *FuncInfo
	sites   map[*ast.CallExpr]*CallSite
	emit    func(acqEvent)
	inDefer bool

	// onSelector, when set, observes every selector expression with the
	// lock state current at its evaluation point (guardedby's event
	// source). The state must not be mutated by the hook.
	onSelector func(sel *ast.SelectorExpr, st *lockState)
	// onCall, when set, observes every resolved non-mutex call site with
	// the state current at the call (deferred marks calls inside defer,
	// whose execution-time state is unknowable).
	onCall func(cs *CallSite, st *lockState, deferred bool)
}

func newLockWalker(prog *Program, fi *FuncInfo, emit func(acqEvent)) *lockWalker {
	sites := make(map[*ast.CallExpr]*CallSite, len(fi.Calls))
	for _, cs := range fi.Calls {
		sites[cs.Call] = cs
	}
	return &lockWalker{prog: prog, fi: fi, sites: sites, emit: emit}
}

func (w *lockWalker) walk() {
	w.walkFrom(newLockState())
}

// walkFrom runs the walker with a caller-provided initial state (the
// lockcheck upgrade seeds the mutexes a *Locked name declares held).
func (w *lockWalker) walkFrom(st *lockState) {
	w.walkStmts(w.fi.Decl.Body.List, st)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		if st.terminated {
			return
		}
		w.walkStmt(s, st)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) {
	switch v := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(v.X, st)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			w.walkExpr(e, st)
		}
		for _, e := range v.Lhs {
			w.walkExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(v.X, st)
	case *ast.SendStmt:
		w.walkExpr(v.Chan, st)
		w.walkExpr(v.Value, st)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.walkExpr(e, st)
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the structured path; stop tracking it.
		st.terminated = true
	case *ast.BlockStmt:
		w.walkStmts(v.List, st)
	case *ast.LabeledStmt:
		w.walkStmt(v.Stmt, st)
	case *ast.IfStmt:
		w.walkStmt(v.Init, st)
		w.walkExpr(v.Cond, st)
		thenSt := st.clone()
		w.walkStmts(v.Body.List, thenSt)
		elseSt := st.clone()
		if v.Else != nil {
			w.walkStmt(v.Else, elseSt)
		}
		*st = *joinLockStates(thenSt, elseSt)
	case *ast.ForStmt:
		w.walkStmt(v.Init, st)
		w.walkExpr(v.Cond, st)
		// Two passes over the body: the second catches locks carried from
		// one iteration into the next (Lock with no Unlock in a loop).
		bodySt := st.clone()
		w.walkStmts(v.Body.List, bodySt)
		w.walkStmt(v.Post, bodySt)
		if !bodySt.terminated {
			again := bodySt.clone()
			w.walkStmts(v.Body.List, again)
		}
		*st = *joinLockStates(st, bodySt)
	case *ast.RangeStmt:
		w.walkExpr(v.X, st)
		bodySt := st.clone()
		w.walkStmts(v.Body.List, bodySt)
		if !bodySt.terminated {
			again := bodySt.clone()
			w.walkStmts(v.Body.List, again)
		}
		*st = *joinLockStates(st, bodySt)
	case *ast.SwitchStmt:
		w.walkStmt(v.Init, st)
		w.walkExpr(v.Tag, st)
		w.walkCases(v.Body, st)
	case *ast.TypeSwitchStmt:
		w.walkStmt(v.Init, st)
		w.walkStmt(v.Assign, st)
		w.walkCases(v.Body, st)
	case *ast.SelectStmt:
		w.walkCases(v.Body, st)
	case *ast.DeferStmt:
		w.walkDefer(v.Call, st)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's held locks;
		// its arguments are still evaluated here.
		w.walkExprsOnly(v.Call, st)
	}
}

// walkCases handles switch/select bodies: each clause runs on a clone of
// the incoming state and the results join (plus the fall-through state,
// since no clause may match).
func (w *lockWalker) walkCases(body *ast.BlockStmt, st *lockState) {
	states := []*lockState{st.clone()}
	hasDefault := false
	for _, clause := range body.List {
		cl := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.walkExpr(e, cl)
			}
			w.walkStmts(c.Body, cl)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(c.Comm, cl)
			w.walkStmts(c.Body, cl)
		}
		states = append(states, cl)
	}
	if hasDefault {
		states = states[1:] // some clause always runs
	}
	*st = *joinLockStates(states...)
}

// walkDefer processes a deferred call: deferred unlocks keep the lock held
// for the body remainder (they pay at return), deferred lock-acquiring
// calls are summarized without local double-lock checks.
func (w *lockWalker) walkDefer(call *ast.CallExpr, st *lockState) {
	if _, _, _, isMutexOp := mutexOpOf(w.fi.Pkg, call); isMutexOp {
		return // defer mu.Unlock(): the lock stays held until return
	}
	prev := w.inDefer
	w.inDefer = true
	w.walkExpr(call, st)
	w.inDefer = prev
}

// walkExprsOnly evaluates a call's sub-expressions without processing the
// call itself (go statements).
func (w *lockWalker) walkExprsOnly(call *ast.CallExpr, st *lockState) {
	for _, a := range call.Args {
		w.walkExpr(a, st)
	}
}

// walkExpr visits e's sub-expressions in evaluation order and processes
// any calls found. FuncLit bodies are skipped: their execution time is
// unknown (documented soundness limit).
func (w *lockWalker) walkExpr(e ast.Expr, st *lockState) {
	switch v := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkExpr(v.Fun, st)
		for _, a := range v.Args {
			w.walkExpr(a, st)
		}
		w.processCall(v, st)
	case *ast.ParenExpr:
		w.walkExpr(v.X, st)
	case *ast.SelectorExpr:
		w.walkExpr(v.X, st)
		if w.onSelector != nil {
			w.onSelector(v, st)
		}
	case *ast.StarExpr:
		w.walkExpr(v.X, st)
	case *ast.UnaryExpr:
		w.walkExpr(v.X, st)
	case *ast.BinaryExpr:
		w.walkExpr(v.X, st)
		w.walkExpr(v.Y, st)
	case *ast.IndexExpr:
		w.walkExpr(v.X, st)
		w.walkExpr(v.Index, st)
	case *ast.IndexListExpr:
		w.walkExpr(v.X, st)
		for _, idx := range v.Indices {
			w.walkExpr(idx, st)
		}
	case *ast.SliceExpr:
		w.walkExpr(v.X, st)
		w.walkExpr(v.Low, st)
		w.walkExpr(v.High, st)
		w.walkExpr(v.Max, st)
	case *ast.TypeAssertExpr:
		w.walkExpr(v.X, st)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			w.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(v.Key, st)
		w.walkExpr(v.Value, st)
	}
}

// processCall is the walker's event source: direct mutex operations update
// the state; calls to summarized functions replay their exposed acquires.
func (w *lockWalker) processCall(call *ast.CallExpr, st *lockState) {
	p := w.fi.Pkg
	if key, acquire, read, ok := mutexOpOf(p, call); ok {
		if acquire {
			w.emitEvent(acqEvent{key: key, read: read, pos: call.Pos()}, st)
			mode := lockWrite
			if read {
				mode = lockRead
			}
			st.held[key] = mode
		} else {
			// released is monotone: once this function has let go of a
			// lock, every later acquire of it is the function's own
			// business, not the caller's hold — re-acquiring must not
			// erase that (the unlock-then-relock pattern depends on it).
			delete(st.held, key)
			st.released[key] = true
		}
		return
	}
	cs, ok := w.sites[call]
	if !ok {
		return
	}
	if w.onCall != nil {
		w.onCall(cs, st, w.inDefer)
	}
	for _, target := range cs.Targets {
		callee := w.prog.Funcs[target]
		if callee == nil || callee.locks == nil || callee == w.fi {
			continue
		}
		for _, key := range sortedKeys(callee.locks.acquires) {
			acq := callee.locks.acquires[key]
			w.emitEvent(acqEvent{
				key:            key,
				read:           acq.read,
				pos:            call.Pos(),
				chain:          append([]string{callee.Name}, acq.chain...),
				calleeReleased: acq.releasedBefore,
			}, st)
		}
	}
}

func (w *lockWalker) emitEvent(ev acqEvent, st *lockState) {
	if w.emit == nil {
		return
	}
	ev.held = st.held
	ev.released = st.released
	ev.deferred = w.inDefer
	w.emit(ev)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// buildLockSummary computes fi's summary against the callees' current ones.
func buildLockSummary(prog *Program, fi *FuncInfo) *lockSummary {
	sum := &lockSummary{acquires: make(map[string]*lockAcquire)}
	w := newLockWalker(prog, fi, func(ev acqEvent) {
		// releasedBefore as seen by fi's caller: everything fi released up
		// to this point plus everything the callee releases first.
		rb := make(map[string]bool, len(ev.released)+len(ev.calleeReleased))
		for k := range ev.released {
			rb[k] = true
		}
		for k := range ev.calleeReleased {
			rb[k] = true
		}
		if prev, ok := sum.acquires[ev.key]; ok {
			// Merge: releasedBefore must hold on every acquiring path.
			for k := range prev.releasedBefore {
				if !rb[k] {
					delete(prev.releasedBefore, k)
				}
			}
			if !ev.read {
				prev.read = false
			}
			return
		}
		sum.acquires[ev.key] = &lockAcquire{
			read:           ev.read,
			releasedBefore: rb,
			chain:          ev.chain,
			pos:            ev.pos,
		}
	})
	w.walk()
	return sum
}

func lockSummariesEqual(a, b *lockSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.acquires) != len(b.acquires) {
		return false
	}
	for k, av := range a.acquires {
		bv, ok := b.acquires[k]
		if !ok || av.read != bv.read || len(av.releasedBefore) != len(bv.releasedBefore) {
			return false
		}
		for rk := range av.releasedBefore {
			if !bv.releasedBefore[rk] {
				return false
			}
		}
	}
	return true
}

// --- error-flow summaries ---

// errSummary records that a function may return an error originating at a
// durability barrier, with the witness call chain down to the barrier.
type errSummary struct {
	returnsBarrier bool
	chain          []string
}

// buildErrSummary runs the per-function taint analysis and keeps only the
// summary-relevant bit: does a barrier-born error reach a return value?
func buildErrSummary(prog *Program, fi *FuncInfo) *errSummary {
	t := analyzeErrFlow(prog, fi)
	for _, src := range t.sources {
		if src.returned {
			return &errSummary{returnsBarrier: true, chain: src.chain}
		}
	}
	return &errSummary{}
}

func errSummariesEqual(a, b *errSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.returnsBarrier == b.returnsBarrier
}

// ComputeSummaries drives the fixed point over both summary kinds.
func ComputeSummaries(prog *Program) {
	funcs := prog.sortedFuncs()
	for pass := 0; pass < maxSummaryPasses; pass++ {
		changed := false
		for _, fi := range funcs {
			nl := buildLockSummary(prog, fi)
			if !lockSummariesEqual(fi.locks, nl) {
				fi.locks = nl
				changed = true
			}
			ne := buildErrSummary(prog, fi)
			if !errSummariesEqual(fi.errs, ne) {
				fi.errs = ne
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// --- per-function error taint (shared by errflow and the summaries) ---

// errSource is one barrier-error origin inside a function: a direct
// barrier call or a call to a helper whose summary returns a barrier error.
type errSource struct {
	call   *ast.CallExpr
	name   string
	chain  []string // [callee, ..., barrier method]
	direct bool
	// discarded is non-empty when the call's results are structurally
	// dropped: "stmt", "underscore", "defer", "go".
	discarded string
	// mentioned is true when a tainted value is referenced at all after
	// capture (syncerr owns the never-mentioned direct case).
	mentioned bool
	// consumed is true when the taint reaches a sink: a return, a call
	// argument (other than an fmt.Errorf wrap), a field/map/slice store, a
	// comparison, a channel send, a panic.
	consumed bool
	// returned is true when the taint reaches a return value.
	returned bool
}

type errTaint struct {
	sources []*errSource
}

// errBarrierMethods is the errflow origin set; it matches syncerr's
// barrier list (Close is deliberately absent: closes are best-effort on
// error paths, and syncerr already polices bare ones).
var errBarrierMethods = barrierMethods

// analyzeErrFlow computes, for each barrier-error origin in fi, whether
// the error provably reaches a sink. It is flow-insensitive within the
// function (any textual sink counts) — deliberate: false negatives are
// cheaper than false positives that train people to ignore the analyzer.
func analyzeErrFlow(prog *Program, fi *FuncInfo) *errTaint {
	p := fi.Pkg
	t := &errTaint{}
	parents := buildParentMap(fi.Decl.Body)
	sites := make(map[*ast.CallExpr]*CallSite, len(fi.Calls))
	for _, cs := range fi.Calls {
		sites[cs.Call] = cs
	}

	// Named result objects: assignment into one is a return.
	resultObjs := make(map[types.Object]bool)
	if fi.Decl.Type.Results != nil {
		for _, f := range fi.Decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					resultObjs[obj] = true
				}
			}
		}
	}

	// Collect sources.
	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name := calleeName(call)
		if errBarrierMethods[name] && callResultHasError(p, call) {
			t.sources = append(t.sources, &errSource{call: call, name: name, chain: []string{name}, direct: true})
			return
		}
		if cs, ok := sites[call]; ok {
			for _, target := range cs.Targets {
				callee := prog.Funcs[target]
				if callee != nil && callee.errs != nil && callee.errs.returnsBarrier {
					t.sources = append(t.sources, &errSource{
						call:  call,
						name:  callee.Name,
						chain: append([]string{callee.Name}, callee.errs.chain...),
					})
					break
				}
			}
		}
	})
	if len(t.sources) == 0 {
		return t
	}

	for _, src := range t.sources {
		traceSource(p, fi, src, parents, resultObjs)
	}
	return t
}

// traceSource follows one origin's error through copies and fmt.Errorf
// wraps until it is consumed, returned, or dies.
func traceSource(p *Package, fi *FuncInfo, src *errSource, parents map[ast.Node]ast.Node, resultObjs map[types.Object]bool) {
	taintedObjs := make(map[types.Object]bool)
	taintedCalls := map[*ast.CallExpr]bool{src.call: true}

	// seedCall classifies the immediate context of a tainted call's result.
	var seedCall func(call *ast.CallExpr)
	seedCall = func(call *ast.CallExpr) {
		parent := parents[call]
		if pp, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[pp]
		}
		switch ctx := parent.(type) {
		case *ast.ExprStmt:
			src.discarded = "stmt"
		case *ast.DeferStmt:
			src.discarded = "defer"
		case *ast.GoStmt:
			src.discarded = "go"
		case *ast.AssignStmt:
			idxs := errorResultIndices(p, call)
			if len(idxs) == 0 {
				src.consumed = true // no error result: out of scope
				return
			}
			// Map each error result position to its LHS: with one RHS the
			// positions line up; with several, the call binds 1:1 at its own
			// index.
			var lhs []ast.Expr
			if len(ctx.Rhs) == 1 {
				for _, i := range idxs {
					if i < len(ctx.Lhs) {
						lhs = append(lhs, ctx.Lhs[i])
					}
				}
			} else {
				for j, r := range ctx.Rhs {
					if ast.Unparen(r) == call && j < len(ctx.Lhs) {
						lhs = append(lhs, ctx.Lhs[j])
					}
				}
			}
			blanks, captures := 0, 0
			for _, l := range lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					// Stored into a field/index: recorded somewhere real.
					src.consumed = true
					src.mentioned = true
					return
				}
				if id.Name == "_" {
					blanks++
					continue
				}
				captures++
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil {
					taintedObjs[obj] = true
					if resultObjs[obj] {
						src.returned = true
						src.consumed = true
					}
				}
			}
			if blanks > 0 && captures == 0 {
				src.discarded = "underscore"
			}
		case *ast.ReturnStmt:
			src.returned = true
			src.consumed = true
			src.mentioned = true
		case *ast.CallExpr:
			if isErrorfWrap(p, ctx) {
				src.mentioned = true
				taintedCalls[ctx] = true
				seedCall(ctx)
				return
			}
			// Result fed straight into another call: handled there.
			src.consumed = true
			src.mentioned = true
		default:
			// if err := ...; comparison; etc. — treated as handled.
			src.consumed = true
			src.mentioned = true
		}
	}
	seedCall(src.call)

	if src.discarded != "" || src.consumed {
		return
	}
	if len(taintedObjs) == 0 {
		// Error result position not captured (e.g. only non-error results
		// bound); nothing to trace.
		src.consumed = true
		return
	}

	// Propagate through copies and wraps to a local fixed point, then scan
	// for consumption.
	for {
		grew := false
		inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Rhs {
				rhs := ast.Unparen(as.Rhs[i])
				tainted := false
				if id, ok := rhs.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && taintedObjs[obj] {
						tainted = true
					}
				}
				if call, ok := rhs.(*ast.CallExpr); ok {
					if taintedCalls[call] || (isErrorfWrap(p, call) && callHasTaintedArg(p, call, taintedObjs, taintedCalls)) {
						taintedCalls[call] = true
						tainted = true
					}
				}
				if !tainted {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if id.Name == "_" {
						continue // discarded copy: the taint dies here
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj != nil && !taintedObjs[obj] {
						taintedObjs[obj] = true
						grew = true
					}
					if obj != nil && resultObjs[obj] {
						src.returned = true
						src.consumed = true
					}
				} else {
					// Tainted value stored into a field/element: recorded.
					src.consumed = true
				}
			}
		})
		if !grew {
			break
		}
	}

	// Consumption scan: any use of a tainted object that is not a plain
	// copy, a blank discard, or an fmt.Errorf wrap argument is a sink.
	inspectSkipFuncLit(fi.Decl.Body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || !taintedObjs[obj] {
			return
		}
		src.mentioned = true
		switch ctx := parents[id].(type) {
		case *ast.AssignStmt:
			for _, l := range ctx.Lhs {
				if l == id {
					return // write target, not a use
				}
			}
			for i, r := range ctx.Rhs {
				if r == id && i < len(ctx.Lhs) {
					if lid, ok := ctx.Lhs[i].(*ast.Ident); ok {
						if lid.Name == "_" {
							return // discarded copy
						}
						return // var-to-var copy: propagation handled it
					}
					// Stored into a field/map/slice element: a record sink.
					src.consumed = true
					return
				}
			}
			src.consumed = true
		case *ast.CallExpr:
			if isErrorfWrap(p, ctx) {
				return // wrap: the taint moves to the wrap's result
			}
			src.consumed = true
		case *ast.ReturnStmt:
			src.returned = true
			src.consumed = true
		default:
			src.consumed = true
		}
	})

	if src.returned {
		src.consumed = true
	}
}

// callHasTaintedArg reports whether any argument of call is a tainted
// identifier or tainted call result.
func callHasTaintedArg(p *Package, call *ast.CallExpr, objs map[types.Object]bool, calls map[*ast.CallExpr]bool) bool {
	for _, a := range call.Args {
		a = ast.Unparen(a)
		if id, ok := a.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
				return true
			}
		}
		if c, ok := a.(*ast.CallExpr); ok && calls[c] {
			return true
		}
	}
	return false
}

// isErrorfWrap reports whether call is fmt.Errorf (the %w wrap); the verb
// itself is not checked — wrapping without %w still visibly carries the
// message, which is closer to handling than to swallowing.
func isErrorfWrap(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "fmt"
}

// buildParentMap records each node's immediate parent within root.
func buildParentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
