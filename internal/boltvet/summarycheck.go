package boltvet

import (
	"fmt"
	"go/token"
)

// SummaryCheck is the summary engine's self-check pass: it keeps the
// suppression surface honest. A `//boltvet:ignore` directive must name
// known analyzers and carry a ` -- <reason>` tail; a reasonless directive
// suppresses nothing (see parseIgnoreNames) and is reported here, as is a
// directive naming an analyzer that does not exist (typically a typo that
// would otherwise silently fail to suppress). Block suppressions are held
// to the same bar: a `//boltvet:ignore-begin` without a reason, a begin
// with no matching `//boltvet:ignore-end`, and an end with no begin all
// suppress nothing and are reported.
var SummaryCheck = &Analyzer{
	Name: "summary",
	Doc:  "reports boltvet:ignore/ignore-begin directives with no reason, unknown analyzer names, or unbalanced pairs",
}

// Run is attached in init: runSummaryCheck consults All() for the known
// analyzer names, and referencing it in the literal would form a
// package-initialization cycle.
func init() { SummaryCheck.Run = runSummaryCheck }

func runSummaryCheck(p *Package) []Finding {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "summary",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if names, reason, ok := parseIgnoreDirective(c.Text); ok {
					if reason == "" {
						report(c.Pos(), "boltvet:ignore without a reason suppresses nothing; write `//boltvet:ignore <analyzer> -- <why>`")
						continue
					}
					for _, n := range names {
						if !known[n] {
							report(c.Pos(), "boltvet:ignore names unknown analyzer %q; this directive does not suppress it", n)
						}
					}
					continue
				}
				if kind, names, reason := parseIgnoreBlockDirective(c.Text); kind == "begin" && reason != "" {
					for _, n := range names {
						if !known[n] {
							report(c.Pos(), "boltvet:ignore-begin names unknown analyzer %q; this block does not suppress it", n)
						}
					}
				}
			}
		}
		_, problems := collectIgnoreBlocks(p, f)
		for _, pr := range problems {
			switch pr.kind {
			case "reasonless":
				report(pr.pos, "boltvet:ignore-begin without a reason suppresses nothing; write `//boltvet:ignore-begin <analyzer> -- <why>`")
			case "unterminated":
				report(pr.pos, "boltvet:ignore-begin has no matching boltvet:ignore-end; the block suppresses nothing")
			case "orphan-end":
				report(pr.pos, "boltvet:ignore-end has no matching boltvet:ignore-begin")
			}
		}
	}
	return out
}
