package boltvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// barrierMethods are the durability barriers: an error from any of these
// means data the engine believes durable may not be. Discarding one —
// even explicitly with `_ =` — is a crash-consistency bug.
var barrierMethods = map[string]bool{
	"Sync":           true,
	"SyncDir":        true,
	"LogAndApply":    true,
	"CommitPrepared": true,
	// WriteFile syncs both the file and its directory entry (it backs the
	// CURRENT pointer switch); dropping its error loses the barrier.
	"WriteFile": true,
}

// closeMethods return errors that matter on write paths but are
// conventionally discarded best-effort on error/read paths. A bare call
// statement is flagged; an explicit `_ =` discard is accepted as a
// deliberate, reviewable choice.
var closeMethods = map[string]bool{
	"Close": true,
}

// SyncErr flags durability-barrier and Close calls whose error result is
// discarded: bare expression statements, `_ =` discards of barrier
// methods, deferred/spawned barrier calls, and barrier errors assigned to
// a variable that is never mentioned again. Test files are exempt: they
// run on the in-memory filesystem where durability is simulated, and
// fixtures discard errors on purpose.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "flags discarded errors from Sync/SyncDir/Close/LogAndApply/CommitPrepared/WriteFile",
	Run:  runSyncErr,
}

func runSyncErr(p *Package) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "syncerr",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.ExprStmt:
					call, ok := stmt.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					name := calleeName(call)
					if barrierMethods[name] && callResultHasError(p, call) {
						report(call.Pos(), "result of %s is discarded; a dropped %s error silently breaks crash consistency", exprString(call.Fun), name)
					} else if closeMethods[name] && callResultHasError(p, call) {
						report(call.Pos(), "result of %s is discarded; handle the error, or mark a best-effort close explicit with `_ =`", exprString(call.Fun))
					}
				case *ast.DeferStmt:
					if name := calleeName(stmt.Call); barrierMethods[name] && callResultHasError(p, stmt.Call) {
						report(stmt.Call.Pos(), "error from deferred %s is discarded; durability barriers must be checked inline", exprString(stmt.Call.Fun))
					}
				case *ast.GoStmt:
					if name := calleeName(stmt.Call); barrierMethods[name] && callResultHasError(p, stmt.Call) {
						report(stmt.Call.Pos(), "error from %s spawned in a goroutine is discarded", exprString(stmt.Call.Fun))
					}
				case *ast.AssignStmt:
					checkSyncErrAssign(p, fd, stmt, report)
				}
				return true
			})
		}
	}
	return out
}

// checkSyncErrAssign flags `_ = f.Sync()` style discards and
// `err := f.Sync()` where err is never read afterwards.
func checkSyncErrAssign(p *Package, fd *ast.FuncDecl, stmt *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name := calleeName(call)
	if !barrierMethods[name] {
		return
	}
	errIdx := errorResultIndices(p, call)
	if len(errIdx) == 0 {
		return
	}
	for _, i := range errIdx {
		if i >= len(stmt.Lhs) {
			continue
		}
		id, ok := stmt.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			report(call.Pos(), "error from %s is discarded via _; durability barrier errors must be handled", exprString(call.Fun))
			continue
		}
		// err := f.Sync() with err never mentioned again anywhere in the
		// function: a shadow/dead assignment that silently drops the
		// barrier error.
		if stmt.Tok != token.DEFINE {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil || usedElsewhere(p, fd, id, obj) {
			continue
		}
		report(id.Pos(), "error from %s is assigned to %q but never used (shadowed/dead barrier error)", exprString(call.Fun), id.Name)
	}
}

// usedElsewhere reports whether obj is referenced anywhere in fd other
// than at the defining ident.
func usedElsewhere(p *Package, fd *ast.FuncDecl, def *ast.Ident, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
