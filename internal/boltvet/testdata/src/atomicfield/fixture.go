// Package atomicfield is the fixture corpus for the copylocks-extension
// analyzer: sync/atomic fields and guarded-by: atomic fields must never be
// accessed plainly or copied.
package atomicfield

import "sync/atomic"

type M struct {
	hits atomic.Int64
	raw  int64 // guarded-by: atomic (updated from the write path, read by stats)
	name string
}

// --- plain-access positives ---

func plainRead(m *M) int64 {
	v := m.hits // want `plain access to atomic field` `value of atomic.Int64 is assigned by value`
	return v.Load()
}

func plainWriteGuarded(m *M) {
	m.raw = 7 // want `field atomicfield.raw is declared guarded-by: atomic`
}

func plainReadGuarded(m *M) int64 {
	return m.raw // want `field atomicfield.raw is declared guarded-by: atomic`
}

// --- copy positives, including the cross-function return-by-value pair ---

func copyStruct(m *M) {
	snap := *m // want `value of atomicfield.M is assigned by value, copying its sync/atomic fields`
	_ = snap.name
}

func passByValue(m M) { // want `parameter atomicfield.M of passByValue takes atomicfield.M by value`
	_ = m.name
}

func callByValue(m *M) {
	passByValue(*m) // want `value of atomicfield.M is passed by value, copying its sync/atomic fields`
}

func returnByValue(m *M) M { // want `result atomicfield.M of returnByValue takes atomicfield.M by value`
	return *m // want `value of atomicfield.M is returned by value, copying its sync/atomic fields`
}

func (m M) valueReceiver() string { // want `receiver atomicfield.M of valueReceiver takes atomicfield.M by value`
	return m.name
}

func rangeCopy(ms []M) {
	for _, m := range ms { // want `range copies values of atomicfield.M`
		_ = m.name
	}
}

// --- negatives: the atomic API, pointers, and fresh construction ---

func ok(m *M) int64 {
	m.hits.Add(1)
	p := &m.hits
	ptr := &m.raw
	_ = atomic.LoadInt64(ptr)
	fresh := M{name: "fresh"}
	fresh.hits.Add(1)
	return p.Load()
}

func okPointers(ms []*M) {
	for _, m := range ms {
		m.hits.Add(1)
	}
}

// --- suppressed negative: reviewed and waived with a reason ---

func waived(m *M) {
	snap := *m //boltvet:ignore atomicfield -- fixture: suppressed on purpose to pin the reasoned-ignore path
	_ = snap.name
}
