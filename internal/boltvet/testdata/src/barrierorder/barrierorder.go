// Package barrierorder is a boltvet fixture for the two-barrier contract.
package barrierorder

type meta struct{}

type edit struct{}

func (e *edit) AddFile(level int, m *meta) {}

type applier struct{}

func (a *applier) LogAndApply(e *edit) error    { return nil }
func (a *applier) CommitPrepared(e *edit) error { return nil }

type file struct{}

func (f file) Sync() error { return nil }

func commitWithoutSync(a *applier) error {
	e := &edit{}
	e.AddFile(0, &meta{})
	return a.LogAndApply(e) // want `a\.LogAndApply commits a version edit that adds files, but no data-file sync`
}

func prepareCommitWithoutSync(a *applier) error {
	e := &edit{}
	e.AddFile(0, &meta{})
	return a.CommitPrepared(e) // want `a\.CommitPrepared commits a version edit that adds files`
}

func commitAfterSync(a *applier, f file) error {
	e := &edit{}
	e.AddFile(0, &meta{})
	if err := f.Sync(); err != nil {
		return err
	}
	return a.LogAndApply(e)
}

// commitWithoutAdd applies an edit that validates no new files (log-number
// advance only); no data barrier is required.
func commitWithoutAdd(a *applier) error {
	return a.LogAndApply(&edit{})
}

// VersionSet methods are the barrier implementation, not its users.
type VersionSet struct{ a applier }

func (vs *VersionSet) snapshot(e *edit) error {
	e.AddFile(0, &meta{})
	return vs.a.LogAndApply(e)
}

func suppressedCommit(a *applier) error {
	e := &edit{}
	e.AddFile(0, &meta{})
	//boltvet:ignore barrierorder -- fixture: files already durable
	return a.LogAndApply(e)
}
