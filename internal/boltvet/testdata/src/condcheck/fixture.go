// Package condcheck is the boltvet fixture for the sync.Cond protocol
// analyzer: Wait only inside a predicate-rechecking loop (one helper
// level allowed when every call site loops), Wait with the bound mutex
// held and no second acquired mutex, and a Signal/Broadcast positioned
// after every waited-predicate mutation (here or in every caller).
package condcheck

import "sync"

// q is the drain-loop shape: cond bound to mu via sync.NewCond, ready
// as the waited predicate, mu2 as the second-lock hazard.
type q struct {
	mu    sync.Mutex
	mu2   sync.Mutex
	cond  *sync.Cond
	ready bool
}

// newQ pins the freshness exemption: mutating the predicate on a local
// nobody shares yet needs no signal.
func newQ() *q {
	c := &q{}
	c.cond = sync.NewCond(&c.mu)
	c.ready = false
	return c
}

// await is the correct waiter: loop, predicate recheck, mutex held.
func (s *q) await() {
	s.mu.Lock()
	for !s.ready {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// put is the correct mutator: Broadcast after the predicate change.
func (s *q) put() {
	s.mu.Lock()
	s.ready = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// putBad mutates the waited predicate and wakes nobody.
func (s *q) putBad() {
	s.mu.Lock()
	s.ready = true // want `putBad mutates condcheck\.q\.ready, rechecked by the Wait loop at .*, with no Signal/Broadcast after it \(here or in every caller\); waiters can miss the change and stall`
	s.mu.Unlock()
}

// waitNoLoop Waits at function top level and has no call sites, so the
// finding lands on the Wait itself.
func (s *q) waitNoLoop() {
	s.mu.Lock()
	s.cond.Wait() // want `Wait on condcheck\.q\.cond outside a for loop; a wakeup is a hint, recheck the predicate in a loop`
	s.mu.Unlock()
}

// stallLocked is the one-level helper relaxation: its bare Wait is fine
// exactly when every call site loops.
func (s *q) stallLocked() {
	s.cond.Wait()
}

func (s *q) midLoop() {
	s.mu.Lock()
	for !s.ready {
		s.stallLocked()
	}
	s.mu.Unlock()
}

func (s *q) midNoLoop() {
	s.mu.Lock()
	s.stallLocked() // want `midNoLoop calls stallLocked, which Waits on condcheck\.q\.cond, from outside a loop; the predicate is rechecked only when the call site loops`
	s.mu.Unlock()
}

// waitNoLock loops correctly but never acquires the cond's mutex.
func (s *q) waitNoLock() {
	for !s.ready {
		s.cond.Wait() // want `waitNoLock Waits on condcheck\.q\.cond without holding condcheck\.q\.mu, the cond's mutex; Wait's internal unlock panics or races`
	}
}

// waitDouble holds a second acquired mutex across the sleep.
func (s *q) waitDouble() {
	s.mu.Lock()
	s.mu2.Lock()
	for !s.ready {
		s.cond.Wait() // want `waitDouble Waits on condcheck\.q\.cond while holding condcheck\.q\.mu2; Wait releases only the cond's mutex, so condcheck\.q\.mu2 stays held across the sleep \(deadlock hazard\)`
	}
	s.mu2.Unlock()
	s.mu.Unlock()
}

// litWait Waits inside a function literal with no loop around it.
func (s *q) litWait() {
	f := func() {
		s.cond.Wait() // want `Wait on condcheck\.q\.cond outside a for loop; a wakeup is a hint, recheck the predicate in a loop`
	}
	f()
}

// flip mutates with no signal of its own; flipAndSignal, its only call
// site, broadcasts after the call, so the one-level caller discharge
// applies.
func (s *q) flip() {
	s.ready = true
}

func (s *q) flipAndSignal() {
	s.mu.Lock()
	s.flip()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wake/wake2 carry the broadcast one and two call-graph hops away: the
// transitive signal summaries discharge both mutators below.
func (s *q) wake()  { s.cond.Broadcast() }
func (s *q) wake2() { s.wake() }

func (s *q) mutateThenCall() {
	s.mu.Lock()
	s.ready = true
	s.wake()
	s.mu.Unlock()
}

func (s *q) mutateThenCall2() {
	s.mu.Lock()
	s.ready = true
	s.wake2()
	s.mu.Unlock()
}

// mutateSuppressed pins the reasoned-ignore path.
func (s *q) mutateSuppressed() {
	s.mu.Lock()
	s.ready = false //boltvet:ignore condcheck -- fixture: shutdown path, the waiters are already gone
	s.mu.Unlock()
}
