// Package errflow is the fixture corpus for the barrier-error taint
// analyzer: errors born at Sync must reach a sink through any chain of
// helpers, copies, and wraps.
package errflow

import "fmt"

type file struct{}

func (file) Sync() error { return nil }

var f file

// barrier is a 1-hop helper: its error is born at a Sync barrier.
func barrier() error {
	return f.Sync()
}

// layer2 makes the chain two hops deep.
func layer2() error {
	return barrier()
}

// --- interprocedural positives: the helper's name does not say "barrier" ---

func dropStmt() {
	layer2() // want `result of layer2 is discarded, but it carries a durability-barrier error \(layer2 -> barrier -> Sync\)`
}

func dropBlank() {
	_ = layer2() // want `error from layer2 is discarded via _, but it carries a durability-barrier error \(layer2 -> barrier -> Sync\)`
}

func dropDefer() {
	defer layer2() // want `error from deferred layer2 is discarded; it carries a durability-barrier error \(layer2 -> barrier -> Sync\)`
}

func dropDead() {
	err := layer2() // want `error from layer2 is captured but never handled; the barrier error \(layer2 -> barrier -> Sync\) dies in dropDead`
	_ = err
}

// --- direct positive: wrap-chain death syncerr cannot see ---

func wrapDeath() {
	err := f.Sync() // want `error from Sync is copied or wrapped but never handled; the barrier error dies in wrapDeath`
	wrapped := fmt.Errorf("flush: %w", err)
	_ = wrapped
}

// --- negatives: the taint reaches a sink ---

func returned() error {
	return layer2()
}

func handled() {
	if err := layer2(); err != nil {
		panic(err)
	}
}

type sink struct{ bgErr error }

func recorded(s *sink) {
	err := layer2()
	s.bgErr = err // stored into a field: the error is recorded
}

func wrappedAndReturned() error {
	err := f.Sync()
	if err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	return nil
}

// --- suppressed negative: reviewed and waived with a reason ---

func waived() {
	_ = layer2() //boltvet:ignore errflow -- fixture: best-effort path, suppressed on purpose
}
