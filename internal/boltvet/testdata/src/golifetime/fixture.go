// Package golifetime is the boltvet fixture for the goroutine-lifecycle
// analyzer: every `go` statement must carry a //boltvet:goroutine
// annotation naming its tracker (whose clear and join are proved through
// the call graph) or follow the inferable WaitGroup Done/Wait
// discipline.
package golifetime

import "sync"

// engine mirrors the core.DB shape: a mutex/cond pair and per-goroutine
// liveness trackers the drain loop waits on.
type engine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	running bool
	workers int
	active  bool
	orphan  int
}

// drain is the join point: a loop whose condition mentions the trackers
// and whose body Waits on the cond.
func (e *engine) drain() {
	e.mu.Lock()
	for e.running || e.workers > 0 || e.active {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// start is the verified shape: the annotation names a bool tracker and
// the clear is two hops down the spawned call chain.
func (e *engine) start() {
	e.mu.Lock()
	e.running = true
	//boltvet:goroutine running -- worker clears it via finish when the queue drains
	go e.worker()
	e.mu.Unlock()
}

func (e *engine) worker() { e.step() }
func (e *engine) step()   { e.finish() }
func (e *engine) finish() {
	e.mu.Lock()
	e.running = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// spawnWorkers is the counter shape: each worker decrements on exit.
func (e *engine) spawnWorkers(n int) {
	e.mu.Lock()
	for i := 0; i < n; i++ {
		e.workers++
		//boltvet:goroutine workers -- each worker decrements the counter on exit; drain waits for zero
		go e.work()
	}
	e.mu.Unlock()
}

func (e *engine) work() {
	e.mu.Lock()
	e.workers--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// startStuck spawns a chain that never clears its tracker: the finding
// carries the checked call chain as the witness.
func (e *engine) startStuck() {
	e.mu.Lock()
	e.active = true
	//boltvet:goroutine active -- stuck on purpose: nothing on this path clears the flag
	go e.runner() // want `goroutine tracked by engine\.active never clears it: no path from the spawned function sets it false \(checked runner -> helper\); the drain loop waiting on it will hang`
	e.mu.Unlock()
}

func (e *engine) runner() { e.helper() }
func (e *engine) helper() {}

// startOrphan clears its tracker but nobody ever waits on it.
func (e *engine) startOrphan() {
	e.mu.Lock()
	e.orphan++
	//boltvet:goroutine orphan -- decremented on exit, but no drain loop mentions it
	go e.orphanWork() // want `goroutine tracker engine\.orphan is never awaited: no loop condition waits on it and no Wait\(\) joins it; the goroutine can outlive Close`
	e.mu.Unlock()
}

func (e *engine) orphanWork() {
	e.mu.Lock()
	e.orphan--
	e.mu.Unlock()
}

// startUnreasoned has a tracker but no -- why.
func (e *engine) startUnreasoned() {
	//boltvet:goroutine running
	go e.worker() // want `//boltvet:goroutine running requires a reason`
}

// startUnknown names a tracker that does not resolve.
func (e *engine) startUnknown() {
	//boltvet:goroutine nonesuch -- fixture: the name resolves to nothing
	go e.worker() // want `//boltvet:goroutine names "nonesuch", which is not a bool, integer, or sync\.WaitGroup tracker reachable from this spawn site`
}

// leakPlain spawns a named function with no annotation at all.
func leakPlain(e *engine) {
	go e.worker() // want `go statement has no declared lifecycle.*naming the bool/counter/WaitGroup that tracks it`
}

// leakLiteral spawns a literal with neither annotation nor Done.
func leakLiteral(ch chan int) {
	go func() { ch <- 1 }() // want `go statement has no declared lifecycle.*adopt the WaitGroup Done/Wait discipline`
}

// fanOut is the inferable negative: Done in the literal, Wait in the
// spawner.
func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// fanOutStop is the stop-closure variant: the Wait lives in a returned
// closure, which still counts as the spawner joining.
func fanOutStop() (stop func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	return func() { wg.Wait() }
}

// fanOutLeaky calls Done on a WaitGroup its spawner never Waits on.
func fanOutLeaky() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine calls Done on WaitGroup "wg" but the spawning function never Waits on it; the goroutine can outlive its spawner`
		defer wg.Done()
	}()
}

// pool carries WaitGroup fields: joined counts program-wide, tasks is
// Done'd but joined by nobody.
type pool struct {
	tasks  sync.WaitGroup
	joined sync.WaitGroup
}

func (p *pool) kickTracked() {
	p.joined.Add(1)
	go func() {
		defer p.joined.Done()
	}()
}

func (p *pool) join() {
	p.joined.Wait()
}

func (p *pool) kickLeaky() {
	p.tasks.Add(1)
	go func() { // want `goroutine calls Done on golifetime\.pool\.tasks but nothing in the program Waits on it; the WaitGroup joins nobody`
		defer p.tasks.Done()
	}()
}

// suppressed pins the reasoned-ignore path.
func suppressed(ch chan int) {
	//boltvet:ignore golifetime -- fixture: suppression is the behavior under test
	go func() { ch <- 2 }()
}
