// Package guardedby is the boltvet fixture for the field-guard
// annotation vocabulary (//boltvet:guardedby mu|atomic|none) and its
// summary-backed verification, including obligations propagated through
// *Locked call chains.
package guardedby

import (
	"sync"
	"sync/atomic"
)

type store struct {
	// mu serializes the annotated state.
	mu sync.Mutex

	count int    //boltvet:guardedby mu
	name  string //boltvet:guardedby mu

	hits int64        //boltvet:guardedby atomic
	gen  atomic.Int64 //boltvet:guardedby atomic

	capacity int //boltvet:guardedby none -- set once before the store is shared

	missing int // want `struct store has //boltvet:guardedby annotations but field "missing" has none`

	//boltvet:guardedby statsMu
	stats int // want `names "statsMu", which is not a sync.Mutex/RWMutex field of store`

	//boltvet:guardedby none
	scratch int // want `//boltvet:guardedby none on store.scratch requires a reason`
}

// New initializes guarded fields lock-free: the local is freshly
// constructed and unshared.
func New(capacity int) *store {
	s := &store{capacity: capacity}
	s.count = 1
	s.name = "fresh"
	return s
}

func (s *store) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

func (s *store) Bad() {
	s.count++ // want `Bad accesses store\.count \(//boltvet:guardedby mu\) without holding mu`
}

func (s *store) Window() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.name = "late" // want `Window accesses store\.name .* after releasing mu \(unlock-then-relock window\)`
}

// incLocked's access becomes an entry obligation checked at every caller.
func (s *store) incLocked() {
	s.count++
}

// bumpLocked chains the obligation one hop further up.
func (s *store) bumpLocked() {
	s.incLocked()
}

func (s *store) CallerGood() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

func (s *store) CallerBad() {
	s.bumpLocked() // want `CallerBad calls bumpLocked -> incLocked, which accesses store\.count \(//boltvet:guardedby mu\), without holding mu`
}

func (s *store) Atomics() int64 {
	atomic.AddInt64(&s.hits, 1)
	s.gen.Add(1)
	return s.hits // want `field store\.hits is //boltvet:guardedby atomic`
}

// Suppressed is the negative: a reasoned directive silences the finding.
func (s *store) Suppressed() {
	s.count++ //boltvet:ignore guardedby -- fixture: single-threaded setup path
}

func (s *store) Capacity() int {
	return s.capacity // ok: annotated none with a reason
}
