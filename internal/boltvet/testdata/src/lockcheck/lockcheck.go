// Package lockcheck is a boltvet fixture for the *Locked convention.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

type store struct {
	cap int // before the mutex: not guarded

	// mu guards the fields below.
	mu    sync.Mutex
	count int
	name  string

	gets atomic.Int64 // atomic: exempt from guarding

	// statsMu serializes stats writers; declared after mu's region but
	// guarding its own field.
	statsMu sync.Mutex
	stats   int // guarded by statsMu
}

func (s *store) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

func (s *store) Bad() {
	s.count++ // want `Bad accesses mu-guarded field "count" without acquiring mu`
}

func (s *store) Unguarded() int {
	s.gets.Add(1)
	return s.cap // ok: declared before the mutex
}

func (s *store) incLocked() {
	s.count++ // ok: the suffix declares the caller holds mu
}

func (s *store) selfDeadlockLocked() {
	s.mu.Lock() // want `\*Locked method selfDeadlockLocked acquires mu`
	s.count++
	s.mu.Unlock()
}

func (s *store) dropAndRelockLocked() {
	s.count++
	s.mu.Unlock()
	defer s.mu.Lock() // ok: unlock-then-relock around I/O is the house pattern
	s.name = "io"
}

func (s *store) statsBad() int {
	return s.stats // want `statsBad accesses statsMu-guarded field "stats" without acquiring statsMu`
}

func (s *store) statsGood() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.stats++
}

//boltvet:ignore lockcheck -- fixture: init-time access before concurrency
func (s *store) initTime() {
	s.count = 0
	s.name = "fresh"
}
