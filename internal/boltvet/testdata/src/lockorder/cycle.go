package lockorder

import "sync"

// G pins the lock-order-cycle half: ab acquires a then b, ba acquires b
// then a — the global acquisition-order graph has the 2-cycle {a, b}.
type G struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func (g *G) ab() {
	g.a.Lock()
	g.b.Lock() // want `lock-order cycle among \{lockorder.G.a, lockorder.G.b\}`
	g.n++
	g.b.Unlock()
	g.a.Unlock()
}

func (g *G) ba() {
	g.b.Lock()
	g.a.Lock()
	g.n--
	g.a.Unlock()
	g.b.Unlock()
}
