// Package lockorder is the fixture corpus for the interprocedural
// double-acquisition half of the lockorder analyzer.
package lockorder

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// --- interprocedural positive: 2-hop chain down to the re-lock ---

func (s *S) outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.middle() // want `outer acquires lockorder.S.mu while already holding it via middle -> inner`
}

func (s *S) middle() {
	s.inner()
}

func (s *S) inner() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// --- intraprocedural positive: direct double lock ---

func (s *S) direct() {
	s.mu.Lock()
	s.mu.Lock() // want `direct acquires lockorder.S.mu while already holding it \(self-deadlock\)`
	s.n++
	s.mu.Unlock()
}

// --- negative: unlock-then-relock callee is safe for a holding caller ---

func (s *S) caller() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.relocks() // callee releases mu before re-acquiring: no finding
}

func (s *S) relocks() {
	s.mu.Unlock()
	s.n++ // touched outside the lock on purpose; lockorder does not police guards
	s.mu.Lock()
}

// --- negative: read-read is tolerated ---

func (s *S) readRead() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.readInner()
}

func (s *S) readInner() {
	s.rw.RLock()
	_ = s.n
	s.rw.RUnlock()
}

// --- suppressed negative: reviewed and waived with a reason ---

func (s *S) waived() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.middle() //boltvet:ignore lockorder -- fixture: suppressed on purpose to pin the reasoned-ignore path
}

// --- negative: a goroutine does not inherit the spawner's locks ---

func (s *S) spawns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.inner()
}
