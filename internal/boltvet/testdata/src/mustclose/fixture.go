// Package mustclose is the boltvet fixture for resource-lifetime
// obligations: values of //boltvet:mustclose types must reach a Close, an
// ownership transfer, or a leak finding — including values handed down
// helper chains that never close them.
package mustclose

import "errors"

// handle is a closable resource.
//
//boltvet:mustclose
type handle struct{ closed bool }

// Close settles the obligation.
func (h *handle) Close() error {
	if h.closed {
		return errors.New("double close")
	}
	h.closed = true
	return nil
}

// iter is a closable interface; the obligation rides the interface type.
//
//boltvet:mustclose
type iter interface {
	Next() bool
	Close() error
}

type sliceIter struct{ i int }

func (s *sliceIter) Next() bool  { return false }
func (s *sliceIter) Close() error { return nil }

func newHandle() *handle { return &handle{} } // ok: returned

func open() *handle { return newHandle() } // ok: ownership transfers out

func newIter() iter { return &sliceIter{} }

func discard() {
	newHandle() // want `result of newHandle is a handle \(//boltvet:mustclose\) but is discarded`
}

func blank() {
	_ = newHandle() // want `result of newHandle is a handle \(//boltvet:mustclose\) but is discarded as _`
}

func closes() error {
	h := newHandle()
	defer h.Close()
	return nil
}

func closesViaHelper() {
	h := newHandle()
	shutdown(h)
}

func shutdown(h *handle) { _ = h.Close() }

// touch uses the handle without ever settling it; relay and use forward
// it, so the leak is only visible two and three hops up.
func touch(h *handle) { _ = h.closed }

func relay(h *handle) { touch(h) }

func use(h *handle) { relay(h) }

func leak() {
	h := newHandle() // want `h returned by newHandle is never closed, released, stored, or returned by leak \(passed to use -> relay -> touch, which never closes it\)`
	use(h)
}

func passLeak() {
	relay(newHandle()) // want `result of newHandle is a handle \(//boltvet:mustclose\) passed to relay -> touch, which never closes or stores it`
}

func iterLeak() {
	it := newIter() // want `it returned by newIter is never closed, released, stored, or returned by iterLeak`
	for it.Next() {
	}
}

func iterOK() error {
	it := newIter()
	for it.Next() {
	}
	return it.Close()
}

// pool stores handles: the slice takes ownership.
type pool struct{ handles []*handle }

func (p *pool) add() {
	p.handles = append(p.handles, newHandle())
}

func (p *pool) keep() {
	h := newHandle()
	p.handles[0] = h
}

// suppressed is the line-directive negative.
func suppressed() {
	newHandle() //boltvet:ignore mustclose -- fixture: harness closes it
}

// blockSuppressed is the block-directive negative: the begin/end pair
// covers the whole region.
//
//boltvet:ignore-begin mustclose -- fixture: harness-managed region
func blockSuppressed() {
	newHandle()
	newHandle()
}

//boltvet:ignore-end
