// Package summarycheck is the fixture corpus for the suppression-hygiene
// self-check: ignores must carry a reason and name real analyzers, and
// ignore-begin/ignore-end pairs must balance. A directive is the whole
// comment, so the expectations live in TestSummaryCheckFixture rather
// than trailing `// want` comments.
package summarycheck

func reasonless() {
	//boltvet:ignore syncerr
	_ = 1
}

func unknownName() {
	//boltvet:ignore snycerr -- typo in the analyzer name
	_ = 1
}

// reasoned is the negative: a well-formed suppression produces nothing.
func reasoned() {
	//boltvet:ignore syncerr -- fixture: well-formed directive
	_ = 1
}

func blockReasonless() {
	//boltvet:ignore-begin syncerr
	_ = 1
	//boltvet:ignore-end
}

func blockUnknownName() {
	//boltvet:ignore-begin snycerr -- typo in a block directive
	_ = 1
	//boltvet:ignore-end
}

func blockOrphanEnd() {
	//boltvet:ignore-end
	_ = 1
}

// blockGood is the negative: a balanced, reasoned pair produces nothing.
func blockGood() {
	//boltvet:ignore-begin syncerr -- fixture: well-formed block
	_ = 1
	//boltvet:ignore-end
}

// blockUnterminated must stay last in the file: its begin would otherwise
// pair with a later function's end.
func blockUnterminated() {
	//boltvet:ignore-begin errflow -- fixture: begin with no end
	_ = 1
}
