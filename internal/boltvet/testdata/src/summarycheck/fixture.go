// Package summarycheck is the fixture corpus for the suppression-hygiene
// self-check: ignores must carry a reason and name real analyzers. A
// directive is the whole comment, so the expectations live in
// TestSummaryCheckFixture rather than trailing `// want` comments.
package summarycheck

func reasonless() {
	//boltvet:ignore syncerr
	_ = 1
}

func unknownName() {
	//boltvet:ignore snycerr -- typo in the analyzer name
	_ = 1
}

// reasoned is the negative: a well-formed suppression produces nothing.
func reasoned() {
	//boltvet:ignore syncerr -- fixture: well-formed directive
	_ = 1
}
