// Package syncerr is a boltvet fixture. Expectations are `// want`
// comments holding a regexp that must match a finding on that line.
//
// Note: deadAssign intentionally declares an unused variable, so this
// package does not compile; the analyzer loader tolerates soft type
// errors, and fixture packages under testdata are never built.
package syncerr

type file struct{}

func (file) Sync() error    { return nil }
func (file) SyncDir() error { return nil }
func (file) Close() error   { return nil }

// closer returns no error: bare calls to it must NOT be flagged.
type closer struct{}

func (closer) Close() {}

type vset struct{}

func (vset) LogAndApply(edit int) error    { return nil }
func (vset) CommitPrepared(edit int) error { return nil }

// WriteFile mimics vfs.WriteFile (write + sync + dir sync): a barrier.
func WriteFile(name string, data []byte) error { return nil }

func bareCalls(f file, c closer, vs vset) {
	f.Sync()                  // want `result of f\.Sync is discarded`
	f.SyncDir()               // want `result of f\.SyncDir is discarded`
	f.Close()                 // want `result of f\.Close is discarded`
	vs.LogAndApply(1)         // want `result of vs\.LogAndApply is discarded`
	vs.CommitPrepared(1)      // want `result of vs\.CommitPrepared is discarded`
	WriteFile("CURRENT", nil) // want `result of WriteFile is discarded`
	_ = WriteFile("x", nil)   // want `error from WriteFile is discarded via _`
	c.Close()                 // ok: returns no error
}

func explicitDiscard(f file, vs vset) {
	_ = f.Sync()          // want `error from f\.Sync is discarded via _`
	_ = vs.LogAndApply(1) // want `error from vs\.LogAndApply is discarded via _`
	_ = f.Close()         // ok: a deliberate, visible best-effort close
}

func deferred(f file) error {
	defer f.Sync()  // want `error from deferred f\.Sync is discarded`
	defer f.Close() // ok: deferred close on read paths is idiomatic
	return nil
}

func spawned(f file) {
	go f.Sync() // want `error from f\.Sync spawned in a goroutine is discarded`
}

func deadAssign(f file) error {
	err := f.Sync() // want `error from f\.Sync is assigned to "err" but never used`
	return nil
}

func handled(f file, vs vset) error {
	if err := f.Sync(); err != nil {
		return err
	}
	err := vs.LogAndApply(1)
	return err
}

func suppressed(f file) {
	_ = f.Sync() //boltvet:ignore syncerr -- fixture demonstrates suppression
}
