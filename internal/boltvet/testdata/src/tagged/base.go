// Package tagged is the fixture corpus for build-tag loading: inv.go is
// only part of the package under the boltinvariants tag, and it carries
// the package's only syncerr violation. A loader that silently drops
// tagged files makes this package look clean.
package tagged

type file struct{}

func (file) Sync() error { return nil }

var f file

func clean() error {
	return f.Sync()
}
