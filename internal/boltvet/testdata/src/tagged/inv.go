//go:build boltinvariants

package tagged

// dirty only exists under the boltinvariants tag; its bare Sync is the
// canary that proves tagged files are loaded and analyzed.
func dirty() {
	f.Sync() // want `result of f.Sync is discarded`
}
