package cache

import (
	"sync/atomic"
	"testing"
)

// BenchmarkBlockCacheGetParallel hammers a cache-resident working set from
// parallel goroutines. With shards=1 every hit serializes through one
// mutex (and its LRU-order splice); sharding splits that critical section
// across independent locks. Run with -cpu 8 to expose the contention.
func BenchmarkBlockCacheGetParallel(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=auto", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			// 2x headroom: hashing spreads keys only approximately evenly,
			// and a shard that exceeds its slice of the budget would evict.
			const n = 4096
			c := NewBlockCache(2*n*(128+64), tc.shards)
			payload := make([]byte, 128)
			for i := 0; i < n; i++ {
				c.Insert(7, int64(i)*4096, payload)
			}
			var nextWorker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(nextWorker.Add(1)) * 7919
				for pb.Next() {
					i += 9973
					if _, ok := c.Get(7, int64(i%n)*4096); !ok {
						b.Fatal("cache-resident key missed")
					}
				}
			})
		})
	}
}
