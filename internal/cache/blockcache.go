package cache

// BlockKey identifies a cached data block.
type BlockKey struct {
	TableID uint64
	Offset  int64
}

func hashBlockKey(k BlockKey) uint64 {
	return mix64(k.TableID ^ mix64(uint64(k.Offset)))
}

// BlockCache is a byte-capacity LRU over decoded data blocks, sharded by
// key hash. It satisfies sstable.BlockCache and inherits its ownership
// rule: Insert transfers the slice to the cache, and Get hands back the
// shared backing array, which callers must treat as read-only.
type BlockCache struct {
	lru *sharded[BlockKey, []byte] //boltvet:guardedby none -- immutable after NewBlockCache; shards lock themselves
}

// NewBlockCache returns a block cache holding up to capacity bytes split
// across shards LRU shards (0 = auto-size to GOMAXPROCS, 1 = single
// lock).
func NewBlockCache(capacity int64, shards int) *BlockCache {
	return &BlockCache{lru: newSharded[BlockKey, []byte](shards, capacity, hashBlockKey, nil)}
}

// Get implements sstable.BlockCache.
func (c *BlockCache) Get(tableID uint64, off int64) ([]byte, bool) {
	return c.lru.get(BlockKey{tableID, off})
}

// Insert implements sstable.BlockCache.
func (c *BlockCache) Insert(tableID uint64, off int64, data []byte) {
	c.lru.insert(BlockKey{tableID, off}, data, int64(len(data))+64)
}

// UsedBytes returns the current charge.
func (c *BlockCache) UsedBytes() int64 { return c.lru.usedCharge() }

// Stats returns hit/miss counters aggregated across shards.
func (c *BlockCache) Stats() (hits, misses int64) { return c.lru.stats() }

// Shards returns the shard count the cache was built with.
func (c *BlockCache) Shards() int { return c.lru.shardCount() }
