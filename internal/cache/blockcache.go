package cache

// BlockKey identifies a cached data block.
type BlockKey struct {
	TableID uint64
	Offset  int64
}

// BlockCache is a byte-capacity LRU over decoded data blocks. It satisfies
// sstable.BlockCache.
type BlockCache struct {
	lru *lru[BlockKey, []byte]
}

// NewBlockCache returns a block cache holding up to capacity bytes.
func NewBlockCache(capacity int64) *BlockCache {
	return &BlockCache{lru: newLRU[BlockKey, []byte](capacity, nil)}
}

// Get implements sstable.BlockCache.
func (c *BlockCache) Get(tableID uint64, off int64) ([]byte, bool) {
	return c.lru.get(BlockKey{tableID, off})
}

// Insert implements sstable.BlockCache.
func (c *BlockCache) Insert(tableID uint64, off int64, data []byte) {
	c.lru.insert(BlockKey{tableID, off}, data, int64(len(data))+64)
}

// UsedBytes returns the current charge.
func (c *BlockCache) UsedBytes() int64 { return c.lru.usedCharge() }

// Stats returns hit/miss counters.
func (c *BlockCache) Stats() (hits, misses int64) { return c.lru.stats() }
