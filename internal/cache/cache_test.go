package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/simdisk"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[string, int](3, nil)
	c.insert("a", 1, 1)
	c.insert("b", 2, 1)
	c.insert("c", 3, 1)
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("get a = %d %v", v, ok)
	}
	// Inserting d evicts the LRU entry, which is now b.
	c.insert("d", 4, 1)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
}

func TestLRUCharges(t *testing.T) {
	var evicted []string
	c := newLRU[string, string](100, func(k, _ string) { evicted = append(evicted, k) })
	c.insert("big", "x", 80)
	c.insert("small", "y", 10)
	if c.usedCharge() != 90 {
		t.Fatalf("used = %d", c.usedCharge())
	}
	c.insert("huge", "z", 60) // exceeds: evicts big (LRU)
	if _, ok := c.get("big"); ok {
		t.Fatal("big should be evicted")
	}
	if len(evicted) == 0 || evicted[0] != "big" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU[string, int](10, nil)
	c.insert("a", 1, 2)
	c.insert("a", 2, 5)
	if v, _ := c.get("a"); v != 2 {
		t.Fatalf("a = %d", v)
	}
	if c.usedCharge() != 5 {
		t.Fatalf("used = %d", c.usedCharge())
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestLRURemoveAndClear(t *testing.T) {
	evictions := 0
	c := newLRU[int, int](10, func(int, int) { evictions++ })
	for i := 0; i < 5; i++ {
		c.insert(i, i, 1)
	}
	c.remove(2)
	if _, ok := c.get(2); ok {
		t.Fatal("2 not removed")
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
	c.clear()
	if c.len() != 0 || evictions != 5 {
		t.Fatalf("after clear: len=%d evictions=%d", c.len(), evictions)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU[int, int](128, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.insert(i%200, i, 1)
				c.get((i + g) % 200)
			}
		}(g)
	}
	wg.Wait()
}

func TestBlockCache(t *testing.T) {
	bc := NewBlockCache(1000, 1)
	bc.Insert(1, 0, make([]byte, 400))
	bc.Insert(1, 4096, make([]byte, 400))
	if _, ok := bc.Get(1, 0); !ok {
		t.Fatal("block 0 missing")
	}
	// Third insert exceeds byte capacity (each charge 464), evicting LRU.
	bc.Insert(2, 0, make([]byte, 400))
	if _, ok := bc.Get(1, 4096); ok {
		// 1,0 was touched more recently than 1,4096.
		t.Fatal("expected (1,4096) eviction")
	}
	hits, misses := bc.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats: %d/%d", hits, misses)
	}
}

// buildTableFile writes a single-table physical file and returns its meta.
func buildTableFile(t testing.TB, fs vfs.FS, num uint64, n int) *manifest.FileMeta {
	t.Helper()
	f, err := fs.Create(manifest.TableFileName(num))
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, 0, sstable.Config{})
	for i := 0; i < n; i++ {
		k := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("t%d-k%06d", num, i)), keys.Seq(i+1), keys.KindSet)
		if err := w.Add(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	return &manifest.FileMeta{
		Num: num, PhysNum: num, Offset: 0, Size: info.Size,
		Smallest: info.Smallest, Largest: info.Largest,
	}
}

func TestTableCacheHitMiss(t *testing.T) {
	fs := vfs.NewMem()
	tc := NewTableCache(fs, 2, 1, nil, nil, sstable.Config{})
	defer tc.Close()
	metas := []*manifest.FileMeta{
		buildTableFile(t, fs, 1, 100),
		buildTableFile(t, fs, 2, 100),
		buildTableFile(t, fs, 3, 100),
	}
	for _, m := range metas {
		r, release, err := tc.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumEntries() != 100 {
			t.Fatalf("entries = %d", r.NumEntries())
		}
		release()
	}
	// Capacity 2: table 1 evicted; re-getting it is a miss.
	before := tc.MetaBytesRead()
	r, release, err := tc.Get(metas[0])
	if err != nil {
		t.Fatal(err)
	}
	release()
	if tc.MetaBytesRead() <= before {
		t.Fatal("re-open after eviction should re-read metadata")
	}
	// A hit does not re-read metadata.
	before = tc.MetaBytesRead()
	_, release, err = tc.Get(metas[0])
	if err != nil {
		t.Fatal(err)
	}
	release()
	if tc.MetaBytesRead() != before {
		t.Fatal("cache hit re-read metadata")
	}
	_ = r
}

func TestTableCacheReaderSurvivesEviction(t *testing.T) {
	fs := vfs.NewMem()
	tc := NewTableCache(fs, 1, 1, nil, nil, sstable.Config{})
	defer tc.Close()
	m1 := buildTableFile(t, fs, 1, 50)
	m2 := buildTableFile(t, fs, 2, 50)

	r1, release1, err := tc.Get(m1)
	if err != nil {
		t.Fatal(err)
	}
	// Evict table 1 by loading table 2 into the size-1 cache.
	_, release2, err := tc.Get(m2)
	if err != nil {
		t.Fatal(err)
	}
	release2()
	// r1 must still be usable: its fd reference is held by release1.
	it := r1.NewIter(sstable.IterOpts{})
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 50 || it.Err() != nil {
		t.Fatalf("evicted reader: n=%d err=%v", n, it.Err())
	}
	it.Close()
	release1()
}

func TestFDCacheSharesDescriptors(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.AccountingProfile())
	fs := vfs.NewSim(dev)
	// Two logical tables in one physical file.
	f, _ := fs.Create(manifest.TableFileName(9))
	w1 := sstable.NewWriter(f, 0, sstable.Config{})
	w1.Add(keys.MakeInternalKey(nil, []byte("a"), 1, keys.KindSet), []byte("1"))
	info1, _ := w1.Finish()
	w2 := sstable.NewWriter(f, info1.Size, sstable.Config{})
	w2.Add(keys.MakeInternalKey(nil, []byte("b"), 2, keys.KindSet), []byte("2"))
	info2, _ := w2.Finish()
	f.Sync()
	f.Close()
	m1 := &manifest.FileMeta{Num: 101, PhysNum: 9, Offset: 0, Size: info1.Size, Smallest: info1.Smallest, Largest: info1.Largest}
	m2 := &manifest.FileMeta{Num: 102, PhysNum: 9, Offset: info1.Size, Size: info2.Size, Smallest: info2.Smallest, Largest: info2.Largest}

	fdc := NewFDCache(fs, 100, 4)
	defer fdc.Close()
	tc := NewTableCache(fs, 100, 4, fdc, nil, sstable.Config{})
	defer tc.Close()

	opsBefore := dev.Stats().MetadataOps
	_, rel1, err := tc.Get(m1)
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	opsAfterFirst := dev.Stats().MetadataOps
	_, rel2, err := tc.Get(m2)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	opsAfterSecond := dev.Stats().MetadataOps

	if opsAfterFirst == opsBefore {
		t.Fatal("first open should cost a metadata op")
	}
	if opsAfterSecond != opsAfterFirst {
		t.Fatalf("second logical table should reuse the descriptor: %d extra ops",
			opsAfterSecond-opsAfterFirst)
	}
	hits, _ := fdc.Stats()
	if hits == 0 {
		t.Fatal("fd cache recorded no hits")
	}
}

func TestFDCacheEvictClosesWhenUnused(t *testing.T) {
	fs := vfs.NewMem()
	buildTableFile(t, fs, 1, 10)
	fdc := NewFDCache(fs, 10, 4)
	e, err := fdc.acquireEntry(1)
	if err != nil {
		t.Fatal(err)
	}
	fdc.Evict(1)
	// Entry still referenced by us: file must be open.
	buf := make([]byte, 1)
	if _, err := e.file.ReadAt(buf, 0); err != nil {
		t.Fatalf("file closed while referenced: %v", err)
	}
	e.release()
	if _, err := e.file.ReadAt(buf, 0); err == nil {
		t.Fatal("file should be closed after last release")
	}
}

func TestTableCacheEvictByNumber(t *testing.T) {
	fs := vfs.NewMem()
	tc := NewTableCache(fs, 10, 4, nil, nil, sstable.Config{})
	defer tc.Close()
	m := buildTableFile(t, fs, 1, 10)
	_, release, err := tc.Get(m)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if tc.Len() != 1 {
		t.Fatalf("len = %d", tc.Len())
	}
	tc.Evict(m.Num)
	if tc.Len() != 0 {
		t.Fatalf("len after evict = %d", tc.Len())
	}
}
