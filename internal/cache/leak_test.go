package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// handleCountFS counts net open handles so leak tests can assert that
// every descriptor opened by the caches is eventually closed. An optional
// openGate blocks Open until released, letting tests pile goroutines onto
// one miss deterministically.
type handleCountFS struct {
	vfs.FS
	opens  atomic.Int64
	closes atomic.Int64

	mu       sync.Mutex
	openGate chan struct{}
}

func (fs *handleCountFS) setGate(gate chan struct{}) {
	fs.mu.Lock()
	fs.openGate = gate
	fs.mu.Unlock()
}

func (fs *handleCountFS) Open(name string) (vfs.File, error) {
	fs.mu.Lock()
	gate := fs.openGate
	fs.mu.Unlock()
	if gate != nil {
		<-gate
	}
	f, err := fs.FS.Open(name)
	if err != nil {
		return nil, err
	}
	fs.opens.Add(1)
	return &handleCountFile{File: f, fs: fs}, nil
}

func (fs *handleCountFS) openHandles() int64 { return fs.opens.Load() - fs.closes.Load() }

type handleCountFile struct {
	vfs.File
	fs *handleCountFS
}

func (f *handleCountFile) Close() error {
	f.fs.closes.Add(1)
	return f.File.Close()
}

// TestLRUInsertEvictsDisplacedValue is the unit-level regression for the
// fd leak: replacing a key's value must run onEvict on the displaced
// value, since the concrete caches hold a reference on behalf of every
// resident value.
func TestLRUInsertEvictsDisplacedValue(t *testing.T) {
	var evicted []int
	c := newLRU[string, int](10, func(_ string, v int) { evicted = append(evicted, v) })
	c.insert("a", 1, 1)
	c.insert("a", 2, 1)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("displaced value not evicted: evicted=%v", evicted)
	}
	if v, _ := c.get("a"); v != 2 {
		t.Fatalf("a = %d, want the replacement", v)
	}
	c.clear()
	if len(evicted) != 2 || evicted[1] != 2 {
		t.Fatalf("clear did not evict the survivor: evicted=%v", evicted)
	}
}

// TestLRUInsertAfterClearEvictsImmediately covers the Get-racing-Close
// window: an insert that lands after clear must not strand a referenced
// value in a cache nobody will ever clear again.
func TestLRUInsertAfterClearEvictsImmediately(t *testing.T) {
	var evicted []int
	c := newLRU[string, int](10, func(_ string, v int) { evicted = append(evicted, v) })
	c.clear()
	c.insert("a", 7, 1)
	if len(evicted) != 1 || evicted[0] != 7 {
		t.Fatalf("post-clear insert not evicted: evicted=%v", evicted)
	}
	if c.len() != 0 {
		t.Fatalf("len = %d after post-clear insert", c.len())
	}
}

// TestTableCacheRacingMissLeak is the end-to-end fd-leak regression: many
// goroutines race misses on the same tables, everything is released and
// closed, and the net open-handle count must come back to zero. On the
// pre-fix lru.insert (silent overwrite, no singleflight) the displaced
// entries' descriptors stayed open forever and this test fails.
func TestTableCacheRacingMissLeak(t *testing.T) {
	// The regression must hold per shard and across shards: run the same
	// 1000-racing-misses workload on the single-lock layout and on a
	// sharded one (where per-shard capacity is a fraction of the total
	// and misses on different tables coalesce in different flights).
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testTableCacheRacingMissLeak(t, shards)
		})
	}
}

func testTableCacheRacingMissLeak(t *testing.T, shards int) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	const tables = 4
	var metas []*manifest.FileMeta
	for i := uint64(1); i <= tables; i++ {
		metas = append(metas, buildTableFile(t, fs, i, 20))
	}

	tc := NewTableCache(fs, tables, shards, nil, nil, sstable.Config{})
	const goroutines = 8
	const rounds = 125 // x8 goroutines = 1000 racing Get attempts
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				m := metas[(g+i)%tables]
				r, release, err := tc.Get(m)
				if err != nil {
					t.Error(err)
					return
				}
				if r.NumEntries() != 20 {
					t.Errorf("entries = %d", r.NumEntries())
				}
				release()
				// Evict to force the next Get on this table to miss,
				// keeping the racing-miss path hot.
				tc.Evict(m.Num)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	tc.Close()

	if n := fs.openHandles(); n != 0 {
		t.Fatalf("leaked %d file handles after %d racing misses (opened %d, closed %d)",
			n, goroutines*rounds, fs.opens.Load(), fs.closes.Load())
	}
}

// TestTableCacheSingleflightChargesOnce gates the filesystem open so a
// pack of goroutines provably piles onto one miss, then asserts the
// Figure-6 metadata accounting charged exactly one read and the
// filesystem saw exactly one open.
func TestTableCacheSingleflightChargesOnce(t *testing.T) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	m := buildTableFile(t, fs, 1, 50)
	tc := NewTableCache(fs, 4, 4, nil, nil, sstable.Config{})
	defer tc.Close()

	gate := make(chan struct{})
	fs.setGate(gate)
	const goroutines = 8
	var wg sync.WaitGroup
	releases := make(chan func(), goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, release, err := tc.Get(m)
			if err != nil {
				t.Error(err)
				return
			}
			releases <- release
		}()
	}
	close(gate)
	wg.Wait()
	close(releases)
	for release := range releases {
		release()
	}

	if n := fs.opens.Load(); n != 1 {
		t.Fatalf("%d filesystem opens for one coalesced miss, want 1", n)
	}
	r, release, err := tc.Get(m)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got := tc.MetaBytesRead(); got != r.MetaSize() {
		t.Fatalf("metaBytesRead = %d, want exactly one metadata read of %d bytes", got, r.MetaSize())
	}
}

// TestFDCacheRacingMissLeak is the same regression at the descriptor
// layer: racing acquireEntry calls plus evictions must not leak handles.
func TestFDCacheRacingMissLeak(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testFDCacheRacingMissLeak(t, shards)
		})
	}
}

func testFDCacheRacingMissLeak(t *testing.T, shards int) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	const files = 3
	for i := uint64(1); i <= files; i++ {
		buildTableFile(t, fs, i, 5)
	}
	fdc := NewFDCache(fs, files, shards)
	const goroutines = 8
	const rounds = 125
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				phys := uint64((g+i)%files + 1)
				e, err := fdc.acquireEntry(phys)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 1)
				if _, err := e.file.ReadAt(buf, 0); err != nil {
					t.Errorf("read on held entry: %v", err)
				}
				e.release()
				fdc.Evict(phys)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	fdc.Close()

	if n := fs.openHandles(); n != 0 {
		t.Fatalf("leaked %d descriptors (opened %d, closed %d)", n, fs.opens.Load(), fs.closes.Load())
	}
}

// TestTableCacheGetEvictCloseStress races Get, Evict, and Close across
// overlapping tables; run under -race in CI. Whatever interleaving
// happens, no handle may remain open once all references are released.
func TestTableCacheGetEvictCloseStress(t *testing.T) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	const tables = 6
	var metas []*manifest.FileMeta
	for i := uint64(1); i <= tables; i++ {
		metas = append(metas, buildTableFile(t, fs, i, 10))
	}
	fdc := NewFDCache(fs, 4, 4)
	tc := NewTableCache(fs, 3, 4, fdc, nil, sstable.Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := metas[(g*7+i)%tables]
				r, release, err := tc.Get(m)
				if err != nil {
					continue // Close may have raced the open; that's the point
				}
				it := r.NewIter(sstable.IterOpts{})
				it.First()
				it.Close()
				release()
				if i%3 == 0 {
					tc.Evict(m.Num)
				}
				if i%5 == 0 {
					fdc.Evict(m.PhysNum)
				}
			}
		}(g)
	}
	// Let the workers run, then race Close against them.
	for i := 0; i < 1000; i++ {
		tc.Len()
	}
	tc.Close()
	fdc.Close()
	close(stop)
	wg.Wait()

	if n := fs.openHandles(); n != 0 {
		t.Fatalf("leaked %d handles after Get/Evict/Close stress (opened %d, closed %d)",
			n, fs.opens.Load(), fs.closes.Load())
	}
}

// TestFDCacheAcquireEvictRace pins the get-then-acquire window: lru.get
// returns the entry with the lru mutex released, so a concurrent Evict
// could drop the cache's last reference — closing the descriptor — before
// the getter took its own. The acquirer must detect the closed entry and
// fall back to opening a fresh one instead of resurrecting it.
func TestFDCacheAcquireEvictRace(t *testing.T) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	buildTableFile(t, fs, 1, 5)
	fdc := NewFDCache(fs, 2, 4)

	stop := make(chan struct{})
	var evictors sync.WaitGroup
	evictors.Add(1)
	go func() {
		defer evictors.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fdc.Evict(1)
			}
		}
	}()

	const goroutines = 4
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 1)
			for i := 0; i < rounds; i++ {
				e, err := fdc.acquireEntry(1)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.file.ReadAt(buf, 0); err != nil {
					t.Errorf("read on held entry: %v", err)
					e.release()
					return
				}
				e.release()
			}
		}()
	}
	wg.Wait()
	close(stop)
	evictors.Wait()
	fdc.Close()

	if n := fs.openHandles(); n != 0 {
		t.Fatalf("leaked %d descriptors (opened %d, closed %d)", n, fs.opens.Load(), fs.closes.Load())
	}
}

// TestFDEntryTryAcquireAfterClose is the deterministic half of the race
// regression above: once release drops the last reference (closing the
// file), tryAcquire must refuse to resurrect the entry.
func TestFDEntryTryAcquireAfterClose(t *testing.T) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	buildTableFile(t, fs, 1, 5)
	f, err := fs.Open(manifest.TableFileName(1))
	if err != nil {
		t.Fatal(err)
	}
	e := &fdEntry{file: f, refs: 1}
	if !e.tryAcquire() {
		t.Fatal("tryAcquire refused a live entry")
	}
	e.release()
	e.release() // last reference: closes the file
	if fs.openHandles() != 0 {
		t.Fatalf("file not closed on last release (open handles: %d)", fs.openHandles())
	}
	if e.tryAcquire() {
		t.Fatal("tryAcquire resurrected a closed entry")
	}
}
