// Package cache implements the three caches of the engine:
//
//   - BlockCache: data blocks, capacity in bytes (LevelDB's block_cache).
//   - TableCache: open table readers (index + bloom metadata), capacity in
//     *number of tables* — the paper stresses that LevelDB sizes this cache
//     by file count (max_open_files), so large SSTables consume far more
//     memory per entry and a miss costs a metadata read proportional to the
//     table size.
//   - FDCache: open physical-file handles, keyed by physical file number.
//     BoLT's +FC optimization caches descriptors per compaction file;
//     without it every TableCache miss pays a filesystem open.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is a mutex-guarded LRU map with per-entry charges and an eviction
// callback, shared by the concrete caches (one instance per shard since
// the caches went sharded). Eviction callbacks always run with mu
// released, and every value that enters the cache is handed to onEvict
// exactly once on its way out — whether it is evicted by capacity,
// displaced by an insert on its key, removed, or cleared.
//
// The hit/miss/used counters are atomics, not mu-guarded state: get
// touches the mutex only for the map lookup and recency update, and the
// stats/usedCharge readers never contend with it at all.
type lru[K comparable, V any] struct {
	// capacity and onEvict are immutable after newLRU.
	capacity int64      //boltvet:guardedby none -- immutable after newLRU
	onEvict  func(K, V) //boltvet:guardedby none -- immutable after newLRU

	// mu guards the map/list state below.
	mu      sync.Mutex
	entries map[K]*list.Element //boltvet:guardedby mu
	order   *list.List          //boltvet:guardedby mu -- front = most recent
	closed  bool                //boltvet:guardedby mu

	// used is written only while mu is held (insert/remove/clear mutate
	// it together with the list) but read lock-free by usedCharge.
	used   atomic.Int64 //boltvet:guardedby atomic
	hits   atomic.Int64 //boltvet:guardedby atomic
	misses atomic.Int64 //boltvet:guardedby atomic
}

type lruEntry[K comparable, V any] struct {
	key    K
	value  V
	charge int64
}

// newLRU builds one LRU shard. A non-positive capacity would otherwise
// build a cache that can never retain an entry (the callers' knobs treat
// zero as "use the default" long before this layer, so a non-positive
// value here is a bug or an aggressive shard split); clamp to 1 so the
// shard can always hold at least one entry.
func newLRU[K comparable, V any](capacity int64, onEvict func(K, V)) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
		onEvict:  onEvict,
	}
}

func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		v := el.Value.(*lruEntry[K, V]).value
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// insert adds or replaces the entry for key. A value displaced by a
// same-key replacement is evicted through onEvict like any other — the
// fd/table caches hold a reference on behalf of each resident value, so
// silently dropping the old one would leak its descriptor. Inserting into
// a closed cache evicts value immediately instead of retaining it.
func (c *lru[K, V]) insert(key K, value V, charge int64) {
	var evicted []*lruEntry[K, V]
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if c.onEvict != nil {
			c.onEvict(key, value)
		}
		return
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*lruEntry[K, V])
		c.used.Add(-old.charge)
		evicted = append(evicted, &lruEntry[K, V]{key: old.key, value: old.value, charge: old.charge})
		old.value = value
		old.charge = charge
		c.used.Add(charge)
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&lruEntry[K, V]{key: key, value: value, charge: charge})
		c.entries[key] = el
		c.used.Add(charge)
	}
	// The loop runs down to an empty list: an entry whose charge alone
	// exceeds capacity is evicted immediately (it is the LRU tail the
	// moment anything else is touched anyway) instead of being pinned
	// forever holding used > capacity — with per-shard capacities a
	// fraction of the cache total, one oversized block would otherwise
	// wedge its whole shard over budget.
	for c.used.Load() > c.capacity && c.order.Len() > 0 {
		back := c.order.Back()
		e := back.Value.(*lruEntry[K, V])
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used.Add(-e.charge)
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.value)
		}
	}
}

func (c *lru[K, V]) remove(key K) {
	c.mu.Lock()
	el, ok := c.entries[key]
	var e *lruEntry[K, V]
	if ok {
		e = el.Value.(*lruEntry[K, V])
		c.order.Remove(el)
		delete(c.entries, key)
		c.used.Add(-e.charge)
	}
	c.mu.Unlock()
	if ok && c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}

func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *lru[K, V]) usedCharge() int64 {
	return c.used.Load()
}

func (c *lru[K, V]) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// clear evicts everything and closes the cache: later inserts evict their
// value immediately instead of retaining it, so a racing miss that
// completes after Close cannot strand a referenced entry.
func (c *lru[K, V]) clear() {
	c.mu.Lock()
	c.closed = true
	var all []*lruEntry[K, V]
	for el := c.order.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*lruEntry[K, V]))
	}
	c.entries = make(map[K]*list.Element)
	c.order.Init()
	c.used.Store(0)
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range all {
			c.onEvict(e.key, e.value)
		}
	}
}
