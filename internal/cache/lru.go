// Package cache implements the three caches of the engine:
//
//   - BlockCache: data blocks, capacity in bytes (LevelDB's block_cache).
//   - TableCache: open table readers (index + bloom metadata), capacity in
//     *number of tables* — the paper stresses that LevelDB sizes this cache
//     by file count (max_open_files), so large SSTables consume far more
//     memory per entry and a miss costs a metadata read proportional to the
//     table size.
//   - FDCache: open physical-file handles, keyed by physical file number.
//     BoLT's +FC optimization caches descriptors per compaction file;
//     without it every TableCache miss pays a filesystem open.
package cache

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded LRU map with per-entry charges and an eviction
// callback, shared by the concrete caches. Eviction callbacks always run
// with mu released, and every value that enters the cache is handed to
// onEvict exactly once on its way out — whether it is evicted by
// capacity, displaced by an insert on its key, removed, or cleared.
type lru[K comparable, V any] struct {
	// capacity and onEvict are immutable after newLRU.
	capacity int64      //boltvet:guardedby none -- immutable after newLRU
	onEvict  func(K, V) //boltvet:guardedby none -- immutable after newLRU

	// mu guards the map/list state below.
	mu      sync.Mutex
	used    int64               //boltvet:guardedby mu
	entries map[K]*list.Element //boltvet:guardedby mu
	order   *list.List          //boltvet:guardedby mu -- front = most recent
	closed  bool                //boltvet:guardedby mu

	hits, misses int64 //boltvet:guardedby mu
}

type lruEntry[K comparable, V any] struct {
	key    K
	value  V
	charge int64
}

func newLRU[K comparable, V any](capacity int64, onEvict func(K, V)) *lru[K, V] {
	return &lru[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
		onEvict:  onEvict,
	}
}

func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// insert adds or replaces the entry for key. A value displaced by a
// same-key replacement is evicted through onEvict like any other — the
// fd/table caches hold a reference on behalf of each resident value, so
// silently dropping the old one would leak its descriptor. Inserting into
// a closed cache evicts value immediately instead of retaining it.
func (c *lru[K, V]) insert(key K, value V, charge int64) {
	var evicted []*lruEntry[K, V]
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if c.onEvict != nil {
			c.onEvict(key, value)
		}
		return
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*lruEntry[K, V])
		c.used -= old.charge
		evicted = append(evicted, &lruEntry[K, V]{key: old.key, value: old.value, charge: old.charge})
		old.value = value
		old.charge = charge
		c.used += charge
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&lruEntry[K, V]{key: key, value: value, charge: charge})
		c.entries[key] = el
		c.used += charge
	}
	for c.used > c.capacity && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*lruEntry[K, V])
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.charge
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.value)
		}
	}
}

func (c *lru[K, V]) remove(key K) {
	c.mu.Lock()
	el, ok := c.entries[key]
	var e *lruEntry[K, V]
	if ok {
		e = el.Value.(*lruEntry[K, V])
		c.order.Remove(el)
		delete(c.entries, key)
		c.used -= e.charge
	}
	c.mu.Unlock()
	if ok && c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}

func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *lru[K, V]) usedCharge() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *lru[K, V]) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// clear evicts everything and closes the cache: later inserts evict their
// value immediately instead of retaining it, so a racing miss that
// completes after Close cannot strand a referenced entry.
func (c *lru[K, V]) clear() {
	c.mu.Lock()
	c.closed = true
	var all []*lruEntry[K, V]
	for el := c.order.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*lruEntry[K, V]))
	}
	c.entries = make(map[K]*list.Element)
	c.order.Init()
	c.used = 0
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range all {
			c.onEvict(e.key, e.value)
		}
	}
}
