package cache

import "runtime"

// maxCacheShards caps both auto-sizing and explicit requests. Past this
// point additional shards stop reducing contention (the engine never runs
// that many concurrent readers) and only fragment capacity.
const maxCacheShards = 64

// resolveShardCount maps the CacheShards knob to the shard count actually
// built: a non-positive request auto-sizes to GOMAXPROCS at construction
// time, and every count is rounded up to a power of two (so shard
// selection is a mask, not a modulo) and capped at maxCacheShards.
func resolveShardCount(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxCacheShards {
		n = maxCacheShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is a 64-bit finalizer (SplitMix64's) that diffuses every input
// bit across the output. The caches key on small dense integers (file and
// table numbers, block offsets); without mixing, consecutive numbers
// would stripe shards in lockstep with allocation order.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sharded hash-partitions keys across independent lru shards so
// concurrent gets contend on one shard's mutex each instead of a single
// cache-wide lock. Capacity is split evenly with the remainder spread one
// unit at a time over the leading shards; newLRU clamps a shard's slice
// to at least 1 so aggressive splits cannot produce a shard that can
// never hold an entry.
type sharded[K comparable, V any] struct {
	// All fields are set by newSharded and never reassigned.
	hash   func(K) uint64 //boltvet:guardedby none -- immutable after newSharded
	mask   uint64         //boltvet:guardedby none -- immutable after newSharded
	shards []*lru[K, V]   //boltvet:guardedby none -- immutable after newSharded; each shard locks itself
}

func newSharded[K comparable, V any](shardCount int, capacity int64, hash func(K) uint64, onEvict func(K, V)) *sharded[K, V] {
	n := resolveShardCount(shardCount)
	s := &sharded[K, V]{
		hash:   hash,
		mask:   uint64(n - 1),
		shards: make([]*lru[K, V], n),
	}
	base := capacity / int64(n)
	rem := capacity % int64(n)
	for i := range s.shards {
		c := base
		if int64(i) < rem {
			c++
		}
		s.shards[i] = newLRU[K, V](c, onEvict)
	}
	return s
}

// shardIndex returns the shard owning key. The fd/table caches use the
// same index for their singleflight state, keeping "one shard = one
// contention domain" true across both structures.
func (s *sharded[K, V]) shardIndex(key K) int { return int(s.hash(key) & s.mask) }

func (s *sharded[K, V]) shard(key K) *lru[K, V] { return s.shards[s.shardIndex(key)] }

func (s *sharded[K, V]) shardCount() int { return len(s.shards) }

func (s *sharded[K, V]) get(key K) (V, bool) { return s.shard(key).get(key) }

func (s *sharded[K, V]) insert(key K, value V, charge int64) {
	s.shard(key).insert(key, value, charge)
}

func (s *sharded[K, V]) remove(key K) { s.shard(key).remove(key) }

func (s *sharded[K, V]) len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.len()
	}
	return n
}

func (s *sharded[K, V]) usedCharge() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.usedCharge()
	}
	return n
}

func (s *sharded[K, V]) stats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.stats()
		hits += h
		misses += m
	}
	return hits, misses
}

func (s *sharded[K, V]) clear() {
	for _, sh := range s.shards {
		sh.clear()
	}
}
