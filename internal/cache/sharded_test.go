package cache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestLRUOversizedEntryEvicted is the regression for the pinned-oversized-
// entry bug: the eviction loop's old `order.Len() > 1` guard kept a value
// whose charge alone exceeds capacity resident forever, holding
// used > capacity. It must instead be evicted through onEvict like any
// other entry.
func TestLRUOversizedEntryEvicted(t *testing.T) {
	var evicted []string
	c := newLRU[string, string](10, func(k, _ string) { evicted = append(evicted, k) })
	c.insert("giant", "x", 20)
	if _, ok := c.get("giant"); ok {
		t.Fatal("oversized entry stayed resident")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
	if c.usedCharge() != 0 {
		t.Fatalf("used = %d, want 0 (cache wedged over budget)", c.usedCharge())
	}
	if len(evicted) != 1 || evicted[0] != "giant" {
		t.Fatalf("evicted = %v, want the oversized entry exactly once", evicted)
	}

	// An oversized same-key replacement of a resident entry must release
	// both the displaced value and the replacement.
	evicted = nil
	c.insert("a", "small", 1)
	c.insert("a", "big", 20)
	if len(evicted) != 2 {
		t.Fatalf("evicted = %v, want displaced value and oversized replacement", evicted)
	}
	if c.len() != 0 || c.usedCharge() != 0 {
		t.Fatalf("len=%d used=%d after oversized replacement", c.len(), c.usedCharge())
	}
}

// TestLRUNonPositiveCapacityClamped: a zero or negative capacity used to
// build a cache that could never retain an entry (or never evict); it is
// clamped so the cache can always hold at least one unit of charge.
func TestLRUNonPositiveCapacityClamped(t *testing.T) {
	for _, capacity := range []int64{0, -5} {
		c := newLRU[string, int](capacity, nil)
		c.insert("a", 1, 1)
		if _, ok := c.get("a"); !ok {
			t.Fatalf("capacity %d: cache cannot hold a single charge-1 entry", capacity)
		}
		c.insert("b", 2, 1) // displaces a: clamped capacity is 1, not unlimited
		if c.usedCharge() > 1 {
			t.Fatalf("capacity %d: used = %d, clamped cache never evicts", capacity, c.usedCharge())
		}
	}
}

func TestResolveShardCount(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 64}, {1000, 64},
	}
	for _, c := range cases {
		if got := resolveShardCount(c.in); got != c.want {
			t.Errorf("resolveShardCount(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Auto (<= 0) resolves to a power of two >= 1 regardless of GOMAXPROCS.
	for _, in := range []int{0, -1} {
		got := resolveShardCount(in)
		if got < 1 || got > maxCacheShards || got&(got-1) != 0 {
			t.Errorf("resolveShardCount(%d) = %d, want a capped power of two", in, got)
		}
	}
}

// TestShardedCapacitySplit: capacity splits evenly with the remainder
// spread over the leading shards, and undersized splits clamp to 1 per
// shard rather than building shards that can never hold an entry.
func TestShardedCapacitySplit(t *testing.T) {
	s := newSharded[uint64, int](4, 10, mix64, nil)
	var total int64
	for _, sh := range s.shards {
		if sh.capacity < 2 || sh.capacity > 3 {
			t.Fatalf("shard capacity %d, want 2 or 3", sh.capacity)
		}
		total += sh.capacity
	}
	if total != 10 {
		t.Fatalf("split capacity sums to %d, want 10", total)
	}
	// 2 units over 4 shards: every shard still holds at least 1.
	s = newSharded[uint64, int](4, 2, mix64, nil)
	for _, sh := range s.shards {
		if sh.capacity != 1 {
			t.Fatalf("undersized split: shard capacity %d, want clamp to 1", sh.capacity)
		}
	}
}

// TestShardedDistribution: dense sequential keys (file numbers, block
// offsets) must spread across shards rather than striping a few.
func TestShardedDistribution(t *testing.T) {
	const shards, n = 8, 8192
	s := newSharded[uint64, int](shards, n, mix64, nil)
	counts := make([]int, shards)
	for k := uint64(0); k < n; k++ {
		counts[s.shardIndex(k)]++
	}
	mean := n / shards
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d holds %d of %d keys (mean %d): bad spread %v",
				i, c, n, mean, counts)
		}
	}

	// Block keys from one hot table must not collapse onto one shard.
	bs := newSharded[BlockKey, int](shards, n, hashBlockKey, nil)
	counts = make([]int, shards)
	for i := 0; i < 512; i++ {
		counts[bs.shardIndex(BlockKey{TableID: 7, Offset: int64(i) * 4096})]++
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < shards/2 {
		t.Fatalf("one table's blocks landed on %d of %d shards: %v", nonEmpty, shards, counts)
	}
}

// TestShardedSingleShardEquivalence: with shards=1 the sharded wrapper
// must behave exactly like the bare lru — same residency, same eviction
// order, same stats — so CacheShards=1 truly is "today's behavior" for
// the crash/bit-rot harnesses.
func TestShardedSingleShardEquivalence(t *testing.T) {
	var evictedS, evictedL []uint64
	s := newSharded[uint64, int](1, 3, mix64, func(k uint64, _ int) { evictedS = append(evictedS, k) })
	l := newLRU[uint64, int](3, func(k uint64, _ int) { evictedL = append(evictedL, k) })

	ops := []struct {
		kind string
		key  uint64
	}{
		{"insert", 1}, {"insert", 2}, {"insert", 3},
		{"get", 1}, {"insert", 4}, // evicts 2 (LRU after touching 1)
		{"get", 2}, {"remove", 3}, {"insert", 5}, {"insert", 1},
	}
	for _, op := range ops {
		switch op.kind {
		case "insert":
			s.insert(op.key, int(op.key), 1)
			l.insert(op.key, int(op.key), 1)
		case "get":
			_, okS := s.get(op.key)
			_, okL := l.get(op.key)
			if okS != okL {
				t.Fatalf("get(%d): sharded=%v lru=%v", op.key, okS, okL)
			}
		case "remove":
			s.remove(op.key)
			l.remove(op.key)
		}
	}
	if fmt.Sprint(evictedS) != fmt.Sprint(evictedL) {
		t.Fatalf("eviction order diverged: sharded=%v lru=%v", evictedS, evictedL)
	}
	hS, mS := s.stats()
	hL, mL := l.stats()
	if hS != hL || mS != mL {
		t.Fatalf("stats diverged: sharded=%d/%d lru=%d/%d", hS, mS, hL, mL)
	}
	if s.len() != l.len() || s.usedCharge() != l.usedCharge() {
		t.Fatalf("residency diverged: sharded len=%d used=%d, lru len=%d used=%d",
			s.len(), s.usedCharge(), l.len(), l.usedCharge())
	}
}

// TestShardedConcurrent races get/insert/remove/clear across shards.
func TestShardedConcurrent(t *testing.T) {
	s := newSharded[uint64, int](8, 256, mix64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64((i + g*31) % 400)
				switch i % 7 {
				case 0:
					s.remove(k)
				case 1:
					s.stats()
					s.usedCharge()
				default:
					s.insert(k, i, 1)
					s.get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	s.clear()
	if s.len() != 0 {
		t.Fatalf("len = %d after clear", s.len())
	}
}

// TestTableCacheCrossShardSingleflight gates the filesystem and fires
// concurrent misses on tables in *different* shards: each shard runs its
// own flight with its own leader, yet the per-table accounting still
// charges exactly one open and one metadata read per table.
func TestTableCacheCrossShardSingleflight(t *testing.T) {
	fs := &handleCountFS{FS: vfs.NewMem()}
	const tables = 4
	var metas []*manifest.FileMeta
	for i := uint64(1); i <= tables; i++ {
		metas = append(metas, buildTableFile(t, fs, i, 10))
	}
	// Capacity well above the table count: two tables hashing to one
	// shard must not evict each other mid-test (per-shard capacity is
	// total/shards).
	tc := NewTableCache(fs, 64, 4, nil, nil, sstable.Config{})
	defer tc.Close()

	// Sanity: the table numbers actually spread over more than one shard,
	// otherwise this test silently degrades to the single-shard one.
	shardsSeen := map[int]bool{}
	for _, m := range metas {
		shardsSeen[tc.lru.shardIndex(m.Num)] = true
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("all %d tables hashed to one shard; pick different table numbers", tables)
	}

	gate := make(chan struct{})
	fs.setGate(gate)
	const perTable = 4
	var wg sync.WaitGroup
	releases := make(chan func(), tables*perTable)
	for _, m := range metas {
		for g := 0; g < perTable; g++ {
			wg.Add(1)
			go func(m *manifest.FileMeta) {
				defer wg.Done()
				r, release, err := tc.Get(m)
				if err != nil {
					t.Error(err)
					return
				}
				if r.NumEntries() != 10 {
					t.Errorf("entries = %d", r.NumEntries())
				}
				releases <- release
			}(m)
		}
	}
	close(gate)
	wg.Wait()
	close(releases)
	for release := range releases {
		release()
	}

	if n := fs.opens.Load(); n != tables {
		t.Fatalf("%d filesystem opens for %d coalesced per-table misses, want %d",
			n, tables*perTable, tables)
	}
	var wantMeta int64
	for _, m := range metas {
		r, release, err := tc.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		wantMeta += r.MetaSize()
		release()
	}
	if got := tc.MetaBytesRead(); got != wantMeta {
		t.Fatalf("metaBytesRead = %d, want exactly one read per table = %d", got, wantMeta)
	}
	if h, m := tc.Stats(); h == 0 || m == 0 {
		t.Fatalf("aggregated stats: hits=%d misses=%d", h, m)
	}
}
