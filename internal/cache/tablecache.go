package cache

import (
	"fmt"
	"sync"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// fdEntry is a shared physical-file handle with reference counting so an
// evicted descriptor is only closed once no table reader uses it.
type fdEntry struct {
	mu     sync.Mutex
	file   vfs.File
	refs   int // table readers + (1 while resident in the fd cache)
	closed bool
}

func (e *fdEntry) acquire() {
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
}

func (e *fdEntry) release() {
	e.mu.Lock()
	e.refs--
	shouldClose := e.refs == 0 && !e.closed
	if shouldClose {
		e.closed = true
	}
	e.mu.Unlock()
	if shouldClose {
		_ = e.file.Close()
	}
}

// FDCache caches open physical-file handles keyed by physical file number.
// This is BoLT's +FC element: with compaction files, many logical SSTables
// share one descriptor, so the filesystem open cost is paid once per
// compaction file instead of once per SSTable.
type FDCache struct {
	fs  vfs.FS
	lru *lru[uint64, *fdEntry]
}

// NewFDCache returns an fd cache over fs holding up to capacity handles.
func NewFDCache(fs vfs.FS, capacity int) *FDCache {
	c := &FDCache{fs: fs}
	c.lru = newLRU[uint64, *fdEntry](int64(capacity), func(_ uint64, e *fdEntry) {
		e.release() // drop the cache's own reference
	})
	return c
}

// Acquire returns a referenced handle for physical file physNum, opening
// it on miss. Callers must call release (via the returned entry) when done.
func (c *FDCache) acquireEntry(physNum uint64) (*fdEntry, error) {
	if e, ok := c.lru.get(physNum); ok {
		e.acquire()
		return e, nil
	}
	f, err := c.fs.Open(manifest.TableFileName(physNum))
	if err != nil {
		return nil, fmt.Errorf("cache: open table file %d: %w", physNum, err)
	}
	e := &fdEntry{file: f, refs: 1} // the cache's reference
	e.acquire()                     // the caller's reference
	c.lru.insert(physNum, e, 1)
	return e, nil
}

// Evict drops the cached handle for physNum (called when the physical file
// is deleted).
func (c *FDCache) Evict(physNum uint64) { c.lru.remove(physNum) }

// Stats returns hit/miss counters.
func (c *FDCache) Stats() (hits, misses int64) { return c.lru.stats() }

// Close evicts all handles.
func (c *FDCache) Close() { c.lru.clear() }

// Table is a cached open table: a reader plus its file reference.
type Table struct {
	Reader *sstable.Reader
	fd     *fdEntry
}

func (t *Table) close() {
	if t.fd != nil {
		t.fd.release()
	}
}

// TableCache caches open table readers keyed by logical table number. Its
// capacity is a *table count*, mirroring LevelDB's max_open_files
// semantics that the paper's TableCache analysis (Section 2.6) depends on.
// A miss re-opens the table, which costs one metadata read of the table's
// filter+index blocks — proportional to table size.
type TableCache struct {
	fs         vfs.FS
	fdCache    *FDCache // nil means descriptors are opened per table
	blockCache sstable.BlockCache
	cfg        sstable.Config
	lru        *lru[uint64, *Table]

	// metaBytesRead accumulates the bytes of filter+index fetched on
	// misses — the metadata-caching overhead measured in Figure 6.
	mu            sync.Mutex
	metaBytesRead int64
}

// NewTableCache returns a table cache holding up to capacity tables.
// fdCache may be nil (the +FC optimization disabled): each cached table
// then owns a private descriptor opened at miss time.
func NewTableCache(fs vfs.FS, capacity int, fdCache *FDCache, blockCache sstable.BlockCache, cfg sstable.Config) *TableCache {
	c := &TableCache{fs: fs, fdCache: fdCache, blockCache: blockCache, cfg: cfg}
	c.lru = newLRU[uint64, *Table](int64(capacity), func(_ uint64, t *Table) {
		t.close()
	})
	return c
}

// Get returns an open reader for meta plus a release function that must be
// called once the caller is done (including after closing any iterator
// built on the reader). The release reference keeps the underlying file
// descriptor open even if the table is evicted from the cache meanwhile.
func (c *TableCache) Get(meta *manifest.FileMeta) (*sstable.Reader, func(), error) {
	if t, ok := c.lru.get(meta.Num); ok {
		t.fd.acquire()
		return t.Reader, t.fd.release, nil
	}
	var (
		fd  *fdEntry
		f   vfs.File
		err error
	)
	if c.fdCache != nil {
		fd, err = c.fdCache.acquireEntry(meta.PhysNum)
		if err != nil {
			return nil, nil, err
		}
		f = fd.file
	} else {
		f, err = c.fs.Open(manifest.TableFileName(meta.PhysNum))
		if err != nil {
			return nil, nil, fmt.Errorf("cache: open table file %d: %w", meta.PhysNum, err)
		}
		fd = &fdEntry{file: f, refs: 1}
	}
	r, err := sstable.OpenReader(f, meta.Num, meta.Offset, meta.Size, c.blockCache)
	if err != nil {
		fd.release()
		return nil, nil, fmt.Errorf("cache: open table %d: %w", meta.Num, err)
	}
	c.mu.Lock()
	c.metaBytesRead += r.MetaSize()
	c.mu.Unlock()
	fd.acquire() // the caller's reference
	c.lru.insert(meta.Num, &Table{Reader: r, fd: fd}, 1)
	return r, fd.release, nil
}

// Evict drops the cached reader for a table (called when the table is
// deleted).
func (c *TableCache) Evict(num uint64) { c.lru.remove(num) }

// MetaBytesRead returns the cumulative filter+index bytes fetched on
// misses.
func (c *TableCache) MetaBytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metaBytesRead
}

// Stats returns hit/miss counters.
func (c *TableCache) Stats() (hits, misses int64) { return c.lru.stats() }

// Len returns the number of cached tables.
func (c *TableCache) Len() int { return c.lru.len() }

// Close evicts everything.
func (c *TableCache) Close() { c.lru.clear() }
