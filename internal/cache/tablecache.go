package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// fdEntry is a shared physical-file handle with reference counting so an
// evicted descriptor is only closed once no table reader uses it.
type fdEntry struct {
	mu sync.Mutex
	// file is set at creation and never reassigned; the single Close is
	// serialized by the closed flag flipping under mu.
	file   vfs.File //boltvet:guardedby none -- immutable after creation; Close-once via the closed flag
	refs   int      //boltvet:guardedby mu -- table readers + (1 while resident in the fd cache)
	closed bool     //boltvet:guardedby mu
}

// acquire takes a reference on behalf of a caller that already holds one
// (the leader handing out waiter references), so the entry cannot be
// concurrently closed.
func (e *fdEntry) acquire() {
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
}

// tryAcquire takes a reference unless the entry has already been closed.
// Cache lookups must use this, not acquire: lru.get returns the entry
// with the lru mutex released, so a concurrent Evict can drop the
// cache's last reference — closing the descriptor — before the getter
// takes its own. A false return means "evicted under you: re-open".
func (e *fdEntry) tryAcquire() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.refs++
	return true
}

func (e *fdEntry) release() {
	e.mu.Lock()
	e.refs--
	shouldClose := e.refs == 0 && !e.closed
	if shouldClose {
		e.closed = true
	}
	e.mu.Unlock()
	if shouldClose {
		_ = e.file.Close()
	}
}

// fdCall is one in-flight descriptor open shared by every goroutine that
// missed on the same physical file while it was being opened.
type fdCall struct {
	done chan struct{} //boltvet:guardedby none -- created once, closed once by the leader
	// waiters is written under the owning fdFlight.mu before done is
	// closed; the leader pre-acquires one reference per waiter at publish
	// time.
	waiters int      //boltvet:guardedby none -- written under the owning fdFlight.mu (a foreign mutex, outside the vocabulary)
	e       *fdEntry //boltvet:guardedby none -- written by the leader before close(done); read only after <-done
	err     error    //boltvet:guardedby none -- written by the leader before close(done); read only after <-done
}

// fdFlight is one shard of the FDCache's singleflight state. Flights are
// indexed by the same hash as the lru shards, so a key's lookup, recency
// update, and miss coalescing all live in one contention domain.
type fdFlight struct {
	mu       sync.Mutex
	inflight map[uint64]*fdCall //boltvet:guardedby mu
}

// FDCache caches open physical-file handles keyed by physical file number.
// This is BoLT's +FC element: with compaction files, many logical SSTables
// share one descriptor, so the filesystem open cost is paid once per
// compaction file instead of once per SSTable.
type FDCache struct {
	fs      vfs.FS                     //boltvet:guardedby none -- immutable after NewFDCache
	name    func(uint64) string        //boltvet:guardedby none -- immutable after NewFDCache
	lru     *sharded[uint64, *fdEntry] //boltvet:guardedby none -- immutable after NewFDCache; shards lock themselves
	flights []fdFlight                 //boltvet:guardedby none -- immutable slice after NewFDCache; each flight locks itself
}

// NewFDCache returns an fd cache over fs holding up to capacity handles
// split across shards LRU shards (0 = auto-size to GOMAXPROCS, 1 =
// single lock).
func NewFDCache(fs vfs.FS, capacity, shards int) *FDCache {
	return NewFDCacheNamed(fs, capacity, shards, manifest.TableFileName)
}

// NewFDCacheNamed is NewFDCache with a custom file-number-to-name mapping,
// so other append-only physical files — value-log segments — share the
// same sharded, singleflight descriptor discipline.
func NewFDCacheNamed(fs vfs.FS, capacity, shards int, name func(uint64) string) *FDCache {
	c := &FDCache{fs: fs, name: name}
	c.lru = newSharded[uint64, *fdEntry](shards, int64(capacity), mix64, func(_ uint64, e *fdEntry) {
		e.release() // drop the cache's own reference
	})
	c.flights = make([]fdFlight, c.lru.shardCount())
	for i := range c.flights {
		c.flights[i].inflight = make(map[uint64]*fdCall)
	}
	return c
}

// With runs fn with a referenced handle for file num, opening (and
// caching) it on miss. The reference is held for the duration of fn only;
// fn must not retain the file.
func (c *FDCache) With(num uint64, fn func(vfs.File) error) error {
	e, err := c.acquireEntry(num)
	if err != nil {
		return err
	}
	defer e.release()
	return fn(e.file)
}

// Acquire returns a referenced handle for physical file physNum, opening
// it on miss. Callers must call release (via the returned entry) when done.
// Concurrent misses on the same file are coalesced into one open: exactly
// one goroutine touches the filesystem, the rest wait and share its handle.
func (c *FDCache) acquireEntry(physNum uint64) (*fdEntry, error) {
	if e, ok := c.lru.get(physNum); ok && e.tryAcquire() {
		return e, nil
	}
	fl := &c.flights[c.lru.shardIndex(physNum)]
	fl.mu.Lock()
	if call, ok := fl.inflight[physNum]; ok {
		call.waiters++
		fl.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		// The leader acquired this waiter's reference before publishing.
		return call.e, nil
	}
	if e, ok := c.lru.get(physNum); ok && e.tryAcquire() {
		// A previous flight completed between the miss and taking fl.mu.
		fl.mu.Unlock()
		return e, nil
	}
	call := &fdCall{done: make(chan struct{})}
	fl.inflight[physNum] = call
	fl.mu.Unlock()

	f, err := c.fs.Open(c.name(physNum))
	if err != nil {
		call.err = fmt.Errorf("cache: open file %d (%s): %w", physNum, c.name(physNum), err)
		fl.mu.Lock()
		delete(fl.inflight, physNum)
		fl.mu.Unlock()
		close(call.done)
		return nil, call.err
	}
	e := &fdEntry{file: f, refs: 1} // the cache's reference
	e.acquire()                     // the caller's reference
	c.lru.insert(physNum, e, 1)
	call.e = e
	fl.mu.Lock()
	delete(fl.inflight, physNum)
	waiters := call.waiters
	fl.mu.Unlock()
	// No waiter can join after the delete above, so the count is final;
	// the leader's own reference keeps e open while these are taken.
	for i := 0; i < waiters; i++ {
		e.acquire()
	}
	close(call.done)
	return e, nil
}

// Evict drops the cached handle for physNum (called when the physical file
// is deleted).
func (c *FDCache) Evict(physNum uint64) { c.lru.remove(physNum) }

// Stats returns hit/miss counters aggregated across shards.
func (c *FDCache) Stats() (hits, misses int64) { return c.lru.stats() }

// Len returns the number of resident handles.
func (c *FDCache) Len() int { return c.lru.len() }

// Shards returns the shard count the cache was built with.
func (c *FDCache) Shards() int { return c.lru.shardCount() }

// Close evicts all handles.
func (c *FDCache) Close() { c.lru.clear() }

// Table is a cached open table: a reader plus its file reference.
type Table struct {
	Reader *sstable.Reader
	fd     *fdEntry
}

func (t *Table) close() {
	if t.fd != nil {
		t.fd.release()
	}
}

// tableCall is one in-flight table open shared by every goroutine that
// missed on the same table number while its metadata was being read.
type tableCall struct {
	done chan struct{} //boltvet:guardedby none -- created once, closed once by the leader
	// waiters is written under the owning tableFlight.mu before done is
	// closed; the leader pre-acquires one fd reference per waiter at
	// publish time.
	waiters int             //boltvet:guardedby none -- written under the owning tableFlight.mu (a foreign mutex, outside the vocabulary)
	r       *sstable.Reader //boltvet:guardedby none -- written by the leader before close(done); read only after <-done
	fd      *fdEntry        //boltvet:guardedby none -- written by the leader before close(done); read only after <-done
	err     error           //boltvet:guardedby none -- written by the leader before close(done); read only after <-done
}

// tableFlight is one shard of the TableCache's singleflight state,
// indexed by the same hash as the lru shards (see fdFlight).
type tableFlight struct {
	mu       sync.Mutex
	inflight map[uint64]*tableCall //boltvet:guardedby mu
}

// TableCache caches open table readers keyed by logical table number. Its
// capacity is a *table count*, mirroring LevelDB's max_open_files
// semantics that the paper's TableCache analysis (Section 2.6) depends on.
// A miss re-opens the table, which costs one metadata read of the table's
// filter+index blocks — proportional to table size.
type TableCache struct {
	fs         vfs.FS                   //boltvet:guardedby none -- immutable after NewTableCache
	fdCache    *FDCache                 //boltvet:guardedby none -- immutable after NewTableCache; nil means descriptors are opened per table
	blockCache sstable.BlockCache       //boltvet:guardedby none -- immutable after NewTableCache
	cfg        sstable.Config           //boltvet:guardedby none -- immutable after NewTableCache
	lru        *sharded[uint64, *Table] //boltvet:guardedby none -- immutable after NewTableCache; shards lock themselves
	flights    []tableFlight            //boltvet:guardedby none -- immutable slice after NewTableCache; each flight locks itself

	// metaBytesRead accumulates the bytes of filter+index fetched on
	// misses — the metadata-caching overhead measured in Figure 6. The
	// singleflight path charges it once per actual read, not once per
	// racing caller.
	metaBytesRead atomic.Int64 //boltvet:guardedby atomic
}

// NewTableCache returns a table cache holding up to capacity tables split
// across shards LRU shards (0 = auto-size to GOMAXPROCS, 1 = single
// lock). fdCache may be nil (the +FC optimization disabled): each cached
// table then owns a private descriptor opened at miss time.
func NewTableCache(fs vfs.FS, capacity, shards int, fdCache *FDCache, blockCache sstable.BlockCache, cfg sstable.Config) *TableCache {
	c := &TableCache{fs: fs, fdCache: fdCache, blockCache: blockCache, cfg: cfg}
	c.lru = newSharded[uint64, *Table](shards, int64(capacity), mix64, func(_ uint64, t *Table) {
		t.close()
	})
	c.flights = make([]tableFlight, c.lru.shardCount())
	for i := range c.flights {
		c.flights[i].inflight = make(map[uint64]*tableCall)
	}
	return c
}

// Get returns an open reader for meta plus a release function that must be
// called once the caller is done (including after closing any iterator
// built on the reader). The release reference keeps the underlying file
// descriptor open even if the table is evicted from the cache meanwhile.
// Concurrent misses on the same table coalesce into one metadata read:
// exactly one goroutine opens the descriptor and reads filter+index, the
// rest wait and share the resulting reader.
func (c *TableCache) Get(meta *manifest.FileMeta) (*sstable.Reader, func(), error) {
	if t, ok := c.lru.get(meta.Num); ok && t.fd.tryAcquire() {
		return t.Reader, t.fd.release, nil
	}
	fl := &c.flights[c.lru.shardIndex(meta.Num)]
	fl.mu.Lock()
	if call, ok := fl.inflight[meta.Num]; ok {
		call.waiters++
		fl.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, nil, call.err
		}
		// The leader acquired this waiter's fd reference before publishing.
		return call.r, call.fd.release, nil
	}
	if t, ok := c.lru.get(meta.Num); ok && t.fd.tryAcquire() {
		// A previous flight completed between the miss and taking fl.mu.
		fl.mu.Unlock()
		return t.Reader, t.fd.release, nil
	}
	call := &tableCall{done: make(chan struct{})}
	fl.inflight[meta.Num] = call
	fl.mu.Unlock()

	r, fd, err := c.openTable(meta)
	if err != nil {
		call.err = err
		fl.mu.Lock()
		delete(fl.inflight, meta.Num)
		fl.mu.Unlock()
		close(call.done)
		return nil, nil, err
	}
	fd.acquire() // the caller's reference
	c.lru.insert(meta.Num, &Table{Reader: r, fd: fd}, 1)
	call.r, call.fd = r, fd
	fl.mu.Lock()
	delete(fl.inflight, meta.Num)
	waiters := call.waiters
	fl.mu.Unlock()
	// No waiter can join after the delete above, so the count is final;
	// the leader's own reference keeps fd open while these are taken.
	for i := 0; i < waiters; i++ {
		fd.acquire()
	}
	close(call.done)
	return r, fd.release, nil
}

// openTable performs the miss work: one descriptor acquisition and one
// filter+index metadata read, charged once to metaBytesRead.
func (c *TableCache) openTable(meta *manifest.FileMeta) (*sstable.Reader, *fdEntry, error) {
	var (
		fd  *fdEntry
		f   vfs.File
		err error
	)
	if c.fdCache != nil {
		fd, err = c.fdCache.acquireEntry(meta.PhysNum)
		if err != nil {
			return nil, nil, err
		}
		f = fd.file
	} else {
		f, err = c.fs.Open(manifest.TableFileName(meta.PhysNum))
		if err != nil {
			return nil, nil, fmt.Errorf("cache: open table file %d: %w", meta.PhysNum, err)
		}
		fd = &fdEntry{file: f, refs: 1}
	}
	r, err := sstable.OpenReader(f, meta.Num, meta.PhysNum, meta.Offset, meta.Size, c.blockCache)
	if err != nil {
		fd.release()
		return nil, nil, fmt.Errorf("cache: open table %d: %w", meta.Num, err)
	}
	c.metaBytesRead.Add(r.MetaSize())
	return r, fd, nil
}

// Evict drops the cached reader for a table (called when the table is
// deleted).
func (c *TableCache) Evict(num uint64) { c.lru.remove(num) }

// MetaBytesRead returns the cumulative filter+index bytes fetched on
// misses.
func (c *TableCache) MetaBytesRead() int64 {
	return c.metaBytesRead.Load()
}

// Stats returns hit/miss counters aggregated across shards.
func (c *TableCache) Stats() (hits, misses int64) { return c.lru.stats() }

// Len returns the number of cached tables.
func (c *TableCache) Len() int { return c.lru.len() }

// Shards returns the shard count the cache was built with.
func (c *TableCache) Shards() int { return c.lru.shardCount() }

// Close evicts everything.
func (c *TableCache) Close() { c.lru.clear() }
