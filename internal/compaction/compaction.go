// Package compaction implements victim selection and output partitioning
// for every engine profile:
//
//   - classic: one victim per compaction, chosen round-robin by the
//     per-level compact pointer (LevelDB).
//   - group: several victims per compaction up to a byte budget, so one
//     barrier covers more data (BoLT +GC).
//   - settled: victims are chosen to minimize next-level overlap, and
//     victims with zero overlap are promoted by a MANIFEST-only edit
//     (BoLT +STL).
//   - fragmented: PebblesDB-style FLSM — a level may hold overlapping
//     tables; compaction merges one overlapping pile and partitions the
//     output at guard keys of the next level without rewriting it.
package compaction

import (
	"hash/fnv"
	"math/bits"
	"sort"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
)

// Options parameterize the picker.
type Options struct {
	// L0Trigger is the L0 file count that triggers compaction.
	L0Trigger int
	// L1MaxBytes is the size limit of level 1; deeper levels multiply by
	// Multiplier.
	L1MaxBytes int64
	// Multiplier is the per-level size growth factor (10 in LevelDB).
	Multiplier float64
	// GroupBytes is the victim byte budget per compaction; 0 selects a
	// single victim (legacy behaviour).
	GroupBytes int64
	// Settled enables minimum-overlap victim selection with promotion of
	// non-overlapping victims.
	Settled bool
	// Fragmented enables FLSM (guarded, overlapping) levels.
	Fragmented bool
	// GuardBaseBits and GuardShiftBits control guard density for
	// fragmented levels: a user key is a guard of level L when its hash
	// has at least GuardBaseBits - GuardShiftBits*(L-1) trailing zero bits.
	GuardBaseBits  int
	GuardShiftBits int
	// L0ByPhysicalFiles scores level 0 by distinct physical files instead
	// of table count: with BoLT compaction files one flush adds one
	// physical file holding many logical SSTables, and the L0 trigger must
	// stay comparable with legacy layouts.
	L0ByPhysicalFiles bool
}

// LevelMaxBytes returns the byte limit of a level (level >= 1).
func (o Options) LevelMaxBytes(level int) int64 {
	limit := float64(o.L1MaxBytes)
	for l := 1; l < level; l++ {
		limit *= o.Multiplier
	}
	return int64(limit)
}

// IsGuard reports whether userKey is a guard key of the given level.
// Guard density increases with depth so each level fragments into
// proportionally more guards, following PebblesDB.
func (o Options) IsGuard(userKey []byte, level int) bool {
	need := o.GuardBaseBits - o.GuardShiftBits*(level-1)
	if need <= 0 {
		return true
	}
	h := fnv.New64a()
	h.Write(userKey)
	return bits.TrailingZeros64(h.Sum64()) >= need
}

// Reason values describe what triggered a compaction. They appear in
// events and map onto the per-reason metrics counters.
const (
	// ReasonL0 is an L0 file-count trigger.
	ReasonL0 = "L0 file count"
	// ReasonLevelSize is a level byte-size trigger.
	ReasonLevelSize = "level size"
	// ReasonSettled is a size trigger served by settled (min-overlap)
	// selection.
	ReasonSettled = "level size (settled)"
	// ReasonFragmented is a size trigger served by an FLSM pile merge.
	ReasonFragmented = "level size (fragmented)"
	// ReasonSeek is LevelDB's read-triggered compaction.
	ReasonSeek = "seek"
	// ReasonManual is a CompactRange request.
	ReasonManual = "manual"
	// ReasonSalvage is a quarantined-table salvage: a same-level rewrite of
	// the table's still-checksummed blocks that deletes the corrupt table
	// (clearing its quarantine).
	ReasonSalvage = "salvage"
	// ReasonValueGC is a value-log garbage-collection pass: live records in
	// a mostly-dead segment are re-put through the write path, dead payload
	// ranges are hole-punched, and the GC watermark advances. It touches no
	// tables; the executor lives in internal/core.
	ReasonValueGC = "value GC"
)

// Compaction describes one unit of background work chosen by the picker.
type Compaction struct {
	// Level is the input level; OutputLevel is Level+1 except for
	// fragmented last-level self-merges.
	Level       int
	OutputLevel int
	// Inputs are the victims at Level that will be merge-rewritten.
	Inputs []*manifest.FileMeta
	// NextInputs are overlapping tables at OutputLevel merged with Inputs.
	NextInputs []*manifest.FileMeta
	// Settled are victims at Level with zero next-level overlap: they are
	// promoted to OutputLevel by a MANIFEST edit alone — no data rewrite.
	Settled []*manifest.FileMeta
	// CutPoints are user keys at which output tables must be cut so no
	// output's key range spans a settled (promoted) table's range.
	CutPoints [][]byte
	// Reason is a human-readable trigger description.
	Reason string
	// VLogSegment, nonzero only for ReasonValueGC, is the value-log segment
	// being collected. The reservation claims it so two GC passes never run
	// over the same segment concurrently.
	VLogSegment uint64
}

// InputBytes returns the total bytes that will be read.
func (c *Compaction) InputBytes() int64 {
	var total int64
	for _, f := range c.Inputs {
		total += f.Size
	}
	for _, f := range c.NextInputs {
		total += f.Size
	}
	return total
}

// Range returns the user-key span of the rewritten inputs (nil, nil if the
// compaction rewrites nothing).
func (c *Compaction) Range() (smallest, largest []byte) {
	for _, f := range append(append([]*manifest.FileMeta{}, c.Inputs...), c.NextInputs...) {
		if smallest == nil || keys.CompareUser(f.Smallest.UserKey(), smallest) < 0 {
			smallest = f.Smallest.UserKey()
		}
		if largest == nil || keys.CompareUser(f.Largest.UserKey(), largest) > 0 {
			largest = f.Largest.UserKey()
		}
	}
	return smallest, largest
}

// Picker chooses compactions over versions.
type Picker struct {
	Opts Options
}

// Score returns the compaction pressure of each level: >= 1 means the
// level needs compaction. L0 scores by file count (physical files when
// L0ByPhysicalFiles is set), others by bytes.
func (p *Picker) Score(v *manifest.Version, level int) float64 {
	if level == 0 {
		n := len(v.Levels[0])
		if p.Opts.L0ByPhysicalFiles {
			seen := make(map[uint64]struct{}, n)
			for _, f := range v.Levels[0] {
				seen[f.PhysNum] = struct{}{}
			}
			n = len(seen)
		}
		return float64(n) / float64(p.Opts.L0Trigger)
	}
	return float64(v.LevelBytes(level)) / float64(p.Opts.LevelMaxBytes(level))
}

// MaxScoreLevel returns the level with the highest score and that score.
// The last level never compacts downward.
func (p *Picker) MaxScoreLevel(v *manifest.Version) (int, float64) {
	bestLevel, bestScore := -1, 0.0
	for level := 0; level < manifest.NumLevels-1; level++ {
		if s := p.Score(v, level); s > bestScore {
			bestLevel, bestScore = level, s
		}
	}
	return bestLevel, bestScore
}

// Env carries the engine-owned pick-time state: the per-level round-robin
// cursors, the in-flight reservation registry, and the pending
// seek-compaction candidate (if any). The zero Env is valid for tests: no
// cursors, no concurrency, no seek candidate.
type Env struct {
	// CompactPointer returns the round-robin cursor of a level; nil means
	// no cursors (picking starts at the level's first table).
	CompactPointer func(level int) keys.InternalKey
	// InFlight holds the reservations of executing compactions; the picker
	// never returns a compaction conflicting with them. Nil means empty.
	InFlight *InFlight
	// SeekFile, when non-nil, is a table whose seek budget ran out;
	// SeekLevel is its level. The picker prefers it over score-based
	// choices when it is still current and conflict-free.
	SeekFile  *manifest.FileMeta
	SeekLevel int
}

// Pick returns the next conflict-free compaction, or nil when nothing is
// both over threshold and runnable. The seek candidate is tried first
// (seek compactions fire below the size thresholds by design); then
// levels are tried in descending score order, so a level whose candidates
// are all reserved by in-flight work yields the next-best level instead
// of no pick at all.
func (p *Picker) Pick(v *manifest.Version, env Env) *Compaction {
	// Salvage first: a quarantined table is failing reads over its whole key
	// span, so shrinking that blast radius outranks any size trigger.
	if c := p.PickSalvage(v, env); c != nil {
		return c
	}
	if c := p.pickSeek(v, env); c != nil {
		return c
	}
	for _, level := range p.levelsByScore(v) {
		var c *Compaction
		switch {
		case p.Opts.Fragmented:
			c = p.pickFragmented(v, level, env.InFlight)
		case level == 0:
			c = p.pickL0(v)
		case p.Opts.Settled:
			c = p.pickSettled(v, level, env.InFlight)
		default:
			var pointer keys.InternalKey
			if env.CompactPointer != nil {
				pointer = env.CompactPointer(level)
			}
			c = p.pickLeveled(v, level, pointer, env.InFlight)
		}
		if c != nil && !touchesQuarantined(v, c) && !env.InFlight.Conflicts(c) {
			return c
		}
	}
	return nil
}

// PickSalvage returns a salvage compaction for a conflict-free quarantined
// table, or nil when none is runnable. Salvage is a same-level rewrite
// (OutputLevel == Level): the readable blocks are rewritten into fresh
// tables whose span is a subset of the old table's span — so a sorted
// level stays sorted — and the corrupt table is deleted, which is what
// clears its quarantine mark. The executor lives in internal/core; the
// Reason tag is how it recognizes the pick.
func (p *Picker) PickSalvage(v *manifest.Version, env Env) *Compaction {
	for level := 0; level < manifest.NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if !v.IsQuarantined(f.Num) {
				continue
			}
			c := &Compaction{
				Level:       level,
				OutputLevel: level,
				Inputs:      []*manifest.FileMeta{f},
				Reason:      ReasonSalvage,
			}
			if env.InFlight.Conflicts(c) {
				continue
			}
			return c
		}
	}
	return nil
}

// PickValueGC returns a value-GC compaction for the sealed segment whose
// uncollected bytes are deadest, or nil when no segment crosses minRatio.
// activeSeg (the segment the writer is appending to) is never picked: its
// size is still growing and its records may be newer than any flushed
// table. Segments in skip are passed over (the engine marks a segment
// stuck when its GC cannot advance past a rotted record header — without
// the skip it would hog every pick forever). The executor lives in
// internal/core; like salvage, the Reason tag is how it recognizes the
// pick. Value GC is scheduled independently of Pick — it competes for a
// worker, not for table reservations.
func (p *Picker) PickValueGC(v *manifest.Version, env Env, activeSeg uint64, minRatio float64, skip map[uint64]bool) *Compaction {
	var best *Compaction
	bestRatio := -1.0
	for _, s := range v.VLogSegments() {
		if s.Num == activeSeg || s.Size == 0 || s.GCOffset >= s.Size || skip[s.Num] {
			continue
		}
		remaining := s.Size - s.GCOffset
		ratio := float64(s.Garbage) / float64(remaining)
		if ratio < minRatio && s.Garbage < remaining {
			continue
		}
		if ratio <= bestRatio {
			continue
		}
		c := &Compaction{Reason: ReasonValueGC, VLogSegment: s.Num}
		if env.InFlight.Conflicts(c) {
			continue
		}
		best, bestRatio = c, ratio
	}
	return best
}

// touchesQuarantined reports whether any table c consumes or promotes is
// quarantined. Regular compactions must not read a quarantined table (the
// merge would fail on the corrupt block) nor move it (salvage owns it).
func touchesQuarantined(v *manifest.Version, c *Compaction) bool {
	if v.NumQuarantined() == 0 {
		return false
	}
	found := false
	eachInputFile(c, func(num uint64) {
		if v.IsQuarantined(num) {
			found = true
		}
	})
	return found
}

// levelsByScore returns the levels at or over compaction threshold,
// highest score first. The last level never compacts downward.
func (p *Picker) levelsByScore(v *manifest.Version) []int {
	type scored struct {
		level int
		score float64
	}
	var over []scored
	for level := 0; level < manifest.NumLevels-1; level++ {
		if s := p.Score(v, level); s >= 1.0 {
			over = append(over, scored{level, s})
		}
	}
	sort.SliceStable(over, func(i, j int) bool { return over[i].score > over[j].score })
	levels := make([]int, len(over))
	for i, s := range over {
		levels[i] = s.level
	}
	return levels
}

// pickSeek builds the compaction for a pending seek candidate, or nil when
// the candidate is stale (no longer in the version), inapplicable (last
// level, fragmented profile), or conflicting with in-flight work.
func (p *Picker) pickSeek(v *manifest.Version, env Env) *Compaction {
	f := env.SeekFile
	if f == nil || p.Opts.Fragmented || env.SeekLevel >= manifest.NumLevels-1 {
		return nil
	}
	level := env.SeekLevel
	current := false
	for _, cur := range v.Levels[level] {
		if cur == f {
			current = true
			break
		}
	}
	if !current {
		return nil
	}
	c := &Compaction{
		Level:       level,
		OutputLevel: level + 1,
		Inputs:      []*manifest.FileMeta{f},
		Reason:      ReasonSeek,
	}
	if level == 0 {
		// Level-0 files overlap each other: compacting one without its
		// overlapping siblings would leave older versions above newer
		// ones. Expand to the overlap closure, as LevelDB does.
		c.Inputs = L0OverlapClosure(v.Levels[0], f)
	}
	smallest, largest := c.Range()
	c.NextInputs = v.Overlaps(level+1, smallest, largest)
	if touchesQuarantined(v, c) || env.InFlight.Conflicts(c) {
		return nil
	}
	return c
}

// pickL0 merges all level-0 tables with their level-1 overlaps. L0 tables
// overlap each other, so taking them all at once is both simplest and what
// a 64 MB-memtable configuration wants (the whole flush burst moves down
// in one barrier-cheap compaction under BoLT). No reservation filtering
// happens here: any in-flight L0 compaction excludes the whole level (the
// L0-exclusivity conflict rule), so a partial pick could never run anyway.
func (p *Picker) pickL0(v *manifest.Version) *Compaction {
	c := &Compaction{Level: 0, OutputLevel: 1, Reason: ReasonL0}
	c.Inputs = append(c.Inputs, v.Levels[0]...)
	smallest, largest := c.Range()
	c.NextInputs = v.Overlaps(1, smallest, largest)
	return c
}

// unreservedFiles returns files minus the tables reserved by in-flight
// compactions (the input slice when nothing is reserved).
func unreservedFiles(files []*manifest.FileMeta, in *InFlight) []*manifest.FileMeta {
	if in.Len() == 0 {
		return files
	}
	out := make([]*manifest.FileMeta, 0, len(files))
	for _, f := range files {
		if !in.FileReserved(f.Num) {
			out = append(out, f)
		}
	}
	return out
}

// pickLeveled implements classic and group selection: victims are taken in
// key order starting after the compact pointer until the byte budget is
// met (one file when GroupBytes is zero). Tables reserved by in-flight
// compactions are skipped so concurrent picks spread across the level.
func (p *Picker) pickLeveled(v *manifest.Version, level int, pointer keys.InternalKey, in *InFlight) *Compaction {
	files := unreservedFiles(v.Levels[level], in)
	if len(files) == 0 {
		return nil
	}
	start := 0
	if pointer != nil {
		start = sort.Search(len(files), func(i int) bool {
			return keys.Compare(files[i].Largest, pointer) > 0
		})
		if start == len(files) {
			start = 0
		}
	}
	c := &Compaction{Level: level, OutputLevel: level + 1, Reason: ReasonLevelSize}
	var budget int64
	for i := 0; i < len(files); i++ {
		f := files[(start+i)%len(files)]
		c.Inputs = append(c.Inputs, f)
		budget += f.Size
		if p.Opts.GroupBytes == 0 || budget >= p.Opts.GroupBytes {
			break
		}
	}
	// Keep inputs in key order (wrap-around may have disordered them).
	sortBySmallest(c.Inputs)
	smallest, largest := c.Range()
	c.NextInputs = v.Overlaps(level+1, smallest, largest)
	return c
}

// pickSettled implements BoLT's settled compaction: victims are the files
// with the least next-level overlap, up to the group byte budget. Victims
// with zero overlap are promoted without rewrite. Reserved tables are
// excluded from candidacy.
func (p *Picker) pickSettled(v *manifest.Version, level int, in *InFlight) *Compaction {
	files := unreservedFiles(v.Levels[level], in)
	if len(files) == 0 {
		return nil
	}
	type scored struct {
		f       *manifest.FileMeta
		overlap int64
	}
	cands := make([]scored, 0, len(files))
	for _, f := range files {
		var ov int64
		for _, nf := range v.Overlaps(level+1, f.Smallest.UserKey(), f.Largest.UserKey()) {
			ov += nf.Size
		}
		cands = append(cands, scored{f, ov})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].overlap < cands[j].overlap })

	budget := p.Opts.GroupBytes
	if budget == 0 {
		budget = 1 // degenerate: single victim
	}
	c := &Compaction{Level: level, OutputLevel: level + 1, Reason: ReasonSettled}
	var taken int64
	for _, s := range cands {
		if taken >= budget {
			break
		}
		taken += s.f.Size
		if s.overlap == 0 {
			c.Settled = append(c.Settled, s.f)
		} else {
			c.Inputs = append(c.Inputs, s.f)
		}
	}
	sortBySmallest(c.Inputs)
	sortBySmallest(c.Settled)
	if len(c.Inputs) > 0 {
		smallest, largest := c.Range()
		c.NextInputs = v.Overlaps(level+1, smallest, largest)
		// Outputs must not span a promoted table's key range.
		for _, s := range c.Settled {
			c.CutPoints = append(c.CutPoints, s.Smallest.UserKey())
		}
	}
	return c
}

// pickFragmented implements FLSM selection: the heaviest overlapping pile
// (connected component of range-overlapping tables) in the level is merged
// and pushed down; the next level is NOT read (its tables are left in
// place — the defining FLSM trait). Compactions out of the last level are
// in-place merges that de-overlap the pile. Reserved tables are excluded
// before piles are formed.
func (p *Picker) pickFragmented(v *manifest.Version, level int, in *InFlight) *Compaction {
	files := unreservedFiles(v.Levels[level], in)
	if len(files) == 0 {
		return nil
	}
	var (
		best      []*manifest.FileMeta
		bestBytes int64
	)
	if level == 0 {
		best = append(best, files...)
	} else {
		sorted := append([]*manifest.FileMeta(nil), files...)
		sortBySmallest(sorted)
		var cur []*manifest.FileMeta
		var curBytes int64
		var curMax []byte
		flush := func() {
			// A single-table pile has nothing to merge; pushing it down
			// alone is still useful to relieve the level, so allow it.
			if curBytes > bestBytes {
				best = append([]*manifest.FileMeta(nil), cur...)
				bestBytes = curBytes
			}
		}
		for _, f := range sorted {
			if len(cur) > 0 && keys.CompareUser(f.Smallest.UserKey(), curMax) <= 0 {
				cur = append(cur, f)
				curBytes += f.Size
				if keys.CompareUser(f.Largest.UserKey(), curMax) > 0 {
					curMax = f.Largest.UserKey()
				}
				continue
			}
			flush()
			cur = cur[:0]
			cur = append(cur, f)
			curBytes = f.Size
			curMax = f.Largest.UserKey()
		}
		flush()
	}
	out := level + 1
	reason := ReasonFragmented
	if level == manifest.NumLevels-2 {
		// Piles pushed into the last level would accumulate forever; merge
		// the pile with its last-level overlaps instead (PebblesDB's
		// final-level compaction behaves this way).
		c := &Compaction{Level: level, OutputLevel: out, Reason: reason}
		c.Inputs = best
		smallest, largest := c.Range()
		c.NextInputs = v.Overlaps(out, smallest, largest)
		return c
	}
	return &Compaction{Level: level, OutputLevel: out, Inputs: best, Reason: reason}
}

// L0OverlapClosure returns the transitive closure of level-0 files whose
// user-key ranges overlap seed's range (growing the range as files join).
func L0OverlapClosure(files []*manifest.FileMeta, seed *manifest.FileMeta) []*manifest.FileMeta {
	smallest := seed.Smallest.UserKey()
	largest := seed.Largest.UserKey()
	in := map[uint64]bool{seed.Num: true}
	out := []*manifest.FileMeta{seed}
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			if in[f.Num] || !f.OverlapsUser(smallest, largest) {
				continue
			}
			in[f.Num] = true
			out = append(out, f)
			if keys.CompareUser(f.Smallest.UserKey(), smallest) < 0 {
				smallest = f.Smallest.UserKey()
			}
			if keys.CompareUser(f.Largest.UserKey(), largest) > 0 {
				largest = f.Largest.UserKey()
			}
			changed = true
		}
	}
	return out
}

func sortBySmallest(files []*manifest.FileMeta) {
	sort.Slice(files, func(i, j int) bool {
		c := keys.Compare(files[i].Smallest, files[j].Smallest)
		if c != 0 {
			return c < 0
		}
		return files[i].Num < files[j].Num
	})
}
