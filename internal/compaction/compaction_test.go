package compaction

import (
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
)

func ik(u string) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), 1, keys.KindSet)
}

func meta(num uint64, size int64, lo, hi string) *manifest.FileMeta {
	return &manifest.FileMeta{
		Num: num, PhysNum: num, Size: size,
		Smallest: ik(lo), Largest: ik(hi),
	}
}

func defaultOpts() Options {
	return Options{
		L0Trigger:  4,
		L1MaxBytes: 10 << 20,
		Multiplier: 10,
	}
}

func TestLevelMaxBytes(t *testing.T) {
	o := defaultOpts()
	if got := o.LevelMaxBytes(1); got != 10<<20 {
		t.Fatalf("L1 = %d", got)
	}
	if got := o.LevelMaxBytes(2); got != 100<<20 {
		t.Fatalf("L2 = %d", got)
	}
	if got := o.LevelMaxBytes(3); got != 1000<<20 {
		t.Fatalf("L3 = %d", got)
	}
}

func TestScoreAndTrigger(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := &manifest.Version{}
	// Below thresholds: no compaction.
	v.Levels[0] = []*manifest.FileMeta{meta(1, 1<<20, "a", "b")}
	if c := p.Pick(v, Env{}); c != nil {
		t.Fatalf("premature compaction: %+v", c)
	}
	// L0 at trigger.
	for i := 2; i <= 4; i++ {
		v.Levels[0] = append(v.Levels[0], meta(uint64(i), 1<<20, "a", "b"))
	}
	c := p.Pick(v, Env{})
	if c == nil || c.Level != 0 {
		t.Fatalf("expected L0 compaction, got %+v", c)
	}
	if len(c.Inputs) != 4 {
		t.Fatalf("L0 inputs = %d", len(c.Inputs))
	}
}

func TestL0IncludesL1Overlaps(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := &manifest.Version{}
	for i := 1; i <= 4; i++ {
		v.Levels[0] = append(v.Levels[0], meta(uint64(i), 1<<20, "c", "m"))
	}
	v.Levels[1] = []*manifest.FileMeta{
		meta(10, 1<<20, "a", "b"), // outside
		meta(11, 1<<20, "b", "d"), // overlaps
		meta(12, 1<<20, "k", "n"), // overlaps
		meta(13, 1<<20, "p", "z"), // outside
	}
	c := p.Pick(v, Env{})
	if len(c.NextInputs) != 2 || c.NextInputs[0].Num != 11 || c.NextInputs[1].Num != 12 {
		t.Fatalf("next inputs: %+v", c.NextInputs)
	}
}

func overflowL1() *manifest.Version {
	v := &manifest.Version{}
	// 12 MB in L1 (limit 10 MB).
	for i := 0; i < 6; i++ {
		lo := fmt.Sprintf("k%02d", i*2)
		hi := fmt.Sprintf("k%02d", i*2+1)
		v.Levels[1] = append(v.Levels[1], meta(uint64(i+1), 2<<20, lo, hi))
	}
	return v
}

func TestClassicSingleVictim(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := overflowL1()
	c := p.Pick(v, Env{})
	if c == nil || c.Level != 1 || len(c.Inputs) != 1 {
		t.Fatalf("classic pick: %+v", c)
	}
}

func TestClassicRoundRobinPointer(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := overflowL1()
	// Pointer after file 3's largest ("k05"): next victim is file 4.
	ptr := ik("k05")
	c := p.Pick(v, Env{CompactPointer: func(level int) keys.InternalKey {
		if level == 1 {
			return ptr
		}
		return nil
	}})
	if len(c.Inputs) != 1 || c.Inputs[0].Num != 4 {
		t.Fatalf("round robin chose %d", c.Inputs[0].Num)
	}
	// Pointer past the end wraps to the first file.
	c = p.Pick(v, Env{CompactPointer: func(level int) keys.InternalKey { return ik("zzz") }})
	if len(c.Inputs) != 1 || c.Inputs[0].Num != 1 {
		t.Fatalf("wrap chose %d", c.Inputs[0].Num)
	}
}

func TestGroupCompactionBudget(t *testing.T) {
	o := defaultOpts()
	o.GroupBytes = 6 << 20 // three 2 MB victims
	p := &Picker{Opts: o}
	v := overflowL1()
	c := p.Pick(v, Env{})
	if len(c.Inputs) != 3 {
		t.Fatalf("group inputs = %d", len(c.Inputs))
	}
	// Inputs must be sorted by smallest key.
	for i := 1; i < len(c.Inputs); i++ {
		if keys.Compare(c.Inputs[i-1].Smallest, c.Inputs[i].Smallest) >= 0 {
			t.Fatal("group inputs unsorted")
		}
	}
}

func TestSettledSelectsMinOverlapAndPromotes(t *testing.T) {
	o := defaultOpts()
	o.GroupBytes = 4 << 20
	o.Settled = true
	p := &Picker{Opts: o}
	v := &manifest.Version{}
	// L1 overflowing: file 1 overlaps lots of L2, file 2 overlaps nothing,
	// file 3 overlaps a little.
	v.Levels[1] = []*manifest.FileMeta{
		meta(1, 6<<20, "a", "c"),
		meta(2, 4<<20, "e", "f"),
		meta(3, 4<<20, "h", "k"),
	}
	v.Levels[2] = []*manifest.FileMeta{
		meta(10, 8<<20, "a", "b"),
		meta(11, 8<<20, "b", "c"),
		meta(12, 2<<20, "h", "i"),
	}
	c := p.Pick(v, Env{})
	if c == nil || c.Level != 1 {
		t.Fatalf("pick: %+v", c)
	}
	// File 2 (zero overlap) must be promoted, not rewritten.
	if len(c.Settled) != 1 || c.Settled[0].Num != 2 {
		t.Fatalf("settled: %+v", c.Settled)
	}
	// Budget of 4 MB is filled by file 2 alone.
	if len(c.Inputs) != 0 {
		t.Fatalf("inputs: %+v", c.Inputs)
	}
}

func TestSettledMixedPromotionAndRewrite(t *testing.T) {
	o := defaultOpts()
	o.GroupBytes = 8 << 20
	o.Settled = true
	p := &Picker{Opts: o}
	v := &manifest.Version{}
	v.Levels[1] = []*manifest.FileMeta{
		meta(1, 4<<20, "a", "c"), // small overlap
		meta(2, 4<<20, "e", "f"), // no overlap -> settled
		meta(3, 4<<20, "h", "k"), // big overlap
	}
	v.Levels[2] = []*manifest.FileMeta{
		meta(10, 1<<20, "b", "c"),
		meta(11, 20<<20, "h", "i"),
	}
	c := p.Pick(v, Env{})
	if len(c.Settled) != 1 || c.Settled[0].Num != 2 {
		t.Fatalf("settled: %+v", c.Settled)
	}
	if len(c.Inputs) != 1 || c.Inputs[0].Num != 1 {
		t.Fatalf("inputs: %+v", c.Inputs)
	}
	if len(c.NextInputs) != 1 || c.NextInputs[0].Num != 10 {
		t.Fatalf("next inputs: %+v", c.NextInputs)
	}
	// Cut point at the promoted table's smallest key.
	if len(c.CutPoints) != 1 || string(c.CutPoints[0]) != "e" {
		t.Fatalf("cut points: %q", c.CutPoints)
	}
}

func TestFragmentedPicksHeaviestPile(t *testing.T) {
	o := defaultOpts()
	o.Fragmented = true
	p := &Picker{Opts: o}
	v := &manifest.Version{}
	// L1 over limit with two overlapping piles: {1,2} spanning a..f and
	// {3,4,5} spanning m..r (heavier).
	v.Levels[1] = []*manifest.FileMeta{
		meta(1, 2<<20, "a", "d"),
		meta(2, 2<<20, "c", "f"),
		meta(3, 3<<20, "m", "p"),
		meta(4, 3<<20, "n", "q"),
		meta(5, 3<<20, "o", "r"),
	}
	c := p.Pick(v, Env{})
	if c == nil || c.Level != 1 {
		t.Fatalf("pick: %+v", c)
	}
	if len(c.Inputs) != 3 || c.Inputs[0].Num != 3 {
		t.Fatalf("inputs: %+v", c.Inputs)
	}
	// FLSM: the next level is not read.
	if len(c.NextInputs) != 0 {
		t.Fatalf("fragmented compaction read next level: %+v", c.NextInputs)
	}
}

func TestFragmentedLastLevelMerges(t *testing.T) {
	o := defaultOpts()
	o.Fragmented = true
	p := &Picker{Opts: o}
	v := &manifest.Version{}
	lvl := manifest.NumLevels - 2
	// Make the second-to-last level overflow.
	var pile []*manifest.FileMeta
	need := o.LevelMaxBytes(lvl)/(4<<20) + 2
	for i := int64(0); i < need; i++ {
		pile = append(pile, meta(uint64(100+i), 4<<20, "a", "z"))
	}
	v.Levels[lvl] = pile
	v.Levels[lvl+1] = []*manifest.FileMeta{meta(999, 4<<20, "m", "q")}
	c := p.Pick(v, Env{})
	if c == nil || c.Level != lvl {
		t.Fatalf("pick: %+v", c)
	}
	if len(c.NextInputs) != 1 || c.NextInputs[0].Num != 999 {
		t.Fatalf("last-level merge must include overlaps: %+v", c.NextInputs)
	}
}

func TestIsGuardDensityIncreasesWithDepth(t *testing.T) {
	o := Options{GuardBaseBits: 14, GuardShiftBits: 3}
	counts := make([]int, 7)
	for i := 0; i < 200000; i++ {
		key := []byte(fmt.Sprintf("user%012d", i))
		for level := 1; level <= 6; level++ {
			if o.IsGuard(key, level) {
				counts[level]++
			}
		}
	}
	for level := 2; level <= 6; level++ {
		if counts[level] <= counts[level-1] {
			t.Fatalf("guard density should grow with depth: %v", counts)
		}
	}
	// Guard membership must be monotone: a guard at level L is a guard at
	// all deeper levels (trailing-zeros threshold decreases).
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("user%012d", i))
		was := false
		for level := 1; level <= 6; level++ {
			is := o.IsGuard(key, level)
			if was && !is {
				t.Fatalf("guard monotonicity violated for %s", key)
			}
			was = is
		}
	}
}

func TestCompactionRangeAndBytes(t *testing.T) {
	c := &Compaction{
		Inputs:     []*manifest.FileMeta{meta(1, 100, "d", "f")},
		NextInputs: []*manifest.FileMeta{meta(2, 50, "a", "e"), meta(3, 25, "f", "k")},
	}
	lo, hi := c.Range()
	if string(lo) != "a" || string(hi) != "k" {
		t.Fatalf("range = %q..%q", lo, hi)
	}
	if c.InputBytes() != 175 {
		t.Fatalf("bytes = %d", c.InputBytes())
	}
}
