package compaction

import (
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
)

// Reservation pins the footprint of one executing compaction: its input
// level, output level, the user-key span its outputs (rewritten or
// promoted) may occupy at the output level, and the set of input table
// numbers. While a reservation is held, the picker refuses any compaction
// that would share an input table with it or write an overlapping range
// into the same output level.
type Reservation struct {
	level       int //boltvet:guardedby none -- immutable after Reserve
	outputLevel int //boltvet:guardedby none -- immutable after Reserve
	// smallest/largest span Inputs, NextInputs, AND Settled: promoted
	// tables land at the output level without rewrite, so their range must
	// be protected against concurrent outputs just like rewritten data.
	smallest, largest []byte   //boltvet:guardedby none -- immutable after Reserve
	files             []uint64 //boltvet:guardedby none -- immutable after Reserve
	// vlogSeg, nonzero only for value-GC work, claims one value-log segment
	// the way files claims tables: a second GC pass over the same segment
	// conflicts. Value-GC reservations carry no tables and no span.
	vlogSeg uint64 //boltvet:guardedby none -- immutable after Reserve
}

// InFlight is the registry of reservations for currently executing
// compactions. It is NOT self-locking: the engine calls every method under
// its own mutex, which already serializes picking, reserving, and
// releasing. A nil *InFlight is valid and always empty, so tests can drive
// the picker without one.
type InFlight struct {
	res    []*Reservation //boltvet:guardedby none -- externally serialized under the engine mutex (see type doc)
	byFile map[uint64]int //boltvet:guardedby none -- reference counts, across all reservations; engine-mutex serialized
}

// NewInFlight returns an empty registry.
func NewInFlight() *InFlight {
	return &InFlight{byFile: make(map[uint64]int)}
}

// Len returns the number of held reservations.
func (in *InFlight) Len() int {
	if in == nil {
		return 0
	}
	return len(in.res)
}

// FileReserved reports whether table num is an input of any held
// reservation.
func (in *InFlight) FileReserved(num uint64) bool {
	if in == nil {
		return false
	}
	return in.byFile[num] > 0
}

// Reserve registers c's footprint and returns the handle to Release when
// the compaction commits or fails. The caller must have established that
// Conflicts(c) is false.
func (in *InFlight) Reserve(c *Compaction) *Reservation {
	r := &Reservation{level: c.Level, outputLevel: c.OutputLevel, vlogSeg: c.VLogSegment}
	r.smallest, r.largest = reservedSpan(c)
	eachInputFile(c, func(num uint64) {
		r.files = append(r.files, num)
		in.byFile[num]++
	})
	in.res = append(in.res, r)
	return r
}

// Release drops r from the registry. Releasing nil is a no-op.
func (in *InFlight) Release(r *Reservation) {
	if in == nil || r == nil {
		return
	}
	for i, held := range in.res {
		if held == r {
			in.res = append(in.res[:i], in.res[i+1:]...)
			for _, num := range r.files {
				if in.byFile[num]--; in.byFile[num] <= 0 {
					delete(in.byFile, num)
				}
			}
			return
		}
	}
}

// Conflicts reports whether c may not run concurrently with the held
// reservations. Four rules, each protecting one invariant:
//
//  1. Shared input table: two compactions consuming the same table would
//     both delete it (double-free) and one would read data the other is
//     rewriting. Because NextInputs always includes every output-level
//     table overlapping the input span, cross-level chains (an L0->L1
//     racing an L1->L2 over the same L1 table) reduce to this rule.
//  2. L0 exclusivity: level-0 tables mutually overlap, so any two
//     compactions out of L0 share key ranges by construction.
//  3. Output-range overlap: two compactions writing overlapping user-key
//     ranges into the same level would break the level's sorted-table
//     invariant the moment both commit.
//  4. Shared value-log segment: two GC passes over one segment would both
//     re-put its live records (duplicating writes) and race on its GC
//     watermark. Value-GC work claims only its segment — it consumes no
//     tables and writes no output range, so it is exempt from rules 1-3
//     (and from rule 2 in particular: its zero-valued Level is not L0).
func (in *InFlight) Conflicts(c *Compaction) bool {
	if in == nil || len(in.res) == 0 {
		return false
	}
	if c.VLogSegment != 0 {
		for _, r := range in.res {
			if r.vlogSeg == c.VLogSegment {
				return true
			}
		}
		return false
	}
	conflict := false
	eachInputFile(c, func(num uint64) {
		if in.byFile[num] > 0 {
			conflict = true
		}
	})
	if conflict {
		return true
	}
	smallest, largest := reservedSpan(c)
	for _, r := range in.res {
		if r.vlogSeg != 0 {
			continue
		}
		if c.Level == 0 && r.level == 0 {
			return true
		}
		if r.outputLevel == c.OutputLevel && spansOverlap(smallest, largest, r.smallest, r.largest) {
			return true
		}
	}
	return false
}

// reservedSpan is the user-key range a compaction's outputs may occupy at
// the output level: the span of everything it consumes or promotes.
func reservedSpan(c *Compaction) (smallest, largest []byte) {
	for _, files := range [][]*manifest.FileMeta{c.Inputs, c.NextInputs, c.Settled} {
		for _, f := range files {
			if smallest == nil || keys.CompareUser(f.Smallest.UserKey(), smallest) < 0 {
				smallest = f.Smallest.UserKey()
			}
			if largest == nil || keys.CompareUser(f.Largest.UserKey(), largest) > 0 {
				largest = f.Largest.UserKey()
			}
		}
	}
	return smallest, largest
}

// eachInputFile visits the table number of every file c consumes (inputs,
// next-level inputs, and settled promotions alike).
func eachInputFile(c *Compaction, fn func(num uint64)) {
	for _, files := range [][]*manifest.FileMeta{c.Inputs, c.NextInputs, c.Settled} {
		for _, f := range files {
			fn(f.Num)
		}
	}
}

// spansOverlap reports whether the inclusive user-key ranges [as, al] and
// [bs, bl] intersect. A nil span (empty compaction side) never overlaps.
func spansOverlap(as, al, bs, bl []byte) bool {
	if as == nil || bs == nil {
		return false
	}
	return keys.CompareUser(al, bs) >= 0 && keys.CompareUser(bl, as) >= 0
}
