package compaction

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
)

// res reserves a hand-built compaction and returns the registry.
func res(c *Compaction) *InFlight {
	in := NewInFlight()
	in.Reserve(c)
	return in
}

func TestInFlightSharedInputExclusion(t *testing.T) {
	shared := meta(10, 2<<20, "f", "h")
	in := res(&Compaction{
		Level: 1, OutputLevel: 2,
		Inputs:     []*manifest.FileMeta{meta(1, 2<<20, "a", "c")},
		NextInputs: []*manifest.FileMeta{shared},
	})

	// A candidate consuming the same table (here as its own input, i.e. an
	// L2->L3 racing the L1->L2 that is rewriting the table) must conflict.
	c := &Compaction{
		Level: 2, OutputLevel: 3,
		Inputs: []*manifest.FileMeta{shared},
	}
	if !in.Conflicts(c) {
		t.Fatal("shared input table not detected as conflict")
	}
	// A different table with keys beyond the reserved span is fine.
	c2 := &Compaction{
		Level: 2, OutputLevel: 3,
		Inputs: []*manifest.FileMeta{meta(11, 2<<20, "x", "z")},
	}
	if in.Conflicts(c2) {
		t.Fatalf("disjoint compaction flagged as conflict")
	}
}

func TestInFlightOverlappingOutputRangeExclusion(t *testing.T) {
	in := res(&Compaction{
		Level: 1, OutputLevel: 2,
		Inputs: []*manifest.FileMeta{meta(1, 2<<20, "d", "k")},
	})

	overlapping := &Compaction{
		Level: 1, OutputLevel: 2,
		Inputs: []*manifest.FileMeta{meta(2, 2<<20, "h", "p")},
	}
	if !in.Conflicts(overlapping) {
		t.Fatal("overlapping output ranges in the same level not detected")
	}
	disjoint := &Compaction{
		Level: 1, OutputLevel: 2,
		Inputs: []*manifest.FileMeta{meta(3, 2<<20, "p", "z")},
	}
	if in.Conflicts(disjoint) {
		t.Fatal("disjoint output ranges flagged as conflict")
	}
	// Same key range into a DIFFERENT output level is no conflict either.
	otherLevel := &Compaction{
		Level: 2, OutputLevel: 3,
		Inputs: []*manifest.FileMeta{meta(4, 2<<20, "d", "k")},
	}
	if in.Conflicts(otherLevel) {
		t.Fatal("different output level flagged as range conflict")
	}
}

func TestInFlightSettledSpanIsReserved(t *testing.T) {
	// A settled promotion moves tables to the output level without
	// rewrite; its range must be protected like rewritten output.
	in := res(&Compaction{
		Level: 1, OutputLevel: 2,
		Settled: []*manifest.FileMeta{meta(1, 2<<20, "m", "q")},
	})
	c := &Compaction{
		Level: 1, OutputLevel: 2,
		Inputs: []*manifest.FileMeta{meta(2, 2<<20, "p", "t")},
	}
	if !in.Conflicts(c) {
		t.Fatal("settled promotion span not reserved")
	}
}

func TestInFlightL0Exclusivity(t *testing.T) {
	in := res(&Compaction{
		Level: 0, OutputLevel: 1,
		Inputs: []*manifest.FileMeta{meta(1, 1<<20, "a", "c")},
	})
	// Even an L0 compaction over entirely different keys conflicts: L0
	// tables mutually overlap by construction.
	c := &Compaction{
		Level: 0, OutputLevel: 1,
		Inputs: []*manifest.FileMeta{meta(2, 1<<20, "x", "z")},
	}
	if !in.Conflicts(c) {
		t.Fatal("two L0 compactions allowed to run concurrently")
	}
}

func TestInFlightRelease(t *testing.T) {
	in := NewInFlight()
	c := &Compaction{
		Level: 1, OutputLevel: 2,
		Inputs: []*manifest.FileMeta{meta(1, 2<<20, "a", "c")},
	}
	r := in.Reserve(c)
	if in.Len() != 1 || !in.FileReserved(1) {
		t.Fatalf("reservation not registered: len=%d", in.Len())
	}
	if !in.Conflicts(c) {
		t.Fatal("reserved compaction does not conflict with itself")
	}
	in.Release(r)
	if in.Len() != 0 || in.FileReserved(1) {
		t.Fatalf("release did not clear registry: len=%d", in.Len())
	}
	if in.Conflicts(c) {
		t.Fatal("conflict reported against empty registry")
	}
	in.Release(r) // double release is a no-op
	in.Release(nil)
}

func TestInFlightNilIsEmpty(t *testing.T) {
	var in *InFlight
	c := &Compaction{Level: 0, OutputLevel: 1, Inputs: []*manifest.FileMeta{meta(1, 1, "a", "b")}}
	if in.Conflicts(c) || in.Len() != 0 || in.FileReserved(1) {
		t.Fatal("nil registry must behave as empty")
	}
	in.Release(nil)
}

// TestPickSkipsReservedLevel is the scheduler-facing contract: when the
// top-scoring level's candidates are all reserved, Pick yields the
// next-best level instead of nil.
func TestPickSkipsReservedLevel(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := &manifest.Version{}
	// L1 well over its 10 MB limit with a single huge table; L2 over its
	// 100 MB limit, keys disjoint from L1's span.
	l1 := meta(1, 40<<20, "a", "c")
	v.Levels[1] = []*manifest.FileMeta{l1}
	v.Levels[2] = []*manifest.FileMeta{
		meta(2, 60<<20, "m", "o"),
		meta(3, 60<<20, "p", "r"),
	}

	// Unreserved: the higher-scoring L1 wins.
	if c := p.Pick(v, Env{}); c == nil || c.Level != 1 {
		t.Fatalf("expected L1 pick, got %+v", c)
	}

	in := NewInFlight()
	in.Reserve(&Compaction{Level: 1, OutputLevel: 2, Inputs: []*manifest.FileMeta{l1}})
	c := p.Pick(v, Env{InFlight: in})
	if c == nil {
		t.Fatal("fully-reserved top level produced nil pick instead of next-best level")
	}
	if c.Level != 2 {
		t.Fatalf("expected fallback to L2, got L%d", c.Level)
	}
	if in.Conflicts(c) {
		t.Fatal("fallback pick conflicts with in-flight work")
	}
}

// TestPickSeekCandidate folds the former engine-side seek special case
// into the picker: a pending seek victim is preferred even below the size
// thresholds, validated against the version, and conflict-checked.
func TestPickSeekCandidate(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := &manifest.Version{}
	f := meta(1, 1<<20, "d", "f")
	v.Levels[1] = []*manifest.FileMeta{f} // far below the size threshold

	c := p.Pick(v, Env{SeekFile: f, SeekLevel: 1})
	if c == nil || c.Reason != ReasonSeek || len(c.Inputs) != 1 || c.Inputs[0] != f {
		t.Fatalf("seek candidate not picked: %+v", c)
	}

	// A stale candidate (not in the version anymore) is ignored.
	if c := p.Pick(v, Env{SeekFile: meta(9, 1<<20, "x", "z"), SeekLevel: 1}); c != nil {
		t.Fatalf("stale seek candidate picked: %+v", c)
	}

	// A conflicting candidate is ignored while the conflict lasts.
	in := NewInFlight()
	in.Reserve(&Compaction{Level: 1, OutputLevel: 2, Inputs: []*manifest.FileMeta{f}})
	if c := p.Pick(v, Env{SeekFile: f, SeekLevel: 1, InFlight: in}); c != nil {
		t.Fatalf("conflicting seek candidate picked: %+v", c)
	}
}
