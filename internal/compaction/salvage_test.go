package compaction

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// quarantinedVersion builds a real version (through a VersionSet, since
// quarantine membership is builder state) with the given tables per level
// and the listed table numbers quarantined.
func quarantinedVersion(t *testing.T, levels map[int][]*manifest.FileMeta, quarantine ...uint64) *manifest.Version {
	t.Helper()
	vs, err := manifest.Create(vfs.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &manifest.VersionEdit{}
	for level, files := range levels {
		for _, f := range files {
			edit.AddFile(level, f)
		}
	}
	for _, num := range quarantine {
		edit.QuarantineFile(num)
	}
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	v := vs.Current()
	v.Ref()
	return v
}

func TestPickSalvageTargetsQuarantinedTable(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := quarantinedVersion(t, map[int][]*manifest.FileMeta{
		2: {meta(10, 1<<20, "a", "f"), meta(11, 1<<20, "g", "m")},
	}, 11)

	c := p.Pick(v, Env{})
	if c == nil || c.Reason != ReasonSalvage {
		t.Fatalf("pick = %+v, want salvage", c)
	}
	if c.Level != 2 || c.OutputLevel != 2 {
		t.Fatalf("salvage is a same-level rewrite, got L%d -> L%d", c.Level, c.OutputLevel)
	}
	if len(c.Inputs) != 1 || c.Inputs[0].Num != 11 || len(c.NextInputs) != 0 {
		t.Fatalf("salvage inputs: %+v / %+v", c.Inputs, c.NextInputs)
	}
}

func TestPickSalvageOutranksSizeTriggers(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	// L1 is far over budget, but the quarantined L3 table still wins: a
	// table failing reads outranks a level merely over size.
	levels := map[int][]*manifest.FileMeta{
		3: {meta(30, 1<<20, "a", "b")},
	}
	for i := 0; i < 12; i++ {
		levels[1] = append(levels[1], meta(uint64(i+1), 2<<20, ik2(i*2), ik2(i*2+1)))
	}
	v := quarantinedVersion(t, levels, 30)

	c := p.Pick(v, Env{})
	if c == nil || c.Reason != ReasonSalvage || c.Inputs[0].Num != 30 {
		t.Fatalf("pick = %+v, want salvage of table 30", c)
	}
}

func TestPickSalvageSkipsReservedTable(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	v := quarantinedVersion(t, map[int][]*manifest.FileMeta{
		2: {meta(10, 1<<20, "a", "f"), meta(11, 1<<20, "g", "m")},
	}, 10, 11)

	inf := NewInFlight()
	reserved := v.Levels[2][0]
	res := inf.Reserve(&Compaction{
		Level: 2, OutputLevel: 2, Reason: ReasonSalvage,
		Inputs: []*manifest.FileMeta{reserved},
	})
	defer inf.Release(res)

	c := p.Pick(v, Env{InFlight: inf})
	if c == nil || c.Reason != ReasonSalvage {
		t.Fatalf("pick = %+v, want salvage of the unreserved table", c)
	}
	if c.Inputs[0].Num == reserved.Num {
		t.Fatalf("picked the already-reserved table %d", c.Inputs[0].Num)
	}
}

func TestPickAvoidsQuarantinedInputs(t *testing.T) {
	p := &Picker{Opts: defaultOpts()}
	// L1 over budget; its only victim's L2 overlap is quarantined but
	// reserved by an in-flight salvage, so neither salvage (conflict) nor
	// the size pick (corrupt input) may run: compacting into a corrupt
	// table would feed garbage through the merge.
	v := quarantinedVersion(t, map[int][]*manifest.FileMeta{
		1: {meta(1, 20<<20, "a", "m")},
		2: {meta(20, 1<<20, "b", "k")},
	}, 20)

	inf := NewInFlight()
	res := inf.Reserve(&Compaction{
		Level: 2, OutputLevel: 2, Reason: ReasonSalvage,
		Inputs: []*manifest.FileMeta{v.Levels[2][0]},
	})

	if c := p.Pick(v, Env{InFlight: inf}); c != nil {
		t.Fatalf("picked %+v across a quarantined table", c)
	}
	inf.Release(res)
	if c := p.Pick(v, Env{InFlight: inf}); c == nil || c.Reason != ReasonSalvage {
		t.Fatalf("pick after release = %+v, want salvage", c)
	}
}

func ik2(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }
