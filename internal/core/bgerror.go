package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/manifest"
)

// ErrReadOnlyMode is the sentinel matched by errors.Is when the engine has
// degraded to read-only after background work exhausted its retry budget
// or hit a permanent storage fault. Reads keep serving the last committed
// state; writes and manual compactions fail with a ReadOnlyError wrapping
// this sentinel and the cause.
var ErrReadOnlyMode = errors.New("core: database is in read-only mode")

// ReadOnlyError is the typed error write paths return in read-only mode.
// errors.Is matches both ErrReadOnlyMode and the degradation cause.
type ReadOnlyError struct {
	// Cause is the background failure that forced the degradation.
	Cause error
}

// Error describes the degradation and its cause.
func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("core: database is in read-only mode: %v", e.Cause)
}

// Unwrap exposes both the sentinel and the cause chain.
func (e *ReadOnlyError) Unwrap() []error { return []error{ErrReadOnlyMode, e.Cause} }

// errIsTransient classifies a background failure. Faults that implement
// Transient() (the errorfs injection type, and any storage wrapper that
// models recoverable conditions) classify themselves; corruption is always
// fatal; anything else is assumed transient — the retry budget bounds the
// cost of guessing wrong, and a genuinely broken disk fails every retry
// and degrades anyway.
func errIsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return !errors.Is(err, manifest.ErrCorrupt)
}

// enterReadOnlyLocked switches the engine into degraded read-only mode.
func (db *DB) enterReadOnlyLocked(cause error) {
	if db.readOnly {
		return
	}
	db.readOnly = true
	db.roCause = cause
	db.met.ReadOnlyDegradations.Add(1)
	db.cond.Broadcast()
}

// pendingErrLocked returns the error background work has pending for
// callers: a fatal engine error, or the read-only degradation.
func (db *DB) pendingErrLocked() error {
	if db.bgErr != nil {
		return db.bgErr
	}
	if db.readOnly {
		return &ReadOnlyError{Cause: db.roCause}
	}
	return nil
}

// bgStoppedLocked reports whether background work must stop: the DB is
// closed, poisoned by a fatal error, or degraded to read-only. Every wait
// loop that previously checked closed/bgErr must also exit on read-only,
// or it would spin or hang once flushes stop making progress.
func (db *DB) bgStoppedLocked() bool {
	return db.closed || db.bgErr != nil || db.readOnly
}

// retryOrDegradeLocked implements the background failure policy for one
// failed flush or compaction attempt: transient errors under the retry
// budget sleep a capped exponential backoff (mu released) and report true
// (retry); everything else degrades the engine to read-only and reports
// false. fails is the caller's consecutive-failure counter.
func (db *DB) retryOrDegradeLocked(fails *int, err error) bool {
	if db.closed || db.bgErr != nil {
		return false
	}
	if !errIsTransient(err) || *fails >= db.cfg.BgRetryLimit {
		db.enterReadOnlyLocked(err)
		db.mu.Unlock()
		db.ev.Emit(events.Event{Type: events.TypeBgDegraded, Err: err.Error()})
		db.mu.Lock()
		return false
	}
	*fails++
	db.met.BgRetries.Add(1)
	delay := backoffDelay(db.cfg.BgRetryBaseDelay, db.cfg.BgRetryMaxDelay, *fails)
	db.mu.Unlock()
	db.ev.Emit(events.Event{Type: events.TypeBgRetry, Dur: delay, Err: err.Error()})
	time.Sleep(delay)
	db.mu.Lock()
	return !db.bgStoppedLocked()
}

// recoverFaultLocked resets the consecutive-failure counter after a
// successful attempt, counting the recovery if any retries were spent.
func (db *DB) recoverFaultLocked(fails *int) {
	if *fails > 0 {
		*fails = 0
		db.met.BgRecoveredFaults.Add(1)
	}
}

// backoffDelay is capped exponential backoff with ±25% jitter: attempt 1
// sleeps ~base, doubling up to maxDelay. Jitter decorrelates the flush and
// compaction workers when both hit the same fault.
func backoffDelay(base, maxDelay time.Duration, attempt int) time.Duration {
	d := maxDelay
	if attempt < 32 {
		if shifted := base << (attempt - 1); shifted > 0 && shifted < maxDelay {
			d = shifted
		}
	}
	if q := int64(d) / 4; q > 0 {
		d += time.Duration(rand.Int63n(2*q+1) - q)
	}
	return d
}

// ReadOnly reports whether the engine has degraded to read-only mode, and
// if so the background failure that caused it.
func (db *DB) ReadOnly() (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.readOnly, db.roCause
}

// deadRange is a byte range recorded as dead-but-unreclaimed: its hole
// punch was not supported by the backend, so the space is still allocated
// even though no live table references it.
type deadRange struct {
	off, size int64
}

// DeadRangeBytes returns the total bytes recorded as dead but unreclaimed
// across all physical files (the space debt of punch-hole fallbacks).
func (db *DB) DeadRangeBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total int64
	for _, ranges := range db.deadRanges {
		for _, r := range ranges {
			total += r.size
		}
	}
	return total
}
