package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// fastRetryConfig shrinks the backoff so fault tests run in milliseconds.
func fastRetryConfig(base Config) Config {
	base.BgRetryBaseDelay = 100 * time.Microsecond
	base.BgRetryMaxDelay = time.Millisecond
	return base
}

// isSST matches table files (both legacy and compaction-file layouts use
// the .sst suffix).
func isSST(name string) bool { return strings.HasSuffix(name, ".sst") }

// fillToFlush writes enough sequential data to force at least one memtable
// switch and flush.
func fillToFlush(t *testing.T, db *DB, tag string) {
	t.Helper()
	val := []byte(strings.Repeat(tag+"-", 64)) // ~320 bytes per value
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%s-%05d", tag, i)), val); err != nil {
			t.Fatalf("Put %s-%05d: %v", tag, i, err)
		}
	}
}

// fillUntilDegraded is fillToFlush for faulty-storage tests: the engine may
// degrade to read-only mid-fill, which stops the fill without failing the
// test. Any other Put error still fails.
func fillUntilDegraded(t *testing.T, db *DB, tag string) {
	t.Helper()
	val := []byte(strings.Repeat(tag+"-", 64))
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%s-%05d", tag, i)), val); err != nil {
			if errors.Is(err, ErrReadOnlyMode) {
				return
			}
			t.Fatalf("Put %s-%05d: %v", tag, i, err)
		}
	}
}

func TestTransientSyncFaultRecovered(t *testing.T) {
	for _, cfgName := range []string{"leveldb", "bolt"} {
		t.Run(cfgName, func(t *testing.T) {
			cfg := testConfig()
			if cfgName == "bolt" {
				cfg = boltTestConfig()
			}
			efs := vfs.NewErrorFS(vfs.NewMem())
			db := openTestDB(t, efs, fastRetryConfig(cfg))
			defer db.Close()

			// Fail the first table-file sync after arming, once.
			efs.SetInjector(vfs.FilterName(isSST,
				vfs.FailNth(vfs.OpSync, efs.OpCount(vfs.OpSync)+1, false)))

			fillToFlush(t, db, "transient")
			if err := db.WaitIdle(); err != nil {
				t.Fatalf("WaitIdle after transient fault = %v, want nil", err)
			}

			db.mu.Lock()
			bgErr := db.bgErr
			db.mu.Unlock()
			if bgErr != nil {
				t.Fatalf("transient fault poisoned bgErr: %v", bgErr)
			}
			if ro, cause := db.ReadOnly(); ro {
				t.Fatalf("transient fault degraded to read-only: %v", cause)
			}
			m := db.Metrics()
			if m.BgRetries.Load() == 0 {
				t.Fatal("no retry was counted for the injected fault")
			}
			if m.BgRecoveredFaults.Load() == 0 {
				t.Fatal("no recovery was counted after the retry succeeded")
			}
			if m.ReadOnlyDegradations.Load() != 0 {
				t.Fatal("degradation counted for a recovered fault")
			}

			// The data must be fully readable.
			got, err := db.Get([]byte("transient-00000"), nil)
			if err != nil || !strings.HasPrefix(string(got), "transient-") {
				t.Fatalf("Get after recovery = %q, %v", got, err)
			}
		})
	}
}

func TestPermanentSyncFaultDegradesToReadOnly(t *testing.T) {
	efs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, efs, fastRetryConfig(testConfig()))
	defer db.Close()

	// Commit some data durably before the fault.
	if err := db.Put([]byte("pre-fault"), []byte("value")); err != nil {
		t.Fatal(err)
	}

	efs.SetInjector(vfs.FilterName(isSST,
		vfs.FailNth(vfs.OpSync, efs.OpCount(vfs.OpSync)+1, true)))

	fillUntilDegraded(t, db, "doomed")
	err := db.WaitIdle()
	if !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("WaitIdle = %v, want ErrReadOnlyMode", err)
	}
	var inj *vfs.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("degradation error %v does not wrap the injected cause", err)
	}

	ro, cause := db.ReadOnly()
	if !ro || cause == nil {
		t.Fatalf("ReadOnly() = %v, %v; want true with cause", ro, cause)
	}

	// Writes fail with the typed error; errors.Is matches the sentinel.
	werr := db.Put([]byte("rejected"), []byte("x"))
	if !errors.Is(werr, ErrReadOnlyMode) {
		t.Fatalf("Put in read-only mode = %v, want ErrReadOnlyMode", werr)
	}
	var roErr *ReadOnlyError
	if !errors.As(werr, &roErr) || roErr.Cause == nil {
		t.Fatalf("Put error %v is not a *ReadOnlyError with cause", werr)
	}
	if cerr := db.CompactRange(nil, nil); !errors.Is(cerr, ErrReadOnlyMode) {
		t.Fatalf("CompactRange in read-only mode = %v, want ErrReadOnlyMode", cerr)
	}

	// Reads keep serving the committed state.
	if got, gerr := db.Get([]byte("pre-fault"), nil); gerr != nil || string(got) != "value" {
		t.Fatalf("Get in read-only mode = %q, %v", got, gerr)
	}
	// Memtable contents acknowledged before degradation stay readable too.
	if got, gerr := db.Get([]byte("doomed-00000"), nil); gerr != nil || len(got) == 0 {
		t.Fatalf("Get of pre-degradation write = %q, %v", got, gerr)
	}

	m := db.Metrics()
	if m.ReadOnlyDegradations.Load() != 1 {
		t.Fatalf("ReadOnlyDegradations = %d, want 1", m.ReadOnlyDegradations.Load())
	}
	db.mu.Lock()
	bgErr := db.bgErr
	db.mu.Unlock()
	if bgErr != nil {
		t.Fatalf("degradation must not poison bgErr, got %v", bgErr)
	}
}

func TestRetryLimitDisabledDegradesImmediately(t *testing.T) {
	cfg := fastRetryConfig(testConfig())
	cfg.BgRetryLimit = -1 // no retries
	efs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, efs, cfg)
	defer db.Close()

	efs.SetInjector(vfs.FilterName(isSST,
		vfs.FailNth(vfs.OpSync, efs.OpCount(vfs.OpSync)+1, false)))
	fillUntilDegraded(t, db, "noretry")
	if err := db.WaitIdle(); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("WaitIdle = %v, want immediate read-only degradation", err)
	}
	if got := db.Metrics().BgRetries.Load(); got != 0 {
		t.Fatalf("BgRetries = %d with retries disabled", got)
	}
}

func TestPunchHoleFallbackRecordsDeadRanges(t *testing.T) {
	efs := vfs.NewErrorFS(vfs.NewMem())
	// Every punch reports the backend as incapable; the data itself is
	// untouched (the injector fails the op before it reaches MemFS).
	efs.SetInjector(vfs.InjectorFunc(func(op vfs.Op, name string, n int64) error {
		if op == vfs.OpPunchHole {
			return fmt.Errorf("backend: %w", vfs.ErrPunchHoleUnsupported)
		}
		return nil
	}))

	db := openTestDB(t, efs, boltTestConfig()) // punches need compaction files
	defer db.Close()

	// Drive the reclaim path directly with a synthetic compaction file so
	// the dead-range bookkeeping is observable deterministically (in a real
	// workload the ranges vanish as soon as the whole file dies).
	const phys, sz = uint64(90001), int64(4096)
	f, err := db.fs.Create(manifest.TableFileName(phys))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 2*sz)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Two logical tables share the file; the first dies now.
	db.mu.Lock()
	db.physRefs[phys] = 2
	db.zombies = append(db.zombies, &manifest.FileMeta{Num: 90100, PhysNum: phys, Offset: 0, Size: sz})
	db.reclaimZombiesLocked()
	dead := int64(0)
	for _, r := range db.deadRanges[phys] {
		dead += r.size
	}
	db.mu.Unlock()

	m := db.Metrics()
	if m.HolePunchFallbacks.Load() != 1 {
		t.Fatalf("HolePunchFallbacks = %d, want 1", m.HolePunchFallbacks.Load())
	}
	if m.HolePunches.Load() != 0 {
		t.Fatalf("HolePunches = %d, want 0 when punching is unsupported", m.HolePunches.Load())
	}
	if dead != sz || db.DeadRangeBytes() != sz {
		t.Fatalf("dead range bytes = %d (accessor %d), want %d", dead, db.DeadRangeBytes(), sz)
	}

	// The second logical table dies too: the whole file is unlinked and its
	// dead-range debt is forgotten with it.
	db.mu.Lock()
	db.zombies = append(db.zombies, &manifest.FileMeta{Num: 90101, PhysNum: phys, Offset: sz, Size: sz})
	db.reclaimZombiesLocked()
	db.mu.Unlock()
	if db.DeadRangeBytes() != 0 {
		t.Fatalf("DeadRangeBytes = %d after file removal, want 0", db.DeadRangeBytes())
	}
	if _, err := db.fs.Stat(manifest.TableFileName(phys)); err == nil {
		t.Fatal("fully dead physical file was not removed")
	}

	// And an end-to-end sanity pass: a real workload on the non-punching
	// backend neither fails nor degrades.
	for round := 0; round < 3; round++ {
		fillToFlush(t, db, fmt.Sprintf("punch%d", round))
		if err := db.WaitIdle(); err != nil {
			t.Fatalf("WaitIdle round %d = %v", round, err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatalf("CompactRange = %v", err)
	}
	if got, err := db.Get([]byte("punch0-00000"), nil); err != nil || len(got) == 0 {
		t.Fatalf("Get after punch fallbacks = %q, %v", got, err)
	}
}

func TestHolePunchSuccessCounted(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	for round := 0; round < 6; round++ {
		fillToFlush(t, db, fmt.Sprintf("hp%d", round))
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.HolePunches.Load() == 0 {
		t.Skip("workload produced no punches at this scale")
	}
	if m.HolePunchFallbacks.Load() != 0 {
		t.Fatalf("MemFS punches fell back: %d", m.HolePunchFallbacks.Load())
	}
	if db.DeadRangeBytes() != 0 {
		t.Fatalf("DeadRangeBytes = %d on a punching backend", db.DeadRangeBytes())
	}
}

func TestCompactRangeSurfacesDegradation(t *testing.T) {
	efs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, efs, fastRetryConfig(testConfig()))
	defer db.Close()

	fillToFlush(t, db, "seed")
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	// Fail every sync from now on: the manual compaction's first commit (or
	// flush) degrades the engine, and CompactRange must report it.
	efs.SetInjector(vfs.FailNth(vfs.OpSync, efs.OpCount(vfs.OpSync)+1, true))
	fillUntilDegraded(t, db, "more")
	err := db.CompactRange(nil, nil)
	if err == nil {
		t.Fatal("CompactRange = nil after permanent sync faults")
	}
	if !errors.Is(err, ErrReadOnlyMode) {
		// The manual compaction itself may hit the fault before the
		// background degradation lands; either way the error surfaces.
		var inj *vfs.InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("CompactRange = %v, want read-only or injected fault", err)
		}
	}
}

func TestBackoffDelayShape(t *testing.T) {
	base, cap := 2*time.Millisecond, 250*time.Millisecond
	for attempt := 1; attempt <= 40; attempt++ {
		d := backoffDelay(base, cap, attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		if d > cap+cap/4 {
			t.Fatalf("attempt %d: delay %v above cap+jitter", attempt, d)
		}
	}
	// Attempt 1 stays near base even with jitter.
	if d := backoffDelay(base, cap, 1); d > 2*base {
		t.Fatalf("first attempt delay %v too large for base %v", d, base)
	}
}

func TestErrIsTransientClassification(t *testing.T) {
	transient := &vfs.InjectedError{Op: vfs.OpSync, Name: "x"}
	if !errIsTransient(fmt.Errorf("core: flush: %w", transient)) {
		t.Fatal("wrapped transient injected error classified fatal")
	}
	permanent := &vfs.InjectedError{Op: vfs.OpSync, Name: "x", Permanent: true}
	if errIsTransient(fmt.Errorf("core: flush: %w", permanent)) {
		t.Fatal("permanent injected error classified transient")
	}
	if errIsTransient(fmt.Errorf("core: flush commit: %w", manifest.ErrCorrupt)) {
		t.Fatal("corruption classified transient")
	}
	if !errIsTransient(errors.New("disk hiccup")) {
		t.Fatal("unknown error must default to transient (bounded by retries)")
	}
}
