package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestBlockCacheAliasingSafe is the regression for the block-cache
// ownership audit: the cache hands every hit the same backing array the
// reader inserted, so if any byte the engine returns aliased a cached
// block, a caller scribbling on its result would corrupt every later
// read of that block. Get must copy values, and the iterator must copy
// keys and values, before they cross the engine boundary.
func TestBlockCacheAliasingSafe(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("value-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Push everything into tables so reads go through the block cache.
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range db.NumLevelFiles() {
		total += n
	}
	if total == 0 {
		t.Fatal("no tables flushed; test would only exercise the memtable")
	}

	key := []byte("k0123")
	got, err := db.Get(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := string(got)
	// Scribble over the returned value, then over an iterator's view.
	for i := range got {
		got[i] = 'X'
	}
	it := db.NewIter(nil)
	for ok := it.SeekGE([]byte("k0100")); ok && string(it.Key()) < "k0200"; ok = it.Next() {
		v := it.Value()
		for i := range v {
			v[i] = 'Y'
		}
		k := it.Key()
		for i := range k {
			k[i] = 'Z'
		}
		break
	}
	it.Close()

	again, err := db.Get(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != want {
		t.Fatalf("caller-side mutation corrupted a later read: got %q, want %q", again, want)
	}
	// A full scan still sees every key intact.
	it = db.NewIter(nil)
	defer it.Close()
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan after mutation saw %d keys, want %d", count, n)
	}
}

// TestConfigClampEmitsWarning: negative cache-sizing knobs are clamped to
// their defaults with one config-clamp event per knob; zero values are
// the documented default sentinel and stay silent.
func TestConfigClampEmitsWarning(t *testing.T) {
	cfg := testConfig()
	cfg.BlockCacheBytes = -1
	cfg.TableCacheEntries = -7
	cfg.CacheShards = -2
	db := openTestDB(t, vfs.NewMem(), cfg)
	var clamps []string
	for _, e := range db.Events() {
		if e.Type == events.TypeConfigClamp {
			clamps = append(clamps, e.Reason)
		}
	}
	db.Close()
	joined := strings.Join(clamps, "; ")
	for _, knob := range []string{"BlockCacheBytes=-1", "TableCacheEntries=-7", "CacheShards=-2"} {
		if !strings.Contains(joined, knob) {
			t.Errorf("no config-clamp event for %s (got %q)", knob, joined)
		}
	}
	if len(clamps) != 3 {
		t.Errorf("got %d clamp events, want 3: %q", len(clamps), clamps)
	}

	// Zero values are defaults, not misconfiguration: no warning.
	cfg = testConfig()
	cfg.BlockCacheBytes = 0
	cfg.TableCacheEntries = 0
	cfg.CacheShards = 0
	db = openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	for _, e := range db.Events() {
		if e.Type == events.TypeConfigClamp {
			t.Errorf("zero (default) config emitted clamp event %q", e.Reason)
		}
	}
	if db.CacheStats().BlockShards < 1 {
		t.Fatalf("shards = %d", db.CacheStats().BlockShards)
	}
}

// TestCacheShardsResolution: the knob resolves to a power of two across
// all three caches and shows up in CacheStats and the metric surface.
func TestCacheShardsResolution(t *testing.T) {
	cfg := boltTestConfig()
	cfg.CacheShards = 3 // rounds up to 4
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	cs := db.CacheStats()
	if cs.BlockShards != 4 || cs.TableShards != 4 {
		t.Fatalf("shards = block %d / table %d, want 4/4", cs.BlockShards, cs.TableShards)
	}
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bolt_cache_block_shards 4",
		"bolt_cache_table_shards 4",
		"bolt_cache_fd_shards 4",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
