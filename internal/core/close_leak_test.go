package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// waitForGoroutines polls until the process goroutine count falls back to
// the baseline (runtime bookkeeping lags Close by a scheduler beat) and
// fails with the live count otherwise.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked past Close: %d live, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// requireDrainedRegistry asserts the boltinvariants goroutine registry is
// empty after Close. Without the tag the registry no-ops and liveNames is
// always empty, so the assertion is meaningful only under
// -tags boltinvariants — which is exactly how CI runs it.
func requireDrainedRegistry(t *testing.T, db *DB) {
	t.Helper()
	if names := db.goros.liveNames(); len(names) != 0 {
		t.Fatalf("goroutine registry not drained by Close: %v", names)
	}
}

// TestCloseVsScrubLoopNoLeak races Close against the background scrubber:
// a short interval keeps scrub passes in flight while Close drains, and
// neither the registry nor the process goroutine count may show a
// survivor.
func TestCloseVsScrubLoopNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.ScrubInterval = time.Millisecond
	db := openTestDB(t, vfs.NewMem(), cfg)
	fill(t, db, 500, 100)
	// Let at least one ticker fire so Close races a live pass, not an
	// idle loop.
	time.Sleep(5 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	requireDrainedRegistry(t, db)
	waitForGoroutines(t, baseline)
}

// TestCloseVsCompactWorkerNoLeak races Close against flush and compaction
// workers: the write burst is sized to keep the scheduler spawning, and
// Close lands mid-flight without waiting for idle first.
func TestCloseVsCompactWorkerNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("leak-%06d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	requireDrainedRegistry(t, db)
	waitForGoroutines(t, baseline)
}
