package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestCloseWithConcurrentWriters closes the database while writers are in
// flight; every writer must get a clean result (nil or ErrClosed, never a
// panic or a hang).
func TestCloseWithConcurrentWriters(t *testing.T) {
	for round := 0; round < 5; round++ {
		cfg := testConfig()
		cfg.MemTableBytes = 8 << 10 // frequent switches keep writers stalling
		db := openTestDB(t, vfs.NewMem(), cfg)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					err := db.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), make([]byte, 200))
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil {
						t.Errorf("unexpected write error: %v", err)
						return
					}
				}
			}(w)
		}
		// Let the writers build up some work, then slam the door.
		for db.met.Writes.Load() < 500 {
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		wg.Wait()
	}
}

// TestCloseWaitsForBackgroundWork ensures Close returns only after
// flush/compaction goroutines exit (no writes to a closed vfs afterwards).
func TestCloseWaitsForBackgroundWork(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, boltTestConfig())
	fill(t, db, 2000, 100)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.flushActive || db.compactWorkers > 0 {
		t.Fatal("background work still active after Close")
	}
}

func TestWaitIdleDrainsBacklog(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	fill(t, db, 3000, 100)
	db.WaitIdle()
	db.mu.Lock()
	idle := !db.flushActive && db.compactWorkers == 0 && db.imm == nil
	db.mu.Unlock()
	if !idle {
		t.Fatal("WaitIdle returned while work was active")
	}
	// The store must still serve reads and writes.
	if err := db.Put([]byte("after-idle"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("after-idle"), nil); err != nil {
		t.Fatal(err)
	}
}

// TestCloseWithConcurrentWritersHyper exercises Close racing the
// ConcurrentWriters (HyperLevelDB-style) group commit, where followers may
// be failed by Close after the leader has absorbed their batches.
func TestCloseWithConcurrentWritersHyper(t *testing.T) {
	for round := 0; round < 8; round++ {
		cfg := testConfig()
		cfg.MemTableBytes = 8 << 10
		cfg.ConcurrentWriters = true
		cfg.L0SlowdownTrigger = 0
		cfg.L0StopTrigger = 0
		db := openTestDB(t, vfs.NewMem(), cfg)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					err := db.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), make([]byte, 150))
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}(w)
		}
		for db.met.Writes.Load() < 300 {
		}
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		wg.Wait() // must not hang
	}
}
