package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/bolt-lsm/bolt/internal/compaction"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/metrics"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/vlog"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// CompactRange synchronously compacts every table overlapping the user-key
// range [start, limit] (nil = unbounded) down the tree, level by level,
// after flushing the current memtable. Tools use it to settle a database
// into its minimal shape; nil,nil compacts everything.
func (db *DB) CompactRange(start, limit []byte) error {
	// Flush current memtable content first so it participates.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	if !db.mem.Empty() {
		if err := db.forceMemtableSwitchLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for db.imm != nil && !db.bgStoppedLocked() {
		db.maybeScheduleWorkLocked()
		db.cond.Wait()
	}

	// Exclude the scheduler while the manual compaction holds references
	// to current-version inputs; otherwise both could compact the same
	// tables. Setting manualActive stops new picks (pickCompactionLocked
	// returns nil) so the worker pool drains promptly; reserved work
	// already in flight runs to completion first.
	db.manualActive = true
	defer func() {
		// The cleanup must run under mu, so mu is released here rather
		// than at the return sites.
		db.manualActive = false
		db.maybeScheduleWorkLocked()
		db.cond.Broadcast()
		db.mu.Unlock()
	}()
	for (db.flushActive || db.compactWorkers > 0) && !db.bgStoppedLocked() {
		db.cond.Wait()
	}

	var manualErr error
	for level := 0; level < manifest.NumLevels-1 && manualErr == nil; level++ {
		for !db.bgStoppedLocked() {
			v := db.vs.Current()
			inputs := v.Overlaps(level, start, limit)
			if len(inputs) == 0 {
				break
			}
			if level == 0 {
				// Level 0 files overlap each other; take the closure.
				inputs = compaction.L0OverlapClosure(v.Levels[0], inputs[0])
			}
			c := &compaction.Compaction{
				Level:       level,
				OutputLevel: level + 1,
				Inputs:      inputs,
				Reason:      compaction.ReasonManual,
			}
			smallest, largest := c.Range()
			c.NextInputs = v.Overlaps(level+1, smallest, largest)
			// Reserve even though the pool is drained: the in-flight gauge
			// stays truthful and Release is cheap.
			r := db.inflight.Reserve(c)
			err := db.compactLocked(c, manualWorkerID)
			db.inflight.Release(r)
			if err != nil {
				// Manual compactions surface failures to the caller
				// instead of retrying; the tree is unchanged.
				manualErr = fmt.Errorf("core: manual compaction: %w", err)
				break
			}
			db.cond.Broadcast()
			if level > 0 {
				break // one pass per sorted level is exhaustive
			}
		}
	}
	if manualErr != nil {
		return manualErr
	}
	// A close mid-compaction is a deliberate shutdown, not a compaction
	// failure; a background error or degradation observed while waiting
	// must reach the caller.
	return db.pendingErrLocked()
}

// forceMemtableSwitchLocked rotates the memtable regardless of its size so
// a flush of current contents can be awaited.
func (db *DB) forceMemtableSwitchLocked() error {
	// Waiting on leaderActive too: the group-commit leader appends to the
	// current WAL writer with mu released, so rotating (and closing) it
	// here while a leader is in that window would race the append.
	for (db.imm != nil || db.leaderActive) && !db.bgStoppedLocked() {
		db.rotateWaiters++
		db.cond.Wait()
		db.rotateWaiters--
	}
	if db.closed {
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		return err
	}
	newLogNum := db.vs.NextFileNum()
	newWal, err := wal.NewWriter(db.fs, manifest.LogFileName(newLogNum))
	if err != nil {
		return err
	}
	_ = db.walW.Close()
	db.obsoleteLogs = append(db.obsoleteLogs, db.walNum)
	db.walNum = newLogNum
	db.walW = newWal
	db.imm = db.mem
	db.mem = memtable.New()
	db.met.MemtableSwitch.Add(1)
	db.maybeScheduleWorkLocked()
	return nil
}

// Worker IDs stamped into events: the dedicated flush thread is worker 0,
// pool workers are 1..MaxBackgroundCompactions, and foreground manual
// compactions report manualWorkerID.
const (
	flushWorkerID  = 0
	manualWorkerID = -1
)

// maybeScheduleWorkLocked is the scheduler: called with mu held whenever
// flushable or compactable state appears, it tops the bounded worker pool
// up with pre-reserved jobs. Picking happens here, under mu, so a worker
// is only spawned when it has conflict-free work in hand — repeated calls
// while the queue is saturated spawn nothing.
func (db *DB) maybeScheduleWorkLocked() {
	if db.bgStoppedLocked() || db.manualActive {
		return
	}
	if db.cfg.SeparateFlushThread && db.imm != nil && !db.flushActive {
		db.flushActive = true
		db.goros.register("flushLoop")
		//boltvet:goroutine flushActive -- cleared by flushLoop when the flush claim is returned; Close and WaitIdle drain on it
		go db.flushLoop()
	}
	// Value GC runs on its own goroutine rather than a pool slot: a GC pass
	// commits through the writer queue, and a write can stall on a full
	// memtable until a flush runs — with MaxBackgroundCompactions=1 a pool
	// slot waiting on that write would deadlock against the flush it blocks.
	if !db.vlogGCActive {
		if gc := db.pickValueGCLocked(); gc != nil {
			r := db.inflight.Reserve(gc)
			db.vlogGCActive = true
			db.goros.register("vlogGCWorker")
			//boltvet:goroutine vlogGCActive -- cleared by vlogGCWorker on exit; Close and WaitIdle drain on it
			go db.vlogGCWorker(gc, r)
		}
	}
	for db.compactWorkers < db.cfg.MaxBackgroundCompactions {
		// In unified mode the pool also drains flushes. The flush claim is
		// taken here, before the worker runs, for the same reason picks
		// are: so the next scheduler call sees the claim and does not
		// spawn a second worker for the same memtable.
		flushFirst := !db.cfg.SeparateFlushThread && db.imm != nil && !db.flushActive
		var c *compaction.Compaction
		var r *compaction.Reservation
		if !flushFirst {
			if c, r = db.pickAndReserveLocked(); c == nil {
				return
			}
		} else {
			db.flushActive = true
		}
		db.compactWorkers++
		db.goros.register("compactWorker")
		//boltvet:goroutine compactWorkers -- decremented on worker exit; Close and WaitIdle drain on the counter
		go db.compactWorker(db.takeWorkerSlotLocked(), c, r, flushFirst)
	}
}

// takeWorkerSlotLocked allocates the smallest free pool worker ID (1-based;
// 0 is the dedicated flush thread). The compactWorkers bound guarantees a
// free slot exists.
func (db *DB) takeWorkerSlotLocked() int {
	for i := range db.workerSlots {
		if !db.workerSlots[i] {
			db.workerSlots[i] = true
			return i + 1
		}
	}
	// Unreachable while compactWorkers <= len(workerSlots); be safe anyway.
	db.workerSlots = append(db.workerSlots, true)
	return len(db.workerSlots)
}

func (db *DB) releaseWorkerSlotLocked(w int) {
	db.workerSlots[w-1] = false
}

// flushLoop is the dedicated flush worker (SeparateFlushThread profiles).
// The scheduler takes the flush claim before spawning it.
func (db *DB) flushLoop() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.runFlushLocked(flushWorkerID)
	db.goros.done("flushLoop")
	db.flushActive = false
	db.cond.Broadcast()
}

// runFlushLocked drains the immutable memtable under the caller-held flush
// claim. Failed flushes are retried with backoff (the immutable memtable
// and its WAL stay in place, so no acknowledged write is at risk); an
// exhausted retry budget degrades the engine to read-only.
func (db *DB) runFlushLocked(worker int) {
	for !db.bgStoppedLocked() && db.imm != nil {
		if err := db.flushLocked(worker); err != nil {
			if db.retryOrDegradeLocked(&db.flushFails, err) {
				continue
			}
			return
		}
		db.recoverFaultLocked(&db.flushFails)
		db.cond.Broadcast()
	}
}

// compactWorker is one pool worker. It executes the pre-reserved job it
// was spawned with, then keeps picking until no conflict-free work
// remains. In unified mode (no separate flush thread) an idle worker also
// claims pending flushes; flushFirst marks a claim already taken by the
// scheduler at spawn time. Failures follow the retry-then-degrade policy;
// a failed compaction leaves the tree unchanged, so after releasing its
// reservation the retry simply re-picks.
func (db *DB) compactWorker(w int, c *compaction.Compaction, r *compaction.Reservation, flushFirst bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.bgStoppedLocked() {
		if flushFirst || (c == nil && !db.cfg.SeparateFlushThread && db.imm != nil && !db.flushActive) {
			if !flushFirst {
				db.flushActive = true
			}
			flushFirst = false
			db.runFlushLocked(w)
			db.flushActive = false
			db.cond.Broadcast()
			continue
		}
		if c == nil {
			if c, r = db.pickAndReserveLocked(); c == nil {
				break
			}
		}
		err := db.compactLocked(c, w)
		// Release before any retry backoff: a sleeping worker must not
		// keep other workers away from the tables it failed to compact.
		db.inflight.Release(r)
		c, r = nil, nil
		if err != nil {
			// A table-corruption finding is contained by quarantining the
			// table (the next pick runs its salvage) rather than burning
			// the retry budget toward a whole-DB read-only degradation.
			if db.quarantineCorruptLocked(err) {
				continue
			}
			if db.retryOrDegradeLocked(&db.compactFails, err) {
				continue
			}
			break
		}
		db.recoverFaultLocked(&db.compactFails)
		db.cond.Broadcast()
	}
	// Exits with work still in hand happen when background work stops
	// (close, degradation): drop the unused claim and reservation.
	if flushFirst {
		db.flushActive = false
	}
	db.inflight.Release(r)
	db.goros.done("compactWorker")
	db.compactWorkers--
	db.releaseWorkerSlotLocked(w)
	db.cond.Broadcast()
}

// pickAndReserveLocked picks the next conflict-free compaction and
// reserves its footprint in the in-flight registry.
func (db *DB) pickAndReserveLocked() (*compaction.Compaction, *compaction.Reservation) {
	c := db.pickCompactionLocked()
	if c == nil {
		return nil, nil
	}
	return c, db.inflight.Reserve(c)
}

// pickCompactionLocked returns the next compaction the picker can run
// alongside the in-flight set, or nil. The pending seek candidate (if
// any) is handed to the picker and consumed either way: like the
// pre-scheduler engine, a seek hint gets exactly one pick attempt.
func (db *DB) pickCompactionLocked() *compaction.Compaction {
	if db.manualActive {
		return nil
	}
	env := compaction.Env{
		CompactPointer: db.vs.CompactPointer,
		InFlight:       db.inflight,
		SeekFile:       db.seekCompactFile,
		SeekLevel:      db.seekCompactLevel,
	}
	db.seekCompactFile = nil
	c := db.picker.Pick(db.vs.Current(), env)
	if c != nil && c.Reason == compaction.ReasonSeek {
		db.met.SeekCompactions.Add(1)
	}
	return c
}

// flushLocked converts the immutable memtable into level-0 tables. Called
// with mu held; releases it during I/O. On failure the immutable memtable
// and its WAL are left in place so the caller can retry; partially written
// output files become orphans for the next recovery to collect (they are
// never deleted here — an apparently failed sync may still have reached
// the platter, and the MANIFEST of a failed commit may reference them).
func (db *DB) flushLocked(worker int) error {
	imm := db.imm
	logNum := db.walNum // stable: imm != nil blocks further switches
	vlogW := db.vlogW
	db.met.MemtableFlushes.Add(1)
	db.nextJobID++
	job := db.nextJobID
	start := time.Now()
	fsyncsBefore := db.io.Fsyncs.Load()

	db.mu.Unlock()
	db.ev.Emit(events.Event{Type: events.TypeFlushStart, BytesIn: imm.ApproximateSize(), Job: job, Worker: worker})
	// The flush barrier covers the value log: every pointer in imm must be
	// durable before the tables referencing it commit. Without SyncWAL the
	// commit path never synced these appends; this is where they settle.
	var err error
	if vlogW != nil {
		err = vlogW.Sync()
	}
	var metas []*manifest.FileMeta
	if err == nil {
		metas, err = db.writeTables(imm.NewIter(), 0)
	}
	db.mu.Lock()
	if err != nil {
		return fmt.Errorf("core: flush: %w", err)
	}

	edit := &manifest.VersionEdit{}
	edit.SetLogNum(logNum)
	for _, m := range metas {
		edit.AddFile(0, m)
	}
	// Record the value log alongside the tables that reference it: sealed
	// segments from rotations since the last flush, plus the active
	// segment at its synced length (Size merges by max, so a later, longer
	// record always wins).
	pendingApplied := len(db.vlogPending)
	for _, s := range db.vlogPending {
		edit.AddVLogSegment(s)
	}
	if db.vlogW != nil {
		edit.AddVLogSegment(manifest.VLogSegmentEdit{Num: db.vlogW.Seg(), Size: db.vlogW.SyncedSize()})
	}
	if err := db.logAndApplyLocked(edit); err != nil {
		return fmt.Errorf("core: flush commit: %w", err)
	}
	// Rotations during logAndApply's unlock window appended behind the
	// applied prefix; drop only what this edit recorded.
	db.vlogPending = db.vlogPending[pendingApplied:]
	var outBytes int64
	for _, m := range metas {
		db.physRefs[m.PhysNum]++
		outBytes += m.Size
	}
	db.met.TablesCreated.Add(int64(len(metas)))
	db.met.LevelCompactionsIn[0].Add(1)
	db.met.LevelBytesWritten[0].Add(outBytes)
	db.imm = nil
	// The memtable-absence liveness rule (see filterGCBatchLocked) expires
	// whenever a memtable retires.
	db.flushEpoch++

	logs := db.obsoleteLogs
	db.obsoleteLogs = nil
	punches := db.takeReadyVLogPunchesLocked()
	db.mu.Unlock()
	for _, num := range logs {
		_ = db.fs.Remove(manifest.LogFileName(num))
	}
	db.execVLogPunches(punches)
	db.ev.Emit(events.Event{
		Type:     events.TypeFlushEnd,
		Outputs:  len(metas),
		BytesOut: outBytes,
		Barriers: db.io.Fsyncs.Load() - fsyncsBefore,
		Dur:      time.Since(start),
		Job:      job,
		Worker:   worker,
	})
	db.mu.Lock()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()
	return nil
}

// compactLocked executes one compaction. Called with mu held; releases it
// during I/O. On failure the tree is unchanged and the error is returned
// for the caller's retry/degrade policy; output files written before the
// failure are left as orphans (see flushLocked).
func (db *DB) compactLocked(c *compaction.Compaction, worker int) error {
	db.met.Compactions.Add(1)
	db.met.CompactionsByReason[compactionReasonBucket(c.Reason)].Add(1)
	db.nextJobID++
	job := db.nextJobID
	v := db.vs.Current()
	v.Ref() // pin input tables for the duration
	smallestSnap := db.smallestSnapshotLocked()
	dropTombstones := db.canDropTombstonesLocked(v, c)
	// Garbage accounting: a dropped pointer entry is value-log garbage,
	// but only if it lands past the segment's GC watermark — below it the
	// bytes are already reclaimed and counting them again would inflate
	// the ratio. Snapshot the watermarks from the pinned version.
	var gcOffsets map[uint64]int64
	if segs := v.VLogSegments(); len(segs) > 0 {
		gcOffsets = make(map[uint64]int64, len(segs))
		for _, s := range segs {
			gcOffsets[s.Num] = s.GCOffset
		}
	}
	start := time.Now()
	fsyncsBefore := db.io.Fsyncs.Load()
	var levelBytes, nextBytes int64
	for _, f := range c.Inputs {
		levelBytes += f.Size
	}
	for _, f := range c.NextInputs {
		nextBytes += f.Size
	}

	var (
		metas   []*manifest.FileMeta
		garbage map[uint64]int64
		skipped int
		err     error
	)
	salvage := c.Reason == compaction.ReasonSalvage
	db.mu.Unlock()
	db.ev.Emit(events.Event{
		Type:        events.TypeCompactionStart,
		Level:       c.Level,
		OutputLevel: c.OutputLevel,
		Inputs:      len(c.Inputs) + len(c.NextInputs),
		BytesIn:     levelBytes + nextBytes,
		Reason:      c.Reason,
		Job:         job,
		Worker:      worker,
	})
	switch {
	case salvage:
		metas, skipped, err = db.writeSalvageTables(c)
	case len(c.Inputs)+len(c.NextInputs) > 0:
		metas, garbage, err = db.writeCompactionTables(c, smallestSnap, dropTombstones, gcOffsets)
	}
	db.mu.Lock()
	v.Unref()
	if err != nil {
		return fmt.Errorf("core: compaction: %w", err)
	}

	edit := &manifest.VersionEdit{}
	for _, f := range c.Inputs {
		edit.DeleteFile(c.Level, f.Num)
	}
	for _, f := range c.NextInputs {
		edit.DeleteFile(c.OutputLevel, f.Num)
	}
	for _, f := range c.Settled {
		// The settled promotion: a MANIFEST-only move, no data rewrite.
		edit.DeleteFile(c.Level, f.Num)
		edit.AddFile(c.OutputLevel, f)
	}
	for _, m := range metas {
		edit.AddFile(c.OutputLevel, m)
	}
	if !db.cfg.Fragmented && !db.cfg.SettledCompaction && !salvage && c.Level > 0 && len(c.Inputs) > 0 {
		last := c.Inputs[len(c.Inputs)-1]
		edit.CompactPointers = append(edit.CompactPointers, manifest.CompactPointer{
			Level: c.Level,
			Key:   last.Largest,
		})
	}
	for seg, g := range garbage {
		// Skip segments a concurrent GC pass already deleted; an upsert
		// here would resurrect them as ghosts.
		if _, ok := db.vs.Current().VLogSegment(seg); ok {
			edit.AddVLogSegment(manifest.VLogSegmentEdit{Num: seg, GarbageDelta: g})
		}
	}

	if err := db.logAndApplyLocked(edit); err != nil {
		return fmt.Errorf("core: compaction commit: %w", err)
	}

	var outBytes int64
	for _, m := range metas {
		db.physRefs[m.PhysNum]++
		outBytes += m.Size
	}
	db.met.CompactionBytesIn.Add(c.InputBytes())
	db.met.CompactionBytesOut.Add(outBytes)
	db.met.TablesCreated.Add(int64(len(metas)))
	db.met.SettledPromotions.Add(int64(len(c.Settled)))
	db.met.LevelCompactionsOut[c.Level].Add(1)
	db.met.LevelCompactionsIn[c.OutputLevel].Add(1)
	db.met.LevelBytesRead[c.Level].Add(levelBytes)
	db.met.LevelBytesRead[c.OutputLevel].Add(nextBytes)
	db.met.LevelBytesWritten[c.OutputLevel].Add(outBytes)
	if salvage {
		db.met.Salvages.Add(1)
		db.met.SalvageSkipped.Add(int64(skipped))
	}

	db.zombies = append(db.zombies, c.Inputs...)
	db.zombies = append(db.zombies, c.NextInputs...)
	fallbacks := db.reclaimZombiesLocked()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()

	barriers := db.io.Fsyncs.Load() - fsyncsBefore
	db.mu.Unlock()
	db.ev.Emit(events.Event{
		Type:        events.TypeCompactionEnd,
		Level:       c.Level,
		OutputLevel: c.OutputLevel,
		Outputs:     len(metas),
		BytesOut:    outBytes,
		Barriers:    barriers,
		Dur:         time.Since(start),
		Job:         job,
		Worker:      worker,
	})
	if len(c.Settled) > 0 {
		db.ev.Emit(events.Event{
			Type:        events.TypeSettledPromotion,
			Level:       c.Level,
			OutputLevel: c.OutputLevel,
			Outputs:     len(c.Settled),
		})
	}
	if salvage {
		db.ev.Emit(events.Event{
			Type:     events.TypeQuarantineClear,
			Level:    c.Level,
			Outputs:  len(metas),
			BytesOut: outBytes,
			Inputs:   skipped,
		})
	}
	for _, e := range fallbacks {
		db.ev.Emit(e)
	}
	db.mu.Lock()
	return nil
}

// writeCompactionTables merges the compaction inputs into output tables,
// applying the snapshot-aware drop rules. Pointer entries pass through
// unmodified — the whole point of separation is that compactions never
// touch value bytes — but dropped ones are tallied as garbage against
// their segment (past its GC watermark, per gcOffsets). Called without mu.
func (db *DB) writeCompactionTables(c *compaction.Compaction, smallestSnap keys.Seq, dropTombstones bool, gcOffsets map[uint64]int64) ([]*manifest.FileMeta, map[uint64]int64, error) {
	iters := make([]iterator.Iterator, 0, len(c.Inputs)+len(c.NextInputs))
	openIter := func(f *manifest.FileMeta) error {
		r, release, err := db.tableCache.Get(f)
		if err != nil {
			return err
		}
		iters = append(iters, &releasingIter{
			Iterator: r.NewIter(sstable.IterOpts{Readahead: compactionReadahead}),
			release:  release,
		})
		return nil
	}
	for _, f := range c.Inputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, nil, err
		}
	}
	for _, f := range c.NextInputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, nil, err
		}
	}
	merged := iterator.NewMerging(iters...)
	defer merged.Close()

	out := db.newTableOutput(c.OutputLevel, c.CutPoints)
	var garbage map[uint64]int64
	var lastUser []byte
	lastSeqForKey := keys.MaxSeq
	haveUser := false
	for ok := merged.First(); ok; ok = merged.Next() {
		ikey := merged.Key()
		uk := ikey.UserKey()
		if !haveUser || keys.CompareUser(uk, lastUser) != 0 {
			haveUser = true
			lastUser = append(lastUser[:0], uk...)
			lastSeqForKey = keys.MaxSeq
		}
		drop := false
		if lastSeqForKey <= smallestSnap {
			// A newer version of this key is already visible to the oldest
			// snapshot; this one can never be read again.
			drop = true
		} else if ikey.Kind() == keys.KindDelete && ikey.Seq() <= smallestSnap && dropTombstones {
			drop = true
		}
		lastSeqForKey = ikey.Seq()
		if drop {
			if ikey.Kind() == keys.KindSetPtr && gcOffsets != nil {
				if p, perr := vlog.DecodePointer(merged.Value()); perr == nil {
					if gcOff, ok := gcOffsets[p.Seg]; ok && p.Off >= gcOff {
						if garbage == nil {
							garbage = make(map[uint64]int64)
						}
						garbage[p.Seg] += p.Len
					}
				}
			}
			continue
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			out.abort()
			return nil, nil, err
		}
	}
	if err := merged.Err(); err != nil {
		out.abort()
		return nil, nil, err
	}
	metas, err := out.finish()
	return metas, garbage, err
}

// writeSalvageTables rewrites the still-checksummed blocks of a quarantined
// table into fresh tables at the same level, dropping unreadable blocks.
// The output span is a subset of the input span, so a sorted level stays
// sorted. skipped counts the blocks lost to corruption; a table too
// corrupt to open at all is dropped whole (skipped = 1, no outputs).
// Called without mu.
func (db *DB) writeSalvageTables(c *compaction.Compaction) (metas []*manifest.FileMeta, skipped int, err error) {
	f := c.Inputs[0]
	r, release, err := db.tableCache.Get(f)
	if err != nil {
		if errors.Is(err, sstable.ErrCorrupt) {
			return nil, 1, nil
		}
		return nil, 0, err
	}
	defer release()
	out := db.newTableOutput(c.OutputLevel, nil)
	skipped, err = r.Salvage(func(ikey keys.InternalKey, value []byte) error {
		return out.add(ikey, value)
	})
	if err != nil {
		out.abort()
		return nil, 0, err
	}
	metas, err = out.finish()
	if err != nil {
		return nil, 0, err
	}
	return metas, skipped, nil
}

// releasingIter couples a table iterator with its table-cache release.
type releasingIter struct {
	iterator.Iterator
	release func()
}

func (r *releasingIter) Close() error {
	err := r.Iterator.Close()
	if r.release != nil {
		r.release()
		r.release = nil
	}
	return err
}

func closeAll(iters []iterator.Iterator) {
	for _, it := range iters {
		_ = it.Close()
	}
}

// canDropTombstonesLocked reports whether tombstones written by c can be
// elided: nothing below the output level (or beside it, for fragmented
// levels) may hold an older version of a key in the compaction's range.
func (db *DB) canDropTombstonesLocked(v *manifest.Version, c *compaction.Compaction) bool {
	smallest, largest := c.Range()
	if smallest == nil {
		return false
	}
	for level := c.OutputLevel + 1; level < manifest.NumLevels; level++ {
		if len(v.Overlaps(level, smallest, largest)) > 0 {
			return false
		}
	}
	if db.cfg.Fragmented {
		merged := make(map[uint64]struct{}, len(c.NextInputs))
		for _, f := range c.NextInputs {
			merged[f.Num] = struct{}{}
		}
		for _, f := range v.Levels[c.OutputLevel] {
			if _, ok := merged[f.Num]; ok {
				continue
			}
			if f.OverlapsUser(smallest, largest) {
				return false
			}
		}
	}
	return true
}

// logAndApplyLocked commits edit with the MANIFEST barrier paid outside
// the engine mutex. Called with mu held; mu is held again on return.
func (db *DB) logAndApplyLocked(edit *manifest.VersionEdit) error {
	db.mu.Unlock()
	db.manifestMu.Lock()
	db.mu.Lock()
	p := db.vs.Prepare(edit)
	db.mu.Unlock()
	err := db.vs.CommitPrepared(p) //boltvet:ignore guardedby -- the vs pointer is stable; manifestMu serializes commits, and the prepared state p is private to this call
	db.mu.Lock()
	if err == nil {
		db.vs.Install(p)
	} else {
		// A failed commit may have left a torn or unsynced tail in the
		// current MANIFEST; appending after it on a retry could make a
		// half-written record durable. Force the next commit to rotate to
		// a fresh MANIFEST instead.
		db.vs.ForceRotate()
	}
	db.manifestMu.Unlock()
	return err
}

// reclaimZombiesLocked deletes tables no longer referenced by any live
// version: whole physical files are unlinked; dead logical SSTables inside
// still-live compaction files get their byte ranges hole-punched, without
// any barrier (the BoLT space-reclamation path). Called with mu held;
// releases it for the file operations. Successful punches emit their
// events directly (mu is released there); fallback events are returned for
// the caller to emit in its own unlock window, because the fallback
// decision is only final after the post-relock liveness re-check.
func (db *DB) reclaimZombiesLocked() []events.Event {
	if len(db.zombies) == 0 {
		return nil
	}
	live := db.vs.LiveTables()
	var keep []*manifest.FileMeta
	type punch struct {
		phys      uint64
		off, size int64
	}
	var punches []punch
	var removals []uint64
	for _, z := range db.zombies {
		if _, isLive := live[z.Num]; isLive {
			keep = append(keep, z)
			continue
		}
		db.tableCache.Evict(z.Num)
		db.met.TablesDeleted.Add(1)
		db.physRefs[z.PhysNum]--
		if db.physRefs[z.PhysNum] <= 0 {
			delete(db.physRefs, z.PhysNum)
			if db.fdCache != nil {
				db.fdCache.Evict(z.PhysNum)
			}
			delete(db.deadRanges, z.PhysNum)
			removals = append(removals, z.PhysNum)
		} else if db.cfg.compactionFileMode() {
			punches = append(punches, punch{z.PhysNum, z.Offset, z.Size})
		}
	}
	db.zombies = keep

	if len(punches) == 0 && len(removals) == 0 {
		return nil
	}
	db.mu.Unlock()
	for _, num := range removals {
		_ = db.fs.Remove(manifest.TableFileName(num))
	}
	var fallbacks []punch
	for _, p := range punches {
		// Punching is barrier-free and best-effort. A backend that cannot
		// punch (vfs.ErrPunchHoleUnsupported) or holds the file read-only
		// still guarantees the range reads back correctly, so the engine
		// stays correct — the range is just recorded as dead-but-allocated
		// space debt. Any other failure is ignored: a missed punch only
		// costs disk space, never correctness.
		if f, err := db.fs.Open(manifest.TableFileName(p.phys)); err == nil {
			perr := f.PunchHole(p.off, p.size)
			_ = f.Close()
			switch {
			case perr == nil:
				db.met.HolePunches.Add(1)
				db.ev.Emit(events.Event{Type: events.TypeHolePunch, File: p.phys, BytesOut: p.size})
			case errors.Is(perr, vfs.ErrPunchHoleUnsupported) || errors.Is(perr, vfs.ErrReadOnly):
				fallbacks = append(fallbacks, p)
			}
		}
	}
	db.mu.Lock()
	var fallbackEvents []events.Event
	for _, p := range fallbacks {
		// Re-check liveness: the file may have been removed while mu was
		// released, in which case its dead ranges vanished with it.
		if _, live := db.physRefs[p.phys]; live {
			db.deadRanges[p.phys] = append(db.deadRanges[p.phys], deadRange{p.off, p.size})
			db.met.HolePunchFallbacks.Add(1)
			fallbackEvents = append(fallbackEvents, events.Event{
				Type: events.TypeHolePunchFallback, File: p.phys, BytesOut: p.size,
			})
		}
	}
	return fallbackEvents
}

// compactionReasonBucket maps a picker reason string onto the per-reason
// metrics counter index; the two size triggers share one bucket.
func compactionReasonBucket(reason string) metrics.CompactionReason {
	switch reason {
	case compaction.ReasonSeek:
		return metrics.CompactionSeek
	case compaction.ReasonSettled:
		return metrics.CompactionSettled
	case compaction.ReasonFragmented:
		return metrics.CompactionFragmented
	case compaction.ReasonManual:
		return metrics.CompactionManual
	case compaction.ReasonSalvage:
		return metrics.CompactionSalvage
	case compaction.ReasonValueGC:
		return metrics.CompactionValueGC
	default:
		return metrics.CompactionSize
	}
}

// verifyInvariantsLocked re-checks the version layout when the test hook
// is enabled.
func (db *DB) verifyInvariantsLocked() {
	if !db.cfg.VerifyInvariants || db.bgErr != nil {
		return
	}
	if err := db.checkVersionInvariants(db.vs.Current()); err != nil {
		db.bgErr = err
	}
}
