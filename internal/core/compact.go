package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/bolt-lsm/bolt/internal/compaction"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// CompactRange synchronously compacts every table overlapping the user-key
// range [start, limit] (nil = unbounded) down the tree, level by level,
// after flushing the current memtable. Tools use it to settle a database
// into its minimal shape; nil,nil compacts everything.
func (db *DB) CompactRange(start, limit []byte) error {
	// Flush current memtable content first so it participates.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	if !db.mem.Empty() {
		if err := db.forceMemtableSwitchLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for db.imm != nil && !db.bgStoppedLocked() {
		db.maybeScheduleWorkLocked()
		db.cond.Wait()
	}

	// Exclude the background picker while the manual compaction holds
	// references to current-version inputs; otherwise both could compact
	// the same tables.
	db.manualActive = true
	defer func() {
		// The cleanup must run under mu, so mu is released here rather
		// than at the return sites.
		db.manualActive = false
		db.maybeScheduleWorkLocked()
		db.mu.Unlock()
	}()

	var manualErr error
	for level := 0; level < manifest.NumLevels-1 && manualErr == nil; level++ {
		for !db.bgStoppedLocked() {
			// Wait for background work to quiesce so manual compactions
			// do not race the picker over the same inputs.
			for (db.flushActive || db.compactActive) && !db.bgStoppedLocked() {
				db.cond.Wait()
			}
			if db.bgStoppedLocked() {
				break
			}
			v := db.vs.Current()
			inputs := v.Overlaps(level, start, limit)
			if len(inputs) == 0 {
				break
			}
			if level == 0 {
				// Level 0 files overlap each other; take the closure.
				inputs = l0OverlapClosure(v.Levels[0], inputs[0])
			}
			c := &compaction.Compaction{
				Level:       level,
				OutputLevel: level + 1,
				Inputs:      inputs,
				Reason:      "manual",
			}
			smallest, largest := c.Range()
			c.NextInputs = v.Overlaps(level+1, smallest, largest)
			if err := db.compactLocked(c); err != nil {
				// Manual compactions surface failures to the caller
				// instead of retrying; the tree is unchanged.
				manualErr = fmt.Errorf("core: manual compaction: %w", err)
				break
			}
			db.cond.Broadcast()
			if level > 0 {
				break // one pass per sorted level is exhaustive
			}
		}
	}
	if manualErr != nil {
		return manualErr
	}
	// A close mid-compaction is a deliberate shutdown, not a compaction
	// failure; a background error or degradation observed while waiting
	// must reach the caller.
	return db.pendingErrLocked()
}

// forceMemtableSwitchLocked rotates the memtable regardless of its size so
// a flush of current contents can be awaited.
func (db *DB) forceMemtableSwitchLocked() error {
	for db.imm != nil && !db.bgStoppedLocked() {
		db.cond.Wait()
	}
	if db.closed {
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		return err
	}
	newLogNum := db.vs.NextFileNum()
	newWal, err := wal.NewWriter(db.fs, manifest.LogFileName(newLogNum))
	if err != nil {
		return err
	}
	_ = db.walW.Close()
	db.obsoleteLogs = append(db.obsoleteLogs, db.walNum)
	db.walNum = newLogNum
	db.walW = newWal
	db.imm = db.mem
	db.mem = memtable.New()
	db.met.MemtableSwitch.Add(1)
	db.maybeScheduleWorkLocked()
	return nil
}

// maybeScheduleWorkLocked spawns background workers as needed. Called with mu
// held whenever flushable or compactable state appears.
func (db *DB) maybeScheduleWorkLocked() {
	if db.bgStoppedLocked() || db.manualActive {
		return
	}
	if db.cfg.SeparateFlushThread {
		if db.imm != nil && !db.flushActive {
			db.flushActive = true
			go db.flushLoop()
		}
		if !db.compactActive && db.needsCompactionLocked() {
			db.compactActive = true
			go db.compactLoop(false)
		}
	} else if !db.compactActive && (db.imm != nil || db.needsCompactionLocked()) {
		db.compactActive = true
		go db.compactLoop(true)
	}
}

func (db *DB) needsCompactionLocked() bool {
	if db.seekCompactFile != nil {
		return true
	}
	_, score := db.picker.MaxScoreLevel(db.vs.Current())
	return score >= 1.0
}

// flushLoop is the dedicated flush worker (SeparateFlushThread profiles).
// Failed flushes are retried with backoff (the immutable memtable and its
// WAL stay in place, so no acknowledged write is at risk); an exhausted
// retry budget degrades the engine to read-only.
func (db *DB) flushLoop() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.bgStoppedLocked() && db.imm != nil {
		if err := db.flushLocked(); err != nil {
			if db.retryOrDegradeLocked(&db.flushFails, err) {
				continue
			}
			break
		}
		db.recoverFaultLocked(&db.flushFails)
		db.cond.Broadcast()
	}
	db.flushActive = false
	db.cond.Broadcast()
}

// compactLoop is the main background worker. With handleFlush it also
// drains memtable flushes (single-background-thread profiles). Failures
// follow the same retry-then-degrade policy as flushLoop; a failed
// compaction leaves the tree unchanged, so the retry simply re-picks.
func (db *DB) compactLoop(handleFlush bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.bgStoppedLocked() {
		if handleFlush && db.imm != nil {
			if err := db.flushLocked(); err != nil {
				if db.retryOrDegradeLocked(&db.flushFails, err) {
					continue
				}
				break
			}
			db.recoverFaultLocked(&db.flushFails)
			db.cond.Broadcast()
			continue
		}
		c := db.pickCompactionLocked()
		if c == nil {
			break
		}
		if err := db.compactLocked(c); err != nil {
			if db.retryOrDegradeLocked(&db.compactFails, err) {
				continue
			}
			break
		}
		db.recoverFaultLocked(&db.compactFails)
		db.cond.Broadcast()
	}
	db.compactActive = false
	db.cond.Broadcast()
}

// pickCompactionLocked returns the next compaction: a pending seek
// compaction if its victim is still current, else the picker's choice.
func (db *DB) pickCompactionLocked() *compaction.Compaction {
	v := db.vs.Current()
	if f := db.seekCompactFile; f != nil {
		level := db.seekCompactLevel
		db.seekCompactFile = nil
		if level < manifest.NumLevels-1 && !db.cfg.Fragmented {
			for _, cur := range v.Levels[level] {
				if cur == f {
					db.met.SeekCompactions.Add(1)
					c := &compaction.Compaction{
						Level:       level,
						OutputLevel: level + 1,
						Inputs:      []*manifest.FileMeta{f},
						Reason:      "seek",
					}
					if level == 0 {
						// Level-0 files overlap each other: compacting one
						// without its overlapping siblings would leave older
						// versions above newer ones. Expand to the overlap
						// closure, as LevelDB does.
						c.Inputs = l0OverlapClosure(v.Levels[0], f)
					}
					smallest, largest := c.Range()
					c.NextInputs = v.Overlaps(level+1, smallest, largest)
					return c
				}
			}
		}
	}
	return db.picker.Pick(v, db.vs.CompactPointer)
}

// l0OverlapClosure returns the transitive closure of level-0 files whose
// user-key ranges overlap seed's range (growing the range as files join).
func l0OverlapClosure(files []*manifest.FileMeta, seed *manifest.FileMeta) []*manifest.FileMeta {
	smallest := seed.Smallest.UserKey()
	largest := seed.Largest.UserKey()
	in := map[uint64]bool{seed.Num: true}
	out := []*manifest.FileMeta{seed}
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			if in[f.Num] || !f.OverlapsUser(smallest, largest) {
				continue
			}
			in[f.Num] = true
			out = append(out, f)
			if keys.CompareUser(f.Smallest.UserKey(), smallest) < 0 {
				smallest = f.Smallest.UserKey()
			}
			if keys.CompareUser(f.Largest.UserKey(), largest) > 0 {
				largest = f.Largest.UserKey()
			}
			changed = true
		}
	}
	return out
}

// flushLocked converts the immutable memtable into level-0 tables. Called
// with mu held; releases it during I/O. On failure the immutable memtable
// and its WAL are left in place so the caller can retry; partially written
// output files become orphans for the next recovery to collect (they are
// never deleted here — an apparently failed sync may still have reached
// the platter, and the MANIFEST of a failed commit may reference them).
func (db *DB) flushLocked() error {
	imm := db.imm
	logNum := db.walNum // stable: imm != nil blocks further switches
	db.met.MemtableFlushes.Add(1)
	start := time.Now()
	fsyncsBefore := db.io.Fsyncs.Load()

	db.mu.Unlock()
	db.ev.Emit(events.Event{Type: events.TypeFlushStart, BytesIn: imm.ApproximateSize()})
	metas, err := db.writeTables(imm.NewIter(), 0)
	db.mu.Lock()
	if err != nil {
		return fmt.Errorf("core: flush: %w", err)
	}

	edit := &manifest.VersionEdit{}
	edit.SetLogNum(logNum)
	for _, m := range metas {
		edit.AddFile(0, m)
	}
	if err := db.logAndApplyLocked(edit); err != nil {
		return fmt.Errorf("core: flush commit: %w", err)
	}
	var outBytes int64
	for _, m := range metas {
		db.physRefs[m.PhysNum]++
		outBytes += m.Size
	}
	db.met.TablesCreated.Add(int64(len(metas)))
	db.met.LevelCompactionsIn[0].Add(1)
	db.met.LevelBytesWritten[0].Add(outBytes)
	db.imm = nil

	logs := db.obsoleteLogs
	db.obsoleteLogs = nil
	db.mu.Unlock()
	for _, num := range logs {
		_ = db.fs.Remove(manifest.LogFileName(num))
	}
	db.ev.Emit(events.Event{
		Type:     events.TypeFlushEnd,
		Outputs:  len(metas),
		BytesOut: outBytes,
		Barriers: db.io.Fsyncs.Load() - fsyncsBefore,
		Dur:      time.Since(start),
	})
	db.mu.Lock()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()
	return nil
}

// compactLocked executes one compaction. Called with mu held; releases it
// during I/O. On failure the tree is unchanged and the error is returned
// for the caller's retry/degrade policy; output files written before the
// failure are left as orphans (see flushLocked).
func (db *DB) compactLocked(c *compaction.Compaction) error {
	db.met.Compactions.Add(1)
	v := db.vs.Current()
	v.Ref() // pin input tables for the duration
	smallestSnap := db.smallestSnapshotLocked()
	dropTombstones := db.canDropTombstonesLocked(v, c)
	start := time.Now()
	fsyncsBefore := db.io.Fsyncs.Load()
	var levelBytes, nextBytes int64
	for _, f := range c.Inputs {
		levelBytes += f.Size
	}
	for _, f := range c.NextInputs {
		nextBytes += f.Size
	}

	var (
		metas []*manifest.FileMeta
		err   error
	)
	db.mu.Unlock()
	db.ev.Emit(events.Event{
		Type:        events.TypeCompactionStart,
		Level:       c.Level,
		OutputLevel: c.OutputLevel,
		Inputs:      len(c.Inputs) + len(c.NextInputs),
		BytesIn:     levelBytes + nextBytes,
		Reason:      c.Reason,
	})
	if len(c.Inputs)+len(c.NextInputs) > 0 {
		metas, err = db.writeCompactionTables(c, smallestSnap, dropTombstones)
	}
	db.mu.Lock()
	v.Unref()
	if err != nil {
		return fmt.Errorf("core: compaction: %w", err)
	}

	edit := &manifest.VersionEdit{}
	for _, f := range c.Inputs {
		edit.DeleteFile(c.Level, f.Num)
	}
	for _, f := range c.NextInputs {
		edit.DeleteFile(c.OutputLevel, f.Num)
	}
	for _, f := range c.Settled {
		// The settled promotion: a MANIFEST-only move, no data rewrite.
		edit.DeleteFile(c.Level, f.Num)
		edit.AddFile(c.OutputLevel, f)
	}
	for _, m := range metas {
		edit.AddFile(c.OutputLevel, m)
	}
	if !db.cfg.Fragmented && !db.cfg.SettledCompaction && c.Level > 0 && len(c.Inputs) > 0 {
		last := c.Inputs[len(c.Inputs)-1]
		edit.CompactPointers = append(edit.CompactPointers, manifest.CompactPointer{
			Level: c.Level,
			Key:   last.Largest,
		})
	}

	if err := db.logAndApplyLocked(edit); err != nil {
		return fmt.Errorf("core: compaction commit: %w", err)
	}

	var outBytes int64
	for _, m := range metas {
		db.physRefs[m.PhysNum]++
		outBytes += m.Size
	}
	db.met.CompactionBytesIn.Add(c.InputBytes())
	db.met.CompactionBytesOut.Add(outBytes)
	db.met.TablesCreated.Add(int64(len(metas)))
	db.met.SettledPromotions.Add(int64(len(c.Settled)))
	db.met.LevelCompactionsOut[c.Level].Add(1)
	db.met.LevelCompactionsIn[c.OutputLevel].Add(1)
	db.met.LevelBytesRead[c.Level].Add(levelBytes)
	db.met.LevelBytesRead[c.OutputLevel].Add(nextBytes)
	db.met.LevelBytesWritten[c.OutputLevel].Add(outBytes)

	db.zombies = append(db.zombies, c.Inputs...)
	db.zombies = append(db.zombies, c.NextInputs...)
	fallbacks := db.reclaimZombiesLocked()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()

	barriers := db.io.Fsyncs.Load() - fsyncsBefore
	db.mu.Unlock()
	db.ev.Emit(events.Event{
		Type:        events.TypeCompactionEnd,
		Level:       c.Level,
		OutputLevel: c.OutputLevel,
		Outputs:     len(metas),
		BytesOut:    outBytes,
		Barriers:    barriers,
		Dur:         time.Since(start),
	})
	if len(c.Settled) > 0 {
		db.ev.Emit(events.Event{
			Type:        events.TypeSettledPromotion,
			Level:       c.Level,
			OutputLevel: c.OutputLevel,
			Outputs:     len(c.Settled),
		})
	}
	for _, e := range fallbacks {
		db.ev.Emit(e)
	}
	db.mu.Lock()
	return nil
}

// writeCompactionTables merges the compaction inputs into output tables,
// applying the snapshot-aware drop rules. Called without mu.
func (db *DB) writeCompactionTables(c *compaction.Compaction, smallestSnap keys.Seq, dropTombstones bool) ([]*manifest.FileMeta, error) {
	iters := make([]iterator.Iterator, 0, len(c.Inputs)+len(c.NextInputs))
	openIter := func(f *manifest.FileMeta) error {
		r, release, err := db.tableCache.Get(f)
		if err != nil {
			return err
		}
		iters = append(iters, &releasingIter{
			Iterator: r.NewIter(sstable.IterOpts{Readahead: compactionReadahead}),
			release:  release,
		})
		return nil
	}
	for _, f := range c.Inputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, err
		}
	}
	for _, f := range c.NextInputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, err
		}
	}
	merged := iterator.NewMerging(iters...)
	defer merged.Close()

	out := db.newTableOutput(c.OutputLevel, c.CutPoints)
	var lastUser []byte
	lastSeqForKey := keys.MaxSeq
	haveUser := false
	for ok := merged.First(); ok; ok = merged.Next() {
		ikey := merged.Key()
		uk := ikey.UserKey()
		if !haveUser || keys.CompareUser(uk, lastUser) != 0 {
			haveUser = true
			lastUser = append(lastUser[:0], uk...)
			lastSeqForKey = keys.MaxSeq
		}
		drop := false
		if lastSeqForKey <= smallestSnap {
			// A newer version of this key is already visible to the oldest
			// snapshot; this one can never be read again.
			drop = true
		} else if ikey.Kind() == keys.KindDelete && ikey.Seq() <= smallestSnap && dropTombstones {
			drop = true
		}
		lastSeqForKey = ikey.Seq()
		if drop {
			continue
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			out.abort()
			return nil, err
		}
	}
	if err := merged.Err(); err != nil {
		out.abort()
		return nil, err
	}
	return out.finish()
}

// releasingIter couples a table iterator with its table-cache release.
type releasingIter struct {
	iterator.Iterator
	release func()
}

func (r *releasingIter) Close() error {
	err := r.Iterator.Close()
	if r.release != nil {
		r.release()
		r.release = nil
	}
	return err
}

func closeAll(iters []iterator.Iterator) {
	for _, it := range iters {
		_ = it.Close()
	}
}

// canDropTombstonesLocked reports whether tombstones written by c can be
// elided: nothing below the output level (or beside it, for fragmented
// levels) may hold an older version of a key in the compaction's range.
func (db *DB) canDropTombstonesLocked(v *manifest.Version, c *compaction.Compaction) bool {
	smallest, largest := c.Range()
	if smallest == nil {
		return false
	}
	for level := c.OutputLevel + 1; level < manifest.NumLevels; level++ {
		if len(v.Overlaps(level, smallest, largest)) > 0 {
			return false
		}
	}
	if db.cfg.Fragmented {
		merged := make(map[uint64]struct{}, len(c.NextInputs))
		for _, f := range c.NextInputs {
			merged[f.Num] = struct{}{}
		}
		for _, f := range v.Levels[c.OutputLevel] {
			if _, ok := merged[f.Num]; ok {
				continue
			}
			if f.OverlapsUser(smallest, largest) {
				return false
			}
		}
	}
	return true
}

// logAndApplyLocked commits edit with the MANIFEST barrier paid outside
// the engine mutex. Called with mu held; mu is held again on return.
func (db *DB) logAndApplyLocked(edit *manifest.VersionEdit) error {
	db.mu.Unlock()
	db.manifestMu.Lock()
	db.mu.Lock()
	p := db.vs.Prepare(edit)
	db.mu.Unlock()
	err := db.vs.CommitPrepared(p)
	db.mu.Lock()
	if err == nil {
		db.vs.Install(p)
	} else {
		// A failed commit may have left a torn or unsynced tail in the
		// current MANIFEST; appending after it on a retry could make a
		// half-written record durable. Force the next commit to rotate to
		// a fresh MANIFEST instead.
		db.vs.ForceRotate()
	}
	db.manifestMu.Unlock()
	return err
}

// reclaimZombiesLocked deletes tables no longer referenced by any live
// version: whole physical files are unlinked; dead logical SSTables inside
// still-live compaction files get their byte ranges hole-punched, without
// any barrier (the BoLT space-reclamation path). Called with mu held;
// releases it for the file operations. Successful punches emit their
// events directly (mu is released there); fallback events are returned for
// the caller to emit in its own unlock window, because the fallback
// decision is only final after the post-relock liveness re-check.
func (db *DB) reclaimZombiesLocked() []events.Event {
	if len(db.zombies) == 0 {
		return nil
	}
	live := db.vs.LiveTables()
	var keep []*manifest.FileMeta
	type punch struct {
		phys      uint64
		off, size int64
	}
	var punches []punch
	var removals []uint64
	for _, z := range db.zombies {
		if _, isLive := live[z.Num]; isLive {
			keep = append(keep, z)
			continue
		}
		db.tableCache.Evict(z.Num)
		db.met.TablesDeleted.Add(1)
		db.physRefs[z.PhysNum]--
		if db.physRefs[z.PhysNum] <= 0 {
			delete(db.physRefs, z.PhysNum)
			if db.fdCache != nil {
				db.fdCache.Evict(z.PhysNum)
			}
			delete(db.deadRanges, z.PhysNum)
			removals = append(removals, z.PhysNum)
		} else if db.cfg.compactionFileMode() {
			punches = append(punches, punch{z.PhysNum, z.Offset, z.Size})
		}
	}
	db.zombies = keep

	if len(punches) == 0 && len(removals) == 0 {
		return nil
	}
	db.mu.Unlock()
	for _, num := range removals {
		_ = db.fs.Remove(manifest.TableFileName(num))
	}
	var fallbacks []punch
	for _, p := range punches {
		// Punching is barrier-free and best-effort. A backend that cannot
		// punch (vfs.ErrPunchHoleUnsupported) or holds the file read-only
		// still guarantees the range reads back correctly, so the engine
		// stays correct — the range is just recorded as dead-but-allocated
		// space debt. Any other failure is ignored: a missed punch only
		// costs disk space, never correctness.
		if f, err := db.fs.Open(manifest.TableFileName(p.phys)); err == nil {
			perr := f.PunchHole(p.off, p.size)
			_ = f.Close()
			switch {
			case perr == nil:
				db.met.HolePunches.Add(1)
				db.ev.Emit(events.Event{Type: events.TypeHolePunch, File: p.phys, BytesOut: p.size})
			case errors.Is(perr, vfs.ErrPunchHoleUnsupported) || errors.Is(perr, vfs.ErrReadOnly):
				fallbacks = append(fallbacks, p)
			}
		}
	}
	db.mu.Lock()
	var fallbackEvents []events.Event
	for _, p := range fallbacks {
		// Re-check liveness: the file may have been removed while mu was
		// released, in which case its dead ranges vanished with it.
		if _, live := db.physRefs[p.phys]; live {
			db.deadRanges[p.phys] = append(db.deadRanges[p.phys], deadRange{p.off, p.size})
			db.met.HolePunchFallbacks.Add(1)
			fallbackEvents = append(fallbackEvents, events.Event{
				Type: events.TypeHolePunchFallback, File: p.phys, BytesOut: p.size,
			})
		}
	}
	return fallbackEvents
}

// verifyInvariantsLocked re-checks the version layout when the test hook
// is enabled.
func (db *DB) verifyInvariantsLocked() {
	if !db.cfg.VerifyInvariants || db.bgErr != nil {
		return
	}
	if err := db.checkVersionInvariants(db.vs.Current()); err != nil {
		db.bgErr = err
	}
}
