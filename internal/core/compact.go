package core

import (
	"fmt"

	"github.com/bolt-lsm/bolt/internal/compaction"
	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// CompactRange synchronously compacts every table overlapping the user-key
// range [start, limit] (nil = unbounded) down the tree, level by level,
// after flushing the current memtable. Tools use it to settle a database
// into its minimal shape; nil,nil compacts everything.
func (db *DB) CompactRange(start, limit []byte) error {
	// Flush current memtable content first so it participates.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if !db.mem.Empty() {
		if err := db.forceMemtableSwitchLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for db.imm != nil && db.bgErr == nil && !db.closed {
		db.maybeScheduleWorkLocked()
		db.cond.Wait()
	}

	// Exclude the background picker while the manual compaction holds
	// references to current-version inputs; otherwise both could compact
	// the same tables.
	db.manualActive = true
	defer func() {
		// The cleanup must run under mu, so mu is released here rather
		// than at the return sites.
		db.manualActive = false
		db.maybeScheduleWorkLocked()
		db.mu.Unlock()
	}()

	for level := 0; level < manifest.NumLevels-1; level++ {
		for db.bgErr == nil && !db.closed {
			// Wait for background work to quiesce so manual compactions
			// do not race the picker over the same inputs.
			for (db.flushActive || db.compactActive) && db.bgErr == nil && !db.closed {
				db.cond.Wait()
			}
			if db.bgErr != nil || db.closed {
				break
			}
			v := db.vs.Current()
			inputs := v.Overlaps(level, start, limit)
			if len(inputs) == 0 {
				break
			}
			if level == 0 {
				// Level 0 files overlap each other; take the closure.
				inputs = l0OverlapClosure(v.Levels[0], inputs[0])
			}
			c := &compaction.Compaction{
				Level:       level,
				OutputLevel: level + 1,
				Inputs:      inputs,
				Reason:      "manual",
			}
			smallest, largest := c.Range()
			c.NextInputs = v.Overlaps(level+1, smallest, largest)
			db.compactLocked(c)
			db.cond.Broadcast()
			if level > 0 {
				break // one pass per sorted level is exhaustive
			}
		}
	}
	return db.bgErr
}

// forceMemtableSwitchLocked rotates the memtable regardless of its size so
// a flush of current contents can be awaited.
func (db *DB) forceMemtableSwitchLocked() error {
	for db.imm != nil && db.bgErr == nil && !db.closed {
		db.cond.Wait()
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	if db.closed {
		return ErrClosed
	}
	newLogNum := db.vs.NextFileNum()
	newWal, err := wal.NewWriter(db.fs, manifest.LogFileName(newLogNum))
	if err != nil {
		return err
	}
	_ = db.walW.Close()
	db.obsoleteLogs = append(db.obsoleteLogs, db.walNum)
	db.walNum = newLogNum
	db.walW = newWal
	db.imm = db.mem
	db.mem = memtable.New()
	db.met.MemtableSwitch.Add(1)
	db.maybeScheduleWorkLocked()
	return nil
}

// maybeScheduleWorkLocked spawns background workers as needed. Called with mu
// held whenever flushable or compactable state appears.
func (db *DB) maybeScheduleWorkLocked() {
	if db.closed || db.bgErr != nil || db.manualActive {
		return
	}
	if db.cfg.SeparateFlushThread {
		if db.imm != nil && !db.flushActive {
			db.flushActive = true
			go db.flushLoop()
		}
		if !db.compactActive && db.needsCompactionLocked() {
			db.compactActive = true
			go db.compactLoop(false)
		}
	} else if !db.compactActive && (db.imm != nil || db.needsCompactionLocked()) {
		db.compactActive = true
		go db.compactLoop(true)
	}
}

func (db *DB) needsCompactionLocked() bool {
	if db.seekCompactFile != nil {
		return true
	}
	_, score := db.picker.MaxScoreLevel(db.vs.Current())
	return score >= 1.0
}

// flushLoop is the dedicated flush worker (SeparateFlushThread profiles).
func (db *DB) flushLoop() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.closed && db.bgErr == nil && db.imm != nil {
		db.flushLocked()
		db.cond.Broadcast()
	}
	db.flushActive = false
	db.cond.Broadcast()
}

// compactLoop is the main background worker. With handleFlush it also
// drains memtable flushes (single-background-thread profiles).
func (db *DB) compactLoop(handleFlush bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.closed && db.bgErr == nil {
		if handleFlush && db.imm != nil {
			db.flushLocked()
			db.cond.Broadcast()
			continue
		}
		c := db.pickCompactionLocked()
		if c == nil {
			break
		}
		db.compactLocked(c)
		db.cond.Broadcast()
	}
	db.compactActive = false
	db.cond.Broadcast()
}

// pickCompactionLocked returns the next compaction: a pending seek
// compaction if its victim is still current, else the picker's choice.
func (db *DB) pickCompactionLocked() *compaction.Compaction {
	v := db.vs.Current()
	if f := db.seekCompactFile; f != nil {
		level := db.seekCompactLevel
		db.seekCompactFile = nil
		if level < manifest.NumLevels-1 && !db.cfg.Fragmented {
			for _, cur := range v.Levels[level] {
				if cur == f {
					db.met.SeekCompactions.Add(1)
					c := &compaction.Compaction{
						Level:       level,
						OutputLevel: level + 1,
						Inputs:      []*manifest.FileMeta{f},
						Reason:      "seek",
					}
					if level == 0 {
						// Level-0 files overlap each other: compacting one
						// without its overlapping siblings would leave older
						// versions above newer ones. Expand to the overlap
						// closure, as LevelDB does.
						c.Inputs = l0OverlapClosure(v.Levels[0], f)
					}
					smallest, largest := c.Range()
					c.NextInputs = v.Overlaps(level+1, smallest, largest)
					return c
				}
			}
		}
	}
	return db.picker.Pick(v, db.vs.CompactPointer)
}

// l0OverlapClosure returns the transitive closure of level-0 files whose
// user-key ranges overlap seed's range (growing the range as files join).
func l0OverlapClosure(files []*manifest.FileMeta, seed *manifest.FileMeta) []*manifest.FileMeta {
	smallest := seed.Smallest.UserKey()
	largest := seed.Largest.UserKey()
	in := map[uint64]bool{seed.Num: true}
	out := []*manifest.FileMeta{seed}
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			if in[f.Num] || !f.OverlapsUser(smallest, largest) {
				continue
			}
			in[f.Num] = true
			out = append(out, f)
			if keys.CompareUser(f.Smallest.UserKey(), smallest) < 0 {
				smallest = f.Smallest.UserKey()
			}
			if keys.CompareUser(f.Largest.UserKey(), largest) > 0 {
				largest = f.Largest.UserKey()
			}
			changed = true
		}
	}
	return out
}

// flushLocked converts the immutable memtable into level-0 tables. Called
// with mu held; releases it during I/O.
func (db *DB) flushLocked() {
	imm := db.imm
	logNum := db.walNum // stable: imm != nil blocks further switches
	db.met.MemtableFlushes.Add(1)

	db.mu.Unlock()
	metas, err := db.writeTables(imm.NewIter(), 0)
	db.mu.Lock()
	if err != nil {
		db.bgErr = fmt.Errorf("core: flush: %w", err)
		return
	}

	edit := &manifest.VersionEdit{}
	edit.SetLogNum(logNum)
	for _, m := range metas {
		edit.AddFile(0, m)
	}
	if err := db.logAndApplyLocked(edit); err != nil {
		db.bgErr = fmt.Errorf("core: flush commit: %w", err)
		return
	}
	for _, m := range metas {
		db.physRefs[m.PhysNum]++
	}
	db.met.TablesCreated.Add(int64(len(metas)))
	db.imm = nil

	logs := db.obsoleteLogs
	db.obsoleteLogs = nil
	db.mu.Unlock()
	for _, num := range logs {
		_ = db.fs.Remove(manifest.LogFileName(num))
	}
	db.mu.Lock()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()
}

// compactLocked executes one compaction. Called with mu held; releases it
// during I/O.
func (db *DB) compactLocked(c *compaction.Compaction) {
	db.met.Compactions.Add(1)
	v := db.vs.Current()
	v.Ref() // pin input tables for the duration
	smallestSnap := db.smallestSnapshotLocked()
	dropTombstones := db.canDropTombstonesLocked(v, c)

	var (
		metas []*manifest.FileMeta
		err   error
	)
	if len(c.Inputs)+len(c.NextInputs) > 0 {
		db.mu.Unlock()
		metas, err = db.writeCompactionTables(c, smallestSnap, dropTombstones)
		db.mu.Lock()
	}
	v.Unref()
	if err != nil {
		db.bgErr = fmt.Errorf("core: compaction: %w", err)
		return
	}

	edit := &manifest.VersionEdit{}
	for _, f := range c.Inputs {
		edit.DeleteFile(c.Level, f.Num)
	}
	for _, f := range c.NextInputs {
		edit.DeleteFile(c.OutputLevel, f.Num)
	}
	for _, f := range c.Settled {
		// The settled promotion: a MANIFEST-only move, no data rewrite.
		edit.DeleteFile(c.Level, f.Num)
		edit.AddFile(c.OutputLevel, f)
	}
	for _, m := range metas {
		edit.AddFile(c.OutputLevel, m)
	}
	if !db.cfg.Fragmented && !db.cfg.SettledCompaction && c.Level > 0 && len(c.Inputs) > 0 {
		last := c.Inputs[len(c.Inputs)-1]
		edit.CompactPointers = append(edit.CompactPointers, manifest.CompactPointer{
			Level: c.Level,
			Key:   last.Largest,
		})
	}

	if err := db.logAndApplyLocked(edit); err != nil {
		db.bgErr = fmt.Errorf("core: compaction commit: %w", err)
		return
	}

	for _, m := range metas {
		db.physRefs[m.PhysNum]++
	}
	var outBytes int64
	for _, m := range metas {
		outBytes += m.Size
	}
	db.met.CompactionBytesIn.Add(c.InputBytes())
	db.met.CompactionBytesOut.Add(outBytes)
	db.met.TablesCreated.Add(int64(len(metas)))
	db.met.SettledPromotions.Add(int64(len(c.Settled)))

	db.zombies = append(db.zombies, c.Inputs...)
	db.zombies = append(db.zombies, c.NextInputs...)
	db.reclaimZombiesLocked()
	db.verifyInvariantsLocked()
	db.maybeScheduleWorkLocked()
}

// writeCompactionTables merges the compaction inputs into output tables,
// applying the snapshot-aware drop rules. Called without mu.
func (db *DB) writeCompactionTables(c *compaction.Compaction, smallestSnap keys.Seq, dropTombstones bool) ([]*manifest.FileMeta, error) {
	iters := make([]iterator.Iterator, 0, len(c.Inputs)+len(c.NextInputs))
	openIter := func(f *manifest.FileMeta) error {
		r, release, err := db.tableCache.Get(f)
		if err != nil {
			return err
		}
		iters = append(iters, &releasingIter{
			Iterator: r.NewIter(sstable.IterOpts{Readahead: compactionReadahead}),
			release:  release,
		})
		return nil
	}
	for _, f := range c.Inputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, err
		}
	}
	for _, f := range c.NextInputs {
		if err := openIter(f); err != nil {
			closeAll(iters)
			return nil, err
		}
	}
	merged := iterator.NewMerging(iters...)
	defer merged.Close()

	out := db.newTableOutput(c.OutputLevel, c.CutPoints)
	var lastUser []byte
	lastSeqForKey := keys.MaxSeq
	haveUser := false
	for ok := merged.First(); ok; ok = merged.Next() {
		ikey := merged.Key()
		uk := ikey.UserKey()
		if !haveUser || keys.CompareUser(uk, lastUser) != 0 {
			haveUser = true
			lastUser = append(lastUser[:0], uk...)
			lastSeqForKey = keys.MaxSeq
		}
		drop := false
		if lastSeqForKey <= smallestSnap {
			// A newer version of this key is already visible to the oldest
			// snapshot; this one can never be read again.
			drop = true
		} else if ikey.Kind() == keys.KindDelete && ikey.Seq() <= smallestSnap && dropTombstones {
			drop = true
		}
		lastSeqForKey = ikey.Seq()
		if drop {
			continue
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			out.abort()
			return nil, err
		}
	}
	if err := merged.Err(); err != nil {
		out.abort()
		return nil, err
	}
	return out.finish()
}

// releasingIter couples a table iterator with its table-cache release.
type releasingIter struct {
	iterator.Iterator
	release func()
}

func (r *releasingIter) Close() error {
	err := r.Iterator.Close()
	if r.release != nil {
		r.release()
		r.release = nil
	}
	return err
}

func closeAll(iters []iterator.Iterator) {
	for _, it := range iters {
		_ = it.Close()
	}
}

// canDropTombstonesLocked reports whether tombstones written by c can be
// elided: nothing below the output level (or beside it, for fragmented
// levels) may hold an older version of a key in the compaction's range.
func (db *DB) canDropTombstonesLocked(v *manifest.Version, c *compaction.Compaction) bool {
	smallest, largest := c.Range()
	if smallest == nil {
		return false
	}
	for level := c.OutputLevel + 1; level < manifest.NumLevels; level++ {
		if len(v.Overlaps(level, smallest, largest)) > 0 {
			return false
		}
	}
	if db.cfg.Fragmented {
		merged := make(map[uint64]struct{}, len(c.NextInputs))
		for _, f := range c.NextInputs {
			merged[f.Num] = struct{}{}
		}
		for _, f := range v.Levels[c.OutputLevel] {
			if _, ok := merged[f.Num]; ok {
				continue
			}
			if f.OverlapsUser(smallest, largest) {
				return false
			}
		}
	}
	return true
}

// logAndApplyLocked commits edit with the MANIFEST barrier paid outside
// the engine mutex. Called with mu held; mu is held again on return.
func (db *DB) logAndApplyLocked(edit *manifest.VersionEdit) error {
	db.mu.Unlock()
	db.manifestMu.Lock()
	db.mu.Lock()
	p := db.vs.Prepare(edit)
	db.mu.Unlock()
	err := db.vs.CommitPrepared(p)
	db.mu.Lock()
	if err == nil {
		db.vs.Install(p)
	}
	db.manifestMu.Unlock()
	return err
}

// reclaimZombiesLocked deletes tables no longer referenced by any live
// version: whole physical files are unlinked; dead logical SSTables inside
// still-live compaction files get their byte ranges hole-punched, without
// any barrier (the BoLT space-reclamation path). Called with mu held;
// releases it for the file operations.
func (db *DB) reclaimZombiesLocked() {
	if len(db.zombies) == 0 {
		return
	}
	live := db.vs.LiveTables()
	var keep []*manifest.FileMeta
	type punch struct {
		phys      uint64
		off, size int64
	}
	var punches []punch
	var removals []uint64
	for _, z := range db.zombies {
		if _, isLive := live[z.Num]; isLive {
			keep = append(keep, z)
			continue
		}
		db.tableCache.Evict(z.Num)
		db.met.TablesDeleted.Add(1)
		db.physRefs[z.PhysNum]--
		if db.physRefs[z.PhysNum] <= 0 {
			delete(db.physRefs, z.PhysNum)
			if db.fdCache != nil {
				db.fdCache.Evict(z.PhysNum)
			}
			removals = append(removals, z.PhysNum)
		} else if db.cfg.compactionFileMode() {
			punches = append(punches, punch{z.PhysNum, z.Offset, z.Size})
		}
	}
	db.zombies = keep

	if len(punches) == 0 && len(removals) == 0 {
		return
	}
	db.mu.Unlock()
	for _, num := range removals {
		_ = db.fs.Remove(manifest.TableFileName(num))
	}
	for _, p := range punches {
		// Punching is barrier-free and best-effort: on a read-only OS
		// handle it degrades to a no-op; the Mem backend reclaims exactly.
		if f, err := db.fs.Open(manifest.TableFileName(p.phys)); err == nil {
			_ = f.PunchHole(p.off, p.size)
			_ = f.Close()
		}
	}
	db.mu.Lock()
}

// verifyInvariantsLocked re-checks the version layout when the test hook
// is enabled.
func (db *DB) verifyInvariantsLocked() {
	if !db.cfg.VerifyInvariants || db.bgErr != nil {
		return
	}
	if err := db.checkVersionInvariants(db.vs.Current()); err != nil {
		db.bgErr = err
	}
}
