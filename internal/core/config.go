// Package core implements the LSM-tree engine. One engine serves every
// system in the paper's evaluation — LevelDB, HyperLevelDB, RocksDB,
// PebblesDB, BoLT, and HyperBoLT — selected through Config. The BoLT
// elements (compaction files, logical SSTables, group compaction, settled
// compaction, the FD cache) are individually toggleable so the Figure 12
// ablation (+LS / +GC / +STL / +FC) is exactly reproducible.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/bolt-lsm/bolt/internal/events"
)

// Config parameterizes the engine. ApplyDefaults fills zero fields.
type Config struct {
	// --- Sizing ---

	// MemTableBytes is the write-buffer size (the paper uses 64 MB).
	MemTableBytes int64
	// MaxSSTableBytes is the physical SSTable target size in legacy mode
	// (2 MB LevelDB, 64 MB RocksDB) and the upper bound of one output in
	// variable-size profiles.
	MaxSSTableBytes int64
	// LogicalSSTableBytes enables BoLT's compaction files: when positive,
	// every flush and compaction writes one physical file partitioned into
	// logical SSTables of this size (the paper uses 1 MB), synced with a
	// single barrier. Zero selects legacy one-file-per-SSTable layout.
	LogicalSSTableBytes int64
	// BlockSize is the data block size (4 KiB).
	BlockSize int
	// EntryPadding models a less compact record format (see DESIGN.md —
	// used to reproduce the LevelDB-vs-RocksDB format-efficiency gap of
	// Figure 15c).
	EntryPadding int
	// BloomBitsPerKey configures table filters (paper: 10).
	BloomBitsPerKey int

	// --- Level shape & governors ---

	// L0CompactionTrigger is the L0 file count that schedules compaction.
	L0CompactionTrigger int
	// L0SlowdownTrigger makes writers sleep 1 ms per write above this L0
	// file count; 0 disables (HyperLevelDB removes the governor).
	L0SlowdownTrigger int
	// L0StopTrigger blocks writers above this L0 file count; 0 disables.
	L0StopTrigger int
	// L1MaxBytes is the level-1 size limit (10 MB in LevelDB, 256 MB in
	// RocksDB); deeper levels grow by LevelMultiplier.
	L1MaxBytes int64
	// LevelMultiplier is the per-level growth factor (10).
	LevelMultiplier float64

	// --- BoLT elements ---

	// GroupCompactionBytes is the victim byte budget per compaction (+GC;
	// the paper settles on 64 MB). Zero selects single-victim compactions.
	GroupCompactionBytes int64
	// SettledCompaction selects minimum-overlap victims and promotes
	// non-overlapping ones without rewrite (+STL).
	SettledCompaction bool
	// FDCache caches physical-file descriptors across tables (+FC).
	FDCache bool

	// --- Baseline behaviours ---

	// Fragmented enables PebblesDB-style FLSM levels (overlapping tables
	// within a level, guard-partitioned compaction outputs, no next-level
	// rewrite).
	Fragmented bool
	// GuardBaseBits/GuardShiftBits control guard density (see compaction).
	GuardBaseBits  int
	GuardShiftBits int
	// ConcurrentWriters lets each queued writer insert its own batch into
	// the memtable in parallel after the leader logs the group (the
	// HyperLevelDB write path); otherwise the leader inserts everything.
	ConcurrentWriters bool
	// SeekCompaction enables LevelDB's read-triggered compaction.
	SeekCompaction bool
	// SeparateFlushThread dedicates a second background goroutine to
	// memtable flushes (RocksDB's flush/compaction thread split).
	SeparateFlushThread bool
	// MaxBackgroundCompactions bounds the compaction worker pool: up to
	// this many compactions with disjoint inputs and non-overlapping
	// output ranges run concurrently (in unified mode the pool also
	// drains flushes). Zero selects the default min(4, NumCPU); negative
	// selects 1 — the serialized pre-scheduler behaviour.
	MaxBackgroundCompactions int

	// --- Caches ---

	// TableCacheEntries is the TableCache capacity in tables
	// (max_open_files semantics; paper experiments use 32,000).
	TableCacheEntries int
	// BlockCacheBytes is the BlockCache capacity (8 MB LevelDB default).
	BlockCacheBytes int64
	// CacheShards is the shard count for the block/table/fd caches: keys
	// hash-partition across this many independent LRU shards, each with
	// its own lock and stats. Zero auto-sizes to the next power of two
	// >= GOMAXPROCS (capped at 64); 1 restores the single-lock layout
	// (the crash/bit-rot harnesses pin it for determinism); other values
	// round up to a power of two. Negative values are clamped to auto
	// with a warning event.
	CacheShards int

	// --- Key-value separation ---

	// ValueThreshold enables WAL-time key-value separation: a Put whose
	// value is at least this many bytes has the value appended to the value
	// log during commit (before the WAL write, inside the same barrier
	// window) and a pointer entry written to the tree in its place.
	// Compactions then move pointers, not payloads. Zero (the default)
	// disables separation entirely.
	ValueThreshold int
	// VLogSegmentBytes rotates the active value-log segment once it grows
	// past this size (default 16 MB). Sealed segments are GC candidates.
	VLogSegmentBytes int64
	// VLogGCGarbageRatio is the dead-byte fraction (of a sealed segment's
	// uncollected tail) at which value GC picks it (default 0.5).
	VLogGCGarbageRatio float64
	// VLogGCChunkBytes is how many segment bytes one GC pass scans before
	// committing its progress (default 4 MB); smaller chunks bound the
	// re-put batch and the crash-redo window.
	VLogGCChunkBytes int64

	// --- Durability ---

	// SyncWAL syncs the log on every commit. The paper (like the YCSB
	// default) runs with asynchronous WAL writes.
	SyncWAL bool

	// --- Robustness ---

	// BgRetryLimit is how many times a failed flush or compaction is
	// retried (with capped exponential backoff) when its error classifies
	// as transient, before the engine degrades to read-only mode. Zero
	// selects the default (5); negative disables retries entirely.
	BgRetryLimit int
	// BgRetryBaseDelay is the first retry's backoff delay (default 2ms);
	// each subsequent retry doubles it.
	BgRetryBaseDelay time.Duration
	// BgRetryMaxDelay caps the exponential backoff (default 250ms).
	BgRetryMaxDelay time.Duration
	// ScrubInterval enables the background integrity scrubber: every
	// interval, a pass walks all live tables and verifies every block
	// checksum, quarantining corrupt tables for salvage. Zero disables the
	// scrubber (the default — scrubs cost read bandwidth).
	ScrubInterval time.Duration
	// ScrubBytesPerSec throttles scrub read bandwidth. Zero selects the
	// default (32 MB/s); negative disables throttling.
	ScrubBytesPerSec int64

	// --- Observability ---

	// EventLogSize is the capacity of the in-memory ring buffer retaining
	// recent engine events (flushes, compactions, stalls, WAL rotations,
	// background-error handling). Zero selects the default (512).
	EventLogSize int
	// EventListener, when non-nil, receives every engine event
	// synchronously as it is emitted. The callback runs with no engine
	// lock held — it may call back into the DB — but it runs on the
	// emitting goroutine, so a slow listener slows background work.
	EventListener events.Listener

	// --- Testing hooks ---

	// VerifyInvariants re-checks version invariants after every flush and
	// compaction. Tests enable it; benchmarks leave it off.
	VerifyInvariants bool
}

// ApplyDefaults fills unset fields with LevelDB-like defaults.
func (c *Config) ApplyDefaults() {
	if c.MemTableBytes <= 0 {
		c.MemTableBytes = 4 << 20
	}
	if c.MaxSSTableBytes <= 0 {
		c.MaxSSTableBytes = 2 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.BloomBitsPerKey == 0 {
		c.BloomBitsPerKey = 10
	}
	if c.L0CompactionTrigger <= 0 {
		c.L0CompactionTrigger = 4
	}
	if c.L1MaxBytes <= 0 {
		c.L1MaxBytes = 10 << 20
	}
	if c.LevelMultiplier <= 0 {
		c.LevelMultiplier = 10
	}
	if c.GuardBaseBits == 0 {
		c.GuardBaseBits = 14
	}
	if c.GuardShiftBits == 0 {
		c.GuardShiftBits = 3
	}
	if c.TableCacheEntries <= 0 {
		c.TableCacheEntries = 1000
	}
	if c.BlockCacheBytes <= 0 {
		c.BlockCacheBytes = 8 << 20
	}
	if c.CacheShards < 0 {
		c.CacheShards = 0
	}
	switch {
	case c.MaxBackgroundCompactions == 0:
		n := runtime.NumCPU()
		if n > 4 {
			n = 4
		}
		if n < 1 {
			n = 1
		}
		c.MaxBackgroundCompactions = n
	case c.MaxBackgroundCompactions < 0:
		c.MaxBackgroundCompactions = 1
	}
	switch {
	case c.BgRetryLimit == 0:
		c.BgRetryLimit = 5
	case c.BgRetryLimit < 0:
		c.BgRetryLimit = 0
	}
	if c.BgRetryBaseDelay <= 0 {
		c.BgRetryBaseDelay = 2 * time.Millisecond
	}
	if c.BgRetryMaxDelay <= 0 {
		c.BgRetryMaxDelay = 250 * time.Millisecond
	}
	switch {
	case c.ScrubBytesPerSec == 0:
		c.ScrubBytesPerSec = 32 << 20
	case c.ScrubBytesPerSec < 0:
		c.ScrubBytesPerSec = 0
	}
	if c.EventLogSize <= 0 {
		c.EventLogSize = 512
	}
	if c.VLogSegmentBytes <= 0 {
		c.VLogSegmentBytes = 16 << 20
	}
	if c.VLogGCGarbageRatio <= 0 {
		c.VLogGCGarbageRatio = 0.5
	}
	if c.VLogGCChunkBytes <= 0 {
		c.VLogGCChunkBytes = 4 << 20
	}
}

// clampWarnings describes the invalid (negative) cache-sizing knobs that
// ApplyDefaults is about to clamp, one string per knob. Zero values stay
// silent — zero is the documented "use the default" sentinel — but a
// negative capacity or shard count is a caller bug that would otherwise
// vanish into the defaults, so Open emits one warning event per entry.
func (c *Config) clampWarnings() []string {
	var w []string
	if c.TableCacheEntries < 0 {
		w = append(w, fmt.Sprintf("TableCacheEntries=%d clamped to default", c.TableCacheEntries))
	}
	if c.BlockCacheBytes < 0 {
		w = append(w, fmt.Sprintf("BlockCacheBytes=%d clamped to default", c.BlockCacheBytes))
	}
	if c.CacheShards < 0 {
		w = append(w, fmt.Sprintf("CacheShards=%d clamped to auto", c.CacheShards))
	}
	return w
}

// Validate rejects inconsistent configurations.
func (c *Config) Validate() error {
	if c.L0StopTrigger > 0 && c.L0SlowdownTrigger > c.L0StopTrigger {
		return fmt.Errorf("core: slowdown trigger %d above stop trigger %d",
			c.L0SlowdownTrigger, c.L0StopTrigger)
	}
	if c.LogicalSSTableBytes < 0 || c.GroupCompactionBytes < 0 {
		return errors.New("core: negative size configuration")
	}
	if c.Fragmented && c.LogicalSSTableBytes > 0 {
		return errors.New("core: fragmented levels and compaction files are mutually exclusive profiles")
	}
	if c.SettledCompaction && c.LogicalSSTableBytes == 0 {
		return errors.New("core: settled compaction requires logical SSTables")
	}
	if c.BgRetryMaxDelay < c.BgRetryBaseDelay {
		return fmt.Errorf("core: retry delay cap %v below base %v",
			c.BgRetryMaxDelay, c.BgRetryBaseDelay)
	}
	if c.ScrubInterval < 0 {
		return errors.New("core: negative scrub interval")
	}
	if c.ValueThreshold < 0 {
		return errors.New("core: negative value threshold")
	}
	if c.VLogGCGarbageRatio > 1 {
		return fmt.Errorf("core: value-GC garbage ratio %v above 1", c.VLogGCGarbageRatio)
	}
	return nil
}

// valueSeparation reports whether the value log is in use for new writes.
func (c *Config) valueSeparation() bool { return c.ValueThreshold > 0 }

// outputTableBytes returns the cut size for output tables.
func (c *Config) outputTableBytes() int64 {
	if c.LogicalSSTableBytes > 0 {
		return c.LogicalSSTableBytes
	}
	return c.MaxSSTableBytes
}

// compactionFileMode reports whether flushes/compactions write one physical
// file with one barrier (BoLT) instead of one file+barrier per table.
func (c *Config) compactionFileMode() bool { return c.LogicalSSTableBytes > 0 }
