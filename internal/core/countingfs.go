package core

import (
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// IOCounters tallies the engine's file-level I/O, independent of backend.
// Fsyncs is the number the paper plots in Figures 4a and 11; BytesWritten
// is the "total written bytes" side graph of Figure 12.
type IOCounters struct {
	Fsyncs       atomic.Int64
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	FileOpens    atomic.Int64
	FileCreates  atomic.Int64
	FileRemoves  atomic.Int64
	HolePunches  atomic.Int64
}

// IOSnapshot is a point-in-time copy of IOCounters.
type IOSnapshot struct {
	Fsyncs       int64
	BytesWritten int64
	BytesRead    int64
	FileOpens    int64
	FileCreates  int64
	FileRemoves  int64
	HolePunches  int64
}

// Snapshot copies the counters.
func (c *IOCounters) Snapshot() IOSnapshot {
	return IOSnapshot{
		Fsyncs:       c.Fsyncs.Load(),
		BytesWritten: c.BytesWritten.Load(),
		BytesRead:    c.BytesRead.Load(),
		FileOpens:    c.FileOpens.Load(),
		FileCreates:  c.FileCreates.Load(),
		FileRemoves:  c.FileRemoves.Load(),
		HolePunches:  c.HolePunches.Load(),
	}
}

// countingFS decorates a vfs.FS with IOCounters.
type countingFS struct {
	inner vfs.FS
	c     *IOCounters
}

var _ vfs.FS = (*countingFS)(nil)

func newCountingFS(inner vfs.FS, c *IOCounters) *countingFS {
	return &countingFS{inner: inner, c: c}
}

func (f *countingFS) Create(name string) (vfs.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.c.FileCreates.Add(1)
	return &countingFile{inner: file, c: f.c}, nil
}

func (f *countingFS) Open(name string) (vfs.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f.c.FileOpens.Add(1)
	return &countingFile{inner: file, c: f.c}, nil
}

func (f *countingFS) Remove(name string) error {
	err := f.inner.Remove(name)
	if err == nil {
		f.c.FileRemoves.Add(1)
	}
	return err
}

func (f *countingFS) Rename(oldname, newname string) error {
	return f.inner.Rename(oldname, newname)
}

func (f *countingFS) List() ([]string, error) { return f.inner.List() }

func (f *countingFS) Stat(name string) (int64, error) { return f.inner.Stat(name) }

func (f *countingFS) SyncDir() error { return f.inner.SyncDir() }

type countingFile struct {
	inner vfs.File
	c     *IOCounters
}

var _ vfs.File = (*countingFile)(nil)

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	f.c.BytesWritten.Add(int64(n))
	return n, err
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.inner.ReadAt(p, off)
	f.c.BytesRead.Add(int64(n))
	return n, err
}

func (f *countingFile) Sync() error {
	err := f.inner.Sync()
	if err == nil {
		f.c.Fsyncs.Add(1)
	}
	return err
}

func (f *countingFile) Size() (int64, error) { return f.inner.Size() }

func (f *countingFile) PunchHole(off, length int64) error {
	err := f.inner.PunchHole(off, length)
	if err == nil {
		f.c.HolePunches.Add(1)
	}
	return err
}

func (f *countingFile) Close() error { return f.inner.Close() }
