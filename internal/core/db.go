package core

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/cache"
	"github.com/bolt-lsm/bolt/internal/compaction"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/metrics"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/vlog"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("core: not found")

// ErrClosed is returned when operating on a closed DB.
var ErrClosed = errors.New("core: database closed")

// DB is one LSM-tree instance.
//
//boltvet:mustclose
type DB struct {
	// Immutable after Open (set before any background goroutine starts):
	cfg Config           //boltvet:guardedby none -- immutable after Open
	fs  vfs.FS           //boltvet:guardedby none -- immutable after Open (counting-wrapped)
	io  *IOCounters      //boltvet:guardedby none -- immutable pointer; counters are atomic
	met *metrics.Metrics //boltvet:guardedby none -- immutable pointer; counters are atomic
	// ev is the engine event trace. Emissions happen only while mu is NOT
	// held, so the user listener never runs under the engine mutex.
	ev *events.Log //boltvet:guardedby none -- immutable after Open; Log locks itself

	blockCache *cache.BlockCache  //boltvet:guardedby none -- immutable after Open; cache locks itself
	fdCache    *cache.FDCache     //boltvet:guardedby none -- immutable after Open; cache locks itself
	tableCache *cache.TableCache  //boltvet:guardedby none -- immutable after Open; cache locks itself
	picker     *compaction.Picker //boltvet:guardedby none -- immutable after Open; stateless picker

	// vlogFDs and vlogReader are always constructed — even with separation
	// off — so reads can dereference pointers written by an earlier
	// configuration.
	vlogFDs    *cache.FDCache //boltvet:guardedby none -- immutable after Open; cache locks itself
	vlogReader *vlog.Reader   //boltvet:guardedby none -- immutable after Open; reader is stateless over vlogFDs

	// scrubStop ends the background scrubber: closed once by Close (under
	// mu, which serializes against double close), selected on by the scrub
	// goroutine without mu. Nil when the scrubber is disabled.
	scrubStop chan struct{} //boltvet:guardedby none -- immutable after Open; channel close is its own synchronization

	// mu guards all mutable state below except where noted.
	mu   sync.Mutex
	cond *sync.Cond // background state changes (flush/compaction done)

	mem    *memtable.MemTable   //boltvet:guardedby mu
	imm    *memtable.MemTable   //boltvet:guardedby mu
	walW   *wal.Writer          //boltvet:guardedby mu
	walNum uint64               //boltvet:guardedby mu
	vs     *manifest.VersionSet //boltvet:guardedby mu

	// Value log (WAL-time key-value separation). vlogW exists only while
	// valueSeparation() is on and points at the active segment. The leader
	// captures vlogW under mu and appends off-mu, exactly like walW; the
	// writer locks itself so flush-time Syncs may race leader appends.
	vlogW   *vlog.Writer //boltvet:guardedby mu
	vlogNum uint64       //boltvet:guardedby mu -- segment number behind vlogW
	// vlogPending accumulates edits for sealed segments (rotations) not yet
	// recorded in the MANIFEST; the next flush folds them into its edit.
	vlogPending []manifest.VLogSegmentEdit //boltvet:guardedby mu
	// vlogGCActive claims the single value-GC worker; vlogGCStuck suppresses
	// segments whose GC cannot advance (rotted record header mid-segment).
	vlogGCActive bool            //boltvet:guardedby mu
	vlogGCStuck  map[uint64]bool //boltvet:guardedby mu
	// flushEpoch counts memtable retirements (imm cleared by a flush); the
	// GC commit filter uses it to detect whether "key absent from both
	// memtables" can have changed meaning since its scan.
	flushEpoch uint64 //boltvet:guardedby mu
	// iterPins records the snapshot sequence of every open iterator, and
	// vlogPunchQueue holds value-log hole punches deferred until no pinned
	// reader (snapshot, iterator) predates the GC commit that killed them.
	iterPins       *list.List  //boltvet:guardedby mu -- of keys.Seq, unordered
	vlogPunchQueue []vlogPunch //boltvet:guardedby mu

	// visibleSeq is the highest sequence number visible to reads; it is
	// atomic so the read path can snapshot it without mu.
	visibleSeq atomic.Uint64 //boltvet:guardedby atomic

	writers []*dbWriter //boltvet:guardedby mu
	// leaderActive is true while the head of writers runs its group commit
	// (including its off-mu WAL append). Close waits for it so the WAL
	// writer is never closed under an in-flight append.
	leaderActive bool //boltvet:guardedby mu
	// rotateWaiters counts foreground WAL rotations
	// (forceMemtableSwitchLocked) waiting for the leader's off-mu append
	// window to end; a finishing leader broadcasts cond when it is nonzero.
	rotateWaiters int //boltvet:guardedby mu

	snapshots *list.List //boltvet:guardedby mu -- of keys.Seq, ascending insertion order

	// manifestMu serializes MANIFEST commits; acquired without mu held.
	manifestMu sync.Mutex

	// flushActive claims the single pending flush: held by the dedicated
	// flush thread, or by whichever pool worker grabbed it in unified
	// mode. compactWorkers counts live pool workers; workerSlots tracks
	// which 1-based worker IDs are taken so event traces stay stable.
	// manualActive excludes the scheduler while CompactRange runs.
	flushActive    bool   //boltvet:guardedby mu
	compactWorkers int    //boltvet:guardedby mu
	workerSlots    []bool //boltvet:guardedby mu
	manualActive   bool   //boltvet:guardedby mu
	// inflight registers the footprint of every executing compaction so
	// concurrent picks stay conflict-free; guarded by mu like the rest.
	inflight *compaction.InFlight //boltvet:guardedby mu
	// nextJobID numbers flushes and compactions for event correlation.
	nextJobID uint64 //boltvet:guardedby mu
	bgErr     error  //boltvet:guardedby mu
	closed    bool   //boltvet:guardedby mu

	// readOnly marks the degraded mode entered when background work
	// exhausts its retry budget or hits a permanent fault (see bgerror.go):
	// reads keep serving the last committed state, writes and manual
	// compactions fail with a ReadOnlyError wrapping roCause.
	readOnly bool  //boltvet:guardedby mu
	roCause  error //boltvet:guardedby mu
	// flushFails / compactFails count consecutive failed background
	// attempts, driving the retry backoff; reset on the next success.
	flushFails   int //boltvet:guardedby mu
	compactFails int //boltvet:guardedby mu

	// deadRanges records, per physical file, byte ranges whose hole punch
	// the backend could not perform: logically dead but not reclaimed.
	deadRanges map[uint64][]deadRange //boltvet:guardedby mu

	seekCompactFile  *manifest.FileMeta //boltvet:guardedby mu
	seekCompactLevel int                //boltvet:guardedby mu

	// scrubActive is true while the scrub goroutine is alive; Close drains
	// it. quarantinePending dedups concurrent quarantine commits for the
	// same table while mu is released for the MANIFEST write.
	scrubActive       bool            //boltvet:guardedby mu
	quarantinePending map[uint64]bool //boltvet:guardedby mu

	obsoleteLogs []uint64             //boltvet:guardedby mu
	zombies      []*manifest.FileMeta //boltvet:guardedby mu
	physRefs     map[uint64]int       //boltvet:guardedby mu

	// goros is the boltinvariants goroutine registry: tracked background
	// goroutines register at spawn and deregister before clearing their
	// drain tracker, so Close can assert the drain left nothing behind.
	// No-op (and zero-cost) in default builds.
	goros goroutineRegistry //boltvet:guardedby none -- registry carries its own mutex
}

// Open opens (creating if necessary) a database on fs.
func Open(fs vfs.FS, cfg Config) (*DB, error) {
	clamps := cfg.clampWarnings()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := &DB{
		cfg:               cfg,
		io:                &IOCounters{},
		met:               &metrics.Metrics{},
		ev:                events.NewLog(cfg.EventLogSize, cfg.EventListener),
		mem:               memtable.New(),
		snapshots:         list.New(),
		iterPins:          list.New(),
		physRefs:          make(map[uint64]int),
		deadRanges:        make(map[uint64][]deadRange),
		inflight:          compaction.NewInFlight(),
		quarantinePending: make(map[uint64]bool),
		vlogGCStuck:       make(map[uint64]bool),
	}
	db.workerSlots = make([]bool, cfg.MaxBackgroundCompactions)
	db.cond = sync.NewCond(&db.mu)
	db.fs = newCountingFS(wrapInvariantFS(fs), db.io)

	for _, w := range clamps {
		db.ev.Emit(events.Event{Type: events.TypeConfigClamp, Reason: w})
	}

	db.blockCache = cache.NewBlockCache(cfg.BlockCacheBytes, cfg.CacheShards)
	if cfg.FDCache {
		db.fdCache = cache.NewFDCache(db.fs, cfg.TableCacheEntries, cfg.CacheShards)
	}
	db.tableCache = cache.NewTableCache(db.fs, cfg.TableCacheEntries, cfg.CacheShards, db.fdCache, db.blockCache, db.sstConfig())
	// The value-log FD cache and reader exist regardless of ValueThreshold:
	// a database written with separation on must stay readable after the
	// threshold is turned off.
	db.vlogFDs = cache.NewFDCacheNamed(db.fs, cfg.TableCacheEntries, cfg.CacheShards, manifest.VLogFileName)
	db.vlogReader = vlog.NewReader(db.vlogFDs)
	db.picker = &compaction.Picker{Opts: compaction.Options{
		L0Trigger:         cfg.L0CompactionTrigger,
		L1MaxBytes:        cfg.L1MaxBytes,
		Multiplier:        cfg.LevelMultiplier,
		GroupBytes:        cfg.GroupCompactionBytes,
		Settled:           cfg.SettledCompaction,
		Fragmented:        cfg.Fragmented,
		GuardBaseBits:     cfg.GuardBaseBits,
		GuardShiftBits:    cfg.GuardShiftBits,
		L0ByPhysicalFiles: cfg.compactionFileMode(),
	}}

	if err := db.recover(); err != nil {
		if db.vlogW != nil {
			_ = db.vlogW.Close()
		}
		db.tableCache.Close()
		if db.fdCache != nil {
			db.fdCache.Close()
		}
		db.vlogFDs.Close()
		return nil, err
	}

	db.mu.Lock()
	if cfg.ScrubInterval > 0 {
		db.scrubStop = make(chan struct{})
		db.scrubActive = true
		db.goros.register("scrubLoop")
		//boltvet:goroutine scrubActive -- cleared by scrubLoop on scrubStop; Close's drain loop waits for it
		go db.scrubLoop()
	}
	db.maybeScheduleWorkLocked()
	db.mu.Unlock()
	return db, nil
}

func (db *DB) sstConfig() sstable.Config {
	return sstable.Config{
		BlockSize:       db.cfg.BlockSize,
		EntryPadding:    db.cfg.EntryPadding,
		BloomBitsPerKey: db.cfg.BloomBitsPerKey,
	}
}

// recover loads or creates the on-disk state.
//
//boltvet:ignore lockcheck, guardedby -- open-time initialization; no background goroutine exists until Open returns
func (db *DB) recover() error {
	names, err := db.fs.List()
	if err != nil {
		return fmt.Errorf("core: list db dir: %w", err)
	}
	hasCurrent := false
	hasData := false
	for _, n := range names {
		if n == manifest.CurrentFileName {
			hasCurrent = true
		}
		if kind, _, ok := manifest.ParseFileName(n); ok &&
			(kind == manifest.KindTable || kind == manifest.KindLog) {
			hasData = true
		}
	}
	if hasCurrent {
		db.vs, err = manifest.Recover(db.fs)
	} else if hasData {
		// Table or log files without CURRENT: creating a fresh database
		// here would garbage-collect them as orphans. Refuse and point at
		// Repair instead.
		return fmt.Errorf("core: database has table/log files but no CURRENT (%w); run Repair",
			manifest.ErrCorrupt)
	} else {
		db.vs, err = manifest.Create(db.fs)
	}
	if err != nil {
		return err
	}

	// Value-log segments on disk: mark their numbers used and index them
	// for pointer validation during WAL replay.
	vlogOnDisk := make(map[uint64]bool)
	for _, n := range names {
		if kind, num, ok := manifest.ParseFileName(n); ok && kind == manifest.KindValueLog {
			vlogOnDisk[num] = true
			db.vs.MarkFileNumUsed(num)
		}
	}
	// validLenOf walks a segment's record framing from offset zero
	// (tolerating GC-punched payloads, whose headers survive) and caches
	// the length of its parseable prefix. The commit barrier syncs the
	// value log before the WAL record, so a WAL batch whose pointers all
	// land inside this prefix was fully durable when acknowledged, and a
	// pointer past it belongs to a write that was never acknowledged.
	vlogValid := make(map[uint64]int64)
	validLenOf := func(seg uint64) int64 {
		if v, ok := vlogValid[seg]; ok {
			return v
		}
		var valid int64
		if vlogOnDisk[seg] {
			if f, ferr := db.fs.Open(manifest.VLogFileName(seg)); ferr == nil {
				if size, serr := f.Size(); serr == nil {
					valid = vlog.ValidLength(f, 0, size)
				}
				_ = f.Close()
			}
		}
		vlogValid[seg] = valid
		return valid
	}

	// Replay WALs at or above the recorded log number, in order.
	var logNums []uint64
	for _, n := range names {
		if kind, num, ok := manifest.ParseFileName(n); ok && kind == manifest.KindLog && num >= db.vs.LogNum() {
			logNums = append(logNums, num)
		}
	}
	sort.Slice(logNums, func(i, j int) bool { return logNums[i] < logNums[j] })
	maxSeq := db.vs.LastSeq()
	replayed := memtable.New()
	refSegs := make(map[uint64]bool)
	errStopReplay := errors.New("core: stop wal replay")
	stopped := false
	for _, num := range logNums {
		if stopped {
			break
		}
		db.vs.MarkFileNumUsed(num)
		last, err := wal.Replay(db.fs, manifest.LogFileName(num), func(b *batch.Batch) error {
			// Pre-validate, then apply: a batch lands in the memtable either
			// whole or not at all. An unresolvable pointer stops replay here,
			// dropping this batch and everything after it — all provably
			// unacknowledged (see validLenOf).
			resolvable := true
			if err := b.Iterate(func(_ keys.Seq, kind keys.Kind, _, value []byte) error {
				if kind == keys.KindSetPtr && resolvable {
					p, perr := vlog.DecodePointer(value)
					if perr != nil || p.Off+p.Len > validLenOf(p.Seg) {
						resolvable = false
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if !resolvable {
				stopped = true
				return errStopReplay
			}
			return b.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
				if kind == keys.KindSetPtr {
					if p, perr := vlog.DecodePointer(value); perr == nil {
						refSegs[p.Seg] = true
					}
				}
				replayed.Add(seq, kind, key, value)
				return nil
			})
		})
		if err != nil && !errors.Is(err, errStopReplay) {
			return fmt.Errorf("core: replay wal %d: %w", num, err)
		}
		// When replay stopped, last covers only the batches before the
		// unresolvable one — wal.Replay tallies a batch's sequences after
		// the callback succeeds — which is exactly the applied set.
		if last > maxSeq {
			maxSeq = last
		}
	}
	db.visibleSeq.Store(maxSeq)
	db.vs.SetLastSeq(maxSeq)

	// Fresh WAL for new writes.
	db.walNum = db.vs.NextFileNum()
	db.walW, err = wal.NewWriter(db.fs, manifest.LogFileName(db.walNum))
	if err != nil {
		return err
	}

	// Fresh active value-log segment when separation is on. Allocated
	// before the recovery LogAndApply so the number is burned durably and
	// can never collide after another crash.
	if db.cfg.valueSeparation() {
		db.vlogNum = db.vs.NextFileNum()
		db.vlogW, err = vlog.NewWriter(db.fs, manifest.VLogFileName(db.vlogNum), db.vlogNum)
		if err != nil {
			return err
		}
	}

	// Persist replayed data (if any) and advance the log pointer so old
	// WALs become obsolete; this also covers the fresh-DB case where it
	// just records the first log number. Segments referenced by replayed
	// pointers enter the version here with their walked valid length —
	// possibly longer than the size a pre-crash flush recorded (Size
	// merges by max), never shorter.
	edit := &manifest.VersionEdit{}
	edit.SetLogNum(db.walNum)
	for seg := range refSegs {
		edit.AddVLogSegment(manifest.VLogSegmentEdit{Num: seg, Size: validLenOf(seg)})
	}
	if !replayed.Empty() {
		metas, err := db.writeTables(replayed.NewIter(), 0)
		if err != nil {
			return fmt.Errorf("core: flush recovered wal: %w", err)
		}
		for _, m := range metas {
			edit.AddFile(0, m)
		}
	}
	if err := db.vs.LogAndApply(edit); err != nil {
		return err
	}

	// Rebuild physical-file reference counts from the live version.
	v := db.vs.Current()
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			db.physRefs[f.PhysNum]++
		}
	}

	// Garbage-collect orphans: tables from uncommitted compactions, old
	// WALs, temp files, stale manifests.
	db.removeOrphans()
	return nil
}

// removeOrphans deletes files not referenced by the recovered state.
//
//boltvet:ignore lockcheck, guardedby -- called only from recover, before concurrency starts
func (db *DB) removeOrphans() {
	names, err := db.fs.List()
	if err != nil {
		return
	}
	for _, n := range names {
		kind, num, ok := manifest.ParseFileName(n)
		if !ok {
			continue
		}
		switch kind {
		case manifest.KindTable:
			if db.physRefs[num] == 0 {
				_ = db.fs.Remove(n)
			}
		case manifest.KindLog:
			if num < db.vs.LogNum() {
				_ = db.fs.Remove(n)
			}
		case manifest.KindValueLog:
			// Live segments are in the version (flushes record the active
			// segment and every sealed one); the only referenced segment
			// possibly absent is the freshly created active one.
			if _, ok := db.vs.Current().VLogSegment(num); !ok && num != db.vlogNum {
				_ = db.fs.Remove(n)
			}
		case manifest.KindTemp:
			_ = db.fs.Remove(n)
		}
	}
}

// Metrics returns the engine counters.
func (db *DB) Metrics() *metrics.Metrics { return db.met }

// CacheStats reports TableCache and BlockCache behaviour: hits, misses,
// and the cumulative filter+index bytes fetched on TableCache misses (the
// metadata-caching overhead of paper Section 2.6).
type CacheStats struct {
	TableHits, TableMisses int64
	MetaBytesRead          int64
	BlockHits, BlockMisses int64
	// BlockUsedBytes and TableUsedEntries are the resident charges:
	// bytes for the block cache, open tables for the table cache.
	BlockUsedBytes   int64
	TableUsedEntries int64
	// BlockShards and TableShards are the shard counts the caches were
	// built with (resolved from Config.CacheShards at Open).
	BlockShards, TableShards int
}

// CacheStats returns current cache counters, aggregated across shards.
func (db *DB) CacheStats() CacheStats {
	th, tm := db.tableCache.Stats()
	bh, bm := db.blockCache.Stats()
	return CacheStats{
		TableHits: th, TableMisses: tm,
		MetaBytesRead: db.tableCache.MetaBytesRead(),
		BlockHits:     bh, BlockMisses: bm,
		BlockUsedBytes:   db.blockCache.UsedBytes(),
		TableUsedEntries: int64(db.tableCache.Len()),
		BlockShards:      db.blockCache.Shards(),
		TableShards:      db.tableCache.Shards(),
	}
}

// IO returns the file-level I/O counters (fsyncs, bytes written/read).
func (db *DB) IO() *IOCounters { return db.io }

// Put inserts or overwrites one key.
func (db *DB) Put(key, value []byte) error {
	b := batch.New()
	b.Put(key, value)
	return db.Write(b)
}

// Delete removes one key.
func (db *DB) Delete(key []byte) error {
	b := batch.New()
	b.Delete(key)
	return db.Write(b)
}

// VisibleSeq returns the current read-visibility sequence number.
func (db *DB) VisibleSeq() keys.Seq { return keys.Seq(db.visibleSeq.Load()) }

// Snapshot pins a consistent read view.
//
//boltvet:mustclose
type Snapshot struct {
	db   *DB
	seq  keys.Seq
	elem *list.Element
}

// Seq returns the snapshot's sequence number.
func (s *Snapshot) Seq() keys.Seq { return s.seq }

// NewSnapshot returns a snapshot of the current state; callers must
// Release it.
func (db *DB) NewSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{db: db, seq: db.VisibleSeq()}
	s.elem = db.snapshots.PushBack(s.seq)
	return s
}

// Release unpins the snapshot. Dropping the oldest pin may make deferred
// value-log punches safe, so the queue is drained on the way out.
func (s *Snapshot) Release() {
	db := s.db
	db.mu.Lock()
	if s.elem != nil {
		db.snapshots.Remove(s.elem)
		s.elem = nil
	}
	todo := db.takeReadyVLogPunchesLocked()
	db.mu.Unlock()
	db.execVLogPunches(todo)
}

// smallestSnapshotLocked returns the oldest sequence number any reader may
// still need (mu held).
func (db *DB) smallestSnapshotLocked() keys.Seq {
	if front := db.snapshots.Front(); front != nil {
		return front.Value.(keys.Seq)
	}
	return db.VisibleSeq()
}

// Get returns the value of key at the given snapshot (nil = latest).
func (db *DB) Get(key []byte, snap *Snapshot) ([]byte, error) {
	db.met.Gets.Add(1)
	value, err := db.get(key, snap)
	if err != nil && snap == nil &&
		(errors.Is(err, vlog.ErrCorrupt) || errors.Is(err, vfs.ErrNotFound)) {
		// A latest-seq Get holds no pin, so value GC may punch a record
		// (ErrCorrupt) or unlink a fully collected segment (ErrNotFound)
		// between this read resolving its pointer and dereferencing it —
		// but only if a newer version of the key exists. One retry
		// observes that newer version; a second failure is real rot.
		value, err = db.get(key, snap)
	}
	return value, err
}

func (db *DB) get(key []byte, snap *Snapshot) ([]byte, error) {
	seq := db.VisibleSeq()
	if snap != nil {
		seq = snap.seq
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	mem, imm := db.mem, db.imm
	v := db.vs.Current()
	v.Ref()
	db.mu.Unlock()
	defer v.Unref()

	// One seek key serves the memtables and every table probe below.
	ikey := keys.MakeInternalKey(nil, key, seq, keys.KindSeekMax)
	if value, kind, found := mem.GetSeek(ikey); found {
		return db.getResolve(value, kind)
	}
	if imm != nil {
		if value, kind, found := imm.GetSeek(ikey); found {
			return db.getResolve(value, kind)
		}
	}
	value, kind, found, err := db.searchTables(v, ikey)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	if kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	if kind == keys.KindSetPtr {
		value, err = db.vlogGet(value)
		if err != nil {
			return nil, err
		}
	}
	db.met.GetHits.Add(1)
	return value, nil
}

// getResolve turns a raw memtable hit into a Get result: tombstones miss,
// pointers dereference through the value log, plain values copy out.
func (db *DB) getResolve(value []byte, kind keys.Kind) ([]byte, error) {
	switch kind {
	case keys.KindDelete:
		return nil, ErrNotFound
	case keys.KindSetPtr:
		value, err := db.vlogGet(value)
		if err != nil {
			return nil, err
		}
		db.met.GetHits.Add(1)
		return value, nil
	}
	db.met.GetHits.Add(1)
	return append([]byte(nil), value...), nil
}

// vlogGet dereferences an encoded value-log pointer.
func (db *DB) vlogGet(ptr []byte) ([]byte, error) {
	p, err := vlog.DecodePointer(ptr)
	if err != nil {
		return nil, err
	}
	db.met.VLogDerefs.Add(1)
	return db.vlogReader.Get(p)
}

// tableSearch carries one key lookup across the table levels. It is a
// struct with methods rather than a set of closures inside searchTables
// so a Get that reaches the tables does not heap-allocate the closure
// environments.
type tableSearch struct {
	db   *DB
	v    *manifest.Version
	ikey keys.InternalKey
	key  []byte // ikey.UserKey()

	firstConsulted      *manifest.FileMeta
	firstConsultedLevel int
	consulted           int
}

func (s *tableSearch) consult(level int, f *manifest.FileMeta) ([]byte, keys.Seq, keys.Kind, bool, error) {
	// A quarantined table's span must fail loudly rather than serve a
	// silently wrong (older or missing) version of the key.
	if s.v.IsQuarantined(f.Num) {
		return nil, 0, 0, false, rangeCorruptError(level, f, nil)
	}
	s.consulted++
	if s.firstConsulted == nil {
		s.firstConsulted, s.firstConsultedLevel = f, level
	}
	s.db.met.TablesChecked.Add(1)
	r, release, err := s.db.tableCache.Get(f)
	if err != nil {
		return nil, 0, 0, false, s.db.maybeQuarantineRead(level, f, err)
	}
	defer release()
	if !r.MayContain(s.key) {
		s.db.met.BloomSkips.Add(1)
		return nil, 0, 0, false, nil
	}
	value, entrySeq, kind, found, err := r.Get(s.ikey)
	if err != nil {
		err = s.db.maybeQuarantineRead(level, f, err)
	}
	return value, entrySeq, kind, found, err
}

func (s *tableSearch) finish(value []byte, kind keys.Kind) ([]byte, keys.Kind, bool, error) {
	s.db.maybeChargeSeek(s.firstConsulted, s.firstConsultedLevel, s.consulted)
	return value, kind, true, nil
}

// consultOverlapping searches every table in files whose range covers
// key and returns the newest visible version across them. Level 0 and
// fragmented levels hold overlapping tables whose sequence ranges may
// interleave (after repair, even L0's flush ordering cannot be
// assumed), so first-match is not safe — the winner is chosen by
// entry sequence number.
func (s *tableSearch) consultOverlapping(level int, files []*manifest.FileMeta) (value []byte, kind keys.Kind, found bool, err error) {
	var bestSeq keys.Seq
	for _, f := range files {
		if !f.OverlapsUser(s.key, s.key) {
			continue
		}
		v, entrySeq, k, ok, err := s.consult(level, f)
		if err != nil {
			return nil, 0, false, err
		}
		if ok && (!found || entrySeq > bestSeq) {
			value, bestSeq, kind, found = v, entrySeq, k, true
		}
	}
	return value, kind, found, nil
}

// searchTables looks ikey's user key up in the table levels of v,
// returning the newest visible entry raw: tombstones and value-log
// pointers come back with their kind for the caller to interpret.
func (db *DB) searchTables(v *manifest.Version, ikey keys.InternalKey) ([]byte, keys.Kind, bool, error) {
	s := tableSearch{db: db, v: v, ikey: ikey, key: ikey.UserKey()}

	if value, kind, found, err := s.consultOverlapping(0, v.Levels[0]); err != nil {
		return nil, 0, false, err
	} else if found {
		return s.finish(value, kind)
	}
	for level := 1; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		if db.cfg.Fragmented {
			value, kind, found, err := s.consultOverlapping(level, files)
			if err != nil {
				return nil, 0, false, err
			}
			if found {
				return s.finish(value, kind)
			}
			continue
		}
		// Sorted level: binary search the single candidate file.
		idx := sort.Search(len(files), func(i int) bool {
			return keys.CompareUser(files[i].Largest.UserKey(), s.key) >= 0
		})
		if idx >= len(files) || keys.CompareUser(files[idx].Smallest.UserKey(), s.key) > 0 {
			continue
		}
		value, _, kind, found, err := s.consult(level, files[idx])
		if err != nil {
			return nil, 0, false, err
		}
		if found {
			return s.finish(value, kind)
		}
	}
	db.maybeChargeSeek(s.firstConsulted, s.firstConsultedLevel, s.consulted)
	return nil, 0, false, nil
}

// maybeChargeSeek implements LevelDB's seek-compaction accounting: when a
// read had to consult more than one table, the first consulted table is
// charged; at zero allowed seeks it becomes a compaction candidate.
func (db *DB) maybeChargeSeek(f *manifest.FileMeta, level int, consulted int) {
	if !db.cfg.SeekCompaction || consulted < 2 || f == nil {
		return
	}
	if f.AllowedSeeks.Add(-1) == 0 && level < manifest.NumLevels-1 {
		db.mu.Lock()
		if db.seekCompactFile == nil && !db.closed {
			db.seekCompactFile = f
			db.seekCompactLevel = level
			db.maybeScheduleWorkLocked()
		}
		db.mu.Unlock()
	}
}

// Close flushes nothing (matching LevelDB semantics: unflushed memtable
// data survives via the WAL), stops background work, and releases
// resources.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	if db.scrubStop != nil {
		close(db.scrubStop)
	}
	db.cond.Broadcast()
	// Waiting on manualActive too (not just background workers) keeps the
	// version set and caches alive until a concurrent CompactRange has
	// observed the close and unwound. Waiting on the writer queue keeps
	// the WAL writer alive until the in-flight group-commit leader has
	// finished its off-mu append: new writers are rejected at entry once
	// closed is set, and each queued writer becomes leader in turn, sees
	// closed in makeRoomForWriteLocked, and returns ErrClosed — so the queue
	// drains itself through the normal leader chain. scrubActive keeps the
	// version set alive until the scrubber (which pins versions) exits.
	for db.flushActive || db.compactWorkers > 0 || db.manualActive ||
		db.leaderActive || len(db.writers) > 0 || db.scrubActive || db.vlogGCActive {
		db.cond.Wait()
	}
	// Under boltinvariants: every tracked goroutine deregisters before it
	// clears its drain tracker (in the same critical section), so a
	// completed drain implies an empty registry — a survivor here is a
	// leaked goroutine the trackers lost sight of.
	db.goros.assertDrained()
	// Every reader is gone, so deferred value-log punches are all safe now.
	punches := db.vlogPunchQueue
	db.vlogPunchQueue = nil
	db.mu.Unlock()
	db.execVLogPunches(punches)

	var firstErr error
	//boltvet:ignore-begin guardedby -- post-drain teardown: closed is set and every background path has unwound, so this goroutine is the last one standing
	if db.cfg.SyncWAL {
		if err := db.walW.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.walW.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if db.vlogW != nil {
		if err := db.vlogW.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.vs.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	//boltvet:ignore-end
	db.tableCache.Close()
	if db.fdCache != nil {
		db.fdCache.Close()
	}
	db.vlogFDs.Close()
	return firstErr
}

// WaitIdle blocks until all background work (pending flushes and
// compactions) has drained, and reports the pending background error, if
// any — a wait cut short by a fatal error or a read-only degradation must
// not look like a clean drain. Benchmarks use it to separate load-phase
// compaction debt from read-phase measurements.
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for (db.flushActive || db.compactWorkers > 0 || db.manualActive || db.imm != nil || db.vlogGCActive) && !db.bgStoppedLocked() {
		db.cond.Wait()
	}
	if db.closed {
		return ErrClosed
	}
	return db.pendingErrLocked()
}

// NumLevelFiles returns the table count per level (diagnostics).
func (db *DB) NumLevelFiles() [manifest.NumLevels]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out [manifest.NumLevels]int
	v := db.vs.Current()
	for i := range v.Levels {
		out[i] = len(v.Levels[i])
	}
	return out
}

// DebugVersion renders the current table layout.
func (db *DB) DebugVersion() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.Current().DebugString()
}

// CheckInvariants validates the version layout (tests call this).
func (db *DB) CheckInvariants() error {
	db.mu.Lock()
	v := db.vs.Current()
	v.Ref()
	db.mu.Unlock()
	defer v.Unref()
	return db.checkVersionInvariants(v)
}

func (db *DB) checkVersionInvariants(v *manifest.Version) error {
	for level := 1; level < manifest.NumLevels; level++ {
		if !db.cfg.Fragmented {
			if err := v.SortedTables(level); err != nil {
				return err
			}
		}
	}
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if keys.Compare(f.Smallest, f.Largest) > 0 {
				return fmt.Errorf("core: table %d has inverted bounds", f.Num)
			}
			if f.Size <= 0 {
				return fmt.Errorf("core: table %d has size %d", f.Num, f.Size)
			}
		}
	}
	return nil
}
