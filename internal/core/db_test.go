package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// testConfig returns a tiny configuration that exercises flushes and
// compactions quickly.
func testConfig() Config {
	return Config{
		MemTableBytes:       32 << 10,
		MaxSSTableBytes:     8 << 10,
		BlockSize:           1024,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StopTrigger:       12,
		L1MaxBytes:          64 << 10,
		LevelMultiplier:     10,
		TableCacheEntries:   100,
		BlockCacheBytes:     1 << 20,
		VerifyInvariants:    true,
	}
}

// boltTestConfig enables all four BoLT elements at test scale.
func boltTestConfig() Config {
	c := testConfig()
	c.LogicalSSTableBytes = 4 << 10
	c.GroupCompactionBytes = 16 << 10
	c.SettledCompaction = true
	c.FDCache = true
	return c
}

func openTestDB(t testing.TB, fs vfs.FS, cfg Config) *DB {
	t.Helper()
	db, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()

	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k1"), nil)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get([]byte("k1"), nil)
	if string(got) != "v2" {
		t.Fatalf("overwrite: %q", got)
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if _, err := db.Get([]byte("never"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	b := batch.New()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Write(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("a: %v", err)
	}
	if v, _ := db.Get([]byte("b"), nil); string(v) != "2" {
		t.Fatalf("b = %q", v)
	}
}

func fill(t testing.TB, db *DB, n int, valueLen int) {
	t.Helper()
	val := make([]byte, valueLen)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%08d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
}

func checkFilled(t testing.TB, db *DB, n int, valueLen int) {
	t.Helper()
	for i := 0; i < n; i += 7 {
		v, err := db.Get([]byte(fmt.Sprintf("key%08d", i)), nil)
		if err != nil {
			t.Fatalf("Get key%08d: %v\n%s", i, err, db.DebugVersion())
		}
		if len(v) != valueLen {
			t.Fatalf("key%08d value len %d, want %d", i, len(v), valueLen)
		}
	}
}

func TestFlushAndCompactionPreserveData(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"leveldb", testConfig()},
		{"bolt", boltTestConfig()},
		{"fragmented", func() Config {
			c := testConfig()
			c.Fragmented = true
			c.GuardBaseBits = 5
			c.GuardShiftBits = 1
			return c
		}()},
		{"hyper", func() Config {
			c := testConfig()
			c.L0SlowdownTrigger = 0
			c.L0StopTrigger = 0
			c.ConcurrentWriters = true
			return c
		}()},
		{"rocks", func() Config {
			c := testConfig()
			c.SeparateFlushThread = true
			c.EntryPadding = 10
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := openTestDB(t, vfs.NewMem(), tc.cfg)
			defer db.Close()
			const n = 3000
			fill(t, db, n, 100)
			checkFilled(t, db, n, 100)
			if db.met.MemtableFlushes.Load() == 0 {
				t.Error("no flush happened; test scale wrong")
			}
			if db.met.Compactions.Load() == 0 {
				t.Error("no compaction happened; test scale wrong")
			}
			if err := db.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOverwritesAndDeletesThroughCompaction(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	const n = 1000
	// Three generations of values, then delete a third of the keys.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("key%08d", i))
			if err := db.Put(key, []byte(fmt.Sprintf("gen%d-%d", gen, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < n; i += 3 {
		if err := db.Delete([]byte(fmt.Sprintf("key%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%08d", i))
		v, err := db.Get(key, nil)
		if i%3 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %d should be deleted, got %q %v", i, v, err)
			}
		} else {
			if err != nil || string(v) != fmt.Sprintf("gen2-%d", i) {
				t.Fatalf("key %d = %q, %v", i, v, err)
			}
		}
	}
}

func TestReopenRecoversData(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, testConfig())
	const n = 2000
	fill(t, db, n, 64)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, fs, testConfig())
	defer db2.Close()
	checkFilled(t, db2, n, 64)
	// Writes continue after reopen.
	if err := db2.Put([]byte("after-reopen"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if v, _ := db2.Get([]byte("after-reopen"), nil); string(v) != "yes" {
		t.Fatalf("after-reopen = %q", v)
	}
}

func TestReopenRecoversBolTLayout(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, boltTestConfig())
	const n = 2500
	fill(t, db, n, 64)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, fs, boltTestConfig())
	defer db2.Close()
	checkFilled(t, db2, n, 64)
}

func TestSnapshotIsolation(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	db.Put([]byte("k"), []byte("old"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("new"))
	db.Put([]byte("k2"), []byte("invisible"))

	if v, err := db.Get([]byte("k"), snap); err != nil || string(v) != "old" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("k2"), snap); !errors.Is(err, ErrNotFound) {
		t.Fatalf("k2 visible in snapshot: %v", err)
	}
	if v, _ := db.Get([]byte("k"), nil); string(v) != "new" {
		t.Fatalf("latest read = %q", v)
	}
}

func TestSnapshotSurvivesCompaction(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	db.Put([]byte("pinned"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("pinned"), []byte("v2"))
	db.Delete([]byte("pinned"))
	// Force lots of flushes/compactions over the old version.
	fill(t, db, 3000, 100)
	if v, err := db.Get([]byte("pinned"), snap); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot after compaction = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("pinned"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("latest should be deleted: %v", err)
	}
}

func TestIteratorBasic(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))
	db.Put([]byte("k051"), []byte("updated"))

	it := db.NewIter(nil)
	defer it.Close()
	count := 0
	var prev []byte
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && string(prev) >= string(it.Key()) {
			t.Fatalf("out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		if string(it.Key()) == "k050" {
			t.Fatal("deleted key visible in scan")
		}
		if string(it.Key()) == "k051" && string(it.Value()) != "updated" {
			t.Fatalf("k051 = %q", it.Value())
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 99 {
		t.Fatalf("scanned %d keys, want 99", count)
	}
	// SeekGE.
	if !it.SeekGE([]byte("k050")) || string(it.Key()) != "k051" {
		t.Fatalf("SeekGE(k050) landed on %q", it.Key())
	}
}

func TestIteratorSpansAllLevels(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt", "fragmented"} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			switch name {
			case "bolt":
				cfg = boltTestConfig()
			case "fragmented":
				cfg.Fragmented = true
				cfg.GuardBaseBits = 5
				cfg.GuardShiftBits = 1
			}
			db := openTestDB(t, vfs.NewMem(), cfg)
			defer db.Close()
			const n = 3000
			fill(t, db, n, 60)
			it := db.NewIter(nil)
			defer it.Close()
			i := 0
			for ok := it.First(); ok; ok = it.Next() {
				want := fmt.Sprintf("key%08d", i)
				if string(it.Key()) != want {
					t.Fatalf("position %d: got %q want %q", i, it.Key(), want)
				}
				i++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if i != n {
				t.Fatalf("scanned %d, want %d", i, n)
			}
		})
	}
}

func TestGetAfterCloseFails(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	db.Put([]byte("k"), []byte("v"))
	db.Close()
	if _, err := db.Get([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestBoltUsesFewerFsyncsThanLevelDB(t *testing.T) {
	// The core claim of the paper, at unit-test scale: identical workload,
	// far fewer barriers under BoLT.
	run := func(cfg Config) int64 {
		fs := vfs.NewMem()
		db := openTestDB(t, fs, cfg)
		fill(t, db, 4000, 100)
		db.Close()
		return db.IO().Fsyncs.Load()
	}
	lvl := run(testConfig())
	bolt := run(boltTestConfig())
	if bolt*2 > lvl {
		t.Fatalf("BoLT should use far fewer fsyncs: bolt=%d leveldb=%d", bolt, lvl)
	}
}

func TestSettledCompactionPromotes(t *testing.T) {
	cfg := boltTestConfig()
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	fill(t, db, 6000, 100)
	checkFilled(t, db, 6000, 100)
	if db.met.SettledPromotions.Load() == 0 {
		t.Log(db.DebugVersion())
		t.Error("settled compaction never promoted a table at this scale")
	}
}

func TestHolePunchingReclaimsSpace(t *testing.T) {
	fs := vfs.NewMem()
	cfg := boltTestConfig()
	db := openTestDB(t, fs, cfg)
	defer db.Close()
	// Random-order inserts: compactions then consume scattered subsets of
	// logical SSTables, leaving live neighbours in their compaction files
	// — exactly the case hole punching exists for. (A sequential fill
	// would retire whole files and never punch.)
	rng := rand.New(rand.NewSource(42))
	val := make([]byte, 100)
	for i := 0; i < 8000; i++ {
		key := fmt.Sprintf("key%08d", rng.Intn(4000))
		if err := db.Put([]byte(key), val); err != nil {
			t.Fatal(err)
		}
	}
	if db.IO().HolePunches.Load() == 0 {
		t.Error("no hole punches under BoLT")
	}
	// Allocated bytes must stay near live data size, not total written.
	written := db.IO().BytesWritten.Load()
	allocated := fs.AllocatedBytes()
	if allocated >= written {
		t.Fatalf("no space reclaimed: allocated=%d written=%d", allocated, written)
	}
}

func TestSeekCompactionTriggers(t *testing.T) {
	cfg := testConfig()
	cfg.SeekCompaction = true
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	fill(t, db, 2000, 100)
	// Hammer reads on a key range so allowed-seeks drain.
	for i := 0; i < 60000; i++ {
		db.Get([]byte(fmt.Sprintf("key%08d", i%2000)), nil)
		if db.met.SeekCompactions.Load() > 0 {
			return
		}
	}
	// Seek compaction is opportunistic: only assert the accounting moved.
	if db.met.TablesChecked.Load() == 0 {
		t.Fatal("reads never consulted tables")
	}
}

func TestL0StopGovernorEngages(t *testing.T) {
	cfg := testConfig()
	// A tiny stop trigger plus large L1 threshold keeps L0 crowded.
	cfg.L0CompactionTrigger = 2
	cfg.L0SlowdownTrigger = 2
	cfg.L0StopTrigger = 3
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	fill(t, db, 4000, 100)
	if db.met.StallSlowdown.Load() == 0 && db.met.StallStops.Load() == 0 {
		t.Error("governors never engaged at this scale")
	}
}

func TestNumLevelFilesAndDebug(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	fill(t, db, 3000, 100)
	files := db.NumLevelFiles()
	total := 0
	for _, n := range files {
		total += n
	}
	if total == 0 {
		t.Fatal("no table files after fill")
	}
	if db.DebugVersion() == "" {
		t.Fatal("empty debug output")
	}
	_ = manifest.NumLevels
}
