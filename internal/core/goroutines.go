package core

import (
	"fmt"
	"sort"
	"sync"
)

// goroutineRegistry is the runtime twin of the golifetime static
// analyzer: every tracked background goroutine registers by name at its
// spawn site and deregisters inside its final critical section, before
// it clears the drain tracker (scrubActive, flushActive,
// compactWorkers) that Close waits on. That ordering makes the
// post-drain check deterministic — once Close's drain loop observes
// every tracker clear, the registry is provably empty, with no grace
// window. All methods are no-ops unless the build carries
// -tags boltinvariants, so the default build pays nothing.
type goroutineRegistry struct {
	mu   sync.Mutex
	live map[string]int //boltvet:guardedby mu
}

// register records one live goroutine under name. Call it at the spawn
// site, before the go statement, so the registry never lags the spawn.
func (r *goroutineRegistry) register(name string) {
	if !InvariantsEnabled {
		return
	}
	r.mu.Lock()
	if r.live == nil {
		r.live = make(map[string]int)
	}
	r.live[name]++
	r.mu.Unlock()
}

// done records one goroutine exit. Call it from the goroutine itself,
// in the same critical section that clears its drain tracker and before
// the clear, so a drained tracker implies a deregistered goroutine.
func (r *goroutineRegistry) done(name string) {
	if !InvariantsEnabled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live[name] <= 0 {
		panic("core: goroutine registry underflow: done(" + name + ") without a matching register")
	}
	r.live[name]--
	if r.live[name] == 0 {
		delete(r.live, name)
	}
}

// liveNames returns the names of still-registered goroutines, sorted,
// with counts ("compactWorker x2").
func (r *goroutineRegistry) liveNames() []string {
	if !InvariantsEnabled {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name, n := range r.live {
		if n > 1 {
			name = fmt.Sprintf("%s x%d", name, n)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// assertDrained panics when any tracked goroutine survived the drain.
// Close calls it after its drain loop: a panic here means a goroutine
// cleared its tracker without deregistering first, or never cleared it
// at all — exactly the leak shapes golifetime proves absent statically.
func (r *goroutineRegistry) assertDrained() {
	if !InvariantsEnabled {
		return
	}
	if names := r.liveNames(); len(names) > 0 {
		panic(fmt.Sprintf("core: Close drained every tracker but these goroutines are still registered: %v", names))
	}
}
