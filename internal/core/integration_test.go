package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// profilesUnderTest returns every engine profile at test scale.
func profilesUnderTest() map[string]Config {
	hyper := testConfig()
	hyper.L0SlowdownTrigger = 0
	hyper.L0StopTrigger = 0
	hyper.ConcurrentWriters = true
	hyper.MaxSSTableBytes = 16 << 10

	rocks := testConfig()
	rocks.MaxSSTableBytes = 32 << 10
	rocks.SeparateFlushThread = true
	rocks.EntryPadding = 0
	rocks.SeekCompaction = false

	pebbles := hyper
	pebbles.Fragmented = true
	pebbles.GuardBaseBits = 5
	pebbles.GuardShiftBits = 1

	hyperBolt := hyper
	hyperBolt.LogicalSSTableBytes = 4 << 10
	hyperBolt.GroupCompactionBytes = 16 << 10
	hyperBolt.SettledCompaction = true
	hyperBolt.FDCache = true
	hyperBolt.Fragmented = false

	lvl := testConfig()
	lvl.SeekCompaction = true

	// BoLT with WAL-time key-value separation: a threshold below the
	// golden workload's value size so most values ride the value log,
	// tiny segments so rotation churns, and a low garbage ratio so
	// background value GC fires mid-workload.
	boltVLog := boltTestConfig()
	boltVLog.ValueThreshold = 20
	boltVLog.VLogSegmentBytes = 4 << 10
	boltVLog.VLogGCGarbageRatio = 0.3

	return map[string]Config{
		"leveldb":   lvl,
		"bolt":      boltTestConfig(),
		"boltvlog":  boltVLog,
		"hyper":     hyper,
		"rocks":     rocks,
		"pebbles":   pebbles,
		"hyperbolt": hyperBolt,
	}
}

// TestGoldenModelAllProfiles runs a randomized workload of puts, deletes,
// overwrites, reads, and scans against every profile and cross-checks each
// result against an in-memory map.
func TestGoldenModelAllProfiles(t *testing.T) {
	for name, cfg := range profilesUnderTest() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			db := openTestDB(t, vfs.NewMem(), cfg)
			defer db.Close()
			model := map[string]string{}
			const ops = 12000
			const keySpace = 2000
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("user%06d", rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0: // delete
					if err := db.Delete([]byte(key)); err != nil {
						t.Fatal(err)
					}
					delete(model, key)
				case 1, 2: // read
					want, exists := model[key]
					got, err := db.Get([]byte(key), nil)
					if exists {
						if err != nil || string(got) != want {
							t.Fatalf("op %d Get(%s) = %q,%v want %q", i, key, got, err, want)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("op %d Get(%s) = %q,%v want NotFound", i, key, got, err)
					}
				default: // write
					val := fmt.Sprintf("val-%d-%d", i, rng.Int63())
					if err := db.Put([]byte(key), []byte(val)); err != nil {
						t.Fatal(err)
					}
					model[key] = val
				}
			}
			// Full scan must equal the sorted model.
			var wantKeys []string
			for k := range model {
				wantKeys = append(wantKeys, k)
			}
			sort.Strings(wantKeys)
			it := db.NewIter(nil)
			defer it.Close()
			i := 0
			for ok := it.First(); ok; ok = it.Next() {
				if i >= len(wantKeys) {
					t.Fatalf("scan yielded extra key %q", it.Key())
				}
				if string(it.Key()) != wantKeys[i] {
					t.Fatalf("scan position %d: got %q want %q", i, it.Key(), wantKeys[i])
				}
				if string(it.Value()) != model[wantKeys[i]] {
					t.Fatalf("scan value for %q mismatch", it.Key())
				}
				i++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(wantKeys) {
				t.Fatalf("scan yielded %d keys, want %d", i, len(wantKeys))
			}
			if err := db.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGoldenModelWithReopen interleaves random reopen cycles.
func TestGoldenModelWithReopen(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt", "boltvlog", "pebbles"} {
		t.Run(name, func(t *testing.T) {
			cfg := profilesUnderTest()[name]
			fs := vfs.NewMem()
			rng := rand.New(rand.NewSource(99))
			model := map[string]string{}
			db := openTestDB(t, fs, cfg)
			for round := 0; round < 4; round++ {
				for i := 0; i < 2500; i++ {
					key := fmt.Sprintf("user%06d", rng.Intn(1500))
					if rng.Intn(12) == 0 {
						db.Delete([]byte(key))
						delete(model, key)
					} else {
						val := fmt.Sprintf("r%d-%d", round, i)
						db.Put([]byte(key), []byte(val))
						model[key] = val
					}
				}
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
				db = openTestDB(t, fs, cfg)
				// Spot-check after reopen.
				for k, want := range model {
					got, err := db.Get([]byte(k), nil)
					if err != nil || string(got) != want {
						t.Fatalf("round %d after reopen: Get(%s) = %q,%v want %q",
							round, k, got, err, want)
					}
					if rng.Intn(4) != 0 {
						break // sample a few keys per round, not all
					}
				}
			}
			db.Close()
		})
	}
}

// TestCrashRecoveryNeverLosesSyncedWrites injects crashes at random points
// and verifies the recovered database (a) retains every write that was
// acknowledged with a synced WAL, and (b) opens cleanly with intact
// invariants.
func TestCrashRecoveryNeverLosesSyncedWrites(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt", "boltvlog"} {
		t.Run(name, func(t *testing.T) {
			cfg := profilesUnderTest()[name]
			cfg.SyncWAL = true // acknowledged == durable
			rng := rand.New(rand.NewSource(7))
			fs := vfs.NewMem()
			model := map[string]string{}
			for round := 0; round < 5; round++ {
				db := openTestDB(t, fs, cfg)
				n := 500 + rng.Intn(1500)
				for i := 0; i < n; i++ {
					key := fmt.Sprintf("user%06d", rng.Intn(800))
					val := fmt.Sprintf("r%d-%d", round, i)
					if err := db.Put([]byte(key), []byte(val)); err != nil {
						t.Fatal(err)
					}
					model[key] = val
				}
				// Crash: clone only what is durable, abandon the old DB
				// (its background threads die with the test; the files they
				// might still write belong to the *old* fs image).
				crashed := fs.CrashClone()
				_ = db.Close()
				fs = crashed

				db2, err := Open(fs, cfg)
				if err != nil {
					t.Fatalf("round %d: reopen after crash: %v", round, err)
				}
				for k, want := range model {
					got, err := db2.Get([]byte(k), nil)
					if err != nil || string(got) != want {
						t.Fatalf("round %d: lost synced write %s: got %q, %v want %q",
							round, k, got, err, want)
					}
				}
				if err := db2.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if err := db2.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCrashDuringCompactionKeepsConsistency crashes while background work
// is likely in flight: whatever survives must open cleanly and contain a
// prefix-consistent state (all acknowledged synced writes).
func TestCrashDuringCompactionKeepsConsistency(t *testing.T) {
	cfg := boltTestConfig()
	cfg.SyncWAL = true
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6000; i++ {
		key := fmt.Sprintf("user%06d", rng.Intn(2000))
		val := fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		model[key] = val
		// Crash mid-run at a few random points (compactions are running).
		if i == 2000 || i == 4500 {
			crashed := fs.CrashClone()
			db2, err := Open(crashed, cfg)
			if err != nil {
				t.Fatalf("crash at op %d: %v", i, err)
			}
			for k, want := range model {
				got, err := db2.Get([]byte(k), nil)
				if err != nil || string(got) != want {
					t.Fatalf("crash at op %d: key %s = %q,%v want %q", i, k, got, err, want)
				}
			}
			if err := db2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			db2.Close()
		}
	}
	db.Close()
}

// TestUnsyncedWALDataLostOnCrash verifies the asynchronous-WAL semantics:
// without SyncWAL, recent writes may vanish in a crash but recovery must
// still be clean and prefix-consistent per key.
func TestUnsyncedWALDataLostOnCrash(t *testing.T) {
	cfg := testConfig()
	cfg.SyncWAL = false
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	crashed := fs.CrashClone()
	db.Close()
	db2, err := Open(crashed, cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	// Data may or may not be there (un-synced), but lookups must not error
	// in unexpected ways.
	for i := 0; i < 100; i++ {
		_, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)), nil)
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("corrupt read after crash: %v", err)
		}
	}
}

// TestConcurrentReadersWritersScanners stresses the engine under -race.
func TestConcurrentReadersWritersScanners(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt", "boltvlog", "hyper", "pebbles"} {
		t.Run(name, func(t *testing.T) {
			cfg := profilesUnderTest()[name]
			db := openTestDB(t, vfs.NewMem(), cfg)
			defer db.Close()
			const (
				writers = 4
				readers = 3
				perG    = 2000
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < perG; i++ {
						key := fmt.Sprintf("user%06d", rng.Intn(3000))
						if rng.Intn(10) == 0 {
							if err := db.Delete([]byte(key)); err != nil {
								t.Error(err)
								return
							}
						} else if err := db.Put([]byte(key), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + r)))
					for i := 0; i < perG; i++ {
						key := fmt.Sprintf("user%06d", rng.Intn(3000))
						if _, err := db.Get([]byte(key), nil); err != nil && !errors.Is(err, ErrNotFound) {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(r)
			}
			// One scanner walking the whole keyspace repeatedly.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 5; round++ {
					it := db.NewIter(nil)
					var prev []byte
					for ok := it.First(); ok; ok = it.Next() {
						if prev != nil && string(prev) >= string(it.Key()) {
							t.Errorf("scan out of order: %q then %q", prev, it.Key())
							it.Close()
							return
						}
						prev = append(prev[:0], it.Key()...)
					}
					if err := it.Err(); err != nil {
						t.Errorf("scan: %v", err)
					}
					it.Close()
				}
			}()
			wg.Wait()
			if err := db.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotConsistencyUnderWrites verifies a snapshot scan is immune to
// concurrent writes.
func TestSnapshotConsistencyUnderWrites(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("original"))
	}
	snap := db.NewSnapshot()
	defer snap.Release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			db.Put([]byte(fmt.Sprintf("k%05d", i%1000)), []byte("mutated"))
		}
	}()

	it := db.NewIter(snap)
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Value()) != "original" {
			t.Fatalf("snapshot scan saw mutation at %q", it.Key())
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if count != 1000 {
		t.Fatalf("snapshot scan saw %d keys, want 1000", count)
	}
	<-done
}
