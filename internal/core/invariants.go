package core

import (
	"fmt"

	"github.com/bolt-lsm/bolt/internal/logrec"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// barrierChecker is the runtime twin of the static barrierorder analyzer
// (internal/boltvet): where the analyzer proves the two-barrier ordering
// lexically, the checker enforces it on the actual I/O stream. Installed
// under a vfs.SyncTrackerFS (builds tagged boltinvariants wire it into
// Open; see invariants_enabled.go), it captures every MANIFEST's content
// and, on each MANIFEST sync, re-decodes all its version edits: if any
// edit validates a table whose physical file still has unsynced bytes,
// the MANIFEST barrier is being paid before the data barrier and the
// checker panics at the violating sync.
//
// The full re-decode on every sync is sound and stateless: table files
// are immutable once their writer finishes, so a file that was clean at
// an earlier sync cannot have become dirty again — a dirty hit always
// implicates the newest records.
type barrierChecker struct{}

var _ vfs.SyncChecker = barrierChecker{}

func (barrierChecker) Capture(name string) bool {
	kind, _, ok := manifest.ParseFileName(name)
	return ok && kind == manifest.KindManifest
}

func (barrierChecker) OnSync(name string, content []byte, dirty func(name string) int64) {
	r := logrec.NewReader(content)
	for {
		rec, err := r.Next()
		if err != nil {
			// io.EOF ends the walk; a torn tail cannot exist here (records
			// are written whole before Sync), but stay tolerant either way:
			// the checker's job is the barrier order, not MANIFEST
			// well-formedness.
			return
		}
		edit, err := manifest.DecodeEdit(rec)
		if err != nil {
			continue
		}
		for _, a := range edit.Added {
			table := manifest.TableFileName(a.Meta.PhysNum)
			if d := dirty(table); d > 0 {
				panic(fmt.Sprintf(
					"boltinvariants: %s synced while referenced table %s has %d unsynced byte(s); "+
						"the data barrier must precede the MANIFEST barrier",
					name, table, d))
			}
		}
	}
}
