//go:build !boltinvariants

package core

import "github.com/bolt-lsm/bolt/internal/vfs"

// InvariantsEnabled reports whether the boltinvariants build tag is set.
const InvariantsEnabled = false

func wrapInvariantFS(fs vfs.FS) vfs.FS { return fs }
