//go:build boltinvariants

package core

import "github.com/bolt-lsm/bolt/internal/vfs"

// InvariantsEnabled reports whether the boltinvariants build tag is set.
const InvariantsEnabled = true

// wrapInvariantFS interposes the sync tracker so every database opened in
// this build enforces the two-barrier ordering at runtime.
func wrapInvariantFS(fs vfs.FS) vfs.FS {
	return vfs.NewSyncTrackerFS(fs, barrierChecker{})
}
