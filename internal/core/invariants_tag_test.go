//go:build boltinvariants

package core

import (
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestInvariantsEndToEnd runs a full write/flush/compact/reopen cycle with
// the sync tracker wired under the engine (boltinvariants build). The test
// has no explicit assertions about barriers: if any engine path paid the
// MANIFEST barrier before the data barrier, the checker panics and the
// test fails with the violating file:byte-count in the message.
func TestInvariantsEndToEnd(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("tagged build must set InvariantsEnabled")
	}
	fs := vfs.NewMem()
	db := openTestDB(t, fs, boltTestConfig())

	val := make([]byte, 256)
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i%500))
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := db.Delete(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery rewrites the MANIFEST under the tracker too.
	db = openTestDB(t, fs, boltTestConfig())
	got, err := db.Get([]byte("key-00001"), nil)
	if err != nil || len(got) != len(val) {
		t.Fatalf("Get after reopen = %d bytes, %v", len(got), err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
