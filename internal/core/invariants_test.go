package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/logrec"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// The barrierChecker is compiled unconditionally so its panic path is
// testable in the default build; the boltinvariants tag only controls
// whether Open wires it under every database (see invariants_tag_test.go).

func invariantEdit(physNum uint64) *manifest.VersionEdit {
	meta := &manifest.FileMeta{
		Num:      physNum,
		PhysNum:  physNum,
		Size:     128,
		Smallest: keys.MakeInternalKey(nil, []byte("a"), 1, keys.KindSet),
		Largest:  keys.MakeInternalKey(nil, []byte("z"), 1, keys.KindSet),
	}
	edit := &manifest.VersionEdit{}
	edit.AddFile(0, meta)
	return edit
}

// writeManifest creates MANIFEST-<num> on fs holding one edit record and
// returns the still-unsynced handle.
func writeManifest(t *testing.T, fs vfs.FS, num uint64, edit *manifest.VersionEdit) vfs.File {
	t.Helper()
	f, err := fs.Create(manifest.ManifestFileName(num))
	if err != nil {
		t.Fatal(err)
	}
	if err := logrec.NewWriter(f).WriteRecord(edit.Encode()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBarrierCheckerPanicsOnUnsyncedTable(t *testing.T) {
	fs := vfs.NewSyncTrackerFS(vfs.NewMem(), barrierChecker{})

	tf, err := fs.Create(manifest.TableFileName(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Write(make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	// Deliberately no tf.Sync(): the table's bytes are not durable.

	mf := writeManifest(t, fs, 1, invariantEdit(7))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MANIFEST synced over an unsynced table: expected the invariant panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, manifest.TableFileName(7)) || !strings.Contains(msg, "unsynced") {
			t.Fatalf("panic message does not name the dirty table: %q", msg)
		}
	}()
	_ = mf.Sync() //boltvet:ignore syncerr -- the call must panic, not return
	t.Fatal("unreachable: Sync returned")
}

func TestBarrierCheckerAllowsSyncedTable(t *testing.T) {
	fs := vfs.NewSyncTrackerFS(vfs.NewMem(), barrierChecker{})

	tf, err := fs.Create(manifest.TableFileName(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Write(make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := tf.Sync(); err != nil {
		t.Fatal(err)
	}

	mf := writeManifest(t, fs, 1, invariantEdit(7))
	if err := mf.Sync(); err != nil {
		t.Fatalf("sync after a paid data barrier must succeed: %v", err)
	}

	// A later write to another table re-dirties the namespace; a second
	// MANIFEST referencing it must trip even though the first sync passed.
	tf2, err := fs.Create(manifest.TableFileName(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf2.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	mf2 := writeManifest(t, fs, 2, invariantEdit(9))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second MANIFEST over dirty table 9: expected panic")
			}
		}()
		_ = mf2.Sync() //boltvet:ignore syncerr -- the call must panic, not return
	}()
}

func TestWrapInvariantFSMatchesBuildTag(t *testing.T) {
	base := vfs.NewMem()
	wrapped := wrapInvariantFS(base)
	if InvariantsEnabled && wrapped == vfs.FS(base) {
		t.Fatal("boltinvariants build: wrapInvariantFS returned the bare filesystem")
	}
	if !InvariantsEnabled && wrapped != vfs.FS(base) {
		t.Fatal("default build: wrapInvariantFS must be the identity")
	}
}
