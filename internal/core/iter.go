package core

import (
	"container/list"
	"sort"

	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
)

// levelIter iterates a sorted (non-overlapping) level, opening one table
// at a time through the table cache. v is the pinned version the files
// came from (the enclosing DBIter holds the reference); it is consulted
// for quarantine marks so iterating into a corrupt table's span fails
// with the typed range error instead of serving garbage.
type levelIter struct {
	db    *DB
	v     *manifest.Version
	level int
	files []*manifest.FileMeta
	idx   int
	cur   iterator.Iterator
	err   error
}

var _ iterator.Iterator = (*levelIter)(nil)

func (db *DB) newLevelIter(v *manifest.Version, level int, files []*manifest.FileMeta) *levelIter {
	return &levelIter{db: db, v: v, level: level, files: files, idx: -1}
}

func (l *levelIter) open(i int) bool {
	l.closeCur()
	if i < 0 || i >= len(l.files) {
		l.idx = len(l.files)
		return false
	}
	f := l.files[i]
	if l.v.IsQuarantined(f.Num) {
		l.err = rangeCorruptError(l.level, f, nil)
		return false
	}
	r, release, err := l.db.tableCache.Get(f)
	if err != nil {
		l.err = l.db.maybeQuarantineRead(l.level, f, err)
		return false
	}
	l.idx = i
	l.cur = &releasingIter{Iterator: r.NewIter(sstable.IterOpts{}), release: release}
	return true
}

func (l *levelIter) closeCur() {
	if l.cur != nil {
		_ = l.cur.Close()
		l.cur = nil
	}
}

// First implements iterator.Iterator.
func (l *levelIter) First() bool {
	l.err = nil
	if !l.open(0) {
		return false
	}
	if l.cur.First() {
		return true
	}
	if l.err = l.cur.Err(); l.err != nil {
		return false
	}
	return l.nextFile()
}

// Seek implements iterator.Iterator.
func (l *levelIter) Seek(target keys.InternalKey) bool {
	l.err = nil
	idx := sort.Search(len(l.files), func(i int) bool {
		return keys.Compare(l.files[i].Largest, target) >= 0
	})
	if !l.open(idx) {
		return false
	}
	if l.cur.Seek(target) {
		return true
	}
	if l.err = l.cur.Err(); l.err != nil {
		return false
	}
	return l.nextFile()
}

func (l *levelIter) nextFile() bool {
	for {
		if !l.open(l.idx + 1) {
			return false
		}
		if l.cur.First() {
			return true
		}
		if l.err = l.cur.Err(); l.err != nil {
			return false
		}
	}
}

// Next implements iterator.Iterator.
func (l *levelIter) Next() bool {
	if !l.Valid() {
		return false
	}
	if l.cur.Next() {
		return true
	}
	if l.err = l.cur.Err(); l.err != nil {
		return false
	}
	return l.nextFile()
}

// Valid implements iterator.Iterator.
func (l *levelIter) Valid() bool {
	return l.err == nil && l.cur != nil && l.cur.Valid()
}

// Key implements iterator.Iterator.
func (l *levelIter) Key() keys.InternalKey {
	if !l.Valid() {
		return nil
	}
	return l.cur.Key()
}

// Value implements iterator.Iterator.
func (l *levelIter) Value() []byte {
	if !l.Valid() {
		return nil
	}
	return l.cur.Value()
}

// Err implements iterator.Iterator.
func (l *levelIter) Err() error { return l.err }

// Close implements iterator.Iterator.
func (l *levelIter) Close() error {
	l.closeCur()
	l.files = nil
	return nil
}

// DBIter is a forward iterator over the user-visible key space at a fixed
// sequence number: internal versions are collapsed to the newest visible
// one and tombstoned keys are skipped.
//
//boltvet:mustclose
type DBIter struct {
	db     *DB
	seq    keys.Seq
	v      *manifest.Version // pinned until Close
	pin    *list.Element     // entry in db.iterPins; holds back value-log punches
	merged *iterator.Merging

	key     []byte
	value   []byte
	skipKey []byte // user key whose remaining (older) versions are skipped
	valid   bool
	err     error
}

// NewIter returns an iterator over the database at snap (nil = latest
// committed state at creation time). Callers must Close it.
func (db *DB) NewIter(snap *Snapshot) *DBIter {
	seq := db.VisibleSeq()
	if snap != nil {
		seq = snap.seq
	}
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	v := db.vs.Current()
	v.Ref()
	// Pin seq for value GC: punches of records this iterator might still
	// dereference are deferred until Close removes the pin.
	pin := db.iterPins.PushBack(seq)
	db.mu.Unlock()

	sources := []iterator.Iterator{mem.NewIter()}
	if imm != nil {
		sources = append(sources, imm.NewIter())
	}
	// Level 0 and fragmented levels: one iterator per (possibly
	// overlapping) table. Sorted levels: one lazy concatenating iterator.
	openTable := func(level int, f *manifest.FileMeta) iterator.Iterator {
		if v.IsQuarantined(f.Num) {
			return &iterator.Empty{ErrValue: rangeCorruptError(level, f, nil)}
		}
		r, release, err := db.tableCache.Get(f)
		if err != nil {
			return &iterator.Empty{ErrValue: db.maybeQuarantineRead(level, f, err)}
		}
		return &releasingIter{Iterator: r.NewIter(sstable.IterOpts{}), release: release}
	}
	for _, f := range v.Levels[0] {
		sources = append(sources, openTable(0, f))
	}
	for level := 1; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		if db.cfg.Fragmented {
			for _, f := range files {
				sources = append(sources, openTable(level, f))
			}
		} else {
			sources = append(sources, db.newLevelIter(v, level, files))
		}
	}
	return &DBIter{db: db, seq: seq, v: v, pin: pin, merged: iterator.NewMerging(sources...)}
}

// findVisible scans forward from the merged iterator's current position to
// the next user-visible entry.
func (it *DBIter) findVisible() bool {
	it.valid = false
	for it.merged.Valid() {
		ikey := it.merged.Key()
		if ikey.Seq() > it.seq {
			it.merged.Next()
			continue
		}
		uk := ikey.UserKey()
		if it.skipKey != nil && keys.CompareUser(uk, it.skipKey) == 0 {
			it.merged.Next()
			continue
		}
		// Newest visible version of this user key.
		it.skipKey = append(it.skipKey[:0], uk...)
		if ikey.Kind() == keys.KindDelete {
			it.merged.Next()
			continue
		}
		it.key = append(it.key[:0], uk...)
		if ikey.Kind() == keys.KindSetPtr {
			value, err := it.db.vlogGet(it.merged.Value())
			if err != nil {
				it.err = err
				return false
			}
			it.value = append(it.value[:0], value...)
		} else {
			it.value = append(it.value[:0], it.merged.Value()...)
		}
		it.valid = true
		return true
	}
	it.err = it.merged.Err()
	return false
}

// First positions at the first user key.
func (it *DBIter) First() bool {
	it.skipKey = nil
	it.merged.First()
	return it.findVisible()
}

// SeekGE positions at the first user key >= ukey.
func (it *DBIter) SeekGE(ukey []byte) bool {
	it.skipKey = nil
	it.merged.Seek(keys.MakeInternalKey(nil, ukey, it.seq, keys.KindSeekMax))
	return it.findVisible()
}

// Next advances to the next user key.
func (it *DBIter) Next() bool {
	if !it.valid {
		return false
	}
	it.merged.Next()
	return it.findVisible()
}

// Valid reports whether the iterator is positioned at an entry.
func (it *DBIter) Valid() bool { return it.valid && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *DBIter) Key() []byte { return it.key }

// Value returns the current value (valid until the next move).
func (it *DBIter) Value() []byte { return it.value }

// Err returns the first error encountered.
func (it *DBIter) Err() error { return it.err }

// Close releases the iterator's table references, version pin, and
// value-GC pin; punches the pin was holding back run before returning.
func (it *DBIter) Close() error {
	if it.merged == nil {
		return nil
	}
	err := it.merged.Close()
	it.merged = nil
	it.valid = false
	db := it.db
	db.mu.Lock()
	it.v.Unref()
	db.iterPins.Remove(it.pin)
	it.pin = nil
	todo := db.takeReadyVLogPunchesLocked()
	db.mu.Unlock()
	db.execVLogPunches(todo)
	return err
}
