package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

func TestCompactRangeFullSettlesTree(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt"} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			if name == "bolt" {
				cfg = boltTestConfig()
			}
			db := openTestDB(t, vfs.NewMem(), cfg)
			defer db.Close()
			fill(t, db, 3000, 100)
			if err := db.CompactRange(nil, nil); err != nil {
				t.Fatal(err)
			}
			files := db.NumLevelFiles()
			if files[0] != 0 {
				t.Fatalf("L0 not empty after full compaction: %v\n%s", files, db.DebugVersion())
			}
			checkFilled(t, db, 3000, 100)
			if err := db.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompactRangePartial(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	fill(t, db, 3000, 100)
	// Compact only the first half of the keyspace.
	if err := db.CompactRange([]byte("key00000000"), []byte("key00001500")); err != nil {
		t.Fatal(err)
	}
	checkFilled(t, db, 3000, 100)
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRangeEmptyDB(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRangeFlushesMemtable(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	// Data small enough to stay in the memtable.
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("m%02d", i)), []byte("v"))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range db.NumLevelFiles() {
		total += n
	}
	if total == 0 {
		t.Fatal("memtable content not flushed to tables")
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("m%02d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactRangeDropsTombstones(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	fill(t, db, 1000, 100)
	for i := 0; i < 1000; i++ {
		db.Delete([]byte(fmt.Sprintf("key%08d", i)))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Everything deleted and fully compacted: the tree should be empty.
	total := int64(0)
	db.mu.Lock()
	v := db.vs.Current()
	for level := range v.Levels {
		total += v.LevelBytes(level)
	}
	db.mu.Unlock()
	if total > 5<<10 {
		t.Fatalf("tombstones/garbage survived full compaction: %d bytes\n%s", total, db.DebugVersion())
	}
	for i := 0; i < 1000; i += 111 {
		if _, err := db.Get([]byte(fmt.Sprintf("key%08d", i)), nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key resurfaced: %v", err)
		}
	}
}

func TestCompactRangeConcurrentWithWrites(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	fill(t, db, 1500, 100)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("bg%06d", i)), make([]byte, 100)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
