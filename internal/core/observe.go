package core

import (
	"io"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/metrics"
)

// Events returns the retained engine event trace, oldest first. The ring
// holds the most recent Config.EventLogSize events; use Config.EventListener
// to observe every event without loss.
func (db *DB) Events() []events.Event { return db.ev.Events() }

// InFlightCompactions returns the number of currently executing (reserved)
// compactions, manual ones included.
func (db *DB) InFlightCompactions() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inflight.Len()
}

// QuarantinedTables returns the number of tables currently under
// corruption quarantine in the live version.
func (db *DB) QuarantinedTables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.Current().NumQuarantined()
}

// LevelStats reports the live shape of the tree: per level, the layout
// read from the current version (files, tables, bytes, dead bytes, read
// amplification) joined with the cumulative per-level compaction counters.
func (db *DB) LevelStats() []metrics.LevelStats {
	db.mu.Lock()
	v := db.vs.Current()
	v.Ref()
	// Dead ranges are keyed by physical file; total them here so the
	// per-level attribution below needs no lock.
	deadByPhys := make(map[uint64]int64, len(db.deadRanges))
	for phys, ranges := range db.deadRanges {
		for _, r := range ranges {
			deadByPhys[phys] += r.size
		}
	}
	db.mu.Unlock()
	defer v.Unref()

	s := db.met.Snapshot()
	userBytes := s.BytesIn
	if userBytes < 1 {
		userBytes = 1
	}

	// A physical file with dead ranges is attributed to the deepest level
	// still referencing it: compaction moves data down, so that is where
	// the live remainder of the compaction file sits.
	deadLevel := make(map[uint64]int, len(deadByPhys))
	for level := 0; level < manifest.NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if _, ok := deadByPhys[f.PhysNum]; ok {
				deadLevel[f.PhysNum] = level
			}
		}
	}

	out := make([]metrics.LevelStats, manifest.NumLevels)
	for level := 0; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		ls := metrics.LevelStats{
			Level:          level,
			Tables:         len(files),
			CompactionsIn:  s.LevelCompactionsIn[level],
			CompactionsOut: s.LevelCompactionsOut[level],
			BytesRead:      s.LevelBytesRead[level],
			BytesWritten:   s.LevelBytesWritten[level],
			WriteAmp:       float64(s.LevelBytesWritten[level]) / float64(userBytes),
		}
		phys := make(map[uint64]struct{}, len(files))
		for _, f := range files {
			ls.Bytes += f.Size
			phys[f.PhysNum] = struct{}{}
		}
		ls.Files = len(phys)
		for p := range phys {
			if deadLevel[p] == level {
				ls.DeadBytes += deadByPhys[p]
			}
		}
		ls.ReadAmp = readAmp(db.cfg.Fragmented, level, files)
		out[level] = ls
	}
	return out
}

// readAmp counts the sorted runs a point lookup may consult in one level:
// every L0 table is its own run; a sorted deeper level is one run; a
// fragmented (guard-partitioned) deeper level contributes its deepest
// per-guard stack.
func readAmp(fragmented bool, level int, files []*manifest.FileMeta) int {
	switch {
	case len(files) == 0:
		return 0
	case level == 0:
		return len(files)
	case !fragmented:
		return 1
	}
	perGuard := make(map[string]int, len(files))
	maxStack := 0
	for _, f := range files {
		g := string(f.Guard)
		perGuard[g]++
		if perGuard[g] > maxStack {
			maxStack = perGuard[g]
		}
	}
	return maxStack
}

// WriteMetrics renders the full metric surface — engine counters, latency
// summaries, per-level stats, cache and file-level I/O counters — in the
// Prometheus text exposition format.
func (db *DB) WriteMetrics(w io.Writer) error {
	p := metrics.NewPromWriter(w)
	db.met.WriteProm(p)
	p.Levels(db.LevelStats())

	cs := db.CacheStats()
	p.Counter("bolt_table_cache_hits_total", "TableCache hits.", cs.TableHits)
	p.Counter("bolt_table_cache_misses_total", "TableCache misses.", cs.TableMisses)
	p.Counter("bolt_table_cache_meta_bytes_total", "Filter+index bytes read on TableCache misses.", cs.MetaBytesRead)
	p.Counter("bolt_block_cache_hits_total", "BlockCache hits.", cs.BlockHits)
	p.Counter("bolt_block_cache_misses_total", "BlockCache misses.", cs.BlockMisses)
	if db.fdCache != nil {
		fh, fm := db.fdCache.Stats()
		p.Counter("bolt_fd_cache_hits_total", "FD cache hits.", fh)
		p.Counter("bolt_fd_cache_misses_total", "FD cache misses.", fm)
	}

	// The bolt_cache_* family is the sharded-cache surface: per-cache
	// aggregated counters plus the resolved shard count, one uniform name
	// scheme across the three caches. The used_bytes sample reports the
	// cache's charge in its own units — bytes for the block cache,
	// resident entries for the table and fd caches (their capacity is a
	// count, mirroring max_open_files).
	p.Counter("bolt_cache_block_hits", "BlockCache hits across all shards.", cs.BlockHits)
	p.Counter("bolt_cache_block_misses", "BlockCache misses across all shards.", cs.BlockMisses)
	p.Gauge("bolt_cache_block_used_bytes", "BlockCache resident charge in bytes.", float64(cs.BlockUsedBytes))
	p.Gauge("bolt_cache_block_shards", "BlockCache shard count.", float64(cs.BlockShards))
	p.Counter("bolt_cache_table_hits", "TableCache hits across all shards.", cs.TableHits)
	p.Counter("bolt_cache_table_misses", "TableCache misses across all shards.", cs.TableMisses)
	p.Gauge("bolt_cache_table_used_bytes", "TableCache resident charge (open tables).", float64(cs.TableUsedEntries))
	p.Gauge("bolt_cache_table_shards", "TableCache shard count.", float64(cs.TableShards))
	if db.fdCache != nil {
		fh, fm := db.fdCache.Stats()
		p.Counter("bolt_cache_fd_hits", "FD cache hits across all shards.", fh)
		p.Counter("bolt_cache_fd_misses", "FD cache misses across all shards.", fm)
		p.Gauge("bolt_cache_fd_used_bytes", "FD cache resident charge (open handles).", float64(db.fdCache.Len()))
		p.Gauge("bolt_cache_fd_shards", "FD cache shard count.", float64(db.fdCache.Shards()))
	}

	ios := db.io.Snapshot()
	p.Counter("bolt_fsyncs_total", "Barriers (fsync/fdatasync) issued.", ios.Fsyncs)
	p.Counter("bolt_io_bytes_written_total", "Bytes written at the file layer.", ios.BytesWritten)
	p.Counter("bolt_io_bytes_read_total", "Bytes read at the file layer.", ios.BytesRead)
	p.Counter("bolt_file_opens_total", "File opens.", ios.FileOpens)
	p.Counter("bolt_file_creates_total", "File creates.", ios.FileCreates)
	p.Counter("bolt_file_removes_total", "File removes.", ios.FileRemoves)

	p.Gauge("bolt_dead_range_bytes", "Dead-but-unreclaimed bytes across all files.", float64(db.DeadRangeBytes()))
	p.Gauge("bolt_inflight_compactions", "Compactions currently executing.", float64(db.InFlightCompactions()))
	p.Gauge("bolt_quarantined_tables", "Tables currently under corruption quarantine.", float64(db.QuarantinedTables()))
	p.Counter("bolt_events_emitted_total", "Engine events emitted since open.", int64(db.ev.TotalEmitted()))
	return p.Err()
}
