package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// fillDB writes enough sequential data to force flushes and compactions.
func fillDB(t *testing.T, db *DB, n int) {
	t.Helper()
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsEmittedDuringFlushAndCompaction(t *testing.T) {
	var lmu sync.Mutex
	var heard []events.Event
	cfg := boltTestConfig()
	cfg.EventLogSize = 4096
	cfg.EventListener = func(e events.Event) {
		lmu.Lock()
		heard = append(heard, e)
		lmu.Unlock()
	}
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	fillDB(t, db, 2000)

	evs := db.Events()
	count := map[events.Type]int{}
	for _, e := range evs {
		count[e.Type]++
		if e.Time.IsZero() {
			t.Fatalf("event %v has zero timestamp", e)
		}
	}
	for _, want := range []events.Type{
		events.TypeFlushStart, events.TypeFlushEnd,
		events.TypeCompactionStart, events.TypeCompactionEnd,
		events.TypeWALRotation,
	} {
		if count[want] == 0 {
			t.Errorf("no %v events in trace (have %v)", want, count)
		}
	}
	if count[events.TypeFlushStart] != count[events.TypeFlushEnd] {
		t.Errorf("unbalanced flush events: %d starts, %d ends",
			count[events.TypeFlushStart], count[events.TypeFlushEnd])
	}

	for _, e := range evs {
		switch e.Type {
		case events.TypeFlushEnd:
			if e.Outputs <= 0 || e.BytesOut <= 0 {
				t.Errorf("flush end missing output accounting: %+v", e)
			}
			if e.Barriers < 1 {
				t.Errorf("flush completed with %d barriers: %+v", e.Barriers, e)
			}
		case events.TypeCompactionEnd:
			if e.OutputLevel != e.Level+1 {
				t.Errorf("compaction end level mismatch: %+v", e)
			}
		}
	}

	lmu.Lock()
	nHeard := len(heard)
	lmu.Unlock()
	if total := db.ev.TotalEmitted(); uint64(nHeard) != total {
		t.Errorf("listener heard %d events, ring emitted %d", nHeard, total)
	}
}

func TestStallEventsCarryCause(t *testing.T) {
	cfg := boltTestConfig()
	cfg.L0CompactionTrigger = 100 // keep L0 populated
	cfg.L0SlowdownTrigger = 1
	cfg.L0StopTrigger = 0
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	fillDB(t, db, 400)
	// L0 now holds at least one unit, so the next governed write sleeps.
	if err := db.Put([]byte("after-stall"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	var begin, end bool
	for _, e := range db.Events() {
		switch {
		case e.Type == events.TypeStallBegin && e.Reason == "l0-slowdown":
			begin = true
		case e.Type == events.TypeStallEnd && e.Reason == "l0-slowdown":
			end = true
			if e.Dur <= 0 {
				t.Errorf("stall end without duration: %+v", e)
			}
		case e.Type == events.TypeStallBegin || e.Type == events.TypeStallEnd:
			if e.Reason == "" {
				t.Errorf("stall event without cause: %+v", e)
			}
		}
	}
	if !begin || !end {
		t.Fatalf("missing l0-slowdown stall events: begin=%v end=%v", begin, end)
	}
}

func TestLevelStats(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	fillDB(t, db, 2000)

	ls := db.LevelStats()
	if len(ls) != manifest.NumLevels {
		t.Fatalf("LevelStats returned %d levels", len(ls))
	}
	var tables, files int
	var bytesTotal int64
	for i, l := range ls {
		if l.Level != i {
			t.Fatalf("level %d reported as %d", i, l.Level)
		}
		if l.Files > l.Tables {
			t.Errorf("L%d: %d files exceeds %d tables", i, l.Files, l.Tables)
		}
		if l.Tables > 0 && l.ReadAmp == 0 || l.Tables == 0 && l.ReadAmp != 0 {
			t.Errorf("L%d: read amp %d with %d tables", i, l.ReadAmp, l.Tables)
		}
		if i > 0 && l.Tables > 0 && l.ReadAmp != 1 {
			t.Errorf("sorted L%d: read amp %d", i, l.ReadAmp)
		}
		tables += l.Tables
		files += l.Files
		bytesTotal += l.Bytes
	}
	if nf := db.NumLevelFiles(); true {
		sum := 0
		for _, n := range nf {
			sum += n
		}
		if tables != sum {
			t.Errorf("LevelStats tables %d != version tables %d", tables, sum)
		}
	}
	// With compaction files many logical tables share one physical file.
	if files >= tables {
		t.Errorf("BoLT layout should share physical files: %d files, %d tables", files, tables)
	}
	if bytesTotal <= 0 {
		t.Error("no live bytes reported")
	}

	s := db.Metrics().Snapshot()
	if ls[0].CompactionsIn != s.MemtableFlushes {
		t.Errorf("L0 compactions-in %d != flushes %d", ls[0].CompactionsIn, s.MemtableFlushes)
	}
	if ls[0].BytesWritten <= 0 || ls[0].WriteAmp <= 0 {
		t.Errorf("L0 write accounting empty: %+v", ls[0])
	}
	if ls[1].CompactionsIn == 0 || ls[0].CompactionsOut == 0 {
		t.Errorf("no L0->L1 compaction accounted: %+v / %+v", ls[0], ls[1])
	}
}

func TestWriteMetricsPromOutput(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), boltTestConfig())
	defer db.Close()
	fillDB(t, db, 800)

	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"bolt_writes_total 800",
		"bolt_memtable_flushes_total",
		"bolt_level_bytes{level=\"0\"}",
		"bolt_level_write_amp{level=\"1\"}",
		"bolt_table_cache_hits_total",
		"bolt_fd_cache_hits_total",
		"bolt_cache_block_hits",
		"bolt_cache_block_used_bytes",
		"bolt_cache_block_shards",
		"bolt_cache_table_shards",
		"bolt_cache_fd_shards",
		"bolt_fsyncs_total",
		"bolt_dead_range_bytes",
		"bolt_events_emitted_total",
		"bolt_write_latency_seconds{quantile=\"0.99\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
