package core

import (
	"fmt"

	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// compactionReadahead is the sequential read chunk used by compaction
// input iterators so large merges do not pay a device op per block.
const compactionReadahead = 512 << 10

// tableOutput streams sorted entries into output tables, implementing both
// physical layouts:
//
//   - Legacy (LevelDB/RocksDB/PebblesDB): each table is its own file and is
//     fsynced when cut — one barrier per SSTable.
//   - Compaction file (BoLT): all tables of one flush/compaction share a
//     single physical file as logical SSTables; the file is fsynced once
//     in finish — one barrier per compaction.
//
// Tables are cut at the size target, at settled-compaction cut points (so
// no output range spans a promoted table), and at guard keys for
// fragmented output levels. Cuts only happen at user-key boundaries so all
// versions of a key stay in one table.
type tableOutput struct {
	db          *DB
	outputLevel int
	cutPoints   [][]byte
	cutIdx      int

	// Compaction-file mode state.
	cfFile   vfs.File
	cfPhys   uint64
	cfOffset int64

	// Current table under construction.
	w       *sstable.Writer
	curFile vfs.File // legacy mode: the table's own file
	curNum  uint64

	lastUser []byte
	metas    []*manifest.FileMeta
}

func (db *DB) newTableOutput(outputLevel int, cutPoints [][]byte) *tableOutput {
	return &tableOutput{db: db, outputLevel: outputLevel, cutPoints: cutPoints}
}

// allocFileNum grabs a file number under the engine mutex.
func (db *DB) allocFileNum() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.NextFileNum()
}

func (o *tableOutput) targetSize() int64 { return o.db.cfg.outputTableBytes() }

// add appends one entry, cutting tables at boundaries as needed.
func (o *tableOutput) add(ikey keys.InternalKey, value []byte) error {
	uk := ikey.UserKey()
	newUser := o.lastUser == nil || keys.CompareUser(uk, o.lastUser) != 0
	if newUser && o.w != nil && !o.w.Empty() {
		cut := o.w.EstimatedSize() >= o.targetSize()
		for o.cutIdx < len(o.cutPoints) && keys.CompareUser(o.cutPoints[o.cutIdx], uk) <= 0 {
			cut = true
			o.cutIdx++
		}
		if o.db.cfg.Fragmented && o.outputLevel >= 1 &&
			o.db.picker.Opts.IsGuard(uk, o.outputLevel) {
			cut = true
		}
		if cut {
			if err := o.cutTable(); err != nil {
				return err
			}
		}
	}
	if o.w == nil {
		if err := o.startTable(); err != nil {
			return err
		}
	}
	o.lastUser = append(o.lastUser[:0], uk...)
	return o.w.Add(ikey, value)
}

func (o *tableOutput) startTable() error {
	num := o.db.allocFileNum()
	if o.db.cfg.compactionFileMode() {
		if o.cfFile == nil {
			o.cfPhys = o.db.allocFileNum()
			f, err := o.db.fs.Create(manifest.TableFileName(o.cfPhys))
			if err != nil {
				return fmt.Errorf("core: create compaction file: %w", err)
			}
			o.cfFile = f
			o.cfOffset = 0
		}
		o.curNum = num
		o.w = sstable.NewWriter(o.cfFile, o.cfOffset, o.db.sstConfig())
		return nil
	}
	f, err := o.db.fs.Create(manifest.TableFileName(num))
	if err != nil {
		return fmt.Errorf("core: create table file: %w", err)
	}
	o.curFile = f
	o.curNum = num
	o.w = sstable.NewWriter(f, 0, o.db.sstConfig())
	return nil
}

// cutTable finishes the current table. In legacy mode this is where the
// per-SSTable barrier is paid; in compaction-file mode no barrier happens
// here — finish pays a single one.
func (o *tableOutput) cutTable() error {
	info, err := o.w.Finish()
	if err != nil {
		return err
	}
	o.w = nil
	meta := &manifest.FileMeta{
		Num:      o.curNum,
		Offset:   info.Base,
		Size:     info.Size,
		Smallest: info.Smallest,
		Largest:  info.Largest,
	}
	seeks := info.Size / 16384
	if seeks < 100 {
		seeks = 100
	}
	meta.AllowedSeeks.Store(seeks)

	if o.db.cfg.compactionFileMode() {
		meta.PhysNum = o.cfPhys
		o.cfOffset += info.Size
	} else {
		meta.PhysNum = o.curNum
		if err := o.curFile.Sync(); err != nil {
			return fmt.Errorf("core: sync table %d: %w", o.curNum, err)
		}
		if err := o.curFile.Close(); err != nil {
			return fmt.Errorf("core: close table %d: %w", o.curNum, err)
		}
		o.curFile = nil
	}
	o.metas = append(o.metas, meta)
	return nil
}

// finish cuts the last table and makes everything durable: one barrier for
// the shared compaction file (BoLT), or nothing extra in legacy mode (each
// table already synced at cut).
func (o *tableOutput) finish() ([]*manifest.FileMeta, error) {
	if o.w != nil && !o.w.Empty() {
		if err := o.cutTable(); err != nil {
			return nil, err
		}
	}
	o.w = nil
	if o.cfFile != nil {
		if err := o.cfFile.Sync(); err != nil {
			return nil, fmt.Errorf("core: sync compaction file %d: %w", o.cfPhys, err)
		}
		if err := o.cfFile.Close(); err != nil {
			return nil, fmt.Errorf("core: close compaction file %d: %w", o.cfPhys, err)
		}
		o.cfFile = nil
	}
	return o.metas, nil
}

// abort releases resources after an error; partially written files are
// left for orphan collection (they are not referenced by any edit).
func (o *tableOutput) abort() {
	if o.curFile != nil {
		_ = o.curFile.Close()
		o.curFile = nil
	}
	if o.cfFile != nil {
		_ = o.cfFile.Close()
		o.cfFile = nil
	}
}

// writeTables drains it into level-appropriate output tables, keeping
// every entry (used by flush, where no version may be dropped).
func (db *DB) writeTables(it iterator.Iterator, outputLevel int) ([]*manifest.FileMeta, error) {
	out := db.newTableOutput(outputLevel, nil)
	for ok := it.First(); ok; ok = it.Next() {
		if err := out.add(it.Key(), it.Value()); err != nil {
			out.abort()
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		out.abort()
		return nil, err
	}
	if err := it.Close(); err != nil {
		out.abort()
		return nil, err
	}
	return out.finish()
}
