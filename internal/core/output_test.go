package core

import (
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func ik(u string, seq uint64) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), keys.Seq(seq), keys.KindSet)
}

// outputDB builds a DB shell good enough to drive tableOutput directly.
func outputDB(t *testing.T, cfg Config) (*DB, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	db, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, fs
}

func entriesFor(n int, prefix string) []iterator.KV {
	var out []iterator.KV
	for i := 0; i < n; i++ {
		out = append(out, iterator.KV{
			K: ik(fmt.Sprintf("%s%06d", prefix, i), uint64(i+1)),
			V: make([]byte, 100),
		})
	}
	return out
}

func TestTableOutputLegacyOneSyncPerTable(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSSTableBytes = 4 << 10
	db, _ := outputDB(t, cfg)
	syncsBefore := db.IO().Fsyncs.Load()
	metas, err := db.writeTables(iterator.NewSlice(entriesFor(300, "k")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 4 {
		t.Fatalf("expected several tables, got %d", len(metas))
	}
	syncs := db.IO().Fsyncs.Load() - syncsBefore
	if syncs != int64(len(metas)) {
		t.Fatalf("legacy mode: %d syncs for %d tables", syncs, len(metas))
	}
	// Each table owns its physical file.
	for _, m := range metas {
		if m.PhysNum != m.Num || m.Offset != 0 {
			t.Fatalf("legacy meta: %+v", m)
		}
	}
}

func TestTableOutputCompactionFileSingleSync(t *testing.T) {
	cfg := boltTestConfig()
	db, _ := outputDB(t, cfg)
	syncsBefore := db.IO().Fsyncs.Load()
	metas, err := db.writeTables(iterator.NewSlice(entriesFor(300, "k")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 4 {
		t.Fatalf("expected several logical tables, got %d", len(metas))
	}
	syncs := db.IO().Fsyncs.Load() - syncsBefore
	if syncs != 1 {
		t.Fatalf("compaction-file mode: %d syncs, want 1", syncs)
	}
	// All logical tables share one physical file at increasing offsets.
	phys := metas[0].PhysNum
	var prevEnd int64
	for i, m := range metas {
		if m.PhysNum != phys {
			t.Fatalf("table %d in different physical file", i)
		}
		if m.Offset != prevEnd {
			t.Fatalf("table %d at offset %d, want %d", i, m.Offset, prevEnd)
		}
		prevEnd = m.Offset + m.Size
	}
}

func TestTableOutputCutPoints(t *testing.T) {
	cfg := boltTestConfig()
	cfg.LogicalSSTableBytes = 1 << 20 // huge: only cut points force cuts
	db, _ := outputDB(t, cfg)
	out := db.newTableOutput(1, [][]byte{[]byte("k000100"), []byte("k000200")})
	for _, e := range entriesFor(300, "k") {
		if err := out.add(e.K, e.V); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := out.finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("cut points should force 3 tables, got %d", len(metas))
	}
	// No output table's range may span a cut point.
	bounds := []string{"k000100", "k000200"}
	for _, m := range metas {
		for _, b := range bounds {
			lo, hi := string(m.Smallest.UserKey()), string(m.Largest.UserKey())
			if lo < b && hi >= b {
				t.Fatalf("table [%s..%s] spans cut point %s", lo, hi, b)
			}
		}
	}
}

func TestTableOutputKeepsUserKeyVersionsTogether(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSSTableBytes = 4 << 10
	db, _ := outputDB(t, cfg)
	// Many versions of few user keys: versions of one key must never split
	// across tables.
	var es []iterator.KV
	seq := uint64(100000)
	for k := 0; k < 10; k++ {
		for v := 0; v < 60; v++ {
			es = append(es, iterator.KV{
				K: keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%02d", k)), keys.Seq(seq), keys.KindSet),
				V: make([]byte, 100),
			})
			seq--
		}
	}
	metas, err := db.writeTables(iterator.NewSlice(es), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 2 {
		t.Fatalf("expected multiple tables, got %d", len(metas))
	}
	for i := 1; i < len(metas); i++ {
		prev, cur := metas[i-1], metas[i]
		if keys.CompareUser(prev.Largest.UserKey(), cur.Smallest.UserKey()) >= 0 {
			t.Fatalf("user key split across tables: %s vs %s",
				prev.Largest.UserKey(), cur.Smallest.UserKey())
		}
	}
}

func TestBoltLayoutOnDisk(t *testing.T) {
	// After a real workload, BoLT's physical files must hold multiple
	// logical SSTables (the defining on-disk property).
	fs := vfs.NewMem()
	db := openTestDB(t, fs, boltTestConfig())
	defer db.Close()
	fill(t, db, 4000, 100)

	db.mu.Lock()
	v := db.vs.Current()
	perPhys := map[uint64]int{}
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			perPhys[f.PhysNum]++
		}
	}
	db.mu.Unlock()
	shared := 0
	for _, n := range perPhys {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatalf("no compaction file holds multiple logical SSTables:\n%s", db.DebugVersion())
	}
}

func TestL0UnitsCountsPhysicalFiles(t *testing.T) {
	db, _ := outputDB(t, boltTestConfig())
	db.mu.Lock()
	defer db.mu.Unlock()
	// Fabricate a version: 6 logical tables in 2 physical files.
	v := &manifest.Version{}
	for i := 0; i < 6; i++ {
		m := &manifest.FileMeta{
			Num: uint64(100 + i), PhysNum: uint64(50 + i/3),
			Offset: int64(i%3) * 1000, Size: 1000,
			Smallest: ik(fmt.Sprintf("a%d", i), 1), Largest: ik(fmt.Sprintf("b%d", i), 1),
		}
		v.Levels[0] = append(v.Levels[0], m)
	}
	edit := &manifest.VersionEdit{}
	for _, f := range v.Levels[0] {
		edit.AddFile(0, f)
	}
	if err := db.vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	if got := db.l0UnitsLocked(); got != 2 {
		t.Fatalf("l0Units = %d, want 2 physical files", got)
	}
}

func TestObsoleteWALsDeleted(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, testConfig())
	defer db.Close()
	fill(t, db, 3000, 100)
	// After flushes, only the active WAL should remain.
	names, _ := fs.List()
	logs := 0
	for _, n := range names {
		if kind, _, _ := manifest.ParseFileName(n); kind == manifest.KindLog {
			logs++
		}
	}
	if logs > 2 {
		t.Fatalf("%d WAL files on disk; obsolete logs not collected", logs)
	}
}

func TestObsoleteTablesDeletedFromDisk(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, testConfig())
	defer db.Close()
	fill(t, db, 4000, 100)
	// Tables on disk must be exactly the live set (plus nothing zombie
	// once background work quiesces; allow the zombie list to drain).
	db.mu.Lock()
	for db.compactWorkers > 0 || db.flushActive {
		db.cond.Wait()
	}
	live := map[uint64]bool{}
	v := db.vs.Current()
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			live[f.PhysNum] = true
		}
	}
	db.mu.Unlock()

	names, _ := fs.List()
	for _, n := range names {
		if kind, num, _ := manifest.ParseFileName(n); kind == manifest.KindTable {
			if !live[num] {
				t.Fatalf("orphan table file %s on disk", n)
			}
		}
	}
	if db.met.TablesDeleted.Load() == 0 {
		t.Fatal("no tables were ever deleted")
	}
}

func TestLargeValuesAndEmptyValues(t *testing.T) {
	db, _ := outputDB(t, boltTestConfig())
	// A value bigger than the logical SSTable size must still round-trip.
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i)
	}
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	fill(t, db, 1500, 100) // push them through flush/compaction
	got, err := db.Get([]byte("big"), nil)
	if err != nil || len(got) != len(big) || got[12345] != big[12345] {
		t.Fatalf("big value: len=%d err=%v", len(got), err)
	}
	got, err = db.Get([]byte("empty"), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty value: %q err=%v", got, err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.SettledCompaction = true // without logical SSTables
	if _, err := Open(vfs.NewMem(), bad); err == nil {
		t.Fatal("settled without logical sstables accepted")
	}
	bad2 := testConfig()
	bad2.Fragmented = true
	bad2.LogicalSSTableBytes = 4 << 10
	if _, err := Open(vfs.NewMem(), bad2); err == nil {
		t.Fatal("fragmented + compaction files accepted")
	}
	bad3 := testConfig()
	bad3.L0SlowdownTrigger = 20
	bad3.L0StopTrigger = 10
	if _, err := Open(vfs.NewMem(), bad3); err == nil {
		t.Fatal("slowdown > stop accepted")
	}
}
