package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestRaceStressCompactionSnapshots is the -race workhorse (CI runs this
// package with -race): writers churn a small keyspace while a goroutine
// forces whole-range compactions and another takes and releases snapshots,
// reading through them. A tiny memtable keeps flushes, WAL rotations, and
// MANIFEST commits constantly in flight so the race detector sees the
// mu/manifestMu handoffs, the lock-free memtable inserts, and the zombie
// reclaim path all interleaved.
func TestRaceStressCompactionSnapshots(t *testing.T) {
	cfg := boltTestConfig()
	cfg.MemTableBytes = 8 << 10
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()

	const (
		writers = 4
		perG    = 1200
		keys    = 400
	)
	var writersWG, auxWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perG; i++ {
				key := []byte(fmt.Sprintf("race%06d", rng.Intn(keys)))
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(key); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := db.Put(key, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Forced compactions race the background flush/compaction scheduler.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.CompactRange(nil, nil); err != nil {
				t.Errorf("CompactRange: %v", err)
				return
			}
		}
	}()

	// Snapshot churn: grab a snapshot, read through it, release it — the
	// snapshot list and visibleSeq are shared with the commit pipeline.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		rng := rand.New(rand.NewSource(999))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			snap := db.NewSnapshot()
			for j := 0; j < 20; j++ {
				key := []byte(fmt.Sprintf("race%06d", rng.Intn(keys)))
				if _, err := db.Get(key, snap); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("snapshot Get: %v", err)
					snap.Release()
					return
				}
			}
			snap.Release()
		}
	}()

	// Writers finishing ends the test; then stop the auxiliary goroutines.
	writersWG.Wait()
	close(stop)
	auxWG.Wait()

	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
