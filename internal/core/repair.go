package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/vlog"
)

// RepairReport summarizes what Repair salvaged.
type RepairReport struct {
	// TablesRecovered is the number of (logical) tables salvaged.
	TablesRecovered int
	// TablesLost counts table regions that failed validation and were
	// abandoned.
	TablesLost int
	// FilesScanned is the number of physical table files examined.
	FilesScanned int
	// Entries is the total entry count across salvaged tables.
	Entries int
	// VLogSegments is the number of value-log segments re-registered
	// (their valid CRC-walked prefix) in the rebuilt MANIFEST.
	VLogSegments int
	// MaxSeq is the highest sequence number observed.
	MaxSeq keys.Seq
}

// Repair rebuilds a database's MANIFEST from its physical table files,
// for use when CURRENT or the MANIFEST is lost or corrupt. It walks each
// physical file backwards from its end — a table's footer pins the index
// block as the last block before it, so the table's total size (and hence
// the previous table's boundary) is recoverable without any metadata.
// Every salvaged table is placed in level 0; point reads tolerate this
// because level-0 lookups select versions by sequence number, and normal
// compaction re-sorts the tree afterwards.
//
// Limitations: inside a BoLT compaction file, tables *before* a
// hole-punched (reclaimed) region cannot be chained to and are lost —
// their contents were already compacted into newer files, so this loses
// only already-dead data unless the database was corrupted mid-write.
// WAL files are left in place; the rebuilt MANIFEST records log number 0
// so recovery replays every log present.
func Repair(fs vfs.FS, cfg Config) (*RepairReport, error) {
	cfg.ApplyDefaults()
	report := &RepairReport{}

	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("core: repair list: %w", err)
	}

	type salvaged struct {
		meta   *manifest.FileMeta
		maxSeq keys.Seq
	}
	var tables []salvaged
	var maxPhys uint64
	var salvagedFiles []string
	var vlogSegs []manifest.VLogSegmentEdit

	for _, name := range names {
		kind, num, ok := manifest.ParseFileName(name)
		if !ok {
			continue
		}
		switch kind {
		case manifest.KindManifest, manifest.KindCurrent, manifest.KindTemp:
			// Stale or damaged metadata: remove; a fresh MANIFEST follows.
			_ = fs.Remove(name)
			continue
		case manifest.KindValueLog:
			// Re-register the segment's CRC-valid prefix so salvaged
			// pointer entries resolve again. The GC watermark restarts at
			// zero: collecting already-dead ranges again is wasted work at
			// worst, never wrong.
			if num > maxPhys {
				maxPhys = num
			}
			report.FilesScanned++
			if valid := vlogValidLength(fs, name); valid > 0 {
				vlogSegs = append(vlogSegs, manifest.VLogSegmentEdit{Num: num, Size: valid})
				salvagedFiles = append(salvagedFiles, name)
			}
			continue
		case manifest.KindTable:
		default:
			continue
		}
		if num > maxPhys {
			maxPhys = num
		}
		report.FilesScanned++
		salv, lost, err := salvageFile(fs, name, num)
		if err != nil {
			return nil, err
		}
		report.TablesLost += lost
		if len(salv) > 0 {
			salvagedFiles = append(salvagedFiles, name)
		}
		for _, s := range salv {
			tables = append(tables, salvaged{meta: s.meta, maxSeq: s.maxSeq})
			report.Entries += int(s.entries)
			if s.maxSeq > report.MaxSeq {
				report.MaxSeq = s.maxSeq
			}
		}
	}

	// First barrier before the second: the salvaged bytes were readable,
	// but after a crash readable does not mean durable (they may exist in
	// the page cache only). Sync every physical file the repaired MANIFEST
	// is about to validate before LogAndApply pays the MANIFEST barrier.
	for _, name := range salvagedFiles {
		f, err := fs.Open(name)
		if err != nil {
			return nil, fmt.Errorf("core: repair reopen %q: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("core: repair sync %q: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("core: repair close %q: %w", name, err)
		}
	}
	report.TablesRecovered = len(tables)

	// Order by newest data last so the (cosmetic) level-0 ordering matches
	// flush recency; renumber logical tables above every physical number.
	sort.Slice(tables, func(i, j int) bool { return tables[i].maxSeq < tables[j].maxSeq })
	nextNum := maxPhys + 1
	edit := &manifest.VersionEdit{}
	for _, t := range tables {
		t.meta.Num = nextNum
		nextNum++
		edit.AddFile(0, t.meta)
	}
	for _, s := range vlogSegs {
		edit.AddVLogSegment(s)
	}
	report.VLogSegments = len(vlogSegs)

	vs, err := manifest.Create(fs)
	if err != nil {
		return nil, fmt.Errorf("core: repair manifest: %w", err)
	}
	defer vs.Close()
	vs.MarkFileNumUsed(nextNum)
	vs.SetLastSeq(uint64(report.MaxSeq))
	logNum := uint64(0)
	edit.LogNum = &logNum
	if err := vs.LogAndApply(edit); err != nil {
		return nil, fmt.Errorf("core: repair commit: %w", err)
	}
	return report, nil
}

// vlogValidLength returns the CRC-walked valid prefix of a value-log
// segment (0 if unreadable). Hole-punched payloads are traversed; a torn
// or rotted header stops the walk.
func vlogValidLength(fs vfs.FS, name string) int64 {
	f, err := fs.Open(name)
	if err != nil {
		return 0
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0
	}
	return vlog.ValidLength(f, 0, size)
}

type salvagedTable struct {
	meta    *manifest.FileMeta
	maxSeq  keys.Seq
	entries int64
}

// salvageFile walks physical table file name backwards, validating each
// table region fully (every block checksum, every entry).
func salvageFile(fs vfs.FS, name string, physNum uint64) ([]salvagedTable, int, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, 0, fmt.Errorf("core: repair open %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, 1, nil
	}

	var out []salvagedTable
	lost := 0
	end := size
	for end >= sstable.FooterSize {
		base, ok := tableBaseFromFooter(f, end)
		if !ok || base < 0 {
			// No valid table ends here: whatever precedes is unreachable.
			if end > 0 {
				lost++
			}
			break
		}
		s, err := validateTable(f, physNum, base, end-base)
		if err != nil {
			lost++
			break
		}
		out = append(out, s)
		end = base
	}
	return out, lost, nil
}

// tableBaseFromFooter reads the footer ending at end and derives the
// table's base offset: the index block is always the final block before
// the footer, so base = end - (indexOff + indexLen + trailer + footer).
func tableBaseFromFooter(f vfs.File, end int64) (int64, bool) {
	var footer [sstable.FooterSize]byte
	if err := vfs.ReadFull(f, footer[:], end-sstable.FooterSize); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint64(footer[40:]) != sstable.Magic {
		return 0, false
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	tableSize := indexOff + indexLen + 4 + sstable.FooterSize
	if tableSize <= 0 || tableSize > end {
		return 0, false
	}
	return end - tableSize, true
}

// validateTable opens and fully verifies the table at (base, size),
// returning its reconstructed metadata. Verification is VerifyTable's —
// every block checksum (bloom included), restart structure, key ordering,
// and the footer entry count — not just the open-time header checks, so a
// table with a rotted data block is abandoned rather than re-committed.
func validateTable(f vfs.File, physNum uint64, base, size int64) (salvagedTable, error) {
	r, err := sstable.OpenReader(f, 0, physNum, base, size, nil)
	if err != nil {
		return salvagedTable{}, err
	}
	if err := r.VerifyTable(); err != nil {
		return salvagedTable{}, err
	}
	it := r.NewIter(sstable.IterOpts{Readahead: compactionReadahead})
	defer it.Close()
	var (
		smallest, largest keys.InternalKey
		maxSeq            keys.Seq
		entries           int64
	)
	for ok := it.First(); ok; ok = it.Next() {
		ik := it.Key()
		if smallest == nil {
			smallest = append(keys.InternalKey(nil), ik...)
		}
		largest = append(largest[:0], ik...)
		if s := ik.Seq(); s > maxSeq {
			maxSeq = s
		}
		entries++
	}
	if err := it.Err(); err != nil {
		return salvagedTable{}, err
	}
	if entries == 0 {
		return salvagedTable{}, fmt.Errorf("core: repair: empty table region")
	}
	meta := &manifest.FileMeta{
		PhysNum:  physNum,
		Offset:   base,
		Size:     size,
		Smallest: smallest,
		Largest:  append(keys.InternalKey(nil), largest...),
	}
	meta.AllowedSeeks.Store(100)
	return salvagedTable{meta: meta, maxSeq: maxSeq, entries: entries}, nil
}
