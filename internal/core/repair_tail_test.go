package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// manifestNames lists the MANIFEST files present on fs.
func manifestNames(t *testing.T, fs vfs.FS) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if kind, _, ok := manifest.ParseFileName(n); ok && kind == manifest.KindManifest {
			out = append(out, n)
		}
	}
	return out
}

// TestRepairTornWALTail crashes with a torn tail on a WAL whose final sync
// failed, loses CURRENT, and verifies Repair + reopen keep every key that
// was acknowledged under SyncWAL.
func TestRepairTornWALTail(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt"} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			if name == "bolt" {
				cfg = boltTestConfig()
			}
			cfg.SyncWAL = true
			efs := vfs.NewErrorFS(vfs.NewMem())
			db := openTestDB(t, efs, cfg)

			const n = 300
			fill(t, db, n, 320) // several flushes at this scale
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}

			// The next WAL sync fails permanently: one more Put is torn.
			efs.SetInjector(vfs.FilterName(
				func(fn string) bool { return strings.HasSuffix(fn, ".log") },
				vfs.FailNth(vfs.OpSync, efs.OpCount(vfs.OpSync)+1, true)))
			tornKey := []byte("torn-key")
			if err := db.Put(tornKey, []byte("torn-value")); err == nil {
				t.Fatal("Put with failing WAL sync = nil, want error")
			}

			img := efs.TornCrashImage(rand.New(rand.NewSource(42)))
			damage(t, img) // lose CURRENT and all MANIFESTs

			if _, err := Open(img, cfg); err == nil {
				t.Fatal("open succeeded without CURRENT (precondition)")
			}
			report, err := Repair(img, cfg)
			if err != nil {
				t.Fatalf("Repair: %v", err)
			}
			if report.TablesRecovered == 0 {
				t.Fatalf("nothing salvaged: %+v", report)
			}

			db2, err := Open(img, cfg)
			if err != nil {
				t.Fatalf("reopen after repair: %v", err)
			}
			defer db2.Close()
			if err := db2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key%08d", i))
				if _, err := db2.Get(key, nil); err != nil {
					t.Fatalf("acked key %s lost after repair: %v", key, err)
				}
			}
			// The unacknowledged key may or may not have survived; if it did,
			// its value must be intact (the torn record failed its CRC
			// otherwise and replay stopped before it).
			if v, err := db2.Get(tornKey, nil); err == nil {
				if string(v) != "torn-value" {
					t.Fatalf("torn key surfaced with mangled value %q", v)
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("torn key lookup: %v", err)
			}
		})
	}
}

// TestOpenToleratesTornManifestTail documents that a garbage suffix on the
// MANIFEST (a torn final record) does not need Repair: the non-strict
// replay stops cleanly at the first bad record.
func TestOpenToleratesTornManifestTail(t *testing.T) {
	cfg := testConfig()
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	const n = 500
	fill(t, db, n, 100)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mn := range manifestNames(t, fs) {
		f, err := fs.Open(mn)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(bytes.Repeat([]byte{0xFF, 0x00, 0xA5}, 40)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	db2, err := Open(fs, cfg)
	if err != nil {
		t.Fatalf("open with torn MANIFEST tail: %v", err)
	}
	defer db2.Close()
	checkFilled(t, db2, n, 100)
}

// TestRepairGarbageManifest destroys the MANIFEST contents entirely (not
// just the tail) and verifies Open fails, Repair rebuilds, and every
// durable key survives.
func TestRepairGarbageManifest(t *testing.T) {
	cfg := boltTestConfig()
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	const n = 500
	fill(t, db, n, 100)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mn := range manifestNames(t, fs) {
		f, err := fs.Create(mn) // truncates
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(bytes.Repeat([]byte{0xDE, 0xAD}, 200)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := Open(fs, cfg); err == nil {
		t.Fatal("open succeeded on a wholly corrupt MANIFEST (precondition)")
	}
	if _, err := Repair(fs, cfg); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	db2, err := Open(fs, cfg)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer db2.Close()
	if err := db2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkFilled(t, db2, n, 100)
}
