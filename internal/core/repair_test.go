package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// damage removes CURRENT and all MANIFEST files.
func damage(t *testing.T, fs vfs.FS) {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		kind, _, ok := manifest.ParseFileName(n)
		if ok && (kind == manifest.KindCurrent || kind == manifest.KindManifest) {
			if err := fs.Remove(n); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRepairAfterManifestLoss(t *testing.T) {
	for _, name := range []string{"leveldb", "bolt"} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			if name == "bolt" {
				cfg = boltTestConfig()
			}
			cfg.SyncWAL = true
			fs := vfs.NewMem()
			db := openTestDB(t, fs, cfg)
			const n = 2500
			fill(t, db, n, 100)
			// Settle so most data is in tables (WAL replay covers the rest).
			db.WaitIdle()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			damage(t, fs)
			if _, err := Open(fs, cfg); err == nil {
				t.Fatal("open should fail without CURRENT... (precondition)")
			}

			report, err := Repair(fs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if report.TablesRecovered == 0 || report.Entries == 0 {
				t.Fatalf("nothing salvaged: %+v", report)
			}

			db2, err := Open(fs, cfg)
			if err != nil {
				t.Fatalf("open after repair: %v", err)
			}
			defer db2.Close()
			checkFilled(t, db2, n, 100)
			if err := db2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The repaired store must keep working.
			if err := db2.Put([]byte("post-repair"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
			fill(t, db2, 1000, 100)
			checkFilled(t, db2, 1000, 100)
		})
	}
}

func TestRepairPreservesNewestVersions(t *testing.T) {
	// Overwrites and deletes must resolve correctly after repair even
	// though every salvaged table lands in level 0.
	cfg := boltTestConfig()
	cfg.SyncWAL = true
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 800; i++ {
			db.Put([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("gen%d", gen)))
		}
	}
	for i := 0; i < 800; i += 5 {
		db.Delete([]byte(fmt.Sprintf("key%06d", i)))
	}
	db.WaitIdle()
	db.Close()

	damage(t, fs)
	if _, err := Repair(fs, cfg); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 800; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("key%06d", i)), nil)
		if i%5 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key%06d resurfaced after repair: %q %v", i, v, err)
			}
		} else if err != nil || string(v) != "gen2" {
			t.Fatalf("key%06d = %q, %v after repair", i, v, err)
		}
	}
}

func TestRepairSkipsCorruptTable(t *testing.T) {
	cfg := testConfig()
	cfg.SyncWAL = true
	fs := vfs.NewMem()
	db := openTestDB(t, fs, cfg)
	fill(t, db, 2000, 100)
	db.WaitIdle()
	db.Close()

	// Corrupt one table file's interior.
	names, _ := fs.List()
	for _, n := range names {
		if kind, _, _ := manifest.ParseFileName(n); kind == manifest.KindTable {
			data, _ := vfs.ReadWholeFile(fs, n)
			if len(data) > 100 {
				data[50] ^= 0xff
				vfs.WriteFile(fs, n, data)
				break
			}
		}
	}
	damage(t, fs)
	report, err := Repair(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.TablesLost == 0 {
		t.Fatal("corrupt table not detected")
	}
	if report.TablesRecovered == 0 {
		t.Fatal("healthy tables should still be salvaged")
	}
	db2, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Reads must work; some keys from the corrupt table may be missing.
	found := 0
	for i := 0; i < 2000; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("key%08d", i)), nil); err == nil {
			found++
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if found < 1000 {
		t.Fatalf("only %d/2000 keys survived a single-table corruption", found)
	}
}

func TestRepairEmptyDirectory(t *testing.T) {
	fs := vfs.NewMem()
	report, err := Repair(fs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.TablesRecovered != 0 {
		t.Fatalf("salvaged tables from nothing: %+v", report)
	}
	db, err := Open(fs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
