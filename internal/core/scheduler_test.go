package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/metrics"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// TestParallelCompactionStress drives the multi-worker scheduler hard:
// several writer goroutines against a tiny memtable with four compaction
// workers, then verifies the data, the job/worker stamps on every
// background event, and that the in-flight registry drains to empty.
func TestParallelCompactionStress(t *testing.T) {
	cfg := boltTestConfig()
	cfg.MaxBackgroundCompactions = 4
	cfg.EventLogSize = 4096
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()

	// Interleaved key ranges from concurrent writers create compaction
	// debt across disjoint spans — the shape parallel picking exploits.
	const writers, perWriter = 4, 1500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, 120)
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := db.Put(k, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.WaitIdle()

	if n := db.InFlightCompactions(); n != 0 {
		t.Fatalf("in-flight gauge = %d after WaitIdle", n)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 97 {
			if _, err := db.Get([]byte(fmt.Sprintf("w%d-%06d", w, i)), nil); err != nil {
				t.Fatalf("w%d-%06d lost: %v", w, i, err)
			}
		}
	}

	// Every background event must carry a job ID and a worker in
	// [0, MaxBackgroundCompactions]; start events must never reuse a job.
	seenJobs := map[uint64]bool{}
	workersSeen := map[int]bool{}
	for _, e := range db.Events() {
		switch e.Type {
		case events.TypeFlushStart, events.TypeFlushEnd,
			events.TypeCompactionStart, events.TypeCompactionEnd:
		default:
			continue
		}
		if e.Job == 0 {
			t.Fatalf("background event without job ID: %s", e.String())
		}
		if e.Worker < 0 || e.Worker > cfg.MaxBackgroundCompactions {
			t.Fatalf("worker ID %d out of range: %s", e.Worker, e.String())
		}
		if e.Type == events.TypeFlushStart || e.Type == events.TypeCompactionStart {
			if seenJobs[e.Job] {
				t.Fatalf("job ID %d reused", e.Job)
			}
			seenJobs[e.Job] = true
		}
		workersSeen[e.Worker] = true
	}
	if len(seenJobs) == 0 {
		t.Fatal("no background work recorded")
	}
	t.Logf("%d jobs across workers %v", len(seenJobs), workersSeen)

	// Reason counters must account for every compaction.
	snap := db.Metrics().Snapshot()
	var byReason int64
	for r := range snap.CompactionsByReason {
		byReason += snap.CompactionsByReason[r]
	}
	if total := snap.Compactions; byReason != total {
		t.Fatalf("reason counters sum to %d, total compactions %d", byReason, total)
	}
}

// TestManualCompactionWithParallelWorkers races CompactRange against
// pool workers: the manual latch must drain them, run exclusively, and
// count into the manual reason bucket.
func TestManualCompactionWithParallelWorkers(t *testing.T) {
	cfg := boltTestConfig()
	cfg.MaxBackgroundCompactions = 4
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()

	fill(t, db, 3000, 100)
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := db.InFlightCompactions(); n != 0 {
		t.Fatalf("in-flight gauge = %d after CompactRange", n)
	}
	snap := db.Metrics().Snapshot()
	if snap.CompactionsByReason[metrics.CompactionManual] == 0 {
		t.Fatal("manual compactions not counted in reason bucket")
	}
	checkFilled(t, db, 3000, 100)
}

// TestNegativeMaxBackgroundCompactionsSerializes pins the escape hatch:
// a negative setting restores a single worker.
func TestNegativeMaxBackgroundCompactionsSerializes(t *testing.T) {
	cfg := boltTestConfig()
	cfg.MaxBackgroundCompactions = -1
	db := openTestDB(t, vfs.NewMem(), cfg)
	defer db.Close()
	if db.cfg.MaxBackgroundCompactions != 1 {
		t.Fatalf("negative setting resolved to %d workers", db.cfg.MaxBackgroundCompactions)
	}
	fill(t, db, 2000, 100)
	db.WaitIdle()
	for _, e := range db.Events() {
		if e.Type == events.TypeCompactionStart && e.Worker > 1 {
			t.Fatalf("worker %d spawned under serialized config", e.Worker)
		}
	}
	checkFilled(t, db, 2000, 100)
}
