package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
)

// RangeCorruptError is returned by reads whose key falls inside the span
// of a quarantined (corrupt) table. The error names the unavailable
// user-key range so callers can route around it: keys outside the span —
// and all writes — keep working, and the range recovers once the salvage
// compaction rewrites the table's readable blocks.
type RangeCorruptError struct {
	// Smallest and Largest bound the unavailable user-key span (inclusive).
	Smallest, Largest []byte
	// Level, Table, and PhysNum locate the quarantined table.
	Level   int
	Table   uint64
	PhysNum uint64
	// Cause is the corruption finding that triggered the quarantine; nil
	// when the quarantine was inherited from the manifest (the finding
	// happened before a restart or on another read).
	Cause error
}

// Error describes the unavailable range.
func (e *RangeCorruptError) Error() string {
	return fmt.Sprintf("core: key range [%q, %q] quarantined: table %d (phys file %d, L%d) is corrupt",
		e.Smallest, e.Largest, e.Table, e.PhysNum, e.Level)
}

// Unwrap matches errors.Is(err, sstable.ErrCorrupt) and exposes the cause.
func (e *RangeCorruptError) Unwrap() []error {
	if e.Cause != nil {
		return []error{sstable.ErrCorrupt, e.Cause}
	}
	return []error{sstable.ErrCorrupt}
}

// rangeCorruptError builds the typed error for a quarantined table.
func rangeCorruptError(level int, f *manifest.FileMeta, cause error) *RangeCorruptError {
	return &RangeCorruptError{
		Smallest: append([]byte(nil), f.Smallest.UserKey()...),
		Largest:  append([]byte(nil), f.Largest.UserKey()...),
		Level:    level,
		Table:    f.Num,
		PhysNum:  f.PhysNum,
		Cause:    cause,
	}
}

// quarantineTable records table f as corrupt in the manifest (mu not held).
func (db *DB) quarantineTable(level int, f *manifest.FileMeta, cause error) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.quarantineTableLocked(level, f, cause)
}

// quarantineTableLocked commits a quarantine mark for f: a manifest edit
// (so the mark survives restarts), the quarantine event, and a scheduler
// kick so the salvage compaction is picked promptly. Reports whether this
// call quarantined the table; false when it is already quarantined (or a
// commit is pending on another goroutine), no longer in the version, or
// the engine is stopping. Called with mu held; mu is released during the
// MANIFEST commit and the event emission.
func (db *DB) quarantineTableLocked(level int, f *manifest.FileMeta, cause error) bool {
	if db.bgStoppedLocked() {
		return false
	}
	cur := db.vs.Current()
	if cur.IsQuarantined(f.Num) || db.quarantinePending[f.Num] {
		return false
	}
	present := false
	for _, g := range cur.Levels[level] {
		if g.Num == f.Num {
			present = true
			break
		}
	}
	if !present {
		return false
	}
	db.quarantinePending[f.Num] = true
	edit := &manifest.VersionEdit{}
	edit.QuarantineFile(f.Num)
	err := db.logAndApplyLocked(edit)
	delete(db.quarantinePending, f.Num)
	if err != nil {
		// The quarantine could not be made durable. Do not degrade: the
		// read that found the corruption still fails loudly, and the next
		// finding (or scrub pass) retries the commit on a fresh MANIFEST
		// (logAndApplyLocked forced a rotation).
		return false
	}
	db.met.ScrubCorruptions.Add(1)
	db.met.Quarantines.Add(1)
	db.mu.Unlock()
	db.ev.Emit(events.Event{
		Type:  events.TypeQuarantine,
		Level: level,
		File:  f.PhysNum,
		Err:   cause.Error(),
	})
	db.mu.Lock()
	db.maybeScheduleWorkLocked()
	db.cond.Broadcast()
	return true
}

// maybeQuarantineRead is the read path's lazy detection: a table-corruption
// finding quarantines the owning table and converts to the typed range
// error; any other error passes through. Called without mu.
func (db *DB) maybeQuarantineRead(level int, f *manifest.FileMeta, err error) error {
	var ce *sstable.CorruptionError
	if !errors.As(err, &ce) {
		return err
	}
	db.quarantineTable(level, f, err)
	return rangeCorruptError(level, f, err)
}

// quarantineCorruptLocked inspects a failed background compaction's error:
// a table-corruption finding quarantines the owning table (containment)
// instead of burning the retry budget toward a whole-DB read-only
// degradation. Reports whether the error was absorbed this way.
func (db *DB) quarantineCorruptLocked(err error) bool {
	var ce *sstable.CorruptionError
	if !errors.As(err, &ce) {
		return false
	}
	v := db.vs.Current()
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if f.Num == ce.TableID {
				return db.quarantineTableLocked(level, f, err)
			}
		}
	}
	return false
}

// scrubLoop is the background integrity scrubber (Config.ScrubInterval > 0):
// every interval it runs one full pass over the live tables. It exits when
// Close closes scrubStop.
func (db *DB) scrubLoop() {
	t := time.NewTicker(db.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-db.scrubStop:
			db.mu.Lock()
			db.goros.done("scrubLoop")
			db.scrubActive = false
			db.cond.Broadcast()
			db.mu.Unlock()
			return
		case <-t.C:
			_ = db.Scrub()
		}
	}
}

// Scrub runs one synchronous integrity pass: every live, unreserved,
// not-yet-quarantined table is verified block by block against its
// checksums (bypassing the block cache, so at-rest bit rot is seen even
// for cached data). Corrupt tables are quarantined for salvage. The pass
// throttles to Config.ScrubBytesPerSec and skips tables reserved by
// in-flight compactions — their data is being rewritten anyway, and the
// version pin below keeps every scanned table's file alive regardless.
func (db *DB) Scrub() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	v := db.vs.Current()
	v.Ref()
	db.mu.Unlock()
	defer v.Unref()

	type target struct {
		level int
		f     *manifest.FileMeta
	}
	var targets []target
	var totalBytes int64
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if v.IsQuarantined(f.Num) {
				continue
			}
			targets = append(targets, target{level, f})
			totalBytes += f.Size
		}
	}
	db.ev.Emit(events.Event{Type: events.TypeScrubStart, Inputs: len(targets), BytesIn: totalBytes})
	start := time.Now()

	var (
		verified  int
		bytesRead int64
		findings  int
	)
	for _, t := range targets {
		db.mu.Lock()
		stop := db.closed
		skip := db.inflight.FileReserved(t.f.Num) || db.vs.Current().IsQuarantined(t.f.Num)
		db.mu.Unlock()
		if stop {
			break
		}
		if skip {
			continue
		}
		verr := db.scrubTable(t.f)
		verified++
		bytesRead += t.f.Size
		db.met.ScrubTables.Add(1)
		db.met.ScrubBytes.Add(t.f.Size)
		if verr != nil && errors.Is(verr, sstable.ErrCorrupt) {
			findings++
			db.ev.Emit(events.Event{
				Type:  events.TypeScrubFinding,
				Level: t.level,
				File:  t.f.PhysNum,
				Err:   verr.Error(),
			})
			db.quarantineTable(t.level, t.f, verr)
		}
		db.scrubThrottle(t.f.Size)
	}
	db.met.ScrubPasses.Add(1)
	db.ev.Emit(events.Event{
		Type:    events.TypeScrubEnd,
		Inputs:  verified,
		BytesIn: bytesRead,
		Outputs: findings,
		Dur:     time.Since(start),
	})
	return nil
}

// scrubTable verifies one table. A table-open failure counts as a finding
// only when it classifies as corruption; transient open errors are skipped
// (the next pass retries).
func (db *DB) scrubTable(f *manifest.FileMeta) error {
	r, release, err := db.tableCache.Get(f)
	if err != nil {
		return err
	}
	defer release()
	return r.VerifyTable()
}

// scrubThrottle sleeps long enough that n verified bytes stay under the
// configured scrub bandwidth.
func (db *DB) scrubThrottle(n int64) {
	if db.cfg.ScrubBytesPerSec <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / float64(db.cfg.ScrubBytesPerSec) * float64(time.Second))
	if d <= 0 {
		return
	}
	select {
	case <-db.scrubStop:
	case <-time.After(d):
	}
}
