package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// settleAndPickVictim fills the store, settles everything below L0, and
// returns the level and table the test will rot: a mid-level table so both
// sides of its span have live neighbors.
func settleAndPickVictim(t *testing.T, db *DB, n int) (level int, victim *manifest.FileMeta) {
	t.Helper()
	fill(t, db, n, 100)
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.vs.Current()
	for l := manifest.NumLevels - 1; l >= 1; l-- {
		if len(v.Levels[l]) >= 3 {
			return l, v.Levels[l][len(v.Levels[l])/2]
		}
	}
	t.Fatalf("no settled level with enough tables:\n%s", v.DebugString())
	return 0, nil
}

// rotDataBlock flips one at-rest byte in the middle of the table's data
// region — far from both the footer and the block the span boundaries
// live in.
func rotDataBlock(t *testing.T, fs *vfs.ErrorFS, f *manifest.FileMeta) {
	t.Helper()
	if err := fs.CorruptFileRange(manifest.TableFileName(f.PhysNum), f.Offset+f.Size/2, 1); err != nil {
		t.Fatal(err)
	}
}

// holdScheduler stops new background picks so a quarantine window stays
// observable; the returned func releases the scheduler again.
func holdScheduler(db *DB) func() {
	db.mu.Lock()
	db.manualActive = true
	db.mu.Unlock()
	return func() {
		db.mu.Lock()
		db.manualActive = false
		db.maybeScheduleWorkLocked()
		db.cond.Broadcast()
		db.mu.Unlock()
	}
}

// TestScrubQuarantineSalvageEndToEnd is the PR's acceptance test: one data
// block of a settled table rots at rest under live traffic; the scrubber
// (not a read) detects it, reads overlapping the table's span fail with the
// typed range error while everything else keeps serving reads AND writes,
// and the salvage compaction clears the quarantine losing only the corrupt
// block's entries.
func TestScrubQuarantineSalvageEndToEnd(t *testing.T) {
	fs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, fs, testConfig())
	defer db.Close()

	const n = 3000
	level, victim := settleAndPickVictim(t, db, n)
	lo := string(victim.Smallest.UserKey())
	hi := string(victim.Largest.UserKey())

	release := holdScheduler(db)
	rotDataBlock(t, fs, victim)

	// Detection: the scrubber finds the rot first — no read has touched the
	// corrupt block — because VerifyTable bypasses the block cache.
	if err := db.Scrub(); err != nil {
		t.Fatal(err)
	}
	if got := db.met.ScrubCorruptions.Load(); got != 1 {
		t.Fatalf("scrub corruptions = %d, want 1", got)
	}
	if got := db.met.ScrubPasses.Load(); got != 1 {
		t.Fatalf("scrub passes = %d, want 1", got)
	}
	if got := db.QuarantinedTables(); got != 1 {
		t.Fatalf("quarantined tables = %d, want 1", got)
	}

	// Containment: a key inside the quarantined span fails typed — the
	// error names the span, classifies as corruption, and never serves
	// garbage. Keys in other tables and new writes are untouched.
	_, err := db.Get([]byte(lo), nil)
	var rc *RangeCorruptError
	if !errors.As(err, &rc) {
		t.Fatalf("inside-span Get = %v, want RangeCorruptError", err)
	}
	if !errors.Is(err, sstable.ErrCorrupt) {
		t.Fatalf("range error does not classify as corruption: %v", err)
	}
	if string(rc.Smallest) != lo || string(rc.Largest) != hi || rc.Level != level || rc.Table != victim.Num {
		t.Fatalf("range error misattributed: %+v, want [%q,%q] L%d table %d", rc, lo, hi, level, victim.Num)
	}
	if _, err := db.Get([]byte("key00000000"), nil); err != nil && lo != "key00000000" {
		t.Fatalf("outside-span Get failed: %v", err)
	}
	if err := db.Put([]byte("live-write"), []byte("ok")); err != nil {
		t.Fatalf("write during quarantine failed: %v", err)
	}
	if v, err := db.Get([]byte("live-write"), nil); err != nil || string(v) != "ok" {
		t.Fatalf("read-back during quarantine = %q, %v", v, err)
	}
	var m strings.Builder
	if err := db.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "bolt_quarantined_tables 1") ||
		!strings.Contains(m.String(), "bolt_scrub_corruptions_total 1") {
		t.Fatalf("metrics missing quarantine transitions:\n%s", m.String())
	}

	// Salvage: release the scheduler; the quarantined table outranks every
	// size trigger, gets rewritten from its still-checksummed blocks, and
	// the deletion clears the mark.
	release()
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if got := db.QuarantinedTables(); got != 0 {
		t.Fatalf("quarantine not cleared by salvage: %d\n%s", got, db.DebugVersion())
	}
	if got := db.met.Salvages.Load(); got != 1 {
		t.Fatalf("salvages = %d, want 1", got)
	}
	if got := db.met.SalvageSkipped.Load(); got != 1 {
		t.Fatalf("salvage skipped %d blocks, want 1", got)
	}

	// Bounded blast radius: the only loss is the corrupt block's entries,
	// all of them inside the victim's span; every other key still has its
	// exact value and no key anywhere reads wrong.
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	lost := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%08d", i)
		got, err := db.Get([]byte(k), nil)
		switch {
		case err == nil:
			if string(got) != string(val) {
				t.Fatalf("key %s reads wrong value after salvage", k)
			}
		case errors.Is(err, ErrNotFound):
			lost++
			if k < lo || k > hi {
				t.Fatalf("key %s lost outside the quarantined span [%s, %s]", k, lo, hi)
			}
		default:
			t.Fatalf("Get %s after salvage: %v", k, err)
		}
	}
	// One ~1 KiB block of ~115 B entries: a handful of keys, never zero
	// (the rotted byte sat in a live data block).
	if lost == 0 || lost > 32 {
		t.Fatalf("lost %d keys, want a single block's worth", lost)
	}
	m.Reset()
	if err := db.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "bolt_quarantined_tables 0") ||
		!strings.Contains(m.String(), "bolt_salvages_total 1") {
		t.Fatalf("metrics missing salvage transitions:\n%s", m.String())
	}
}

// TestReadPathQuarantinesLazily drops the scrubber: the first read that
// hits the rotted block both returns the typed error and quarantines the
// table, so every later overlapping read fails fast without re-reading
// rotted sectors.
func TestReadPathQuarantinesLazily(t *testing.T) {
	fs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, fs, testConfig())
	defer db.Close()

	_, victim := settleAndPickVictim(t, db, 3000)
	lo := string(victim.Smallest.UserKey())
	hi := string(victim.Largest.UserKey())

	release := holdScheduler(db)
	rotDataBlock(t, fs, victim)

	// Walk the victim's span; the key whose lookup lands in the rotted
	// block converts to the typed error and quarantines the table. Keys in
	// intact blocks before it read fine (block-granular until detection).
	var hit error
	var rc *RangeCorruptError
	for i := 0; i < 3000 && hit == nil; i++ {
		k := fmt.Sprintf("key%08d", i)
		if k < lo || k > hi {
			continue
		}
		if _, err := db.Get([]byte(k), nil); err != nil {
			hit = err
		}
	}
	if !errors.As(hit, &rc) {
		t.Fatalf("span walk error = %v, want RangeCorruptError", hit)
	}
	if rc.Cause == nil {
		t.Fatal("read-path finding lost its cause")
	}
	if got := db.QuarantinedTables(); got != 1 {
		t.Fatalf("quarantined tables = %d, want 1", got)
	}
	// Now the WHOLE span fails fast, even blocks that read fine above.
	if _, err := db.Get([]byte(lo), nil); !errors.As(err, &rc) {
		t.Fatalf("post-quarantine inside-span Get = %v", err)
	}

	release()
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if got := db.QuarantinedTables(); got != 0 {
		t.Fatalf("salvage did not clear quarantine: %d", got)
	}
	if _, err := db.Get([]byte(lo), nil); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatalf("span still failing after salvage: %v", err)
	}
}

// TestIteratorSurfacesQuarantine: iterators opened over a quarantined
// version fail with the typed error when they reach the span instead of
// silently skipping it.
func TestIteratorSurfacesQuarantine(t *testing.T) {
	fs := vfs.NewErrorFS(vfs.NewMem())
	db := openTestDB(t, fs, testConfig())
	defer db.Close()

	_, victim := settleAndPickVictim(t, db, 3000)
	release := holdScheduler(db)
	defer release()
	rotDataBlock(t, fs, victim)
	if err := db.Scrub(); err != nil {
		t.Fatal(err)
	}

	it := db.NewIter(nil)
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
	}
	var rc *RangeCorruptError
	if !errors.As(it.Err(), &rc) {
		t.Fatalf("full scan over quarantined span: err = %v, want RangeCorruptError", it.Err())
	}
}

// TestScrubberBackgroundLoop: with ScrubInterval set, the background loop
// finds rot with no read or manual pass, and Close tears the loop down.
func TestScrubberBackgroundLoop(t *testing.T) {
	fs := vfs.NewErrorFS(vfs.NewMem())
	cfg := testConfig()
	cfg.ScrubInterval = time.Millisecond
	cfg.ScrubBytesPerSec = -1 // unthrottled: the deadline below is the test budget
	db := openTestDB(t, fs, cfg)
	defer db.Close()

	_, victim := settleAndPickVictim(t, db, 3000)
	rotDataBlock(t, fs, victim)

	deadline := time.Now().Add(10 * time.Second)
	for db.met.Quarantines.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never found the rot (passes=%d)", db.met.ScrubPasses.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if got := db.QuarantinedTables(); got != 0 {
		t.Fatalf("salvage did not clear quarantine: %d", got)
	}
}

// TestScrubCleanStoreFindsNothing: a scrub pass over an intact store is a
// no-op beyond counters.
func TestScrubCleanStoreFindsNothing(t *testing.T) {
	db := openTestDB(t, vfs.NewMem(), testConfig())
	defer db.Close()
	settleAndPickVictim(t, db, 1000)
	if err := db.Scrub(); err != nil {
		t.Fatal(err)
	}
	if db.met.ScrubCorruptions.Load() != 0 || db.QuarantinedTables() != 0 {
		t.Fatalf("clean store produced findings: corruptions=%d quarantined=%d",
			db.met.ScrubCorruptions.Load(), db.QuarantinedTables())
	}
	if db.met.ScrubTables.Load() == 0 || db.met.ScrubBytes.Load() == 0 {
		t.Fatal("scrub pass verified nothing")
	}
}

// TestQuarantineSurvivesReopen: the manifest mark carries across a restart,
// so a reopened store refuses the span until salvage — it does not forget
// the corruption and serve rotted bytes.
func TestQuarantineSurvivesReopen(t *testing.T) {
	mem := vfs.NewMem()
	fs := vfs.NewErrorFS(mem)
	db := openTestDB(t, fs, testConfig())

	_, victim := settleAndPickVictim(t, db, 3000)
	lo := victim.Smallest.UserKey()
	release := holdScheduler(db)
	rotDataBlock(t, fs, victim)
	if err := db.Scrub(); err != nil {
		t.Fatal(err)
	}
	if db.QuarantinedTables() != 1 {
		t.Fatal("setup: quarantine missing")
	}
	release()
	// Close while the salvage may be racing; whatever state commits is
	// consistent: either the mark survived, or salvage already cleared it.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, fs, testConfig())
	defer db2.Close()
	if err := db2.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	// After reopen + salvage the span must serve again with no quarantine
	// left — and at no point may the rotted block's bytes have been served
	// (Get either finds the true value or reports the loss).
	if got := db2.QuarantinedTables(); got != 0 {
		t.Fatalf("quarantine not salvaged after reopen: %d", got)
	}
	if _, err := db2.Get(lo, nil); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatalf("reopened span read: %v", err)
	}
}
