package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// vlogTestConfig enables key-value separation at test scale: tiny
// segments so a handful of 1 KiB values forces rotation, and a low
// garbage ratio so GC triggers readily.
func vlogTestConfig() Config {
	c := testConfig()
	c.ValueThreshold = 256
	c.VLogSegmentBytes = 8 << 10
	c.VLogGCGarbageRatio = 0.3
	return c
}

func bigValue(key string, gen int) []byte {
	unit := fmt.Sprintf("%s/%d|", key, gen)
	return bytes.Repeat([]byte(unit), 1024/len(unit)+1)[:1024]
}

func countVLogFiles(t *testing.T, fs vfs.FS) int {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if kind, _, ok := manifest.ParseFileName(name); ok && kind == manifest.KindValueLog {
			n++
		}
	}
	return n
}

func TestValueSeparationRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestDB(t, fs, vlogTestConfig())
	defer db.Close()

	const n = 40
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("big%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte(fmt.Sprintf("small%03d", i)), []byte(fmt.Sprintf("inline-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	m := db.Metrics().Snapshot()
	if m.VLogAppends != n {
		t.Fatalf("VLogAppends = %d, want %d (only the large values separate)", m.VLogAppends, n)
	}

	check := func(stage string) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("big%03d", i)
			got, err := db.Get([]byte(key), nil)
			if err != nil || !bytes.Equal(got, bigValue(key, 0)) {
				t.Fatalf("%s: Get(%s) = %d bytes, %v", stage, key, len(got), err)
			}
			sk := fmt.Sprintf("small%03d", i)
			got, err = db.Get([]byte(sk), nil)
			if err != nil || string(got) != fmt.Sprintf("inline-%d", i) {
				t.Fatalf("%s: Get(%s) = %q, %v", stage, sk, got, err)
			}
		}
	}
	check("memtable")

	// Through flush and full compaction the tree carries pointers; reads
	// must still transparently dereference.
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	check("compacted")

	if got := db.Metrics().Snapshot().VLogDerefs; got == 0 {
		t.Fatal("no VLogDerefs recorded for separated reads")
	}

	// Iterators dereference too.
	it := db.NewIter(nil)
	defer it.Close()
	seen := 0
	for ok := it.First(); ok; ok = it.Next() {
		if bytes.HasPrefix(it.Key(), []byte("big")) {
			if !bytes.Equal(it.Value(), bigValue(string(it.Key()), 0)) {
				t.Fatalf("iter %s: wrong value (%d bytes)", it.Key(), len(it.Value()))
			}
			seen++
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("iterator saw %d big keys, want %d", seen, n)
	}

	// Delete and overwrite behave normally over pointers.
	if err := db.Delete([]byte("big000")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("big000"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted separated key: %v", err)
	}
	if err := db.Put([]byte("big001"), []byte("now-small")); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get([]byte("big001"), nil); err != nil || string(got) != "now-small" {
		t.Fatalf("overwrite to inline: %q, %v", got, err)
	}
}

func TestValueSeparationReopen(t *testing.T) {
	fs := vfs.NewMem()
	cfg := vlogTestConfig()
	db := openTestDB(t, fs, cfg)
	const n = 30
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Leave some values WAL-only (no flush) and some in tables.
	if err := db.CompactRange([]byte("key000"), []byte("key014")); err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+5; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openTestDB(t, fs, cfg)
	defer db.Close()
	for i := 0; i < n+5; i++ {
		key := fmt.Sprintf("key%03d", i)
		got, err := db.Get([]byte(key), nil)
		if err != nil || !bytes.Equal(got, bigValue(key, 0)) {
			t.Fatalf("after reopen: Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
}

func TestValueGCReclaimsDeadSegments(t *testing.T) {
	fs := vfs.NewMem()
	cfg := vlogTestConfig()
	// Keep background GC out of the way so the reclamation below is
	// attributable to the explicit CompactValueLog call, and scan in
	// sub-segment chunks so partial passes exercise ranged hole punches
	// (a fully collected segment is unlinked instead).
	cfg.VLogGCGarbageRatio = 1.0
	cfg.VLogGCChunkBytes = 2 << 10
	db := openTestDB(t, fs, cfg)
	defer db.Close()

	const n = 40
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	segsBefore := countVLogFiles(t, fs)
	if segsBefore < 3 {
		t.Fatalf("test needs several segments, got %d", segsBefore)
	}

	// Overwrite everything: every old record is garbage, but the bytes
	// are only *accounted* once compaction drops the dead pointers.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	segsBeforeGC := countVLogFiles(t, fs)

	if err := db.CompactValueLog(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics().Snapshot()
	if m.VLogGCPasses == 0 {
		t.Fatal("CompactValueLog ran no GC passes")
	}
	if m.VLogReclaimedBytes == 0 {
		t.Fatal("GC reclaimed no bytes despite fully dead segments")
	}
	if m.HolePunches == 0 {
		t.Fatal("partial GC passes punched no holes")
	}
	// Fully collected segments are unlinked outright: the population must
	// shrink by at least the dead generation-0 segments.
	if segsAfter := countVLogFiles(t, fs); segsAfter >= segsBeforeGC {
		t.Fatalf("segments: %d before GC, %d after — no dead segment removed", segsBeforeGC, segsAfter)
	}

	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		got, err := db.Get([]byte(key), nil)
		if err != nil || !bytes.Equal(got, bigValue(key, 1)) {
			t.Fatalf("after GC: Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestValueGCDefersPunchForSnapshot(t *testing.T) {
	fs := vfs.NewMem()
	cfg := vlogTestConfig()
	cfg.VLogGCGarbageRatio = 1.0 // manual GC only
	db := openTestDB(t, fs, cfg)
	defer db.Close()

	const n = 24
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}

	// The snapshot pins the generation-0 values across the GC below.
	snap := db.NewSnapshot()
	released := false
	defer func() {
		if !released {
			snap.Release()
		}
	}()

	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactValueLog(); err != nil {
		t.Fatal(err)
	}

	// Whatever the GC reclaimed, the snapshot's reads must still resolve:
	// punches for records a pinned reader may dereference are deferred
	// until the pin is released.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		got, err := db.Get([]byte(key), snap)
		if err != nil || !bytes.Equal(got, bigValue(key, 0)) {
			t.Fatalf("snapshot read after GC: Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
	snap.Release()
	released = true

	// Post-release the latest values remain readable.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		got, err := db.Get([]byte(key), nil)
		if err != nil || !bytes.Equal(got, bigValue(key, 1)) {
			t.Fatalf("latest read after release: Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
}

func TestRepairRebuildsVLogSegments(t *testing.T) {
	fs := vfs.NewMem()
	cfg := vlogTestConfig()
	db := openTestDB(t, fs, cfg)
	const n = 20
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := db.Put([]byte(key), bigValue(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose the metadata; Repair must re-register the value-log segments
	// alongside the salvaged tables or every separated value dangles.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if kind, _, ok := manifest.ParseFileName(name); ok &&
			(kind == manifest.KindManifest || kind == manifest.KindCurrent) {
			if err := fs.Remove(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	report, err := Repair(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.VLogSegments == 0 {
		t.Fatal("repair registered no value-log segments")
	}

	db = openTestDB(t, fs, cfg)
	defer db.Close()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i)
		got, err := db.Get([]byte(key), nil)
		if err != nil || !bytes.Equal(got, bigValue(key, 0)) {
			t.Fatalf("after repair: Get(%s) = %d bytes, %v", key, len(got), err)
		}
	}
}
