package core

import (
	"errors"
	"time"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/compaction"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/metrics"
	"github.com/bolt-lsm/bolt/internal/vfs"
	"github.com/bolt-lsm/bolt/internal/vlog"
)

// Value-log garbage collection.
//
// A GC pass scans one chunk of a sealed segment, liveness-checks every
// record against the tree, re-puts the live ones through the normal write
// path (so they land in the active segment with full commit durability),
// advances the segment's GC watermark in the MANIFEST, and hole-punches
// the scanned payload ranges. Three ordering rules keep it safe:
//
//  1. Liveness is decided twice: once at scan time through the full read
//     path, and again under mu at commit time (filterGCBatchLocked), so a
//     user overwrite that lands between the two can never be shadowed by
//     a re-put carrying a newer sequence number.
//  2. The re-put commit forces the value-log and WAL syncs regardless of
//     SyncWAL: the punch that follows destroys the only other copy.
//  3. Punching is gated on readers. safeSeq is the visible sequence
//     captured after the re-put commit; any reader at or past it resolves
//     the re-put (or something newer), never the dead record. Punches
//     wait in vlogPunchQueue until no snapshot or open iterator predates
//     safeSeq. The one reader class that holds no pin — a latest-seq Get
//     already in flight — is covered by Get's single retry on ErrCorrupt.

// vlogPunch is one deferred reclamation: payload ranges (or the whole
// file) of a collected segment chunk, executable once no pinned reader
// predates safeSeq.
type vlogPunch struct {
	seg        uint64
	ranges     []deadRange
	removeFile bool // segment fully collected: unlink instead of punching
	safeSeq    keys.Seq
}

// gcEntry is one record the GC pass found live at scan time.
type gcEntry struct {
	key, value []byte
	expect     vlog.Pointer // the record's own address; "still newest" check
}

// gcCommit rides a dbWriter through the writer queue (see write.go).
type gcCommit struct {
	entries []gcEntry
	epoch   uint64 // db.flushEpoch at scan time
	// aborted is set by filterGCBatchLocked when a flush since the scan
	// made some entry's liveness undecidable; the pass discards its
	// progress and re-scans.
	aborted bool
}

// pickValueGCLocked returns the next value-GC job, or nil. Requires an
// active value-log writer: re-puts have nowhere to go without one.
func (db *DB) pickValueGCLocked() *compaction.Compaction {
	if db.vlogW == nil || db.closed {
		return nil
	}
	env := compaction.Env{InFlight: db.inflight}
	return db.picker.PickValueGC(db.vs.Current(), env, db.vlogW.Seg(),
		db.cfg.VLogGCGarbageRatio, db.vlogGCStuck)
}

// vlogGCWorker is the dedicated value-GC goroutine, spawned by the
// scheduler with a reserved job. It is deliberately not a pool worker: a
// GC commit can stall on a full memtable until a flush runs, and with
// MaxBackgroundCompactions=1 a pool slot blocked that way would deadlock
// against the flush it is waiting for.
func (db *DB) vlogGCWorker(c *compaction.Compaction, r *compaction.Reservation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for c != nil && !db.bgStoppedLocked() {
		err := db.valueGCPassLocked(c)
		db.inflight.Release(r)
		c, r = nil, nil
		if err != nil {
			// GC failure never threatens data — the old records stay where
			// they are. Stop; the next scheduler trigger tries again.
			break
		}
		db.cond.Broadcast()
		if c = db.pickValueGCLocked(); c != nil {
			r = db.inflight.Reserve(c)
		}
	}
	db.inflight.Release(r)
	db.goros.done("vlogGCWorker")
	db.vlogGCActive = false
	db.cond.Broadcast()
}

// errGCChunkFull stops the segment walk once a pass has scanned its chunk
// budget (at a record boundary, so a record straddling the budget still
// completes).
var errGCChunkFull = errors.New("core: gc chunk full")

// valueGCPassLocked runs one chunk-sized GC pass over c.VLogSegment.
// Called with mu held; releases it for the scan, liveness checks, and the
// re-put commit. An aborted pass (stale liveness) returns nil without
// advancing the watermark — the caller simply re-picks and re-scans.
func (db *DB) valueGCPassLocked(c *compaction.Compaction) error {
	seg := c.VLogSegment
	s, ok := db.vs.Current().VLogSegment(seg)
	if !ok || db.vlogW == nil {
		return nil
	}
	db.met.CompactionsByReason[metrics.CompactionValueGC].Add(1)
	db.nextJobID++
	job := db.nextJobID
	epoch := db.flushEpoch
	start := s.GCOffset
	segSize := s.Size
	chunkBudget := db.cfg.VLogGCChunkBytes
	passStart := time.Now()
	db.mu.Unlock()

	// Scan one chunk of records. Punched or rotted payloads (header ok,
	// payload CRC bad) are walked over: already reclaimed, nothing to do.
	type scannedRec struct {
		key, value []byte
		ptr        vlog.Pointer
	}
	var records []scannedRec
	var punchRanges []deadRange
	chunkEnd := start
	werr := db.vlogFDs.With(seg, func(f vfs.File) error {
		_, err := vlog.Walk(f, start, segSize, func(rec vlog.WalkRecord) error {
			if rec.PayloadOK {
				records = append(records, scannedRec{
					key:   append([]byte(nil), rec.Key...),
					value: append([]byte(nil), rec.Value...),
					ptr:   vlog.Pointer{Seg: seg, Off: rec.Off, Len: rec.Len},
				})
				// Whatever the liveness verdict, the record's payload is
				// dead once the pass commits: dead records are superseded
				// already, live ones get re-put.
				punchRanges = append(punchRanges, deadRange{rec.Off + vlog.HeaderSize, rec.Len - vlog.HeaderSize})
			}
			chunkEnd = rec.Off + rec.Len
			if chunkEnd-start >= chunkBudget {
				return errGCChunkFull
			}
			return nil
		})
		return err
	})
	if werr != nil && !errors.Is(werr, errGCChunkFull) {
		db.mu.Lock()
		db.vlogGCStuck[seg] = true
		return werr
	}
	if chunkEnd == start {
		// Zero progress: a rotted record header blocks the walk. Mark the
		// segment stuck — its uncollected tail leaks space but no data —
		// so the picker stops choosing it.
		db.mu.Lock()
		db.vlogGCStuck[seg] = true
		return nil
	}

	// Liveness, first decision: a record is live iff the tree's newest
	// version of its key is still the pointer to this very record.
	var entries []gcEntry
	var deadBytes int64
	for _, rec := range records {
		live, err := db.pointsAt(rec.key, rec.ptr)
		if err != nil {
			db.mu.Lock()
			db.vlogGCStuck[seg] = true
			return err
		}
		if live {
			entries = append(entries, gcEntry{key: rec.key, value: rec.value, expect: rec.ptr})
		} else {
			deadBytes += rec.ptr.Len
		}
	}

	// Re-put the live records through the writer queue. The batch itself
	// is built under mu by filterGCBatchLocked, where liveness is decided
	// the second time.
	gc := &gcCommit{entries: entries, epoch: epoch}
	if len(entries) > 0 {
		if err := db.commit(&dbWriter{b: batch.New(), gc: gc}); err != nil {
			db.mu.Lock()
			return err
		}
		if gc.aborted {
			// Stale liveness: discard this pass (no watermark advance, no
			// punches — entries already re-put read as dead on re-scan).
			db.mu.Lock()
			return nil
		}
	}

	// Commit the watermark advance, then queue the punches behind it.
	db.mu.Lock()
	if db.bgStoppedLocked() {
		return nil
	}
	full := chunkEnd >= segSize
	edit := &manifest.VersionEdit{}
	if full {
		edit.DeleteVLogSegment(seg)
	} else {
		edit.AddVLogSegment(manifest.VLogSegmentEdit{Num: seg, GCOffset: chunkEnd, GarbageDelta: -deadBytes})
	}
	if err := db.logAndApplyLocked(edit); err != nil {
		return err
	}
	var reclaimed int64
	if full {
		reclaimed = segSize - start
	} else {
		for _, r := range punchRanges {
			reclaimed += r.size
		}
	}
	db.met.VLogGCPasses.Add(1)
	db.met.VLogReclaimedBytes.Add(reclaimed)
	safeSeq := db.VisibleSeq()
	db.vlogPunchQueue = append(db.vlogPunchQueue, vlogPunch{
		seg: seg, ranges: punchRanges, removeFile: full, safeSeq: safeSeq,
	})
	todo := db.takeReadyVLogPunchesLocked()
	db.mu.Unlock()
	db.execVLogPunches(todo)
	db.ev.Emit(events.Event{
		Type:    events.TypeVLogGC,
		File:    seg,
		BytesIn: chunkEnd - start,
		// BytesOut is what this pass made reclaimable; the punches
		// themselves may still be deferred behind old readers.
		BytesOut: reclaimed,
		Outputs:  len(entries),
		Dur:      time.Since(passStart),
		Job:      job,
	})
	db.mu.Lock()
	return nil
}

// pointsAt reports whether the newest version of key in the whole tree is
// a pointer equal to expect. Called without mu; runs the full read path at
// the latest sequence.
func (db *DB) pointsAt(key []byte, expect vlog.Pointer) (bool, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false, ErrClosed
	}
	mem, imm := db.mem, db.imm
	v := db.vs.Current()
	v.Ref()
	db.mu.Unlock()
	defer v.Unref()

	ikey := keys.MakeInternalKey(nil, key, keys.MaxSeq, keys.KindSeekMax)
	value, kind, found := mem.GetSeek(ikey)
	if !found && imm != nil {
		value, kind, found = imm.GetSeek(ikey)
	}
	if !found {
		var err error
		value, kind, found, err = db.searchTables(v, ikey)
		if err != nil {
			return false, err
		}
	}
	if !found || kind != keys.KindSetPtr {
		return false, nil
	}
	p, err := vlog.DecodePointer(value)
	return err == nil && p == expect, nil
}

// filterGCBatchLocked builds a GC writer's batch under mu: each entry's
// liveness is re-decided against the current memtables, live survivors
// are appended to the active value-log segment, and their pointer entries
// become the batch. Re-deciding here closes the scan-to-commit race: a
// user overwrite committed after the scan either shows in a memtable
// (entry dropped) or was flushed (flushEpoch moved — the pass aborts,
// because "absent from the memtables" no longer proves anything).
func (db *DB) filterGCBatchLocked(w *dbWriter) error {
	gc := w.gc
	vlogW := db.vlogW
	if vlogW == nil {
		return errors.New("core: value log unavailable for gc commit")
	}
	b := batch.New()
	var ptrBuf []byte
	for _, e := range gc.entries {
		ikey := keys.MakeInternalKey(nil, e.key, keys.MaxSeq, keys.KindSeekMax)
		value, kind, found := db.mem.GetSeek(ikey)
		if !found && db.imm != nil {
			value, kind, found = db.imm.GetSeek(ikey)
		}
		switch {
		case found:
			if kind != keys.KindSetPtr {
				continue // overwritten or deleted since the scan: dead
			}
			p, err := vlog.DecodePointer(value)
			if err != nil || p != e.expect {
				continue // overwritten (possibly by an earlier re-put): dead
			}
		case db.flushEpoch != gc.epoch:
			// Absent from the memtables, but a flush retired one since the
			// scan: the newest version may now be in a table this check
			// cannot see. Not provably live, not provably dead — abort.
			gc.aborted = true
			continue
		}
		// Still live: rewrite into the active segment.
		p, err := vlogW.Append(e.key, e.value)
		if err != nil {
			return err
		}
		db.met.VLogAppends.Add(1)
		db.met.VLogAppendedBytes.Add(p.Len)
		ptrBuf = p.Encode(ptrBuf[:0])
		b.PutPtr(e.key, ptrBuf)
	}
	w.b = b
	return nil
}

// minReaderSeqLocked returns the oldest sequence any current reader may
// observe: the oldest snapshot, the oldest open iterator, or (with
// neither) the visible sequence.
func (db *DB) minReaderSeqLocked() keys.Seq {
	min := db.VisibleSeq()
	if front := db.snapshots.Front(); front != nil {
		if s := front.Value.(keys.Seq); s < min {
			min = s
		}
	}
	for e := db.iterPins.Front(); e != nil; e = e.Next() {
		if s := e.Value.(keys.Seq); s < min {
			min = s
		}
	}
	return min
}

// takeReadyVLogPunchesLocked extracts the queued punches whose safeSeq is
// covered by every live reader; the caller executes them off-mu.
func (db *DB) takeReadyVLogPunchesLocked() []vlogPunch {
	if len(db.vlogPunchQueue) == 0 {
		return nil
	}
	minSeq := db.minReaderSeqLocked()
	var ready, wait []vlogPunch
	for _, p := range db.vlogPunchQueue {
		if minSeq >= p.safeSeq {
			ready = append(ready, p)
		} else {
			wait = append(wait, p)
		}
	}
	db.vlogPunchQueue = wait
	return ready
}

// execVLogPunches performs deferred value-log reclamation: hole punches
// for partially collected chunks, file removal for fully collected
// segments. Called without mu. Punching is best-effort exactly like table
// reclamation (see reclaimZombiesLocked): an unsupported backend costs
// space, never correctness — and unlike table ranges the space debt needs
// no tracking, because the GC watermark already records the range as
// collected.
func (db *DB) execVLogPunches(todo []vlogPunch) {
	for _, p := range todo {
		name := manifest.VLogFileName(p.seg)
		if p.removeFile {
			db.vlogFDs.Evict(p.seg)
			_ = db.fs.Remove(name)
			continue
		}
		f, err := db.fs.Open(name)
		if err != nil {
			continue
		}
		for _, r := range p.ranges {
			perr := f.PunchHole(r.off, r.size)
			switch {
			case perr == nil:
				db.met.HolePunches.Add(1)
				db.ev.Emit(events.Event{Type: events.TypeHolePunch, File: p.seg, BytesOut: r.size})
			case errors.Is(perr, vfs.ErrPunchHoleUnsupported) || errors.Is(perr, vfs.ErrReadOnly):
				db.met.HolePunchFallbacks.Add(1)
			}
		}
		_ = f.Close()
	}
}

// rotateVLogLocked seals the active segment, queues its MANIFEST record
// for the next flush, and opens a fresh segment. Called under mu by the
// group-commit leader (the only appender, so sealing cannot race an
// append). If the new segment cannot be created, separation disables
// itself — large values stay inline, which is correct, just unseparated —
// rather than failing user writes.
func (db *DB) rotateVLogLocked() (sealedSeg uint64, sealedSize int64) {
	old := db.vlogW
	if old == nil {
		return 0, 0
	}
	_ = old.Seal()
	sealedSeg, sealedSize = old.Seg(), old.SyncedSize()
	db.vlogPending = append(db.vlogPending, manifest.VLogSegmentEdit{Num: sealedSeg, Size: sealedSize})
	num := db.vs.NextFileNum()
	w, err := vlog.NewWriter(db.fs, manifest.VLogFileName(num), num)
	if err != nil {
		db.vlogW, db.vlogNum = nil, 0
		return sealedSeg, sealedSize
	}
	db.vlogW, db.vlogNum = w, num
	return sealedSeg, sealedSize
}

// CompactValueLog synchronously runs value-GC passes until no sealed
// segment has uncollected garbage (any nonzero amount qualifies — the
// configured background ratio is ignored). Tests and tools use it to
// settle the value log deterministically.
func (db *DB) CompactValueLog() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.bgStoppedLocked() {
		if db.vlogGCActive {
			// A background pass owns the claim; wait it out rather than
			// racing it for segments.
			db.cond.Wait()
			continue
		}
		if db.vlogW == nil {
			break
		}
		env := compaction.Env{InFlight: db.inflight}
		// Tiny positive ratio: collect any segment with nonzero garbage,
		// but never churn a garbage-free one.
		c := db.picker.PickValueGC(db.vs.Current(), env, db.vlogW.Seg(), 1e-12, db.vlogGCStuck)
		if c == nil {
			break
		}
		r := db.inflight.Reserve(c)
		err := db.valueGCPassLocked(c)
		db.inflight.Release(r)
		if err != nil {
			return err
		}
		db.cond.Broadcast()
	}
	if db.closed {
		return ErrClosed
	}
	return db.pendingErrLocked()
}
