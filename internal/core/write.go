package core

import (
	"sync"
	"time"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// maxGroupCommitBytes bounds how much one leader batches into a single WAL
// record (LevelDB uses 1 MB).
const maxGroupCommitBytes = 1 << 20

// dbWriter is one queued write. The head of db.writers is the leader: it
// performs the group commit on behalf of every writer it absorbs.
type dbWriter struct {
	b   *batch.Batch
	cv  sync.Cond // on db.mu
	err error
	// done means the write has been fully committed (or failed).
	done bool
	// doInsert (ConcurrentWriters profiles) wakes the writer to insert its
	// own batch into mem concurrently; seq/mem/wg carry its assignment.
	doInsert bool
	seq      keys.Seq
	mem      *memtable.MemTable
	wg       *sync.WaitGroup
}

// Write atomically applies b. Callers may invoke Write concurrently; a
// leader/follower group-commit protocol batches concurrent writers into
// one WAL record, exactly like LevelDB's writer queue.
func (db *DB) Write(b *batch.Batch) error {
	w := &dbWriter{b: b}
	w.cv.L = &db.mu

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.writers = append(db.writers, w)
	for {
		if w.doInsert {
			db.insertFollower(w)
			continue
		}
		if w.done || db.writers[0] == w {
			break
		}
		w.cv.Wait()
	}
	if w.done {
		err := w.err
		db.mu.Unlock()
		return err
	}

	// This writer is the leader.
	db.leaderActive = true
	err := db.makeRoomForWriteLocked()
	var group *batch.Batch
	var members []*dbWriter
	if err == nil {
		group, members = db.buildGroupLocked()
		db.met.GroupCommits.Add(1)
		startSeq := db.VisibleSeq() + 1
		group.SetSeq(startSeq)
		seq := startSeq
		for _, m := range members {
			m.seq = seq
			seq += keys.Seq(m.b.Count())
		}
		mem := db.mem
		walW := db.walW
		db.mu.Unlock()

		// One WAL append (and at most one sync) for the whole group.
		err = walW.AddRecord(group.Repr())
		if err == nil && db.cfg.SyncWAL {
			err = walW.Sync()
		}
		db.met.WALRecords.Add(1)

		if err == nil {
			if db.cfg.ConcurrentWriters && len(members) > 1 {
				err = db.insertConcurrently(mem, members)
			} else {
				err = group.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
					mem.Add(seq, kind, key, value)
					return nil
				})
			}
		}
		db.mu.Lock()
		if err == nil {
			db.visibleSeq.Store(uint64(startSeq) + uint64(group.Count()) - 1)
			db.vs.SetLastSeq(db.visibleSeq.Load())
			db.met.Writes.Add(int64(group.Count()))
			db.met.BytesIn.Add(int64(group.Size()))
		}
	} else {
		members = []*dbWriter{w}
	}

	// Complete the group and wake the next leader.
	for _, m := range members {
		db.writers = db.writers[1:]
		m.err = err
		m.done = true
		if m != w {
			m.cv.Signal()
		}
	}
	db.leaderActive = false
	if len(db.writers) > 0 {
		db.writers[0].cv.Signal()
	}
	if db.closed || db.rotateWaiters > 0 {
		// Close drains the writer queue before touching the WAL files, and
		// forceMemtableSwitchLocked must not rotate the WAL writer out from
		// under this leader's off-mu append; both wait on cond.
		db.cond.Broadcast()
	}
	db.mu.Unlock()
	return err
}

// buildGroupLocked absorbs queued writers (up to the byte cap) into one batch.
// Called with mu held; returns the combined batch and its members in queue
// order (leader first).
func (db *DB) buildGroupLocked() (*batch.Batch, []*dbWriter) {
	leader := db.writers[0]
	members := []*dbWriter{leader}
	group := leader.b
	total := leader.b.Size()
	grouped := false
	for _, next := range db.writers[1:] {
		if total+next.b.Size() > maxGroupCommitBytes {
			break
		}
		if !grouped {
			combined := batch.New()
			combined.Append(leader.b)
			group = combined
			grouped = true
		}
		group.Append(next.b)
		total += next.b.Size()
		members = append(members, next)
	}
	return group, members
}

// insertConcurrently wakes every group member to insert its own batch into
// mem in parallel — the HyperLevelDB write path. Called without mu.
func (db *DB) insertConcurrently(mem *memtable.MemTable, members []*dbWriter) error {
	var wg sync.WaitGroup
	// Members already marked done (a concurrent Close failed the queue)
	// have returned to their callers and will never perform their insert;
	// the leader applies their batches itself. Their WAL record is already
	// written, so applying keeps the log and memtable consistent.
	var orphaned []*dbWriter
	db.mu.Lock()
	for _, m := range members[1:] {
		if m.done {
			orphaned = append(orphaned, m)
			continue
		}
		wg.Add(1)
		m.doInsert = true
		m.mem = mem
		m.wg = &wg
		m.cv.Signal()
	}
	db.mu.Unlock()

	insert := func(m *dbWriter) error {
		return m.b.IterateWithSeq(m.seq, func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
			mem.Add(seq, kind, key, value)
			return nil
		})
	}
	err := insert(members[0])
	for _, m := range orphaned {
		if ierr := insert(m); ierr != nil && err == nil {
			err = ierr
		}
	}
	wg.Wait()
	return err
}

// insertFollower runs in a follower woken with doInsert (mu held on entry
// and exit): it inserts its own batch outside the lock.
func (db *DB) insertFollower(w *dbWriter) {
	mem, seq, wg := w.mem, w.seq, w.wg
	w.doInsert = false
	b := w.b
	db.mu.Unlock()
	_ = b.IterateWithSeq(seq, func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
		mem.Add(seq, kind, key, value)
		return nil
	})
	wg.Done()
	db.mu.Lock()
}

// makeRoomForWriteLocked applies the write governors and switches memtables.
// Called with mu held by the leader; may release and re-acquire mu.
func (db *DB) makeRoomForWriteLocked() error {
	slowdownDone := false
	for {
		switch {
		case db.bgErr != nil || db.readOnly:
			return db.pendingErrLocked()
		case db.closed:
			return ErrClosed

		case !slowdownDone && db.cfg.L0SlowdownTrigger > 0 &&
			db.l0UnitsLocked() >= db.cfg.L0SlowdownTrigger:
			// L0SlowDown governor: sleep 1 ms once, then proceed.
			slowdownDone = true
			db.met.StallSlowdown.Add(1)
			db.mu.Unlock()
			start := time.Now()
			db.ev.Emit(events.Event{Type: events.TypeStallBegin, Reason: "l0-slowdown"})
			time.Sleep(time.Millisecond)
			d := time.Since(start)
			db.met.AddStall(d)
			db.ev.Emit(events.Event{Type: events.TypeStallEnd, Reason: "l0-slowdown", Dur: d})
			db.mu.Lock()

		case db.mem.ApproximateSize() < db.cfg.MemTableBytes:
			return nil

		case db.imm != nil:
			// Previous memtable still flushing.
			db.stallOnCondLocked("memtable-full")

		case db.cfg.L0StopTrigger > 0 && db.l0UnitsLocked() >= db.cfg.L0StopTrigger:
			// L0Stop governor: block until compaction drains level 0.
			db.stallOnCondLocked("l0-stop")

		default:
			// Switch to a fresh memtable and WAL.
			newLogNum := db.vs.NextFileNum()
			newWal, err := wal.NewWriter(db.fs, manifest.LogFileName(newLogNum))
			if err != nil {
				return err
			}
			_ = db.walW.Close()
			db.obsoleteLogs = append(db.obsoleteLogs, db.walNum)
			db.walNum = newLogNum
			db.walW = newWal
			db.imm = db.mem
			db.mem = memtable.New()
			db.met.MemtableSwitch.Add(1)
			db.maybeScheduleWorkLocked()
			db.mu.Unlock()
			db.ev.Emit(events.Event{Type: events.TypeWALRotation, File: newLogNum})
			db.mu.Lock()
		}
	}
}

// stallOnCondLocked blocks the leader on db.cond, accounting the stall and
// emitting the stall-begin/end event pair. The pair is emitted
// retroactively after the wait (begin carries the stall's start time):
// emitting before the Wait would require an unlock window in which a
// wake-up broadcast could be missed. The governor loop re-evaluates every
// condition after the emission window, so the relock is safe.
func (db *DB) stallOnCondLocked(cause string) {
	db.met.StallStops.Add(1)
	start := time.Now()
	db.cond.Wait()
	d := time.Since(start)
	db.met.AddStall(d)
	db.mu.Unlock()
	db.ev.Emit(events.Event{Type: events.TypeStallBegin, Reason: cause, Time: start})
	db.ev.Emit(events.Event{Type: events.TypeStallEnd, Reason: cause, Dur: d})
	db.mu.Lock()
}

// l0UnitsLocked counts level-0 governor units: distinct physical files.
// With BoLT compaction files one flush produces one physical file holding
// many logical SSTables; counting physical files keeps the governor
// semantics comparable with legacy layouts. The count is precomputed on
// the Version at install time, so the per-write governor check is
// allocation-free.
func (db *DB) l0UnitsLocked() int {
	v := db.vs.Current()
	if !db.cfg.compactionFileMode() {
		return len(v.Levels[0])
	}
	return v.L0PhysFiles()
}
