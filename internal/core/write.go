package core

import (
	"sync"
	"time"

	"github.com/bolt-lsm/bolt/internal/batch"
	"github.com/bolt-lsm/bolt/internal/events"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/manifest"
	"github.com/bolt-lsm/bolt/internal/memtable"
	"github.com/bolt-lsm/bolt/internal/vlog"
	"github.com/bolt-lsm/bolt/internal/wal"
)

// maxGroupCommitBytes bounds how much one leader batches into a single WAL
// record (LevelDB uses 1 MB).
const maxGroupCommitBytes = 1 << 20

// dbWriter is one queued write. The head of db.writers is the leader: it
// performs the group commit on behalf of every writer it absorbs.
type dbWriter struct {
	b   *batch.Batch
	cv  sync.Cond // on db.mu
	err error
	// done means the write has been fully committed (or failed).
	done bool
	// doInsert (ConcurrentWriters profiles) wakes the writer to insert its
	// own batch into mem concurrently; seq/mem/wg carry its assignment.
	doInsert bool
	seq      keys.Seq
	mem      *memtable.MemTable
	wg       *sync.WaitGroup
	// gc marks a value-GC commit: its batch is built under mu by
	// filterGCBatchLocked once the writer is leader, it never groups with
	// other writers, and it forces the value-log and WAL syncs regardless
	// of SyncWAL (its side effect — punching the old records — must not
	// outrun the durability of the re-puts).
	gc *gcCommit
}

// Write atomically applies b. Callers may invoke Write concurrently; a
// leader/follower group-commit protocol batches concurrent writers into
// one WAL record, exactly like LevelDB's writer queue.
func (db *DB) Write(b *batch.Batch) error {
	w := &dbWriter{b: b}
	return db.commit(w)
}

// commit queues w and runs the leader/follower group-commit protocol.
func (db *DB) commit(w *dbWriter) error {
	w.cv.L = &db.mu

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.pendingErrLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.writers = append(db.writers, w)
	for {
		if w.doInsert {
			db.insertFollower(w)
			continue
		}
		if w.done || db.writers[0] == w {
			break
		}
		w.cv.Wait()
	}
	if w.done {
		err := w.err
		db.mu.Unlock()
		return err
	}

	// This writer is the leader.
	db.leaderActive = true
	err := db.makeRoomForWriteLocked()
	var group *batch.Batch
	var members []*dbWriter
	var sealedSeg, newSeg uint64 // nonzero if this commit rotated the value log
	var sealedSize int64
	if err == nil && w.gc != nil {
		// Build the GC re-put batch now, under mu: liveness established at
		// scan time is re-checked against the current memtables before any
		// record is rewritten (see filterGCBatchLocked).
		err = db.filterGCBatchLocked(w)
	}
	if err == nil {
		group, members = db.buildGroupLocked()
		db.met.GroupCommits.Add(1)
		startSeq := db.VisibleSeq() + 1
		group.SetSeq(startSeq)
		seq := startSeq
		for _, m := range members {
			m.seq = seq
			seq += keys.Seq(m.b.Count())
		}
		mem := db.mem
		walW := db.walW
		vlogW := db.vlogW
		userBytes := int64(group.Size())
		db.mu.Unlock()

		// WAL-time key-value separation: peel large values out of the group
		// into the value log before the WAL append, so the WAL (and the
		// tree) carry only pointers. The value log is synced ahead of the
		// WAL record that references it — recovery relies on this order to
		// treat any unresolvable pointer as an unacknowledged write.
		extracted := false
		if vlogW != nil && w.gc == nil {
			group, extracted, err = db.separateValues(group, startSeq, vlogW)
		}
		forceSync := w.gc != nil
		if err == nil && (extracted || forceSync) && (db.cfg.SyncWAL || forceSync) && vlogW != nil {
			err = vlogW.Sync()
		}

		// One WAL append (and at most one sync) for the whole group.
		if err == nil {
			err = walW.AddRecord(group.Repr())
		}
		if err == nil && (db.cfg.SyncWAL || forceSync) {
			err = walW.Sync()
		}
		db.met.WALRecords.Add(1)

		if err == nil {
			// When values were extracted the followers' own batches no
			// longer match what was logged, so the leader inserts the
			// rewritten group for everyone.
			if db.cfg.ConcurrentWriters && len(members) > 1 && !extracted {
				err = db.insertConcurrently(mem, members)
			} else {
				err = group.Iterate(func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
					mem.Add(seq, kind, key, value)
					return nil
				})
			}
		}
		db.mu.Lock()
		if err == nil {
			db.visibleSeq.Store(uint64(startSeq) + uint64(group.Count()) - 1)
			db.vs.SetLastSeq(db.visibleSeq.Load())
			db.met.Writes.Add(int64(group.Count()))
			db.met.BytesIn.Add(userBytes)
			if db.vlogW != nil && db.vlogW.Size() >= db.cfg.VLogSegmentBytes {
				sealedSeg, sealedSize = db.rotateVLogLocked()
				newSeg = db.vlogNum
			}
		}
	} else {
		members = []*dbWriter{w}
	}

	// Complete the group and wake the next leader.
	for _, m := range members {
		db.writers = db.writers[1:]
		m.err = err
		m.done = true
		if m != w {
			m.cv.Signal()
		}
	}
	db.leaderActive = false
	if len(db.writers) > 0 {
		db.writers[0].cv.Signal()
	}
	if db.closed || db.rotateWaiters > 0 {
		// Close drains the writer queue before touching the WAL files, and
		// forceMemtableSwitchLocked must not rotate the WAL writer out from
		// under this leader's off-mu append; both wait on cond.
		db.cond.Broadcast()
	}
	db.mu.Unlock()
	if sealedSeg != 0 {
		db.ev.Emit(events.Event{Type: events.TypeVLogRotation, File: newSeg, BytesOut: sealedSize})
	}
	return err
}

// separateValues rewrites group so every KindSet entry whose value meets
// the threshold becomes a KindSetPtr entry pointing into the value log.
// Called off-mu in the leader's commit window; vlogW locks itself against
// concurrent flush-time Syncs. When nothing meets the threshold the group
// is returned untouched (and the common small-value write path pays one
// read-only scan).
func (db *DB) separateValues(group *batch.Batch, startSeq keys.Seq, vlogW *vlog.Writer) (*batch.Batch, bool, error) {
	threshold := db.cfg.ValueThreshold
	anyLarge := false
	_ = group.Iterate(func(_ keys.Seq, kind keys.Kind, _, value []byte) error {
		if kind == keys.KindSet && len(value) >= threshold {
			anyLarge = true
		}
		return nil
	})
	if !anyLarge {
		return group, false, nil
	}
	out := batch.New()
	var ptrBuf []byte
	err := group.Iterate(func(_ keys.Seq, kind keys.Kind, key, value []byte) error {
		switch {
		case kind == keys.KindSet && len(value) >= threshold:
			p, err := vlogW.Append(key, value)
			if err != nil {
				return err
			}
			db.met.VLogAppends.Add(1)
			db.met.VLogAppendedBytes.Add(p.Len)
			ptrBuf = p.Encode(ptrBuf[:0])
			out.PutPtr(key, ptrBuf)
		case kind == keys.KindDelete:
			out.Delete(key)
		case kind == keys.KindSetPtr:
			out.PutPtr(key, value)
		default:
			out.Put(key, value)
		}
		return nil
	})
	if err != nil {
		return group, false, err
	}
	out.SetSeq(startSeq)
	return out, true, nil
}

// buildGroupLocked absorbs queued writers (up to the byte cap) into one batch.
// Called with mu held; returns the combined batch and its members in queue
// order (leader first).
func (db *DB) buildGroupLocked() (*batch.Batch, []*dbWriter) {
	leader := db.writers[0]
	members := []*dbWriter{leader}
	group := leader.b
	if leader.gc != nil {
		// A GC commit stands alone: its batch was purpose-built under mu
		// and its forced syncs must not tax innocent bystanders.
		return group, members
	}
	total := leader.b.Size()
	grouped := false
	for _, next := range db.writers[1:] {
		if next.gc != nil || total+next.b.Size() > maxGroupCommitBytes {
			break
		}
		if !grouped {
			combined := batch.New()
			combined.Append(leader.b)
			group = combined
			grouped = true
		}
		group.Append(next.b)
		total += next.b.Size()
		members = append(members, next)
	}
	return group, members
}

// insertConcurrently wakes every group member to insert its own batch into
// mem in parallel — the HyperLevelDB write path. Called without mu.
func (db *DB) insertConcurrently(mem *memtable.MemTable, members []*dbWriter) error {
	var wg sync.WaitGroup
	// Members already marked done (a concurrent Close failed the queue)
	// have returned to their callers and will never perform their insert;
	// the leader applies their batches itself. Their WAL record is already
	// written, so applying keeps the log and memtable consistent.
	var orphaned []*dbWriter
	db.mu.Lock()
	for _, m := range members[1:] {
		if m.done {
			orphaned = append(orphaned, m)
			continue
		}
		wg.Add(1)
		m.doInsert = true
		m.mem = mem
		m.wg = &wg
		m.cv.Signal()
	}
	db.mu.Unlock()

	insert := func(m *dbWriter) error {
		return m.b.IterateWithSeq(m.seq, func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
			mem.Add(seq, kind, key, value)
			return nil
		})
	}
	err := insert(members[0])
	for _, m := range orphaned {
		if ierr := insert(m); ierr != nil && err == nil {
			err = ierr
		}
	}
	wg.Wait()
	return err
}

// insertFollower runs in a follower woken with doInsert (mu held on entry
// and exit): it inserts its own batch outside the lock.
func (db *DB) insertFollower(w *dbWriter) {
	mem, seq, wg := w.mem, w.seq, w.wg
	w.doInsert = false
	b := w.b
	db.mu.Unlock()
	_ = b.IterateWithSeq(seq, func(seq keys.Seq, kind keys.Kind, key, value []byte) error {
		mem.Add(seq, kind, key, value)
		return nil
	})
	wg.Done()
	db.mu.Lock()
}

// makeRoomForWriteLocked applies the write governors and switches memtables.
// Called with mu held by the leader; may release and re-acquire mu.
func (db *DB) makeRoomForWriteLocked() error {
	slowdownDone := false
	for {
		switch {
		case db.bgErr != nil || db.readOnly:
			return db.pendingErrLocked()
		case db.closed:
			return ErrClosed

		case !slowdownDone && db.cfg.L0SlowdownTrigger > 0 &&
			db.l0UnitsLocked() >= db.cfg.L0SlowdownTrigger:
			// L0SlowDown governor: sleep 1 ms once, then proceed.
			slowdownDone = true
			db.met.StallSlowdown.Add(1)
			db.mu.Unlock()
			start := time.Now()
			db.ev.Emit(events.Event{Type: events.TypeStallBegin, Reason: "l0-slowdown"})
			time.Sleep(time.Millisecond)
			d := time.Since(start)
			db.met.AddStall(d)
			db.ev.Emit(events.Event{Type: events.TypeStallEnd, Reason: "l0-slowdown", Dur: d})
			db.mu.Lock()

		case db.mem.ApproximateSize() < db.cfg.MemTableBytes:
			return nil

		case db.imm != nil:
			// Previous memtable still flushing.
			db.stallOnCondLocked("memtable-full")

		case db.cfg.L0StopTrigger > 0 && db.l0UnitsLocked() >= db.cfg.L0StopTrigger:
			// L0Stop governor: block until compaction drains level 0.
			db.stallOnCondLocked("l0-stop")

		default:
			// Switch to a fresh memtable and WAL.
			newLogNum := db.vs.NextFileNum()
			newWal, err := wal.NewWriter(db.fs, manifest.LogFileName(newLogNum))
			if err != nil {
				return err
			}
			_ = db.walW.Close()
			db.obsoleteLogs = append(db.obsoleteLogs, db.walNum)
			db.walNum = newLogNum
			db.walW = newWal
			db.imm = db.mem
			db.mem = memtable.New()
			db.met.MemtableSwitch.Add(1)
			db.maybeScheduleWorkLocked()
			db.mu.Unlock()
			db.ev.Emit(events.Event{Type: events.TypeWALRotation, File: newLogNum})
			db.mu.Lock()
		}
	}
}

// stallOnCondLocked blocks the leader on db.cond, accounting the stall and
// emitting the stall-begin/end event pair. The pair is emitted
// retroactively after the wait (begin carries the stall's start time):
// emitting before the Wait would require an unlock window in which a
// wake-up broadcast could be missed. The governor loop re-evaluates every
// condition after the emission window, so the relock is safe.
func (db *DB) stallOnCondLocked(cause string) {
	db.met.StallStops.Add(1)
	start := time.Now()
	db.cond.Wait()
	d := time.Since(start)
	db.met.AddStall(d)
	db.mu.Unlock()
	db.ev.Emit(events.Event{Type: events.TypeStallBegin, Reason: cause, Time: start})
	db.ev.Emit(events.Event{Type: events.TypeStallEnd, Reason: cause, Dur: d})
	db.mu.Lock()
}

// l0UnitsLocked counts level-0 governor units: distinct physical files.
// With BoLT compaction files one flush produces one physical file holding
// many logical SSTables; counting physical files keeps the governor
// semantics comparable with legacy layouts. The count is precomputed on
// the Version at install time, so the per-write governor check is
// allocation-free.
func (db *DB) l0UnitsLocked() int {
	v := db.vs.Current()
	if !db.cfg.compactionFileMode() {
		return len(v.Levels[0])
	}
	return v.L0PhysFiles()
}
