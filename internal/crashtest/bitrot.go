package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/sstable"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// BitRotOptions parameterizes one bit-rot recovery run.
type BitRotOptions struct {
	// Seed drives the workload, the rot placement, and the rot sizes.
	Seed int64
	// Ops is the per-cycle workload length (default 200).
	Ops int
	// Cycles is the number of rot/reopen rounds (default 3).
	Cycles int
	// Profile is the engine configuration under test.
	Profile core.Config
}

// BitRotResult reports what one run did.
type BitRotResult struct {
	// Rotted counts the corruption injections that landed in live table
	// bytes (a scrub finding followed); injections into slack, holes, or
	// obsolete files detect nothing and that is correct too.
	Rotted int
	// Lost counts acknowledged keys dropped by salvage across all cycles.
	Lost int
}

// RunBitRot is the bit-rot analogue of Run: instead of crashing at a
// barrier, it rots random byte ranges of at-rest table files between clean
// reopen cycles, then verifies the integrity contract:
//
//   - zero silent wrong reads: a Get returns the acknowledged value, a
//     typed corruption error, or (only after salvage dropped the entries)
//     not-found — never different bytes;
//   - the blast radius is bounded: keys outside the rotted tables keep
//     serving, and the store keeps accepting writes throughout;
//   - a scrub pass plus the salvage compaction always returns the store to
//     a fully serving, quarantine-free state.
func RunBitRot(opts BitRotOptions) (*BitRotResult, error) {
	if opts.Ops <= 0 {
		opts.Ops = 200
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 3
	}
	cfg := opts.Profile
	cfg.SyncWAL = true
	cfg.VerifyInvariants = true

	rng := rand.New(rand.NewSource(opts.Seed))
	efs := vfs.NewErrorFS(vfs.NewMem())
	res := &BitRotResult{}

	// acked is the oracle: every op is acknowledged (no faults are injected
	// on the write path), so the store must hold exactly these values until
	// salvage legitimately drops some.
	acked := make(map[string]string)
	const keyspace = 400

	db, err := core.Open(efs, cfg)
	if err != nil {
		return nil, fmt.Errorf("seed %d: open: %w", opts.Seed, err)
	}

	for cycle := 0; cycle < opts.Cycles; cycle++ {
		for i := 0; i < opts.Ops; i++ {
			key := fmt.Sprintf("%s%04d", keyPrefix, rng.Intn(keyspace))
			val := fmt.Sprintf("v-s%d-c%d-i%d-%s", opts.Seed, cycle, i,
				strings.Repeat("y", 60+rng.Intn(120)))
			if err := db.Put([]byte(key), []byte(val)); err != nil {
				return nil, fmt.Errorf("seed %d cycle %d: put: %w", opts.Seed, cycle, err)
			}
			acked[key] = val
		}
		// Settle so the rot lands in the level structure, not just L0.
		if err := db.CompactRange(nil, nil); err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: compact: %w", opts.Seed, cycle, err)
		}
		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: close: %w", opts.Seed, cycle, err)
		}

		// Rot a random range of a random at-rest table file. Offsets are
		// unbiased over the whole file, so footers, meta blocks, and data
		// blocks all get their turns; lengths cover single flipped bytes up
		// to a run of rotted sectors.
		names, err := efs.List()
		if err != nil {
			return nil, err
		}
		var tables []string
		for _, n := range names {
			if strings.HasSuffix(n, ".sst") {
				tables = append(tables, n)
			}
		}
		if len(tables) == 0 {
			return nil, fmt.Errorf("seed %d cycle %d: no table files to rot", opts.Seed, cycle)
		}
		victim := tables[rng.Intn(len(tables))]
		size, err := efs.Stat(victim)
		if err != nil {
			return nil, err
		}
		if size > 0 {
			off := rng.Int63n(size)
			length := 1 + rng.Int63n(64)
			if err := efs.CorruptFileRange(victim, off, length); err != nil {
				return nil, err
			}
		}

		db, err = core.Open(efs, cfg)
		if err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: reopen after rot: %w", opts.Seed, cycle, err)
		}
		// Detection before any read touches the rot, then salvage.
		if err := db.Scrub(); err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: scrub: %w", opts.Seed, cycle, err)
		}
		if err := db.WaitIdle(); err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: salvage: %w", opts.Seed, cycle, err)
		}
		if q := db.QuarantinedTables(); q != 0 {
			return nil, fmt.Errorf("seed %d cycle %d: %d tables still quarantined after salvage", opts.Seed, cycle, q)
		}
		if db.Metrics().ScrubCorruptions.Load() > 0 {
			res.Rotted++
		}

		// The integrity contract, key by key.
		for key, want := range acked {
			got, gerr := db.Get([]byte(key), nil)
			switch {
			case gerr == nil:
				if string(got) != want {
					return nil, fmt.Errorf("seed %d cycle %d: SILENT WRONG READ: key %q = %q, want %q",
						opts.Seed, cycle, key, got, want)
				}
			case errors.Is(gerr, core.ErrNotFound):
				// Salvage dropped the rotted block's entries — legitimate
				// loss, but only if rot was actually detected this run.
				if db.Metrics().ScrubCorruptions.Load() == 0 {
					return nil, fmt.Errorf("seed %d cycle %d: key %q lost with no corruption finding",
						opts.Seed, cycle, key)
				}
				res.Lost++
				delete(acked, key)
			case errors.Is(gerr, sstable.ErrCorrupt):
				return nil, fmt.Errorf("seed %d cycle %d: key %q still corrupt after salvage: %v",
					opts.Seed, cycle, key, gerr)
			default:
				return nil, fmt.Errorf("seed %d cycle %d: get %q: %w", opts.Seed, cycle, key, gerr)
			}
		}
		// Bounded blast radius: one rotted range never takes out the bulk
		// of the keyspace (at worst it drops the tables sharing one
		// physical file).
		if len(acked) < keyspace/4 {
			return nil, fmt.Errorf("seed %d cycle %d: lost %d keys in one cycle — blast radius unbounded",
				opts.Seed, cycle, res.Lost)
		}
		// The store keeps accepting writes after recovery.
		probe := fmt.Sprintf("%s-probe-%d", keyPrefix, cycle)
		if err := db.Put([]byte(probe), []byte("ok")); err != nil {
			return nil, fmt.Errorf("seed %d cycle %d: probe put: %w", opts.Seed, cycle, err)
		}
		if got, gerr := db.Get([]byte(probe), nil); gerr != nil || string(got) != "ok" {
			return nil, fmt.Errorf("seed %d cycle %d: probe get = %q, %v", opts.Seed, cycle, got, gerr)
		}
		acked[probe] = "ok"
	}
	if err := db.Close(); err != nil {
		return res, fmt.Errorf("seed %d: final close: %w", opts.Seed, err)
	}
	return res, nil
}
