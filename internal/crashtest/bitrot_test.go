package crashtest

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/core"
)

// TestBitRotRecovery is the bit-rot harness: seeded rot/reopen cycles over
// both physical layouts, asserting zero silent wrong reads, bounded blast
// radius, and full scrub+salvage recovery every cycle.
func TestBitRotRecovery(t *testing.T) {
	seeds := 8
	if !testing.Short() {
		seeds = 24
	}
	profiles := []struct {
		name string
		cfg  func() core.Config
	}{
		{"leveldb", leveldbProfile},
		{"bolt", boltProfile},
	}
	rotted, lost := 0, 0
	for seed := 0; seed < seeds; seed++ {
		p := profiles[seed%len(profiles)]
		res, err := RunBitRot(BitRotOptions{Seed: int64(seed), Profile: p.cfg()})
		if err != nil {
			t.Fatalf("profile %s: %v", p.name, err)
		}
		rotted += res.Rotted
		lost += res.Lost
	}
	t.Logf("%d cycles hit live table bytes across %d seeds; %d keys lost to salvage", rotted, seeds, lost)
	if rotted == 0 {
		t.Fatalf("no seed's rot ever landed in live table bytes; placement is mistuned")
	}
}
