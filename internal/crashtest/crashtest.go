// Package crashtest is a randomized metamorphic crash-recovery harness.
//
// Each run replays a seeded workload against the engine on a fault-
// instrumented in-memory filesystem, "crashes" by snapshotting the
// crash-durable image at a randomly chosen operation site (a Sync, a
// SyncDir, a Rename, a Write — including mid-compaction-file writes and
// the window between the data barrier and the MANIFEST barrier — or a
// hole punch), then reopens the image and verifies the metamorphic
// properties that define crash safety:
//
//   - every acknowledged write is present with its acknowledged value (or
//     a value from a newer in-flight write that may have become durable);
//   - no committed key regressed to an older value;
//   - every key and value in the store is one the workload actually wrote;
//   - the reopened database passes the version invariants and accepts
//     new writes.
//
// Torn runs additionally expose a random prefix of each file's unsynced
// tail (optionally with garbage bytes) in the image, and fall back to
// Repair when the image no longer opens.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// tombstone marks a delete in the model's value sets.
const tombstone = "\x00\x00tombstone"

// keyPrefix namespaces workload keys so verification can recognize them.
const keyPrefix = "ct"

// Options parameterizes one crash-recovery run.
type Options struct {
	// Seed drives every random choice: the workload, the crash class, the
	// crash point, and the torn-write simulation.
	Seed int64
	// Ops is the workload length (default 300).
	Ops int
	// Profile is the engine configuration under test. SyncWAL is forced on:
	// the harness verifies acknowledged durability, which is only promised
	// for synced commits.
	Profile core.Config
	// Torn also tears unsynced tails in the crash image. Torn runs disable
	// deletes: Repair can resurrect a deleted key from a salvaged table,
	// which is a documented repair property, not a crash-safety bug.
	Torn bool
}

// Result reports what one run did.
type Result struct {
	// Fired reports whether the crash point was reached (a run whose
	// random target exceeds the workload's op count verifies the clean
	// post-close image instead).
	Fired bool
	// Class names the crash class (the op set the crash point was drawn
	// from).
	Class string
	// Repaired reports whether the image needed Repair to reopen.
	Repaired bool
}

// model is the oracle: it tracks, under its own lock, what the workload
// has been told about every key.
type model struct {
	mu sync.Mutex
	// acked holds the last acknowledged value per key (tombstone for an
	// acknowledged delete).
	acked map[string]string
	// maybe holds values (and tombstones) attempted but not yet — or
	// never — acknowledged; any of them may have become durable. Cleared
	// per key when a newer attempt is acknowledged: the newer sequence
	// number supersedes them in any durable outcome.
	maybe map[string]map[string]bool
	// tried holds every value ever attempted per key, never cleared: the
	// universe of bytes that may legitimately surface for that key in a
	// repaired image.
	tried map[string]map[string]bool
}

func newModel() *model {
	return &model{
		acked: make(map[string]string),
		maybe: make(map[string]map[string]bool),
		tried: make(map[string]map[string]bool),
	}
}

func addVal(m map[string]map[string]bool, k, v string) {
	if m[k] == nil {
		m[k] = make(map[string]bool)
	}
	m[k][v] = true
}

// begin records an attempt before the engine sees it, so any crash
// snapshot taken during the operation already accounts for it.
func (m *model) begin(k, v string) {
	m.mu.Lock()
	addVal(m.maybe, k, v)
	addVal(m.tried, k, v)
	m.mu.Unlock()
}

// end records the acknowledgement (or leaves a failed attempt in maybe).
func (m *model) end(k, v string, ok bool) {
	if !ok {
		return
	}
	m.mu.Lock()
	m.acked[k] = v
	delete(m.maybe, k)
	m.mu.Unlock()
}

// modelSnapshot is a deep copy of the model at the crash point.
type modelSnapshot struct {
	acked map[string]string
	maybe map[string]map[string]bool
	tried map[string]map[string]bool
}

func copySets(src map[string]map[string]bool) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(src))
	for k, set := range src {
		cp := make(map[string]bool, len(set))
		for v := range set {
			cp[v] = true
		}
		out[k] = cp
	}
	return out
}

func (m *model) snapshot() *modelSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	acked := make(map[string]string, len(m.acked))
	for k, v := range m.acked {
		acked[k] = v
	}
	return &modelSnapshot{acked: acked, maybe: copySets(m.maybe), tried: copySets(m.tried)}
}

// crashClass is a set of op sites and a rule for drawing the crash point.
type crashClass struct {
	name   string
	ops    []vfs.Op
	target func(rng *rand.Rand, ops int) int64
}

// classes covers every barrier and mutation site the engine exercises.
// Targets are drawn to land inside the expected op-count range of a run so
// most runs fire; runs whose target is never reached verify the clean
// close instead (the test asserts a minimum fired fraction).
var classes = []crashClass{
	{"sync", []vfs.Op{vfs.OpSync},
		func(rng *rand.Rand, ops int) int64 { return 1 + rng.Int63n(int64(ops)) }},
	{"write", []vfs.Op{vfs.OpWrite},
		func(rng *rand.Rand, ops int) int64 { return 1 + rng.Int63n(int64(2*ops)) }},
	{"dir-rename", []vfs.Op{vfs.OpSyncDir, vfs.OpRename},
		func(rng *rand.Rand, ops int) int64 { return 1 + rng.Int63n(6) }},
	{"punch", []vfs.Op{vfs.OpPunchHole},
		func(rng *rand.Rand, ops int) int64 { return 1 + rng.Int63n(12) }},
	{"mixed", []vfs.Op{vfs.OpCreate, vfs.OpWrite, vfs.OpReadAt, vfs.OpSync,
		vfs.OpSyncDir, vfs.OpRename, vfs.OpRemove, vfs.OpPunchHole},
		func(rng *rand.Rand, ops int) int64 { return 1 + rng.Int63n(int64(2*ops)) }},
}

// ClassCount is the number of crash classes (exported so the test can
// stratify seeds across all of them).
const ClassCount = 5

// crasher is the injector that "crashes" the run: at the target-th
// occurrence of any op in its class it snapshots the oracle and then the
// crash-durable (optionally torn) image, in that order — everything
// acknowledged in the model copy is durable in the image, never the
// reverse. It always returns nil: the surviving process is irrelevant
// after the crash point; only the image is examined.
type crasher struct {
	efs      *vfs.ErrorFS
	m        *model
	inClass  [256]bool
	torn     bool
	tornSeed int64

	mu      sync.Mutex
	seen    int64
	target  int64
	fired   bool
	img     *vfs.MemFS
	at      *modelSnapshot
	punched bool
}

func (c *crasher) Inject(op vfs.Op, name string, n int64) error {
	if !c.inClass[op] {
		return nil
	}
	c.mu.Lock()
	if c.fired {
		c.mu.Unlock()
		return nil
	}
	c.seen++
	if c.seen < c.target {
		c.mu.Unlock()
		return nil
	}
	c.fired = true
	c.mu.Unlock()

	// Model first, image second (see type comment). punched is sampled
	// with the image so repaired-image verification knows whether salvage
	// may legitimately lose tables behind a hole.
	at := c.m.snapshot()
	punched := c.efs.OpCount(vfs.OpPunchHole) > 0
	var img *vfs.MemFS
	if c.torn {
		img = c.efs.TornCrashImage(rand.New(rand.NewSource(c.tornSeed)))
	} else {
		img = c.efs.CrashImage()
	}
	c.mu.Lock()
	c.img = img
	c.at = at
	c.punched = punched
	c.mu.Unlock()
	return nil
}

func (c *crasher) state() (fired bool, img *vfs.MemFS, at *modelSnapshot, punched bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, c.img, c.at, c.punched
}

// Run executes one seeded crash-recovery cycle and verifies the image.
// A non-nil error is a crash-safety violation (or a harness failure),
// never an expected storage fault.
func Run(opts Options) (*Result, error) {
	if opts.Ops <= 0 {
		opts.Ops = 300
	}
	cfg := opts.Profile
	cfg.SyncWAL = true
	cfg.VerifyInvariants = true

	rng := rand.New(rand.NewSource(opts.Seed))
	class := classes[int(uint64(opts.Seed)%uint64(len(classes)))]
	efs := vfs.NewErrorFS(vfs.NewMem())
	m := newModel()
	cr := &crasher{
		efs:      efs,
		m:        m,
		torn:     opts.Torn,
		tornSeed: opts.Seed ^ 0x7e0_1dba5e5,
		target:   class.target(rng, opts.Ops),
	}
	for _, op := range class.ops {
		cr.inClass[op] = true
	}
	// Armed before the first Open: the crash point may land inside
	// database creation or a mid-workload reopen's recovery.
	efs.SetInjector(cr)

	db, err := core.Open(efs, cfg)
	if err != nil {
		return nil, fmt.Errorf("seed %d: open: %w", opts.Seed, err)
	}

	const keyspace = 160
	for i := 0; i < opts.Ops; i++ {
		if fired, _, _, _ := cr.state(); fired {
			break
		}
		key := fmt.Sprintf("%s%04d", keyPrefix, rng.Intn(keyspace))
		switch {
		case !opts.Torn && rng.Intn(12) == 0:
			m.begin(key, tombstone)
			err := db.Delete([]byte(key))
			m.end(key, tombstone, err == nil)
			if err != nil {
				return nil, fmt.Errorf("seed %d op %d: delete: %w", opts.Seed, i, err)
			}
		case rng.Intn(80) == 0:
			// Clean close + reopen while the crash point is still armed:
			// covers recovery-time barrier sites.
			_ = db.Close() //boltvet:ignore errflow -- injected faults make close errors expected; recovery is validated on reopen
			db, err = core.Open(efs, cfg)
			if err != nil {
				return nil, fmt.Errorf("seed %d op %d: reopen: %w", opts.Seed, i, err)
			}
		case rng.Intn(120) == 0:
			// A manual full compaction: the main producer of hole punches
			// (dead logical tables inside still-live compaction files), so
			// the punch crash class has sites to land on — and crash points
			// inside manual compactions get covered at the same time.
			if err := db.CompactRange(nil, nil); err != nil {
				return nil, fmt.Errorf("seed %d op %d: compact: %w", opts.Seed, i, err)
			}
		default:
			pad := 60 + rng.Intn(180)
			val := fmt.Sprintf("v-s%d-i%d-%d-%s", opts.Seed, i, rng.Int63(),
				strings.Repeat("x", pad))
			m.begin(key, val)
			err := db.Put([]byte(key), []byte(val))
			m.end(key, val, err == nil)
			if err != nil {
				return nil, fmt.Errorf("seed %d op %d: put: %w", opts.Seed, i, err)
			}
		}
	}
	_ = db.Close() //boltvet:ignore errflow -- reap background work; the crash image is already taken and verified on reopen

	res := &Result{Class: class.name}
	fired, img, at, punched := cr.state()
	res.Fired = fired
	if !fired {
		// The target was never reached: verify the clean post-close image,
		// which must match the model exactly.
		img, at, punched = efs.CrashImage(), m.snapshot(), false
	}

	repaired, err := verifyImage(opts.Seed, img, cfg, at, punched, fired)
	res.Repaired = repaired
	if err != nil {
		return res, fmt.Errorf("seed %d class %s (torn=%v, fired=%v): %w",
			opts.Seed, class.name, opts.Torn, fired, err)
	}
	return res, nil
}

// verifyImage reopens a crash image (falling back to Repair when the image
// no longer opens) and checks the metamorphic crash-safety properties
// against the model snapshot taken at the crash point.
func verifyImage(seed int64, img *vfs.MemFS, cfg core.Config, at *modelSnapshot, punched, fired bool) (repaired bool, err error) {
	db, openErr := core.Open(img, cfg)
	if openErr != nil {
		if _, rerr := core.Repair(img, cfg); rerr != nil {
			if len(at.acked) == 0 && len(at.tried) == 0 {
				// Crashed before anything was written, and not even the
				// empty store skeleton survived: nothing to lose.
				return false, nil
			}
			return false, fmt.Errorf("open failed (%v) and repair failed: %w", openErr, rerr)
		}
		repaired = true
		db, err = core.Open(img, cfg)
		if err != nil {
			return repaired, fmt.Errorf("reopen after repair: %w", err)
		}
	}
	defer db.Close() //boltvet:ignore errflow,syncerr -- read-only verification teardown; the properties below are the signal

	if err := db.CheckInvariants(); err != nil {
		return repaired, fmt.Errorf("invariants: %w", err)
	}

	// Property 1+2: every acknowledged write is present and no key
	// regressed below its acknowledged value.
	for k, v := range at.acked {
		got, gerr := db.Get([]byte(k), nil)
		switch {
		case gerr == nil:
			g := string(got)
			if !repaired {
				if v != tombstone && g != v && !at.maybe[k][g] {
					return repaired, fmt.Errorf("key %q = %q, want acked %q or an in-flight value", k, g, v)
				}
				if v == tombstone && !at.maybe[k][g] {
					return repaired, fmt.Errorf("deleted key %q resurfaced as %q without an in-flight write", k, g)
				}
			} else if !at.tried[k][g] {
				return repaired, fmt.Errorf("repaired key %q = %q, never written", k, g)
			}
		case errors.Is(gerr, core.ErrNotFound):
			switch {
			case v == tombstone: // acknowledged delete: absence is the contract
			case at.maybe[k][tombstone]: // an in-flight delete may be durable
			case repaired && punched:
				// Salvage legitimately loses tables chained behind a
				// punched hole; those tables held only dead data unless
				// the crash hit mid-punch — which is exactly this case.
			default:
				return repaired, fmt.Errorf("acked key %q lost (repaired=%v)", k, repaired)
			}
		default:
			return repaired, fmt.Errorf("get %q: %w", k, gerr)
		}
	}

	// Property 3: everything in the store was actually written by the
	// workload, and iteration is ordered.
	it := db.NewIter(nil)
	var prev []byte
	for ok := it.First(); ok; ok = it.Next() {
		k, v := string(it.Key()), string(it.Value())
		if !strings.HasPrefix(k, keyPrefix) {
			_ = it.Close()
			return repaired, fmt.Errorf("foreign key %q in store", k)
		}
		if !at.tried[k][v] {
			// The clean-close image must match the model exactly; a crash
			// image may only surface attempted values.
			_ = it.Close()
			return repaired, fmt.Errorf("key %q holds never-written value %q", k, v)
		}
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			_ = it.Close()
			return repaired, fmt.Errorf("iteration order violation at %q", k)
		}
		prev = append(prev[:0], it.Key()...)
	}
	if ierr := it.Err(); ierr != nil {
		_ = it.Close()
		return repaired, fmt.Errorf("scan: %w", ierr)
	}
	if err := it.Close(); err != nil {
		return repaired, fmt.Errorf("scan close: %w", err)
	}

	// Property 4 (exactness on clean close): every acked live key is
	// present with exactly its acked value.
	if !fired {
		for k, v := range at.acked {
			if v == tombstone {
				continue
			}
			got, gerr := db.Get([]byte(k), nil)
			if gerr != nil || string(got) != v {
				return repaired, fmt.Errorf("clean image key %q = %q, %v; want %q", k, got, gerr, v)
			}
		}
	}

	// Property 5: the reopened store is usable.
	probe := []byte("zz-usability-probe")
	if err := db.Put(probe, []byte("ok")); err != nil {
		return repaired, fmt.Errorf("probe put: %w", err)
	}
	if got, gerr := db.Get(probe, nil); gerr != nil || string(got) != "ok" {
		return repaired, fmt.Errorf("probe get = %q, %v", got, gerr)
	}
	return repaired, nil
}
