package crashtest

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bolt-lsm/bolt/internal/core"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// leveldbProfile is a legacy one-file-per-table configuration at crash-test
// scale (tiny memtable so a few hundred ops cross several flushes).
func leveldbProfile() core.Config {
	return core.Config{
		MemTableBytes:       16 << 10,
		MaxSSTableBytes:     8 << 10,
		BlockSize:           1024,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StopTrigger:       12,
		L1MaxBytes:          64 << 10,
		LevelMultiplier:     10,
		TableCacheEntries:   100,
		BlockCacheBytes:     1 << 20,
		// Single-lock caches: the crash/bit-rot harnesses compare runs
		// byte for byte, so keep cache behaviour independent of the
		// host's GOMAXPROCS.
		CacheShards: 1,
	}
}

// boltProfile adds compaction files, group compaction, settled compaction,
// and the FD cache — the full BoLT element set, including hole punching.
func boltProfile() core.Config {
	c := leveldbProfile()
	c.LogicalSSTableBytes = 4 << 10
	c.GroupCompactionBytes = 16 << 10
	c.SettledCompaction = true
	c.FDCache = true
	return c
}

// hyperBoltProfile layers the HyperLevelDB write path (concurrent memtable
// inserts, dedicated flush thread, no slowdown governor) on top of BoLT.
func hyperBoltProfile() core.Config {
	c := boltProfile()
	c.ConcurrentWriters = true
	c.SeparateFlushThread = true
	c.L0SlowdownTrigger = 0
	return c
}

// vlogBoltProfile enables WAL-time key-value separation over the BoLT
// set: a threshold inside the workload's value-size range (so runs mix
// inline and separated values), segments small enough that rotation and
// background value GC churn mid-workload, and sub-segment GC chunks so
// crashes can land between a GC pass's re-put commit, its watermark
// MANIFEST commit, and its hole punches.
func vlogBoltProfile() core.Config {
	c := boltProfile()
	c.ValueThreshold = 128
	c.VLogSegmentBytes = 8 << 10
	c.VLogGCGarbageRatio = 0.3
	c.VLogGCChunkBytes = 4 << 10
	return c
}

// parallelBoltProfile runs the full BoLT element set with several
// compaction workers, so crashes land while multiple compactions (and
// their MANIFEST commits) are in flight.
func parallelBoltProfile() core.Config {
	c := boltProfile()
	c.MaxBackgroundCompactions = 3
	return c
}

// TestCrashRecovery is the randomized harness: ≥200 seeded crash/reopen
// cycles in short mode across all crash classes, three engine profiles,
// and both clean and torn images — with zero acknowledged-write losses.
func TestCrashRecovery(t *testing.T) {
	seeds := 200
	if !testing.Short() {
		seeds = 600
	}

	profiles := []struct {
		name string
		cfg  func() core.Config
	}{
		{"leveldb", leveldbProfile},
		{"bolt", boltProfile},
		{"vlog", vlogBoltProfile},
		{"hyperbolt", hyperBoltProfile},
		{"parallel", parallelBoltProfile},
	}

	fired := 0
	firedByClass := make(map[string]int)
	for seed := 0; seed < seeds; seed++ {
		p := profiles[(seed/3)%len(profiles)]
		opts := Options{
			Seed:    int64(seed),
			Profile: p.cfg(),
			Torn:    seed%3 == 0,
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("profile %s: %v", p.name, err)
		}
		if res.Fired {
			fired++
			firedByClass[res.Class]++
		}
	}

	t.Logf("%d/%d runs fired a crash; by class: %v", fired, seeds, firedByClass)
	if fired < seeds/3 {
		t.Fatalf("only %d/%d runs reached their crash point; targets are mistuned", fired, seeds)
	}
	// The high-frequency classes must fire (their targets are drawn inside
	// the guaranteed op-count range); low-frequency classes (dir-rename,
	// punch) fire opportunistically.
	for _, class := range []string{"sync", "write", "mixed"} {
		if firedByClass[class] == 0 {
			t.Fatalf("class %q never fired across %d seeds", class, seeds)
		}
	}
}

// TestCrashRecoveryTornManifestForced pins the crash to the MANIFEST
// barrier window: it tears every image at the Sync immediately following a
// MANIFEST write, so the data barrier has been paid but the MANIFEST
// barrier may be torn — the exact window BoLT's commit ordering protects.
func TestCrashRecoveryTornManifestForced(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		opts := Options{
			Seed:    1_000_000 + seed*5, // class "sync" (5 classes, index 0)
			Profile: boltProfile(),
			Torn:    true,
		}
		if _, err := Run(opts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultThenCrashCombo chains both failure modes deterministically: a
// transient table-sync fault is injected and recovered (retry path), then
// the crash image is taken; every acknowledged key must survive reopen.
func TestFaultThenCrashCombo(t *testing.T) {
	cfg := boltProfile()
	cfg.SyncWAL = true
	cfg.VerifyInvariants = true
	cfg.BgRetryBaseDelay = 100 * time.Microsecond
	cfg.BgRetryMaxDelay = time.Millisecond

	efs := vfs.NewErrorFS(vfs.NewMem())
	db, err := core.Open(efs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first table sync, once (FailNth counts all OpSync
	// occurrences globally, and the WAL syncs here would race past it).
	var failedOnce atomic.Bool
	efs.SetInjector(vfs.InjectorFunc(func(op vfs.Op, name string, n int64) error {
		if op == vfs.OpSync && strings.HasSuffix(name, ".sst") &&
			failedOnce.CompareAndSwap(false, true) {
			return &vfs.InjectedError{Op: op, Name: name}
		}
		return nil
	}))

	const n = 200
	val := strings.Repeat("combo-", 40)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("combo%04d", i)), []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatalf("WaitIdle after transient fault = %v, want recovered", err)
	}
	if db.Metrics().BgRetries.Load() == 0 {
		t.Fatal("transient fault was never retried")
	}

	img := efs.CrashImage() // crash after recovery, before close
	_ = db.Close()

	db2, err := core.Open(img, cfg)
	if err != nil {
		t.Fatalf("reopen crash image: %v", err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("combo%04d", i)
		if got, err := db2.Get([]byte(key), nil); err != nil || string(got) != val {
			t.Fatalf("key %s after fault+crash: %q, %v", key, got, err)
		}
	}
}
