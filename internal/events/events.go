// Package events implements the engine's structured event trace: a
// fixed-size ring buffer of typed events (flush, compaction, stall, WAL
// rotation, hole punch, background-error handling) plus an optional
// synchronous listener callback in the style of RocksDB's EventListener.
//
// The design constraints come from the write and read hot paths:
//
//   - Emit performs no allocation: the ring is preallocated and Event is a
//     plain value struct, so recording an event costs one short critical
//     section and a few stores.
//   - The listener is invoked with NO lock held — neither the ring's own
//     mutex nor (by the emitters' contract in internal/core) the engine
//     mutex. A listener may therefore call back into the database, or into
//     Log.Events, without deadlocking.
//
// Events describe what the paper measures: barriers per compaction, bytes
// between barriers, stall causes, settled promotions, and hole-punch
// reclamation, each stamped with a wall-clock time and a monotonic
// sequence number so external tools can order and diff them.
package events

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Type identifies what an Event describes.
type Type uint8

// The event types emitted by internal/core.
const (
	// TypeFlushStart marks the start of a memtable flush; BytesIn is the
	// memtable's approximate size.
	TypeFlushStart Type = iota + 1
	// TypeFlushEnd marks a committed flush: Outputs tables, BytesOut table
	// bytes, Barriers fsyncs paid, Dur wall time.
	TypeFlushEnd
	// TypeCompactionStart marks a picked compaction: Level/OutputLevel,
	// Inputs tables (both levels), BytesIn input bytes, Reason the picker's
	// cause (size, seek, manual).
	TypeCompactionStart
	// TypeCompactionEnd marks a committed compaction with its outcome:
	// Outputs tables, BytesOut bytes written, Barriers fsyncs paid, Dur
	// wall time.
	TypeCompactionEnd
	// TypeSettledPromotion marks tables promoted without rewrite by a
	// settled compaction; Outputs is the promoted-table count.
	TypeSettledPromotion
	// TypeHolePunch marks one dead logical-SSTable range reclaimed
	// barrier-free; File is the physical file, BytesOut the punched bytes.
	TypeHolePunch
	// TypeHolePunchFallback marks a punch the backend could not perform;
	// the range is recorded as dead-but-allocated space debt instead.
	TypeHolePunchFallback
	// TypeStallBegin marks a writer entering a governor stall; Reason names
	// the cause (l0-slowdown, memtable-full, l0-stop).
	TypeStallBegin
	// TypeStallEnd marks the stall's end; Dur is the stalled time.
	TypeStallEnd
	// TypeWALRotation marks a memtable switch to a fresh WAL; File is the
	// new log number.
	TypeWALRotation
	// TypeBgRetry marks a failed background flush/compaction attempt being
	// retried; Err is the failure, Dur the backoff delay.
	TypeBgRetry
	// TypeBgDegraded marks the engine entering read-only mode; Err is the
	// unrecoverable cause.
	TypeBgDegraded
	// TypeScrubStart marks the start of one background integrity pass;
	// Inputs is the table count the pass will walk, BytesIn their bytes.
	TypeScrubStart
	// TypeScrubEnd marks a completed pass: Inputs tables actually verified,
	// BytesIn bytes read, Outputs corruption findings, Dur wall time.
	TypeScrubEnd
	// TypeScrubFinding marks one corrupt table discovered by the scrubber;
	// File is the physical file, Level the table's level, Err the finding.
	TypeScrubFinding
	// TypeQuarantine marks a table entering quarantine; File is the
	// physical file, Level the table's level, Err the corruption cause.
	TypeQuarantine
	// TypeQuarantineClear marks a quarantined table salvaged and dropped:
	// Outputs is the rewritten-table count, BytesOut the salvaged bytes,
	// Inputs the skipped (unrecoverable) block count.
	TypeQuarantineClear
	// TypeConfigClamp marks an invalid (negative) configuration value
	// clamped to its default at Open; Reason names the knob and the
	// rejected value.
	TypeConfigClamp
	// TypeVLogRotation marks the active value-log segment being sealed and
	// replaced; File is the new segment number, BytesOut the sealed
	// segment's final size.
	TypeVLogRotation
	// TypeVLogGC marks one committed value-GC chunk pass: File is the
	// segment, BytesIn the bytes scanned, BytesOut the bytes reclaimed,
	// Outputs the live records re-put, Dur the pass wall time.
	TypeVLogGC
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeFlushStart:
		return "flush-start"
	case TypeFlushEnd:
		return "flush-end"
	case TypeCompactionStart:
		return "compaction-start"
	case TypeCompactionEnd:
		return "compaction-end"
	case TypeSettledPromotion:
		return "settled-promotion"
	case TypeHolePunch:
		return "hole-punch"
	case TypeHolePunchFallback:
		return "hole-punch-fallback"
	case TypeStallBegin:
		return "stall-begin"
	case TypeStallEnd:
		return "stall-end"
	case TypeWALRotation:
		return "wal-rotation"
	case TypeBgRetry:
		return "bg-retry"
	case TypeBgDegraded:
		return "bg-degraded"
	case TypeScrubStart:
		return "scrub-start"
	case TypeScrubEnd:
		return "scrub-end"
	case TypeScrubFinding:
		return "scrub-finding"
	case TypeQuarantine:
		return "quarantine"
	case TypeQuarantineClear:
		return "quarantine-clear"
	case TypeConfigClamp:
		return "config-clamp"
	case TypeVLogRotation:
		return "vlog-rotation"
	case TypeVLogGC:
		return "vlog-gc"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one engine occurrence. Fields are interpreted per Type; unused
// fields are zero. Event is a plain value: emitting one allocates nothing.
type Event struct {
	// Seq is the event's position in the emission order, assigned by the
	// log starting at 1. Gaps never occur; a reader comparing Seq against
	// the log's TotalEmitted can tell how many events it missed.
	Seq uint64
	// Time is the event's wall-clock stamp (assigned at Emit when zero;
	// retroactively-emitted events carry the time the condition began).
	Time time.Time
	// Type says what happened.
	Type Type

	// Level / OutputLevel locate compactions and flushes in the tree.
	Level       int
	OutputLevel int
	// Inputs / Outputs count tables consumed and produced.
	Inputs  int
	Outputs int
	// BytesIn / BytesOut measure the data volume on each side.
	BytesIn  int64
	BytesOut int64
	// Barriers is the number of fsync barriers paid by the operation —
	// the paper's central cost metric.
	Barriers int64
	// Dur is the operation's wall time (or the stall/backoff duration).
	Dur time.Duration
	// File is the physical file or WAL number the event refers to.
	File uint64
	// Reason is a static cause tag (compaction reason, stall cause).
	Reason string
	// Err is the failure text for bg-retry / bg-degraded events.
	Err string
	// Job is the engine-assigned, monotonically increasing ID shared by
	// the start and end events of one flush or compaction, so interleaved
	// parallel work can be correlated. Zero means unnumbered.
	Job uint64
	// Worker identifies the goroutine that ran the job: 0 is the
	// dedicated flush thread, 1..N are compaction pool workers, and -1 is
	// a foreground (manual) compaction. Only meaningful when Job != 0.
	Worker int
}

// String renders one human-readable trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %s %-19s", e.Seq, e.Time.Format("15:04:05.000"), e.Type)
	switch e.Type {
	case TypeFlushStart:
		fmt.Fprintf(&b, " L0 in=%dB", e.BytesIn)
	case TypeFlushEnd:
		fmt.Fprintf(&b, " L0 out=%d tables %dB barriers=%d dur=%v",
			e.Outputs, e.BytesOut, e.Barriers, e.Dur.Round(time.Microsecond))
	case TypeCompactionStart:
		fmt.Fprintf(&b, " L%d->L%d in=%d tables %dB reason=%s",
			e.Level, e.OutputLevel, e.Inputs, e.BytesIn, e.Reason)
	case TypeCompactionEnd:
		fmt.Fprintf(&b, " L%d->L%d out=%d tables %dB barriers=%d dur=%v",
			e.Level, e.OutputLevel, e.Outputs, e.BytesOut, e.Barriers, e.Dur.Round(time.Microsecond))
	case TypeSettledPromotion:
		fmt.Fprintf(&b, " L%d->L%d promoted=%d", e.Level, e.OutputLevel, e.Outputs)
	case TypeHolePunch, TypeHolePunchFallback:
		fmt.Fprintf(&b, " phys=%d %dB", e.File, e.BytesOut)
	case TypeStallBegin:
		fmt.Fprintf(&b, " cause=%s", e.Reason)
	case TypeStallEnd:
		fmt.Fprintf(&b, " cause=%s dur=%v", e.Reason, e.Dur.Round(time.Microsecond))
	case TypeWALRotation:
		fmt.Fprintf(&b, " wal=%d", e.File)
	case TypeBgRetry:
		fmt.Fprintf(&b, " backoff=%v err=%s", e.Dur.Round(time.Millisecond), e.Err)
	case TypeBgDegraded:
		fmt.Fprintf(&b, " err=%s", e.Err)
	case TypeScrubStart:
		fmt.Fprintf(&b, " tables=%d %dB", e.Inputs, e.BytesIn)
	case TypeScrubEnd:
		fmt.Fprintf(&b, " tables=%d %dB findings=%d dur=%v",
			e.Inputs, e.BytesIn, e.Outputs, e.Dur.Round(time.Microsecond))
	case TypeScrubFinding:
		fmt.Fprintf(&b, " L%d phys=%d err=%s", e.Level, e.File, e.Err)
	case TypeQuarantine:
		fmt.Fprintf(&b, " L%d phys=%d err=%s", e.Level, e.File, e.Err)
	case TypeQuarantineClear:
		fmt.Fprintf(&b, " L%d out=%d tables %dB skipped-blocks=%d",
			e.Level, e.Outputs, e.BytesOut, e.Inputs)
	case TypeConfigClamp:
		fmt.Fprintf(&b, " %s", e.Reason)
	case TypeVLogRotation:
		fmt.Fprintf(&b, " vlog=%d sealed=%dB", e.File, e.BytesOut)
	case TypeVLogGC:
		fmt.Fprintf(&b, " vlog=%d scanned=%dB reclaimed=%dB reput=%d dur=%v",
			e.File, e.BytesIn, e.BytesOut, e.Outputs, e.Dur.Round(time.Microsecond))
	}
	if e.Job != 0 {
		switch e.Type {
		case TypeFlushStart, TypeFlushEnd, TypeCompactionStart, TypeCompactionEnd:
			fmt.Fprintf(&b, " job=%d", e.Job)
			if e.Worker >= 0 {
				fmt.Fprintf(&b, " w=%d", e.Worker)
			}
		}
	}
	return b.String()
}

// Listener receives every emitted event synchronously. It runs with no
// lock held; implementations may call back into the database but must be
// fast — a slow listener slows the background work that emits.
type Listener func(Event)

// Log is a bounded ring buffer of events. The zero value is not usable;
// call NewLog. All methods are safe for concurrent use.
type Log struct {
	// listener is immutable after NewLog and invoked outside mu.
	listener Listener //boltvet:guardedby none -- immutable after NewLog; invoked outside mu by design

	// mu guards the ring state below.
	mu  sync.Mutex
	buf []Event //boltvet:guardedby mu
	// next is the total number of events emitted; buf[(next-1)%len] is the
	// newest event.
	next uint64 //boltvet:guardedby mu
}

// NewLog returns a log retaining the last capacity events (minimum 1),
// delivering each to listener (may be nil) as it is emitted.
func NewLog(capacity int, listener Listener) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{buf: make([]Event, capacity), listener: listener}
}

// Emit records e and delivers it to the listener. The ring append holds
// only the log's own mutex; the listener runs with no lock held. Emit
// allocates nothing.
func (l *Log) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	l.next++
	e.Seq = l.next
	l.buf[int((l.next-1)%uint64(len(l.buf)))] = e
	l.mu.Unlock()
	if l.listener != nil {
		l.listener(e)
	}
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	capacity := uint64(len(l.buf))
	count := n
	if count > capacity {
		count = capacity
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, l.buf[int(i%capacity)])
	}
	return out
}

// TotalEmitted returns the number of events ever emitted (retained or
// overwritten).
func (l *Log) TotalEmitted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Capacity returns the ring size.
func (l *Log) Capacity() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
