package events

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogRingOrderAndWraparound(t *testing.T) {
	l := NewLog(4, nil)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: TypeWALRotation, File: uint64(i)})
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		wantFile := uint64(6 + i)
		wantSeq := uint64(7 + i)
		if e.File != wantFile || e.Seq != wantSeq {
			t.Fatalf("event %d: File=%d Seq=%d, want File=%d Seq=%d", i, e.File, e.Seq, wantFile, wantSeq)
		}
	}
	if l.TotalEmitted() != 10 {
		t.Fatalf("TotalEmitted=%d, want 10", l.TotalEmitted())
	}
	if l.Capacity() != 4 {
		t.Fatalf("Capacity=%d, want 4", l.Capacity())
	}
}

func TestLogPartialFill(t *testing.T) {
	l := NewLog(8, nil)
	l.Emit(Event{Type: TypeFlushStart})
	l.Emit(Event{Type: TypeFlushEnd})
	got := l.Events()
	if len(got) != 2 {
		t.Fatalf("retained %d events, want 2", len(got))
	}
	if got[0].Type != TypeFlushStart || got[1].Type != TypeFlushEnd {
		t.Fatalf("wrong order: %v then %v", got[0].Type, got[1].Type)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Seq=%d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].Time.IsZero() {
		t.Fatal("Emit did not stamp a zero Time")
	}
}

func TestLogPreservesExplicitTime(t *testing.T) {
	l := NewLog(2, nil)
	stamp := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	l.Emit(Event{Type: TypeStallBegin, Time: stamp})
	if got := l.Events()[0].Time; !got.Equal(stamp) {
		t.Fatalf("Time=%v, want %v", got, stamp)
	}
}

func TestLogMinimumCapacity(t *testing.T) {
	l := NewLog(0, nil)
	l.Emit(Event{Type: TypeFlushStart})
	l.Emit(Event{Type: TypeFlushEnd})
	got := l.Events()
	if len(got) != 1 || got[0].Type != TypeFlushEnd {
		t.Fatalf("capacity-clamped log retained %v, want just flush-end", got)
	}
}

func TestListenerReceivesEventsAndMayReenter(t *testing.T) {
	var l *Log
	var mu sync.Mutex
	var seen []uint64
	l = NewLog(4, func(e Event) {
		// Re-entering the log from inside the listener must not deadlock:
		// the ring mutex is released before the listener runs.
		_ = l.Events()
		_ = l.TotalEmitted()
		mu.Lock()
		seen = append(seen, e.Seq)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		l.Emit(Event{Type: TypeBgRetry})
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("listener saw %d events, want 3", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("listener saw Seq %d at position %d", s, i)
		}
	}
}

func TestLogConcurrentEmit(t *testing.T) {
	const goroutines = 8
	const perG = 500
	l := NewLog(64, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Emit(Event{Type: TypeHolePunch})
				_ = l.Events()
			}
		}()
	}
	wg.Wait()
	if got := l.TotalEmitted(); got != goroutines*perG {
		t.Fatalf("TotalEmitted=%d, want %d", got, goroutines*perG)
	}
	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous Seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Seq: 1, Type: TypeCompactionStart, Level: 1, OutputLevel: 2, Inputs: 5, BytesIn: 1024, Reason: "size"},
			[]string{"compaction-start", "L1->L2", "in=5 tables", "reason=size"}},
		{Event{Seq: 2, Type: TypeCompactionEnd, Level: 1, OutputLevel: 2, Outputs: 3, BytesOut: 900, Barriers: 2, Dur: time.Millisecond},
			[]string{"compaction-end", "out=3 tables", "barriers=2"}},
		{Event{Seq: 3, Type: TypeStallEnd, Reason: "l0-stop", Dur: 5 * time.Millisecond},
			[]string{"stall-end", "cause=l0-stop", "dur=5ms"}},
		{Event{Seq: 4, Type: TypeHolePunch, File: 12, BytesOut: 4096},
			[]string{"hole-punch", "phys=12", "4096B"}},
		{Event{Seq: 5, Type: TypeBgDegraded, Err: "disk gone"},
			[]string{"bg-degraded", "err=disk gone"}},
		{Event{Seq: 6, Type: TypeWALRotation, File: 9},
			[]string{"wal-rotation", "wal=9"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, want := range c.want {
			if !strings.Contains(s, want) {
				t.Errorf("%v.String() = %q, missing %q", c.e.Type, s, want)
			}
		}
	}
	if got := Type(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String() = %q", got)
	}
}

// BenchmarkEmit proves the no-listener emission path allocates nothing.
func BenchmarkEmit(b *testing.B) {
	l := NewLog(1024, nil)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(Event{Type: TypeCompactionEnd, Time: now, Level: 1, OutputLevel: 2, BytesOut: 1 << 20, Barriers: 2})
	}
}

// TestListenerSeesEveryWrappedEmission pins the listener/ring interaction
// across wraparound: the ring retains only the last capacity events, but
// the listener must see every emission, in order, with the same Seq the
// ring assigned — overwriting an old slot must not swallow or reorder the
// synchronous delivery.
func TestListenerSeesEveryWrappedEmission(t *testing.T) {
	const capacity, emitted = 3, 11
	var heard []Event
	l := NewLog(capacity, func(e Event) { heard = append(heard, e) })
	for i := 0; i < emitted; i++ {
		l.Emit(Event{Type: TypeWALRotation, File: uint64(i)})
	}

	if len(heard) != emitted {
		t.Fatalf("listener heard %d events, want %d", len(heard), emitted)
	}
	for i, e := range heard {
		if e.File != uint64(i) || e.Seq != uint64(i+1) {
			t.Fatalf("heard[%d]: File=%d Seq=%d, want File=%d Seq=%d", i, e.File, e.Seq, i, i+1)
		}
	}

	retained := l.Events()
	if len(retained) != capacity {
		t.Fatalf("retained %d events, want %d", len(retained), capacity)
	}
	for i, e := range retained {
		want := heard[emitted-capacity+i]
		if e.File != want.File || e.Seq != want.Seq {
			t.Fatalf("retained[%d]: File=%d Seq=%d, want File=%d Seq=%d", i, e.File, e.Seq, want.File, want.Seq)
		}
	}
}
