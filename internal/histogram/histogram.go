// Package histogram provides a concurrent, log-bucketed latency histogram
// used for the paper's tail-latency figures (4b, 14, 16). Buckets grow
// geometrically from 100 ns to ~100 s, giving ~2.5% relative error, which
// is ample for percentile plots.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

const (
	numBuckets = 400
	minValueNs = 100 // 100 ns floor
	// growth chosen so bucket 399 is ~ 1e11 ns (100 s).
	growth = 1.054
)

var bucketBounds = func() [numBuckets]float64 {
	var b [numBuckets]float64
	v := float64(minValueNs)
	for i := range b {
		b[i] = v
		v *= growth
	}
	return b
}()

// Histogram accumulates duration samples. The zero value is ready to use
// and safe for concurrent recording.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	ns := float64(d.Nanoseconds())
	if ns < minValueNs {
		ns = minValueNs
	}
	idx := int(math.Log(ns/minValueNs) / math.Log(growth))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	if idx < 0 {
		idx = 0
	}
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		cur := h.maxNs.Load()
		if d.Nanoseconds() <= cur || h.maxNs.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Sum returns the total of all samples (the _sum of a Prometheus summary).
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile returns the q-th quantile (0 < q <= 1) as a duration.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketBounds[i])
		}
	}
	return h.Max()
}

// CDFPoint is one point of an exported CDF curve.
type CDFPoint struct {
	// Percentile in [0,100].
	Percentile float64
	// Latency at that percentile.
	Latency time.Duration
}

// CDF exports the latency CDF at the given percentiles (e.g. 50, 90, 99,
// 99.9). Nil selects a standard dense set used by the figures.
func (h *Histogram) CDF(percentiles []float64) []CDFPoint {
	if percentiles == nil {
		percentiles = []float64{10, 25, 50, 75, 90, 95, 97, 98, 99, 99.5, 99.85, 99.9, 99.99}
	}
	sort.Float64s(percentiles)
	out := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		out = append(out, CDFPoint{Percentile: p, Latency: h.Quantile(p / 100)})
	}
	return out
}

// Snapshot returns a point-in-time copy usable for deltas.
func (h *Histogram) Snapshot() *Histogram {
	s := &Histogram{}
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i].Store(c)
		total += c
	}
	s.total.Store(total)
	s.sumNs.Store(h.sumNs.Load())
	s.maxNs.Store(h.maxNs.Load())
	return s
}

// String renders a compact summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p95=%v p99=%v p99.9=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95),
		h.Quantile(0.99), h.Quantile(0.999), h.Max())
	return b.String()
}
