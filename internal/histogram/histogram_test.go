package histogram

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m < 40*time.Millisecond || m > 60*time.Millisecond {
		t.Fatalf("Mean = %v", m)
	}
	if max := h.Max(); max != 100*time.Millisecond {
		t.Fatalf("Max = %v", max)
	}
	// p50 within bucket error of 50ms.
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Record(time.Duration(s%10_000_000) * time.Nanosecond)
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	exact := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // ~exponential around 1ms
		if v < 100 {
			v = 100
		}
		exact = append(exact, v)
		h.Record(time.Duration(v))
	}
	// Compare p95 against exact.
	cp := append([]int64(nil), exact...)
	sortInt64(cp)
	want := cp[int(0.95*float64(len(cp)))-1]
	got := h.Quantile(0.95).Nanoseconds()
	ratio := float64(got) / float64(want)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("p95: got %d want %d (ratio %.3f)", got, want, ratio)
	}
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestCDFOrdered(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	cdf := h.CDF(nil)
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Percentile < cdf[i-1].Percentile || cdf[i].Latency < cdf[i-1].Latency {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestSnapshotIndependent(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot()
	h.Record(time.Second)
	if s.Count() != 1 {
		t.Fatalf("snapshot count = %d", s.Count())
	}
	if s.Max() >= time.Second {
		t.Fatal("snapshot mutated")
	}
}

func TestTinyAndHugeSamples(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(time.Nanosecond)
	h.Record(24 * time.Hour)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(1.0) < time.Minute {
		t.Fatal("huge sample lost")
	}
}
