// Package iterator defines the forward iterator contract shared by
// memtables, SSTables, and the engine's merged views, plus the merging
// iterator that combines multiple sorted sources.
package iterator

import (
	"github.com/bolt-lsm/bolt/internal/keys"
)

// Iterator walks a sorted sequence of internal key/value entries. All
// iterators in this codebase are forward-only (the evaluation workloads
// only scan forward). The usual pattern:
//
//	for ok := it.First(); ok; ok = it.Next() { ... }
//	if err := it.Err(); err != nil { ... }
//
// Key and Value return slices valid only until the next positioning call.
//
//boltvet:mustclose
type Iterator interface {
	// First positions at the first entry and reports validity.
	First() bool
	// Seek positions at the first entry with internal key >= target.
	Seek(target keys.InternalKey) bool
	// Next advances; reports validity.
	Next() bool
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Key returns the current internal key.
	Key() keys.InternalKey
	// Value returns the current value.
	Value() []byte
	// Err returns the first error encountered, if any.
	Err() error
	// Close releases resources. The iterator is unusable afterwards.
	Close() error
}

// Empty is an iterator over nothing; Err returns the provided error, which
// lets table-open failures propagate through merged iteration.
type Empty struct{ ErrValue error }

var _ Iterator = (*Empty)(nil)

// First implements Iterator.
func (e *Empty) First() bool { return false }

// Seek implements Iterator.
func (e *Empty) Seek(keys.InternalKey) bool { return false }

// Next implements Iterator.
func (e *Empty) Next() bool { return false }

// Valid implements Iterator.
func (e *Empty) Valid() bool { return false }

// Key implements Iterator.
func (e *Empty) Key() keys.InternalKey { return nil }

// Value implements Iterator.
func (e *Empty) Value() []byte { return nil }

// Err implements Iterator.
func (e *Empty) Err() error { return e.ErrValue }

// Close implements Iterator.
func (e *Empty) Close() error { return nil }

// Merging merges entries from several iterators into one sorted stream
// using a loser-free binary heap keyed on the current internal key. Ties
// (identical internal keys cannot occur between sources since sequence
// numbers are unique) are broken by source index for determinism.
type Merging struct {
	sources []Iterator
	heap    []int // indexes into sources, heap-ordered by current key
	err     error
}

var _ Iterator = (*Merging)(nil)

// NewMerging returns a merging iterator over the given sources. The
// merging iterator owns the sources and closes them on Close.
func NewMerging(sources ...Iterator) *Merging {
	return &Merging{sources: sources}
}

func (m *Merging) less(a, b int) bool {
	c := keys.Compare(m.sources[a].Key(), m.sources[b].Key())
	if c != 0 {
		return c < 0
	}
	return a < b
}

func (m *Merging) heapInit() {
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.heapDown(i)
	}
}

func (m *Merging) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

func (m *Merging) rebuild(position func(Iterator) bool) bool {
	m.heap = m.heap[:0]
	for i, src := range m.sources {
		if position(src) {
			m.heap = append(m.heap, i)
		} else if err := src.Err(); err != nil && m.err == nil {
			m.err = err
		}
	}
	if m.err != nil {
		m.heap = m.heap[:0]
		return false
	}
	m.heapInit()
	return len(m.heap) > 0
}

// First implements Iterator.
func (m *Merging) First() bool {
	m.err = nil
	return m.rebuild(func(it Iterator) bool { return it.First() })
}

// Seek implements Iterator.
func (m *Merging) Seek(target keys.InternalKey) bool {
	m.err = nil
	return m.rebuild(func(it Iterator) bool { return it.Seek(target) })
}

// Next implements Iterator.
func (m *Merging) Next() bool {
	if !m.Valid() {
		return false
	}
	top := m.heap[0]
	if m.sources[top].Next() {
		m.heapDown(0)
		return true
	}
	if err := m.sources[top].Err(); err != nil {
		m.err = err
		m.heap = m.heap[:0]
		return false
	}
	// Source exhausted: remove from heap.
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	if last > 0 {
		m.heapDown(0)
	}
	return len(m.heap) > 0
}

// Valid implements Iterator.
func (m *Merging) Valid() bool { return m.err == nil && len(m.heap) > 0 }

// Key implements Iterator.
func (m *Merging) Key() keys.InternalKey {
	if !m.Valid() {
		return nil
	}
	return m.sources[m.heap[0]].Key()
}

// Value implements Iterator.
func (m *Merging) Value() []byte {
	if !m.Valid() {
		return nil
	}
	return m.sources[m.heap[0]].Value()
}

// Err implements Iterator.
func (m *Merging) Err() error { return m.err }

// Close implements Iterator; it closes all sources and returns the first
// close error.
func (m *Merging) Close() error {
	var first error
	for _, src := range m.sources {
		if err := src.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.sources = nil
	m.heap = nil
	return first
}
