package iterator

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
)

func ik(u string, seq uint64) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), keys.Seq(seq), keys.KindSet)
}

func entries(kvs ...string) []KV {
	var out []KV
	for i := 0; i+1 < len(kvs); i += 2 {
		out = append(out, KV{K: ik(kvs[i], 1), V: []byte(kvs[i+1])})
	}
	return out
}

func collect(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, string(it.Key().UserKey())+"="+string(it.Value()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSliceIterator(t *testing.T) {
	it := NewSlice(entries("a", "1", "c", "3", "e", "5"))
	got := collect(t, it)
	want := []string{"a=1", "c=3", "e=5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v", got)
	}
	if !it.Seek(ik("b", 1)) || string(it.Key().UserKey()) != "c" {
		t.Fatal("seek b should land on c")
	}
	if it.Seek(ik("z", 1)) {
		t.Fatal("seek past end should invalidate")
	}
}

func TestMergingInterleaves(t *testing.T) {
	a := NewSlice(entries("a", "1", "d", "4", "g", "7"))
	b := NewSlice(entries("b", "2", "e", "5"))
	c := NewSlice(entries("c", "3", "f", "6"))
	m := NewMerging(a, b, c)
	got := collect(t, m)
	want := []string{"a=1", "b=2", "c=3", "d=4", "e=5", "f=6", "g=7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergingEmptySources(t *testing.T) {
	m := NewMerging(NewSlice(nil), NewSlice(entries("a", "1")), NewSlice(nil))
	got := collect(t, m)
	if len(got) != 1 || got[0] != "a=1" {
		t.Fatalf("got %v", got)
	}
	empty := NewMerging()
	if empty.First() {
		t.Fatal("merge of zero sources should be invalid")
	}
}

func TestMergingSeek(t *testing.T) {
	a := NewSlice(entries("a", "1", "d", "4"))
	b := NewSlice(entries("b", "2", "e", "5"))
	m := NewMerging(a, b)
	if !m.Seek(ik("c", 1)) || string(m.Key().UserKey()) != "d" {
		t.Fatalf("seek c landed on %q", m.Key())
	}
	var rest []string
	rest = append(rest, string(m.Key().UserKey()))
	for m.Next() {
		rest = append(rest, string(m.Key().UserKey()))
	}
	if fmt.Sprint(rest) != fmt.Sprint([]string{"d", "e"}) {
		t.Fatalf("rest = %v", rest)
	}
}

func TestMergingNewestVersionFirst(t *testing.T) {
	// Same user key in two sources at different sequence numbers: the
	// merged stream must yield the newer (higher seq) one first.
	a := NewSlice([]KV{{K: ik("k", 5), V: []byte("old")}})
	b := NewSlice([]KV{{K: ik("k", 9), V: []byte("new")}})
	m := NewMerging(a, b)
	if !m.First() {
		t.Fatal("invalid")
	}
	if string(m.Value()) != "new" {
		t.Fatalf("first version = %q, want new", m.Value())
	}
	if !m.Next() || string(m.Value()) != "old" {
		t.Fatalf("second version = %q, want old", m.Value())
	}
}

func TestMergingPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	m := NewMerging(NewSlice(entries("a", "1")), &Empty{ErrValue: wantErr})
	if m.First() {
		t.Fatal("error source should invalidate merge")
	}
	if !errors.Is(m.Err(), wantErr) {
		t.Fatalf("Err = %v", m.Err())
	}
}

// Property: merging K random sorted slices equals sorting the union.
func TestMergingEqualsSortProperty(t *testing.T) {
	f := func(seed int64, nSources uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(nSources)%5 + 1
		var all []KV
		var sources []Iterator
		seq := uint64(1)
		for i := 0; i < k; i++ {
			n := rng.Intn(50)
			var es []KV
			for j := 0; j < n; j++ {
				key := fmt.Sprintf("k%03d", rng.Intn(200))
				es = append(es, KV{K: ik(key, seq), V: []byte{byte(i)}})
				seq++
			}
			sort.Slice(es, func(a, b int) bool { return keys.Compare(es[a].K, es[b].K) < 0 })
			all = append(all, es...)
			sources = append(sources, NewSlice(es))
		}
		sort.Slice(all, func(a, b int) bool { return keys.Compare(all[a].K, all[b].K) < 0 })

		m := NewMerging(sources...)
		i := 0
		for ok := m.First(); ok; ok = m.Next() {
			if i >= len(all) || keys.Compare(m.Key(), all[i].K) != 0 {
				return false
			}
			i++
		}
		return m.Err() == nil && i == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// closeRecorder wraps a source to observe Close calls and inject a Close
// error.
type closeRecorder struct {
	Iterator
	closeErr error
	closed   int
}

func (c *closeRecorder) Close() error {
	c.closed++
	if err := c.Iterator.Close(); c.closeErr == nil {
		return err
	}
	return c.closeErr
}

// TestMergingCloseAggregatesErrors pins the Close contract: the first
// source error is the one returned, and every source is still closed —
// a failing source must not strand the descriptors behind later ones.
func TestMergingCloseAggregatesErrors(t *testing.T) {
	errA := errors.New("close A failed")
	errB := errors.New("close B failed")
	sources := []*closeRecorder{
		{Iterator: NewSlice(nil)},
		{Iterator: NewSlice(nil), closeErr: errA},
		{Iterator: NewSlice(nil), closeErr: errB},
		{Iterator: NewSlice(nil)},
	}
	var asIter []Iterator
	for _, s := range sources {
		asIter = append(asIter, s)
	}
	m := NewMerging(asIter...)
	if err := m.Close(); !errors.Is(err, errA) {
		t.Fatalf("Close = %v, want the first source error %v", err, errA)
	}
	for i, s := range sources {
		if s.closed != 1 {
			t.Errorf("source %d closed %d times, want exactly once", i, s.closed)
		}
	}
}

// TestMergingCloseCleanSources is the aggregation baseline: all sources
// close cleanly and Close reports nil.
func TestMergingCloseCleanSources(t *testing.T) {
	sources := []*closeRecorder{
		{Iterator: NewSlice(nil)},
		{Iterator: NewSlice(nil)},
	}
	m := NewMerging(sources[0], sources[1])
	if err := m.Close(); err != nil {
		t.Fatalf("Close = %v, want nil", err)
	}
	for i, s := range sources {
		if s.closed != 1 {
			t.Errorf("source %d closed %d times, want exactly once", i, s.closed)
		}
	}
}
