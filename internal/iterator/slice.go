package iterator

import (
	"sort"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// KV is one entry of a Slice iterator.
type KV struct {
	K keys.InternalKey
	V []byte
}

// Slice is an iterator over an in-memory sorted slice of entries. It is
// used by tests and by small internal merges.
type Slice struct {
	entries []KV
	pos     int
}

var _ Iterator = (*Slice)(nil)

// NewSlice returns an iterator over entries, which must already be sorted
// by internal key.
func NewSlice(entries []KV) *Slice {
	return &Slice{entries: entries, pos: -1}
}

// First implements Iterator.
func (s *Slice) First() bool {
	s.pos = 0
	return s.Valid()
}

// Seek implements Iterator.
func (s *Slice) Seek(target keys.InternalKey) bool {
	s.pos = sort.Search(len(s.entries), func(i int) bool {
		return keys.Compare(s.entries[i].K, target) >= 0
	})
	return s.Valid()
}

// Next implements Iterator.
func (s *Slice) Next() bool {
	if s.pos < 0 {
		return false
	}
	s.pos++
	return s.Valid()
}

// Valid implements Iterator.
func (s *Slice) Valid() bool { return s.pos >= 0 && s.pos < len(s.entries) }

// Key implements Iterator.
func (s *Slice) Key() keys.InternalKey {
	if !s.Valid() {
		return nil
	}
	return s.entries[s.pos].K
}

// Value implements Iterator.
func (s *Slice) Value() []byte {
	if !s.Valid() {
		return nil
	}
	return s.entries[s.pos].V
}

// Err implements Iterator.
func (s *Slice) Err() error { return nil }

// Close implements Iterator.
func (s *Slice) Close() error { return nil }
