// Package keys implements the internal key encoding used throughout the
// engine. An internal key is a user key followed by an 8-byte little-endian
// trailer packing a 56-bit sequence number and an 8-bit value kind, exactly
// as in LevelDB. Internal keys order by user key ascending, then sequence
// number descending, then kind descending, so the newest entry for a user
// key sorts first.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind describes the type of an entry stored under an internal key.
type Kind uint8

// Entry kinds. KindDelete must sort before KindSet for equal sequence
// numbers; LevelDB assigns delete=0, set=1.
const (
	KindDelete Kind = 0
	KindSet    Kind = 1
	// KindSetPtr is a set whose value lives out of line in the value log;
	// the entry's value bytes encode a vlog.Pointer instead of the value
	// itself. Within one sequence number it must sort after KindSet, but a
	// user key never carries both kinds at the same sequence, so only
	// distinctness matters.
	KindSetPtr Kind = 2

	// KindSeekMax is the kind used when constructing a key for seeking:
	// because kinds sort descending within a sequence number, the maximal
	// kind positions the seek key before all entries with the same user key
	// and sequence number.
	KindSeekMax Kind = 0xff
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DEL"
	case KindSet:
		return "SET"
	case KindSetPtr:
		return "SETPTR"
	case KindSeekMax:
		return "SEEK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Seq is a 56-bit sequence number. Sequence numbers increase monotonically
// with every applied write; snapshot reads pin a sequence number.
type Seq uint64

// MaxSeq is the largest representable sequence number.
const MaxSeq Seq = (1 << 56) - 1

// TrailerLen is the length of the internal key trailer in bytes.
const TrailerLen = 8

// PackTrailer combines a sequence number and kind into the 64-bit trailer.
func PackTrailer(seq Seq, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer into its sequence number and kind.
func UnpackTrailer(t uint64) (Seq, Kind) {
	return Seq(t >> 8), Kind(t & 0xff)
}

// InternalKey is an encoded internal key: user key bytes followed by the
// 8-byte trailer.
type InternalKey []byte

// MakeInternalKey appends the encoding of (ukey, seq, kind) to dst and
// returns the extended slice.
func MakeInternalKey(dst []byte, ukey []byte, seq Seq, kind Kind) InternalKey {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], PackTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// Valid reports whether ik is long enough to contain a trailer.
func (ik InternalKey) Valid() bool { return len(ik) >= TrailerLen }

// UserKey returns the user key portion of ik. It panics if ik is invalid;
// callers must validate keys read from untrusted storage first.
func (ik InternalKey) UserKey() []byte { return ik[:len(ik)-TrailerLen] }

// Trailer returns the decoded trailer of ik.
func (ik InternalKey) Trailer() uint64 {
	return binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:])
}

// Seq returns the sequence number encoded in ik.
func (ik InternalKey) Seq() Seq {
	s, _ := UnpackTrailer(ik.Trailer())
	return s
}

// Kind returns the kind encoded in ik.
func (ik InternalKey) Kind() Kind {
	_, k := UnpackTrailer(ik.Trailer())
	return k
}

// String formats ik for debugging.
func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("invalid:%q", []byte(ik))
	}
	return fmt.Sprintf("%q#%d,%s", ik.UserKey(), ik.Seq(), ik.Kind())
}

// Compare orders two internal keys: user key ascending, then trailer
// descending (newer first).
func Compare(a, b InternalKey) int {
	if c := bytes.Compare(a.UserKey(), b.UserKey()); c != 0 {
		return c
	}
	at, bt := a.Trailer(), b.Trailer()
	switch {
	case at > bt:
		return -1
	case at < bt:
		return 1
	default:
		return 0
	}
}

// CompareUser orders two user keys bytewise; it exists so that all key
// comparisons in the engine flow through this package.
func CompareUser(a, b []byte) int { return bytes.Compare(a, b) }

// Separator returns a short internal key k such that a <= k < b in internal
// key order, used as an index-block separator. The user-key portion is
// shortened where possible; the trailer is the maximal trailer so the
// separator sorts at-or-after every entry with user key equal to a's.
func Separator(dst []byte, a, b InternalKey) InternalKey {
	au, bu := a.UserKey(), b.UserKey()
	sep := shortestSeparator(au, bu)
	if len(sep) < len(au) && CompareUser(au, sep) < 0 {
		// A strictly shorter user key was found; pair it with the maximal
		// trailer so it still sorts >= a.
		return MakeInternalKey(dst, sep, MaxSeq, KindSeekMax)
	}
	return append(dst, a...)
}

// Successor returns a short internal key k >= a, used as the final
// index-block entry of a table.
func Successor(dst []byte, a InternalKey) InternalKey {
	au := a.UserKey()
	for i := 0; i < len(au); i++ {
		if au[i] != 0xff {
			succ := make([]byte, i+1)
			copy(succ, au[:i+1])
			succ[i]++
			return MakeInternalKey(dst, succ, MaxSeq, KindSeekMax)
		}
	}
	return append(dst, a...)
}

// shortestSeparator finds a short byte string s with a <= s < b, following
// LevelDB's BytewiseComparator::FindShortestSeparator.
func shortestSeparator(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i >= n {
		// One is a prefix of the other; no shortening possible.
		return a
	}
	if a[i] < 0xff && a[i]+1 < b[i] {
		sep := make([]byte, i+1)
		copy(sep, a[:i+1])
		sep[i]++
		return sep
	}
	return a
}
