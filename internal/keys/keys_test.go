package keys

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPackUnpackTrailer(t *testing.T) {
	cases := []struct {
		seq  Seq
		kind Kind
	}{
		{0, KindDelete},
		{1, KindSet},
		{MaxSeq, KindSeekMax},
		{123456789, KindSet},
	}
	for _, c := range cases {
		s, k := UnpackTrailer(PackTrailer(c.seq, c.kind))
		if s != c.seq || k != c.kind {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c.seq, c.kind, s, k)
		}
	}
}

func TestMakeInternalKeyRoundTrip(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("hello"), 42, KindSet)
	if got := string(ik.UserKey()); got != "hello" {
		t.Fatalf("UserKey = %q, want hello", got)
	}
	if ik.Seq() != 42 {
		t.Fatalf("Seq = %d, want 42", ik.Seq())
	}
	if ik.Kind() != KindSet {
		t.Fatalf("Kind = %v, want SET", ik.Kind())
	}
}

func TestInternalKeyOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := MakeInternalKey(nil, []byte("k"), 10, KindSet)
	b := MakeInternalKey(nil, []byte("k"), 5, KindSet)
	if Compare(a, b) >= 0 {
		t.Errorf("newer seq should sort before older: %v vs %v", a, b)
	}
	// Same user key and seq: set sorts before delete (kind descending).
	c := MakeInternalKey(nil, []byte("k"), 5, KindSet)
	d := MakeInternalKey(nil, []byte("k"), 5, KindDelete)
	if Compare(c, d) >= 0 {
		t.Errorf("KindSet should sort before KindDelete at equal seq")
	}
	// Different user keys: bytewise.
	e := MakeInternalKey(nil, []byte("a"), 1, KindSet)
	f := MakeInternalKey(nil, []byte("b"), 100, KindSet)
	if Compare(e, f) >= 0 {
		t.Errorf("user key order should dominate")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var iks []InternalKey
	for i := 0; i < 200; i++ {
		k := make([]byte, rng.Intn(6))
		rng.Read(k)
		iks = append(iks, MakeInternalKey(nil, k, Seq(rng.Intn(100)), Kind(rng.Intn(2))))
	}
	sort.Slice(iks, func(i, j int) bool { return Compare(iks[i], iks[j]) < 0 })
	for i := 1; i < len(iks); i++ {
		if Compare(iks[i-1], iks[i]) > 0 {
			t.Fatalf("sort produced out-of-order pair at %d", i)
		}
		// Antisymmetry.
		if Compare(iks[i], iks[i-1]) < 0 && Compare(iks[i-1], iks[i]) < 0 {
			t.Fatalf("antisymmetry violated at %d", i)
		}
	}
}

func TestSeparatorProperty(t *testing.T) {
	f := func(au, bu []byte, seqA, seqB uint32) bool {
		if CompareUser(au, bu) >= 0 {
			au, bu = bu, au
		}
		if CompareUser(au, bu) == 0 {
			return true // skip equal keys
		}
		a := MakeInternalKey(nil, au, Seq(seqA), KindSet)
		b := MakeInternalKey(nil, bu, Seq(seqB), KindSet)
		sep := Separator(nil, a, b)
		// a <= sep < b must hold.
		return Compare(a, sep) <= 0 && Compare(sep, b) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorShortens(t *testing.T) {
	a := MakeInternalKey(nil, []byte("abcdefghij"), 5, KindSet)
	b := MakeInternalKey(nil, []byte("abzzzz"), 7, KindSet)
	sep := Separator(nil, a, b)
	if len(sep.UserKey()) >= len(a.UserKey()) {
		t.Errorf("separator %v not shortened (a=%v b=%v)", sep, a, b)
	}
}

func TestSuccessorProperty(t *testing.T) {
	f := func(au []byte, seq uint32) bool {
		a := MakeInternalKey(nil, au, Seq(seq), KindSet)
		succ := Successor(nil, a)
		return Compare(a, succ) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorAllFF(t *testing.T) {
	a := MakeInternalKey(nil, []byte{0xff, 0xff}, 1, KindSet)
	succ := Successor(nil, a)
	if !bytes.Equal(succ, a) {
		t.Errorf("successor of all-0xff key should be the key itself")
	}
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "SET" || KindDelete.String() != "DEL" {
		t.Error("unexpected kind strings")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still format")
	}
}
