package logrec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the log reader: it must never panic
// and must terminate (every Next call consumes input or returns EOF).
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, BlockSize))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord([]byte("seed-record"))
	w.WriteRecord(bytes.Repeat([]byte("x"), BlockSize+100))
	f.Add(buf.Bytes())
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[3] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, strict := range []bool{false, true} {
			r := NewReader(data)
			r.Strict = strict
			for i := 0; i < len(data)+10; i++ {
				rec, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					if !strict {
						t.Fatalf("non-strict reader returned error: %v", err)
					}
					break
				}
				_ = rec
			}
		}
	})
}
