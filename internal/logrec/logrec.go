// Package logrec implements LevelDB's log record format, used both by the
// write-ahead log and by the MANIFEST. The file is a sequence of 32 KiB
// blocks; each record is split into fragments that never span a block
// boundary. A fragment has a 7-byte header: CRC32C (4), length (2), type
// (1), where type marks the fragment as full, first, middle, or last. The
// format tolerates torn tails: a reader stops cleanly at the first corrupt
// or incomplete fragment, which is exactly the property recovery needs.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// BlockSize is the log block size.
const BlockSize = 32 * 1024

// headerSize is the per-fragment header size.
const headerSize = 7

// Fragment types.
const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

// ErrCorrupt reports a corrupt (but not merely truncated) log fragment.
var ErrCorrupt = errors.New("logrec: corrupt fragment")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskCRC applies LevelDB's CRC masking so that CRCs of CRCs behave well.
func maskCRC(c uint32) uint32 { return ((c >> 15) | (c << 17)) + 0xa282ead8 }

// Writer appends records to an underlying writer in the log format.
type Writer struct {
	w           io.Writer
	blockOffset int // current offset within the block
	buf         [BlockSize]byte
}

// NewWriter returns a log writer appending to w. If the underlying file
// already has data (reopened log), pass its size via Reset.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Reset re-targets the writer at w with the given pre-existing file size so
// block boundaries stay aligned.
func (lw *Writer) Reset(w io.Writer, fileSize int64) {
	lw.w = w
	lw.blockOffset = int(fileSize % BlockSize)
}

// WriteRecord appends one record containing data.
func (lw *Writer) WriteRecord(data []byte) error {
	begin := true
	for {
		leftover := BlockSize - lw.blockOffset
		if leftover < headerSize {
			// Pad the block trailer with zeros and start a new block.
			if leftover > 0 {
				var pad [headerSize]byte
				if _, err := lw.w.Write(pad[:leftover]); err != nil {
					return fmt.Errorf("logrec: pad block: %w", err)
				}
			}
			lw.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := data
		if len(frag) > avail {
			frag = frag[:avail]
		}
		data = data[len(frag):]
		end := len(data) == 0

		var ftype byte
		switch {
		case begin && end:
			ftype = typeFull
		case begin:
			ftype = typeFirst
		case end:
			ftype = typeLast
		default:
			ftype = typeMiddle
		}
		if err := lw.writeFragment(ftype, frag); err != nil {
			return err
		}
		begin = false
		if end {
			return nil
		}
	}
}

func (lw *Writer) writeFragment(ftype byte, frag []byte) error {
	buf := lw.buf[:headerSize+len(frag)]
	crc := crc32.Update(crc32.Checksum([]byte{ftype}, castagnoli), castagnoli, frag)
	binary.LittleEndian.PutUint32(buf[0:4], maskCRC(crc))
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(frag)))
	buf[6] = ftype
	copy(buf[headerSize:], frag)
	if _, err := lw.w.Write(buf); err != nil {
		return fmt.Errorf("logrec: write fragment: %w", err)
	}
	lw.blockOffset += len(buf)
	return nil
}

// Reader reads records from a log file image.
type Reader struct {
	data []byte // whole file contents
	pos  int
	// Strict makes corrupt fragments an error instead of a clean stop; the
	// WAL replays with Strict=false (tolerate torn tail), tests may set it.
	Strict bool
}

// NewReader returns a reader over the full log contents.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Next returns the next record, or io.EOF when the log is exhausted or the
// tail is torn. With Strict set, corruption returns ErrCorrupt.
func (lr *Reader) Next() ([]byte, error) {
	var record []byte
	inFragmented := false
	for {
		blockRemain := BlockSize - lr.pos%BlockSize
		if blockRemain < headerSize {
			lr.pos += blockRemain // skip trailer padding
		}
		if lr.pos+headerSize > len(lr.data) {
			return nil, io.EOF
		}
		hdr := lr.data[lr.pos : lr.pos+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		ftype := hdr[6]
		if ftype == 0 && length == 0 {
			// Zero padding (preallocated space); treat as end.
			return nil, io.EOF
		}
		if lr.pos+headerSize+length > len(lr.data) {
			return nil, lr.fail("truncated fragment")
		}
		frag := lr.data[lr.pos+headerSize : lr.pos+headerSize+length]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		gotCRC := maskCRC(crc32.Update(crc32.Checksum([]byte{ftype}, castagnoli), castagnoli, frag))
		if wantCRC != gotCRC {
			return nil, lr.fail("bad checksum")
		}
		lr.pos += headerSize + length

		switch ftype {
		case typeFull:
			if inFragmented {
				return nil, lr.fail("full fragment inside record")
			}
			return append([]byte(nil), frag...), nil
		case typeFirst:
			if inFragmented {
				return nil, lr.fail("first fragment inside record")
			}
			record = append(record[:0], frag...)
			inFragmented = true
		case typeMiddle:
			if !inFragmented {
				return nil, lr.fail("middle fragment outside record")
			}
			record = append(record, frag...)
		case typeLast:
			if !inFragmented {
				return nil, lr.fail("last fragment outside record")
			}
			return append(record, frag...), nil
		default:
			return nil, lr.fail("unknown fragment type")
		}
	}
}

func (lr *Reader) fail(reason string) error {
	if lr.Strict {
		return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, reason, lr.pos)
	}
	return io.EOF
}
