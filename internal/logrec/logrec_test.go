package logrec

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func writeAll(t *testing.T, records [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range records {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readAll(data []byte, strict bool) ([][]byte, error) {
	r := NewReader(data)
	r.Strict = strict
	var out [][]byte
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func TestRoundTripSmall(t *testing.T) {
	records := [][]byte{[]byte("one"), []byte(""), []byte("three"), bytes.Repeat([]byte("x"), 100)}
	got, err := readAll(writeAll(t, records), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestRoundTripSpanningBlocks(t *testing.T) {
	// Records larger than a block must fragment and reassemble.
	records := [][]byte{
		bytes.Repeat([]byte("a"), BlockSize-10),
		bytes.Repeat([]byte("b"), BlockSize),
		bytes.Repeat([]byte("c"), 3*BlockSize+17),
		[]byte("tail"),
	}
	got, err := readAll(writeAll(t, records), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d mismatch: len %d vs %d", i, len(got[i]), len(records[i]))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var records [][]byte
		for _, s := range sizes {
			r := make([]byte, int(s)%5000)
			rng.Read(r)
			records = append(records, r)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range records {
			if err := w.WriteRecord(r); err != nil {
				return false
			}
		}
		got, err := readAll(buf.Bytes(), true)
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range records {
			if !bytes.Equal(got[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	records := [][]byte{[]byte("first"), []byte("second"), bytes.Repeat([]byte("z"), 200)}
	data := writeAll(t, records)
	// Truncate mid-way through the last record's fragment.
	torn := data[:len(data)-50]
	got, err := readAll(torn, false)
	if err != nil {
		t.Fatalf("non-strict read of torn log: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records from torn log, want 2", len(got))
	}
}

func TestCorruptChecksumDetected(t *testing.T) {
	data := writeAll(t, [][]byte{[]byte("payload-payload")})
	data[10] ^= 0xff // flip a payload byte
	_, err := readAll(data, true)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict read of corrupt log = %v, want ErrCorrupt", err)
	}
	got, err := readAll(data, false)
	if err != nil || len(got) != 0 {
		t.Fatalf("non-strict read should stop cleanly, got %d records err %v", len(got), err)
	}
}

func TestZeroPaddingTreatedAsEOF(t *testing.T) {
	data := writeAll(t, [][]byte{[]byte("rec")})
	data = append(data, make([]byte, 100)...) // preallocated zero tail
	got, err := readAll(data, true)
	if err != nil || len(got) != 1 {
		t.Fatalf("zero tail: got %d records err %v", len(got), err)
	}
}

func TestResetContinuesAtBlockBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(bytes.Repeat([]byte("a"), 1000)); err != nil {
		t.Fatal(err)
	}
	// Simulate reopening the log: a new writer must honor the existing size.
	w2 := NewWriter(nil)
	w2.Reset(&buf, int64(buf.Len()))
	if err := w2.WriteRecord(bytes.Repeat([]byte("b"), BlockSize*2)); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(buf.Bytes(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[1]) != BlockSize*2 {
		t.Fatalf("reopen roundtrip failed: %d records", len(got))
	}
}
