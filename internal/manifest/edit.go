package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// ErrCorrupt reports a malformed version edit or MANIFEST.
var ErrCorrupt = errors.New("manifest: corrupt")

// Edit record tags. The encoding follows LevelDB's tagged format; tag 9
// (added file) carries BoLT's extra fields — physical file number and
// offset — which the paper notes cost only a few bytes per logical SSTable.
const (
	tagLogNum         = 1
	tagNextFileNum    = 2
	tagLastSeq        = 3
	tagCompactPointer = 4
	tagDeletedFile    = 5
	tagAddedFile      = 9
	tagQuarantined    = 10
	tagVLogSegment    = 11
	tagVLogDeleted    = 12
)

// DeletedFile names one table removed by an edit.
type DeletedFile struct {
	Level int
	Num   uint64
}

// AddedFile names one table added by an edit.
type AddedFile struct {
	Level int
	Meta  *FileMeta
}

// VLogSegmentEdit updates one value-log segment's recorded state. Its
// semantics are a monotonic merge, not an overwrite, so concurrently
// prepared edits (a flush recording the segment's size, a compaction
// adding garbage from dropped pointers) compose in any order: the builder
// takes the max of Size and GCOffset and accumulates GarbageDelta
// (clamped at zero). A segment unknown to the builder is created first
// with zero state.
type VLogSegmentEdit struct {
	// Num is the segment's file number.
	Num uint64
	// Size is a lower bound on the segment's durable record bytes (a sync
	// happens at a record boundary, so it is also parseable length).
	Size int64
	// GCOffset is the garbage-collection watermark: everything below it
	// has been reclaimed (live records re-put, dead payloads punched).
	GCOffset int64
	// GarbageDelta adjusts the estimated dead bytes at or above GCOffset:
	// positive from compactions dropping pointer entries, negative when GC
	// advances the watermark past bytes it had counted.
	GarbageDelta int64
}

// CompactPointer records the round-robin compaction cursor of a level.
type CompactPointer struct {
	Level int
	Key   keys.InternalKey
}

// VersionEdit is one atomic mutation of the version state. It is encoded
// as a single MANIFEST record — the commit mark of a flush or compaction.
type VersionEdit struct {
	// LogNum, when set, is the WAL number whose contents are fully
	// reflected in the tables; older logs are obsolete.
	LogNum *uint64
	// NextFileNum, when set, advances the file-number allocator.
	NextFileNum *uint64
	// LastSeq, when set, records the highest durable sequence number.
	LastSeq *uint64
	// CompactPointers update per-level compaction cursors.
	CompactPointers []CompactPointer
	// Deleted lists tables this edit invalidates.
	Deleted []DeletedFile
	// Added lists tables this edit validates.
	Added []AddedFile
	// Quarantined lists table numbers this edit marks corrupt: reads
	// overlapping them fail with a range error instead of serving silent
	// garbage, until a salvage compaction deletes them (deletion is the
	// unquarantine — there is no separate clearing record).
	Quarantined []uint64
	// VLogSegments merge value-log segment state (see VLogSegmentEdit).
	VLogSegments []VLogSegmentEdit
	// VLogDeleted lists value-log segments this edit removes (fully
	// garbage-collected; the file is deleted once no reader can need it).
	VLogDeleted []uint64
}

// SetLogNum records the active WAL number.
func (e *VersionEdit) SetLogNum(n uint64) { e.LogNum = &n }

// SetNextFileNum records the file-number allocator position.
func (e *VersionEdit) SetNextFileNum(n uint64) { e.NextFileNum = &n }

// SetLastSeq records the highest durable sequence number.
func (e *VersionEdit) SetLastSeq(n uint64) { e.LastSeq = &n }

// AddFile appends an added-table record.
func (e *VersionEdit) AddFile(level int, meta *FileMeta) {
	e.Added = append(e.Added, AddedFile{Level: level, Meta: meta})
}

// DeleteFile appends a deleted-table record.
func (e *VersionEdit) DeleteFile(level int, num uint64) {
	e.Deleted = append(e.Deleted, DeletedFile{Level: level, Num: num})
}

// QuarantineFile appends a quarantined-table record.
func (e *VersionEdit) QuarantineFile(num uint64) {
	e.Quarantined = append(e.Quarantined, num)
}

// AddVLogSegment appends a value-log segment merge record.
func (e *VersionEdit) AddVLogSegment(s VLogSegmentEdit) {
	e.VLogSegments = append(e.VLogSegments, s)
}

// DeleteVLogSegment appends a value-log segment deletion record.
func (e *VersionEdit) DeleteVLogSegment(num uint64) {
	e.VLogDeleted = append(e.VLogDeleted, num)
}

// Encode serializes the edit.
func (e *VersionEdit) Encode() []byte {
	var buf []byte
	putBytes := func(b []byte) {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	if e.LogNum != nil {
		buf = binary.AppendUvarint(buf, tagLogNum)
		buf = binary.AppendUvarint(buf, *e.LogNum)
	}
	if e.NextFileNum != nil {
		buf = binary.AppendUvarint(buf, tagNextFileNum)
		buf = binary.AppendUvarint(buf, *e.NextFileNum)
	}
	if e.LastSeq != nil {
		buf = binary.AppendUvarint(buf, tagLastSeq)
		buf = binary.AppendUvarint(buf, *e.LastSeq)
	}
	for _, cp := range e.CompactPointers {
		buf = binary.AppendUvarint(buf, tagCompactPointer)
		buf = binary.AppendUvarint(buf, uint64(cp.Level))
		putBytes(cp.Key)
	}
	for _, d := range e.Deleted {
		buf = binary.AppendUvarint(buf, tagDeletedFile)
		buf = binary.AppendUvarint(buf, uint64(d.Level))
		buf = binary.AppendUvarint(buf, d.Num)
	}
	for _, a := range e.Added {
		m := a.Meta
		buf = binary.AppendUvarint(buf, tagAddedFile)
		buf = binary.AppendUvarint(buf, uint64(a.Level))
		buf = binary.AppendUvarint(buf, m.Num)
		buf = binary.AppendUvarint(buf, m.PhysNum)
		buf = binary.AppendUvarint(buf, uint64(m.Offset))
		buf = binary.AppendUvarint(buf, uint64(m.Size))
		putBytes(m.Smallest)
		putBytes(m.Largest)
		putBytes(m.Guard)
	}
	for _, num := range e.Quarantined {
		buf = binary.AppendUvarint(buf, tagQuarantined)
		buf = binary.AppendUvarint(buf, num)
	}
	for _, s := range e.VLogSegments {
		buf = binary.AppendUvarint(buf, tagVLogSegment)
		buf = binary.AppendUvarint(buf, s.Num)
		buf = binary.AppendUvarint(buf, uint64(s.Size))
		buf = binary.AppendUvarint(buf, uint64(s.GCOffset))
		// Zigzag: GarbageDelta is the one signed field.
		buf = binary.AppendUvarint(buf, uint64((s.GarbageDelta<<1)^(s.GarbageDelta>>63)))
	}
	for _, num := range e.VLogDeleted {
		buf = binary.AppendUvarint(buf, tagVLogDeleted)
		buf = binary.AppendUvarint(buf, num)
	}
	return buf
}

// DecodeEdit parses an encoded edit.
func DecodeEdit(data []byte) (*VersionEdit, error) {
	e := &VersionEdit{}
	p := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[p:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint at %d", ErrCorrupt, p)
		}
		p += n
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		// Compare in uint64 space: a huge length must not wrap negative
		// when converted to int.
		if l > uint64(len(data)-p) {
			return nil, fmt.Errorf("%w: bytes overrun at %d", ErrCorrupt, p)
		}
		b := append([]byte(nil), data[p:p+int(l)]...)
		p += int(l)
		return b, nil
	}
	for p < len(data) {
		tag, err := readUvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLogNum:
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			e.LogNum = &v
		case tagNextFileNum:
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			e.NextFileNum = &v
		case tagLastSeq:
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			e.LastSeq = &v
		case tagCompactPointer:
			lvl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			key, err := readBytes()
			if err != nil {
				return nil, err
			}
			e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: int(lvl), Key: key})
		case tagDeletedFile:
			lvl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			num, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if lvl >= NumLevels {
				return nil, fmt.Errorf("%w: deleted file level %d", ErrCorrupt, lvl)
			}
			e.Deleted = append(e.Deleted, DeletedFile{Level: int(lvl), Num: num})
		case tagAddedFile:
			lvl, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if lvl >= NumLevels {
				return nil, fmt.Errorf("%w: added file level %d", ErrCorrupt, lvl)
			}
			m := &FileMeta{}
			if m.Num, err = readUvarint(); err != nil {
				return nil, err
			}
			if m.PhysNum, err = readUvarint(); err != nil {
				return nil, err
			}
			off, err := readUvarint()
			if err != nil {
				return nil, err
			}
			m.Offset = int64(off)
			size, err := readUvarint()
			if err != nil {
				return nil, err
			}
			m.Size = int64(size)
			sm, err := readBytes()
			if err != nil {
				return nil, err
			}
			m.Smallest = sm
			lg, err := readBytes()
			if err != nil {
				return nil, err
			}
			m.Largest = lg
			guard, err := readBytes()
			if err != nil {
				return nil, err
			}
			if len(guard) > 0 {
				m.Guard = guard
			}
			e.Added = append(e.Added, AddedFile{Level: int(lvl), Meta: m})
		case tagQuarantined:
			num, err := readUvarint()
			if err != nil {
				return nil, err
			}
			e.Quarantined = append(e.Quarantined, num)
		case tagVLogSegment:
			var s VLogSegmentEdit
			if s.Num, err = readUvarint(); err != nil {
				return nil, err
			}
			size, err := readUvarint()
			if err != nil {
				return nil, err
			}
			s.Size = int64(size)
			gcOff, err := readUvarint()
			if err != nil {
				return nil, err
			}
			s.GCOffset = int64(gcOff)
			zz, err := readUvarint()
			if err != nil {
				return nil, err
			}
			s.GarbageDelta = int64(zz>>1) ^ -int64(zz&1)
			e.VLogSegments = append(e.VLogSegments, s)
		case tagVLogDeleted:
			num, err := readUvarint()
			if err != nil {
				return nil, err
			}
			e.VLogDeleted = append(e.VLogDeleted, num)
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
	return e, nil
}
