package manifest

import (
	"fmt"
	"strconv"
	"strings"
)

// FileKind classifies database files by name.
type FileKind int

// File kinds. Physical table files use the same extension whether they hold
// one legacy SSTable or many logical SSTables (a BoLT compaction file).
const (
	KindUnknown FileKind = iota
	KindTable
	KindLog
	KindManifest
	KindCurrent
	KindTemp
	KindValueLog
)

// CurrentFileName is the pointer file naming the live MANIFEST.
const CurrentFileName = "CURRENT"

// TableFileName returns the name of physical table file num.
func TableFileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// LogFileName returns the name of WAL file num.
func LogFileName(num uint64) string { return fmt.Sprintf("%06d.log", num) }

// ManifestFileName returns the name of MANIFEST file num.
func ManifestFileName(num uint64) string { return fmt.Sprintf("MANIFEST-%06d", num) }

// VLogFileName returns the name of value-log segment num.
func VLogFileName(num uint64) string { return fmt.Sprintf("%06d.vlog", num) }

// TempFileName returns a scratch file name.
func TempFileName(num uint64) string { return fmt.Sprintf("%06d.tmp", num) }

// ParseFileName classifies a database file name and extracts its number.
func ParseFileName(name string) (FileKind, uint64, bool) {
	if name == CurrentFileName {
		return KindCurrent, 0, true
	}
	if rest, ok := strings.CutPrefix(name, "MANIFEST-"); ok {
		num, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return KindUnknown, 0, false
		}
		return KindManifest, num, true
	}
	dot := strings.LastIndexByte(name, '.')
	if dot <= 0 {
		return KindUnknown, 0, false
	}
	num, err := strconv.ParseUint(name[:dot], 10, 64)
	if err != nil {
		return KindUnknown, 0, false
	}
	switch name[dot+1:] {
	case "sst":
		return KindTable, num, true
	case "log":
		return KindLog, num, true
	case "tmp":
		return KindTemp, num, true
	case "vlog":
		return KindValueLog, num, true
	default:
		return KindUnknown, 0, false
	}
}
