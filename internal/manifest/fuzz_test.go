package manifest

import "testing"

// FuzzDecodeEdit feeds arbitrary bytes to the version-edit decoder: it
// must never panic and decoded edits must re-encode without panicking.
func FuzzDecodeEdit(f *testing.F) {
	e := &VersionEdit{}
	e.SetLogNum(3)
	e.AddFile(2, meta(9, 8, 128, 4096, "aa", "zz"))
	e.DeleteFile(1, 5)
	f.Add(e.Encode())
	f.Add([]byte{})
	f.Add([]byte{9, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeEdit(data)
		if err != nil {
			return
		}
		_ = d.Encode()
	})
}
