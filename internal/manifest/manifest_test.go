package manifest

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

func ik(u string, seq uint64) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), keys.Seq(seq), keys.KindSet)
}

func meta(num, phys uint64, off, size int64, lo, hi string) *FileMeta {
	return &FileMeta{
		Num: num, PhysNum: phys, Offset: off, Size: size,
		Smallest: ik(lo, 1), Largest: ik(hi, 1),
	}
}

func TestParseFileName(t *testing.T) {
	cases := []struct {
		name string
		kind FileKind
		num  uint64
		ok   bool
	}{
		{"000001.sst", KindTable, 1, true},
		{"123456.log", KindLog, 123456, true},
		{"MANIFEST-000007", KindManifest, 7, true},
		{"CURRENT", KindCurrent, 0, true},
		{"000009.tmp", KindTemp, 9, true},
		{"garbage", KindUnknown, 0, false},
		{"x.sst", KindUnknown, 0, false},
		{"MANIFEST-xyz", KindUnknown, 0, false},
		{"000001.xyz", KindUnknown, 0, false},
	}
	for _, c := range cases {
		kind, num, ok := ParseFileName(c.name)
		if kind != c.kind || num != c.num || ok != c.ok {
			t.Errorf("ParseFileName(%q) = (%v,%d,%v), want (%v,%d,%v)",
				c.name, kind, num, ok, c.kind, c.num, c.ok)
		}
	}
	// Round trips.
	for _, num := range []uint64{1, 42, 999999} {
		if k, n, ok := ParseFileName(TableFileName(num)); k != KindTable || n != num || !ok {
			t.Errorf("table name roundtrip failed for %d", num)
		}
		if k, n, ok := ParseFileName(LogFileName(num)); k != KindLog || n != num || !ok {
			t.Errorf("log name roundtrip failed for %d", num)
		}
		if k, n, ok := ParseFileName(ManifestFileName(num)); k != KindManifest || n != num || !ok {
			t.Errorf("manifest name roundtrip failed for %d", num)
		}
	}
}

func TestEditEncodeDecode(t *testing.T) {
	e := &VersionEdit{}
	e.SetLogNum(7)
	e.SetNextFileNum(100)
	e.SetLastSeq(424242)
	e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: 2, Key: ik("cursor", 5)})
	e.DeleteFile(1, 33)
	e.DeleteFile(2, 44)
	m := meta(55, 50, 1<<20, 2<<20, "aaa", "zzz")
	m.Guard = []byte("guard-key")
	e.AddFile(3, m)

	d, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *d.LogNum != 7 || *d.NextFileNum != 100 || *d.LastSeq != 424242 {
		t.Fatalf("scalars: %v %v %v", *d.LogNum, *d.NextFileNum, *d.LastSeq)
	}
	if len(d.CompactPointers) != 1 || d.CompactPointers[0].Level != 2 {
		t.Fatalf("compact pointers: %+v", d.CompactPointers)
	}
	if len(d.Deleted) != 2 || d.Deleted[1].Num != 44 {
		t.Fatalf("deleted: %+v", d.Deleted)
	}
	if len(d.Added) != 1 {
		t.Fatalf("added: %+v", d.Added)
	}
	got := d.Added[0].Meta
	if got.Num != 55 || got.PhysNum != 50 || got.Offset != 1<<20 || got.Size != 2<<20 {
		t.Fatalf("added meta: %+v", got)
	}
	if string(got.Smallest.UserKey()) != "aaa" || string(got.Largest.UserKey()) != "zzz" {
		t.Fatalf("bounds: %v %v", got.Smallest, got.Largest)
	}
	if string(got.Guard) != "guard-key" {
		t.Fatalf("guard: %q", got.Guard)
	}
}

func TestEditDecodeCorrupt(t *testing.T) {
	if _, err := DecodeEdit([]byte{200}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown tag: %v", err)
	}
	e := &VersionEdit{}
	e.AddFile(1, meta(1, 1, 0, 10, "a", "b"))
	enc := e.Encode()
	if _, err := DecodeEdit(enc[:len(enc)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated edit: %v", err)
	}
}

func TestEditRoundTripProperty(t *testing.T) {
	f := func(nums []uint64, levels []uint8, lo, hi string) bool {
		e := &VersionEdit{}
		for i, n := range nums {
			lvl := 0
			if i < len(levels) {
				lvl = int(levels[i]) % NumLevels
			}
			if n%2 == 0 {
				e.DeleteFile(lvl, n)
			} else {
				e.AddFile(lvl, meta(n, n/2, int64(n%1000), int64(n%5000), lo, lo+hi))
			}
		}
		d, err := DecodeEdit(e.Encode())
		if err != nil {
			return false
		}
		return len(d.Added) == len(e.Added) && len(d.Deleted) == len(e.Deleted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndRecoverEmpty(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Current().NumFiles() != 0 {
		t.Fatal("fresh DB has files")
	}
	vs.Close()

	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	if vs2.Current().NumFiles() != 0 {
		t.Fatal("recovered DB has files")
	}
}

func TestLogAndApplyPersists(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	edit := &VersionEdit{}
	edit.AddFile(0, meta(10, 10, 0, 1000, "a", "m"))
	edit.AddFile(1, meta(11, 11, 0, 2000, "b", "k"))
	vs.SetLastSeq(500)
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	edit2 := &VersionEdit{}
	edit2.DeleteFile(0, 10)
	edit2.AddFile(1, meta(12, 12, 0, 3000, "n", "z"))
	if err := vs.LogAndApply(edit2); err != nil {
		t.Fatal(err)
	}
	vs.Close()

	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	v := vs2.Current()
	if len(v.Levels[0]) != 0 {
		t.Fatalf("L0 = %v", v.Levels[0])
	}
	if len(v.Levels[1]) != 2 {
		t.Fatalf("L1 has %d files", len(v.Levels[1]))
	}
	// Sorted by smallest key: 11 ("b") then 12 ("n").
	if v.Levels[1][0].Num != 11 || v.Levels[1][1].Num != 12 {
		t.Fatalf("L1 order: %d, %d", v.Levels[1][0].Num, v.Levels[1][1].Num)
	}
	if vs2.LastSeq() != 500 {
		t.Fatalf("LastSeq = %d", vs2.LastSeq())
	}
	if err := v.SortedTables(1); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalTablesPersistOffsets(t *testing.T) {
	// Three logical SSTables in one physical file — BoLT's layout must
	// survive recovery bit-exactly.
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	edit := &VersionEdit{}
	edit.AddFile(1, meta(20, 7, 0, 1<<20, "a", "f"))
	edit.AddFile(1, meta(21, 7, 1<<20, 1<<20, "g", "p"))
	edit.AddFile(1, meta(22, 7, 2<<20, 1<<20, "q", "z"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	vs.Close()

	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	files := vs2.Current().Levels[1]
	if len(files) != 3 {
		t.Fatalf("%d files", len(files))
	}
	for i, f := range files {
		if f.PhysNum != 7 || f.Offset != int64(i)<<20 {
			t.Fatalf("file %d: phys=%d off=%d", i, f.PhysNum, f.Offset)
		}
	}
}

func TestCrashBeforeManifestSyncLosesEdit(t *testing.T) {
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	edit := &VersionEdit{}
	edit.AddFile(0, meta(10, 10, 0, 1000, "a", "m"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	// LogAndApply synced; a crash now must preserve the edit.
	vs2, err := Recover(fs.CrashClone())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(vs2.Current().Levels[0]); got != 1 {
		t.Fatalf("durable edit lost: L0=%d", got)
	}
	vs2.Close()
	vs.Close()
}

func TestRecoverMissingCurrent(t *testing.T) {
	fs := vfs.NewMem()
	if _, err := Recover(fs); err == nil {
		t.Fatal("recover on empty dir should fail")
	}
}

func TestVersionOverlaps(t *testing.T) {
	v := &Version{}
	v.Levels[1] = []*FileMeta{
		meta(1, 1, 0, 10, "b", "d"),
		meta(2, 2, 0, 10, "f", "h"),
		meta(3, 3, 0, 10, "k", "m"),
	}
	got := v.Overlaps(1, []byte("c"), []byte("g"))
	if len(got) != 2 || got[0].Num != 1 || got[1].Num != 2 {
		t.Fatalf("overlaps = %v", got)
	}
	if got := v.Overlaps(1, nil, nil); len(got) != 3 {
		t.Fatalf("unbounded overlaps = %d", len(got))
	}
	if got := v.Overlaps(1, []byte("i"), []byte("j")); len(got) != 0 {
		t.Fatalf("gap overlaps = %v", got)
	}
	// Boundary inclusivity.
	if got := v.Overlaps(1, []byte("d"), []byte("d")); len(got) != 1 {
		t.Fatalf("edge overlap = %v", got)
	}
}

func TestLiveTablesIncludesPinnedVersions(t *testing.T) {
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	defer vs.Close()
	edit := &VersionEdit{}
	edit.AddFile(0, meta(10, 10, 0, 100, "a", "b"))
	vs.LogAndApply(edit)

	// Pin the version that contains table 10 (as an iterator would).
	pinned := vs.Current()
	pinned.Ref()

	edit2 := &VersionEdit{}
	edit2.DeleteFile(0, 10)
	edit2.AddFile(0, meta(11, 11, 0, 100, "a", "b"))
	vs.LogAndApply(edit2)

	live := vs.LiveTables()
	if _, ok := live[10]; !ok {
		t.Fatal("pinned table 10 not live")
	}
	if _, ok := live[11]; !ok {
		t.Fatal("current table 11 not live")
	}

	pinned.Unref()
	live = vs.LiveTables()
	if _, ok := live[10]; ok {
		t.Fatal("table 10 still live after unpin")
	}
}

func TestManifestRotation(t *testing.T) {
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	// Push enough edits to exceed the rotation threshold.
	for i := 0; i < 200; i++ {
		edit := &VersionEdit{}
		m := meta(uint64(100+i), uint64(100+i), 0, 1000, "a", "z")
		// Pad bounds to grow the manifest quickly.
		m.Smallest = ik(fmt.Sprintf("key-%01000d", i), 1)
		m.Largest = ik(fmt.Sprintf("key-%01000d", i+1), 1)
		edit.AddFile(2, m)
		if i > 0 {
			edit.DeleteFile(2, uint64(100+i-1))
		}
		if err := vs.LogAndApply(edit); err != nil {
			t.Fatal(err)
		}
	}
	vs.Close()
	vs2, err := Recover(fs)
	if err != nil {
		t.Fatalf("recover after rotation: %v", err)
	}
	defer vs2.Close()
	if n := len(vs2.Current().Levels[2]); n != 1 {
		t.Fatalf("L2 = %d files", n)
	}
	// Old manifests should not accumulate.
	names, _ := fs.List()
	manifests := 0
	for _, n := range names {
		if k, _, _ := ParseFileName(n); k == KindManifest {
			manifests++
		}
	}
	if manifests > 2 {
		t.Fatalf("%d manifests on disk", manifests)
	}
}

func TestFileNumAllocatorSurvivesRecovery(t *testing.T) {
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	var last uint64
	for i := 0; i < 10; i++ {
		last = vs.NextFileNum()
	}
	edit := &VersionEdit{}
	edit.AddFile(0, meta(last, last, 0, 10, "a", "b"))
	vs.LogAndApply(edit)
	vs.Close()

	vs2, _ := Recover(fs)
	defer vs2.Close()
	if next := vs2.NextFileNum(); next <= last {
		t.Fatalf("allocator went backwards: %d <= %d", next, last)
	}
}

func TestSettledPromotionEdit(t *testing.T) {
	// BoLT promotes a table by deleting it at level L and adding the same
	// number at L+1 in one edit; the builder must honor both.
	fs := vfs.NewMem()
	vs, _ := Create(fs)
	defer vs.Close()
	edit := &VersionEdit{}
	edit.AddFile(1, meta(42, 42, 0, 100, "a", "b"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	promote := &VersionEdit{}
	promote.DeleteFile(1, 42)
	promote.AddFile(2, meta(42, 42, 0, 100, "a", "b"))
	if err := vs.LogAndApply(promote); err != nil {
		t.Fatal(err)
	}
	v := vs.Current()
	if len(v.Levels[1]) != 0 || len(v.Levels[2]) != 1 || v.Levels[2][0].Num != 42 {
		t.Fatalf("promotion failed:\n%s", v.DebugString())
	}
	// And it must survive recovery.
	vs.Close()
	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	v2 := vs2.Current()
	if len(v2.Levels[1]) != 0 || len(v2.Levels[2]) != 1 || v2.Levels[2][0].Num != 42 {
		t.Fatalf("promotion lost in recovery:\n%s", v2.DebugString())
	}
}
