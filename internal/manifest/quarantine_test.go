package manifest

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/vfs"
)

func TestEditQuarantineEncodeDecode(t *testing.T) {
	e := &VersionEdit{}
	e.AddFile(2, meta(7, 7, 0, 1000, "a", "m"))
	e.QuarantineFile(7)
	e.QuarantineFile(42)
	d, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Quarantined) != 2 || d.Quarantined[0] != 7 || d.Quarantined[1] != 42 {
		t.Fatalf("Quarantined = %v", d.Quarantined)
	}
}

func TestQuarantineAppliesAndDeletionClears(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()

	edit := &VersionEdit{}
	edit.AddFile(2, meta(10, 10, 0, 1000, "a", "m"))
	edit.AddFile(2, meta(11, 11, 0, 1000, "n", "z"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	q := &VersionEdit{}
	q.QuarantineFile(10)
	if err := vs.LogAndApply(q); err != nil {
		t.Fatal(err)
	}
	v := vs.Current()
	if !v.IsQuarantined(10) || v.IsQuarantined(11) || v.NumQuarantined() != 1 {
		t.Fatalf("quarantine state: %v", v.Quarantined())
	}
	// The quarantined table stays in its level: its key span must keep
	// resolving to it so reads fail typed instead of missing.
	if len(v.Levels[2]) != 2 {
		t.Fatalf("L2 = %d tables, want 2", len(v.Levels[2]))
	}

	// Deletion is the unquarantine: the salvage commit that replaces the
	// table clears the mark with no separate record.
	s := &VersionEdit{}
	s.DeleteFile(2, 10)
	s.AddFile(2, meta(12, 12, 0, 900, "a", "m"))
	if err := vs.LogAndApply(s); err != nil {
		t.Fatal(err)
	}
	v = vs.Current()
	if v.NumQuarantined() != 0 {
		t.Fatalf("salvage left quarantine marks: %v", v.Quarantined())
	}
}

func TestQuarantineSurvivesRecovery(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	edit := &VersionEdit{}
	edit.AddFile(1, meta(10, 10, 0, 1000, "a", "m"))
	edit.QuarantineFile(10)
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	vs.Close()

	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	if !vs2.Current().IsQuarantined(10) {
		t.Fatal("quarantine mark lost across recovery")
	}
}

func TestQuarantineSurvivesManifestRotation(t *testing.T) {
	fs := vfs.NewMem()
	vs, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	edit := &VersionEdit{}
	edit.AddFile(1, meta(10, 10, 0, 1000, "a", "m"))
	edit.QuarantineFile(10)
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	// Force a rotation: the snapshot edit written into the fresh MANIFEST
	// must re-emit the quarantine mark, or a reopen would serve the corrupt
	// table's garbage again.
	vs.ForceRotate()
	bump := &VersionEdit{}
	bump.AddFile(1, meta(11, 11, 0, 1000, "n", "z"))
	if err := vs.LogAndApply(bump); err != nil {
		t.Fatal(err)
	}
	vs.Close()

	vs2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	if !vs2.Current().IsQuarantined(10) {
		t.Fatal("quarantine mark lost across MANIFEST rotation")
	}
}
