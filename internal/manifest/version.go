// Package manifest implements the versioned metadata of the LSM-tree: file
// metadata (including BoLT's logical-SSTable addressing), version edits,
// the MANIFEST log, and the version set with its recovery path.
//
// The MANIFEST is the commit mark of every flush and compaction: new table
// bytes are fsynced first, then a single version edit — naming the added
// and deleted (logical) SSTables — is appended to the MANIFEST and fsynced.
// A crash between the two barriers leaves orphan table bytes that are
// garbage-collected at open; a crash before the first barrier loses only
// uncommitted work. BoLT's contribution is that the *first* barrier covers
// one compaction file holding many logical SSTables instead of one barrier
// per SSTable.
package manifest

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/keys"
)

// NumLevels is the number of on-disk levels.
const NumLevels = 7

// FileMeta describes one (logical) SSTable. In legacy engines PhysNum ==
// Num and Offset == 0: the table owns its whole physical file. In BoLT
// several FileMetas share a PhysNum, each at its own Offset — these are the
// logical SSTables.
type FileMeta struct {
	// Num is the table's unique number (also the block-cache key).
	Num uint64
	// PhysNum is the physical file the table lives in.
	PhysNum uint64
	// Offset is the table's base offset within the physical file.
	Offset int64
	// Size is the table's length in bytes.
	Size int64
	// Smallest and Largest bound the table's internal keys.
	Smallest, Largest keys.InternalKey
	// Guard is the PebblesDB guard key owning this table (fragmented-level
	// profiles only; nil otherwise).
	Guard []byte

	// AllowedSeeks drives LevelDB's seek compaction: it starts proportional
	// to the file size and each read that had to consult this table without
	// finding its key decrements it; at zero the table becomes a compaction
	// candidate.
	AllowedSeeks atomic.Int64
}

// OverlapsUser reports whether the table's key range intersects
// [smallest, largest] in user-key space. A nil bound means unbounded.
func (f *FileMeta) OverlapsUser(smallest, largest []byte) bool {
	if smallest != nil && keys.CompareUser(f.Largest.UserKey(), smallest) < 0 {
		return false
	}
	if largest != nil && keys.CompareUser(f.Smallest.UserKey(), largest) > 0 {
		return false
	}
	return true
}

// Version is an immutable snapshot of the table layout across levels.
// Iterators and reads pin a version with Ref/Unref so obsolete tables are
// not deleted from under them.
type Version struct {
	// Levels[0] is ordered newest-first (by Num descending) and may
	// overlap; deeper levels are ordered by Smallest. In fragmented
	// profiles deeper levels may also overlap (within a guard).
	Levels [NumLevels][]*FileMeta

	// l0PhysFiles is the number of distinct physical files backing level
	// 0, computed once at construction: the write governors consult it on
	// every governed write, so it must not cost an allocation there.
	l0PhysFiles int

	// quarantined holds the table numbers marked corrupt in this version.
	// A quarantined table stays in its level (its key span must keep
	// failing loudly, and salvage needs its metadata) but reads must not
	// open it and compactions must not consume it except to salvage it.
	// Membership is cleared by deletion: the salvage compaction deletes
	// the table, and the builder drops quarantine records for tables no
	// longer present.
	quarantined map[uint64]struct{}

	// vlogSegments records the value-log segments this version knows
	// about, keyed by segment file number.
	vlogSegments map[uint64]VLogSegment

	refs atomic.Int32
	vs   *VersionSet
}

// VLogSegment is the version-resident state of one value-log segment.
// Live bytes (for GC victim selection and tooling) are estimated as
// Size - GCOffset - Garbage, clamped at zero.
type VLogSegment struct {
	// Num is the segment's file number.
	Num uint64
	// Size is the durably recorded record-byte length (recovery may walk
	// a valid tail past it; see core recovery).
	Size int64
	// GCOffset is the reclamation watermark: records below it are dead
	// and their payloads punched.
	GCOffset int64
	// Garbage estimates dead bytes at or above GCOffset, accumulated from
	// compactions dropping superseded pointer entries.
	Garbage int64
}

// LiveBytes estimates the segment's still-referenced record bytes.
func (s VLogSegment) LiveBytes() int64 {
	live := s.Size - s.GCOffset - s.Garbage
	if live < 0 {
		return 0
	}
	return live
}

// VLogSegment returns the recorded state of segment num.
func (v *Version) VLogSegment(num uint64) (VLogSegment, bool) {
	s, ok := v.vlogSegments[num]
	return s, ok
}

// VLogSegments returns all recorded value-log segments, ordered by number.
func (v *Version) VLogSegments() []VLogSegment {
	out := make([]VLogSegment, 0, len(v.vlogSegments))
	for _, s := range v.vlogSegments {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// NumVLogSegments returns the recorded segment count.
func (v *Version) NumVLogSegments() int { return len(v.vlogSegments) }

// IsQuarantined reports whether table num is quarantined in this version.
func (v *Version) IsQuarantined(num uint64) bool {
	_, ok := v.quarantined[num]
	return ok
}

// NumQuarantined returns the number of quarantined tables.
func (v *Version) NumQuarantined() int { return len(v.quarantined) }

// Quarantined returns the quarantined table numbers (unordered).
func (v *Version) Quarantined() []uint64 {
	out := make([]uint64, 0, len(v.quarantined))
	for num := range v.quarantined {
		out = append(out, num)
	}
	return out
}

// L0PhysFiles returns the number of distinct physical files at level 0
// (equal to the table count in legacy layouts, smaller with compaction
// files).
func (v *Version) L0PhysFiles() int { return v.l0PhysFiles }

// Ref pins the version.
func (v *Version) Ref() { v.refs.Add(1) }

// Unref releases a pin; at zero the version no longer holds tables live.
func (v *Version) Unref() {
	if v.refs.Add(-1) == 0 && v.vs != nil {
		v.vs.removeVersion(v)
	}
}

// NumFiles returns the total table count.
func (v *Version) NumFiles() int {
	n := 0
	for _, lvl := range v.Levels {
		n += len(lvl)
	}
	return n
}

// LevelBytes returns the total size of tables at the given level.
func (v *Version) LevelBytes(level int) int64 {
	var total int64
	for _, f := range v.Levels[level] {
		total += f.Size
	}
	return total
}

// Overlaps returns the tables at level whose user-key ranges intersect
// [smallest, largest] (nil = unbounded), in level order.
func (v *Version) Overlaps(level int, smallest, largest []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.Levels[level] {
		if f.OverlapsUser(smallest, largest) {
			out = append(out, f)
		}
	}
	return out
}

// SortedTables reports whether the invariantly-sorted-level assumption
// holds for the given level: non-overlapping and ordered. Used by tests
// and the engine's internal consistency checks (not valid for L0 or for
// fragmented profiles).
func (v *Version) SortedTables(level int) error {
	files := v.Levels[level]
	for i := 1; i < len(files); i++ {
		prev, cur := files[i-1], files[i]
		if keys.CompareUser(prev.Largest.UserKey(), cur.Smallest.UserKey()) >= 0 {
			return fmt.Errorf("manifest: level %d tables %d and %d overlap: %s vs %s",
				level, prev.Num, cur.Num, prev.Largest, cur.Smallest)
		}
	}
	return nil
}

// versionBuilder accumulates edits on top of a base version. Deletions are
// level-aware: BoLT's settled compaction promotes a table by deleting it at
// level L and re-adding the *same* table number at level L+1 within one
// edit, so deletion must not cancel the addition at the other level.
type versionBuilder struct {
	base        *Version
	added       [NumLevels][]*FileMeta
	deleted     map[levelNum]bool
	quarantined map[uint64]struct{}
	vlog        map[uint64]VLogSegment
}

type levelNum struct {
	level int
	num   uint64
}

func newVersionBuilder(base *Version) *versionBuilder {
	b := &versionBuilder{base: base, deleted: make(map[levelNum]bool)}
	b.quarantined = make(map[uint64]struct{}, len(base.quarantinedOrNil()))
	for num := range base.quarantinedOrNil() {
		b.quarantined[num] = struct{}{}
	}
	b.vlog = make(map[uint64]VLogSegment, len(base.vlogSegmentsOrNil()))
	for num, s := range base.vlogSegmentsOrNil() {
		b.vlog[num] = s
	}
	return b
}

// quarantinedOrNil tolerates a nil base (the recovery bootstrap).
func (v *Version) quarantinedOrNil() map[uint64]struct{} {
	if v == nil {
		return nil
	}
	return v.quarantined
}

// vlogSegmentsOrNil tolerates a nil base (the recovery bootstrap).
func (v *Version) vlogSegmentsOrNil() map[uint64]VLogSegment {
	if v == nil {
		return nil
	}
	return v.vlogSegments
}

func (b *versionBuilder) apply(edit *VersionEdit) {
	for _, d := range edit.Deleted {
		b.deleted[levelNum{d.Level, d.Num}] = true
	}
	for _, a := range edit.Added {
		// Re-adding at a level where an earlier edit deleted it revives it
		// (does not occur in practice, but keeps apply order-consistent).
		delete(b.deleted, levelNum{a.Level, a.Meta.Num})
		b.added[a.Level] = append(b.added[a.Level], a.Meta)
	}
	for _, num := range edit.Quarantined {
		b.quarantined[num] = struct{}{}
	}
	for _, se := range edit.VLogSegments {
		// Monotonic merge (see VLogSegmentEdit): max sizes and watermarks,
		// accumulate garbage, clamp at zero.
		s := b.vlog[se.Num]
		s.Num = se.Num
		if se.Size > s.Size {
			s.Size = se.Size
		}
		if se.GCOffset > s.GCOffset {
			s.GCOffset = se.GCOffset
		}
		s.Garbage += se.GarbageDelta
		if s.Garbage < 0 {
			s.Garbage = 0
		}
		b.vlog[se.Num] = s
	}
	for _, num := range edit.VLogDeleted {
		delete(b.vlog, num)
	}
}

// finish produces the new version. Levels deeper than 0 are sorted by
// smallest key (ties by Num, which keeps fragmented-profile ordering
// stable); level 0 is sorted newest-first.
func (b *versionBuilder) finish(vs *VersionSet) *Version {
	v := &Version{vs: vs}
	for level := 0; level < NumLevels; level++ {
		var files []*FileMeta
		if b.base != nil {
			for _, f := range b.base.Levels[level] {
				if !b.deleted[levelNum{level, f.Num}] {
					files = append(files, f)
				}
			}
		}
		for _, f := range b.added[level] {
			if !b.deleted[levelNum{level, f.Num}] {
				files = append(files, f)
			}
		}
		if level == 0 {
			sort.Slice(files, func(i, j int) bool { return files[i].Num > files[j].Num })
		} else {
			sort.Slice(files, func(i, j int) bool {
				c := keys.Compare(files[i].Smallest, files[j].Smallest)
				if c != 0 {
					return c < 0
				}
				return files[i].Num < files[j].Num
			})
		}
		v.Levels[level] = files
	}
	seen := make(map[uint64]struct{}, len(v.Levels[0]))
	for _, f := range v.Levels[0] {
		seen[f.PhysNum] = struct{}{}
	}
	v.l0PhysFiles = len(seen)
	// Quarantine membership survives only while the table does: deleting a
	// quarantined table (the salvage commit) is what clears its mark.
	if len(b.quarantined) > 0 {
		v.quarantined = make(map[uint64]struct{})
		for _, lvl := range v.Levels {
			for _, f := range lvl {
				if _, ok := b.quarantined[f.Num]; ok {
					v.quarantined[f.Num] = struct{}{}
				}
			}
		}
		if len(v.quarantined) == 0 {
			v.quarantined = nil
		}
	}
	if len(b.vlog) > 0 {
		v.vlogSegments = make(map[uint64]VLogSegment, len(b.vlog))
		for num, s := range b.vlog {
			v.vlogSegments[num] = s
		}
	}
	return v
}

// versionList tracks all live (referenced) versions so obsolete-file
// collection can compute the full live-table set.
type versionList struct {
	mu       sync.Mutex
	versions map[*Version]struct{}
}

func (l *versionList) add(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.versions == nil {
		l.versions = make(map[*Version]struct{})
	}
	l.versions[v] = struct{}{}
}

func (l *versionList) remove(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.versions, v)
}

func (l *versionList) liveTables() map[uint64]*FileMeta {
	l.mu.Lock()
	defer l.mu.Unlock()
	live := make(map[uint64]*FileMeta)
	for v := range l.versions {
		for _, lvl := range v.Levels {
			for _, f := range lvl {
				live[f.Num] = f
			}
		}
	}
	return live
}

// TotalBytes returns the cumulative size of all tables in the version.
func (v *Version) TotalBytes() int64 {
	var total int64
	for level := range v.Levels {
		total += v.LevelBytes(level)
	}
	return total
}

// DebugString renders the version layout for tools and tests.
func (v *Version) DebugString() string {
	var buf bytes.Buffer
	for level, files := range v.Levels {
		if len(files) == 0 {
			continue
		}
		fmt.Fprintf(&buf, "L%d:", level)
		for _, f := range files {
			fmt.Fprintf(&buf, " %d(phys=%d@%d,%dB)[%q..%q]",
				f.Num, f.PhysNum, f.Offset, f.Size, f.Smallest.UserKey(), f.Largest.UserKey())
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}
