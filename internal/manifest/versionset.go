package manifest

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/logrec"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// maxManifestSize triggers MANIFEST rotation (compaction of the edit log
// into a fresh snapshot).
const maxManifestSize = 4 << 20

// VersionSet owns the current version, the file-number and sequence
// allocators, and the MANIFEST log. All mutating methods must be called
// with the engine's mutex held; version pinning (Ref/Unref) is safe from
// any goroutine.
type VersionSet struct {
	fs vfs.FS //boltvet:guardedby none -- immutable after Create/Recover

	current     *Version    //boltvet:guardedby none -- externally serialized: mutated only under the engine mutex (see type doc)
	live        versionList //boltvet:guardedby none -- externally serialized under the engine mutex; each Version refcounts itself
	nextFileNum uint64      //boltvet:guardedby none -- externally serialized under the engine mutex
	lastSeq     uint64      //boltvet:guardedby none -- externally serialized under the engine mutex
	logNum      uint64      //boltvet:guardedby none -- WAL fully reflected in tables; engine-mutex serialized

	manifestNum  uint64         //boltvet:guardedby none -- externally serialized: commits hold the engine's manifestMu
	manifestFile vfs.File       //boltvet:guardedby none -- externally serialized: commits hold the engine's manifestMu
	manifestLog  *logrec.Writer //boltvet:guardedby none -- externally serialized: commits hold the engine's manifestMu
	manifestSize int64          //boltvet:guardedby none -- externally serialized: commits hold the engine's manifestMu
	// forceRotate makes the next Prepare rotate regardless of size: after
	// a failed CommitPrepared the MANIFEST tail may hold a torn or
	// unsynced record, and a later successful sync of the same file would
	// make the failed record durable too.
	forceRotate bool //boltvet:guardedby none -- externally serialized under the engine mutex

	compactPointers [NumLevels]keys.InternalKey //boltvet:guardedby none -- externally serialized under the engine mutex
}

// Create initializes a brand-new database in fs: an empty MANIFEST plus
// CURRENT. It returns the resulting version set.
func Create(fs vfs.FS) (*VersionSet, error) {
	vs := &VersionSet{fs: fs, nextFileNum: 2, manifestNum: 1}
	v := &Version{vs: vs}
	v.Ref()
	vs.live.add(v)
	vs.current = v

	if err := vs.newManifest(); err != nil {
		return nil, err
	}
	return vs, nil
}

// Recover loads the version state named by CURRENT and starts a fresh
// MANIFEST for subsequent edits.
func Recover(fs vfs.FS) (*VersionSet, error) {
	return recover0(fs, false)
}

// Load loads the version state read-only: no MANIFEST rotation, no writes
// of any kind. LogAndApply must not be called on the result; inspection
// tools use this.
func Load(fs vfs.FS) (*VersionSet, error) {
	return recover0(fs, true)
}

func recover0(fs vfs.FS, readOnly bool) (*VersionSet, error) {
	currentData, err := vfs.ReadWholeFile(fs, CurrentFileName)
	if err != nil {
		return nil, fmt.Errorf("manifest: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(currentData))
	kind, num, ok := ParseFileName(name)
	if !ok || kind != KindManifest {
		return nil, fmt.Errorf("%w: CURRENT names %q", ErrCorrupt, name)
	}

	vs := &VersionSet{fs: fs, manifestNum: num, nextFileNum: 2}
	builder := newVersionBuilder(nil)
	data, err := vfs.ReadWholeFile(fs, name)
	if err != nil {
		return nil, fmt.Errorf("manifest: read %q: %w", name, err)
	}
	r := logrec.NewReader(data)
	sawAny := false
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("manifest: replay %q: %w", name, err)
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			return nil, fmt.Errorf("manifest: decode edit: %w", err)
		}
		sawAny = true
		builder.apply(edit)
		if edit.LogNum != nil {
			vs.logNum = *edit.LogNum
		}
		if edit.NextFileNum != nil {
			vs.nextFileNum = *edit.NextFileNum
		}
		if edit.LastSeq != nil {
			vs.lastSeq = *edit.LastSeq
		}
		for _, cp := range edit.CompactPointers {
			if cp.Level < NumLevels {
				vs.compactPointers[cp.Level] = cp.Key
			}
		}
	}
	if !sawAny {
		return nil, fmt.Errorf("%w: MANIFEST %q holds no edits", ErrCorrupt, name)
	}
	v := builder.finish(vs)
	v.Ref()
	vs.live.add(v)
	vs.current = v

	if readOnly {
		return vs, nil
	}
	// Always start a fresh MANIFEST on open: the new snapshot is written
	// and synced before CURRENT moves, so a crash at any point leaves a
	// readable manifest. (Appending in place would require truncate-and-
	// rewrite under this vfs, which is not crash-safe.)
	if err := vs.rotateManifest(); err != nil {
		return nil, err
	}
	return vs, nil
}

// Current returns the current version (not pinned; callers Ref it while
// holding the engine mutex).
func (vs *VersionSet) Current() *Version { return vs.current }

// NextFileNum allocates a file number.
func (vs *VersionSet) NextFileNum() uint64 {
	n := vs.nextFileNum
	vs.nextFileNum++
	return n
}

// PeekFileNum returns the next file number without allocating.
func (vs *VersionSet) PeekFileNum() uint64 { return vs.nextFileNum }

// MarkFileNumUsed raises the allocator above an externally observed number
// (used when WAL files survive recovery).
func (vs *VersionSet) MarkFileNumUsed(n uint64) {
	if n >= vs.nextFileNum {
		vs.nextFileNum = n + 1
	}
}

// LastSeq returns the last allocated sequence number.
func (vs *VersionSet) LastSeq() uint64 { return vs.lastSeq }

// SetLastSeq records the last allocated sequence number.
func (vs *VersionSet) SetLastSeq(n uint64) { vs.lastSeq = n }

// LogNum returns the WAL number fully reflected in tables.
func (vs *VersionSet) LogNum() uint64 { return vs.logNum }

// CompactPointer returns the round-robin cursor of a level.
func (vs *VersionSet) CompactPointer(level int) keys.InternalKey {
	return vs.compactPointers[level]
}

// LiveTables returns every table referenced by any pinned version,
// including the current one. Obsolete-file collection deletes only tables
// outside this set.
func (vs *VersionSet) LiveTables() map[uint64]*FileMeta {
	return vs.live.liveTables()
}

// removeVersion is called by Version.Unref at refcount zero.
func (vs *VersionSet) removeVersion(v *Version) { vs.live.remove(v) }

// PreparedEdit is an edit that has been applied in memory but not yet made
// durable. The engine uses the three-phase Prepare / CommitPrepared /
// Install flow so the MANIFEST fsync (the second barrier of the commit
// protocol) runs without the engine mutex held:
//
//	db.mu held:   p := vs.Prepare(edit)
//	db.mu free:   err := vs.CommitPrepared(p)   // append + fsync
//	db.mu held:   vs.Install(p)
//
// At most one prepared edit may be in flight (the engine guards this with
// its manifest-writer mutex).
type PreparedEdit struct {
	version   *Version
	record    []byte
	rotate    bool
	rotateNum uint64
}

// Version returns the version the edit produces (not yet installed).
func (p *PreparedEdit) Version() *Version { return p.version }

// Prepare stamps edit with allocator state, updates the in-memory cursors,
// and builds the successor version. Call with the engine mutex held.
func (vs *VersionSet) Prepare(edit *VersionEdit) *PreparedEdit {
	if edit.LogNum != nil {
		vs.logNum = *edit.LogNum
	}
	edit.SetNextFileNum(vs.nextFileNum)
	edit.SetLastSeq(vs.lastSeq)
	for _, cp := range edit.CompactPointers {
		if cp.Level < NumLevels {
			vs.compactPointers[cp.Level] = cp.Key
		}
	}
	builder := newVersionBuilder(vs.current)
	builder.apply(edit)
	p := &PreparedEdit{
		version: builder.finish(vs),
		record:  edit.Encode(),
		rotate:  vs.manifestSize >= maxManifestSize || vs.forceRotate,
	}
	if p.rotate {
		vs.forceRotate = false
		// Allocate the new MANIFEST number and prebuild the snapshot
		// record here, while the caller holds the engine mutex;
		// CommitPrepared runs without it and must not touch allocator
		// state or the current version.
		p.rotateNum = vs.nextFileNum
		vs.nextFileNum++
		p.record = vs.snapshotEdit(p.version).Encode()
	}
	return p
}

// CommitPrepared makes the edit durable: one MANIFEST append plus fsync,
// or — when the MANIFEST has grown past its rotation threshold — a fresh
// MANIFEST holding a snapshot of the edit's resulting version. Call
// without the engine mutex; vs.current must not change concurrently.
func (vs *VersionSet) CommitPrepared(p *PreparedEdit) error {
	if p.rotate {
		oldNum := vs.manifestNum
		vs.manifestNum = p.rotateNum
		if err := vs.writeNewManifest(p.record); err != nil {
			return err
		}
		if oldNum != vs.manifestNum {
			_ = vs.fs.Remove(ManifestFileName(oldNum))
		}
		return nil
	}
	if err := vs.manifestLog.WriteRecord(p.record); err != nil {
		return fmt.Errorf("manifest: append edit: %w", err)
	}
	if err := vs.manifestFile.Sync(); err != nil {
		return fmt.Errorf("manifest: sync: %w", err)
	}
	vs.manifestSize += int64(len(p.record)) + 16
	return nil
}

// Install makes the committed version current. Call with the engine mutex
// held.
func (vs *VersionSet) Install(p *PreparedEdit) { vs.installVersion(p.version) }

// ForceRotate makes the next prepared edit write a fresh MANIFEST (with a
// full snapshot) instead of appending. The engine calls it after a failed
// CommitPrepared: re-appending a retried edit behind a possibly-torn tail
// could make both the failed and the retried record durable, and replay
// would then see a duplicate or corrupt edit. Call with the engine mutex
// held.
func (vs *VersionSet) ForceRotate() { vs.forceRotate = true }

// LogAndApply is the single-threaded convenience combining Prepare,
// CommitPrepared, and Install.
func (vs *VersionSet) LogAndApply(edit *VersionEdit) error {
	p := vs.Prepare(edit)
	if err := vs.CommitPrepared(p); err != nil {
		return err
	}
	vs.Install(p)
	return nil
}

func (vs *VersionSet) installVersion(v *Version) {
	v.Ref()
	vs.live.add(v)
	if vs.current != nil {
		vs.current.Unref()
	}
	vs.current = v
}

// snapshotEdit encodes the entire state of v as one edit.
func (vs *VersionSet) snapshotEdit(v *Version) *VersionEdit {
	edit := &VersionEdit{}
	edit.SetLogNum(vs.logNum)
	edit.SetNextFileNum(vs.nextFileNum)
	edit.SetLastSeq(vs.lastSeq)
	for level := 0; level < NumLevels; level++ {
		if cp := vs.compactPointers[level]; cp != nil {
			edit.CompactPointers = append(edit.CompactPointers, CompactPointer{Level: level, Key: cp})
		}
		for _, f := range v.Levels[level] {
			edit.AddFile(level, f)
		}
	}
	// Quarantine marks must survive rotation: a snapshot that dropped them
	// would let a rotted table serve silent garbage after the next open.
	for _, num := range v.Quarantined() {
		edit.QuarantineFile(num)
	}
	// Value-log segments re-emit their absolute state; against the fresh
	// builder's zero state the monotonic merge reproduces it exactly.
	for _, s := range v.VLogSegments() {
		edit.AddVLogSegment(VLogSegmentEdit{
			Num: s.Num, Size: s.Size, GCOffset: s.GCOffset, GarbageDelta: s.Garbage,
		})
	}
	return edit
}

// newManifest writes a fresh MANIFEST containing a snapshot of the current
// state, syncs it, points CURRENT at it, and syncs the directory.
func (vs *VersionSet) newManifest() error {
	return vs.writeNewManifest(vs.snapshotEdit(vs.current).Encode())
}

// writeNewManifest creates MANIFEST-<manifestNum> holding the given
// snapshot record, syncs it, and switches CURRENT.
func (vs *VersionSet) writeNewManifest(rec []byte) error {
	name := ManifestFileName(vs.manifestNum)
	f, err := vs.fs.Create(name)
	if err != nil {
		return fmt.Errorf("manifest: create %q: %w", name, err)
	}
	lw := logrec.NewWriter(f)
	if err := lw.WriteRecord(rec); err != nil {
		_ = f.Close()
		return fmt.Errorf("manifest: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("manifest: sync %q: %w", name, err)
	}
	if err := setCurrent(vs.fs, name); err != nil {
		_ = f.Close()
		return err
	}
	if vs.manifestFile != nil {
		// Best effort: the superseded MANIFEST handle holds no unsynced
		// state (every commit synced before returning).
		_ = vs.manifestFile.Close()
	}
	vs.manifestFile = f
	vs.manifestLog = lw
	vs.manifestSize = int64(len(rec)) + 16
	return nil
}

// rotateManifest switches to a new MANIFEST file and removes the old one.
func (vs *VersionSet) rotateManifest() error {
	oldNum := vs.manifestNum
	vs.manifestNum = vs.NextFileNum()
	if err := vs.newManifest(); err != nil {
		return err
	}
	if oldNum != vs.manifestNum {
		// Best effort: the old manifest is obsolete once CURRENT moved.
		_ = vs.fs.Remove(ManifestFileName(oldNum))
	}
	return nil
}

// setCurrent atomically points CURRENT at manifestName.
func setCurrent(fs vfs.FS, manifestName string) error {
	tmp := manifestName + ".tmp"
	if err := vfs.WriteFile(fs, tmp, []byte(manifestName+"\n")); err != nil {
		return fmt.Errorf("manifest: write CURRENT tmp: %w", err)
	}
	if err := fs.Rename(tmp, CurrentFileName); err != nil {
		return fmt.Errorf("manifest: rename CURRENT: %w", err)
	}
	if err := fs.SyncDir(); err != nil {
		return fmt.Errorf("manifest: sync dir: %w", err)
	}
	return nil
}

// Close releases the MANIFEST file handle.
func (vs *VersionSet) Close() error {
	if vs.manifestFile != nil {
		err := vs.manifestFile.Close()
		vs.manifestFile = nil
		return err
	}
	return nil
}
