// Package memtable implements the in-memory write buffer as a concurrent
// skiplist. Inserts use per-level compare-and-swap so multiple writers can
// insert simultaneously (HyperLevelDB's write-path parallelism relies on
// this); readers never take locks. Entries are internal keys, so multiple
// versions of one user key coexist, newest first.
package memtable

import (
	"sync/atomic"

	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
)

const maxHeight = 12

type node struct {
	key   keys.InternalKey       //boltvet:guardedby none -- immutable once the node is linked into the list
	value []byte                 //boltvet:guardedby none -- immutable once the node is linked into the list
	next  []atomic.Pointer[node] //boltvet:guardedby none -- slice header immutable (len == node height); elements are atomic pointers
}

// MemTable is a concurrent skiplist of internal-key entries. Construct
// with New.
type MemTable struct {
	head    *node         //boltvet:guardedby none -- immutable after New; node links are atomic
	height  atomic.Int32  //boltvet:guardedby atomic
	size    atomic.Int64  //boltvet:guardedby atomic -- approximate bytes
	count   atomic.Int64  //boltvet:guardedby atomic
	rngSeed atomic.Uint64 //boltvet:guardedby atomic
}

// New returns an empty memtable.
func New() *MemTable {
	head := &node{next: make([]atomic.Pointer[node], maxHeight)}
	m := &MemTable{head: head}
	m.height.Store(1)
	m.rngSeed.Store(0x9e3779b97f4a7c15)
	return m
}

// ApproximateSize returns the approximate memory footprint in bytes.
func (m *MemTable) ApproximateSize() int64 { return m.size.Load() }

// Count returns the number of entries.
func (m *MemTable) Count() int64 { return m.count.Load() }

// Empty reports whether the memtable has no entries.
func (m *MemTable) Empty() bool { return m.count.Load() == 0 }

// randomHeight draws a height with P(h) = 4^-h, like LevelDB.
func (m *MemTable) randomHeight() int {
	// xorshift64* on a shared atomic seed; contention is acceptable since
	// inserts do far more work than this.
	for {
		seed := m.rngSeed.Load()
		next := seed
		next ^= next >> 12
		next ^= next << 25
		next ^= next >> 27
		if m.rngSeed.CompareAndSwap(seed, next) {
			rnd := next * 0x2545f4914f6cdd1d
			h := 1
			for h < maxHeight && rnd&3 == 0 {
				h++
				rnd >>= 2
			}
			return h
		}
	}
}

// findSplice fills prev/next with the nodes straddling key at every level.
func (m *MemTable) findSplice(key keys.InternalKey, prev, next *[maxHeight]*node) {
	p := m.head
	for level := maxHeight - 1; level >= 0; level-- {
		for {
			n := p.next[level].Load()
			if n == nil || keys.Compare(n.key, key) >= 0 {
				prev[level] = p
				next[level] = n
				break
			}
			p = n
		}
	}
}

// Add inserts an entry. Internal keys are unique (sequence numbers never
// repeat), so Add never overwrites.
func (m *MemTable) Add(seq keys.Seq, kind keys.Kind, ukey, value []byte) {
	ikey := keys.MakeInternalKey(make([]byte, 0, len(ukey)+keys.TrailerLen), ukey, seq, kind)
	var v []byte
	if len(value) > 0 {
		v = append([]byte(nil), value...)
	}
	h := m.randomHeight()
	n := &node{key: ikey, value: v, next: make([]atomic.Pointer[node], h)}

	for {
		cur := m.height.Load()
		if int32(h) <= cur || m.height.CompareAndSwap(cur, int32(h)) {
			break
		}
	}

	var prev, next [maxHeight]*node
	m.findSplice(ikey, &prev, &next)
	for level := 0; level < h; level++ {
		for {
			n.next[level].Store(next[level])
			if prev[level].next[level].CompareAndSwap(next[level], n) {
				break
			}
			// Lost a race at this level: recompute the splice from the
			// previous node forward.
			p := prev[level]
			for {
				nn := p.next[level].Load()
				if nn == nil || keys.Compare(nn.key, ikey) >= 0 {
					prev[level], next[level] = p, nn
					break
				}
				p = nn
			}
		}
	}
	m.size.Add(int64(len(ikey) + len(v) + 48))
	m.count.Add(1)
}

// Get looks up ukey at-or-below sequence seq. found=false means the
// memtable holds no visible version; found=true with kind=KindDelete means
// the key was deleted.
func (m *MemTable) Get(ukey []byte, seq keys.Seq) (value []byte, kind keys.Kind, found bool) {
	return m.GetSeek(keys.MakeInternalKey(nil, ukey, seq, keys.KindSeekMax))
}

// GetSeek is Get for callers that already hold an encoded seek key
// (user key + seq + KindSeekMax): the engine's read path probes the
// mutable and immutable memtables and every table with one target, and
// encoding it once per lookup instead of once per probe keeps the hot
// path allocation-free.
func (m *MemTable) GetSeek(target keys.InternalKey) (value []byte, kind keys.Kind, found bool) {
	n := m.seekGE(target)
	if n == nil || keys.CompareUser(n.key.UserKey(), target.UserKey()) != 0 {
		return nil, 0, false
	}
	return n.value, n.key.Kind(), true
}

// seekGE returns the first node with key >= target, or nil.
func (m *MemTable) seekGE(target keys.InternalKey) *node {
	p := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for {
			n := p.next[level].Load()
			if n == nil || keys.Compare(n.key, target) >= 0 {
				break
			}
			p = n
		}
	}
	return p.next[0].Load()
}

// NewIter returns an iterator over the memtable. The iterator observes
// entries inserted after its creation (standard LSM semantics; snapshot
// isolation comes from sequence-number filtering above).
func (m *MemTable) NewIter() iterator.Iterator {
	return &memIter{m: m}
}

type memIter struct {
	m *MemTable
	n *node
}

var _ iterator.Iterator = (*memIter)(nil)

func (it *memIter) First() bool {
	it.n = it.m.head.next[0].Load()
	return it.n != nil
}

func (it *memIter) Seek(target keys.InternalKey) bool {
	it.n = it.m.seekGE(target)
	return it.n != nil
}

func (it *memIter) Next() bool {
	if it.n == nil {
		return false
	}
	it.n = it.n.next[0].Load()
	return it.n != nil
}

func (it *memIter) Valid() bool { return it.n != nil }

func (it *memIter) Key() keys.InternalKey {
	if it.n == nil {
		return nil
	}
	return it.n.key
}

func (it *memIter) Value() []byte {
	if it.n == nil {
		return nil
	}
	return it.n.value
}

func (it *memIter) Err() error { return nil }

func (it *memIter) Close() error {
	it.n = nil
	return nil
}
