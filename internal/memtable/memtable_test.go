package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/bolt-lsm/bolt/internal/keys"
)

func TestAddGet(t *testing.T) {
	m := New()
	m.Add(1, keys.KindSet, []byte("a"), []byte("v1"))
	m.Add(2, keys.KindSet, []byte("b"), []byte("v2"))
	m.Add(3, keys.KindDelete, []byte("a"), nil)

	v, kind, found := m.Get([]byte("b"), keys.MaxSeq)
	if !found || kind != keys.KindSet || string(v) != "v2" {
		t.Fatalf("Get(b) = %q %v %v", v, kind, found)
	}
	// At seq >= 3, "a" is deleted.
	_, kind, found = m.Get([]byte("a"), keys.MaxSeq)
	if !found || kind != keys.KindDelete {
		t.Fatalf("Get(a) should see tombstone, got kind=%v found=%v", kind, found)
	}
	// At seq 2, the original value is visible.
	v, kind, found = m.Get([]byte("a"), 2)
	if !found || kind != keys.KindSet || string(v) != "v1" {
		t.Fatalf("Get(a,2) = %q %v %v", v, kind, found)
	}
	// Unknown key.
	if _, _, found := m.Get([]byte("zz"), keys.MaxSeq); found {
		t.Fatal("phantom key")
	}
}

func TestIterSortedAndComplete(t *testing.T) {
	m := New()
	const n = 1000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for i, p := range perm {
		m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("key%05d", p)), []byte(fmt.Sprintf("v%d", p)))
	}
	if m.Count() != n {
		t.Fatalf("Count = %d", m.Count())
	}
	it := m.NewIter()
	defer it.Close()
	var prev keys.InternalKey
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("out of order at %d: %v >= %v", count, prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("iterated %d, want %d", count, n)
	}
}

func TestIterSeek(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("k%03d", i*2)), nil)
	}
	it := m.NewIter()
	defer it.Close()
	// Seek to a present key.
	if !it.Seek(keys.MakeInternalKey(nil, []byte("k010"), keys.MaxSeq, keys.KindSeekMax)) {
		t.Fatal("seek failed")
	}
	if string(it.Key().UserKey()) != "k010" {
		t.Fatalf("landed on %q", it.Key().UserKey())
	}
	// Seek between keys.
	if !it.Seek(keys.MakeInternalKey(nil, []byte("k011"), keys.MaxSeq, keys.KindSeekMax)) {
		t.Fatal("seek failed")
	}
	if string(it.Key().UserKey()) != "k012" {
		t.Fatalf("landed on %q", it.Key().UserKey())
	}
}

func TestMultipleVersionsNewestFirst(t *testing.T) {
	m := New()
	for seq := 1; seq <= 10; seq++ {
		m.Add(keys.Seq(seq), keys.KindSet, []byte("k"), []byte(fmt.Sprintf("v%d", seq)))
	}
	v, _, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || string(v) != "v10" {
		t.Fatalf("latest = %q", v)
	}
	for seq := 1; seq <= 10; seq++ {
		v, _, found := m.Get([]byte("k"), keys.Seq(seq))
		if !found || string(v) != fmt.Sprintf("v%d", seq) {
			t.Fatalf("at seq %d got %q", seq, v)
		}
	}
}

func TestConcurrentInsertersAllVisible(t *testing.T) {
	m := New()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := keys.Seq(w*perWriter + i + 1)
				key := fmt.Sprintf("w%d-k%06d", w, i)
				m.Add(seq, keys.KindSet, []byte(key), []byte(key))
			}
		}(w)
	}
	wg.Wait()
	if m.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", m.Count(), writers*perWriter)
	}
	// Every key must be found with its value.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 97 {
			key := fmt.Sprintf("w%d-k%06d", w, i)
			v, _, found := m.Get([]byte(key), keys.MaxSeq)
			if !found || string(v) != key {
				t.Fatalf("lost key %s (found=%v v=%q)", key, found, v)
			}
		}
	}
	// Iteration must be sorted and complete.
	it := m.NewIter()
	defer it.Close()
	count := 0
	var prev keys.InternalKey
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatal("concurrent inserts broke ordering")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != writers*perWriter {
		t.Fatalf("iterated %d, want %d", count, writers*perWriter)
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	m := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("k%06d", i)), []byte("v"))
		}
	}()
	// Readers run concurrently; they must never see corruption (panics or
	// unordered iteration).
	for {
		select {
		case <-done:
			return
		default:
		}
		it := m.NewIter()
		var prev keys.InternalKey
		for ok := it.First(); ok; ok = it.Next() {
			if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
				t.Fatal("reader observed unordered state")
			}
			prev = append(prev[:0], it.Key()...)
		}
		it.Close()
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New()
	if m.ApproximateSize() != 0 {
		t.Fatal("empty memtable has nonzero size")
	}
	m.Add(1, keys.KindSet, []byte("key"), make([]byte, 1000))
	if m.ApproximateSize() < 1000 {
		t.Fatalf("size %d too small", m.ApproximateSize())
	}
}

// Property: memtable contents equal a sorted reference model.
func TestMatchesReferenceModel(t *testing.T) {
	f := func(ops [][2]string, seed int64) bool {
		m := New()
		type entry struct {
			ikey keys.InternalKey
			v    string
		}
		var ref []entry
		for i, op := range ops {
			seq := keys.Seq(i + 1)
			m.Add(seq, keys.KindSet, []byte(op[0]), []byte(op[1]))
			ref = append(ref, entry{keys.MakeInternalKey(nil, []byte(op[0]), seq, keys.KindSet), op[1]})
		}
		sort.Slice(ref, func(a, b int) bool { return keys.Compare(ref[a].ikey, ref[b].ikey) < 0 })
		it := m.NewIter()
		defer it.Close()
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if i >= len(ref) || keys.Compare(it.Key(), ref[i].ikey) != 0 || string(it.Value()) != ref[i].v {
				return false
			}
			i++
		}
		return i == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("key%09d", i)), []byte("value"))
	}
}

func BenchmarkGet(b *testing.B) {
	m := New()
	for i := 0; i < 100000; i++ {
		m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("key%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("key%09d", i%100000)), keys.MaxSeq)
	}
}

func BenchmarkConcurrentAdd(b *testing.B) {
	m := New()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := seq.Add(1)
			m.Add(keys.Seq(s), keys.KindSet, []byte(fmt.Sprintf("key%09d", s%1000000)), []byte("value"))
		}
	})
}
