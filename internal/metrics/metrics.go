// Package metrics defines the engine's counters. Everything the paper
// plots — fsync counts, total bytes written, write-stall time, compaction
// activity, cache behaviour — is accumulated here, lock-free, and read
// through Snapshot.
package metrics

import (
	"sync/atomic"
	"time"

	"github.com/bolt-lsm/bolt/internal/histogram"
	"github.com/bolt-lsm/bolt/internal/manifest"
)

// CompactionReason buckets completed compactions by what triggered them,
// indexing the per-reason counters. The two size triggers (L0 file count,
// level bytes) share the size bucket.
type CompactionReason int

// The per-reason compaction counter buckets.
const (
	CompactionSize CompactionReason = iota
	CompactionSeek
	CompactionSettled
	CompactionFragmented
	CompactionManual
	CompactionSalvage
	CompactionValueGC
	NumCompactionReasons
)

// CompactionReasonNames are the Prometheus label values, indexed by
// CompactionReason.
var CompactionReasonNames = [NumCompactionReasons]string{
	"size", "seek", "settled", "fragmented", "manual", "salvage", "value-gc",
}

// Metrics is the live counter set of one DB instance.
type Metrics struct {
	// Write path.
	Writes          atomic.Int64 // committed operations
	BytesIn         atomic.Int64 // user payload bytes accepted
	StallSlowdown   atomic.Int64 // L0SlowDown events (1 ms sleeps)
	StallStops      atomic.Int64 // L0Stop / memtable-full blocking events
	StallTimeNs     atomic.Int64 // total time writers spent stalled
	WALRecords      atomic.Int64
	GroupCommits    atomic.Int64 // leader commits (batches may be grouped)
	MemtableSwitch  atomic.Int64
	MemtableFlushes atomic.Int64

	// Compaction.
	Compactions        atomic.Int64
	SettledPromotions  atomic.Int64 // tables promoted without rewrite
	CompactionBytesIn  atomic.Int64 // bytes read by compactions
	CompactionBytesOut atomic.Int64 // bytes written by compactions
	TablesCreated      atomic.Int64
	TablesDeleted      atomic.Int64
	HolePunches        atomic.Int64
	SeekCompactions    atomic.Int64
	// CompactionsByReason splits Compactions by trigger (see
	// CompactionReason).
	CompactionsByReason [NumCompactionReasons]atomic.Int64

	// Read path.
	Gets          atomic.Int64
	GetHits       atomic.Int64
	TablesChecked atomic.Int64 // tables consulted across all gets
	BloomSkips    atomic.Int64 // tables skipped by bloom filters

	// Per-level compaction activity, indexed by level. A flush counts as
	// a compaction into L0; an L(n)->L(n+1) compaction counts out of n and
	// into n+1, with bytes attributed the same way.
	LevelCompactionsIn  [manifest.NumLevels]atomic.Int64 // compactions that wrote into the level
	LevelCompactionsOut [manifest.NumLevels]atomic.Int64 // compactions that read from the level
	LevelBytesRead      [manifest.NumLevels]atomic.Int64 // compaction bytes read from the level
	LevelBytesWritten   [manifest.NumLevels]atomic.Int64 // flush+compaction bytes written into the level

	// Background-failure handling.
	BgRetries            atomic.Int64 // flush/compaction attempts retried after a transient failure
	BgRecoveredFaults    atomic.Int64 // background ops that succeeded after failed attempts
	ReadOnlyDegradations atomic.Int64 // entries into read-only mode
	HolePunchFallbacks   atomic.Int64 // punches degraded to dead-range accounting

	// Value log (WAL-time key-value separation).
	VLogAppends        atomic.Int64 // values extracted into the value log
	VLogAppendedBytes  atomic.Int64 // record bytes appended to the value log
	VLogDerefs         atomic.Int64 // pointer dereferences on the read path
	VLogGCPasses       atomic.Int64 // value-GC chunk passes committed
	VLogReclaimedBytes atomic.Int64 // value-log bytes reclaimed (watermark advances)

	// Integrity: scrub, quarantine, salvage.
	ScrubPasses      atomic.Int64 // completed background scrub passes
	ScrubTables      atomic.Int64 // tables verified by the scrubber
	ScrubBytes       atomic.Int64 // table bytes the scrubber read
	ScrubCorruptions atomic.Int64 // corruption findings (scrub + lazy detection)
	Quarantines      atomic.Int64 // tables placed under quarantine
	Salvages         atomic.Int64 // salvage compactions that cleared a quarantine
	SalvageSkipped   atomic.Int64 // unrecoverable blocks dropped by salvages

	// Latency histograms.
	WriteLatency histogram.Histogram
	ReadLatency  histogram.Histogram
	ScanLatency  histogram.Histogram
}

// AddStall records a writer stall of the given duration.
func (m *Metrics) AddStall(d time.Duration) { m.StallTimeNs.Add(int64(d)) }

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Writes          int64
	BytesIn         int64
	StallSlowdown   int64
	StallStops      int64
	StallTime       time.Duration
	WALRecords      int64
	GroupCommits    int64
	MemtableSwitch  int64
	MemtableFlushes int64

	Compactions        int64
	SettledPromotions  int64
	CompactionBytesIn  int64
	CompactionBytesOut int64
	TablesCreated      int64
	TablesDeleted      int64
	HolePunches        int64
	SeekCompactions    int64

	CompactionsByReason [NumCompactionReasons]int64

	Gets          int64
	GetHits       int64
	TablesChecked int64
	BloomSkips    int64

	LevelCompactionsIn  [manifest.NumLevels]int64
	LevelCompactionsOut [manifest.NumLevels]int64
	LevelBytesRead      [manifest.NumLevels]int64
	LevelBytesWritten   [manifest.NumLevels]int64

	BgRetries            int64
	BgRecoveredFaults    int64
	ReadOnlyDegradations int64
	HolePunchFallbacks   int64

	VLogAppends        int64
	VLogAppendedBytes  int64
	VLogDerefs         int64
	VLogGCPasses       int64
	VLogReclaimedBytes int64

	ScrubPasses      int64
	ScrubTables      int64
	ScrubBytes       int64
	ScrubCorruptions int64
	Quarantines      int64
	Salvages         int64
	SalvageSkipped   int64
}

// Snapshot copies the scalar counters (histograms are read directly).
func (m *Metrics) Snapshot() Snapshot {
	s := m.snapshotScalars()
	for r := CompactionReason(0); r < NumCompactionReasons; r++ {
		s.CompactionsByReason[r] = m.CompactionsByReason[r].Load()
	}
	for l := 0; l < manifest.NumLevels; l++ {
		s.LevelCompactionsIn[l] = m.LevelCompactionsIn[l].Load()
		s.LevelCompactionsOut[l] = m.LevelCompactionsOut[l].Load()
		s.LevelBytesRead[l] = m.LevelBytesRead[l].Load()
		s.LevelBytesWritten[l] = m.LevelBytesWritten[l].Load()
	}
	return s
}

func (m *Metrics) snapshotScalars() Snapshot {
	return Snapshot{
		Writes:          m.Writes.Load(),
		BytesIn:         m.BytesIn.Load(),
		StallSlowdown:   m.StallSlowdown.Load(),
		StallStops:      m.StallStops.Load(),
		StallTime:       time.Duration(m.StallTimeNs.Load()),
		WALRecords:      m.WALRecords.Load(),
		GroupCommits:    m.GroupCommits.Load(),
		MemtableSwitch:  m.MemtableSwitch.Load(),
		MemtableFlushes: m.MemtableFlushes.Load(),

		Compactions:        m.Compactions.Load(),
		SettledPromotions:  m.SettledPromotions.Load(),
		CompactionBytesIn:  m.CompactionBytesIn.Load(),
		CompactionBytesOut: m.CompactionBytesOut.Load(),
		TablesCreated:      m.TablesCreated.Load(),
		TablesDeleted:      m.TablesDeleted.Load(),
		HolePunches:        m.HolePunches.Load(),
		SeekCompactions:    m.SeekCompactions.Load(),

		Gets:          m.Gets.Load(),
		GetHits:       m.GetHits.Load(),
		TablesChecked: m.TablesChecked.Load(),
		BloomSkips:    m.BloomSkips.Load(),

		BgRetries:            m.BgRetries.Load(),
		BgRecoveredFaults:    m.BgRecoveredFaults.Load(),
		ReadOnlyDegradations: m.ReadOnlyDegradations.Load(),
		HolePunchFallbacks:   m.HolePunchFallbacks.Load(),

		VLogAppends:        m.VLogAppends.Load(),
		VLogAppendedBytes:  m.VLogAppendedBytes.Load(),
		VLogDerefs:         m.VLogDerefs.Load(),
		VLogGCPasses:       m.VLogGCPasses.Load(),
		VLogReclaimedBytes: m.VLogReclaimedBytes.Load(),

		ScrubPasses:      m.ScrubPasses.Load(),
		ScrubTables:      m.ScrubTables.Load(),
		ScrubBytes:       m.ScrubBytes.Load(),
		ScrubCorruptions: m.ScrubCorruptions.Load(),
		Quarantines:      m.Quarantines.Load(),
		Salvages:         m.Salvages.Load(),
		SalvageSkipped:   m.SalvageSkipped.Load(),
	}
}
