package metrics

import (
	"fmt"
	"io"

	"github.com/bolt-lsm/bolt/internal/histogram"
)

// LevelStats describes one level of the live tree, combining layout
// figures read from the current Version with cumulative per-level
// compaction counters.
type LevelStats struct {
	Level int
	// Files is the number of distinct physical files backing the level;
	// with compaction files this is smaller than Tables.
	Files int
	// Tables is the number of logical SSTables.
	Tables int
	// Bytes is the live logical data volume.
	Bytes int64
	// DeadBytes is space held by dead logical SSTables whose hole punch
	// failed or is pending — allocated but unreachable.
	DeadBytes int64
	// CompactionsIn / CompactionsOut count compactions that wrote into /
	// read from the level (a flush counts as a compaction into L0).
	CompactionsIn  int64
	CompactionsOut int64
	// BytesRead / BytesWritten are the cumulative compaction volumes on
	// each side of the level.
	BytesRead    int64
	BytesWritten int64
	// ReadAmp is the number of sorted runs a point lookup may consult in
	// this level: the table count for L0, at most 1 below.
	ReadAmp int
	// WriteAmp is BytesWritten divided by the user bytes accepted by the
	// DB — the level's share of total write amplification.
	WriteAmp float64
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). The first write error sticks; later calls are no-ops.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first error encountered while writing.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// Counter emits one cumulative counter sample.
func (p *PromWriter) Counter(name, help string, v int64) {
	p.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.printf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// LabeledCounter emits one counter sample per label value.
func (p *PromWriter) LabeledCounter(name, help, label string, names []string, values []int64) {
	p.printf("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for i, n := range names {
		p.printf("%s{%s=%q} %d\n", name, label, n, values[i])
	}
}

// LevelGauge emits one gauge sample per level, labelled level="N".
func (p *PromWriter) LevelGauge(name, help string, value func(LevelStats) float64, levels []LevelStats) {
	p.printf("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, ls := range levels {
		p.printf("%s{level=\"%d\"} %g\n", name, ls.Level, value(ls))
	}
}

// Summary emits a latency histogram as a Prometheus summary in seconds.
func (p *PromWriter) Summary(name, help string, h *histogram.Histogram) {
	p.printf("# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		p.printf("%s{quantile=\"%g\"} %g\n", name, q, h.Quantile(q).Seconds())
	}
	p.printf("%s_sum %g\n%s_count %d\n", name, h.Sum().Seconds(), name, h.Count())
}

// Levels emits the standard per-level metric set.
func (p *PromWriter) Levels(levels []LevelStats) {
	p.LevelGauge("bolt_level_files", "Distinct physical files per level.",
		func(l LevelStats) float64 { return float64(l.Files) }, levels)
	p.LevelGauge("bolt_level_tables", "Logical SSTables per level.",
		func(l LevelStats) float64 { return float64(l.Tables) }, levels)
	p.LevelGauge("bolt_level_bytes", "Live logical bytes per level.",
		func(l LevelStats) float64 { return float64(l.Bytes) }, levels)
	p.LevelGauge("bolt_level_dead_bytes", "Dead-range bytes awaiting reclamation per level.",
		func(l LevelStats) float64 { return float64(l.DeadBytes) }, levels)
	p.LevelGauge("bolt_level_compactions_in", "Compactions that wrote into the level.",
		func(l LevelStats) float64 { return float64(l.CompactionsIn) }, levels)
	p.LevelGauge("bolt_level_compactions_out", "Compactions that read from the level.",
		func(l LevelStats) float64 { return float64(l.CompactionsOut) }, levels)
	p.LevelGauge("bolt_level_bytes_read", "Compaction bytes read from the level.",
		func(l LevelStats) float64 { return float64(l.BytesRead) }, levels)
	p.LevelGauge("bolt_level_bytes_written", "Flush and compaction bytes written into the level.",
		func(l LevelStats) float64 { return float64(l.BytesWritten) }, levels)
	p.LevelGauge("bolt_level_read_amp", "Sorted runs a point read may consult in the level.",
		func(l LevelStats) float64 { return float64(l.ReadAmp) }, levels)
	p.LevelGauge("bolt_level_write_amp", "Bytes written into the level per user byte accepted.",
		func(l LevelStats) float64 { return l.WriteAmp }, levels)
}

// WriteProm emits the full scalar counter set plus the latency summaries.
func (m *Metrics) WriteProm(p *PromWriter) {
	s := m.Snapshot()
	p.Counter("bolt_writes_total", "Committed write operations.", s.Writes)
	p.Counter("bolt_bytes_in_total", "User payload bytes accepted.", s.BytesIn)
	p.Counter("bolt_stall_slowdown_total", "L0 slowdown events (1ms write delays).", s.StallSlowdown)
	p.Counter("bolt_stall_stops_total", "Blocking write stalls (L0 stop or memtable full).", s.StallStops)
	p.Gauge("bolt_stall_seconds", "Total time writers spent stalled.", s.StallTime.Seconds())
	p.Counter("bolt_wal_records_total", "WAL records appended.", s.WALRecords)
	p.Counter("bolt_group_commits_total", "Leader group commits.", s.GroupCommits)
	p.Counter("bolt_memtable_switches_total", "Memtable rotations.", s.MemtableSwitch)
	p.Counter("bolt_memtable_flushes_total", "Memtable flushes completed.", s.MemtableFlushes)

	p.Counter("bolt_compactions_total", "Compactions completed.", s.Compactions)
	p.Counter("bolt_settled_promotions_total", "Tables promoted without rewrite by settled compactions.", s.SettledPromotions)
	p.Counter("bolt_compaction_bytes_in_total", "Bytes read by compactions.", s.CompactionBytesIn)
	p.Counter("bolt_compaction_bytes_out_total", "Bytes written by compactions.", s.CompactionBytesOut)
	p.Counter("bolt_tables_created_total", "Logical SSTables created.", s.TablesCreated)
	p.Counter("bolt_tables_deleted_total", "Logical SSTables deleted.", s.TablesDeleted)
	p.Counter("bolt_hole_punches_total", "Dead ranges reclaimed barrier-free.", s.HolePunches)
	p.Counter("bolt_hole_punch_fallbacks_total", "Punches degraded to dead-range accounting.", s.HolePunchFallbacks)
	p.Counter("bolt_seek_compactions_total", "Compactions triggered by seek misses.", s.SeekCompactions)
	p.LabeledCounter("bolt_compactions_by_reason_total", "Compactions completed, by trigger.",
		"reason", CompactionReasonNames[:], s.CompactionsByReason[:])

	p.Counter("bolt_vlog_appends_total", "Values separated into the value log at commit.", s.VLogAppends)
	p.Counter("bolt_vlog_appended_bytes_total", "Record bytes appended to the value log.", s.VLogAppendedBytes)
	p.Counter("bolt_vlog_derefs_total", "Reads that dereferenced a value-log pointer.", s.VLogDerefs)
	p.Counter("bolt_vlog_gc_passes_total", "Value-log GC passes committed.", s.VLogGCPasses)
	p.Counter("bolt_vlog_reclaimed_bytes_total", "Value-log bytes reclaimed by GC watermark advances.", s.VLogReclaimedBytes)

	p.Counter("bolt_gets_total", "Point lookups.", s.Gets)
	p.Counter("bolt_get_hits_total", "Point lookups that found a value.", s.GetHits)
	p.Counter("bolt_tables_checked_total", "Tables consulted across all gets.", s.TablesChecked)
	p.Counter("bolt_bloom_skips_total", "Tables skipped by bloom filters.", s.BloomSkips)

	p.Counter("bolt_bg_retries_total", "Background attempts retried after transient failures.", s.BgRetries)
	p.Counter("bolt_bg_recovered_faults_total", "Background ops that succeeded after failed attempts.", s.BgRecoveredFaults)
	p.Counter("bolt_read_only_degradations_total", "Entries into read-only mode.", s.ReadOnlyDegradations)

	p.Counter("bolt_scrub_passes_total", "Completed background integrity scrub passes.", s.ScrubPasses)
	p.Counter("bolt_scrub_tables_verified_total", "Tables verified by the scrubber.", s.ScrubTables)
	p.Counter("bolt_scrub_bytes_read_total", "Table bytes read by the scrubber.", s.ScrubBytes)
	p.Counter("bolt_scrub_corruptions_total", "Table corruption findings (scrub and lazy detection).", s.ScrubCorruptions)
	p.Counter("bolt_quarantines_total", "Tables placed under quarantine.", s.Quarantines)
	p.Counter("bolt_salvages_total", "Salvage compactions that cleared a quarantine.", s.Salvages)
	p.Counter("bolt_salvage_skipped_blocks_total", "Unrecoverable blocks dropped by salvage compactions.", s.SalvageSkipped)

	p.Summary("bolt_write_latency_seconds", "Write operation latency.", &m.WriteLatency)
	p.Summary("bolt_read_latency_seconds", "Point-read latency.", &m.ReadLatency)
	p.Summary("bolt_scan_latency_seconds", "Scan latency.", &m.ScanLatency)
}
