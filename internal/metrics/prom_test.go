package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWritePromFormat(t *testing.T) {
	var m Metrics
	m.Writes.Store(42)
	m.Gets.Store(7)
	m.LevelCompactionsIn[2].Add(3)
	m.WriteLatency.Record(time.Millisecond)
	m.WriteLatency.Record(2 * time.Millisecond)

	var b strings.Builder
	p := NewPromWriter(&b)
	m.WriteProm(p)
	p.Levels([]LevelStats{
		{Level: 0, Files: 2, Tables: 4, Bytes: 1 << 20, ReadAmp: 4},
		{Level: 1, Files: 1, Tables: 8, Bytes: 4 << 20, ReadAmp: 1, WriteAmp: 1.5},
	})
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE bolt_writes_total counter",
		"bolt_writes_total 42",
		"bolt_gets_total 7",
		"# TYPE bolt_write_latency_seconds summary",
		`bolt_write_latency_seconds{quantile="0.99"}`,
		"bolt_write_latency_seconds_count 2",
		"bolt_write_latency_seconds_sum 0.003",
		`bolt_level_bytes{level="0"} 1.048576e+06`,
		`bolt_level_tables{level="1"} 8`,
		`bolt_level_write_amp{level="1"} 1.5`,
		`bolt_level_read_amp{level="0"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestSnapshotCopiesLevelCounters(t *testing.T) {
	var m Metrics
	m.LevelBytesWritten[1].Add(100)
	m.LevelCompactionsOut[0].Add(2)
	s := m.Snapshot()
	if s.LevelBytesWritten[1] != 100 || s.LevelCompactionsOut[0] != 2 {
		t.Fatalf("snapshot level counters: %+v", s)
	}
}

type failWriter struct{ n int }

var errFull = errors.New("full")

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 64 {
		return 0, errFull
	}
	return len(p), nil
}

func TestPromWriterStickyError(t *testing.T) {
	var m Metrics
	p := NewPromWriter(&failWriter{})
	m.WriteProm(p)
	if !errors.Is(p.Err(), errFull) {
		t.Fatalf("err = %v, want sticky write error", p.Err())
	}
}
