// Package simdisk models the timing behaviour of a block device (an SSD)
// underneath a simulated filesystem. The model captures exactly the
// phenomena the BoLT paper is about:
//
//   - Buffered writes are absorbed by the page cache and cost (almost)
//     nothing at write() time.
//   - fsync()/fdatasync() is a *data barrier*: it blocks until the device
//     queue drains (no reads in flight), pays a fixed barrier latency (the
//     FLUSH command), and transfers the file's dirty bytes at the device's
//     sequential write bandwidth while holding the device exclusively.
//   - Random reads pay a per-operation latency plus transfer time, and may
//     proceed concurrently up to the device queue depth.
//   - Metadata operations (create, unlink, open, hole punch) pay a small
//     latency and no barrier.
//
// All sleeps are scaled by Profile.TimeScale so experiments can be shrunk.
// The device also keeps counters used by the benchmark harness (number of
// barriers, bytes written/read, time spent stalled in barriers).
package simdisk

import (
	"sync"
	"sync/atomic"
	"time"
)

// Profile holds the timing parameters of a simulated device. The defaults
// (see DefaultProfile) approximate the SATA SSD used in the paper (Samsung
// 860 EVO class).
type Profile struct {
	// WriteBandwidth is the sequential write bandwidth in bytes/second used
	// to cost flushing dirty bytes at fsync time.
	WriteBandwidth float64
	// ReadBandwidth is the read transfer bandwidth in bytes/second.
	ReadBandwidth float64
	// ReadLatency is the fixed per-read-operation latency (seek/command).
	ReadLatency time.Duration
	// BarrierLatency is the fixed cost of a FLUSH barrier, paid by every
	// fsync/fdatasync in addition to dirty-byte transfer time.
	BarrierLatency time.Duration
	// MetadataOpLatency is the cost of a metadata operation (create, unlink,
	// rename, open, hole punch).
	MetadataOpLatency time.Duration
	// QueueDepth bounds the number of concurrent read operations in flight.
	QueueDepth int
	// TimeScale multiplies every sleep; 1.0 is real time, 0 disables sleeps
	// entirely (pure accounting mode used by unit tests).
	TimeScale float64
}

// DefaultProfile returns timing parameters approximating a SATA SSD.
func DefaultProfile() Profile {
	return Profile{
		WriteBandwidth:    500 << 20, // 500 MB/s sequential
		ReadBandwidth:     550 << 20,
		ReadLatency:       80 * time.Microsecond,
		BarrierLatency:    3 * time.Millisecond,
		MetadataOpLatency: 30 * time.Microsecond,
		QueueDepth:        32,
		TimeScale:         1.0,
	}
}

// AccountingProfile returns a profile that counts operations but never
// sleeps; unit tests use it so they run at full speed.
func AccountingProfile() Profile {
	p := DefaultProfile()
	p.TimeScale = 0
	return p
}

// Stats is a snapshot of device counters.
type Stats struct {
	// Barriers is the number of fsync/fdatasync barriers issued.
	Barriers int64
	// BytesFlushed is the number of dirty bytes transferred by barriers.
	BytesFlushed int64
	// BytesRead is the number of bytes read from the device (cache misses).
	BytesRead int64
	// Reads is the number of read operations that reached the device.
	Reads int64
	// MetadataOps is the number of metadata operations.
	MetadataOps int64
	// BarrierStall is the cumulative simulated time spent inside barriers.
	BarrierStall time.Duration
	// ReadStall is the cumulative simulated time spent inside device reads.
	ReadStall time.Duration
}

// Device is a simulated block device shared by all files of a simulated
// filesystem. The zero value is not usable; construct with NewDevice.
type Device struct {
	profile Profile

	// barrierMu serializes barriers with each other and with reads: a
	// barrier takes the write side (queue must drain), reads take the read
	// side bounded additionally by the queue-depth semaphore.
	barrierMu sync.RWMutex
	queueSem  chan struct{}

	barriers     atomic.Int64
	bytesFlushed atomic.Int64
	bytesRead    atomic.Int64
	reads        atomic.Int64
	metadataOps  atomic.Int64
	barrierStall atomic.Int64 // nanoseconds
	readStall    atomic.Int64 // nanoseconds
}

// NewDevice constructs a device with the given profile.
func NewDevice(p Profile) *Device {
	if p.QueueDepth <= 0 {
		p.QueueDepth = 1
	}
	return &Device{
		profile:  p,
		queueSem: make(chan struct{}, p.QueueDepth),
	}
}

// Profile returns the device's timing parameters.
func (d *Device) Profile() Profile { return d.profile }

// minSleep is the smallest duration worth actually sleeping for: operating
// systems overshoot short sleeps by roughly their timer quantum (measured
// ~1.5 ms on small cloud hosts), so sleeping for a 50 ”s cost would inflate
// it 30x. Costs below the threshold are accounted but not slept; costs
// above it are slept and suffer at most a quantum of absolute error.
const minSleep = 250 * time.Microsecond

// sleep pauses for dur scaled by the profile's time scale.
func (d *Device) sleep(dur time.Duration) time.Duration {
	if dur <= 0 {
		return 0
	}
	if d.profile.TimeScale > 0 {
		scaled := time.Duration(float64(dur) * d.profile.TimeScale)
		if scaled >= minSleep {
			time.Sleep(scaled)
		}
	}
	return dur
}

// Barrier simulates an fsync/fdatasync that must make dirty bytes durable.
// It waits for in-flight reads to drain (exclusive lock), then pays the
// barrier latency plus the transfer time of the dirty bytes.
func (d *Device) Barrier(dirtyBytes int64) {
	start := time.Now()
	d.barrierMu.Lock()
	transfer := time.Duration(float64(dirtyBytes) / d.profile.WriteBandwidth * float64(time.Second))
	simulated := d.sleep(d.profile.BarrierLatency + transfer)
	d.barrierMu.Unlock()

	d.barriers.Add(1)
	d.bytesFlushed.Add(dirtyBytes)
	if d.profile.TimeScale > 0 {
		d.barrierStall.Add(int64(time.Since(start)))
	} else {
		d.barrierStall.Add(int64(simulated))
	}
}

// Read simulates reading n bytes that missed the page cache. Reads run
// concurrently up to the queue depth but are excluded during barriers.
func (d *Device) Read(n int64) {
	start := time.Now()
	d.barrierMu.RLock()
	d.queueSem <- struct{}{}
	transfer := time.Duration(float64(n) / d.profile.ReadBandwidth * float64(time.Second))
	simulated := d.sleep(d.profile.ReadLatency + transfer)
	<-d.queueSem
	d.barrierMu.RUnlock()

	d.reads.Add(1)
	d.bytesRead.Add(n)
	if d.profile.TimeScale > 0 {
		d.readStall.Add(int64(time.Since(start)))
	} else {
		d.readStall.Add(int64(simulated))
	}
}

// MetadataOp simulates a metadata operation (create/unlink/rename/open/
// punch-hole). No barrier is involved.
func (d *Device) MetadataOp() {
	d.metadataOps.Add(1)
	d.sleep(d.profile.MetadataOpLatency)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		Barriers:     d.barriers.Load(),
		BytesFlushed: d.bytesFlushed.Load(),
		BytesRead:    d.bytesRead.Load(),
		Reads:        d.reads.Load(),
		MetadataOps:  d.metadataOps.Load(),
		BarrierStall: time.Duration(d.barrierStall.Load()),
		ReadStall:    time.Duration(d.readStall.Load()),
	}
}
