package simdisk

import (
	"sync"
	"testing"
	"time"
)

func TestAccountingCounters(t *testing.T) {
	d := NewDevice(AccountingProfile())
	d.Barrier(1000)
	d.Barrier(2000)
	d.Read(512)
	d.MetadataOp()

	s := d.Stats()
	if s.Barriers != 2 {
		t.Errorf("Barriers = %d, want 2", s.Barriers)
	}
	if s.BytesFlushed != 3000 {
		t.Errorf("BytesFlushed = %d, want 3000", s.BytesFlushed)
	}
	if s.Reads != 1 || s.BytesRead != 512 {
		t.Errorf("Reads = %d BytesRead = %d, want 1/512", s.Reads, s.BytesRead)
	}
	if s.MetadataOps != 1 {
		t.Errorf("MetadataOps = %d, want 1", s.MetadataOps)
	}
	if s.BarrierStall <= 0 {
		t.Errorf("BarrierStall should accumulate simulated time even without sleeping")
	}
}

func TestBarrierStallScalesWithDirtyBytes(t *testing.T) {
	d := NewDevice(AccountingProfile())
	d.Barrier(0)
	small := d.Stats().BarrierStall
	d2 := NewDevice(AccountingProfile())
	d2.Barrier(500 << 20) // one second of transfer at 500 MB/s
	big := d2.Stats().BarrierStall
	if big <= small {
		t.Errorf("barrier with dirty bytes should cost more: %v vs %v", big, small)
	}
	// 500 MB at 500 MB/s is one second of simulated transfer.
	if big < time.Second {
		t.Errorf("expected >= 1s simulated stall, got %v", big)
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	d := NewDevice(AccountingProfile())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Read(128)
				d.Barrier(64)
				d.MetadataOp()
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.Barriers != 800 || s.Reads != 800 || s.MetadataOps != 800 {
		t.Errorf("lost operations: %+v", s)
	}
}

func TestTimeScaleZeroDoesNotSleep(t *testing.T) {
	d := NewDevice(AccountingProfile())
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Barrier(1 << 20)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("accounting mode slept: %v", elapsed)
	}
}

func TestRealSleepRoughlyProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := DefaultProfile()
	p.BarrierLatency = 2 * time.Millisecond
	p.TimeScale = 1.0
	d := NewDevice(p)
	start := time.Now()
	for i := 0; i < 5; i++ {
		d.Barrier(0)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Errorf("5 barriers at 2ms should take >= 8ms, took %v", elapsed)
	}
}

func TestQueueDepthDefaults(t *testing.T) {
	p := AccountingProfile()
	p.QueueDepth = 0
	d := NewDevice(p)
	d.Read(1) // must not deadlock with a zero-size semaphore
}
