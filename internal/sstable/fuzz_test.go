package sstable

import (
	"testing"

	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// FuzzOpenReader feeds arbitrary bytes as a table image: opening,
// iterating, and point lookups must never panic (corrupt tables must
// surface as errors).
func FuzzOpenReader(f *testing.F) {
	fs := vfs.NewMem()
	file, _ := fs.Create("seed")
	w := NewWriter(file, 0, Config{BlockSize: 256})
	for i := 0; i < 50; i++ {
		w.Add(ik("key"+string(rune('a'+i%26)), uint64(i+1), keys.KindSet), []byte("v"))
	}
	info, _ := w.Finish()
	seed := make([]byte, info.Size)
	file.ReadAt(seed, 0)
	file.Close()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, FooterSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		mfs := vfs.NewMem()
		mf, _ := mfs.Create("t")
		mf.Write(data)
		r, err := OpenReader(mf, 1, 1, 0, int64(len(data)), nil)
		if err != nil {
			return
		}
		it := r.NewIter(IterOpts{})
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			if n++; n > 1<<18 {
				t.Fatal("runaway iteration")
			}
		}
		it.Close()
		r.Get(keys.MakeInternalKey(nil, []byte("key"), keys.MaxSeq, keys.KindSeekMax))
	})
}
