package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/bolt-lsm/bolt/internal/block"
	"github.com/bolt-lsm/bolt/internal/bloom"
	"github.com/bolt-lsm/bolt/internal/iterator"
	"github.com/bolt-lsm/bolt/internal/keys"
	"github.com/bolt-lsm/bolt/internal/vfs"
)

// BlockCache caches decoded data blocks across readers. Implemented by
// internal/cache; declared here so sstable does not depend on the cache
// package.
//
// Ownership rule: Insert transfers ownership of data to the cache — the
// inserting reader must pass a buffer it will never write again
// (readBlockDirect allocates a fresh payload per miss). Get returns the
// shared backing array, not a copy; callers must treat it as read-only,
// because every hit for that block observes the same bytes. The engine
// upholds this by copying before anything crosses its public API:
// Reader.Get copies the value, and the DB iterator copies both key and
// value into its own buffers.
type BlockCache interface {
	// Get returns the cached block for (tableID, offset), if present.
	// The returned slice is shared; it must not be modified.
	Get(tableID uint64, off int64) ([]byte, bool)
	// Insert adds a block to the cache, taking ownership of data.
	Insert(tableID uint64, off int64, data []byte)
}

// CorruptionError is a corruption finding that names its victim: the
// logical table, the physical file owning the bytes, and the absolute
// offset of the damaged region within that physical file (-1 when the
// damage cannot be localized). It unwraps to ErrCorrupt, so existing
// errors.Is classification keeps working; quarantine and operators use the
// identity fields to find the file without guessing.
type CorruptionError struct {
	// TableID is the logical table number (0 when unknown, e.g. repair).
	TableID uint64
	// PhysNum is the physical file number owning the corrupt bytes.
	PhysNum uint64
	// Offset is the absolute offset of the damaged region within the
	// physical file, or -1 when it cannot be localized.
	Offset int64
	// Detail describes the finding.
	Detail string
	// Err optionally chains the underlying parse error (e.g. from package
	// block).
	Err error
}

// Error describes the finding with its victim identity.
func (e *CorruptionError) Error() string {
	detail := e.Detail
	if e.Err != nil {
		if detail != "" {
			detail += ": "
		}
		detail += e.Err.Error()
	}
	return fmt.Sprintf("sstable: corrupt: %s (table %d, phys file %d, offset %d)",
		detail, e.TableID, e.PhysNum, e.Offset)
}

// Unwrap ties the error into the ErrCorrupt class and preserves the
// underlying cause for errors.Is/As.
func (e *CorruptionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// Reader reads one (possibly logical) table. Opening a reader costs one
// metadata read covering the filter block, index block, and footer — this
// is exactly the TableCache miss penalty the paper analyses: it grows
// linearly with table size.
type Reader struct {
	f       vfs.File
	tableID uint64
	physNum uint64
	base    int64
	size    int64

	index      *block.Reader
	filter     bloom.Filter
	metaSize   int64
	numEntries int

	cache BlockCache // may be nil
}

// corruptf builds a CorruptionError at absolute physical-file offset off.
func (r *Reader) corruptf(off int64, err error, format string, args ...any) error {
	return &CorruptionError{
		TableID: r.tableID,
		PhysNum: r.physNum,
		Offset:  off,
		Detail:  fmt.Sprintf(format, args...),
		Err:     err,
	}
}

// OpenReader parses the table at (base, size) in f. tableID must be unique
// per table (the engine uses the table's file number); it keys the block
// cache. physNum names the physical file holding the bytes, so corruption
// findings can identify the victim file.
func OpenReader(f vfs.File, tableID, physNum uint64, base, size int64, cache BlockCache) (*Reader, error) {
	corruptf := func(off int64, err error, format string, args ...any) error {
		return &CorruptionError{
			TableID: tableID, PhysNum: physNum, Offset: off,
			Detail: fmt.Sprintf(format, args...), Err: err,
		}
	}
	if size < FooterSize {
		return nil, corruptf(base, nil, "table too small (%d bytes)", size)
	}
	var footer [FooterSize]byte
	if err := vfs.ReadFull(f, footer[:], base+size-FooterSize); err != nil {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(footer[40:]); got != Magic {
		return nil, corruptf(base+size-FooterSize, nil, "bad magic %#x", got)
	}
	indexH := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[0:])),
		length: int64(binary.LittleEndian.Uint64(footer[8:])),
	}
	filterH := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[16:])),
		length: int64(binary.LittleEndian.Uint64(footer[24:])),
	}
	numEntries := int(binary.LittleEndian.Uint64(footer[32:]))

	// Read filter + index in a single contiguous metadata read, mirroring
	// the single large I/O a real TableCache miss incurs.
	metaStart := indexH.offset
	if filterH.length > 0 && filterH.offset < metaStart {
		metaStart = filterH.offset
	}
	metaEnd := base + size - FooterSize
	metaLen := metaEnd - (base + metaStart)
	if metaLen < 0 || base+metaStart < base {
		return nil, corruptf(base+size-FooterSize, nil, "meta region out of range")
	}
	meta := make([]byte, metaLen)
	if err := vfs.ReadFull(f, meta, base+metaStart); err != nil {
		return nil, fmt.Errorf("sstable: read meta: %w", err)
	}
	checkBlock := func(h blockHandle) ([]byte, error) {
		lo := h.offset - metaStart
		hi := lo + h.length
		// Validate in a wrap-safe order: footer fields are attacker-
		// controlled uint64s that may be negative after conversion or
		// overflow when summed.
		if h.offset < 0 || h.length < 0 || lo < 0 || hi < lo ||
			hi+blockTrailerSize > int64(len(meta)) || hi+blockTrailerSize < hi {
			return nil, corruptf(base+size-FooterSize, nil, "meta handle out of range")
		}
		data := meta[lo:hi]
		want := binary.LittleEndian.Uint32(meta[hi : hi+blockTrailerSize])
		if got := crc32.Checksum(data, castagnoli); got != want {
			return nil, corruptf(base+h.offset, nil, "meta block checksum")
		}
		return data, nil
	}

	indexData, err := checkBlock(indexH)
	if err != nil {
		return nil, err
	}
	index, err := block.NewReader(indexData)
	if err != nil {
		return nil, corruptf(base+indexH.offset, err, "parse index")
	}
	var filter bloom.Filter
	if filterH.length > 0 {
		fdata, err := checkBlock(filterH)
		if err != nil {
			return nil, err
		}
		filter = bloom.Filter(fdata)
	}
	return &Reader{
		f:          f,
		tableID:    tableID,
		physNum:    physNum,
		base:       base,
		size:       size,
		index:      index,
		filter:     filter,
		metaSize:   metaLen + FooterSize,
		numEntries: numEntries,
		cache:      cache,
	}, nil
}

// MetaSize returns the filter+index+footer byte count — the TableCache
// miss penalty for this table.
func (r *Reader) MetaSize() int64 { return r.metaSize }

// NumEntries returns the entry count recorded in the footer.
func (r *Reader) NumEntries() int { return r.numEntries }

// MayContain consults the Bloom filter; a false result proves absence.
func (r *Reader) MayContain(userKey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(userKey)
}

// readBlock returns the data block at h, consulting the block cache.
func (r *Reader) readBlock(h blockHandle) ([]byte, error) {
	if err := r.checkHandle(h); err != nil {
		return nil, err
	}
	if r.cache != nil {
		if data, ok := r.cache.Get(r.tableID, h.offset); ok {
			return data, nil
		}
	}
	payload, err := r.readBlockDirect(h)
	if err != nil {
		return nil, err
	}
	if r.cache != nil {
		r.cache.Insert(r.tableID, h.offset, payload)
	}
	return payload, nil
}

// checkHandle bounds-checks a block handle against the table extent.
func (r *Reader) checkHandle(h blockHandle) error {
	if h.offset < 0 || h.length < 0 || h.offset+h.length+blockTrailerSize > r.size {
		return r.corruptf(-1, nil, "block handle out of range (offset %d, length %d)", h.offset, h.length)
	}
	return nil
}

// readBlockDirect reads and checksum-validates the data block at h straight
// from the file, bypassing the block cache in both directions. Scrub and
// salvage use it: they must observe the at-rest bytes, not a cached copy
// read before the rot.
func (r *Reader) readBlockDirect(h blockHandle) ([]byte, error) {
	data := make([]byte, h.length+blockTrailerSize)
	if err := vfs.ReadFull(r.f, data, r.base+h.offset); err != nil {
		return nil, fmt.Errorf("sstable: read block at %d: %w", h.offset, err)
	}
	payload := data[:h.length]
	want := binary.LittleEndian.Uint32(data[h.length:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, r.corruptf(r.base+h.offset, nil, "data block checksum")
	}
	return payload, nil
}

// Get searches for ikey and returns the first entry at-or-after it whose
// user key matches — i.e. the newest version visible at ikey's sequence
// number. found=false means the table holds no visible version. The seq
// return lets callers searching overlapping tables (L0, fragmented levels)
// select the newest version across tables.
func (r *Reader) Get(ikey keys.InternalKey) (value []byte, seq keys.Seq, kind keys.Kind, found bool, err error) {
	if !r.MayContain(ikey.UserKey()) {
		return nil, 0, 0, false, nil
	}
	// Stack-allocated readers and iterators: Get runs once per table probed
	// per lookup, so heap traffic here multiplies by read amplification.
	var idx block.Iter
	idx.Init(r.index)
	if !idx.Seek(ikey) {
		return nil, 0, 0, false, idx.Err()
	}
	h, err := decodeHandle(idx.Value())
	if err != nil {
		return nil, 0, 0, false, r.corruptf(-1, err, "index entry handle")
	}
	data, err := r.readBlock(h)
	if err != nil {
		return nil, 0, 0, false, err
	}
	var br block.Reader
	if err := br.Init(data); err != nil {
		return nil, 0, 0, false, r.corruptf(r.base+h.offset, err, "parse data block")
	}
	var it block.Iter
	it.Init(&br)
	if !it.Seek(ikey) {
		return nil, 0, 0, false, it.Err()
	}
	if keys.CompareUser(it.Key().UserKey(), ikey.UserKey()) != 0 {
		return nil, 0, 0, false, nil
	}
	return append([]byte(nil), it.Value()...), it.Key().Seq(), it.Key().Kind(), true, nil
}

// IterOpts controls table iteration.
type IterOpts struct {
	// Readahead, when positive, makes the iterator fetch data in chunks of
	// at least this many bytes, bypassing the block cache. Compactions use
	// it so their sequential reads do not pay a device op per 4 KiB block
	// and do not pollute the cache.
	Readahead int64
}

// NewIter returns an iterator over the table.
func (r *Reader) NewIter(opts IterOpts) iterator.Iterator {
	return &tableIter{r: r, opts: opts, indexIter: r.index.Iter()}
}

// tableIter is the two-level iterator: index iterator over block handles,
// block iterator within the current data block.
type tableIter struct {
	r         *Reader
	opts      IterOpts
	indexIter *block.Iter
	blockIter *block.Iter
	err       error

	// readahead buffer
	raBuf []byte
	raOff int64
}

var _ iterator.Iterator = (*tableIter)(nil)

func (t *tableIter) loadBlock() bool {
	h, err := decodeHandle(t.indexIter.Value())
	if err != nil {
		t.err = t.r.corruptf(-1, err, "index entry handle")
		return false
	}
	var data []byte
	if t.opts.Readahead > 0 {
		data, err = t.readWithReadahead(h)
	} else {
		data, err = t.r.readBlock(h)
	}
	if err != nil {
		t.err = err
		return false
	}
	br, err := block.NewReader(data)
	if err != nil {
		t.err = t.r.corruptf(t.r.base+h.offset, err, "parse data block")
		return false
	}
	t.blockIter = br.Iter()
	return true
}

// readWithReadahead serves block h from a sequential readahead buffer.
func (t *tableIter) readWithReadahead(h blockHandle) ([]byte, error) {
	if err := t.r.checkHandle(h); err != nil {
		return nil, err
	}
	need := h.length + blockTrailerSize
	if h.offset < t.raOff || h.offset+need > t.raOff+int64(len(t.raBuf)) {
		chunk := t.opts.Readahead
		if chunk < need {
			chunk = need
		}
		if h.offset+chunk > t.r.size {
			chunk = t.r.size - h.offset
		}
		buf := make([]byte, chunk)
		if err := vfs.ReadFull(t.r.f, buf, t.r.base+h.offset); err != nil {
			return nil, fmt.Errorf("sstable: readahead at %d: %w", h.offset, err)
		}
		t.raBuf = buf
		t.raOff = h.offset
	}
	lo := h.offset - t.raOff
	data := t.raBuf[lo : lo+h.length]
	want := binary.LittleEndian.Uint32(t.raBuf[lo+h.length : lo+need])
	if got := crc32.Checksum(data, castagnoli); got != want {
		return nil, t.r.corruptf(t.r.base+h.offset, nil, "data block checksum")
	}
	return data, nil
}

// First implements iterator.Iterator.
func (t *tableIter) First() bool {
	t.err = nil
	t.blockIter = nil
	if !t.indexIter.First() {
		t.err = t.indexIter.Err()
		return false
	}
	if !t.loadBlock() {
		return false
	}
	if t.blockIter.First() {
		return true
	}
	return t.nextBlock()
}

// Seek implements iterator.Iterator.
func (t *tableIter) Seek(target keys.InternalKey) bool {
	t.err = nil
	t.blockIter = nil
	if !t.indexIter.Seek(target) {
		t.err = t.indexIter.Err()
		return false
	}
	if !t.loadBlock() {
		return false
	}
	if t.blockIter.Seek(target) {
		return true
	}
	if err := t.blockIter.Err(); err != nil {
		t.err = err
		return false
	}
	return t.nextBlock()
}

// nextBlock advances to the first entry of the next data block.
func (t *tableIter) nextBlock() bool {
	for {
		if !t.indexIter.Next() {
			t.err = t.indexIter.Err()
			t.blockIter = nil
			return false
		}
		if !t.loadBlock() {
			return false
		}
		if t.blockIter.First() {
			return true
		}
		if err := t.blockIter.Err(); err != nil {
			t.err = err
			return false
		}
	}
}

// Next implements iterator.Iterator.
func (t *tableIter) Next() bool {
	if !t.Valid() {
		return false
	}
	if t.blockIter.Next() {
		return true
	}
	if err := t.blockIter.Err(); err != nil {
		t.err = err
		return false
	}
	return t.nextBlock()
}

// Valid implements iterator.Iterator.
func (t *tableIter) Valid() bool {
	return t.err == nil && t.blockIter != nil && t.blockIter.Valid()
}

// Key implements iterator.Iterator.
func (t *tableIter) Key() keys.InternalKey {
	if !t.Valid() {
		return nil
	}
	return t.blockIter.Key()
}

// Value implements iterator.Iterator.
func (t *tableIter) Value() []byte {
	if !t.Valid() {
		return nil
	}
	return t.blockIter.Value()
}

// Err implements iterator.Iterator.
func (t *tableIter) Err() error { return t.err }

// Close implements iterator.Iterator. The underlying file is owned by the
// table cache, not the iterator.
func (t *tableIter) Close() error {
	t.blockIter = nil
	t.raBuf = nil
	return nil
}
